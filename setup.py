"""Setup shim.

The metadata lives in ``pyproject.toml``; this file exists so editable
installs work on environments whose setuptools predates PEP 660 editable
wheels (and without network access for build isolation):

    pip install -e . --no-build-isolation
"""

from setuptools import setup

setup()
