"""Smoke tests keeping the runnable examples green.

Only the fast examples run here (the transient-heavy ones are exercised
by the benchmark suite through the same experiment drivers).
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestFastExamples:
    def test_quickstart(self, capsys):
        out = _run("quickstart.py", capsys)
        assert "natural oscillation: A = 1.2084 V" in out
        assert "lock range" in out
        assert "stable" in out

    def test_general_tank_from_netlist(self, capsys):
        out = _run("general_tank_from_netlist.py", capsys)
        assert "characterised tank" in out
        assert "lock range" in out
        assert "asymmetry" in out

    def test_all_examples_importable(self):
        # Every example must at least compile (catches API drift in the
        # slow ones without paying their runtime).
        import py_compile

        for path in sorted(EXAMPLES.glob("*.py")):
            py_compile.compile(str(path), doraise=True)
