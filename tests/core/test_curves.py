"""Tests for marching-squares level curves and polyline intersection."""

import numpy as np
import pytest

from repro.core.curves import LevelCurve, extract_level_curves, intersect_curves
from repro.utils.grids import Grid2D


def _grid_with(fn, nx=81, ny=81, x_lo=-2.0, x_hi=2.0, y_lo=-2.0, y_hi=2.0):
    x = np.linspace(x_lo, x_hi, nx)
    y = np.linspace(y_lo, y_hi, ny)
    xx, yy = np.meshgrid(x, y)
    grid = Grid2D(x=x, y=y)
    grid.add_surface("z", fn(xx, yy))
    return grid


class TestExtractLevelCurves:
    def test_circle_level_set(self):
        grid = _grid_with(lambda x, y: x**2 + y**2)
        curves = extract_level_curves(grid, "z", 1.0)
        assert len(curves) == 1
        circle = curves[0]
        radii = np.hypot(circle.x, circle.y)
        assert np.allclose(radii, 1.0, atol=2e-3)
        assert circle.is_closed

    def test_line_level_set(self):
        grid = _grid_with(lambda x, y: y - 0.5 * x)
        curves = extract_level_curves(grid, "z", 0.0)
        assert len(curves) == 1
        line = curves[0]
        assert np.allclose(line.y, 0.5 * line.x, atol=1e-9)
        assert not line.is_closed

    def test_empty_when_level_outside_range(self):
        grid = _grid_with(lambda x, y: x**2 + y**2)
        assert extract_level_curves(grid, "z", 100.0) == []

    def test_two_components(self):
        # |x| = 1 has two separate vertical lines.
        grid = _grid_with(lambda x, y: x**2)
        curves = extract_level_curves(grid, "z", 1.0)
        assert len(curves) == 2

    def test_saddle_disambiguation_produces_consistent_topology(self):
        # z = x*y at level 0 crosses itself at the origin; the saddle rule
        # must split it into non-crossing branches, not drop segments.
        grid = _grid_with(lambda x, y: x * y, nx=41, ny=41)
        curves = extract_level_curves(grid, "z", 1e-9)
        total_length = sum(c.arclength() for c in curves)
        assert total_length > 6.0  # two ~4-unit lines, allowing corner loss

    def test_curve_arclength_of_circle(self):
        grid = _grid_with(lambda x, y: x**2 + y**2, nx=201, ny=201)
        circle = extract_level_curves(grid, "z", 1.0)[0]
        assert circle.arclength() == pytest.approx(2 * np.pi, rel=2e-3)

    def test_slope_at(self):
        curve = LevelCurve(
            x=np.array([0.0, 1.0, 2.0]), y=np.array([0.0, 2.0, 4.0]), level=0.0
        )
        assert curve.slope_at(1) == pytest.approx(2.0)

    def test_slope_vertical(self):
        curve = LevelCurve(
            x=np.array([1.0, 1.0, 1.0]), y=np.array([0.0, 1.0, 2.0]), level=0.0
        )
        assert np.isinf(curve.slope_at(1))

    def test_nearest_vertex(self):
        curve = LevelCurve(
            x=np.array([0.0, 1.0, 2.0]), y=np.array([0.0, 0.0, 0.0]), level=0.0
        )
        assert curve.nearest_vertex(1.1, 0.5) == 1


class TestIntersectCurves:
    def test_crossing_lines(self):
        a = LevelCurve(x=np.array([-1.0, 1.0]), y=np.array([-1.0, 1.0]), level=0)
        b = LevelCurve(x=np.array([-1.0, 1.0]), y=np.array([1.0, -1.0]), level=0)
        points = intersect_curves(a, b)
        assert len(points) == 1
        assert points[0][0] == pytest.approx(0.0, abs=1e-12)
        assert points[0][1] == pytest.approx(0.0, abs=1e-12)

    def test_parallel_lines_do_not_intersect(self):
        a = LevelCurve(x=np.array([-1.0, 1.0]), y=np.array([0.0, 0.0]), level=0)
        b = LevelCurve(x=np.array([-1.0, 1.0]), y=np.array([1.0, 1.0]), level=0)
        assert intersect_curves(a, b) == []

    def test_circle_and_line_two_points(self):
        grid = _grid_with(lambda x, y: x**2 + y**2, nx=161, ny=161)
        circle = extract_level_curves(grid, "z", 1.0)[0]
        line = LevelCurve(x=np.array([-2.0, 2.0]), y=np.array([0.0, 0.0]), level=0)
        points = intersect_curves(circle, line)
        assert len(points) == 2
        xs = sorted(p[0] for p in points)
        assert xs[0] == pytest.approx(-1.0, abs=5e-3)
        assert xs[1] == pytest.approx(1.0, abs=5e-3)

    def test_dedup_of_touching_segments(self):
        # A polyline crossing exactly at a shared vertex reports one hit.
        a = LevelCurve(
            x=np.array([-1.0, 0.0, 1.0]), y=np.array([-1.0, 0.0, 1.0]), level=0
        )
        b = LevelCurve(x=np.array([-1.0, 1.0]), y=np.array([1.0, -1.0]), level=0)
        assert len(intersect_curves(a, b)) == 1

    def test_segments_that_miss(self):
        a = LevelCurve(x=np.array([0.0, 1.0]), y=np.array([0.0, 0.0]), level=0)
        b = LevelCurve(x=np.array([2.0, 3.0]), y=np.array([-1.0, 1.0]), level=0)
        assert intersect_curves(a, b) == []
