"""Tests for the one-pass lock-range predictor (Fig. 10 procedure)."""

import numpy as np
import pytest

from repro.core import predict_lock_range, solve_lock_states
from repro.core.lockrange import NoLockError, lock_range_by_frequency_scan
from repro.nonlin import NegativeTanh
from repro.tank import ParallelRLC


@pytest.fixture(scope="module")
def setup():
    return (
        NegativeTanh(gm=2.5e-3, i_sat=1e-3),
        ParallelRLC(r=1000.0, l=100e-6, c=10e-9),
    )


@pytest.fixture(scope="module")
def lock_range(setup):
    tanh, tank = setup
    return predict_lock_range(tanh, tank, v_i=0.03, n=3)


class TestPredictLockRange:
    def test_brackets_center(self, setup, lock_range):
        _, tank = setup
        center = 3 * tank.center_frequency
        assert lock_range.injection_lower < center < lock_range.injection_upper

    def test_phi_d_symmetry(self, lock_range):
        # Appendix VI-B3: the lock range is symmetric in phase deviation.
        assert lock_range.phi_d_at_lower == pytest.approx(
            -lock_range.phi_d_at_upper, abs=1e-6
        )

    def test_phi_d_signs(self, lock_range):
        # Lower frequency <-> positive tank phase (inductive side).
        assert lock_range.phi_d_at_lower > 0.0
        assert lock_range.phi_d_at_upper < 0.0

    def test_amplitude_decreases_toward_edges(self, setup, lock_range):
        # Section IV-A: "A (and phi) decreases with increasing |w_c - w_i|".
        from repro.core import predict_natural_oscillation

        tanh, tank = setup
        natural = predict_natural_oscillation(tanh, tank)
        assert lock_range.amplitude_at_lower < natural.amplitude
        assert lock_range.amplitude_at_upper < natural.amplitude

    def test_consistent_with_pointwise_solver(self, setup, lock_range):
        # Locks exist just inside the predicted edges, none just outside.
        tanh, tank = setup
        margin = 3e-4
        inside_lo = lock_range.injection_lower * (1 + margin)
        outside_lo = lock_range.injection_lower * (1 - margin)
        inside_hi = lock_range.injection_upper * (1 - margin)
        outside_hi = lock_range.injection_upper * (1 + margin)
        assert solve_lock_states(tanh, tank, v_i=0.03, w_injection=inside_lo, n=3).locked
        assert not solve_lock_states(
            tanh, tank, v_i=0.03, w_injection=outside_lo, n=3
        ).locked
        assert solve_lock_states(tanh, tank, v_i=0.03, w_injection=inside_hi, n=3).locked
        assert not solve_lock_states(
            tanh, tank, v_i=0.03, w_injection=outside_hi, n=3
        ).locked

    def test_width_grows_with_injection(self, setup):
        tanh, tank = setup
        weak = predict_lock_range(tanh, tank, v_i=0.01, n=3)
        strong = predict_lock_range(tanh, tank, v_i=0.05, n=3)
        assert strong.width > weak.width

    def test_contains(self, setup, lock_range):
        _, tank = setup
        assert lock_range.contains(3 * tank.center_frequency)
        assert not lock_range.contains(3 * tank.center_frequency * 1.2)

    def test_samples_populated(self, lock_range):
        assert len(lock_range.samples) > 50
        stable = [p for p in lock_range.samples if p.stable]
        unstable = [p for p in lock_range.samples if not p.stable]
        assert stable and unstable

    def test_samples_are_locks_at_their_own_frequency(self, setup, lock_range):
        # Spot-check the invariant-curve interpretation: a sample point is
        # a lock state at the frequency its phi_d maps to.
        tanh, tank = setup
        sample = lock_range.samples[len(lock_range.samples) // 3]
        solution = solve_lock_states(
            tanh, tank, v_i=0.03, w_injection=3 * sample.w_i, n=3
        )
        amplitudes = [lock.amplitude for lock in solution.locks]
        assert any(abs(a - sample.amplitude) < 2e-3 for a in amplitudes)

    def test_grid_resolution_insensitivity(self, setup, lock_range):
        # Sub-grid refinement should make the edges nearly grid-independent.
        tanh, tank = setup
        coarse = predict_lock_range(tanh, tank, v_i=0.03, n=3, n_a=61, n_phi=121)
        assert coarse.injection_lower == pytest.approx(
            lock_range.injection_lower, rel=2e-5
        )
        assert coarse.injection_upper == pytest.approx(
            lock_range.injection_upper, rel=2e-5
        )

    def test_rejects_zero_injection(self, setup):
        tanh, tank = setup
        with pytest.raises(ValueError):
            predict_lock_range(tanh, tank, v_i=0.0, n=3)

    def test_fhil_special_case(self, setup):
        tanh, tank = setup
        fhil = predict_lock_range(tanh, tank, v_i=0.03, n=1)
        assert fhil.injection_lower < tank.center_frequency < fhil.injection_upper


class TestFrequencyScanParity:
    def test_scan_matches_one_pass(self, setup):
        # The naive per-frequency bisection must agree with the
        # invariant-curve shortcut (design-choice ablation, DESIGN.md).
        tanh, tank = setup
        one_pass = predict_lock_range(tanh, tank, v_i=0.03, n=3)
        scanned = lock_range_by_frequency_scan(
            tanh,
            tank,
            v_i=0.03,
            n=3,
            rel_tol=1e-5,
            n_a=81,
            n_phi=121,
        )
        assert scanned.injection_lower == pytest.approx(
            one_pass.injection_lower, rel=3e-5
        )
        assert scanned.injection_upper == pytest.approx(
            one_pass.injection_upper, rel=3e-5
        )

    def test_scan_raises_when_window_too_small(self, setup):
        # The scan window must bracket the lock range: if the oscillator
        # is still locked at the window edge, the bisection cannot start.
        tanh, tank = setup
        with pytest.raises(NoLockError, match="scan edge"):
            lock_range_by_frequency_scan(
                tanh, tank, v_i=0.03, n=3, rel_span=1e-4, n_a=61, n_phi=121
            )
