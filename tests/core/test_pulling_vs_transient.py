"""Integration: slow-flow pulling predictions vs full transient simulation.

The averaged model claims the beat (phase-slip) frequency outside the
lock range; here a genuine carrier-resolution transient provides the
ground truth.  One moderately detuned point keeps the cost at a couple
of seconds.
"""

import numpy as np
import pytest

from repro.core import analyze_pulling, predict_lock_range
from repro.measure import Waveform, quadrature_demodulate
from repro.nonlin import NegativeTanh
from repro.odesim import InjectionSpec, simulate_oscillator
from repro.tank import ParallelRLC


@pytest.fixture(scope="module")
def setup():
    return (
        NegativeTanh(gm=2.5e-3, i_sat=1e-3),
        ParallelRLC(r=1000.0, l=100e-6, c=10e-9),
    )


def _transient_beat(tanh, tank, w_inj, cycles=1200.0):
    """Measure the oscillator-line offset from w_inj/3 by demodulation."""
    period = 2 * np.pi / tank.center_frequency
    sim = simulate_oscillator(
        tanh,
        tank,
        t_end=cycles * period,
        injection=InjectionSpec(v_i=0.03, w=np.array([w_inj])),
        record_start=0.4 * cycles * period,
    )
    demod = quadrature_demodulate(Waveform(sim.t, sim.v[:, 0]), w_inj / 3.0)
    return abs(demod.mean_frequency() - w_inj / 3.0)


class TestPullingVsTransient:
    def test_beat_frequency_matches(self, setup):
        tanh, tank = setup
        lock_range = predict_lock_range(tanh, tank, v_i=0.03, n=3)
        w_inj = lock_range.injection_upper * 1.004
        predicted = analyze_pulling(
            tanh, tank, v_i=0.03, w_injection=w_inj, n=3
        )
        assert not predicted.locked
        measured = _transient_beat(tanh, tank, w_inj)
        assert predicted.beat_frequency == pytest.approx(measured, rel=0.15)

    def test_beat_suppressed_relative_to_open_loop(self, setup):
        # The signature of pulling (vs free-running): the beat is *slower*
        # than the open-loop detuning.  The reference must be the true
        # free-running frequency (finite-Q shifted), not the tank centre.
        from repro.measure import measure_steady_state

        tanh, tank = setup
        period = 2 * np.pi / tank.center_frequency
        free = simulate_oscillator(
            tanh, tank, t_end=400 * period, record_start=340 * period
        )
        w_free = measure_steady_state(Waveform(free.t, free.v[:, 0])).frequency
        lock_range = predict_lock_range(tanh, tank, v_i=0.03, n=3)
        w_inj = lock_range.injection_upper * 1.002
        measured = _transient_beat(tanh, tank, w_inj)
        open_loop = abs(w_inj / 3.0 - w_free)
        assert measured < 0.93 * open_loop
