"""Tests for stability classification (Appendix VI-B3)."""

import numpy as np
import pytest

from repro.core import solve_lock_states
from repro.core.averaging import SlowFlow
from repro.core.stability import classify_by_jacobian, paper_slope_rule
from repro.core.two_tone import TwoToneDF
from repro.nonlin import NegativeTanh
from repro.tank import ParallelRLC


@pytest.fixture(scope="module")
def setup():
    return (
        NegativeTanh(gm=2.5e-3, i_sat=1e-3),
        ParallelRLC(r=1000.0, l=100e-6, c=10e-9),
    )


class TestPaperSlopeRule:
    def test_canonical_stable(self):
        # Steeper phase curve than magnitude curve -> stable.
        assert paper_slope_rule(10.0, 0.1).stable

    def test_canonical_unstable(self):
        assert not paper_slope_rule(0.1, 10.0).stable

    def test_equality_counts_as_stable(self):
        assert paper_slope_rule(1.0, 1.0).stable

    def test_one_flip_inverts(self):
        assert not paper_slope_rule(10.0, 0.1, tf_decreasing_with_a=False).stable
        assert not paper_slope_rule(
            10.0, 0.1, angle_increasing_with_phi=False
        ).stable

    def test_double_flip_restores(self):
        verdict = paper_slope_rule(
            10.0,
            0.1,
            tf_decreasing_with_a=False,
            angle_increasing_with_phi=False,
        )
        assert verdict.stable

    def test_method_tag(self):
        assert paper_slope_rule(1.0, 0.0).method == "slope-rule"


class TestJacobianClassification:
    def test_eigenvalues_reported(self, setup):
        tanh, tank = setup
        solution = solve_lock_states(
            tanh, tank, v_i=0.03, w_injection=3 * tank.center_frequency, n=3
        )
        flow = SlowFlow(TwoToneDF(tanh, 0.03, 3), tank, tank.center_frequency)
        lock = solution.stable_locks[0]
        verdict = classify_by_jacobian(flow, lock.amplitude, lock.phi)
        assert verdict.method == "jacobian"
        assert verdict.eigenvalues is not None
        assert all(ev.real < 0 for ev in verdict.eigenvalues)

    def test_unstable_lock_has_positive_eigenvalue(self, setup):
        tanh, tank = setup
        solution = solve_lock_states(
            tanh, tank, v_i=0.03, w_injection=3 * tank.center_frequency, n=3
        )
        flow = SlowFlow(TwoToneDF(tanh, 0.03, 3), tank, tank.center_frequency)
        unstable = [lock for lock in solution.locks if not lock.stable][0]
        verdict = classify_by_jacobian(flow, unstable.amplitude, unstable.phi)
        assert any(ev.real > 0 for ev in verdict.eigenvalues)

    def test_margin_demotes_marginal_locks(self, setup):
        tanh, tank = setup
        solution = solve_lock_states(
            tanh, tank, v_i=0.03, w_injection=3 * tank.center_frequency, n=3
        )
        flow = SlowFlow(TwoToneDF(tanh, 0.03, 3), tank, tank.center_frequency)
        lock = solution.stable_locks[0]
        huge_margin = 1e12  # far beyond any physical relaxation rate
        verdict = classify_by_jacobian(
            flow, lock.amplitude, lock.phi, margin=huge_margin
        )
        assert not verdict.stable

    def test_amplitude_eigenvalue_scale(self, setup):
        # The amplitude relaxation rate should be on the order of the
        # envelope rate 1/(2RC) (half tank bandwidth).
        tanh, tank = setup
        solution = solve_lock_states(
            tanh, tank, v_i=0.03, w_injection=3 * tank.center_frequency, n=3
        )
        flow = SlowFlow(TwoToneDF(tanh, 0.03, 3), tank, tank.center_frequency)
        lock = solution.stable_locks[0]
        verdict = classify_by_jacobian(flow, lock.amplitude, lock.phi)
        rates = sorted(abs(ev.real) for ev in verdict.eigenvalues)
        assert rates[-1] == pytest.approx(flow.rate, rel=2.0)

    def test_bool_protocol(self):
        from repro.core.stability import StabilityVerdict

        assert bool(StabilityVerdict(stable=True, method="x"))
        assert not bool(StabilityVerdict(stable=False, method="x"))


class TestSlopeRuleAgreesWithJacobian:
    def test_agreement_on_detuned_locks(self, setup):
        # The graphical rule and the rigorous Jacobian must agree for the
        # paper's canonical picture (detuned tanh oscillator).
        tanh, tank = setup
        w_i = tank.center_frequency * 1.001
        solution = solve_lock_states(tanh, tank, v_i=0.03, w_injection=3 * w_i, n=3)
        assert len(solution.locks) == 2
        df = TwoToneDF(tanh, 0.03, 3)
        flow = SlowFlow(df, tank, w_i)
        for lock in solution.locks:
            # Build local slopes of the two condition curves numerically:
            # dA/dphi along each level set via implicit differentiation.
            h_a = 1e-5 * lock.amplitude
            h_p = 1e-5
            def tf_fn(a, p):
                return float(df.tf(a, p, tank.peak_resistance))
            def ang_fn(a, p):
                return float(df.angle_minus_i1(a, p)) + solution.phi_d
            d_tf_da = (tf_fn(lock.amplitude + h_a, lock.phi) - tf_fn(lock.amplitude - h_a, lock.phi)) / (2 * h_a)
            d_tf_dp = (tf_fn(lock.amplitude, lock.phi + h_p) - tf_fn(lock.amplitude, lock.phi - h_p)) / (2 * h_p)
            d_an_da = (ang_fn(lock.amplitude + h_a, lock.phi) - ang_fn(lock.amplitude - h_a, lock.phi)) / (2 * h_a)
            d_an_dp = (ang_fn(lock.amplitude, lock.phi + h_p) - ang_fn(lock.amplitude, lock.phi - h_p)) / (2 * h_p)
            slope_tf = -d_tf_dp / d_tf_da
            slope_an = -d_an_dp / d_an_da
            verdict = paper_slope_rule(
                slope_an,
                slope_tf,
                tf_decreasing_with_a=d_tf_da < 0,
                angle_increasing_with_phi=d_an_dp > 0,
            )
            assert verdict.stable == lock.stable, (
                f"slope rule disagrees with Jacobian at phi={lock.phi:.3f}"
            )


class _FakeDF:
    """Linearised two-tone DF with prescribed surface gradients.

    Around the equilibrium ``(a0, phi0)``::

        T_f           = 1 - alpha (A - a0) - beta  (phi - phi0)
        2 R I_1y / A  =     gamma (A - a0) + delta (phi - phi0)

    so the averaged-flow Jacobian signs — and the graphical chart's sign
    pattern — are dialled in directly: ``tf_decreasing_with_a`` iff
    ``alpha > 0``, ``angle_increasing_with_phi`` iff ``delta < 0``, and
    the curve slopes are ``-beta/alpha`` (magnitude) and ``-delta/gamma``
    (phase).
    """

    def __init__(self, alpha, beta, gamma, delta, a0=1.2, phi0=2.0, r=1000.0):
        self.n = 3
        self.alpha, self.beta, self.gamma, self.delta = alpha, beta, gamma, delta
        self.a0, self.phi0, self.r = a0, phi0, r

    def i1(self, a, phi):
        da = np.asarray(a, dtype=float) - self.a0
        dp = np.asarray(phi, dtype=float) - self.phi0
        scale = np.asarray(a, dtype=float) / (2.0 * self.r)
        i1x = -scale * (1.0 - self.alpha * da - self.beta * dp)
        i1y = scale * (self.gamma * da + self.delta * dp)
        return i1x + 1j * i1y


class TestSlopeRuleSignFlipBranches:
    """All four sign-pattern branches, cross-checked against the Jacobian.

    Each case builds a synthetic slow flow whose local gradients realise
    one ``tf_decreasing_with_a`` x ``angle_increasing_with_phi`` combo in
    the chart where the paper's magnitude comparison is exact, then
    demands the graphical verdict match :func:`classify_by_jacobian`.
    (The double-flip combo admits no stable equilibrium — its trace is
    positive whenever both patterns are flipped — so it is represented by
    its saddle.)
    """

    CASES = [
        # (alpha, beta, gamma, delta, expect_stable)
        (2.0, 1.0, -0.1, -0.5, True),    # canonical: steep phase curve
        (2.0, 8.0, -2.0, -0.5, False),   # canonical: shallow phase curve
        (2.0, 1.0, -0.1, 0.5, False),    # angle flip -> saddle
        (-0.2, 1.0, 1.0, -2.0, True),    # tf flip, phase damping wins
        (-0.2, 1.0, 0.05, -2.0, False),  # tf flip, saddle
        (-1.0, 2.0, -0.5, 0.5, False),   # double flip (always a saddle)
    ]

    @pytest.mark.parametrize("alpha,beta,gamma,delta,expect", CASES)
    def test_rule_matches_jacobian(self, alpha, beta, gamma, delta, expect):
        tank = ParallelRLC(r=1000.0, l=100e-6, c=10e-9)
        fake = _FakeDF(alpha, beta, gamma, delta, r=tank.peak_resistance)
        flow = SlowFlow(fake, tank, tank.center_frequency)  # phi_d = 0
        jacobian = classify_by_jacobian(flow, fake.a0, fake.phi0)
        assert jacobian.stable == expect
        rule = paper_slope_rule(
            -delta / gamma,
            -beta / alpha,
            tf_decreasing_with_a=alpha > 0,
            angle_increasing_with_phi=delta < 0,
        )
        assert rule.stable == jacobian.stable

    @pytest.mark.parametrize("alpha,beta,gamma,delta,expect", CASES)
    def test_slope_rule_at_matches_jacobian(self, alpha, beta, gamma, delta, expect):
        # The numerical front-end must land on the same verdict from the
        # i1 surface alone (finite differences + crossing orientation) in
        # the amplitude-damped chart (alpha > 0).  When T_f rises with A
        # the surfaces alone cannot certify the trace sign, so the rule
        # is conservative: it may demote a Jacobian-stable point but must
        # never promote an unstable one.
        from repro.core.stability import slope_rule_at

        tank = ParallelRLC(r=1000.0, l=100e-6, c=10e-9)
        fake = _FakeDF(alpha, beta, gamma, delta, r=tank.peak_resistance)

        class _Surface:
            """tf / angle_minus_i1 views over the fake i1 field."""

            def tf(self, a, phi, tank_r):
                i1 = fake.i1(a, phi)
                return -tank_r * np.real(i1) / (np.asarray(a) / 2.0)

            def angle_minus_i1(self, a, phi):
                return np.angle(-fake.i1(a, phi))

        verdict = slope_rule_at(
            _Surface(), tank.peak_resistance, 0.0, fake.a0, fake.phi0
        )
        assert verdict.method == "slope-rule"
        if alpha > 0:
            assert verdict.stable == expect
        else:
            assert not verdict.stable or expect


class TestMarginEdgeCases:
    class _StubFlow:
        def __init__(self, jac):
            self._jac = np.asarray(jac, dtype=float)

        def jacobian(self, amplitude, phi):
            return self._jac

    def test_eigenvalue_exactly_at_minus_margin_is_unstable(self):
        # The inequality is strict: Re(lambda) == -margin must NOT pass.
        flow = self._StubFlow(np.diag([-2.0, -10.0]))
        assert not classify_by_jacobian(flow, 1.0, 0.0, margin=2.0).stable
        assert classify_by_jacobian(flow, 1.0, 0.0, margin=1.9999).stable

    def test_zero_eigenvalue_unstable_at_default_margin(self):
        # A fold point (lambda = 0) is never classified stable.
        flow = self._StubFlow(np.diag([0.0, -1.0]))
        assert not classify_by_jacobian(flow, 1.0, 0.0).stable

    def test_margin_sign_is_immaterial(self):
        flow = self._StubFlow(np.diag([-2.0, -10.0]))
        down = classify_by_jacobian(flow, 1.0, 0.0, margin=-1.0)
        up = classify_by_jacobian(flow, 1.0, 0.0, margin=1.0)
        assert down.stable and up.stable
        assert not classify_by_jacobian(flow, 1.0, 0.0, margin=-3.0).stable

    def test_verdict_usable_in_conditionals(self):
        flow = self._StubFlow(np.diag([-2.0, -10.0]))
        verdict = classify_by_jacobian(flow, 1.0, 0.0)
        taken = "stable" if verdict else "unstable"
        assert taken == "stable"


class TestSlopeRuleAtOnRealLocks:
    def test_agreement_on_paper_oscillator(self, setup):
        # slope_rule_at vs the Jacobian on every tanh lock, centred and
        # detuned — the same cross-check the verify harness sweeps over
        # the full scenario matrix.
        from repro.core.stability import slope_rule_at

        tanh, tank = setup
        df = TwoToneDF(tanh, 0.03, 3)
        for w_scale in (1.0, 1.0005):
            w_injection = 3 * tank.center_frequency * w_scale
            solution = solve_lock_states(
                tanh, tank, v_i=0.03, w_injection=w_injection, n=3
            )
            assert solution.locks
            for lock in solution.locks:
                verdict = slope_rule_at(
                    df,
                    tank.peak_resistance,
                    solution.phi_d,
                    lock.amplitude,
                    lock.phi,
                )
                assert verdict.stable == lock.stable
