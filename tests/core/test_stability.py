"""Tests for stability classification (Appendix VI-B3)."""

import numpy as np
import pytest

from repro.core import solve_lock_states
from repro.core.averaging import SlowFlow
from repro.core.stability import classify_by_jacobian, paper_slope_rule
from repro.core.two_tone import TwoToneDF
from repro.nonlin import NegativeTanh
from repro.tank import ParallelRLC


@pytest.fixture(scope="module")
def setup():
    return (
        NegativeTanh(gm=2.5e-3, i_sat=1e-3),
        ParallelRLC(r=1000.0, l=100e-6, c=10e-9),
    )


class TestPaperSlopeRule:
    def test_canonical_stable(self):
        # Steeper phase curve than magnitude curve -> stable.
        assert paper_slope_rule(10.0, 0.1).stable

    def test_canonical_unstable(self):
        assert not paper_slope_rule(0.1, 10.0).stable

    def test_equality_counts_as_stable(self):
        assert paper_slope_rule(1.0, 1.0).stable

    def test_one_flip_inverts(self):
        assert not paper_slope_rule(10.0, 0.1, tf_decreasing_with_a=False).stable
        assert not paper_slope_rule(
            10.0, 0.1, angle_increasing_with_phi=False
        ).stable

    def test_double_flip_restores(self):
        verdict = paper_slope_rule(
            10.0,
            0.1,
            tf_decreasing_with_a=False,
            angle_increasing_with_phi=False,
        )
        assert verdict.stable

    def test_method_tag(self):
        assert paper_slope_rule(1.0, 0.0).method == "slope-rule"


class TestJacobianClassification:
    def test_eigenvalues_reported(self, setup):
        tanh, tank = setup
        solution = solve_lock_states(
            tanh, tank, v_i=0.03, w_injection=3 * tank.center_frequency, n=3
        )
        flow = SlowFlow(TwoToneDF(tanh, 0.03, 3), tank, tank.center_frequency)
        lock = solution.stable_locks[0]
        verdict = classify_by_jacobian(flow, lock.amplitude, lock.phi)
        assert verdict.method == "jacobian"
        assert verdict.eigenvalues is not None
        assert all(ev.real < 0 for ev in verdict.eigenvalues)

    def test_unstable_lock_has_positive_eigenvalue(self, setup):
        tanh, tank = setup
        solution = solve_lock_states(
            tanh, tank, v_i=0.03, w_injection=3 * tank.center_frequency, n=3
        )
        flow = SlowFlow(TwoToneDF(tanh, 0.03, 3), tank, tank.center_frequency)
        unstable = [lock for lock in solution.locks if not lock.stable][0]
        verdict = classify_by_jacobian(flow, unstable.amplitude, unstable.phi)
        assert any(ev.real > 0 for ev in verdict.eigenvalues)

    def test_margin_demotes_marginal_locks(self, setup):
        tanh, tank = setup
        solution = solve_lock_states(
            tanh, tank, v_i=0.03, w_injection=3 * tank.center_frequency, n=3
        )
        flow = SlowFlow(TwoToneDF(tanh, 0.03, 3), tank, tank.center_frequency)
        lock = solution.stable_locks[0]
        huge_margin = 1e12  # far beyond any physical relaxation rate
        verdict = classify_by_jacobian(
            flow, lock.amplitude, lock.phi, margin=huge_margin
        )
        assert not verdict.stable

    def test_amplitude_eigenvalue_scale(self, setup):
        # The amplitude relaxation rate should be on the order of the
        # envelope rate 1/(2RC) (half tank bandwidth).
        tanh, tank = setup
        solution = solve_lock_states(
            tanh, tank, v_i=0.03, w_injection=3 * tank.center_frequency, n=3
        )
        flow = SlowFlow(TwoToneDF(tanh, 0.03, 3), tank, tank.center_frequency)
        lock = solution.stable_locks[0]
        verdict = classify_by_jacobian(flow, lock.amplitude, lock.phi)
        rates = sorted(abs(ev.real) for ev in verdict.eigenvalues)
        assert rates[-1] == pytest.approx(flow.rate, rel=2.0)

    def test_bool_protocol(self):
        from repro.core.stability import StabilityVerdict

        assert bool(StabilityVerdict(stable=True, method="x"))
        assert not bool(StabilityVerdict(stable=False, method="x"))


class TestSlopeRuleAgreesWithJacobian:
    def test_agreement_on_detuned_locks(self, setup):
        # The graphical rule and the rigorous Jacobian must agree for the
        # paper's canonical picture (detuned tanh oscillator).
        tanh, tank = setup
        w_i = tank.center_frequency * 1.001
        solution = solve_lock_states(tanh, tank, v_i=0.03, w_injection=3 * w_i, n=3)
        assert len(solution.locks) == 2
        df = TwoToneDF(tanh, 0.03, 3)
        flow = SlowFlow(df, tank, w_i)
        for lock in solution.locks:
            # Build local slopes of the two condition curves numerically:
            # dA/dphi along each level set via implicit differentiation.
            h_a = 1e-5 * lock.amplitude
            h_p = 1e-5
            def tf_fn(a, p):
                return float(df.tf(a, p, tank.peak_resistance))
            def ang_fn(a, p):
                return float(df.angle_minus_i1(a, p)) + solution.phi_d
            d_tf_da = (tf_fn(lock.amplitude + h_a, lock.phi) - tf_fn(lock.amplitude - h_a, lock.phi)) / (2 * h_a)
            d_tf_dp = (tf_fn(lock.amplitude, lock.phi + h_p) - tf_fn(lock.amplitude, lock.phi - h_p)) / (2 * h_p)
            d_an_da = (ang_fn(lock.amplitude + h_a, lock.phi) - ang_fn(lock.amplitude - h_a, lock.phi)) / (2 * h_a)
            d_an_dp = (ang_fn(lock.amplitude, lock.phi + h_p) - ang_fn(lock.amplitude, lock.phi - h_p)) / (2 * h_p)
            slope_tf = -d_tf_dp / d_tf_da
            slope_an = -d_an_dp / d_an_da
            verdict = paper_slope_rule(
                slope_an,
                slope_tf,
                tf_decreasing_with_a=d_tf_da < 0,
                angle_increasing_with_phi=d_an_dp > 0,
            )
            assert verdict.stable == lock.stable, (
                f"slope rule disagrees with Jacobian at phi={lock.phi:.3f}"
            )
