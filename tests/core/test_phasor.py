"""Tests for phasor-diagram helpers (circle property, state fan)."""

import numpy as np
import pytest

from repro.core.phasor import (
    circle_locus,
    phase_difference,
    projection_construction,
    state_fan,
)
from repro.tank import ParallelRLC


@pytest.fixture
def tank():
    return ParallelRLC(r=1000.0, l=100e-6, c=10e-9)


class TestCircleLocus:
    def test_locus_is_circle(self, tank):
        locus = circle_locus(tank, 1e-3 + 0j, n_points=200, span=0.3)
        diameter = 1e-3 * tank.peak_resistance
        center = diameter / 2.0
        assert np.allclose(np.abs(locus - center), center, rtol=1e-9)

    def test_resonance_point_on_locus(self, tank):
        locus = circle_locus(tank, 1e-3 + 0j, n_points=201, span=0.3)
        # The mid-sample is the centre frequency: output = input * R.
        assert locus[100] == pytest.approx(1.0 + 0j, rel=1e-9)

    def test_input_phase_rotates_locus(self, tank):
        base = circle_locus(tank, 1e-3 + 0j, n_points=50)
        rotated = circle_locus(tank, 1e-3 * np.exp(1j * 0.7), n_points=50)
        assert np.allclose(rotated, base * np.exp(1j * 0.7), rtol=1e-12)


class TestProjectionConstruction:
    def test_exact_for_rlc(self, tank):
        picture = projection_construction(tank, 2e-3 + 0j, 1.07 * tank.center_frequency)
        assert picture["output"] == pytest.approx(picture["projection"], rel=1e-9)

    def test_phi_d_reported(self, tank):
        w = 0.95 * tank.center_frequency
        picture = projection_construction(tank, 1e-3 + 0j, w)
        assert picture["phi_d"] == pytest.approx(float(tank.phase(np.asarray(w))))


class TestStateFan:
    def test_magnitudes(self):
        fan = state_fan(1.2, np.array([0.0, 2.0, 4.0]))
        assert np.allclose(np.abs(fan), 0.6)

    def test_angles(self):
        phases = np.array([0.5, 2.5, 4.5])
        fan = state_fan(2.0, phases)
        assert np.allclose(np.angle(fan), np.angle(np.exp(1j * phases)))


class TestPhaseDifference:
    def test_basic(self):
        assert phase_difference(1j, 1.0) == pytest.approx(np.pi / 2)

    def test_wraps_to_principal(self):
        a = np.exp(1j * 3.0)
        b = np.exp(-1j * 3.0)
        assert abs(phase_difference(a, b)) <= np.pi

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            phase_difference(0.0, 1.0)
