"""Tests for the FHIL view (Section III-B) and its phasor construction."""

import numpy as np
import pytest

from repro.core import fhil_lock_range, solve_fhil
from repro.core.fhil import phasor_triangle
from repro.nonlin import NegativeTanh
from repro.tank import ParallelRLC


@pytest.fixture(scope="module")
def setup():
    return (
        NegativeTanh(gm=2.5e-3, i_sat=1e-3),
        ParallelRLC(r=1000.0, l=100e-6, c=10e-9),
    )


class TestSolveFhil:
    def test_lock_exists_at_center(self, setup):
        tanh, tank = setup
        locks = solve_fhil(tanh, tank, v_i=0.03, w_injection=tank.center_frequency)
        assert any(lock.stable for lock in locks)

    def test_drive_amplitude_composition(self, setup):
        tanh, tank = setup
        locks = solve_fhil(tanh, tank, v_i=0.03, w_injection=tank.center_frequency)
        for lock in locks:
            expected = 2.0 * abs(lock.amplitude / 2.0 + 0.03 * np.exp(1j * lock.phi))
            assert lock.drive_amplitude == pytest.approx(expected, rel=1e-12)

    def test_phasor_triangle_closes_with_vi(self, setup):
        # The injection phasor closing the Fig. 5 triangle must have the
        # configured magnitude |V_i|.
        tanh, tank = setup
        w = tank.center_frequency * 1.0015
        locks = solve_fhil(tanh, tank, v_i=0.03, w_injection=w)
        stable = [lock for lock in locks if lock.stable][0]
        triangle = phasor_triangle(tanh, tank, stable, w)
        assert abs(triangle["injection"]) == pytest.approx(0.03, rel=2e-2)
        assert triangle["input"] == pytest.approx(
            triangle["tank_output"] + triangle["injection"]
        )

    def test_tank_output_rotated_by_phi_d(self, setup):
        tanh, tank = setup
        w = tank.center_frequency * 1.002
        locks = solve_fhil(tanh, tank, v_i=0.03, w_injection=w)
        stable = [lock for lock in locks if lock.stable][0]
        triangle = phasor_triangle(tanh, tank, stable, w)
        phi_d = float(tank.phase(np.asarray(w)))
        assert np.angle(triangle["tank_output"]) == pytest.approx(phi_d, abs=1e-9)


class TestFhilLockRange:
    def test_adler_scaling(self, setup):
        # Weak-injection FHIL: half-range ~ (w_c / 2Q) * V_inj / A_0 —
        # within ~20% for V_i well below the oscillation amplitude.
        from repro.core import predict_natural_oscillation

        tanh, tank = setup
        natural = predict_natural_oscillation(tanh, tank)
        v_i = 0.01
        lr = fhil_lock_range(tanh, tank, v_i=v_i)
        adler_half = tank.center_frequency / (2 * tank.quality_factor) * (
            2 * v_i / natural.amplitude
        )
        measured_half = lr.width / 2.0
        assert measured_half == pytest.approx(adler_half, rel=0.25)

    def test_range_linear_in_weak_injection(self, setup):
        tanh, tank = setup
        w1 = fhil_lock_range(tanh, tank, v_i=0.005).width
        w2 = fhil_lock_range(tanh, tank, v_i=0.01).width
        assert w2 == pytest.approx(2.0 * w1, rel=0.08)
