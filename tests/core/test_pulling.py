"""Tests for injection-pulling analysis."""

import numpy as np
import pytest

from repro.core import analyze_pulling, predict_lock_range
from repro.nonlin import NegativeTanh
from repro.tank import ParallelRLC


@pytest.fixture(scope="module")
def setup():
    return (
        NegativeTanh(gm=2.5e-3, i_sat=1e-3),
        ParallelRLC(r=1000.0, l=100e-6, c=10e-9),
    )


@pytest.fixture(scope="module")
def lock_range(setup):
    tanh, tank = setup
    return predict_lock_range(tanh, tank, v_i=0.03, n=3)


class TestAnalyzePulling:
    def test_inside_range_locks(self, setup, lock_range):
        tanh, tank = setup
        w_inj = 0.5 * (lock_range.injection_lower + lock_range.injection_upper)
        result = analyze_pulling(tanh, tank, v_i=0.03, w_injection=w_inj, n=3)
        assert result.locked
        assert result.beat_frequency == 0.0
        assert result.amplitude_depth == 0.0

    def test_outside_range_beats(self, setup, lock_range):
        tanh, tank = setup
        w_inj = lock_range.injection_upper * 1.005
        result = analyze_pulling(tanh, tank, v_i=0.03, w_injection=w_inj, n=3)
        assert not result.locked
        assert result.beat_frequency > 0.0
        # Envelope breathes as the phase slips through the dead lock point.
        assert result.amplitude_depth > 1e-4

    def test_beat_slows_near_edge(self, setup, lock_range):
        # Critical slowing: the beat just outside the edge is far slower
        # than the open-loop detuning suggests.
        tanh, tank = setup
        edge = lock_range.injection_upper
        near = analyze_pulling(
            tanh, tank, v_i=0.03, w_injection=edge * 1.0005, n=3
        )
        far = analyze_pulling(
            tanh, tank, v_i=0.03, w_injection=edge * 1.01, n=3
        )
        assert not near.locked and not far.locked
        assert near.beat_frequency < 0.5 * far.beat_frequency

    def test_far_detuning_beat_approaches_detuning(self, setup, lock_range):
        # Well outside the range the oscillator free-runs: the beat
        # approaches the open-loop offset |w_inj/n - w_c|.
        tanh, tank = setup
        w_inj = lock_range.injection_upper * 1.05
        result = analyze_pulling(tanh, tank, v_i=0.03, w_injection=w_inj, n=3)
        open_loop = abs(w_inj / 3 - tank.center_frequency)
        assert result.beat_frequency == pytest.approx(open_loop, rel=0.2)

    def test_amplitude_mean_near_natural(self, setup, lock_range):
        from repro.core import predict_natural_oscillation

        tanh, tank = setup
        natural = predict_natural_oscillation(tanh, tank)
        result = analyze_pulling(
            tanh, tank, v_i=0.03,
            w_injection=lock_range.injection_upper * 1.01, n=3,
        )
        assert result.amplitude_mean == pytest.approx(natural.amplitude, rel=0.05)

    def test_trajectory_returned(self, setup, lock_range):
        tanh, tank = setup
        result = analyze_pulling(
            tanh, tank, v_i=0.03,
            w_injection=lock_range.injection_upper * 1.01, n=3,
        )
        assert result.t.size == result.amplitude.size == result.phi.size
        assert result.t.size > 1000
