"""Tests for the inverse-design helpers and the lock phase-noise model."""

import numpy as np
import pytest

from repro.core import predict_lock_range
from repro.core.design import injection_for_lock_range, lock_range_sensitivity
from repro.core.noise import phase_noise_suppression
from repro.nonlin import NegativeTanh
from repro.tank import ParallelRLC


@pytest.fixture(scope="module")
def setup():
    return (
        NegativeTanh(gm=2.5e-3, i_sat=1e-3),
        ParallelRLC(r=1000.0, l=100e-6, c=10e-9),
    )


class TestInjectionForLockRange:
    def test_inverts_the_forward_map(self, setup):
        tanh, tank = setup
        target = 1000.0  # Hz
        v_i, lock_range = injection_for_lock_range(
            tanh, tank, n=3, target_width_hz=target, n_a=81, n_phi=121
        )
        assert lock_range.width_hz == pytest.approx(target, rel=2e-3)
        # Consistency: the forward map at the found v_i reproduces it.
        forward = predict_lock_range(tanh, tank, v_i=v_i, n=3, n_a=81, n_phi=121)
        assert forward.width_hz == pytest.approx(target, rel=5e-3)

    def test_monotone_in_target(self, setup):
        tanh, tank = setup
        v_small, __ = injection_for_lock_range(
            tanh, tank, n=3, target_width_hz=500.0, n_a=61, n_phi=101
        )
        v_large, __ = injection_for_lock_range(
            tanh, tank, n=3, target_width_hz=2000.0, n_a=61, n_phi=101
        )
        assert v_large > v_small

    def test_unreachable_target_rejected(self, setup):
        tanh, tank = setup
        with pytest.raises(ValueError, match="bracket"):
            injection_for_lock_range(
                tanh, tank, n=3, target_width_hz=1e9,
                v_i_bracket=(1e-3, 0.05), n_a=61, n_phi=101,
            )

    def test_bad_bracket_rejected(self, setup):
        tanh, tank = setup
        with pytest.raises(ValueError):
            injection_for_lock_range(
                tanh, tank, n=3, target_width_hz=100.0, v_i_bracket=(0.1, 0.1)
            )


class TestLockRangeSensitivity:
    def test_vi_exponent_near_unity(self, setup):
        # Weak injection: width ~ V_i (Adler), so d log W / d log V_i ~ 1.
        tanh, tank = setup
        s = lock_range_sensitivity(
            tanh, tank, v_i=0.01, n=3, n_a=61, n_phi=101
        )
        assert s["dlogW_dlogVi"] == pytest.approx(1.0, abs=0.15)

    def test_q_exponent_near_minus_one(self, setup):
        # Width ~ bandwidth ~ 1/Q at fixed phase reach... the R change also
        # alters the amplitude, so the exponent sits near but not exactly
        # at -1.
        tanh, tank = setup
        s = lock_range_sensitivity(
            tanh, tank, v_i=0.03, n=3, n_a=61, n_phi=101
        )
        assert -1.6 < s["dlogW_dlogQ"] < -0.5


class TestPhaseNoiseSuppression:
    def test_model_at_center(self, setup):
        tanh, tank = setup
        model = phase_noise_suppression(
            tanh, tank, v_i=0.03, w_injection=3 * tank.center_frequency, n=3
        )
        # Rates positive, phase slower than amplitude, corner well inside
        # the tank bandwidth.
        assert 0.0 < model.relock_rate <= model.amplitude_rate
        assert model.corner_hz < tank.bandwidth / (2 * np.pi)

    def test_transfer_function_shape(self, setup):
        tanh, tank = setup
        model = phase_noise_suppression(
            tanh, tank, v_i=0.03, w_injection=3 * tank.center_frequency, n=3
        )
        f = np.array([model.corner_hz / 100, model.corner_hz, model.corner_hz * 100])
        h_osc = model.oscillator_noise_transfer(f)
        assert h_osc[0] < 1e-3          # deep suppression well below corner
        assert h_osc[1] == pytest.approx(0.5, rel=1e-6)  # -3 dB at corner
        assert h_osc[2] > 0.999          # untouched far above

    def test_injection_transfer_complements(self, setup):
        tanh, tank = setup
        model = phase_noise_suppression(
            tanh, tank, v_i=0.03, w_injection=3 * tank.center_frequency, n=3
        )
        f = np.logspace(-2, 2, 9) * model.corner_hz
        h_inj = model.injection_noise_transfer(f)
        # Low-passed and divided by n^2 = 9.
        assert h_inj[0] == pytest.approx(1.0 / 9.0, rel=1e-3)
        assert h_inj[-1] < 1e-4

    def test_corner_shrinks_toward_lock_edge(self, setup):
        # Locks near the edge re-lock slowly: worse noise suppression —
        # the design hazard the model exposes.
        tanh, tank = setup
        lr = predict_lock_range(tanh, tank, v_i=0.03, n=3)
        w_center = 3 * tank.center_frequency
        center = phase_noise_suppression(
            tanh, tank, v_i=0.03, w_injection=w_center, n=3
        )
        near_edge = phase_noise_suppression(
            tanh, tank, v_i=0.03,
            w_injection=w_center + 0.98 * (lr.injection_upper - w_center), n=3,
        )
        assert near_edge.relock_rate < 0.5 * center.relock_rate

    def test_unlocked_raises(self, setup):
        tanh, tank = setup
        with pytest.raises(RuntimeError, match="no stable lock"):
            phase_noise_suppression(
                tanh, tank, v_i=0.03,
                w_injection=3 * tank.center_frequency * 1.05, n=3,
            )

    def test_corner_grows_with_injection(self, setup):
        tanh, tank = setup
        weak = phase_noise_suppression(
            tanh, tank, v_i=0.01, w_injection=3 * tank.center_frequency, n=3
        )
        strong = phase_noise_suppression(
            tanh, tank, v_i=0.05, w_injection=3 * tank.center_frequency, n=3
        )
        assert strong.relock_rate > weak.relock_rate
