"""Tests for natural-oscillation prediction (Fig. 3 flow + VI-A1 stability)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.natural import (
    NoOscillationError,
    find_all_amplitudes,
    predict_natural_oscillation,
)
from repro.nonlin import (
    CubicNonlinearity,
    FunctionNonlinearity,
    NegativeTanh,
    PiecewiseLinearNegativeResistance,
)
from repro.tank import ParallelRLC


@pytest.fixture
def tank():
    return ParallelRLC(r=1000.0, l=100e-6, c=10e-9)


class TestPredictNaturalOscillation:
    def test_cubic_matches_closed_form(self, tank, cubic_nonlinearity):
        natural = predict_natural_oscillation(cubic_nonlinearity, tank)
        assert natural.amplitude == pytest.approx(
            cubic_nonlinearity.natural_amplitude(1000.0), rel=1e-9
        )
        assert natural.stable

    def test_frequency_is_tank_center(self, tank, tanh_nonlinearity):
        natural = predict_natural_oscillation(tanh_nonlinearity, tank)
        assert natural.frequency == tank.center_frequency
        assert natural.frequency_hz == pytest.approx(159154.94, rel=1e-6)

    def test_tanh_deep_saturation_limit(self, tank):
        # Hard-limited oscillator: A -> (4/pi) R i_sat as gain -> inf.
        f = NegativeTanh(gm=1.0, i_sat=1e-3)
        natural = predict_natural_oscillation(f, tank)
        assert natural.amplitude == pytest.approx(4.0 / np.pi * 1.0, rel=1e-3)

    def test_pwl_oracle(self, tank):
        # Solve N(A) * R = 1 with the classic limiter formula as oracle.
        from scipy.optimize import brentq

        f = PiecewiseLinearNegativeResistance(g=2.5e-3, v_knee=0.1)
        natural = predict_natural_oscillation(f, tank)
        oracle = brentq(lambda a: 1000.0 * f.fundamental_gain(a) - 1.0, 0.11, 5.0)
        assert natural.amplitude == pytest.approx(oracle, rel=1e-3)

    def test_startup_failure_raises(self, tank):
        weak = NegativeTanh(gm=0.5e-3, i_sat=1e-3)  # R gm = 0.5 < 1
        with pytest.raises(NoOscillationError, match="start-up"):
            predict_natural_oscillation(weak, tank)

    def test_marginal_startup_raises(self, tank):
        marginal = NegativeTanh(gm=1.0e-3, i_sat=1e-3)  # R gm = 1 exactly
        with pytest.raises(NoOscillationError):
            predict_natural_oscillation(marginal, tank)

    def test_slope_negative_at_stable_solution(self, tank, tanh_nonlinearity):
        natural = predict_natural_oscillation(tanh_nonlinearity, tank)
        assert natural.tf_slope < 0.0

    def test_curve_data_brackets_solution(self, tank, tanh_nonlinearity):
        natural = predict_natural_oscillation(tanh_nonlinearity, tank)
        assert natural.amplitude_grid[0] < natural.amplitude < natural.amplitude_grid[-1]
        assert natural.tf_curve.shape == natural.amplitude_grid.shape

    def test_loop_gain_reported(self, tank, tanh_nonlinearity):
        natural = predict_natural_oscillation(tanh_nonlinearity, tank)
        assert natural.loop_gain_small_signal == pytest.approx(2.5)

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=1.2e-3, max_value=8e-3))
    def test_amplitude_increases_with_gm(self, gm):
        tank = ParallelRLC(r=1000.0, l=100e-6, c=10e-9)
        lo = predict_natural_oscillation(NegativeTanh(gm=1.1e-3, i_sat=1e-3), tank)
        hi = predict_natural_oscillation(NegativeTanh(gm=gm, i_sat=1e-3), tank)
        assert hi.amplitude >= lo.amplitude - 1e-12

    def test_amplitude_scales_with_r_isat_product(self):
        # In deep saturation A ~ (4/pi) R i_sat: doubling R doubles A.
        f = NegativeTanh(gm=1.0, i_sat=1e-3)
        a1 = predict_natural_oscillation(
            f, ParallelRLC(r=1000.0, l=100e-6, c=10e-9)
        ).amplitude
        a2 = predict_natural_oscillation(
            f, ParallelRLC(r=2000.0, l=100e-6, c=10e-9)
        ).amplitude
        assert a2 == pytest.approx(2.0 * a1, rel=1e-3)


class TestFindAllAmplitudes:
    def test_single_crossing_for_tanh(self, tanh_nonlinearity):
        solutions = find_all_amplitudes(tanh_nonlinearity, 1000.0)
        assert len(solutions) == 1
        assert solutions[0][1] < 0.0

    def test_multiple_crossings_for_wiggly_f(self):
        # A crafted N-shaped describing function: negative conductance
        # that strengthens again at mid amplitudes produces an unstable
        # crossing sandwiched between stable ones.
        def law(v):
            return -2.5e-3 * v + 1.2e-3 * v**3 - 0.12e-3 * v**5

        f = FunctionNonlinearity(law, name="quintic")
        solutions = find_all_amplitudes(f, 1000.0, a_max=4.0, n_grid=2000)
        assert len(solutions) >= 2
        signs = [np.sign(s) for _, s in solutions]
        # Alternating stability along increasing amplitude.
        assert signs[0] < 0 or signs[1] < 0

    def test_respects_a_max(self, tanh_nonlinearity):
        solutions = find_all_amplitudes(tanh_nonlinearity, 1000.0, a_max=0.5)
        # Natural amplitude ~1.2 V is outside a 0.5 V window.
        assert solutions == []
