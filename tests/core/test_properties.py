"""Cross-cutting property-based tests on the core machinery.

These hypothesis tests draw *random smooth nonlinearities* (odd quintics
with a guaranteed negative-resistance origin and guaranteed limiting) and
check the structural invariants the theory promises for every member of
the class — not just the fixtures the example-based tests use.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.describing_function import fundamental_coefficient
from repro.core.natural import predict_natural_oscillation
from repro.core.two_tone import two_tone_fundamental
from repro.nonlin import FunctionNonlinearity
from repro.tank import ParallelRLC


def _random_limiter(a, b, c):
    """Odd quintic ``-a v + b v^3 + c v^5`` with limiting guaranteed."""

    def law(v):
        v = np.asarray(v, dtype=float)
        return -a * v + b * v**3 + c * v**5

    return FunctionNonlinearity(law, name=f"quintic({a:.2e},{b:.2e},{c:.2e})")


nonlin_params = st.tuples(
    st.floats(min_value=1.5e-3, max_value=6e-3),   # a: startup gain 1.5..6
    st.floats(min_value=1e-4, max_value=2e-3),     # b
    st.floats(min_value=1e-5, max_value=5e-4),     # c: quintic limiting
)


@pytest.fixture(scope="module")
def tank():
    return ParallelRLC(r=1000.0, l=100e-6, c=10e-9)


class TestDescribingFunctionProperties:
    @settings(max_examples=25, deadline=None)
    @given(nonlin_params, st.floats(min_value=0.05, max_value=2.0))
    def test_single_tone_i1_is_real(self, params, amplitude):
        f = _random_limiter(*params)
        i1 = fundamental_coefficient(f, np.asarray([amplitude]))
        assert np.isrealobj(i1)

    @settings(max_examples=25, deadline=None)
    @given(
        nonlin_params,
        st.floats(min_value=0.2, max_value=1.5),
        st.floats(min_value=0.0, max_value=2 * np.pi),
        st.integers(min_value=1, max_value=5),
    )
    def test_two_tone_conjugate_symmetry(self, params, amplitude, phi, n):
        f = _random_limiter(*params)
        plus = complex(two_tone_fundamental(f, np.asarray(amplitude), 0.04, np.asarray(phi), n))
        minus = complex(two_tone_fundamental(f, np.asarray(amplitude), 0.04, np.asarray(-phi), n))
        assert minus == pytest.approx(np.conj(plus), abs=1e-14)

    @settings(max_examples=25, deadline=None)
    @given(
        nonlin_params,
        st.floats(min_value=0.2, max_value=1.5),
        st.floats(min_value=0.0, max_value=2 * np.pi),
        st.integers(min_value=2, max_value=4),
    )
    def test_two_tone_reduces_continuously_to_single(self, params, amplitude, phi, n):
        # I_1(A, V_i -> 0, phi) must converge to the single-tone value,
        # linearly in V_i.
        f = _random_limiter(*params)
        base = float(fundamental_coefficient(f, np.asarray([amplitude]))[0])
        small = complex(
            two_tone_fundamental(f, np.asarray(amplitude), 1e-4, np.asarray(phi), n)
        )
        tiny = complex(
            two_tone_fundamental(f, np.asarray(amplitude), 1e-5, np.asarray(phi), n)
        )
        assert abs(tiny - base) < 0.15 * abs(small - base) + 1e-12


class TestNaturalOscillationProperties:
    @settings(max_examples=15, deadline=None)
    @given(nonlin_params)
    def test_oscillation_exists_and_tf_unity(self, params):
        f = _random_limiter(*params)
        tank = ParallelRLC(r=1000.0, l=100e-6, c=10e-9)
        natural = predict_natural_oscillation(f, tank)
        i1 = float(fundamental_coefficient(f, np.asarray([natural.amplitude]))[0])
        tf = -1000.0 * i1 / (natural.amplitude / 2.0)
        assert tf == pytest.approx(1.0, abs=1e-8)
        assert natural.stable

    @settings(max_examples=10, deadline=None)
    @given(nonlin_params)
    def test_amplitude_within_physical_bounds(self, params):
        # Amplitude must exceed the small-signal-only estimate's zero and
        # stay below where the quintic restoring force dominates hard.
        f = _random_limiter(*params)
        tank = ParallelRLC(r=1000.0, l=100e-6, c=10e-9)
        natural = predict_natural_oscillation(f, tank)
        assert 0.01 < natural.amplitude < 10.0


class TestLockRangeProperties:
    def test_amplitude_vs_frequency_is_dome(self):
        # A(w) across the lock range: maximal near the centre, decreasing
        # toward both edges (the paper's Fig. 14/18 observation).
        from repro.core import predict_lock_range
        from repro.nonlin import NegativeTanh

        tanh = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        tank = ParallelRLC(r=1000.0, l=100e-6, c=10e-9)
        lr = predict_lock_range(tanh, tank, v_i=0.03, n=3)
        w, a = lr.amplitude_vs_frequency()
        assert w.size > 20
        peak = int(np.argmax(a))
        assert 0 < peak < w.size - 1
        # Decreasing toward both ends from the peak (allow grid jitter).
        assert a[0] < a[peak] - 1e-4
        assert a[-1] < a[peak] - 1e-4
        # Peak near the centre frequency.
        assert w[peak] == pytest.approx(tank.center_frequency, rel=2e-3)


class TestTwoToneSpectrumProperties:
    """Structural invariants of the full two-tone current spectrum.

    These hold for *every* real (and, where stated, odd) device law, so
    they are checked on random quintics and on tabulated re-samplings of
    those quintics — the two nonlinearity families the verification
    matrix feeds through the solvers.
    """

    M_MAX = 9

    @staticmethod
    def _df(nonlinearity, v_i, n):
        from repro.core.two_tone import TwoToneDF

        return TwoToneDF(nonlinearity, v_i, n, use_disk_cache=False)

    @settings(max_examples=20, deadline=None)
    @given(
        nonlin_params,
        st.floats(min_value=0.2, max_value=1.5),
        st.floats(min_value=0.0, max_value=2 * np.pi),
        st.integers(min_value=1, max_value=5),
    )
    def test_spectrum_conjugate_symmetry(self, params, amplitude, phi, n):
        # Real drive, real law: reversing time maps phi -> -phi, so every
        # harmonic obeys I_m(A, -phi) = conj(I_m(A, phi)) — not just I_1.
        f = _random_limiter(*params)
        df = self._df(f, 0.04, n)
        plus = df.harmonic_phasors(amplitude, phi, self.M_MAX)
        minus = df.harmonic_phasors(amplitude, -phi, self.M_MAX)
        np.testing.assert_allclose(minus, np.conj(plus), atol=1e-14)

    @settings(max_examples=20, deadline=None)
    @given(
        nonlin_params,
        st.floats(min_value=0.2, max_value=1.5),
        st.floats(min_value=0.0, max_value=2 * np.pi),
        st.sampled_from([1, 3, 5]),
    )
    def test_odd_law_odd_n_kills_even_harmonics(self, params, amplitude, phi, n):
        # For odd f and odd n the drive obeys v(theta + pi) = -v(theta),
        # so the current has half-wave symmetry: even harmonics vanish.
        # (Even n breaks the symmetry — see the counterexample test.)
        f = _random_limiter(*params)
        df = self._df(f, 0.04, n)
        phasors = df.harmonic_phasors(amplitude, phi, self.M_MAX)
        odd_scale = float(np.abs(phasors[0::2]).max())
        even = np.abs(phasors[1::2])  # phasors[m-1] holds I_m
        assert even.max() < 1e-12 * max(odd_scale, 1.0)

    @settings(max_examples=10, deadline=None)
    @given(
        nonlin_params,
        st.floats(min_value=0.3, max_value=1.2),
        st.floats(min_value=0.0, max_value=2 * np.pi),
    )
    def test_even_n_regrows_even_harmonics(self, params, amplitude, phi):
        # Sanity counterexample: with n = 2 the injected tone sits on an
        # even harmonic, half-wave symmetry is broken, and the even lines
        # reappear at O(V_i) — the previous test is not vacuous.
        f = _random_limiter(*params)
        df = self._df(f, 0.04, 2)
        phasors = df.harmonic_phasors(amplitude, phi, self.M_MAX)
        assert np.abs(phasors[1::2]).max() > 1e-9

    @settings(max_examples=15, deadline=None)
    @given(
        nonlin_params,
        st.floats(min_value=0.2, max_value=1.5),
        st.floats(min_value=0.0, max_value=2 * np.pi),
        st.integers(min_value=1, max_value=4),
    )
    def test_vi_zero_is_exactly_single_tone(self, params, amplitude, phi, n):
        # At V_i = 0 the two-tone DF *is* the single-tone DF: same
        # quadrature, phi becomes a spectator.  Exact to roundoff.
        f = _random_limiter(*params)
        df = self._df(f, 0.0, n)
        i1 = complex(df.i1(amplitude, phi))
        base = float(fundamental_coefficient(f, np.asarray([amplitude]))[0])
        assert i1.real == pytest.approx(base, rel=1e-12, abs=1e-15)
        assert abs(i1.imag) < 1e-12 * max(abs(base), 1e-12)

    @settings(max_examples=10, deadline=None)
    @given(
        nonlin_params,
        st.floats(min_value=0.2, max_value=1.2),
        st.floats(min_value=0.0, max_value=2 * np.pi),
        st.sampled_from([1, 3]),
    )
    def test_invariants_survive_tabulation(self, params, amplitude, phi, n):
        # The verification matrix also runs tabulated (measured-style)
        # laws.  A symmetric linear-interpolation table of an odd law is
        # still odd, so both spectrum invariants must survive resampling.
        from repro.nonlin.tabulated import LinearTableNonlinearity

        f = _random_limiter(*params)
        v_max = 1.5 + 2 * 0.04  # covers A + 2 V_i for every draw
        table = LinearTableNonlinearity.from_nonlinearity(
            f, -v_max, v_max, n=4097
        )
        df = self._df(table, 0.04, n)
        plus = df.harmonic_phasors(amplitude, phi, self.M_MAX)
        minus = df.harmonic_phasors(amplitude, -phi, self.M_MAX)
        np.testing.assert_allclose(minus, np.conj(plus), atol=1e-14)
        odd_scale = float(np.abs(plus[0::2]).max())
        assert np.abs(plus[1::2]).max() < 1e-12 * max(odd_scale, 1.0)
