"""Tests for the SHIL lock-state solver (Fig. 7 automation)."""

import numpy as np
import pytest

from repro.core import solve_lock_states
from repro.core.averaging import SlowFlow
from repro.core.two_tone import TwoToneDF
from repro.nonlin import NegativeTanh
from repro.tank import ParallelRLC


@pytest.fixture(scope="module")
def setup():
    tanh = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
    tank = ParallelRLC(r=1000.0, l=100e-6, c=10e-9)
    return tanh, tank


@pytest.fixture(scope="module")
def center_solution(setup):
    tanh, tank = setup
    return solve_lock_states(
        tanh, tank, v_i=0.03, w_injection=3 * tank.center_frequency, n=3
    )


class TestSolveLockStatesAtCenter:
    def test_two_locks(self, center_solution):
        assert len(center_solution.locks) == 2

    def test_one_stable_one_unstable(self, center_solution):
        stabilities = sorted(lock.stable for lock in center_solution.locks)
        assert stabilities == [False, True]

    def test_total_states_multiple_of_n(self, center_solution):
        # Paper Section I: "the number of locks is a multiple of n".
        assert center_solution.total_states == 6
        assert center_solution.total_states % center_solution.n == 0

    def test_locked_property(self, center_solution):
        assert center_solution.locked

    def test_phi_d_zero_at_center(self, center_solution):
        assert center_solution.phi_d == pytest.approx(0.0, abs=1e-12)

    def test_residuals_converged(self, center_solution):
        for lock in center_solution.locks:
            assert lock.residual_norm < 1e-9

    def test_lock_conditions_satisfied(self, setup, center_solution):
        # Independently verify Eqs. (3)-(4) by direct quadrature.
        tanh, tank = setup
        df = TwoToneDF(tanh, 0.03, 3)
        for lock in center_solution.locks:
            i1 = complex(df.i1(lock.amplitude, lock.phi))
            tf = -1000.0 * i1.real / (lock.amplitude / 2.0)
            assert tf == pytest.approx(1.0, abs=1e-8)
            assert np.angle(-i1) == pytest.approx(-center_solution.phi_d, abs=1e-8)

    def test_locked_amplitude_exceeds_natural_at_center(self, setup, center_solution):
        # At zero detuning the in-phase injection adds energy.
        from repro.core import predict_natural_oscillation

        tanh, tank = setup
        natural = predict_natural_oscillation(tanh, tank)
        stable = center_solution.stable_locks[0]
        assert stable.amplitude > natural.amplitude

    def test_oscillator_phases_spacing(self, center_solution):
        for lock in center_solution.locks:
            spacing = np.diff(lock.oscillator_phases)
            assert np.allclose(spacing, 2 * np.pi / 3, atol=1e-9)

    def test_graphical_artifacts_present(self, center_solution):
        assert center_solution.tf_curves
        assert center_solution.phase_curves
        assert "tf" in center_solution.grid.surfaces
        assert "phase_residual" in center_solution.grid.surfaces


class TestSolveLockStatesDetuned:
    def test_no_lock_outside_range(self, setup):
        tanh, tank = setup
        solution = solve_lock_states(
            tanh, tank, v_i=0.03, w_injection=3 * tank.center_frequency * 1.01, n=3
        )
        assert not solution.locked
        assert solution.locks == []

    def test_detuned_locks_offset_in_phi(self, setup):
        tanh, tank = setup
        solution = solve_lock_states(
            tanh, tank, v_i=0.03, w_injection=3 * tank.center_frequency * 1.001, n=3
        )
        assert solution.locked
        stable = solution.stable_locks[0]
        # Off-centre lock needs a non-trivial phase to counter phi_d.
        assert abs(np.angle(np.exp(1j * (stable.phi - np.pi)))) > 0.05

    def test_mirror_detuning_mirrors_phase(self, setup):
        # Appendix VI-B3: (phi_s, A_s) at +detune <-> (-phi_s, A_s) at -detune.
        tanh, tank = setup
        up = solve_lock_states(
            tanh, tank, v_i=0.03, w_injection=3 * tank.center_frequency * 1.001, n=3
        )
        down = solve_lock_states(
            tanh, tank, v_i=0.03, w_injection=3 * tank.center_frequency * 0.999, n=3
        )
        stable_up = up.stable_locks[0]
        stable_down = down.stable_locks[0]
        assert stable_up.amplitude == pytest.approx(stable_down.amplitude, rel=1e-4)
        assert np.mod(stable_up.phi + stable_down.phi, 2 * np.pi) == pytest.approx(
            0.0, abs=1e-3
        ) or np.mod(stable_up.phi + stable_down.phi, 2 * np.pi) == pytest.approx(
            2 * np.pi, abs=1e-3
        )

    def test_locks_are_equilibria_of_slow_flow(self, setup):
        tanh, tank = setup
        w_i = tank.center_frequency * 1.0005
        solution = solve_lock_states(tanh, tank, v_i=0.03, w_injection=3 * w_i, n=3)
        flow = SlowFlow(TwoToneDF(tanh, 0.03, 3), tank, w_i)
        for lock in solution.locks:
            da, dphi = flow.rhs(lock.amplitude, lock.phi)
            # Rates normalised by the envelope rate are ~ 0.
            assert abs(da) / (lock.amplitude * flow.rate) < 1e-6
            assert abs(dphi) / flow.rate < 1e-5


class TestSolveLockStatesFhil:
    def test_n1_supported(self, setup):
        tanh, tank = setup
        solution = solve_lock_states(
            tanh, tank, v_i=0.03, w_injection=tank.center_frequency, n=1
        )
        assert solution.locked
        assert solution.n == 1

    def test_n1_wider_than_n3(self, setup):
        # Fundamental injection couples directly: for equal V_i the FHIL
        # lock persists at detunings that break the n=3 lock.
        # FHIL half-range here is ~0.25% (Adler), the n=3 SHIL range only
        # ~0.176%: a 0.2% detuning separates them.
        tanh, tank = setup
        w = tank.center_frequency * 1.002
        fhil = solve_lock_states(tanh, tank, v_i=0.03, w_injection=w, n=1)
        shil = solve_lock_states(tanh, tank, v_i=0.03, w_injection=3 * w, n=3)
        assert fhil.locked and not shil.locked


class TestValidation:
    def test_rejects_bad_n(self, setup):
        tanh, tank = setup
        with pytest.raises(ValueError):
            solve_lock_states(tanh, tank, v_i=0.03, w_injection=1e6, n=0)

    def test_rejects_bad_window(self, setup):
        tanh, tank = setup
        with pytest.raises(ValueError):
            solve_lock_states(
                tanh,
                tank,
                v_i=0.03,
                w_injection=3e6,
                n=3,
                amplitude_window=(1.0, 0.5),
            )

    def test_rejects_nonpositive_frequency(self, setup):
        tanh, tank = setup
        with pytest.raises(ValueError):
            solve_lock_states(tanh, tank, v_i=0.03, w_injection=0.0, n=3)
