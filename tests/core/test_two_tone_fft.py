"""FFT-factorised two-tone path against the dense quadrature referee.

The fast path must be an *implementation* change only: on every shipped
nonlinearity class and every paper order (including n = 1, i.e. FHIL) the
factorised ``I_1(A, phi)`` grid has to agree with the direct dense
quadrature to 1e-9 absolute — the ISSUE's acceptance bound.  Laws that
cannot meet the bound (piecewise-linear tables, whose psi-spectrum decays
too slowly) must be detected and routed to the dense fallback
automatically.
"""

import numpy as np
import pytest

from repro.core.describing_function import fundamental_coefficient
from repro.core.two_tone import (
    TwoToneDF,
    TwoToneSurface,
    two_tone_fundamental,
    two_tone_surface,
)
from repro.nonlin import (
    BiasedTunnelDiode,
    CrossCoupledDiffPair,
    LinearTableNonlinearity,
    NegativeTanh,
    TabulatedNonlinearity,
)

N_SAMPLES = 512
ACCEPTANCE_ATOL = 1e-9


def _tabulated_tanh() -> TabulatedNonlinearity:
    law = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
    v = np.linspace(-2.5, 2.5, 41)
    return TabulatedNonlinearity(v, law(v), name="tanh-table")


#: (constructor, amplitude window, v_i) per shipped nonlinearity class.
CASES = [
    pytest.param(NegativeTanh(gm=2.5e-3, i_sat=1e-3), (0.4, 1.7), 0.03, id="tanh"),
    pytest.param(CrossCoupledDiffPair(), (0.05, 0.35), 0.02, id="diffpair"),
    pytest.param(BiasedTunnelDiode(v_bias=0.25), (0.06, 0.28), 0.005, id="tunnel"),
    pytest.param(_tabulated_tanh(), (0.4, 1.6), 0.03, id="tabulated"),
]


class TestDenseEquivalence:
    @pytest.mark.parametrize("nonlinearity, window, v_i", CASES)
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_surface_matches_dense_referee(self, nonlinearity, window, v_i, n):
        amplitudes = np.linspace(window[0], window[1], 16)
        phis = np.linspace(0.0, 2.0 * np.pi, 33)
        surface = two_tone_surface(
            nonlinearity, amplitudes, v_i, n, N_SAMPLES
        )
        assert surface.converged
        fast = surface.i1_grid(phis)
        dense = two_tone_fundamental(
            nonlinearity, amplitudes[:, None], v_i, phis[None, :], n, N_SAMPLES
        )
        assert np.max(np.abs(fast - dense)) <= ACCEPTANCE_ATOL

    def test_higher_harmonics_match_quadrature(self):
        df = TwoToneDF(NegativeTanh(gm=2.5e-3, i_sat=1e-3), 0.03, 3,
                       n_samples=N_SAMPLES)
        amplitudes = np.linspace(0.5, 1.6, 8)
        surface = df.surface(amplitudes)
        phi = 1.234
        exact = df.harmonic_phasors(amplitudes[3], phi, 5)
        for m in range(1, 6):
            grid = surface.harmonic_grid(np.asarray([phi]), m=m)
            assert abs(grid[3, 0] - exact[m - 1]) <= ACCEPTANCE_ATOL

    def test_zero_injection_reduces_to_single_tone(self):
        law = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        amplitudes = np.linspace(0.4, 1.7, 9)
        surface = two_tone_surface(law, amplitudes, 0.0, 3, N_SAMPLES)
        i1 = surface.i1_grid(np.linspace(0.0, 2.0 * np.pi, 7))
        single = fundamental_coefficient(law, amplitudes)
        assert np.allclose(i1.real, single[:, None], atol=1e-14)
        assert np.max(np.abs(i1.imag)) < 1e-14
        # phi-independent by construction
        assert np.max(np.abs(i1 - i1[:, :1])) == 0.0


class TestNonConvergedFallback:
    def test_piecewise_linear_law_is_flagged(self):
        table = LinearTableNonlinearity.from_nonlinearity(
            NegativeTanh(gm=2.5e-3, i_sat=1e-3), -2.5, 2.5, 257
        )
        amplitudes = np.linspace(0.4, 1.7, 12)
        surface = two_tone_surface(table, amplitudes, 0.03, 3, N_SAMPLES)
        assert not surface.converged

    def test_characterize_falls_back_to_dense(self):
        table = LinearTableNonlinearity.from_nonlinearity(
            NegativeTanh(gm=2.5e-3, i_sat=1e-3), -2.5, 2.5, 257
        )
        amplitudes = np.linspace(0.4, 1.7, 12)
        half_cell = np.pi / 20.0
        phis = np.linspace(half_cell, 2.0 * np.pi + half_cell, 21)
        fast = TwoToneDF(table, 0.03, 3, n_samples=N_SAMPLES, method="fft")
        dense = TwoToneDF(table, 0.03, 3, n_samples=N_SAMPLES, method="dense")
        g_fast = fast.characterize(amplitudes, phis, 1000.0)
        g_dense = dense.characterize(amplitudes, phis, 1000.0)
        for name in ("i1x", "i1y", "tf"):
            assert np.max(
                np.abs(g_fast.surfaces[name] - g_dense.surfaces[name])
            ) <= 1e-12


class TestCharacterizeCaching:
    def test_repeat_call_returns_same_object(self, tanh_nonlinearity):
        df = TwoToneDF(tanh_nonlinearity, 0.03, 3, n_samples=N_SAMPLES)
        amplitudes = np.linspace(0.4, 1.7, 10)
        phis = np.linspace(0.1, 2.0 * np.pi + 0.1, 11)
        first = df.characterize(amplitudes, phis, 1000.0)
        assert df.characterize(amplitudes, phis, 1000.0) is first

    def test_same_endpoints_different_spacing_not_conflated(
        self, tanh_nonlinearity
    ):
        # Regression: the memo used to key on (endpoints, size) only, so a
        # geometric grid sharing the endpoints of a linear one silently
        # reused the wrong surfaces.
        df = TwoToneDF(tanh_nonlinearity, 0.03, 3, n_samples=N_SAMPLES)
        phis = np.linspace(0.1, 2.0 * np.pi + 0.1, 11)
        linear = np.linspace(0.4, 1.7, 10)
        geometric = np.geomspace(0.4, 1.7, 10)
        g_lin = df.characterize(linear, phis, 1000.0)
        g_geo = df.characterize(geometric, phis, 1000.0)
        assert g_geo is not g_lin
        assert not np.array_equal(
            g_lin.surfaces["i1mag"], g_geo.surfaces["i1mag"]
        )
        # Each keeps its own identity on repeat calls.
        assert df.characterize(linear, phis, 1000.0) is g_lin
        assert df.characterize(geometric, phis, 1000.0) is g_geo


class TestSurfaceRoundTrip:
    def test_to_from_arrays(self, tanh_nonlinearity):
        amplitudes = np.linspace(0.4, 1.7, 8)
        surface = two_tone_surface(tanh_nonlinearity, amplitudes, 0.03, 3,
                                   N_SAMPLES)
        arrays, meta = surface.to_arrays()
        clone = TwoToneSurface.from_arrays(arrays, meta)
        phis = np.linspace(0.0, 2.0 * np.pi, 17)
        assert np.array_equal(clone.i1_grid(phis), surface.i1_grid(phis))
        assert clone.converged == surface.converged
        assert clone.n == surface.n
        assert clone.v_i == surface.v_i

    def test_marker_surface_round_trips_non_converged(self):
        table = LinearTableNonlinearity.from_nonlinearity(
            NegativeTanh(gm=2.5e-3, i_sat=1e-3), -2.5, 2.5, 257
        )
        surface = two_tone_surface(
            table, np.linspace(0.4, 1.7, 6), 0.03, 3, N_SAMPLES
        )
        arrays, meta = surface.to_arrays()
        clone = TwoToneSurface.from_arrays(arrays, meta)
        assert not clone.converged


class TestEvaluator:
    def test_off_grid_evaluator_tracks_quadrature(self, tanh_nonlinearity):
        df = TwoToneDF(tanh_nonlinearity, 0.03, 3, n_samples=N_SAMPLES)
        amplitudes = np.linspace(0.4, 1.7, 40)
        phis = np.linspace(0.05, 2.0 * np.pi + 0.05, 41)
        evaluate = df.i1_evaluator(amplitudes, phis)
        a = np.asarray([0.55, 0.9712, 1.433])
        p = np.asarray([0.3, 2.111, 5.9])
        got = evaluate(a, p)
        want = df.i1(a, p)
        assert np.max(np.abs(got - want)) <= 1e-6 * np.max(np.abs(want))
