"""Tests for the two-tone describing function I_1(A, V_i, phi; n)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.describing_function import fundamental_coefficient
from repro.core.two_tone import TwoToneDF, two_tone_fundamental
from repro.nonlin import CubicNonlinearity, NegativeTanh


@pytest.fixture(scope="module")
def tanh():
    return NegativeTanh(gm=2.5e-3, i_sat=1e-3)


class TestTwoToneFundamental:
    def test_zero_injection_reduces_to_single_tone(self, tanh):
        amps = np.array([0.3, 0.9, 1.6])
        two = two_tone_fundamental(tanh, amps, 0.0, np.zeros(3), 3)
        single = fundamental_coefficient(tanh, amps)
        assert np.allclose(two.real, single, atol=1e-14)
        assert np.max(np.abs(two.imag)) < 1e-14

    def test_cubic_oracle(self):
        # For f = -a v + b v^3 and n = 3, expanding
        # (A cos t + 2Vi cos(3t + phi))^3 gives the fundamental term
        # I_1 = (-a A + (3/4) b A^3 + 3 b Vi A^2 e^{j phi}/2 + 3 b A Vi^2 * 2) / 2.
        a, b = 2.5e-3, 1e-3
        f = CubicNonlinearity(a=a, b=b)
        amp, v_i, phi = 1.1, 0.05, 0.7
        got = complex(two_tone_fundamental(f, np.asarray(amp), v_i, np.asarray(phi), 3))
        # Derivation: v = A cos t + B cos(3t+phi), B = 2 Vi.
        big_b = 2.0 * v_i
        i1 = (
            -a * amp / 2.0
            + b * (3.0 / 8.0) * amp**3
            + b * (3.0 / 8.0) * amp**2 * big_b * np.exp(1j * phi)
            + b * (3.0 / 4.0) * amp * big_b**2
        )
        assert got == pytest.approx(i1, rel=1e-12)

    def test_conjugate_symmetry_in_phi(self, tanh):
        # Time reversal: I_1(A, Vi, -phi) = conj(I_1(A, Vi, phi)).
        phi = np.linspace(0.1, 3.0, 7)
        plus = two_tone_fundamental(tanh, np.asarray(0.9), 0.04, phi, 3)
        minus = two_tone_fundamental(tanh, np.asarray(0.9), 0.04, -phi, 3)
        assert np.allclose(minus, np.conj(plus), atol=1e-14)

    def test_periodicity_in_phi(self, tanh):
        phi = np.linspace(0.0, 2 * np.pi, 9)
        base = two_tone_fundamental(tanh, np.asarray(1.0), 0.03, phi, 3)
        wrapped = two_tone_fundamental(tanh, np.asarray(1.0), 0.03, phi + 2 * np.pi, 3)
        assert np.allclose(base, wrapped, atol=1e-14)

    def test_broadcasting(self, tanh):
        amps = np.linspace(0.5, 1.5, 4)[:, None]
        phis = np.linspace(0.0, 2 * np.pi, 5)[None, :]
        out = two_tone_fundamental(tanh, amps, 0.03, phis, 3)
        assert out.shape == (4, 5)

    def test_rejects_bad_n(self, tanh):
        with pytest.raises(ValueError):
            two_tone_fundamental(tanh, np.asarray(1.0), 0.03, np.asarray(0.0), 0)
        with pytest.raises(ValueError):
            two_tone_fundamental(tanh, np.asarray(1.0), 0.03, np.asarray(0.0), 2.5)

    def test_rejects_undersampling(self, tanh):
        with pytest.raises(ValueError, match="n_samples"):
            two_tone_fundamental(
                tanh, np.asarray(1.0), 0.03, np.asarray(0.0), 16, n_samples=64
            )

    def test_n1_merges_tones(self, tanh):
        # For n = 1 the two tones are the same frequency: I_1 of
        # f(A cos + 2Vi cos(t+phi)) equals the single-tone I_1 at the
        # combined amplitude, rotated by the combined phase.
        amp, v_i, phi = 0.8, 0.05, 1.1
        combined = amp / 2.0 + v_i * np.exp(1j * phi)
        a_tot = 2.0 * abs(combined)
        delta = np.angle(combined)
        got = complex(two_tone_fundamental(tanh, np.asarray(amp), v_i, np.asarray(phi), 1))
        single = float(fundamental_coefficient(tanh, np.asarray([a_tot]))[0])
        assert got == pytest.approx(single * np.exp(1j * delta), rel=1e-10)

    @settings(max_examples=20)
    @given(
        st.floats(min_value=0.2, max_value=2.0),
        st.floats(min_value=0.0, max_value=2 * np.pi),
    )
    def test_injection_perturbation_is_bounded(self, amp, phi):
        # Weak injection perturbs I_1 by at most O(Vi * max|f'|).
        tanh = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        v_i = 0.01
        base = complex(two_tone_fundamental(tanh, np.asarray(amp), 0.0, np.asarray(phi), 3))
        pert = complex(two_tone_fundamental(tanh, np.asarray(amp), v_i, np.asarray(phi), 3))
        assert abs(pert - base) <= 2.0 * v_i * 2.5e-3 + 1e-12


class TestTwoToneDF:
    def test_tf_at_natural_amplitude(self, tanh):
        # With zero injection, T_f(A*, phi) = 1 at the natural amplitude.
        from repro.core.natural import find_all_amplitudes

        a_star = find_all_amplitudes(tanh, 1000.0)[0][0]
        df = TwoToneDF(tanh, 0.0, 3)
        assert float(df.tf(a_star, 0.0, 1000.0)) == pytest.approx(1.0, rel=1e-9)

    def test_angle_zero_without_injection(self, tanh):
        df = TwoToneDF(tanh, 0.0, 3)
        assert float(df.angle_minus_i1(1.0, 0.3)) == pytest.approx(0.0, abs=1e-12)

    def test_t_big_f_equals_tf_on_phase_condition(self, tanh):
        # Eq. (9): when phi_d = -angle(-I_1), the circle property collapses
        # |I_1| cos(phi_d) onto the cosine component, so T_F == T_f.
        df = TwoToneDF(tanh, 0.03, 3)
        for amp, phi in [(1.1, 2.0), (0.9, 3.5), (1.3, 0.7)]:
            tf = float(df.tf(amp, phi, 1000.0))
            angle = float(df.angle_minus_i1(amp, phi))
            t_big = float(df.t_big_f(amp, phi, 1000.0, -angle))
            assert t_big == pytest.approx(abs(tf), rel=1e-9)

    def test_characterize_shapes_and_cache(self, tanh):
        df = TwoToneDF(tanh, 0.03, 3)
        amps = np.linspace(0.5, 1.5, 11)
        phis = np.linspace(0.0, 2 * np.pi, 13)
        grid = df.characterize(amps, phis, 1000.0)
        assert grid.surfaces["tf"].shape == (11, 13)
        assert grid.surfaces["angle"].shape == (11, 13)
        # Second call returns the cached object.
        assert df.characterize(amps, phis, 1000.0) is grid

    def test_tf_rejects_zero_amplitude(self, tanh):
        df = TwoToneDF(tanh, 0.03, 3)
        with pytest.raises(ValueError):
            df.tf(0.0, 0.0, 1000.0)

    def test_rejects_negative_vi(self, tanh):
        with pytest.raises(ValueError):
            TwoToneDF(tanh, -0.1, 3)
