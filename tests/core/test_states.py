"""Tests for the n-state enumeration (Appendix VI-B4)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.states import enumerate_states, state_index_of_phase


class TestEnumerateStates:
    def test_count(self):
        assert enumerate_states(1.0, 3).size == 3
        assert enumerate_states(1.0, 1).size == 1
        assert enumerate_states(1.0, 7).size == 7

    def test_spacing_is_2pi_over_n(self):
        states = enumerate_states(0.7, 5)
        assert np.allclose(np.diff(states), 2 * np.pi / 5)

    def test_sorted_in_principal_range(self):
        states = enumerate_states(2.3, 4)
        assert np.all(states >= 0.0) and np.all(states < 2 * np.pi)
        assert np.all(np.diff(states) > 0)

    def test_injection_phase_shifts_states(self):
        base = enumerate_states(1.0, 3, injection_phase=0.0)
        shifted = enumerate_states(1.0, 3, injection_phase=0.9)
        # Each state moves by 0.9/n on the circle.
        deltas = np.angle(np.exp(1j * (shifted - base)))
        assert np.allclose(np.abs(deltas), 0.3, atol=1e-12)

    def test_definition(self):
        # psi = (phi_inj - phi_lock + 2 pi k)/n.
        states = enumerate_states(0.6, 3, injection_phase=0.0)
        expected = np.sort(np.mod((-0.6 + 2 * np.pi * np.arange(3)) / 3, 2 * np.pi))
        assert np.allclose(states, expected)

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            enumerate_states(0.0, 0)
        with pytest.raises(ValueError):
            enumerate_states(0.0, 2.5)

    @given(
        st.floats(min_value=-10.0, max_value=10.0),
        st.integers(min_value=1, max_value=12),
    )
    def test_states_satisfy_lock_relation(self, phi_lock, n):
        # n * psi_k + phi_lock == injection_phase (mod 2 pi) for every k.
        states = enumerate_states(phi_lock, n)
        residual = np.mod(n * states + phi_lock, 2 * np.pi)
        assert np.allclose(np.minimum(residual, 2 * np.pi - residual), 0.0, atol=1e-9)


class TestStateIndexOfPhase:
    def test_exact_match(self):
        states = enumerate_states(0.0, 3)
        for k, psi in enumerate(states):
            assert state_index_of_phase(float(psi), states) == k

    def test_nearest_on_circle(self):
        states = np.array([0.1, 2.0, 4.0])
        # 2 pi - 0.05 is closest to 0.1 across the wrap.
        assert state_index_of_phase(2 * np.pi - 0.05, states) == 0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            state_index_of_phase(0.0, np.array([]))
