"""Tests for the harmonic-balance refinement."""

import numpy as np
import pytest

from repro.core import predict_natural_oscillation, solve_lock_states
from repro.core.harmonic_balance import (
    HbConvergenceError,
    hb_lock_state,
    hb_natural_oscillation,
)
from repro.nonlin import CubicNonlinearity, NegativeTanh
from repro.tank import ParallelRLC


@pytest.fixture(scope="module")
def setup():
    return (
        NegativeTanh(gm=2.5e-3, i_sat=1e-3),
        ParallelRLC(r=1000.0, l=100e-6, c=10e-9),
    )


@pytest.fixture(scope="module")
def hb_natural(setup):
    tanh, tank = setup
    return hb_natural_oscillation(tanh, tank, k_max=7)


class TestHbNaturalOscillation:
    def test_converges_with_tiny_residual(self, hb_natural):
        assert hb_natural.residual_norm < 1e-9

    def test_amplitude_close_to_df(self, setup, hb_natural):
        tanh, tank = setup
        df = predict_natural_oscillation(tanh, tank)
        assert hb_natural.amplitude == pytest.approx(df.amplitude, rel=2e-3)

    def test_frequency_shift_is_downward(self, setup, hb_natural):
        # Finite-Q harmonic feedback pulls a saturating oscillator below
        # the tank centre (the shift the transient simulations show).
        __, tank = setup
        assert hb_natural.w < tank.center_frequency
        assert hb_natural.w == pytest.approx(tank.center_frequency, rel=2e-3)

    def test_frequency_matches_simulation(self, setup, hb_natural):
        # The headline: HB lands on the simulated frequency ~10x closer
        # than the DF's "oscillates at w_c" assumption.
        from repro.measure import Waveform, measure_steady_state
        from repro.odesim import simulate_oscillator

        tanh, tank = setup
        period = 2 * np.pi / tank.center_frequency
        sim = simulate_oscillator(
            tanh, tank, t_end=500 * period, record_start=420 * period,
            steps_per_cycle=128,
        )
        state = measure_steady_state(Waveform(sim.t, sim.v[:, 0]))
        df_error = abs(tank.center_frequency - state.frequency)
        hb_error = abs(hb_natural.w - state.frequency)
        assert hb_error < 0.2 * df_error

    def test_odd_nonlinearity_kills_even_harmonics(self, hb_natural):
        even = hb_natural.harmonics[1::2]  # V_2, V_4, V_6
        odd = hb_natural.harmonics[2::2]  # V_3, V_5, V_7
        assert np.max(np.abs(even)) < 1e-9
        assert np.max(np.abs(odd)) > 1e-4

    def test_thd_matches_simulated_waveform(self, setup, hb_natural):
        # HB predicts the (small) voltage distortion quantitatively.
        assert 1e-3 < hb_natural.thd() < 3e-2

    def test_waveform_reconstruction(self, hb_natural):
        t = np.linspace(0.0, 2 * np.pi / hb_natural.w, 256, endpoint=False)
        v = hb_natural.waveform(t)
        assert float(np.max(v)) == pytest.approx(hb_natural.amplitude, rel=0.05)

    def test_cubic_exact_small_harmonics(self):
        # A cubic device in a high-Q tank: V_3/V_1 ~ known scale.
        cubic = CubicNonlinearity(a=2.5e-3, b=1e-3)
        tank = ParallelRLC(r=1000.0, l=100e-6, c=10e-9)
        hb = hb_natural_oscillation(cubic, tank, k_max=5)
        assert hb.amplitude == pytest.approx(cubic.natural_amplitude(1000.0), rel=1e-2)

    def test_rejects_bad_kmax(self, setup):
        tanh, tank = setup
        with pytest.raises(ValueError):
            hb_natural_oscillation(tanh, tank, k_max=0)

    def test_no_startup_raises(self, setup):
        __, tank = setup
        weak = NegativeTanh(gm=0.5e-3, i_sat=1e-3)
        with pytest.raises(Exception):
            hb_natural_oscillation(weak, tank)


class TestHbLockState:
    def test_refines_df_lock(self, setup):
        tanh, tank = setup
        w_inj = 3 * tank.center_frequency
        hb = hb_lock_state(tanh, tank, v_i=0.03, w_injection=w_inj, n=3)
        df = solve_lock_states(tanh, tank, v_i=0.03, w_injection=w_inj, n=3)
        stable = df.stable_locks[0]
        assert hb.residual_norm < 1e-9
        assert hb.amplitude == pytest.approx(stable.amplitude, rel=5e-3)

    def test_phase_closer_to_simulation_than_df(self, setup):
        # The measured DF phase offset at Q = 10 was ~0.08 rad; HB should
        # cut it by an order of magnitude.
        from repro.measure import Waveform, detect_lock
        from repro.odesim import InjectionSpec, simulate_oscillator

        tanh, tank = setup
        w_inj = 3 * tank.center_frequency
        period = 2 * np.pi / tank.center_frequency
        sim = simulate_oscillator(
            tanh, tank, t_end=900 * period,
            injection=InjectionSpec(v_i=0.03, w=np.array([w_inj])),
            record_start=600 * period, steps_per_cycle=128,
        )
        verdict = detect_lock(Waveform(sim.t, sim.v[:, 0]), w_inj, 3)
        assert verdict.locked
        df = solve_lock_states(tanh, tank, v_i=0.03, w_injection=w_inj, n=3)
        stable = df.stable_locks[0]
        df_err = float(
            np.min(np.abs(np.angle(np.exp(1j * (verdict.phase - stable.oscillator_phases)))))
        )
        hb = hb_lock_state(tanh, tank, v_i=0.03, w_injection=w_inj, n=3)
        hb_states = np.mod(
            hb.fundamental_phase + 2 * np.pi * np.arange(3) / 3, 2 * np.pi
        )
        hb_err = float(
            np.min(np.abs(np.angle(np.exp(1j * (verdict.phase - hb_states)))))
        )
        assert hb_err < 0.5 * df_err

    def test_outside_lock_range_raises(self, setup):
        tanh, tank = setup
        with pytest.raises(HbConvergenceError):
            hb_lock_state(
                tanh, tank, v_i=0.03,
                w_injection=3 * tank.center_frequency * 1.02, n=3,
            )

    def test_kmax_must_cover_injection_harmonic(self, setup):
        tanh, tank = setup
        with pytest.raises(ValueError, match="k_max"):
            hb_lock_state(
                tanh, tank, v_i=0.03,
                w_injection=5 * tank.center_frequency, n=5, k_max=3,
            )
