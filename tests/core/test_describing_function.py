"""Tests for single-tone describing functions against closed-form oracles."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.describing_function import (
    fundamental_coefficient,
    harmonic_coefficients,
    tf_natural,
)
from repro.nonlin import (
    CubicNonlinearity,
    FunctionNonlinearity,
    NegativeTanh,
    PiecewiseLinearNegativeResistance,
)


class TestHarmonicCoefficients:
    def test_linear_device_only_fundamental(self):
        f = FunctionNonlinearity(lambda v: 2.0 * v)
        h = harmonic_coefficients(f, 1.0, k_max=8)
        # i = 2 A cos(theta) -> I_1 = A, everything else zero.
        assert h.i1 == pytest.approx(1.0)
        assert abs(h.i0) < 1e-15
        for k in range(2, 9):
            assert abs(h.harmonic(k)) < 1e-14

    def test_cubic_oracle(self):
        # f = -a v + b v^3 on A cos: fundamental cosine amplitude is
        # -aA + (3/4) b A^3, so I_1 is half of that.
        a, b, amp = 2.5e-3, 1e-3, 1.3
        f = CubicNonlinearity(a=a, b=b)
        h = harmonic_coefficients(f, amp)
        expected_i1 = 0.5 * (-a * amp + 0.75 * b * amp**3)
        assert h.i1.real == pytest.approx(expected_i1, rel=1e-12)
        # Third harmonic: (1/4) b A^3 cosine amplitude -> I_3 = b A^3 / 8.
        assert h.harmonic(3).real == pytest.approx(b * amp**3 / 8.0, rel=1e-12)

    def test_coefficients_are_real_for_memoryless_f(self):
        # Footnote 3 of the paper: I_k(A) real for any memoryless f.
        f = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        h = harmonic_coefficients(f, 0.7, k_max=12)
        assert np.max(np.abs(np.imag(h.coefficients))) < 1e-15

    def test_odd_nonlinearity_has_no_even_harmonics(self):
        f = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        h = harmonic_coefficients(f, 1.5, k_max=10)
        for k in (0, 2, 4, 6, 8, 10):
            assert abs(h.harmonic(k)) < 1e-15

    def test_negative_k_is_conjugate(self):
        f = CubicNonlinearity()
        h = harmonic_coefficients(f, 0.9)
        assert h.harmonic(-3) == np.conj(h.harmonic(3))

    def test_distortion_high_for_saturating_device(self):
        # The paper: the current is "highly distorted" in saturation.
        f = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        assert harmonic_coefficients(f, 2.0).distortion() > 0.1

    def test_aliasing_guard(self):
        f = NegativeTanh()
        with pytest.raises(ValueError, match="aliasing"):
            harmonic_coefficients(f, 1.0, k_max=100, n_samples=128)

    def test_out_of_range_harmonic_rejected(self):
        h = harmonic_coefficients(NegativeTanh(), 1.0, k_max=4)
        with pytest.raises(IndexError):
            h.harmonic(9)


class TestFundamentalCoefficient:
    def test_matches_harmonic_coefficients(self):
        f = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        amps = np.array([0.2, 0.7, 1.5])
        vec = fundamental_coefficient(f, amps)
        for a, i1 in zip(amps, vec):
            assert i1 == pytest.approx(harmonic_coefficients(f, a).i1.real, rel=1e-12)

    def test_sign_is_negative_for_negative_resistance(self):
        f = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        assert np.all(fundamental_coefficient(f, np.array([0.1, 1.0, 3.0])) < 0.0)

    @settings(max_examples=25)
    @given(st.floats(min_value=0.01, max_value=5.0))
    def test_pwl_describing_function_oracle(self, amplitude):
        f = PiecewiseLinearNegativeResistance(g=1e-3, v_knee=0.1)
        i1 = float(fundamental_coefficient(f, np.asarray([amplitude]), n_samples=4096)[0])
        # N(A) = -2 I_1 / A must match the classic limiter formula.
        n_of_a = -2.0 * i1 / amplitude
        assert n_of_a == pytest.approx(f.fundamental_gain(amplitude), rel=2e-3)


class TestTfNatural:
    def test_small_signal_limit(self):
        f = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        tf = tf_natural(f, 1000.0, np.array([0.0, 1e-6]))
        assert tf[0] == pytest.approx(2.5)  # exactly -R f'(0)
        assert tf[1] == pytest.approx(2.5, rel=1e-6)

    def test_monotone_decreasing_for_tanh(self):
        f = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        amps = np.linspace(0.01, 3.0, 50)
        tf = tf_natural(f, 1000.0, amps)
        assert np.all(np.diff(tf) < 0.0)

    def test_rejects_negative_amplitudes(self):
        with pytest.raises(ValueError):
            tf_natural(NegativeTanh(), 1000.0, np.array([-1.0]))

    def test_rejects_nonpositive_r(self):
        with pytest.raises(ValueError):
            tf_natural(NegativeTanh(), 0.0, np.array([1.0]))
