"""Tests for the Fig. 10 isoline picture builder."""

import numpy as np
import pytest

from repro.core.isolines import build_isoline_picture
from repro.nonlin import NegativeTanh
from repro.tank import ParallelRLC


@pytest.fixture(scope="module")
def picture():
    tanh = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
    tank = ParallelRLC(r=1000.0, l=100e-6, c=10e-9)
    return build_isoline_picture(
        tanh,
        tank,
        v_i=0.03,
        n=3,
        angles=np.linspace(-0.03, 0.03, 7),
        n_a=61,
        n_phi=121,
    )


class TestIsolinePicture:
    def test_tf_curve_present(self, picture):
        assert picture.tf_curves

    def test_isolines_tagged_with_phi_d(self, picture):
        for iso in picture.isolines:
            assert iso.phi_d == pytest.approx(-iso.angle)

    def test_isoline_frequencies_monotone_in_phi_d(self, picture):
        # Larger tank phase <-> lower operating frequency.
        isolines = sorted(picture.isolines, key=lambda i: i.phi_d)
        freqs = [i.w_i for i in isolines if np.isfinite(i.w_i)]
        assert all(f1 > f2 for f1, f2 in zip(freqs, freqs[1:]))

    def test_isoline_curves_live_on_the_angle_surface(self, picture):
        grid = picture.grid
        iso = picture.isolines[len(picture.isolines) // 2]
        curve = iso.curves[0]
        mid = len(curve) // 2
        sampled = grid.interpolate("angle", float(curve.x[mid]), float(curve.y[mid]))
        assert sampled == pytest.approx(iso.angle, abs=5e-3)

    def test_nearest_lookup(self, picture):
        target = picture.isolines[0].phi_d
        assert picture.isoline_nearest(target).phi_d == pytest.approx(target)

    def test_nearest_on_empty_raises(self, picture):
        from repro.core.isolines import IsolinePicture

        empty = IsolinePicture(grid=picture.grid, tf_curves=[], isolines=[])
        with pytest.raises(ValueError):
            empty.isoline_nearest(0.0)

    def test_zero_angle_isoline_crosses_tf_curve(self, picture):
        # At phi_d = 0 (centre frequency) the lock exists: the zero-angle
        # isoline must intersect the T_f = 1 curve.
        from repro.core.curves import intersect_curves

        iso = picture.isoline_nearest(0.0)
        hits = []
        for curve in iso.curves:
            for tf_curve in picture.tf_curves:
                hits.extend(intersect_curves(tf_curve, curve))
        assert hits
