"""Tests for the slow-flow averaged dynamics."""

import numpy as np
import pytest

from repro.core import predict_natural_oscillation, solve_lock_states
from repro.core.averaging import SlowFlow, simulate_envelope
from repro.core.two_tone import TwoToneDF
from repro.nonlin import NegativeTanh
from repro.tank import ParallelRLC


@pytest.fixture(scope="module")
def setup():
    return (
        NegativeTanh(gm=2.5e-3, i_sat=1e-3),
        ParallelRLC(r=1000.0, l=100e-6, c=10e-9),
    )


class TestSlowFlow:
    def test_rate_is_half_bandwidth(self, setup):
        tanh, tank = setup
        flow = SlowFlow(TwoToneDF(tanh, 0.03, 3), tank, tank.center_frequency)
        assert flow.rate == pytest.approx(
            tank.center_frequency / (2 * tank.quality_factor), rel=1e-9
        )

    def test_zero_injection_amplitude_dynamics(self, setup):
        # Without injection the flow reduces to the T_f(A) growth law:
        # positive dA/dt below the natural amplitude, negative above.
        tanh, tank = setup
        natural = predict_natural_oscillation(tanh, tank)
        flow = SlowFlow(TwoToneDF(tanh, 0.0, 3), tank, tank.center_frequency)
        assert flow.rhs(0.5 * natural.amplitude, 0.0)[0] > 0.0
        assert flow.rhs(1.5 * natural.amplitude, 0.0)[0] < 0.0

    def test_residual_zero_at_lock(self, setup):
        tanh, tank = setup
        w_i = tank.center_frequency * 1.0008
        solution = solve_lock_states(tanh, tank, v_i=0.03, w_injection=3 * w_i, n=3)
        flow = SlowFlow(TwoToneDF(tanh, 0.03, 3), tank, w_i)
        lock = solution.stable_locks[0]
        res = flow.residual(lock.amplitude, lock.phi)
        assert abs(res[0]) < 1e-8
        assert abs(res[1]) < 1e-8

    def test_phi_d_exposed(self, setup):
        tanh, tank = setup
        w_i = tank.center_frequency * 1.001
        flow = SlowFlow(TwoToneDF(tanh, 0.03, 3), tank, w_i)
        assert flow.phi_d == pytest.approx(float(tank.phase(np.asarray(w_i))))

    def test_jacobian_shape(self, setup):
        tanh, tank = setup
        flow = SlowFlow(TwoToneDF(tanh, 0.03, 3), tank, tank.center_frequency)
        jac = flow.jacobian(1.0, 3.0)
        assert jac.shape == (2, 2)
        assert np.all(np.isfinite(jac))

    def test_rejects_nonpositive_amplitude(self, setup):
        tanh, tank = setup
        flow = SlowFlow(TwoToneDF(tanh, 0.03, 3), tank, tank.center_frequency)
        with pytest.raises(ValueError):
            flow.rhs(0.0, 0.0)


class TestSimulateEnvelope:
    def test_converges_to_stable_lock(self, setup):
        tanh, tank = setup
        w_i = tank.center_frequency  # centre: locks at phi = 0 / pi
        solution = solve_lock_states(tanh, tank, v_i=0.03, w_injection=3 * w_i, n=3)
        stable = solution.stable_locks[0]
        flow = SlowFlow(TwoToneDF(tanh, 0.03, 3), tank, w_i)
        # Start near (but not at) the stable lock.  The phase mode relaxes
        # much slower than the amplitude mode (weak injection), so allow a
        # long horizon and a looser phase tolerance.
        t_end = 150.0 / flow.rate
        t, a, p = simulate_envelope(
            flow, 0.8 * stable.amplitude, stable.phi + 0.5, t_end, n_steps=8000
        )
        assert a[-1] == pytest.approx(stable.amplitude, rel=1e-4)
        assert np.angle(np.exp(1j * (p[-1] - stable.phi))) == pytest.approx(
            0.0, abs=1e-2
        )

    def test_escapes_unstable_lock(self, setup):
        tanh, tank = setup
        w_i = tank.center_frequency
        solution = solve_lock_states(tanh, tank, v_i=0.03, w_injection=3 * w_i, n=3)
        unstable = [lock for lock in solution.locks if not lock.stable][0]
        stable = solution.stable_locks[0]
        flow = SlowFlow(TwoToneDF(tanh, 0.03, 3), tank, w_i)
        t_end = 250.0 / flow.rate
        # A small phase push off the saddle must flow to the stable lock.
        __, a, p = simulate_envelope(
            flow, unstable.amplitude, unstable.phi + 0.05, t_end, n_steps=12000
        )
        assert np.angle(np.exp(1j * (p[-1] - stable.phi))) == pytest.approx(
            0.0, abs=2e-2
        )
        assert a[-1] == pytest.approx(stable.amplitude, rel=1e-3)

    def test_rejects_bad_args(self, setup):
        tanh, tank = setup
        flow = SlowFlow(TwoToneDF(tanh, 0.03, 3), tank, tank.center_frequency)
        with pytest.raises(ValueError):
            simulate_envelope(flow, 1.0, 0.0, -1.0)
        with pytest.raises(ValueError):
            simulate_envelope(flow, 1.0, 0.0, 1.0, n_steps=1)
