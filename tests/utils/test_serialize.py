"""Tests for JSON serialisation of analysis results."""

import json

import numpy as np
import pytest

from repro.utils.serialize import dumps, to_jsonable


class TestPrimitives:
    def test_passthrough(self):
        assert to_jsonable(1) == 1
        assert to_jsonable(2.5) == 2.5
        assert to_jsonable("x") == "x"
        assert to_jsonable(None) is None
        assert to_jsonable(True) is True

    def test_numpy_scalars(self):
        assert to_jsonable(np.float64(1.5)) == 1.5
        assert to_jsonable(np.int64(3)) == 3
        assert to_jsonable(np.bool_(True)) is True

    def test_complex(self):
        assert to_jsonable(1 + 2j) == {"re": 1.0, "im": 2.0}

    def test_real_array(self):
        assert to_jsonable(np.array([1.0, 2.0])) == [1.0, 2.0]

    def test_complex_array(self):
        out = to_jsonable(np.array([1 + 2j]))
        assert out == {"re": [1.0], "im": [2.0]}

    def test_containers(self):
        out = to_jsonable({"a": (1, np.array([2.0]))})
        assert out == {"a": [1, [2.0]]}

    def test_unserialisable_raises(self):
        with pytest.raises(TypeError, match="cannot serialise"):
            to_jsonable(object())


class TestAnalysisResults:
    @pytest.fixture(scope="class")
    def setup(self):
        from repro.nonlin import NegativeTanh
        from repro.tank import ParallelRLC

        return (
            NegativeTanh(gm=2.5e-3, i_sat=1e-3),
            ParallelRLC(r=1000.0, l=100e-6, c=10e-9),
        )

    def test_natural_oscillation_roundtrip(self, setup):
        from repro.core import predict_natural_oscillation

        tanh, tank = setup
        natural = predict_natural_oscillation(tanh, tank)
        payload = json.loads(dumps(natural))
        assert payload["__type__"] == "NaturalOscillation"
        assert payload["amplitude"] == pytest.approx(natural.amplitude)
        assert payload["stable"] is True
        # Heavy curve arrays are excluded from the summary.
        assert "tf_curve" not in payload

    def test_lock_range_serialises(self, setup):
        from repro.core import predict_lock_range

        tanh, tank = setup
        lr = predict_lock_range(tanh, tank, v_i=0.03, n=3, n_a=61, n_phi=101)
        payload = json.loads(dumps(lr))
        assert payload["__type__"] == "LockRange"
        assert payload["injection_lower"] < payload["injection_upper"]
        assert "samples" not in payload

    def test_shil_solution_with_locks(self, setup):
        from repro.core import solve_lock_states

        tanh, tank = setup
        solution = solve_lock_states(
            tanh, tank, v_i=0.03, w_injection=3 * tank.center_frequency, n=3
        )
        payload = json.loads(dumps(solution))
        assert payload["__type__"] == "ShilSolution"
        assert len(payload["locks"]) == 2
        lock = payload["locks"][0]
        assert lock["__type__"] == "LockState"
        assert len(lock["oscillator_phases"]) == 3

    def test_valid_json_text(self, setup):
        from repro.core import predict_natural_oscillation

        tanh, tank = setup
        text = dumps(predict_natural_oscillation(tanh, tank))
        assert json.loads(text)  # parses cleanly
