"""Tests for grid containers and bracket refinement."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.grids import Grid2D, linear_grid, log_grid, refine_bracket


class TestLinearGrid:
    def test_endpoints(self):
        g = linear_grid(0.0, 1.0, 11)
        assert g[0] == 0.0 and g[-1] == 1.0 and g.size == 11

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            linear_grid(0.0, 1.0, 1)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            linear_grid(1.0, 0.0, 5)


class TestLogGrid:
    def test_endpoints(self):
        g = log_grid(1.0, 100.0, 3)
        assert np.allclose(g, [1.0, 10.0, 100.0])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            log_grid(0.0, 1.0, 5)


class TestGrid2D:
    def _grid(self):
        x = np.linspace(0.0, 1.0, 11)
        y = np.linspace(0.0, 2.0, 21)
        xx, yy = np.meshgrid(x, y)
        return Grid2D(x=x, y=y, surfaces={"plane": 2.0 * xx + 3.0 * yy})

    def test_surface_shape_enforced(self):
        with pytest.raises(ValueError, match="shape"):
            Grid2D(
                x=np.linspace(0, 1, 4),
                y=np.linspace(0, 1, 5),
                surfaces={"bad": np.zeros((4, 5))},
            )

    def test_bilinear_exact_on_linear_surface(self):
        grid = self._grid()
        # Bilinear interpolation reproduces affine surfaces exactly.
        assert grid.interpolate("plane", 0.33, 1.27) == pytest.approx(
            2.0 * 0.33 + 3.0 * 1.27
        )

    def test_interpolation_clamps_outside(self):
        grid = self._grid()
        assert grid.interpolate("plane", -5.0, -5.0) == pytest.approx(0.0)

    def test_gradient_of_affine_surface(self):
        grid = self._grid()
        gx, gy = grid.gradient("plane", 0.5, 1.0)
        assert gx == pytest.approx(2.0, rel=1e-6)
        assert gy == pytest.approx(3.0, rel=1e-6)

    def test_meshgrid_shapes(self):
        grid = self._grid()
        xx, yy = grid.meshgrid()
        assert xx.shape == (21, 11)
        assert yy.shape == (21, 11)

    def test_add_surface_validates(self):
        grid = self._grid()
        with pytest.raises(ValueError):
            grid.add_surface("wrong", np.zeros((3, 3)))

    def test_nonmonotonic_axis_rejected(self):
        with pytest.raises(ValueError):
            Grid2D(x=np.array([0.0, 2.0, 1.0]), y=np.array([0.0, 1.0]))


class TestRefineBracket:
    def test_finds_root_of_cubic(self):
        root = refine_bracket(lambda x: x**3 - 2.0, 0.0, 2.0)
        assert root == pytest.approx(2.0 ** (1.0 / 3.0), rel=1e-10)

    def test_exact_root_at_endpoint(self):
        assert refine_bracket(lambda x: x, 0.0, 1.0) == 0.0

    def test_rejects_non_bracketing(self):
        with pytest.raises(ValueError, match="sign change"):
            refine_bracket(lambda x: x + 10.0, 0.0, 1.0)

    @given(st.floats(min_value=-5.0, max_value=5.0))
    def test_linear_root_recovered(self, c):
        root = refine_bracket(lambda x: x - c, -10.0, 10.0)
        assert root == pytest.approx(c, abs=1e-8)
