"""Tests for the argument-validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_monotonic,
    check_positive,
    check_shape_match,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 3.0) == 3.0

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0.0)

    def test_accepts_zero_when_not_strict(self):
        assert check_positive("x", 0.0, strict=False) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", -1.0, strict=False)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive("x", float("nan"))

    def test_coerces_to_float(self):
        assert isinstance(check_positive("x", 2), float)


class TestCheckInRange:
    def test_inclusive_endpoints(self):
        assert check_in_range("x", 1.0, 1.0, 2.0) == 1.0
        assert check_in_range("x", 2.0, 1.0, 2.0) == 2.0

    def test_exclusive_endpoints_rejected(self):
        with pytest.raises(ValueError):
            check_in_range("x", 1.0, 1.0, 2.0, inclusive=False)

    def test_out_of_range_message_names_variable(self):
        with pytest.raises(ValueError, match="phi"):
            check_in_range("phi", 5.0, 0.0, 1.0)


class TestCheckFinite:
    def test_accepts_finite_array(self):
        arr = check_finite("a", np.ones(5))
        assert arr.shape == (5,)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="1 non-finite"):
            check_finite("a", np.array([1.0, np.nan]))

    def test_rejects_inf_and_counts(self):
        with pytest.raises(ValueError, match="2 non-finite"):
            check_finite("a", np.array([np.inf, 1.0, -np.inf]))


class TestCheckMonotonic:
    def test_accepts_increasing(self):
        check_monotonic("t", np.array([0.0, 1.0, 2.0]))

    def test_rejects_flat_when_strict(self):
        with pytest.raises(ValueError):
            check_monotonic("t", np.array([0.0, 1.0, 1.0]))

    def test_accepts_flat_when_not_strict(self):
        check_monotonic("t", np.array([0.0, 1.0, 1.0]), strict=False)

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError):
            check_monotonic("t", np.array([0.0, 2.0, 1.0]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            check_monotonic("t", np.ones((2, 2)))


class TestCheckShapeMatch:
    def test_accepts_matching(self):
        check_shape_match("a", np.ones(3), "b", np.zeros(3))

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError, match="a and b"):
            check_shape_match("a", np.ones(3), "b", np.zeros(4))
