"""Tests for SPICE-style value parsing and engineering formatting."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils.units import format_eng, format_si, parse_value


class TestParseValue:
    def test_plain_number(self):
        assert parse_value("42") == 42.0

    def test_float_passthrough(self):
        assert parse_value(3.5) == 3.5

    def test_int_passthrough(self):
        assert parse_value(7) == 7.0

    def test_exponent_notation(self):
        assert parse_value("1e-12") == 1e-12

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("100u", 100e-6),
            ("1n", 1e-9),
            ("2.2k", 2200.0),
            ("1meg", 1e6),
            ("1MEG", 1e6),
            ("10p", 10e-12),
            ("3f", 3e-15),
            ("5m", 5e-3),
            ("2g", 2e9),
            ("1t", 1e12),
        ],
    )
    def test_si_suffixes(self, text, expected):
        assert parse_value(text) == pytest.approx(expected)

    def test_meg_vs_milli_trap(self):
        # The classic SPICE trap: 'm' is milli, 'meg' is mega.
        assert parse_value("1m") == 1e-3
        assert parse_value("1meg") == 1e6

    def test_unit_names_ignored(self):
        assert parse_value("10kOhm") == 10e3
        assert parse_value("5V") == 5.0

    def test_negative_values(self):
        assert parse_value("-3.3u") == pytest.approx(-3.3e-6)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_value("abc")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            parse_value("")

    @given(st.floats(min_value=1e-14, max_value=1e13, allow_nan=False))
    def test_roundtrip_through_spice_eng_format(self, value):
        # spice=True writes mega as 'meg', keeping the roundtrip safe from
        # the case-insensitive 'm' = milli rule.
        text = format_eng(value, digits=12, spice=True)
        assert parse_value(text) == pytest.approx(value, rel=1e-9)

    def test_capital_m_formats_as_mega_but_parses_as_milli(self):
        # Documented asymmetry: display style vs SPICE parsing rules.
        assert format_eng(1e6) == "1M"
        assert parse_value("1M") == 1e-3


class TestFormatEng:
    def test_zero(self):
        assert format_eng(0.0) == "0"

    def test_micro(self):
        assert format_eng(100e-6) == "100u"

    def test_mega_uses_capital_m(self):
        assert format_eng(5.033e8) == "503.3M"

    def test_negative(self):
        assert format_eng(-2200.0) == "-2.2k"

    def test_nan_passthrough(self):
        assert format_eng(float("nan")) == "nan"

    def test_infinity(self):
        assert format_eng(math.inf) == "inf"


class TestFormatSi:
    def test_frequency(self):
        assert format_si(5.033e5, "Hz") == "503.3 kHz"

    def test_unit_without_prefix(self):
        assert format_si(5.0, "V") == "5 V"

    def test_zero(self):
        assert format_si(0.0, "A") == "0 A"
