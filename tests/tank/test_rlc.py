"""Tests for the parallel RLC tank, including the circle property."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.tank import ParallelRLC


@pytest.fixture
def tank():
    return ParallelRLC(r=1000.0, l=100e-6, c=10e-9)


class TestDerivedQuantities:
    def test_center_frequency(self, tank):
        assert tank.center_frequency == pytest.approx(1.0 / np.sqrt(100e-6 * 10e-9))

    def test_paper_diffpair_frequency(self):
        # 1/(2 pi sqrt(LC)) = 503.3 kHz for the paper's diff-pair tank.
        tank = ParallelRLC(r=4938.8, l=20e-6, c=5e-9)
        assert tank.center_frequency_hz == pytest.approx(503292.12, rel=1e-6)

    def test_paper_tunnel_frequency(self):
        tank = ParallelRLC(r=10e3, l=10e-9, c=10e-12)
        assert tank.center_frequency_hz == pytest.approx(503.29212e6, rel=1e-6)

    def test_quality_factor(self, tank):
        assert tank.quality_factor == pytest.approx(10.0)

    def test_bandwidth(self, tank):
        assert tank.bandwidth == pytest.approx(tank.center_frequency / 10.0)

    def test_peak_resistance(self, tank):
        assert tank.peak_resistance == 1000.0

    def test_effective_capacitance_exact(self, tank):
        assert tank.effective_capacitance() == 10e-9

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ParallelRLC(r=-1.0, l=1e-6, c=1e-9)


class TestTransferFunction:
    def test_peak_at_resonance(self, tank):
        z = tank.transfer(np.asarray(tank.center_frequency))
        assert abs(complex(z)) == pytest.approx(1000.0)
        assert np.angle(complex(z)) == pytest.approx(0.0, abs=1e-12)

    def test_phase_sign_convention(self, tank):
        # Fig. 6: phase positive below resonance, negative above.
        w_c = tank.center_frequency
        assert float(tank.phase(np.asarray(0.9 * w_c))) > 0.0
        assert float(tank.phase(np.asarray(1.1 * w_c))) < 0.0

    def test_phase_formula_matches_angle(self, tank):
        w = np.linspace(0.5, 2.0, 31) * tank.center_frequency
        assert np.allclose(tank.phase(w), np.angle(tank.transfer(w)), atol=1e-12)

    def test_magnitude_attenuates_harmonics(self, tank):
        # The filtering assumption: |Z| at 3 w_c is far below the peak.
        w_c = tank.center_frequency
        z3 = abs(complex(tank.transfer(np.asarray(3.0 * w_c))))
        assert z3 < 1000.0 / 20.0

    def test_dc_is_short(self, tank):
        assert complex(tank.transfer(np.asarray(0.0))) == 0.0

    def test_half_power_at_band_edges(self, tank):
        w_edge = tank.center_frequency * (1 + 1 / (2 * tank.quality_factor))
        z = abs(complex(tank.transfer(np.asarray(w_edge))))
        # -3 dB within a percent at Q = 10 (band-edge approximation).
        assert z == pytest.approx(1000.0 / np.sqrt(2.0), rel=0.02)


class TestInversePhaseMap:
    def test_roundtrip(self, tank):
        for phi_d in (-1.2, -0.3, 0.0, 0.3, 1.2):
            w = tank.frequency_for_phase(phi_d)
            assert float(tank.phase(np.asarray(w))) == pytest.approx(phi_d, abs=1e-12)

    def test_zero_phase_is_resonance(self, tank):
        assert tank.frequency_for_phase(0.0) == pytest.approx(tank.center_frequency)

    def test_positive_phase_below_resonance(self, tank):
        assert tank.frequency_for_phase(0.3) < tank.center_frequency

    def test_rejects_out_of_range(self, tank):
        with pytest.raises(ValueError):
            tank.frequency_for_phase(np.pi / 2)

    @given(st.floats(min_value=-1.4, max_value=1.4))
    def test_roundtrip_property(self, phi_d):
        tank = ParallelRLC(r=1000.0, l=100e-6, c=10e-9)
        w = tank.frequency_for_phase(phi_d)
        assert float(tank.phase(np.asarray(w))) == pytest.approx(phi_d, abs=1e-9)


class TestCircleProperty:
    """Appendix VI-B1: the output phasor locus is a circle of diameter R."""

    def test_identity_residual_small(self, tank):
        w_c = tank.center_frequency
        for w in np.linspace(0.5, 2.0, 23) * w_c:
            assert tank.circle_identity_residual(float(w)) < 1e-9

    def test_locus_on_circle(self, tank):
        # Every Z(jw) lies on the circle centred at R/2 with radius R/2.
        w = np.linspace(0.3, 3.0, 101) * tank.center_frequency
        z = tank.transfer(w)
        center = tank.r / 2.0
        assert np.allclose(np.abs(z - center), center, rtol=1e-12)

    def test_projection_construction(self, tank):
        # Fig. 21: B_o = |B_c| cos(phi_d) at angle phi_d.
        from repro.core.phasor import projection_construction

        picture = projection_construction(tank, 1e-3 + 0j, 1.05 * tank.center_frequency)
        assert picture["output"] == pytest.approx(picture["projection"], rel=1e-9)

    @given(st.floats(min_value=0.3, max_value=3.0))
    def test_circle_point_normalised(self, w_rel):
        tank = ParallelRLC(r=1000.0, l=100e-6, c=10e-9)
        p = tank.circle_point(w_rel * tank.center_frequency)
        assert abs(p - 0.5) == pytest.approx(0.5, rel=1e-9)
