"""Tests for the sampled general tank."""

import numpy as np
import pytest

from repro.tank import GeneralTank, ParallelRLC


@pytest.fixture
def rlc():
    return ParallelRLC(r=1000.0, l=100e-6, c=10e-9)


@pytest.fixture
def sampled(rlc):
    return GeneralTank.from_tank(rlc, span=0.5, n=4001)


class TestGeneralTank:
    def test_center_frequency_recovered(self, rlc, sampled):
        assert sampled.center_frequency == pytest.approx(
            rlc.center_frequency, rel=1e-6
        )

    def test_peak_resistance_recovered(self, rlc, sampled):
        assert sampled.peak_resistance == pytest.approx(rlc.peak_resistance, rel=1e-6)

    def test_transfer_matches_analytic(self, rlc, sampled):
        w = np.linspace(0.7, 1.3, 41) * rlc.center_frequency
        assert np.allclose(sampled.transfer(w), rlc.transfer(w), rtol=1e-6)

    def test_phase_matches_analytic(self, rlc, sampled):
        w = np.linspace(0.7, 1.3, 41) * rlc.center_frequency
        assert np.allclose(sampled.phase(w), rlc.phase(w), atol=1e-6)

    def test_inverse_phase_map_roundtrip(self, sampled):
        for phi_d in (-0.8, -0.2, 0.0, 0.2, 0.8):
            w = sampled.frequency_for_phase(phi_d)
            assert float(sampled.phase(np.asarray(w))) == pytest.approx(phi_d, abs=1e-9)

    def test_inverse_matches_analytic(self, rlc, sampled):
        for phi_d in (-0.5, 0.0, 0.5):
            assert sampled.frequency_for_phase(phi_d) == pytest.approx(
                rlc.frequency_for_phase(phi_d), rel=1e-6
            )

    def test_effective_capacitance_close(self, rlc, sampled):
        assert sampled.effective_capacitance() == pytest.approx(10e-9, rel=1e-3)

    def test_out_of_window_rejected(self, sampled):
        lo, hi = sampled.frequency_window
        with pytest.raises(ValueError, match="window"):
            sampled.transfer(np.asarray(2.0 * hi))
        with pytest.raises(ValueError, match="phase range"):
            sampled.frequency_for_phase(2.0)

    def test_requires_resonance_in_window(self, rlc):
        # A window entirely above resonance has no phase zero crossing.
        w = np.linspace(1.2, 1.5, 200) * rlc.center_frequency
        with pytest.raises(ValueError, match="zero crossing"):
            GeneralTank(w, rlc.transfer(w))

    def test_requires_enough_samples(self, rlc):
        w = np.linspace(0.9, 1.1, 5) * rlc.center_frequency
        with pytest.raises(ValueError, match="8"):
            GeneralTank(w, rlc.transfer(w))

    def test_from_spice_ac_analysis(self, rlc):
        # Pre-characterise the tank from the MNA simulator's AC sweep —
        # the "complex LC tank topologies" flow the paper mentions.
        from repro.spice import Circuit, ac_analysis

        ckt = Circuit("tank-ac")
        ckt.add_current_source("Iin", "0", "t", 0.0)
        ckt.add_resistor("R", "t", "0", 1000.0)
        ckt.add_inductor("L", "t", "0", 100e-6)
        ckt.add_capacitor("C", "t", "0", 10e-9)
        w = np.linspace(0.6, 1.4, 2001) * rlc.center_frequency
        ac = ac_analysis(ckt, "Iin", w)
        tank = GeneralTank(w, ac.voltage("t"))
        assert tank.center_frequency == pytest.approx(rlc.center_frequency, rel=1e-6)
        assert tank.peak_resistance == pytest.approx(1000.0, rel=1e-6)

    def test_lock_range_parity_with_analytic(self, rlc, sampled):
        # The sampled tank must reproduce the analytic tank's lock range.
        from repro.core import predict_lock_range
        from repro.nonlin import NegativeTanh

        f = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        lr_analytic = predict_lock_range(f, rlc, v_i=0.03, n=3)
        lr_sampled = predict_lock_range(f, sampled, v_i=0.03, n=3)
        assert lr_sampled.injection_lower == pytest.approx(
            lr_analytic.injection_lower, rel=1e-6
        )
        assert lr_sampled.injection_upper == pytest.approx(
            lr_analytic.injection_upper, rel=1e-6
        )
