"""Tier-1 tests for the batched sweep engine's execution semantics.

Numerical equivalence with the scalar path lives in
``test_batch_equivalence.py``; this file covers the engine's *behaviour*:
per-point fault masking, amortisation accounting, the observability
footprint, and the transient-referee seam (including ``--engine``
threading).
"""

import numpy as np
import pytest

from repro.obs import metrics
from repro.sweep import SweepPoint, SweepSpec, run_sweep
from repro.sweep.engine import SweepResult


def _counter(name: str) -> int:
    return metrics.counter(name)


class TestFaultMasking:
    def test_bad_point_does_not_abort_batch(self):
        # tanh at V_i = 0.6 V has no stable lock state (NoLockError);
        # escalate=False keeps the test fast (the ladder's refined-grid
        # rung would re-solve the point at 181x361).
        spec = SweepSpec(
            name="mask",
            points=(
                SweepPoint(family="tanh", n=3, v_i=0.03),
                SweepPoint(family="tanh", n=3, v_i=0.6),
                SweepPoint(family="tanh", n=3, v_i=0.05),
            ),
            escalate=False,
        )
        result = run_sweep(spec)
        statuses = [o.status for o in result.outcomes]
        assert statuses == ["ok", "no-lock", "ok"]
        # The healthy neighbours still carry full lock ranges.
        assert result.outcomes[0].lock is not None
        assert result.outcomes[2].lock is not None
        assert result.outcomes[1].lock is None
        # Lock-range-only points carry no tongue verdict.
        assert result.outcomes[1].locked is None
        assert "NoLockError" not in result.outcomes[1].detail  # typed, not raw

    def test_no_lock_counted_not_raised(self):
        before = _counter("sweep.faults")
        spec = SweepSpec(
            name="solo-bad",
            points=(SweepPoint(family="tanh", n=3, v_i=0.6),),
            escalate=False,
        )
        result = run_sweep(spec)
        assert result.counts() == {"ok": 0, "no-lock": 1, "fault": 0}
        assert _counter("sweep.faults") == before + 1


class TestAmortisation:
    def test_one_solve_per_vi_row(self):
        spec = SweepSpec.tongue("tanh", 3, [0.02, 0.04], freq_count=4)
        solves_before = _counter("sweep.lock_solves")
        shared_before = _counter("sweep.surface_shared")
        result = run_sweep(spec)
        assert result.lock_solves == 2
        assert _counter("sweep.lock_solves") == solves_before + 2
        # 8 points - 2 solves = 6 points rode along on a shared solve.
        assert _counter("sweep.surface_shared") == shared_before + 6
        assert result.n_groups == 1
        assert len(result.outcomes) == 8

    def test_points_counter_labelled_by_status(self):
        before = metrics.counter("sweep.points", status="ok")
        spec = SweepSpec(
            name="labels",
            points=(SweepPoint(family="tanh", n=3, v_i=0.03),),
        )
        run_sweep(spec)
        assert metrics.counter("sweep.points", status="ok") == before + 1


class TestTransientReferee:
    def test_engine_selection_reaches_simulator(self, monkeypatch):
        seen = {}

        def fake_simulate(nonlinearity, tank, *, v_i, n, engine=None, **kwargs):
            seen["engine"] = engine
            seen["v_i"] = v_i

            class _Measured:
                width_hz = 123.0

            return _Measured()

        import repro.measure.lockrange_sim as lockrange_sim

        monkeypatch.setattr(lockrange_sim, "simulate_lock_range", fake_simulate)
        spec = SweepSpec(
            name="referee",
            points=(SweepPoint(family="tanh", n=3, v_i=0.03),),
            engine="reference",
            check_transient=1,
        )
        result = run_sweep(spec)
        assert seen["engine"] == "reference"
        assert seen["v_i"] == 0.03
        assert result.outcomes[0].referee_width_hz == 123.0

    def test_referee_budget_limits_checks(self, monkeypatch):
        calls = []

        def fake_simulate(nonlinearity, tank, *, v_i, n, engine=None, **kwargs):
            calls.append(v_i)

            class _Measured:
                width_hz = 1.0

            return _Measured()

        import repro.measure.lockrange_sim as lockrange_sim

        monkeypatch.setattr(lockrange_sim, "simulate_lock_range", fake_simulate)
        spec = SweepSpec.tongue(
            "tanh", 3, [0.03], freq_count=4, check_transient=2
        )
        result = run_sweep(spec)
        assert len(calls) == 2
        refereed = [o for o in result.outcomes if o.referee_width_hz is not None]
        assert len(refereed) == 2

    def test_scan_failure_is_not_fatal(self, monkeypatch):
        from repro.measure.lockrange_sim import LockScanError

        def fake_simulate(*args, **kwargs):
            raise LockScanError("no transition bracketed")

        import repro.measure.lockrange_sim as lockrange_sim

        monkeypatch.setattr(lockrange_sim, "simulate_lock_range", fake_simulate)
        spec = SweepSpec(
            name="referee-fail",
            points=(SweepPoint(family="tanh", n=3, v_i=0.03),),
            check_transient=1,
        )
        result = run_sweep(spec)
        assert result.outcomes[0].status == "ok"
        assert result.outcomes[0].referee_width_hz is None


class TestResultShape:
    def test_counts_and_progress(self):
        ticks = []
        spec = SweepSpec.tongue("tanh", 3, [0.02, 0.04], freq_count=3)
        result = run_sweep(spec, progress=lambda done, total: ticks.append((done, total)))
        assert isinstance(result, SweepResult)
        assert result.counts()["ok"] == 6
        assert ticks[-1] == (6, 6)
        # Outcomes come back in spec order.
        assert [o.index for o in result.outcomes] == list(range(6))
        assert [o.point.v_i for o in result.outcomes[:3]] == [0.02] * 3

    def test_tongue_classification_brackets_the_lock_range(self):
        # A wide frequency span must produce unlocked edges and a locked
        # centre, consistent with the point's own lock interval.
        spec = SweepSpec.tongue(
            "tanh", 3, [0.03], freq_rel_span=0.05, freq_count=9
        )
        result = run_sweep(spec)
        locked = [o.locked for o in result.outcomes]
        assert locked[0] is False and locked[-1] is False
        assert any(locked)
        for o in result.outcomes:
            lock = o.lock
            inside = (
                lock.injection_lower
                <= o.point.w_injection
                <= lock.injection_upper
            )
            assert o.locked == inside
