"""Batched sweep == scalar path, bit for bit and by property.

The engine's whole design rides on one claim: routing a group's points
through the shared amplitude window and an adopted stacked surface does
not change a single bit of ``predict_lock_range``'s answer.  These tests
pin that claim directly against the scalar entry point (not against
``run_sweep_pointwise``, which shares engine code).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import predict_lock_range
from repro.core.lockrange import NoLockError
from repro.sweep import SweepPoint, SweepSpec, run_sweep, run_sweep_pointwise
from repro.verify.scenarios import FAMILIES

#: Reduced characterisation grid: keeps each solve ~4x cheaper while
#: still exercising the full pipeline (both paths get the same grid).
FAST = dict(n_a=61, n_phi=121)


def _scalar_reference(point: SweepPoint, spec: SweepSpec):
    """What a scalar caller would get for this point (None = no lock)."""
    nonlinearity, tank = FAMILIES[point.family]()
    try:
        return predict_lock_range(
            nonlinearity,
            tank,
            v_i=point.v_i,
            n=point.n,
            n_a=spec.n_a,
            n_phi=spec.n_phi,
            n_samples=spec.n_samples,
            method=spec.method,
        )
    except NoLockError:
        return None


def _assert_matches_scalar(spec: SweepSpec, rel_tol: float = 1e-9):
    result = run_sweep(spec)
    for outcome in result.outcomes:
        reference = _scalar_reference(outcome.point, spec)
        if reference is None:
            assert outcome.status == "no-lock", outcome
            assert outcome.lock is None
            continue
        assert outcome.status == "ok", outcome
        width = reference.injection_upper - reference.injection_lower
        assert (
            abs(outcome.lock.injection_lower - reference.injection_lower)
            <= rel_tol * width
        )
        assert (
            abs(outcome.lock.injection_upper - reference.injection_upper)
            <= rel_tol * width
        )


class TestBitForBit:
    def test_tongue_matches_scalar_exactly(self):
        spec = SweepSpec.tongue(
            "tanh", 3, [0.02, 0.05], freq_count=3, escalate=False, **FAST
        )
        result = run_sweep(spec)
        for outcome in result.outcomes:
            reference = _scalar_reference(outcome.point, spec)
            # Not just within tolerance: the same floats.
            assert outcome.lock.injection_lower == reference.injection_lower
            assert outcome.lock.injection_upper == reference.injection_upper
            assert outcome.lock.samples == reference.samples

    def test_batched_matches_pointwise_runner(self):
        points = (
            SweepPoint(family="tanh", n=3, v_i=0.03),
            SweepPoint(family="tanh", n=3, v_i=0.6),  # deliberately no-lock
            SweepPoint(family="tanh", n=3, v_i=0.015, q_scale=0.5),
        )
        spec = SweepSpec(name="mixed", points=points, escalate=False, **FAST)
        batched = run_sweep(spec)
        pointwise = run_sweep_pointwise(spec)
        for b, p in zip(batched.outcomes, pointwise.outcomes):
            assert (b.status, b.locked) == (p.status, p.locked)
            if b.lock is None:
                assert p.lock is None
            else:
                assert b.lock.injection_lower == p.lock.injection_lower
                assert b.lock.injection_upper == p.lock.injection_upper


class TestPropertyTanh:
    @settings(max_examples=5, deadline=None)
    @given(
        v_i=st.floats(min_value=0.006, max_value=0.08),
        n=st.sampled_from([2, 3]),
    )
    def test_batched_width_matches_scalar(self, v_i, n):
        spec = SweepSpec(
            name="prop-tanh",
            points=(
                SweepPoint(family="tanh", n=n, v_i=v_i),
                SweepPoint(family="tanh", n=3, v_i=0.6),  # no-lock companion
            ),
            escalate=False,
            **FAST,
        )
        _assert_matches_scalar(spec)


@pytest.mark.tier2
class TestPropertySlowFamilies:
    """The diffpair and tunnel halves of the BENCH_SPEED family trio.

    Each solve costs 0.3-0.8 s, so these run in the tier-2 lane with the
    verify matrix (``pytest -m tier2``).
    """

    @settings(max_examples=3, deadline=None)
    @given(v_i=st.floats(min_value=0.01, max_value=0.04))
    def test_diffpair(self, v_i):
        spec = SweepSpec(
            name="prop-diffpair",
            points=(SweepPoint(family="diffpair", n=3, v_i=v_i),),
            escalate=False,
            **FAST,
        )
        _assert_matches_scalar(spec)

    @settings(max_examples=3, deadline=None)
    @given(v_i=st.floats(min_value=0.01, max_value=0.03))
    def test_tunnel(self, v_i):
        spec = SweepSpec(
            name="prop-tunnel",
            points=(SweepPoint(family="tunnel", n=2, v_i=v_i),),
            escalate=False,
            **FAST,
        )
        _assert_matches_scalar(spec)
