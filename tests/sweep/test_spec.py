"""Tier-1 tests for sweep specs, loading, and the amortisation plan."""

import json

import pytest

from repro.sweep import SweepPoint, SweepSpec, build_plan, load_spec
from repro.verify.scenarios import FAMILIES, scenario_matrix


class TestSweepPoint:
    def test_valid(self):
        point = SweepPoint(family="tanh", n=3, v_i=0.03)
        assert point.w_injection is None
        assert point.q_scale == 1.0

    def test_unknown_family(self):
        with pytest.raises((KeyError, ValueError)):
            SweepPoint(family="nosuch", n=3, v_i=0.03)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n": 0},
            {"n": -1},
            {"v_i": 0.0},
            {"v_i": -0.1},
            {"q_scale": 0.0},
            {"w_injection": -1.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        base = {"family": "tanh", "n": 3, "v_i": 0.03}
        with pytest.raises((ValueError, TypeError)):
            SweepPoint(**{**base, **kwargs})


class TestTongue:
    def test_grid_shape_and_order(self):
        v_is = [0.01, 0.03]
        spec = SweepSpec.tongue("tanh", 3, v_is, freq_count=5)
        assert len(spec.points) == len(v_is) * 5
        # V_i-major ordering: first 5 points share v_i = 0.01.
        assert {p.v_i for p in spec.points[:5]} == {0.01}
        assert {p.v_i for p in spec.points[5:]} == {0.03}

    def test_frequency_span(self):
        _, tank = FAMILIES["tanh"]()
        spec = SweepSpec.tongue("tanh", 3, [0.03], freq_rel_span=0.01, freq_count=3)
        freqs = [p.w_injection for p in spec.points]
        w_center = 3 * tank.center_frequency
        assert freqs == sorted(freqs)
        assert freqs[0] == pytest.approx(w_center * 0.99)
        assert freqs[1] == pytest.approx(w_center)
        assert freqs[2] == pytest.approx(w_center * 1.01)

    def test_unknown_family(self):
        with pytest.raises(KeyError):
            SweepSpec.tongue("nosuch", 3, [0.03])


class TestFromVerifyMatrix:
    def test_quick_matrix_points(self):
        spec = SweepSpec.from_verify_matrix("quick")
        scenarios = scenario_matrix("quick")
        assert len(spec.points) == len(scenarios)
        assert [p.label for p in spec.points] == [
            s.scenario_id for s in scenarios
        ]
        # Lock-range-only points: no frequency axis.
        assert all(p.w_injection is None for p in spec.points)


class TestLoadSpec:
    def test_points_json(self, tmp_path):
        doc = {
            "name": "two-points",
            "escalate": False,
            "points": [
                {"family": "tanh", "n": 3, "v_i": 0.03},
                {"family": "tanh", "n": 3, "v_i": 0.05, "q_scale": 0.5},
            ],
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(doc))
        spec = load_spec(path)
        assert spec.name == "two-points"
        assert spec.escalate is False
        assert len(spec.points) == 2
        assert spec.points[1].q_scale == 0.5

    def test_tongue_yaml(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        doc = {
            "name": "yaml-tongue",
            "tongue": {
                "family": "tanh",
                "n": 3,
                "v_i": {"start": 0.01, "stop": 0.03, "count": 3},
                "freq": {"rel_span": 0.004, "count": 4},
            },
        }
        path = tmp_path / "spec.yaml"
        path.write_text(yaml.safe_dump(doc))
        spec = load_spec(path)
        assert spec.name == "yaml-tongue"
        assert len(spec.points) == 3 * 4
        assert sorted({p.v_i for p in spec.points}) == pytest.approx(
            [0.01, 0.02, 0.03]
        )

    def test_rejects_empty(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"name": "empty"}))
        with pytest.raises(ValueError, match="points"):
            load_spec(path)

    def test_grid_missing_keys(self, tmp_path):
        doc = {"tongue": {"family": "tanh", "n": 3, "v_i": {"start": 0.01}}}
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="grid is missing"):
            load_spec(path)


class TestPlan:
    def test_groups_by_oscillator_key(self):
        points = (
            SweepPoint(family="tanh", n=3, v_i=0.03),
            SweepPoint(family="tanh", n=3, v_i=0.01),
            SweepPoint(family="tanh", n=3, v_i=0.03, q_scale=0.5),
            SweepPoint(family="tunnel", n=2, v_i=0.02),
            SweepPoint(family="tanh", n=3, v_i=0.02),
        )
        plan = build_plan(SweepSpec(name="mixed", points=points))
        assert [g.shard for g in plan.groups] == [
            "tanh-n3-q1",
            "tanh-n3-q0p5",
            "tunnel-n2-q1",
        ]
        # Sorted unique v_i grid per group regardless of point order.
        assert plan.groups[0].v_is == (0.01, 0.02, 0.03)
        assert plan.n_points == 5
        assert plan.n_lock_solves == 5

    def test_tongue_amortisation(self):
        spec = SweepSpec.tongue("tanh", 3, [0.01, 0.02, 0.03], freq_count=8)
        plan = build_plan(spec)
        assert plan.n_points == 24
        # One lock solve per V_i row — the whole point of the batch.
        assert plan.n_lock_solves == 3
