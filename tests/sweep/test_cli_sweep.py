"""Tier-1 tests for the ``repro sweep`` command."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def in_tmp(tmp_path, monkeypatch):
    """Run the CLI with the tmp dir as cwd (default artifact landing zone)."""
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestSweepCommand:
    def test_tongue_shortcut_end_to_end(self, in_tmp, capsys):
        code = main(
            [
                "sweep",
                "--oscillator",
                "tanh",
                "--vi-count",
                "2",
                "--freq-count",
                "3",
                "--no-escalate",
                "--tongue",
                "tongue.txt",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "6 point(s) in 1 group(s), 2 lock solve(s)" in out
        assert "Arnol'd tongue map" in out
        assert (in_tmp / "tongue.txt").exists()
        report = json.loads((in_tmp / "SWEEP_REPORT.json").read_text())
        assert report["report"] == "SWEEP"
        assert report["mode"] == "batched"
        assert len(report["points"]) == 6
        assert {row["status"] for row in report["points"]} == {"ok"}

    def test_no_lock_points_are_data_not_failures(self, in_tmp, capsys):
        # V_i up to 0.6 V guarantees no-lock rows; exit code must stay 0.
        code = main(
            [
                "sweep",
                "--oscillator",
                "tanh",
                "--vi-start",
                "0.03",
                "--vi-stop",
                "0.6",
                "--vi-count",
                "2",
                "--freq-count",
                "2",
                "--no-escalate",
            ]
        )
        assert code == 0
        report = json.loads((in_tmp / "SWEEP_REPORT.json").read_text())
        statuses = {row["status"] for row in report["points"]}
        assert "no-lock" in statuses

    def test_spec_file_and_report_path(self, in_tmp, capsys):
        spec_path = in_tmp / "spec.json"
        spec_path.write_text(
            json.dumps(
                {
                    "name": "file-spec",
                    "escalate": False,
                    "points": [{"family": "tanh", "n": 3, "v_i": 0.03}],
                }
            )
        )
        code = main(
            ["sweep", "--spec", str(spec_path), "--report", "out.json"]
        )
        assert code == 0
        report = json.loads((in_tmp / "out.json").read_text())
        assert report["spec"] == "file-spec"
        assert report["points"][0]["width_hz"] > 0

    def test_no_batch_runs_pointwise(self, in_tmp, capsys):
        code = main(
            [
                "sweep",
                "--oscillator",
                "tanh",
                "--vi-count",
                "2",
                "--freq-count",
                "2",
                "--no-batch",
                "--no-escalate",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pointwise" in out
        report = json.loads((in_tmp / "SWEEP_REPORT.json").read_text())
        assert report["mode"] == "pointwise"

    def test_requires_a_source(self, in_tmp):
        with pytest.raises(SystemExit):
            main(["sweep"])

    def test_engine_flag_threads_to_referee(self, in_tmp, monkeypatch):
        seen = {}

        def fake_simulate(nonlinearity, tank, *, v_i, n, engine=None, **kwargs):
            seen["engine"] = engine

            class _Measured:
                width_hz = 1.0

            return _Measured()

        import repro.measure.lockrange_sim as lockrange_sim

        monkeypatch.setattr(lockrange_sim, "simulate_lock_range", fake_simulate)
        code = main(
            [
                "--engine",
                "reference",
                "sweep",
                "--oscillator",
                "tanh",
                "--vi-count",
                "1",
                "--freq-count",
                "2",
                "--check-transient",
                "1",
                "--no-escalate",
            ]
        )
        assert code == 0
        assert seen["engine"] == "reference"

    def test_traced_run_emits_sweep_spans(self, in_tmp, capsys):
        code = main(
            [
                "--trace",
                "trace.jsonl",
                "sweep",
                "--oscillator",
                "tanh",
                "--vi-count",
                "1",
                "--freq-count",
                "2",
                "--no-escalate",
            ]
        )
        assert code == 0
        names = [
            json.loads(line).get("name")
            for line in (in_tmp / "trace.jsonl").read_text().splitlines()
        ]
        assert "sweep" in names
        assert "sweep.group" in names
