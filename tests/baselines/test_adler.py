"""Tests for the Adler baselines."""

import numpy as np
import pytest

from repro.baselines import adler_fhil_lock_range, adler_shil_lock_range
from repro.core import fhil_lock_range, predict_lock_range, predict_natural_oscillation
from repro.nonlin import NegativeTanh
from repro.tank import ParallelRLC


@pytest.fixture(scope="module")
def setup():
    return (
        NegativeTanh(gm=2.5e-3, i_sat=1e-3),
        ParallelRLC(r=1000.0, l=100e-6, c=10e-9),
    )


class TestAdlerFhil:
    def test_formula(self, setup):
        __, tank = setup
        lo, hi = adler_fhil_lock_range(tank, v_osc=1.2, v_inj=0.06)
        half = tank.center_frequency / (2 * 10.0) * (0.06 / 1.2)
        assert hi - tank.center_frequency == pytest.approx(half, rel=1e-9)
        assert tank.center_frequency - lo == pytest.approx(half, rel=1e-9)

    def test_agrees_with_graphical_fhil_for_weak_injection(self, setup):
        tanh, tank = setup
        natural = predict_natural_oscillation(tanh, tank)
        v_i = 0.005
        graphical = fhil_lock_range(tanh, tank, v_i=v_i)
        lo, hi = adler_fhil_lock_range(tank, natural.amplitude, 2 * v_i)
        assert (hi - lo) == pytest.approx(graphical.width, rel=0.2)

    def test_rejects_bad_args(self, setup):
        __, tank = setup
        with pytest.raises(ValueError):
            adler_fhil_lock_range(tank, 0.0, 0.06)
        with pytest.raises(ValueError):
            adler_fhil_lock_range(tank, 1.0, -0.1)


class TestAdlerShil:
    def test_close_to_graphical_for_weak_injection(self, setup):
        # The fixed-amplitude approximation converges to the full method
        # as V_i -> 0 (the amplitude droop toward the edge vanishes).
        tanh, tank = setup
        v_i = 0.01
        adler = adler_shil_lock_range(tanh, tank, v_i=v_i, n=3)
        graphical = predict_lock_range(tanh, tank, v_i=v_i, n=3)
        assert adler.width == pytest.approx(graphical.width, rel=0.05)

    def test_amplitude_frozen_at_natural(self, setup):
        tanh, tank = setup
        natural = predict_natural_oscillation(tanh, tank)
        adler = adler_shil_lock_range(tanh, tank, v_i=0.03, n=3)
        assert adler.amplitude_at_lower == pytest.approx(natural.amplitude)
        assert adler.amplitude_at_upper == pytest.approx(natural.amplitude)

    def test_symmetric_phi_d(self, setup):
        tanh, tank = setup
        adler = adler_shil_lock_range(tanh, tank, v_i=0.03, n=3)
        assert adler.phi_d_at_lower == pytest.approx(-adler.phi_d_at_upper, abs=1e-9)

    def test_width_grows_with_injection(self, setup):
        tanh, tank = setup
        weak = adler_shil_lock_range(tanh, tank, v_i=0.01, n=3)
        strong = adler_shil_lock_range(tanh, tank, v_i=0.05, n=3)
        assert strong.width > weak.width
