"""Tests for the PPV phase macromodel."""

import numpy as np
import pytest

from repro.baselines import compute_ppv, ppv_lock_range
from repro.core import predict_lock_range
from repro.nonlin import NegativeTanh
from repro.tank import ParallelRLC


@pytest.fixture(scope="module")
def setup():
    return (
        NegativeTanh(gm=2.5e-3, i_sat=1e-3),
        ParallelRLC(r=1000.0, l=100e-6, c=10e-9),
    )


@pytest.fixture(scope="module")
def model(setup):
    tanh, tank = setup
    return compute_ppv(tanh, tank, settle_cycles=300.0, n_t=512)


class TestComputePpv:
    def test_unity_floquet_multiplier(self, model):
        multipliers = model.floquet_multipliers
        closest = multipliers[np.argmin(np.abs(multipliers - 1.0))]
        assert abs(closest - 1.0) < 1e-6

    def test_second_multiplier_inside_unit_circle(self, model):
        # A stable limit cycle: the non-trivial multiplier has |mu| < 1.
        multipliers = sorted(model.floquet_multipliers, key=lambda m: abs(m - 1.0))
        assert abs(multipliers[1]) < 1.0

    def test_normalisation_constant(self, model):
        # v1 . xdot_s must be constant (=1) along the orbit; deviations
        # measure the orbit/period error.
        assert model.normalisation_error() < 1e-3

    def test_period_close_to_tank(self, setup, model):
        __, tank = setup
        assert model.w0 == pytest.approx(tank.center_frequency, rel=1e-3)

    def test_orbit_amplitude_matches_prediction(self, setup, model):
        from repro.core import predict_natural_oscillation

        tanh, tank = setup
        natural = predict_natural_oscillation(tanh, tank)
        assert float(np.max(model.x_s[:, 0])) == pytest.approx(
            natural.amplitude, rel=5e-3
        )

    def test_ppv_periodicity(self, model):
        # The adjoint solution must close on itself.  Samples exclude the
        # endpoint, so the wrap gap |v1[-1] - v1[0]| should be comparable
        # to one ordinary inter-sample step, not larger.
        wrap_gap = np.linalg.norm(model.v1[-1] - model.v1[0])
        typical_step = float(
            np.median(np.linalg.norm(np.diff(model.v1, axis=0), axis=1))
        )
        assert wrap_gap < 3.0 * typical_step


class TestPpvLockRange:
    def test_close_to_graphical_for_weak_injection(self, setup, model):
        tanh, tank = setup
        v_i = 0.01
        lo, hi = ppv_lock_range(tanh, tank, v_i=v_i, n=3, model=model)
        graphical = predict_lock_range(tanh, tank, v_i=v_i, n=3)
        assert (hi - lo) == pytest.approx(graphical.width, rel=0.1)

    def test_centered_on_true_frequency(self, setup, model):
        tanh, tank = setup
        lo, hi = ppv_lock_range(tanh, tank, v_i=0.03, n=3, model=model)
        center = 0.5 * (lo + hi)
        assert center == pytest.approx(3 * model.w0, rel=1e-9)

    def test_width_linear_in_injection(self, setup, model):
        tanh, tank = setup
        lo1, hi1 = ppv_lock_range(tanh, tank, v_i=0.01, n=3, model=model)
        lo2, hi2 = ppv_lock_range(tanh, tank, v_i=0.02, n=3, model=model)
        assert (hi2 - lo2) == pytest.approx(2 * (hi1 - lo1), rel=1e-9)

    def test_rejects_bad_vi(self, setup, model):
        tanh, tank = setup
        with pytest.raises(ValueError):
            ppv_lock_range(tanh, tank, v_i=-1.0, n=3, model=model)
