"""Tests for the per-figure experiment drivers (prediction-only ones).

The transient-heavy drivers (FIG13/15/17/19, TAB1/2, SPEED) are exercised
end-to-end by the benchmark suite; here we run the prediction-side drivers
fully and assert the numbers the paper reports.
"""

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.result import ExperimentResult


class TestRegistry:
    def test_all_design_md_ids_present(self):
        expected = {
            "FIG3", "FIG6", "FIG7", "FIG9", "FIG10",
            "FIG12", "FIG13", "FIG14", "FIG15", "TAB1",
            "FIG16", "FIG17", "FIG18", "FIG19", "TAB2",
            "SPEED", "TRANSIENT", "SWEEP", "ABL1", "ABL2", "ABL3", "VERIFY",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("FIG99")

    def test_case_insensitive(self):
        result = run_experiment("fig3")
        assert result.experiment_id == "FIG3"


class TestExperimentResult:
    def test_add_and_format(self):
        result = ExperimentResult("X", "demo")
        result.add("a float", 1.23456789)
        result.add("a bool", True)
        result.add("an int", 7)
        result.add("a string", "hello")
        text = result.format()
        assert "1.23457" in text
        assert "yes" in text
        assert "hello" in text

    def test_value_lookup(self):
        result = ExperimentResult("X", "demo")
        result.add("key", 1.0)
        assert result.value("key") == "1"
        with pytest.raises(KeyError):
            result.value("missing")


class TestSection3Drivers:
    def test_fig3_values(self):
        result = run_experiment("FIG3")
        assert float(result.value("predicted amplitude A (V)")) == pytest.approx(
            1.20838, rel=1e-4
        )
        assert result.value("stable") == "yes"
        assert "T_f" in result.ascii_plot

    def test_fig6_values(self):
        result = run_experiment("FIG6")
        assert float(result.value("Q")) == pytest.approx(10.0)
        assert float(result.value("peak |H| (Ohm)")) == pytest.approx(1000.0)

    def test_fig7_two_locks(self):
        result = run_experiment("FIG7")
        assert int(result.value("lock states found")) == 2
        assert int(result.value("stable locks")) == 1
        assert int(result.value("unstable locks")) == 1
        assert int(result.value("total physical states (multiple of n)")) % 3 == 0

    def test_fig9_states(self):
        result = run_experiment("FIG9")
        assert result.value("phase spacing uniform at 2pi/n") == "yes"

    def test_fig10_lock_range(self):
        result = run_experiment("FIG10")
        assert float(result.value("phi_d symmetry |lower+upper|")) < 1e-9
        width = float(result.value("lock range width (Hz)"))
        assert 1000.0 < width < 3000.0


class TestSection4PredictionDrivers:
    def test_fig12_reproduces_paper_amplitude(self):
        result = run_experiment("FIG12")
        assert float(result.value("predicted natural amplitude A (V)")) == pytest.approx(
            0.505, abs=1e-3
        )
        assert result.value("BC clamp visible beyond tanh region") == "yes"

    def test_fig14_lock_range_shape(self):
        result = run_experiment("FIG14")
        lower = float(result.value("lower lock limit (MHz)"))
        upper = float(result.value("upper lock limit (MHz)"))
        # Paper Table 1 prediction: 1.501065 / 1.518735 MHz.
        assert lower == pytest.approx(1.5011, abs=0.002)
        assert upper == pytest.approx(1.5187, abs=0.002)
        assert result.value("A under lock < natural A") == "yes"

    def test_fig16_reproduces_paper_amplitude(self):
        result = run_experiment("FIG16")
        assert float(result.value("predicted natural amplitude A (V)")) == pytest.approx(
            0.199, abs=2e-3
        )
        assert result.value("negative resistance at bias") == "yes"

    def test_fig18_lock_range_shape(self):
        result = run_experiment("FIG18")
        lower = float(result.value("lower lock limit (GHz)"))
        upper = float(result.value("upper lock limit (GHz)"))
        # Paper Table 2 prediction: 1.507320 / 1.512429 GHz.
        assert lower == pytest.approx(1.50732, abs=0.001)
        assert upper == pytest.approx(1.51243, abs=0.001)
        width = float(result.value("lock range width (GHz)"))
        assert width == pytest.approx(0.005109, abs=3e-4)
