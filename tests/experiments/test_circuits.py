"""Tests for the calibrated canonical circuits."""

import numpy as np
import pytest

from repro.core import predict_natural_oscillation
from repro.experiments import (
    diffpair_extraction_circuit,
    diffpair_oscillator,
    diffpair_oscillator_circuit,
    tanh_oscillator,
    tunnel_extraction_circuit,
    tunnel_oscillator,
    tunnel_oscillator_circuit,
)
from repro.spice import dc_operating_point


class TestCalibration:
    def test_tanh_demo_loop_gain(self):
        setup = tanh_oscillator()
        natural = predict_natural_oscillation(setup.nonlinearity, setup.tank)
        # Fig. 3's visible y-intercept: T_f(0) = 2.5.
        assert natural.loop_gain_small_signal == pytest.approx(2.5)

    def test_diffpair_center_frequency(self):
        setup = diffpair_oscillator()
        assert setup.tank.center_frequency_hz == pytest.approx(503292.12, rel=1e-6)

    def test_tunnel_center_frequency(self):
        setup = tunnel_oscillator()
        assert setup.tank.center_frequency_hz == pytest.approx(503.29212e6, rel=1e-6)

    def test_tunnel_natural_amplitude_is_papers(self):
        # The paper's headline A = 0.199 V.
        setup = tunnel_oscillator()
        natural = predict_natural_oscillation(setup.nonlinearity, setup.tank)
        assert natural.amplitude == pytest.approx(0.199, abs=2e-3)

    def test_default_injection_parameters(self):
        for setup in (tanh_oscillator(), diffpair_oscillator(), tunnel_oscillator()):
            assert setup.v_i == 0.03
            assert setup.n == 3
            assert setup.w_c == setup.tank.center_frequency


class TestSpiceCircuits:
    def test_diffpair_extraction_cell_balances(self):
        op = dc_operating_point(diffpair_extraction_circuit())
        # Zero differential drive: VX carries half the tail current
        # (collector current of the on-side device).
        assert abs(op.branch_current("VX")) == pytest.approx(2.5e-4, rel=0.05)

    def test_diffpair_oscillator_bias(self):
        op = dc_operating_point(diffpair_oscillator_circuit())
        # Inductor centre tap: both collectors at VCC at DC.
        assert op.voltage("ncl") == pytest.approx(5.0, abs=1e-6)
        assert op.voltage("ncr") == pytest.approx(5.0, abs=1e-6)
        # Tail node one V_BE below the bases (which sit at the 5 V
        # collectors through the cross-coupling).
        assert 4.2 < op.voltage("e") < 4.7

    def test_tunnel_oscillator_bias(self):
        op = dc_operating_point(tunnel_oscillator_circuit())
        # The inductor shorts the bias to the diode at DC.
        assert op.voltage("a") == pytest.approx(0.25, abs=1e-9)

    def test_tunnel_extraction_matches_model(self):
        from repro.nonlin import TunnelDiode, extract_iv_curve

        model = TunnelDiode()
        table = extract_iv_curve(tunnel_extraction_circuit(), "VX", 0.0, 0.55, 56)
        # At the sweep samples the MNA solution is exact to Newton
        # tolerance; between samples the PCHIP interpolation dominates.
        assert np.max(
            np.abs(table.i_samples - model(table.v_samples))
        ) < 1e-12
        assert table.max_abs_error_against(model) < 2e-5
