"""Tests for the ablation experiment drivers (cheap configurations)."""

import pytest

from repro.experiments.extras import run_ablation_filtering, run_ablation_grid


class TestAblationGrid:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ablation_grid()

    def test_all_configs_reported(self, result):
        labels = [label for label, _ in result.rows]
        assert any("31x61" in label for label in labels)
        assert any("181x361" in label for label in labels)

    def test_errors_tiny_after_refinement(self, result):
        # The sub-grid quadrature refinement makes the edges effectively
        # grid-independent.
        errors = [err for err, _ in result.data.values()]
        assert max(errors) < 1e-3

    def test_cost_grows_with_resolution(self, result):
        times = [elapsed for _, elapsed in result.data.values()]
        assert times[-1] > times[0]


class TestAblationFiltering:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ablation_filtering()

    def test_hb_beats_df_on_frequency(self, result):
        df_err = abs(float(result.value("DF frequency (= f_c) error (Hz)")))
        hb_err = abs(float(result.value("HB frequency error (Hz)")))
        assert hb_err < 0.25 * df_err

    def test_hb_beats_df_on_lock_phase(self, result):
        df_phase, hb_phase = result.data["phase_errors"]
        assert hb_phase < 0.5 * df_phase

    def test_hb_predicts_thd(self, result):
        predicted = float(result.value("HB-predicted voltage THD"))
        simulated = float(result.value("simulated voltage THD"))
        assert predicted == pytest.approx(simulated, rel=0.15)

    def test_df_frequency_error_sign(self, result):
        # The DF pins the oscillation at w_c; the real oscillator runs
        # low, so the DF error is positive.
        assert float(result.value("DF frequency (= f_c) error (Hz)")) > 0.0
