"""Unit tests for the diagnostics record and the contextvar fault collector."""

from repro.robust import (
    RungAttempt,
    SolveDiagnostics,
    SolveFault,
    active_diagnostics,
    collecting,
    record_fault,
)


class TestSolveDiagnostics:
    def test_fault_coalescing_by_kind_and_stage(self):
        diag = SolveDiagnostics(stage="lock-range")
        first = diag.record_fault(
            SolveFault("phase-inversion-out-of-range", "lock-range", "phi=1.6")
        )
        again = diag.record_fault(
            SolveFault("phase-inversion-out-of-range", "lock-range", "phi=1.7")
        )
        assert again is first
        assert len(diag.faults) == 1
        assert diag.faults[0].count == 2
        other = diag.record_fault(SolveFault("no-lock", "lock-range", "none"))
        assert other is not first
        assert len(diag.faults) == 2

    def test_escalated_and_ok_properties(self):
        diag = SolveDiagnostics(stage="natural")
        assert not diag.escalated and not diag.ok
        diag.attempts.append(RungAttempt("baseline", {}, "fault"))
        diag.attempts.append(RungAttempt("refined-scan", {}, "ok"))
        assert diag.escalated and diag.ok

    def test_summary_names_the_recovery_rung(self):
        diag = SolveDiagnostics(stage="natural", recovered_via="refined-scan")
        diag.attempts.append(RungAttempt("baseline", {}, "fault"))
        diag.attempts.append(RungAttempt("refined-scan", {}, "ok"))
        summary = diag.summary()
        assert "recovered via 'refined-scan'" in summary
        assert "baseline -> refined-scan" in summary

    def test_format_lists_rungs_and_faults(self):
        diag = SolveDiagnostics(stage="natural")
        fault = diag.record_fault(SolveFault("no-oscillation", "natural", "dead"))
        diag.attempts.append(RungAttempt("baseline", {}, "fault", fault, 0.1))
        text = diag.format()
        assert "rung baseline: fault" in text
        assert "no-oscillation" in text

    def test_to_dict_is_json_ready(self):
        import json

        diag = SolveDiagnostics(stage="natural")
        diag.attempts.append(
            RungAttempt("baseline", {"n_grid": 1600}, "ok", None, 0.25)
        )
        json.dumps(diag.to_dict())  # must not raise


class TestCollector:
    def test_record_fault_is_noop_outside_a_context(self):
        assert active_diagnostics() is None
        record_fault(SolveFault("no-lock", "lock-range", "dropped"))  # no-op

    def test_collecting_routes_and_restores(self):
        diag = SolveDiagnostics(stage="lock-range")
        with collecting(diag):
            assert active_diagnostics() is diag
            record_fault(SolveFault("no-lock", "lock-range", "dropped"))
        assert active_diagnostics() is None
        assert len(diag.faults) == 1
        assert diag.wall_s > 0.0

    def test_nested_contexts_restore_the_outer(self):
        outer = SolveDiagnostics(stage="outer")
        inner = SolveDiagnostics(stage="inner")
        with collecting(outer):
            with collecting(inner):
                record_fault(SolveFault("no-lock", "inner", "x"))
            record_fault(SolveFault("no-lock", "outer", "y"))
        assert len(inner.faults) == 1 and inner.faults[0].stage == "inner"
        assert len(outer.faults) == 1 and outer.faults[0].stage == "outer"
