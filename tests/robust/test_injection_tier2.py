"""Tier-2: the full deterministic fault-injection matrix must stay green.

Every scenario injects a specific failure (singular HB Jacobian,
non-finite device samples, a truncated cache record, an unreachable tank
phase inversion, a degenerate circuit) and asserts the pipeline either
recovers via a documented escalation rung or fails with the declared
typed fault — never an unhandled traceback.
"""

import json

import pytest

from repro.robust import fault_scenarios, run_fault_matrix

pytestmark = pytest.mark.tier2


def test_quick_matrix_all_green():
    report = run_fault_matrix(quick=True)
    assert report.passed, report.format()
    assert len(report.outcomes) == len(fault_scenarios(quick=True))


def test_full_matrix_all_green():
    report = run_fault_matrix(quick=False)
    assert report.passed, report.format()
    by_id = {o.scenario: o for o in report.outcomes}
    # The continuation scenario must recover through the documented rung,
    # not by the cold Newton accidentally succeeding.
    continuation = by_id["hb-lock-continuation"]
    assert continuation.recovered_via == "continuation"
    assert "hb-divergence" in continuation.fault_kinds


def test_report_round_trips_through_json(tmp_path):
    report = run_fault_matrix(quick=True)
    path = report.write(tmp_path / "faults.json")
    payload = json.loads(path.read_text())
    assert payload["passed"] is True
    assert len(payload["outcomes"]) == len(report.outcomes)
    for outcome in payload["outcomes"]:
        assert outcome["expectation"] in ("recover", "typed-failure")


def test_every_scenario_declares_a_known_fault_kind():
    from repro.robust import FAULT_KINDS

    for scenario in fault_scenarios(quick=False):
        assert scenario.expected_fault in FAULT_KINDS, scenario.scenario_id
