"""Wall-clock deadline propagation into the escalation ladder.

The serving layer hands every job a budget; the ladder must honour it by
checking the remaining budget *before* each rung and recording a typed
``budget-exhausted`` fault instead of overrunning — never by running a
slow dense-referee rung past the caller's deadline.
"""

import time

import pytest

from repro.core.lockrange import NoLockError
from repro.robust import NumericalFaultError
from repro.robust.ladder import (
    EscalationPolicy,
    Rung,
    robust_predict_lock_range,
    run_ladder,
)


def _policy(n_rungs=3):
    return EscalationPolicy(
        "lock-range",
        tuple(Rung(f"rung-{i}", f"step {i}") for i in range(n_rungs)),
    )


class TestRunLadderDeadline:
    def test_no_deadline_keeps_existing_behavior(self):
        result = run_ladder(_policy(), lambda params: "answer")
        assert result.value == "answer"
        assert not result.diagnostics.faults

    def test_expired_deadline_before_first_rung_raises_typed(self):
        with pytest.raises(NumericalFaultError) as err:
            run_ladder(
                _policy(),
                lambda params: "never-called",
                deadline=time.monotonic() - 1.0,
            )
        assert err.value.fault.kind == "budget-exhausted"
        assert not err.value.fault.recoverable
        diagnostics = err.value.diagnostics
        assert diagnostics.exhausted
        assert [f.kind for f in diagnostics.faults] == ["budget-exhausted"]
        assert diagnostics.attempts == []

    def test_deadline_stops_escalation_between_rungs(self):
        calls = []

        def attempt(params):
            calls.append(1)
            time.sleep(0.05)
            raise NoLockError("injected rung failure")

        with pytest.raises(NoLockError) as err:
            run_ladder(_policy(3), attempt, deadline=time.monotonic() + 0.01)
        # Only the first rung ran; the deadline check stopped the climb and
        # the typed solver exception still carries the full story.
        assert len(calls) == 1
        kinds = [f.kind for f in err.value.diagnostics.faults]
        assert kinds == ["no-lock", "budget-exhausted"]

    def test_generous_deadline_does_not_interfere(self):
        attempts = {"n": 0}

        def attempt(params):
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise NoLockError("first rung fails")
            return "recovered"

        result = run_ladder(_policy(3), attempt, deadline=time.monotonic() + 60)
        assert result.value == "recovered"
        assert result.diagnostics.recovered_via == "rung-1"

    def test_suspicious_fallback_survives_budget_exhaustion(self):
        attempts = {"n": 0}

        def attempt(params):
            attempts["n"] += 1
            time.sleep(0.05)
            return f"suspicious-{attempts['n']}"

        result = run_ladder(
            _policy(3),
            attempt,
            retry_on_result=lambda r: True,
            deadline=time.monotonic() + 0.01,
        )
        # The suspicious first answer is kept as the fallback when the
        # budget ran out before any refinement could confirm it.
        assert result.value == "suspicious-1"
        kinds = [f.kind for f in result.diagnostics.faults]
        assert "suspicious-result" in kinds
        assert "budget-exhausted" in kinds


class TestWrapperDeadline:
    def test_robust_lockrange_expired_deadline_is_typed(self, tanh_rig):
        nonlinearity, tank = tanh_rig
        with pytest.raises(NumericalFaultError) as err:
            robust_predict_lock_range(
                nonlinearity,
                tank,
                v_i=0.03,
                n=3,
                deadline=time.monotonic() - 0.1,
            )
        assert err.value.fault.kind == "budget-exhausted"

    def test_robust_lockrange_with_budget_solves(self, tanh_rig):
        nonlinearity, tank = tanh_rig
        result = robust_predict_lock_range(
            nonlinearity,
            tank,
            v_i=0.03,
            n=3,
            n_a=61,
            n_phi=121,
            n_samples=256,
            deadline=time.monotonic() + 120.0,
        )
        assert result.width_hz > 0
        assert not result.diagnostics.faults


@pytest.fixture
def tanh_rig():
    from repro.nonlin.analytic import NegativeTanh
    from repro.tank.rlc import ParallelRLC

    return (
        NegativeTanh(gm=2.5e-3, i_sat=1e-3),
        ParallelRLC(r=1000.0, l=100e-6, c=10e-9),
    )
