"""CLI failure-path tests: typed solve errors become documented exit codes.

Scripts wrapping ``python -m repro`` must be able to branch on *why* a
prediction failed; a raw traceback (exit code 1 via an unhandled
exception) would make every failure look the same.
"""

import numpy as np
import pytest

from repro.cli import (
    EXIT_HB_DIVERGENCE,
    EXIT_NO_LOCK,
    EXIT_NO_OSCILLATION,
    EXIT_NUMERICAL_FAULT,
    main,
)

CUSTOM = ["--gm", "2.5m", "--isat", "1m", "--r", "1k", "--l", "100u", "--c", "10n"]


def test_no_oscillation_exit_code(capsys):
    # gm far below the start-up criterion: loop gain < 1, typed failure.
    code = main(["natural", "--gm", "1u", "--isat", "1m",
                 "--r", "1k", "--l", "100u", "--c", "10n", "--no-escalate"])
    captured = capsys.readouterr()
    assert code == EXIT_NO_OSCILLATION
    assert "error (no oscillation):" in captured.err
    assert "Traceback" not in captured.err


def test_no_oscillation_exit_code_through_the_ladder(capsys):
    # Same failure through the robust path: start-up failures are
    # non-recoverable, so the ladder stops immediately and the exit code
    # is identical — plus the diagnostics block lands on stderr.
    code = main(["natural", "--gm", "1u", "--isat", "1m",
                 "--r", "1k", "--l", "100u", "--c", "10n"])
    captured = capsys.readouterr()
    assert code == EXIT_NO_OSCILLATION
    assert "error (no oscillation):" in captured.err
    assert "natural:" in captured.err  # the diagnostics summary line
    assert "Traceback" not in captured.err


def test_no_lock_exit_code(capsys, monkeypatch):
    import repro.core
    from repro.core.lockrange import NoLockError

    def boom(*args, **kwargs):
        raise NoLockError("no stable lock state exists for this injection")

    monkeypatch.setattr(repro.core, "predict_lock_range", boom)
    code = main(["lockrange", *CUSTOM, "--vi", "0.03", "--n", "3",
                 "--no-escalate"])
    captured = capsys.readouterr()
    assert code == EXIT_NO_LOCK
    assert "error (no lock):" in captured.err


def test_hb_divergence_exit_code(capsys, monkeypatch):
    import repro.core
    from repro.core.harmonic_balance import HbConvergenceError

    def boom(*args, **kwargs):
        raise HbConvergenceError("did not converge in 60 iterations")

    monkeypatch.setattr(repro.core, "predict_natural_oscillation", boom)
    code = main(["natural", *CUSTOM, "--no-escalate"])
    captured = capsys.readouterr()
    assert code == EXIT_HB_DIVERGENCE
    assert "error (HB divergence):" in captured.err


def test_numerical_fault_exit_code(capsys, monkeypatch):
    import repro.core
    from repro.robust import NumericalFaultError, SolveFault

    def boom(*args, **kwargs):
        raise NumericalFaultError(
            SolveFault("non-finite-samples", "natural", "NaN in T_f grid")
        )

    monkeypatch.setattr(repro.core, "predict_natural_oscillation", boom)
    code = main(["natural", *CUSTOM, "--no-escalate"])
    captured = capsys.readouterr()
    assert code == EXIT_NUMERICAL_FAULT
    assert "error (numerical fault):" in captured.err
    assert "non-finite-samples" in captured.err


def test_diagnostics_attached_to_the_error_are_rendered(capsys, monkeypatch):
    import repro.core
    from repro.core.lockrange import NoLockError
    from repro.robust import SolveDiagnostics

    def boom(*args, **kwargs):
        exc = NoLockError("nothing locks")
        exc.diagnostics = SolveDiagnostics(stage="lock-range", exhausted=True)
        raise exc

    monkeypatch.setattr(repro.core, "predict_lock_range", boom)
    code = main(["lockrange", *CUSTOM, "--no-escalate"])
    captured = capsys.readouterr()
    assert code == EXIT_NO_LOCK
    assert "lock-range:" in captured.err


def test_exit_codes_are_distinct_and_nonzero():
    codes = {EXIT_NO_LOCK, EXIT_HB_DIVERGENCE, EXIT_NO_OSCILLATION,
             EXIT_NUMERICAL_FAULT}
    assert len(codes) == 4
    assert 0 not in codes and 1 not in codes and 2 not in codes


def test_successful_run_reports_clean_diagnostics(capsys):
    code = main(["natural", *CUSTOM])
    captured = capsys.readouterr()
    assert code == 0
    assert "solve diagnostics: natural: clean first-attempt solve" in captured.out


def test_no_escalate_omits_diagnostics(capsys):
    code = main(["natural", *CUSTOM, "--no-escalate"])
    captured = capsys.readouterr()
    assert code == 0
    assert "solve diagnostics" not in captured.out


def test_faults_list_names_every_scenario(capsys):
    code = main(["faults", "--list"])
    captured = capsys.readouterr()
    assert code == 0
    for scenario_id in ("hb-singular-jacobian", "corrupt-surface-cache",
                        "degenerate-tank", "hb-lock-continuation"):
        assert scenario_id in captured.out
