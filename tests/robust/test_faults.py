"""Unit tests for the typed fault vocabulary and exception classification."""

import numpy as np
import pytest

from repro.robust import (
    FAULT_KINDS,
    NumericalFaultError,
    SolveFault,
    fault_from_exception,
)


class TestSolveFault:
    def test_kind_vocabulary_is_closed(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            SolveFault("made-up-kind", "natural", "boom")

    def test_describe_mentions_stage_kind_and_count(self):
        fault = SolveFault("no-lock", "lock-range", "nothing locks", count=3)
        text = fault.describe()
        assert "[lock-range]" in text
        assert "no-lock" in text
        assert "x3" in text
        assert "nothing locks" in text

    def test_to_dict_round_trips_context(self):
        fault = SolveFault(
            "cache-corruption", "cache", "bad npz", recoverable=True,
            context={"path": "x.npz"},
        )
        payload = fault.to_dict()
        assert payload["kind"] == "cache-corruption"
        assert payload["context"] == {"path": "x.npz"}
        assert payload["recoverable"] is True

    def test_numerical_fault_error_carries_the_record(self):
        fault = SolveFault("degenerate-tank", "setup", "R is zero",
                           recoverable=False)
        exc = NumericalFaultError(fault)
        assert exc.fault is fault
        assert "degenerate-tank" in str(exc)


class TestFaultFromException:
    def test_numerical_fault_error_passes_through(self):
        fault = SolveFault("non-finite-samples", "natural", "NaN")
        assert fault_from_exception(NumericalFaultError(fault), "x") is fault

    def test_linalg_error_is_singular_jacobian(self):
        fault = fault_from_exception(
            np.linalg.LinAlgError("Singular matrix"), "harmonic-balance"
        )
        assert fault.kind == "singular-jacobian"
        assert fault.stage == "harmonic-balance"

    def test_solver_exceptions_map_by_type_name(self):
        from repro.core.harmonic_balance import HbConvergenceError
        from repro.core.lockrange import NoLockError

        assert fault_from_exception(NoLockError("no"), "s").kind == "no-lock"
        assert (
            fault_from_exception(HbConvergenceError("div"), "s").kind
            == "hb-divergence"
        )

    def test_startup_no_oscillation_is_not_recoverable(self):
        from repro.core.natural import NoOscillationError

        startup = fault_from_exception(
            NoOscillationError("start-up criterion not met"), "natural"
        )
        assert startup.kind == "no-oscillation"
        assert not startup.recoverable
        numerical = fault_from_exception(
            NoOscillationError("no bracketing interval found"), "natural"
        )
        assert numerical.recoverable

    def test_phase_inversion_error_maps_to_its_kind(self):
        from repro.tank import PhaseInversionError

        fault = fault_from_exception(
            PhaseInversionError("phi_d=2 outside the invertible phase range"),
            "isolines",
        )
        assert fault.kind == "phase-inversion-out-of-range"

    def test_unknown_exception_is_unexpected_error(self):
        fault = fault_from_exception(KeyError("wat"), "s")
        assert fault.kind == "unexpected-error"
        assert "KeyError" in fault.message

    def test_every_mapped_kind_is_in_the_vocabulary(self):
        for kind in ("no-lock", "hb-divergence", "no-oscillation",
                     "singular-jacobian", "phase-inversion-out-of-range",
                     "unexpected-error"):
            assert kind in FAULT_KINDS

    def test_service_layer_kinds_are_in_the_vocabulary(self):
        for kind in ("budget-exhausted", "worker-crash", "worker-stall",
                     "queue-saturated", "malformed-spec"):
            assert kind in FAULT_KINDS


class TestFaultReportSchemaV2:
    def _outcome(self, layer):
        from repro.robust.injection import FaultOutcome

        return FaultOutcome(
            scenario=f"{layer}-scenario", expectation="recover",
            expected_fault="worker-crash", ok=True, detail="fine",
            layer=layer,
        )

    def test_report_carries_schema_and_layer_tallies(self):
        from repro.robust.injection import FAULTS_SCHEMA_VERSION, FaultReport

        assert FAULTS_SCHEMA_VERSION == 2
        report = FaultReport(
            mode="quick",
            outcomes=[self._outcome("solver"), self._outcome("service"),
                      self._outcome("service")],
        )
        doc = report.to_dict()
        assert doc["schema"] == FAULTS_SCHEMA_VERSION
        assert doc["layers"] == {
            "solver": {"total": 1, "ok": 1},
            "service": {"total": 2, "ok": 2},
        }
        assert all(o["layer"] in ("solver", "service")
                   for o in doc["outcomes"])

    def test_format_tags_non_solver_layers(self):
        from repro.robust.injection import FaultReport

        text = FaultReport(
            mode="serve", outcomes=[self._outcome("service")]
        ).format()
        assert "[service]" in text
