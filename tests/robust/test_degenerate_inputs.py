"""Degenerate-input tests: broken circuit descriptions must fail typed.

The worst failure mode for a numerical library is a silent wrong answer;
the second worst is a cryptic traceback from five layers below the actual
mistake.  Every degenerate input here must be rejected with a typed,
actionable error at the layer that can name the problem.
"""

import numpy as np
import pytest

from repro.nonlin import FunctionNonlinearity, NegativeTanh
from repro.robust import NumericalFaultError, guard_nonlinearity
from repro.tank import ParallelRLC


@pytest.fixture
def tanh():
    return NegativeTanh(gm=2.5e-3, i_sat=1e-3)


@pytest.fixture
def tank():
    return ParallelRLC(r=1000.0, l=100e-6, c=10e-9)


class TestDegenerateTanks:
    def test_zero_resistance_rejected_at_construction(self):
        with pytest.raises(ValueError, match="r must be > 0"):
            ParallelRLC(r=0.0, l=100e-6, c=10e-9)

    def test_negative_inductance_rejected_at_construction(self):
        with pytest.raises(ValueError, match="l must be > 0"):
            ParallelRLC(r=1000.0, l=-1e-6, c=10e-9)

    def test_zero_capacitance_rejected_at_construction(self):
        with pytest.raises(ValueError, match="c must be > 0"):
            ParallelRLC(r=1000.0, l=100e-6, c=0.0)

    def test_nan_quality_factor_is_degenerate(self, tanh):
        from repro.robust import guard_tank

        class BadQ(ParallelRLC):
            @property
            def quality_factor(self):
                return float("nan")

        with pytest.raises(NumericalFaultError) as err:
            guard_tank(BadQ(r=1000.0, l=100e-6, c=10e-9))
        assert err.value.fault.kind == "degenerate-tank"
        assert "quality factor" in str(err.value)


class TestDegenerateNonlinearities:
    def test_all_zero_nonlinearity_is_dead(self):
        dead = FunctionNonlinearity(lambda v: np.zeros_like(v), name="open")
        with pytest.raises(NumericalFaultError) as err:
            guard_nonlinearity(dead, 2.0, stage="setup")
        assert err.value.fault.kind == "dead-nonlinearity"

    def test_all_zero_nonlinearity_fails_natural_prediction(self, tank):
        from repro.core import predict_natural_oscillation
        from repro.core.natural import NoOscillationError

        dead = FunctionNonlinearity(lambda v: np.zeros_like(v), name="open")
        with pytest.raises(NoOscillationError):
            predict_natural_oscillation(dead, tank)


class TestDegenerateHarmonicBalance:
    def test_k_max_below_injection_order_rejected(self, tanh, tank):
        from repro.core.harmonic_balance import hb_lock_state

        with pytest.raises(ValueError, match="k_max must be >= n"):
            hb_lock_state(
                tanh, tank, v_i=0.03,
                w_injection=3 * tank.center_frequency, n=3, k_max=2,
            )

    def test_wrong_shaped_initial_harmonics_rejected(self, tanh, tank):
        from repro.core.harmonic_balance import hb_lock_state

        with pytest.raises(ValueError, match="initial"):
            hb_lock_state(
                tanh, tank, v_i=0.03,
                w_injection=3 * tank.center_frequency, n=3, k_max=7,
                initial=np.zeros(3, dtype=complex),
            )


class TestDegeneratePictures:
    def test_empty_isoline_picture_raises_on_lookup(self):
        from repro.core.isolines import IsolinePicture
        from repro.utils.grids import Grid2D

        grid = Grid2D(x=np.linspace(-1.0, 1.0, 4), y=np.linspace(0.5, 1.5, 4))
        picture = IsolinePicture(grid=grid, tf_curves=[], isolines=[])
        with pytest.raises(ValueError, match="no isolines"):
            picture.isoline_nearest(0.0)
