"""Unit tests for the escalation policy engine and the robust wrappers."""

import numpy as np
import pytest

from repro.nonlin import NegativeTanh
from repro.robust import (
    EscalationPolicy,
    NumericalFaultError,
    RobustResult,
    Rung,
    SolveDiagnostics,
    SolveFault,
    record_fault,
    robust_natural,
    robust_predict_lock_range,
    run_ladder,
)
from repro.tank import ParallelRLC


def _policy(n_rungs=3, max_attempts=None):
    rungs = tuple(
        Rung(f"rung-{k}", f"strategy {k}", {"level": k}) for k in range(n_rungs)
    )
    return EscalationPolicy("test-stage", rungs, max_attempts=max_attempts)


class TestRunLadder:
    def test_clean_first_attempt(self):
        result = run_ladder(_policy(), lambda p: 42)
        assert isinstance(result, RobustResult)
        assert result.value == 42
        assert not result.diagnostics.escalated
        assert result.diagnostics.recovered_via is None
        assert result.diagnostics.ok

    def test_escalates_past_recoverable_faults(self):
        calls = []

        def attempt(params):
            calls.append(params["level"])
            if params["level"] < 2:
                raise NumericalFaultError(
                    SolveFault("no-lock", "test-stage", "not yet",
                               recoverable=True)
                )
            return "answer"

        result = run_ladder(_policy(), attempt)
        assert result.value == "answer"
        assert calls == [0, 1, 2]
        assert result.diagnostics.recovered_via == "rung-2"
        assert result.diagnostics.escalated
        outcomes = [a.outcome for a in result.diagnostics.attempts]
        assert outcomes == ["fault", "fault", "ok"]

    def test_non_recoverable_fault_stops_the_climb(self):
        calls = []

        def attempt(params):
            calls.append(params["level"])
            raise NumericalFaultError(
                SolveFault("dead-nonlinearity", "test-stage", "open circuit",
                           recoverable=False)
            )

        with pytest.raises(NumericalFaultError) as err:
            run_ladder(_policy(), attempt)
        assert calls == [0]  # no pointless retries of a deterministic fault
        diag = err.value.diagnostics
        assert diag.exhausted
        assert not diag.ok

    def test_exhaustion_reraises_with_diagnostics_attached(self):
        def attempt(params):
            raise np.linalg.LinAlgError("Singular matrix")

        with pytest.raises(np.linalg.LinAlgError) as err:
            run_ladder(_policy(), attempt)
        diag = err.value.diagnostics
        assert isinstance(diag, SolveDiagnostics)
        assert diag.exhausted
        assert len(diag.attempts) == 3
        assert diag.faults[0].kind == "singular-jacobian"
        assert diag.faults[0].count == 3  # coalesced, not repeated

    def test_unexpected_exception_propagates_immediately(self):
        calls = []

        def attempt(params):
            calls.append(1)
            raise KeyError("bug, not a fault")

        with pytest.raises(KeyError):
            run_ladder(_policy(), attempt)
        assert len(calls) == 1

    def test_max_attempts_budget_caps_the_climb(self):
        calls = []

        def attempt(params):
            calls.append(params["level"])
            raise NumericalFaultError(
                SolveFault("no-lock", "test-stage", "nope", recoverable=True)
            )

        with pytest.raises(NumericalFaultError):
            run_ladder(_policy(n_rungs=3, max_attempts=2), attempt)
        assert calls == [0, 1]

    def test_suspicious_result_escalates_then_falls_back(self):
        def attempt(params):
            if params["level"] == 0:
                return "suspicious"
            raise NumericalFaultError(
                SolveFault("no-lock", "test-stage", "worse", recoverable=True)
            )

        result = run_ladder(
            _policy(), attempt, retry_on_result=lambda r: r == "suspicious"
        )
        # Every escalation failed; the suspicious answer is the fallback.
        assert result.value == "suspicious"
        assert result.diagnostics.exhausted
        assert result.diagnostics.attempts[0].outcome == "retry"

    def test_suspicious_result_replaced_by_a_better_rung(self):
        def attempt(params):
            return "suspicious" if params["level"] == 0 else "good"

        result = run_ladder(
            _policy(), attempt, retry_on_result=lambda r: r == "suspicious"
        )
        assert result.value == "good"
        assert result.diagnostics.recovered_via == "rung-1"

    def test_deep_faults_collected_while_a_rung_runs(self):
        def attempt(params):
            record_fault(
                SolveFault("phase-inversion-out-of-range", "deep", "edge")
            )
            return 1

        result = run_ladder(_policy(), attempt)
        assert [f.kind for f in result.diagnostics.faults] == [
            "phase-inversion-out-of-range"
        ]


class TestRobustResult:
    def test_attribute_access_falls_through(self):
        class Value:
            width_hz = 123.0

        result = RobustResult(Value(), SolveDiagnostics(stage="s"))
        assert result.width_hz == 123.0
        assert isinstance(result.diagnostics, SolveDiagnostics)

    def test_missing_attribute_still_raises(self):
        result = RobustResult(object(), SolveDiagnostics(stage="s"))
        with pytest.raises(AttributeError):
            result.nope


class TestRobustWrappers:
    def test_robust_natural_matches_plain_solver(self):
        from repro.core import predict_natural_oscillation

        tanh = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        tank = ParallelRLC(r=1000.0, l=100e-6, c=10e-9)
        plain = predict_natural_oscillation(tanh, tank)
        robust = robust_natural(tanh, tank)
        assert robust.amplitude == pytest.approx(plain.amplitude, rel=1e-12)
        assert not robust.diagnostics.escalated

    def test_robust_lock_range_matches_plain_solver(self):
        from repro.core import predict_lock_range

        tanh = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        tank = ParallelRLC(r=1000.0, l=100e-6, c=10e-9)
        small = {"n_a": 61, "n_phi": 121, "n_samples": 256}
        plain = predict_lock_range(tanh, tank, v_i=0.03, n=3, **small)
        robust = robust_predict_lock_range(tanh, tank, v_i=0.03, n=3, **small)
        assert robust.width_hz == pytest.approx(plain.width_hz, rel=1e-12)
        assert robust.diagnostics.stage == "lock-range"

    def test_degenerate_tank_rejected_before_any_rung(self):
        class BrokenTank(ParallelRLC):
            @property
            def center_frequency(self):
                return float("nan")

        tanh = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        with pytest.raises(NumericalFaultError) as err:
            robust_natural(tanh, BrokenTank(r=1000.0, l=100e-6, c=10e-9))
        assert err.value.fault.kind == "degenerate-tank"
