"""Unit tests for the numerical guards."""

import numpy as np
import pytest

from repro.nonlin import FunctionNonlinearity, NegativeTanh
from repro.robust import (
    NumericalFaultError,
    guard_finite,
    guard_jacobian,
    guard_nonlinearity,
    guard_tank,
)
from repro.tank import ParallelRLC


class TestGuardFinite:
    def test_finite_array_passes_silently(self):
        guard_finite("x", np.ones(4), stage="test")

    def test_nan_raises_typed_fault(self):
        data = np.asarray([1.0, np.nan, 3.0])
        with pytest.raises(NumericalFaultError) as err:
            guard_finite("T_f grid", data, stage="natural")
        assert err.value.fault.kind == "non-finite-samples"
        assert err.value.fault.stage == "natural"
        assert "T_f grid" in str(err.value)

    def test_inf_raises_too(self):
        with pytest.raises(NumericalFaultError):
            guard_finite("x", np.asarray([np.inf]), stage="test")

    def test_recoverable_flag_propagates(self):
        with pytest.raises(NumericalFaultError) as err:
            guard_finite("x", np.asarray([np.nan]), stage="test",
                         recoverable=True)
        assert err.value.fault.recoverable


class TestGuardJacobian:
    def test_well_conditioned_passes(self):
        guard_jacobian(np.eye(3), stage="harmonic-balance")

    def test_non_finite_jacobian_is_singular_kind(self):
        jac = np.eye(3)
        jac[1, 1] = np.nan
        with pytest.raises(NumericalFaultError) as err:
            guard_jacobian(jac, stage="harmonic-balance")
        assert err.value.fault.kind in (
            "singular-jacobian", "non-finite-samples"
        )

    def test_ill_conditioned_jacobian_detected(self):
        jac = np.diag([1.0, 1e-16])
        with pytest.raises(NumericalFaultError) as err:
            guard_jacobian(jac, stage="harmonic-balance")
        assert err.value.fault.kind == "ill-conditioned-jacobian"


class TestGuardTank:
    def test_healthy_tank_passes(self):
        guard_tank(ParallelRLC(r=1000.0, l=100e-6, c=10e-9), stage="natural")

    def test_nan_center_frequency_is_degenerate(self):
        class BrokenTank(ParallelRLC):
            @property
            def center_frequency(self):
                return float("nan")

        with pytest.raises(NumericalFaultError) as err:
            guard_tank(BrokenTank(r=1000.0, l=100e-6, c=10e-9), stage="natural")
        assert err.value.fault.kind == "degenerate-tank"
        assert not err.value.fault.recoverable


class TestGuardNonlinearity:
    def test_real_device_passes(self):
        guard_nonlinearity(
            NegativeTanh(gm=2.5e-3, i_sat=1e-3), 2.0, stage="setup"
        )

    def test_identically_zero_law_is_dead(self):
        dead = FunctionNonlinearity(lambda v: np.zeros_like(v), name="open")
        with pytest.raises(NumericalFaultError) as err:
            guard_nonlinearity(dead, 2.0, stage="setup")
        assert err.value.fault.kind == "dead-nonlinearity"
        assert not err.value.fault.recoverable

    def test_nan_producing_law_is_non_finite(self):
        bad = FunctionNonlinearity(
            lambda v: np.where(np.abs(v) > 0.5, np.nan, -1e-3 * v), name="nan"
        )
        with pytest.raises(NumericalFaultError) as err:
            guard_nonlinearity(bad, 2.0, stage="setup")
        assert err.value.fault.kind == "non-finite-samples"

    def test_bad_probe_window_rejected(self):
        tanh = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        with pytest.raises(NumericalFaultError):
            guard_nonlinearity(tanh, float("nan"), stage="setup")
