"""Unit tests for the job model: strict parsing, fingerprints, the store."""

import pytest

from repro.serve import JobStore, MalformedJobError, parse_job
from repro.serve.jobs import JobRecord, TERMINAL_STATUSES


def _spec(**overrides):
    payload = {"kind": "lockrange", "family": "tanh"}
    payload.update(overrides)
    return payload


class TestParseJob:
    def test_minimal_payload_gets_defaults(self):
        spec = parse_job(_spec())
        assert spec.kind == "lockrange"
        assert spec.family == "tanh"
        assert spec.n == 3
        assert spec.method == "fft"
        assert spec.deadline_s == 30.0
        assert spec.chaos == ()

    def test_non_object_payload_is_rejected(self):
        with pytest.raises(MalformedJobError, match="JSON object"):
            parse_job(["not", "a", "dict"])

    def test_unknown_field_names_the_offender(self):
        with pytest.raises(MalformedJobError, match="bogus_knob") as info:
            parse_job(_spec(bogus_knob=1))
        assert info.value.field == "bogus_knob"

    def test_unknown_kind_and_family_are_typed(self):
        with pytest.raises(MalformedJobError) as info:
            parse_job({"kind": "summon", "family": "tanh"})
        assert info.value.field == "kind"
        with pytest.raises(MalformedJobError) as info:
            parse_job({"kind": "lockrange", "family": "colpitts"})
        assert info.value.field == "family"

    def test_bool_is_not_an_int(self):
        with pytest.raises(MalformedJobError) as info:
            parse_job(_spec(n=True))
        assert info.value.field == "n"

    def test_numeric_ranges_are_enforced(self):
        for field_name, value in (
            ("n", 0),
            ("v_i", -0.1),
            ("q_scale", 100.0),
            ("n_a", 5),
            ("n_phi", 10_000),
            ("n_samples", 8),
            ("deadline_s", 0.0),
        ):
            with pytest.raises(MalformedJobError) as info:
                parse_job(_spec(**{field_name: value}))
            assert info.value.field == field_name

    def test_tongue_grid_cap(self):
        with pytest.raises(MalformedJobError):
            parse_job(_spec(kind="tongue", vi_count=64, freq_count=64))
        spec = parse_job(_spec(kind="tongue", vi_count=4, freq_count=5))
        assert spec.vi_count == 4

    def test_chaos_requires_opt_in(self):
        with pytest.raises(MalformedJobError) as info:
            parse_job(_spec(chaos={"stall_s": 1.0}))
        assert info.value.field == "chaos"
        spec = parse_job(_spec(chaos={"stall_s": 1.0}), allow_chaos=True)
        assert dict(spec.chaos) == {"stall_s": 1.0}

    def test_unknown_chaos_key_is_rejected(self):
        with pytest.raises(MalformedJobError, match="unknown chaos key"):
            parse_job(_spec(chaos={"explode": True}), allow_chaos=True)


class TestFingerprint:
    def test_deadline_does_not_change_the_fingerprint(self):
        a = parse_job(_spec(deadline_s=5.0))
        b = parse_job(_spec(deadline_s=250.0))
        assert a.fingerprint() == b.fingerprint()

    def test_solve_parameters_do_change_it(self):
        a = parse_job(_spec(v_i=0.03))
        b = parse_job(_spec(v_i=0.031))
        assert a.fingerprint() != b.fingerprint()

    def test_chaos_block_changes_it(self):
        plain = parse_job(_spec())
        instrumented = parse_job(
            _spec(chaos={"stall_s": 1.0}), allow_chaos=True
        )
        assert plain.fingerprint() != instrumented.fingerprint()


class TestJobStore:
    def _record(self, store):
        record = JobRecord(
            job_id=store.new_id(), spec=parse_job(_spec()), tenant="t"
        )
        store.add(record)
        return record

    def test_history_eviction_keeps_recent_terminals(self):
        store = JobStore(history_limit=2)
        records = [self._record(store) for _ in range(4)]
        for record in records:
            record.status = "completed"
            store.mark_terminal(record)
        assert store.get(records[0].job_id) is None
        assert store.get(records[1].job_id) is None
        assert store.get(records[3].job_id) is records[3]

    def test_counts_and_dead_letters(self):
        store = JobStore()
        done = self._record(store)
        done.status = "completed"
        dead = self._record(store)
        dead.status = "dead-lettered"
        dead.fault_kinds.append("worker-crash")
        letter = store.add_dead_letter(dead, "gave up")
        counts = store.counts()
        assert counts["completed"] == 1
        assert counts["dead-lettered"] == 1
        assert letter.to_dict()["fault_kinds"] == ["worker-crash"]
        assert letter.reason == "gave up"

    def test_terminal_statuses_are_the_closed_set(self):
        record = JobRecord(job_id="job-1", spec=parse_job(_spec()), tenant="t")
        assert not record.terminal
        for status in TERMINAL_STATUSES:
            record.status = status
            assert record.terminal
