"""Unit tests for SERVE_REPORT validation (structure + internal tallies)."""

import json

from repro.serve import SERVE_SCHEMA_VERSION, validate_serve_report


def _good_doc(**overrides):
    doc = {
        "report": "SERVE",
        "schema": SERVE_SCHEMA_VERSION,
        "config": {"workers": 2, "queue_limit": 16,
                   "default_deadline_s": 30.0, "allow_chaos": False},
        "jobs": {"completed": 2, "degraded": 1, "dead-lettered": 1,
                 "queued": 0, "running": 0, "retrying": 0, "total": 4},
        "workers": {"size": 2, "alive": 2, "restarts": 1},
        "tenants": {},
        "counters": {"serve.admitted": 4},
        "dead_letters": [{
            "job_id": "job-000003", "tenant": "t", "fingerprint": "ab" * 12,
            "reason": "cancelled", "fault_kinds": [], "attempts": 1,
            "submitted_unix_s": 0.0,
        }],
        "unhandled_errors": [],
    }
    doc.update(overrides)
    return doc


def test_clean_report_validates():
    assert validate_serve_report(_good_doc()) == []


def test_wrong_banner_and_schema_are_flagged():
    problems = validate_serve_report(_good_doc(report="VERIFY", schema=99))
    assert any("SERVE" in p for p in problems)
    assert any("schema" in p for p in problems)


def test_tallies_must_sum_to_total():
    doc = _good_doc()
    doc["jobs"]["total"] = 7
    problems = validate_serve_report(doc)
    assert any("sum to 4" in p for p in problems)


def test_dead_letter_list_must_match_its_tally():
    problems = validate_serve_report(_good_doc(dead_letters=[]))
    assert any("dead letters" in p for p in problems)


def test_dead_letters_need_the_full_key_set():
    doc = _good_doc()
    del doc["dead_letters"][0]["reason"]
    problems = validate_serve_report(doc)
    assert any("missing" in p and "reason" in p for p in problems)


def test_path_form_and_unreadable_file(tmp_path):
    path = tmp_path / "SERVE_REPORT.json"
    path.write_text(json.dumps(_good_doc()))
    assert validate_serve_report(path) == []
    assert validate_serve_report(tmp_path / "missing.json")
    path.write_text("{not json")
    assert any(
        "unreadable" in p for p in validate_serve_report(path)
    )
