"""Unit tests for admission control: buckets, quotas, queue backpressure."""

import json

import pytest

from repro.serve import (
    AdmissionController,
    TenantPolicy,
    TokenBucket,
    load_tenant_config,
)


class TestTokenBucket:
    def test_burst_then_empty(self):
        bucket = TokenBucket(rate_per_s=1.0, burst=3)
        assert [bucket.try_acquire() for _ in range(3)] == [True] * 3
        assert not bucket.try_acquire()
        assert bucket.retry_after_s() > 0.0

    def test_retry_after_is_bounded_by_the_rate(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=1)
        assert bucket.try_acquire()
        assert 0.0 < bucket.retry_after_s() <= 0.1 + 1e-6

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=0.0, burst=1)


class TestAdmissionController:
    def _controller(self, **kw):
        policy = TenantPolicy(rate_per_s=1000.0, burst=100, max_in_flight=2)
        return AdmissionController(
            kw.pop("queue_limit", 4), {"default": policy, **kw}
        )

    def test_admits_within_all_gates(self):
        decision = self._controller().decide(
            "t", queue_depth=0, tenant_in_flight=0
        )
        assert decision.admitted
        assert decision.status == 0

    def test_rate_gate_rejects_with_retry_after(self):
        throttled = TenantPolicy(rate_per_s=0.1, burst=1, max_in_flight=8)
        controller = AdmissionController(4, {"slow": throttled})
        first = controller.decide("slow", queue_depth=0, tenant_in_flight=0)
        assert first.admitted
        second = controller.decide("slow", queue_depth=0, tenant_in_flight=0)
        assert not second.admitted
        assert second.status == 429
        assert second.reason == "rate-limited"
        assert second.retry_after_s > 0.0

    def test_quota_gate_caps_in_flight(self):
        decision = self._controller().decide(
            "t", queue_depth=0, tenant_in_flight=2
        )
        assert not decision.admitted
        assert decision.status == 429
        assert decision.reason == "quota-exceeded"

    def test_queue_gate_sheds_load(self):
        decision = self._controller().decide(
            "t", queue_depth=4, tenant_in_flight=0
        )
        assert not decision.admitted
        assert decision.status == 503
        assert decision.reason == "queue-full"

    def test_unknown_tenant_falls_back_to_default(self):
        controller = self._controller()
        assert controller.policy_for("nobody").max_in_flight == 2


class TestLoadTenantConfig:
    def test_parses_default_and_named_tenants(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps({
            "default": {"rate_per_s": 5, "burst": 2, "max_in_flight": 3},
            "tenants": {"ci": {"rate_per_s": 50, "burst": 25,
                               "max_in_flight": 16}},
        }))
        policies = load_tenant_config(path)
        assert policies["default"].burst == 2
        assert policies["ci"].max_in_flight == 16

    def test_unknown_key_is_an_error(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps({"default": {"burts": 2}}))
        with pytest.raises(ValueError, match="unknown tenant key"):
            load_tenant_config(path)
