"""Cross-process trace stitching, live progress events, fleet metrics.

These tests boot a real service (worker subprocess, HTTP front) with the
process-wide tracer recording, so every request mints a ``trace_id`` at
ingress, the job envelope propagates it into the worker, and the worker's
span tree is grafted back under the ``serve.attempt`` span.  The written
trace must validate even when the worker crashes mid-span or is
stall-killed — the attempt subtree is simply marked with its outcome and
carries no orphaned worker spans.
"""

import time

import pytest

from repro.obs import metrics, tracer, validate_trace
from repro.obs.report import load_trace
from repro.serve import ServeClient, ServeConfig, ServiceThread, TenantPolicy

_GENEROUS = TenantPolicy(rate_per_s=1000.0, burst=500, max_in_flight=64)

_QUICK = {
    "kind": "lockrange",
    "family": "tanh",
    "n": 3,
    "v_i": 0.03,
    "n_a": 41,
    "n_phi": 81,
    "n_samples": 128,
    "deadline_s": 60.0,
}

_TONGUE = {
    "kind": "tongue",
    "family": "tanh",
    "n": 3,
    "v_i": 0.03,
    "vi_count": 2,
    "freq_count": 3,
    "n_a": 41,
    "n_phi": 81,
    "n_samples": 128,
    "deadline_s": 120.0,
}


@pytest.fixture
def traced_host(tmp_path, monkeypatch):
    """A live traced service inside an isolated cache sandbox."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    tracer.clear()
    metrics.reset()
    tracer.enable()
    config = ServeConfig(
        workers=1,
        queue_limit=8,
        allow_chaos=True,
        tenants={"default": _GENEROUS},
    )
    try:
        with ServiceThread(config) as host:
            yield host
    finally:
        tracer.disable()
        tracer.clear()
        metrics.reset()


def _write_and_load(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer.write(path)
    assert validate_trace(path) == []
    _, spans = load_trace(path)
    return spans


def _job_tree(spans, job_id):
    """The serve.job span for ``job_id`` plus maps over the whole trace."""
    by_id = {span["span_id"]: span for span in spans}
    jobs = [
        s
        for s in spans
        if s["name"] == "serve.job" and s.get("attrs", {}).get("job_id") == job_id
    ]
    assert len(jobs) == 1, f"expected one serve.job span for {job_id}"
    return jobs[0], by_id


def _attempts_under(spans, job_span):
    return [
        s
        for s in spans
        if s["name"] == "serve.attempt" and s.get("parent_id") == job_span["span_id"]
    ]


def test_stitched_trace_single_trace_id(traced_host, tmp_path):
    client = ServeClient(port=traced_host.port, tenant="tests")
    status, record = client.submit(dict(_QUICK), wait=True)
    assert status == 200 and record["status"] == "completed", record
    assert record.get("trace_id"), "job record must expose its trace_id"
    assert record.get("queue_wait_s") is not None

    spans = _write_and_load(tmp_path)
    job_span, by_id = _job_tree(spans, record["job_id"])
    assert job_span["trace_id"] == record["trace_id"]
    attempts = _attempts_under(spans, job_span)
    assert len(attempts) == 1
    assert attempts[0]["attrs"]["outcome"] == "ok"

    # The worker's solver spans are grafted under the attempt, renumbered
    # into the parent id space, all carrying the job's trace_id.
    worker = [s for s in spans if s.get("process") == "worker"]
    assert worker, "no worker-side spans were stitched in"
    names = {s["name"] for s in worker}
    assert "lockrange" in names and "ladder" in names
    for span in worker:
        assert span["trace_id"] == record["trace_id"]
        node = span
        while node is not None and node["name"] != "serve.attempt":
            node = by_id.get(node.get("parent_id"))
        assert node is not None, f"worker span {span['name']} not under an attempt"
        # Depth/time containment is what validate_trace enforced above;
        # here we pin the cross-process shape explicitly.
        assert span["depth"] > attempts[0]["depth"]
        assert span["t_start_s"] + 1e-9 >= attempts[0]["t_start_s"]


def test_worker_crash_midspan_still_validates(traced_host, tmp_path):
    client = ServeClient(port=traced_host.port, tenant="tests")
    job = dict(_QUICK, chaos={"die_attempts": [1]})
    status, record = client.submit(job, wait=True)
    assert status == 200 and record["status"] == "completed", record
    assert record["attempts"] == 2
    assert "worker-crash" in record["fault_kinds"]

    spans = _write_and_load(tmp_path)
    job_span, _ = _job_tree(spans, record["job_id"])
    attempts = sorted(
        _attempts_under(spans, job_span), key=lambda s: s["attrs"]["attempt"]
    )
    assert len(attempts) == 2
    assert attempts[0]["attrs"]["outcome"] == "crashed"
    assert attempts[1]["attrs"]["outcome"] == "ok"
    # The crashed attempt shipped no telemetry: no worker span may hang
    # off it (orphans would have failed validate_trace already; this
    # checks none were grafted at all).
    crashed_children = [
        s for s in spans
        if s.get("parent_id") == attempts[0]["span_id"]
        and s.get("process") == "worker"
    ]
    assert crashed_children == []
    # The retry's worker spans made it in under the second attempt.
    retried_children = [
        s for s in spans
        if s.get("parent_id") == attempts[1]["span_id"]
        and s.get("process") == "worker"
    ]
    assert retried_children


def test_stall_kill_still_validates(traced_host, tmp_path):
    client = ServeClient(port=traced_host.port, tenant="tests")
    job = dict(_QUICK, deadline_s=0.7, chaos={"stall_s": 30})
    status, record = client.submit(job, wait=True)
    assert status == 200 and record["status"] == "degraded", record
    assert "worker-stall" in record["fault_kinds"]

    spans = _write_and_load(tmp_path)
    job_span, _ = _job_tree(spans, record["job_id"])
    attempts = _attempts_under(spans, job_span)
    assert len(attempts) == 1
    assert attempts[0]["attrs"]["outcome"] == "stalled"
    stalled_children = [
        s for s in spans
        if s.get("parent_id") == attempts[0]["span_id"]
        and s.get("process") == "worker"
    ]
    assert stalled_children == []


def test_live_progress_events_stream_before_completion(traced_host):
    client = ServeClient(port=traced_host.port, tenant="tests")
    status, admitted = client.submit(dict(_TONGUE))
    assert status == 202, admitted
    job_id = admitted["job_id"]
    cursor, progress, terminal = 0, 0, False
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        status, batch = client.job_events(job_id, since=cursor, wait=True,
                                          timeout_s=5.0)
        assert status == 200, batch
        assert batch["next_since"] >= cursor
        cursor = batch["next_since"]
        for event in batch["events"]:
            if event["type"] == "point":
                assert event["total"] == 6
                progress += 1
        if batch["terminal"]:
            terminal = True
            break
    assert terminal, "tongue job never went terminal"
    assert progress >= 1, "no per-point progress arrived while running"
    status, record = client.status(job_id)
    assert record["status"] == "completed"
    assert record.get("progress", {}).get("done") == 6
    # The ring replays in full for a late reader, ending in the terminal
    # event.
    _, replay = client.job_events(job_id)
    types = [e["type"] for e in replay["events"]]
    assert types[0] == "queued"
    assert types[-1] == "terminal"


def test_two_tenants_events_never_interleave(traced_host):
    alpha = ServeClient(port=traced_host.port, tenant="alpha")
    beta = ServeClient(port=traced_host.port, tenant="beta")
    status_a, job_a = alpha.submit(dict(_TONGUE))
    status_b, job_b = beta.submit(dict(_TONGUE, v_i=0.025))
    assert status_a == 202 and status_b == 202

    cursors = {job_a["job_id"]: 0, job_b["job_id"]: 0}
    rings: dict[str, list] = {job_a["job_id"]: [], job_b["job_id"]: []}
    clients = {job_a["job_id"]: alpha, job_b["job_id"]: beta}
    done: set[str] = set()
    deadline = time.monotonic() + 180.0
    while len(done) < 2 and time.monotonic() < deadline:
        for job_id, client in clients.items():
            if job_id in done:
                continue
            status, batch = client.job_events(job_id, since=cursors[job_id])
            assert status == 200, batch
            cursors[job_id] = batch["next_since"]
            rings[job_id].extend(batch["events"])
            if batch["terminal"]:
                # One final drain picks up the terminal event.
                _, tail = client.job_events(job_id, since=cursors[job_id])
                rings[job_id].extend(tail["events"])
                done.add(job_id)
        time.sleep(0.02)
    assert len(done) == 2, "both jobs must reach terminal"

    for job_id, events in rings.items():
        # Strictly gapless, strictly increasing seqs: nothing from the
        # other tenant's job can have landed in (or displaced) this ring.
        seqs = [event["seq"] for event in events]
        assert seqs == list(range(1, len(seqs) + 1))
        queued = [e for e in events if e["type"] == "queued"]
        assert [e["job_id"] for e in queued] == [job_id]
        points = [e for e in events if e["type"] == "point"]
        assert all(e["total"] == 6 for e in points)
        assert events[-1]["type"] == "terminal"


def test_fleet_metrics_prometheus(traced_host):
    client = ServeClient(port=traced_host.port, tenant="tests")
    status, record = client.submit(dict(_QUICK, n_phi=61), wait=True)
    assert status == 200 and record["status"] == "completed", record

    status, snapshot = client.metrics()
    assert status == 200
    # Satellite contract: the JSON snapshot carries the fleet gauges and
    # the merged worker-side solver counters, deterministically sorted.
    assert "serve.queue_depth" in snapshot["gauges"]
    assert "serve.workers_healthy" in snapshot["gauges"]
    assert any(k.startswith("df.evaluations") for k in snapshot["counters"])
    assert any(k.startswith("ladder.") for k in snapshot["counters"])
    assert list(snapshot["counters"]) == sorted(snapshot["counters"])

    parsed = client.parsed_metrics()  # validates the exposition en route
    assert any(k.startswith("repro_serve_completed_total") for k in parsed)
    assert any(k.startswith("repro_df_evaluations_total") for k in parsed)
    assert any(k.startswith("repro_serve_queue_wait_s_count") for k in parsed)

    # Per-tenant SLO accounting shows up in the serve report.
    status, report = client.report()
    assert status == 200
    slo = report["slo"]["tests"]
    assert slo["outcomes"].get("completed", 0) >= 1
    assert slo["e2e"] is not None and slo["e2e"]["count"] >= 1
    assert slo["dead_letter_ratio"] == 0.0
