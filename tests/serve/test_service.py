"""Integration tests: a live service + HTTP front on a background loop.

One module-scoped :class:`ServiceThread` (1 worker, a 3-deep queue,
chaos instrumentation enabled) serves every test; each test leaves the
service drained so the next starts from an idle queue.  The closing test
asserts the run-wide invariants: zero unhandled exceptions, a clean
``/readyz``, and a schema-valid ``/v1/report``.
"""

import time

import pytest

from repro.serve import (
    SERVE_SCHEMA_VERSION,
    ServeClient,
    ServeConfig,
    ServiceThread,
    TenantPolicy,
    validate_serve_report,
)

_QUICK = {
    "kind": "lockrange",
    "family": "tanh",
    "n": 3,
    "v_i": 0.03,
    "n_a": 41,
    "n_phi": 81,
    "n_samples": 128,
    "deadline_s": 60.0,
}

_GENEROUS = TenantPolicy(rate_per_s=1000.0, burst=500, max_in_flight=64)


@pytest.fixture(scope="module")
def host():
    config = ServeConfig(
        workers=1,
        queue_limit=3,
        allow_chaos=True,
        tenants={
            "default": _GENEROUS,
            "throttled": TenantPolicy(rate_per_s=0.05, burst=1,
                                      max_in_flight=4),
        },
    )
    with ServiceThread(config) as thread:
        yield thread


@pytest.fixture
def client(host):
    return ServeClient(port=host.port, tenant="tests", timeout_s=120.0)


def _drain(client, timeout_s=90.0):
    """Block until nothing is queued/running/retrying."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status, doc = client.report()
        assert status == 200
        jobs = doc["jobs"]
        if jobs["queued"] + jobs["running"] + jobs["retrying"] == 0:
            return doc
        time.sleep(0.1)
    raise AssertionError("service did not drain in time")


def test_happy_path_lockrange(client):
    status, record = client.submit(dict(_QUICK), wait=True)
    assert status == 200, record
    assert record["status"] == "completed"
    assert record["degraded"] is False
    assert record["attempts"] == 1
    result = record["result"]
    assert result["outcome"] == "locked"
    assert result["width_hz"] > 0.0
    assert result["injection_lower_hz"] < result["injection_upper_hz"]
    # The record stays queryable after completion.
    status, again = client.status(record["job_id"])
    assert status == 200
    assert again["status"] == "completed"


def test_dedup_then_cancel(client, host):
    job = dict(_QUICK, v_i=0.029, chaos={"stall_s": 15.0})
    status, first = client.submit(job)
    assert status == 202 and first["deduped"] is False
    status, second = client.submit(job)
    assert status == 202
    assert second["deduped"] is True
    assert second["job_id"] == first["job_id"]
    status, cancelled = client.cancel(first["job_id"])
    assert status == 200 and cancelled["cancelled"] is True
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        status, record = client.status(first["job_id"])
        if record["status"] == "dead-lettered":
            break
        time.sleep(0.1)
    assert status == 502
    assert record["status"] == "dead-lettered"
    assert any(
        letter.reason == "cancelled"
        for letter in host.service.store.dead_letters
    )
    _drain(client)
    # Dedup window closed at the terminal transition: a resubmit is new.
    status, third = client.submit(dict(_QUICK, v_i=0.029))
    assert status == 202 and third["deduped"] is False
    assert third["job_id"] != first["job_id"]
    _drain(client)


def test_flood_gets_typed_backpressure(client, host):
    # Pin the single worker, then burst past the 3-deep queue.
    status, pin = client.submit(dict(_QUICK, v_i=0.028,
                                     chaos={"stall_s": 3.0}))
    assert status == 202
    time.sleep(0.3)  # let the dispatcher pull the pin job off the queue
    outcomes = []
    for index in range(8):
        outcomes.append(client.submit(dict(_QUICK, v_i=0.03 + index * 1e-4)))
    rejected = [(s, b) for s, b in outcomes if s == 503]
    admitted = [(s, b) for s, b in outcomes if s == 202]
    assert rejected, outcomes
    assert admitted, outcomes
    for status, body in rejected:
        assert body["error"] == "queue-full"
        assert body["fault_kind"] == "queue-saturated"
        assert body["retry_after_s"] > 0.0
    doc = _drain(client)
    assert doc["jobs"]["queued"] == 0


def test_throttled_tenant_gets_429(host):
    slow = ServeClient(port=host.port, tenant="throttled")
    status, first = slow.submit(dict(_QUICK, v_i=0.027))
    assert status == 202
    status, second = slow.submit(dict(_QUICK, v_i=0.026))
    assert status == 429
    assert second["error"] == "rate-limited"
    assert second["retry_after_s"] > 0.0
    _drain(slow)


def test_malformed_submissions_are_typed_400s(client):
    status, body = client.submit({"kind": "summon", "family": "tanh"})
    assert status == 400
    assert body["error"] == "malformed-spec"
    assert body["field"] == "kind"
    status, body = client.submit(dict(_QUICK, bogus_knob=7))
    assert status == 400 and body["field"] == "bogus_knob"
    status, body = client.submit(dict(_QUICK, pad="x" * 100_000))
    assert status == 413


def test_zz_run_invariants(client, host):
    _drain(client)
    status, ready = client.ready()
    assert status == 200 and ready["ready"] is True
    status, health = client.health()
    assert status == 200 and health["ok"] is True
    status, doc = client.report()
    assert status == 200
    assert doc["schema"] == SERVE_SCHEMA_VERSION
    assert validate_serve_report(doc) == []
    assert host.service.unhandled_errors == []
    status, snapshot = client.metrics()
    assert status == 200
    assert any(key.startswith("serve.") for key in snapshot["counters"])
