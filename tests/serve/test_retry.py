"""Unit tests for the retry policy: transient-only, deterministic jitter."""

import pytest

from repro.serve import RetryPolicy
from repro.serve.retry import TRANSIENT_FAULTS


class TestShouldRetry:
    def test_only_transient_faults_retry(self):
        policy = RetryPolicy(max_attempts=3)
        for kind in TRANSIENT_FAULTS:
            assert policy.should_retry(1, kind)
        # A stall consumed the budget; a no-lock is a proof: neither retries.
        assert not policy.should_retry(1, "worker-stall")
        assert not policy.should_retry(1, "no-lock")
        assert not policy.should_retry(1, "budget-exhausted")

    def test_attempt_cap(self):
        policy = RetryPolicy(max_attempts=2)
        assert policy.should_retry(1, "worker-crash")
        assert not policy.should_retry(2, "worker-crash")


class TestDelay:
    def test_deterministic_for_a_key(self):
        policy = RetryPolicy()
        assert policy.delay_s("fp", 1) == policy.delay_s("fp", 1)

    def test_distinct_keys_decorrelate(self):
        policy = RetryPolicy(jitter_frac=1.0)
        delays = {policy.delay_s(f"fp-{i}", 1) for i in range(32)}
        assert len(delays) > 1

    def test_exponential_growth_with_cap(self):
        policy = RetryPolicy(
            base_delay_s=0.1, factor=2.0, max_delay_s=0.4, jitter_frac=0.0
        )
        assert policy.delay_s("k", 1) == pytest.approx(0.1)
        assert policy.delay_s("k", 2) == pytest.approx(0.2)
        assert policy.delay_s("k", 5) == pytest.approx(0.4)

    def test_jitter_is_bounded(self):
        policy = RetryPolicy(
            base_delay_s=0.1, factor=1.0, max_delay_s=0.1, jitter_frac=0.25
        )
        for i in range(16):
            delay = policy.delay_s(f"k{i}", 1)
            assert 0.1 <= delay <= 0.125 + 1e-9

    def test_degenerate_policies_are_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(factor=0.5)
