"""Unit tests for the bounded per-job progress event ring."""

import asyncio

from repro.serve import EventRing


def test_push_assigns_monotonic_seqs():
    ring = EventRing(limit=10)
    first = ring.push("queued", job_id="j1")
    second = ring.push("point", done=1, total=6)
    assert first["seq"] == 1
    assert second["seq"] == 2
    assert ring.last_seq == 2
    assert first["type"] == "queued"
    assert first["job_id"] == "j1"
    assert "t_unix_s" in first


def test_since_cursor_semantics():
    ring = EventRing(limit=10)
    for index in range(5):
        ring.push("point", done=index + 1, total=5)
    events, next_since, missed = ring.since(0)
    assert [e["seq"] for e in events] == [1, 2, 3, 4, 5]
    assert next_since == 5
    assert missed == 0
    events, next_since, missed = ring.since(3)
    assert [e["seq"] for e in events] == [4, 5]
    assert missed == 0
    # A fully caught-up reader gets nothing and keeps its cursor.
    events, next_since, missed = ring.since(5)
    assert events == [] and next_since == 5 and missed == 0


def test_eviction_counts_dropped_and_missed():
    ring = EventRing(limit=3)
    for index in range(8):
        ring.push("point", done=index + 1, total=8)
    assert ring.dropped == 5
    # A reader starting from scratch sees only the tail and learns how
    # many events it can never get back.
    events, next_since, missed = ring.since(0)
    assert [e["seq"] for e in events] == [6, 7, 8]
    assert next_since == 8
    assert missed == 5
    # A reader whose cursor is inside the retained tail misses nothing.
    events, _, missed = ring.since(6)
    assert [e["seq"] for e in events] == [7, 8]
    assert missed == 0


def test_wait_wakes_on_push_and_times_out_otherwise():
    async def scenario():
        ring = EventRing()
        # Already-new events resolve immediately.
        ring.push("queued")
        assert await ring.wait(0, timeout_s=0.01) is True
        # Nothing newer than the cursor: a short wait times out...
        assert await ring.wait(1, timeout_s=0.05) is False

        # ...but a concurrent push wakes a pending waiter.
        async def pusher():
            await asyncio.sleep(0.02)
            ring.push("point", done=1, total=1)

        task = asyncio.ensure_future(pusher())
        woke = await ring.wait(1, timeout_s=5.0)
        await task
        assert woke is True
        assert ring.last_seq == 2

    asyncio.run(scenario())
