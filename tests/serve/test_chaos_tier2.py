"""Tier-2: the service-layer chaos matrix must stay green.

Each scenario boots a real service (workers, HTTP front, isolated cache
root), injects one failure — a worker kill, a 30 s stall against a sub-
second deadline, a queue flood, a truncated sweep shard, garbage specs —
and asserts the documented recovery: typed rejections, retries on fresh
workers, degraded-but-meaningful answers, a clean ``/readyz`` afterwards,
and zero unhandled exceptions.  This is the acceptance gate for the
serving layer's invariant: every admitted job terminates in exactly one
of completed / degraded / dead-lettered.
"""

import pytest

from repro.serve.chaos import run_serve_fault_matrix, serve_scenarios

pytestmark = pytest.mark.tier2


@pytest.fixture(scope="module")
def report():
    return run_serve_fault_matrix()


def test_serve_chaos_matrix_all_green(report):
    assert report.passed, report.format()
    assert len(report.outcomes) == len(serve_scenarios())
    by_id = {o.scenario: o for o in report.outcomes}
    # The kill scenario must recover via a retry, not by luck.
    assert by_id["serve-worker-kill"].ok
    assert "worker-crash" in by_id["serve-worker-kill"].fault_kinds
    # The stall must degrade to the coarse Adler estimate, not hang.
    assert by_id["serve-slow-solve-stall"].ok
    # Every outcome is tagged with the service layer for the v2 report.
    assert all(o.layer == "service" for o in report.outcomes)


def test_serve_report_doc_is_v2(report, tmp_path):
    from repro.robust.injection import FAULTS_SCHEMA_VERSION

    doc = report.to_dict()
    assert doc["schema"] == FAULTS_SCHEMA_VERSION
    assert doc["mode"] == "serve"
    assert doc["layers"]["service"]["total"] == len(report.outcomes)
    path = report.write(tmp_path / "FAULTS_SERVE.json")
    assert path.exists()
