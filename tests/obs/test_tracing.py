"""Span primitive: nesting, attributes, round-trip, and the disabled path."""

from __future__ import annotations

import threading
import tracemalloc

import numpy as np
import pytest

from repro.obs import (
    TRACE_SCHEMA_VERSION,
    current_span,
    load_trace,
    trace,
    tracer,
)
from repro.obs.tracing import NOOP_SPAN


class TestNesting:
    def test_parent_child_ids_and_depth(self, clean_obs):
        tracer.enable()
        with trace("outer") as outer:
            with trace("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.depth == outer.depth + 1
        records = tracer.records()
        by_name = {r["name"]: r for r in records}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["parent_id"] is None
        assert by_name["outer"]["depth"] == 0

    def test_reentrant_same_name(self, clean_obs):
        tracer.enable()
        with trace("solve") as a:
            with trace("solve") as b:
                with trace("solve") as c:
                    assert (a.depth, b.depth, c.depth) == (0, 1, 2)
        depths = sorted(r["depth"] for r in tracer.records())
        assert depths == [0, 1, 2]

    def test_current_span_tracks_innermost(self, clean_obs):
        tracer.enable()
        assert current_span() is NOOP_SPAN
        with trace("outer") as outer:
            assert current_span() is outer
            with trace("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is NOOP_SPAN

    def test_sibling_spans_share_parent(self, clean_obs):
        tracer.enable()
        with trace("parent"):
            with trace("first"):
                pass
            with trace("second"):
                pass
        records = {r["name"]: r for r in tracer.records()}
        assert records["first"]["parent_id"] == records["parent"]["span_id"]
        assert records["second"]["parent_id"] == records["parent"]["span_id"]
        assert records["first"]["depth"] == records["second"]["depth"] == 1

    def test_threads_do_not_share_the_span_stack(self, clean_obs):
        tracer.enable()
        seen = {}

        def worker():
            # A fresh thread starts outside every span even while the main
            # thread holds one open (contextvars isolation).
            seen["parent"] = tracer._current.get()
            with trace("thread-span") as sp:
                seen["depth"] = sp.depth

        with trace("main-span"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["parent"] is None
        assert seen["depth"] == 0


class TestAttributesAndEvents:
    def test_set_and_event_round_trip(self, clean_obs, tmp_path):
        tracer.enable()
        with trace("hb", attrs={"n": 3}) as sp:
            sp.set(iterations=5, residual_norm=1.25e-13)
            sp.event("newton", iteration=1, residual=0.5)
        path = tracer.write(tmp_path / "t.jsonl")
        header, spans = load_trace(path)
        assert header["schema"] == TRACE_SCHEMA_VERSION
        assert header["spans"] == 1
        (span,) = spans
        assert span["attrs"]["n"] == 3
        assert span["attrs"]["iterations"] == 5
        assert span["attrs"]["residual_norm"] == pytest.approx(1.25e-13)
        (event,) = span["events"]
        assert event["name"] == "newton"
        assert event["iteration"] == 1

    def test_exception_sets_error_attr(self, clean_obs):
        tracer.enable()
        with pytest.raises(ValueError):
            with trace("failing"):
                raise ValueError("boom")
        (record,) = tracer.records()
        assert record["attrs"]["error"] == "ValueError"

    def test_numpy_and_nonfinite_values_are_json_safe(self, clean_obs, tmp_path):
        tracer.enable()
        with trace("numeric") as sp:
            sp.set(
                count=np.int64(7),
                norm=np.float64(2.5),
                bad=float("nan"),
                worse=float("inf"),
            )
        path = tracer.write(tmp_path / "t.jsonl")
        _, (span,) = load_trace(path)
        attrs = span["attrs"]
        assert attrs["count"] == 7
        assert attrs["norm"] == 2.5
        assert isinstance(attrs["bad"], str)
        assert isinstance(attrs["worse"], str)

    def test_durations_are_positive_and_nested(self, clean_obs):
        tracer.enable()
        with trace("outer"):
            with trace("inner"):
                pass
        records = {r["name"]: r for r in tracer.records()}
        assert records["outer"]["dur_s"] >= records["inner"]["dur_s"] >= 0.0


class TestDisabledPath:
    def test_disabled_span_is_the_shared_noop(self, clean_obs):
        assert trace("anything") is NOOP_SPAN
        assert not NOOP_SPAN.recording
        with trace("still-noop") as sp:
            sp.set(a=1)
            sp.event("ignored")
        assert tracer.records() == []

    def test_disabled_path_allocates_nothing(self, clean_obs):
        # Warm up interned strings / bytecode caches first.
        for _ in range(100):
            with trace("hot"):
                pass
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        for _ in range(1000):
            with trace("hot"):
                pass
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        grown = sum(
            stat.size_diff
            for stat in after.compare_to(before, "lineno")
            if stat.size_diff > 0
        )
        # tracemalloc itself retains a few hundred bytes of bookkeeping;
        # a real per-iteration allocation (one Span is ~200 bytes) would
        # show up as >= 200 kB across the 1000 iterations.
        assert grown < 8192

    def test_enable_resets_prior_buffer(self, clean_obs):
        tracer.enable()
        with trace("first"):
            pass
        assert len(tracer.records()) == 1
        tracer.enable()
        assert tracer.records() == []


class TestLoadTrace:
    def test_rejects_non_trace_files(self, tmp_path):
        bogus = tmp_path / "not-a-trace.jsonl"
        bogus.write_text('{"something": "else"}\n')
        with pytest.raises(ValueError):
            load_trace(bogus)

    def test_rejects_empty_files(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError):
            load_trace(empty)


class TestSinks:
    def test_sink_sees_spans_without_tracing(self, clean_obs):
        finished = []

        class Sink:
            def on_span(self, span):
                finished.append((span.name, span.kind))

        sink = Sink()
        tracer.add_sink(sink)
        try:
            with trace("observed"):
                pass
        finally:
            tracer.remove_sink(sink)
        assert finished == [("observed", "span")]
        assert tracer.records() == []  # sink-only mode buffers nothing
