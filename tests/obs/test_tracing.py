"""Span primitive: nesting, attributes, round-trip, and the disabled path."""

from __future__ import annotations

import threading
import tracemalloc

import numpy as np
import pytest

from repro.obs import (
    TRACE_SCHEMA_VERSION,
    current_span,
    load_trace,
    trace,
    tracer,
)
from repro.obs.tracing import NOOP_SPAN


class TestNesting:
    def test_parent_child_ids_and_depth(self, clean_obs):
        tracer.enable()
        with trace("outer") as outer:
            with trace("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.depth == outer.depth + 1
        records = tracer.records()
        by_name = {r["name"]: r for r in records}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["parent_id"] is None
        assert by_name["outer"]["depth"] == 0

    def test_reentrant_same_name(self, clean_obs):
        tracer.enable()
        with trace("solve") as a:
            with trace("solve") as b:
                with trace("solve") as c:
                    assert (a.depth, b.depth, c.depth) == (0, 1, 2)
        depths = sorted(r["depth"] for r in tracer.records())
        assert depths == [0, 1, 2]

    def test_current_span_tracks_innermost(self, clean_obs):
        tracer.enable()
        assert current_span() is NOOP_SPAN
        with trace("outer") as outer:
            assert current_span() is outer
            with trace("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is NOOP_SPAN

    def test_sibling_spans_share_parent(self, clean_obs):
        tracer.enable()
        with trace("parent"):
            with trace("first"):
                pass
            with trace("second"):
                pass
        records = {r["name"]: r for r in tracer.records()}
        assert records["first"]["parent_id"] == records["parent"]["span_id"]
        assert records["second"]["parent_id"] == records["parent"]["span_id"]
        assert records["first"]["depth"] == records["second"]["depth"] == 1

    def test_threads_do_not_share_the_span_stack(self, clean_obs):
        tracer.enable()
        seen = {}

        def worker():
            # A fresh thread starts outside every span even while the main
            # thread holds one open (contextvars isolation).
            seen["parent"] = tracer._current.get()
            with trace("thread-span") as sp:
                seen["depth"] = sp.depth

        with trace("main-span"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["parent"] is None
        assert seen["depth"] == 0


class TestAttributesAndEvents:
    def test_set_and_event_round_trip(self, clean_obs, tmp_path):
        tracer.enable()
        with trace("hb", attrs={"n": 3}) as sp:
            sp.set(iterations=5, residual_norm=1.25e-13)
            sp.event("newton", iteration=1, residual=0.5)
        path = tracer.write(tmp_path / "t.jsonl")
        header, spans = load_trace(path)
        assert header["schema"] == TRACE_SCHEMA_VERSION
        assert header["spans"] == 1
        (span,) = spans
        assert span["attrs"]["n"] == 3
        assert span["attrs"]["iterations"] == 5
        assert span["attrs"]["residual_norm"] == pytest.approx(1.25e-13)
        (event,) = span["events"]
        assert event["name"] == "newton"
        assert event["iteration"] == 1

    def test_exception_sets_error_attr(self, clean_obs):
        tracer.enable()
        with pytest.raises(ValueError):
            with trace("failing"):
                raise ValueError("boom")
        (record,) = tracer.records()
        assert record["attrs"]["error"] == "ValueError"

    def test_numpy_and_nonfinite_values_are_json_safe(self, clean_obs, tmp_path):
        tracer.enable()
        with trace("numeric") as sp:
            sp.set(
                count=np.int64(7),
                norm=np.float64(2.5),
                bad=float("nan"),
                worse=float("inf"),
            )
        path = tracer.write(tmp_path / "t.jsonl")
        _, (span,) = load_trace(path)
        attrs = span["attrs"]
        assert attrs["count"] == 7
        assert attrs["norm"] == 2.5
        assert isinstance(attrs["bad"], str)
        assert isinstance(attrs["worse"], str)

    def test_durations_are_positive_and_nested(self, clean_obs):
        tracer.enable()
        with trace("outer"):
            with trace("inner"):
                pass
        records = {r["name"]: r for r in tracer.records()}
        assert records["outer"]["dur_s"] >= records["inner"]["dur_s"] >= 0.0


class TestDisabledPath:
    def test_disabled_span_is_the_shared_noop(self, clean_obs):
        assert trace("anything") is NOOP_SPAN
        assert not NOOP_SPAN.recording
        with trace("still-noop") as sp:
            sp.set(a=1)
            sp.event("ignored")
        assert tracer.records() == []

    def test_disabled_path_allocates_nothing(self, clean_obs):
        # Warm up interned strings / bytecode caches first.
        for _ in range(100):
            with trace("hot"):
                pass
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        for _ in range(1000):
            with trace("hot"):
                pass
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        grown = sum(
            stat.size_diff
            for stat in after.compare_to(before, "lineno")
            if stat.size_diff > 0
        )
        # tracemalloc itself retains a few hundred bytes of bookkeeping;
        # a real per-iteration allocation (one Span is ~200 bytes) would
        # show up as >= 200 kB across the 1000 iterations.
        assert grown < 8192

    def test_enable_resets_prior_buffer(self, clean_obs):
        tracer.enable()
        with trace("first"):
            pass
        assert len(tracer.records()) == 1
        tracer.enable()
        assert tracer.records() == []


class TestLoadTrace:
    def test_rejects_non_trace_files(self, tmp_path):
        bogus = tmp_path / "not-a-trace.jsonl"
        bogus.write_text('{"something": "else"}\n')
        with pytest.raises(ValueError):
            load_trace(bogus)

    def test_rejects_empty_files(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError):
            load_trace(empty)


class TestSinks:
    def test_sink_sees_spans_without_tracing(self, clean_obs):
        finished = []

        class Sink:
            def on_span(self, span):
                finished.append((span.name, span.kind))

        sink = Sink()
        tracer.add_sink(sink)
        try:
            with trace("observed"):
                pass
        finally:
            tracer.remove_sink(sink)
        assert finished == [("observed", "span")]
        assert tracer.records() == []  # sink-only mode buffers nothing


class TestStitching:
    """Trace-context propagation and cross-process grafting (schema v1.1)."""

    def test_ambient_context_roots_adopt_it(self, clean_obs):
        tracer.enable()
        with tracer.ambient("feedfacefeedface", 9):
            with trace("root") as root:
                assert root.trace_id == "feedfacefeedface"
                assert root.parent_span_id == 9
                with trace("child") as child:
                    # Children inherit trace_id from the parent span, not
                    # the remote parent pointer.
                    assert child.trace_id == "feedfacefeedface"
                    assert child.parent_span_id is None
        records = {r["name"]: r for r in tracer.records()}
        assert records["root"]["trace_id"] == "feedfacefeedface"
        assert records["root"]["parent_span_id"] == 9
        assert "parent_span_id" not in records["child"]

    def test_ambient_applies_under_an_idless_enclosing_span(self, clean_obs):
        # A serve session booted via the CLI runs inside a cli.* root span
        # opened before any request exists; request subtrees must still
        # pick up the ambient trace_id minted at ingress.
        tracer.enable()
        with trace("cli.serve") as root:
            assert root.trace_id is None
            with tracer.ambient("cafecafecafecafe"):
                with trace("serve.request") as request:
                    assert request.trace_id == "cafecafecafecafe"
                    assert request.parent_id == root.span_id
                    assert request.parent_span_id is None

    def test_current_trace_id_reads_span_then_ambient(self, clean_obs):
        from repro.obs import current_trace_id

        assert current_trace_id() is None
        tracer.enable()
        with tracer.ambient("00000000aaaaaaaa"):
            assert current_trace_id() == "00000000aaaaaaaa"

    def test_graft_renumbers_reroots_and_stamps(self, clean_obs, tmp_path):
        from repro.obs import validate_trace

        tracer.enable()
        worker = [
            {"span_id": 2, "parent_id": 1, "name": "inner", "kind": "span",
             "depth": 1, "t_start_s": 0.002, "dur_s": 0.01},
            {"span_id": 1, "parent_id": None, "name": "outer", "kind": "span",
             "depth": 0, "t_start_s": 0.001, "dur_s": 0.02,
             "parent_span_id": 77},
        ]
        with tracer.ambient("beefbeefbeefbeef"):
            with trace("attempt") as attempt:
                grafted = tracer.graft(
                    worker, parent=attempt,
                    epoch_unix_s=tracer.epoch_unix,
                )
        assert grafted == 2
        path = tmp_path / "stitched.jsonl"
        tracer.write(path)
        assert validate_trace(path) == []
        records = {r["name"]: r for r in tracer.records()}
        outer, inner = records["outer"], records["inner"]
        assert outer["parent_id"] == records["attempt"]["span_id"]
        assert outer["depth"] == records["attempt"]["depth"] + 1
        assert outer["process"] == "worker"
        assert outer["trace_id"] == "beefbeefbeefbeef"
        assert outer["parent_span_id"] == 77  # preserved, not overwritten
        assert inner["parent_id"] == outer["span_id"]
        assert inner["depth"] == outer["depth"] + 1
        assert inner["trace_id"] == "beefbeefbeefbeef"

    def test_graft_clamps_clock_skew(self, clean_obs):
        tracer.enable()
        worker = [
            {"span_id": 1, "parent_id": None, "name": "w", "kind": "span",
             "depth": 0, "t_start_s": 0.0, "dur_s": 0.01},
        ]
        with trace("attempt") as attempt:
            # A remote epoch far in the past would place the child before
            # its parent; the offset must clamp to the parent's start.
            tracer.graft(worker, parent=attempt,
                         epoch_unix_s=tracer.epoch_unix - 3600.0)
            parent_start = attempt._start_rel
        record = next(r for r in tracer.records() if r["name"] == "w")
        assert record["t_start_s"] + 1e-9 >= round(parent_start, 6)

    def test_reset_context_forgets_inherited_parents(self, clean_obs):
        tracer.enable()
        with tracer.ambient("1234123412341234", 5):
            # Simulate the forked-worker situation: a live span leaks into
            # the context, then the worker resets before its first span.
            span = trace("leaked").__enter__()
            tracer.reset_context()
            with trace("fresh") as fresh:
                assert fresh.parent_id is None
                assert fresh.depth == 0
                assert fresh.trace_id is None
            # The leaked span's token is now foreign; close it defensively.
            try:
                span.__exit__(None, None, None)
            except ValueError:
                pass
