"""Observability fixtures: a clean tracer/registry per test."""

from __future__ import annotations

import pytest

from repro.obs import disable_json_logs, metrics, tracer


@pytest.fixture
def clean_obs():
    """Reset the process-wide tracer, metrics registry, and log mode.

    The observability singletons are process-wide by design; tests that
    enable them must not leak state into each other (or into the rest of
    the suite).
    """
    tracer.clear()
    metrics.reset()
    disable_json_logs()
    yield
    tracer.clear()
    metrics.reset()
    disable_json_logs()
