"""Metrics registry: labels, snapshot determinism, numeric coercion."""

from __future__ import annotations

import json

from repro.obs import MetricsRegistry


class TestCounters:
    def test_inc_defaults_to_one(self):
        reg = MetricsRegistry()
        reg.inc("events")
        reg.inc("events")
        assert reg.counter("events") == 2

    def test_labels_fold_into_the_key_sorted(self):
        reg = MetricsRegistry()
        reg.inc("df.evaluations", method="fft", stage="solve")
        reg.inc("df.evaluations", stage="solve", method="fft")  # same key
        snapshot = reg.snapshot()
        assert snapshot["counters"] == {
            "df.evaluations{method=fft,stage=solve}": 2
        }

    def test_different_labels_are_different_series(self):
        reg = MetricsRegistry()
        reg.inc("df.evaluations", 10, method="fft")
        reg.inc("df.evaluations", 3, method="dense")
        assert reg.counter("df.evaluations", method="fft") == 10
        assert reg.counter("df.evaluations", method="dense") == 3
        assert reg.counter_total("df.evaluations") == 13

    def test_unknown_counter_reads_zero(self):
        assert MetricsRegistry().counter("never.touched") == 0


class TestGaugesAndHistograms:
    def test_gauge_overwrites(self):
        reg = MetricsRegistry()
        reg.gauge("cache.entries", 5)
        reg.gauge("cache.entries", 2)
        assert reg.snapshot()["gauges"] == {"cache.entries": 2}

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        for value in (2.0, 4.0, 6.0):
            reg.observe("hb.iterations", value, kind="lock")
        (summary,) = reg.snapshot()["histograms"].values()
        assert summary == {"count": 3, "sum": 12, "min": 2, "max": 6, "mean": 4}


class TestSnapshot:
    def test_snapshot_is_deterministic_and_json_stable(self):
        def build():
            reg = MetricsRegistry()
            # Insertion order deliberately differs between the two builds.
            for name in ("b", "a", "c") if build.flip else ("c", "a", "b"):
                reg.inc(name, 1, side="x")
            reg.observe("h", 1.5)
            reg.gauge("g", 7)
            build.flip = not build.flip
            return reg.snapshot()

        build.flip = False
        first, second = build(), build()
        assert json.dumps(first, sort_keys=False) == json.dumps(
            second, sort_keys=False
        )

    def test_integral_floats_become_ints(self):
        reg = MetricsRegistry()
        reg.inc("n", 2.0)
        reg.gauge("g", 3.0)
        snapshot = reg.snapshot()
        assert isinstance(snapshot["counters"]["n"], int)
        assert isinstance(snapshot["gauges"]["g"], int)

    def test_non_integral_values_stay_floats(self):
        reg = MetricsRegistry()
        reg.observe("r", 1.25)
        summary = reg.snapshot()["histograms"]["r"]
        assert summary["mean"] == 1.25

    def test_reset_drops_everything(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.gauge("b", 1)
        reg.observe("c", 1)
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestMergeSnapshot:
    def test_counters_add_and_histograms_merge(self):
        parent = MetricsRegistry()
        parent.inc("df.evaluations", 10, method="fft")
        parent.observe("solve_s", 1.0)
        worker = MetricsRegistry()
        worker.inc("df.evaluations", 5, method="fft")
        worker.inc("hb.solves", 2)
        worker.observe("solve_s", 3.0)
        worker.observe("solve_s", 5.0)
        parent.merge_snapshot(worker.snapshot())
        snapshot = parent.snapshot()
        assert snapshot["counters"]["df.evaluations{method=fft}"] == 15
        assert snapshot["counters"]["hb.solves"] == 2
        summary = snapshot["histograms"]["solve_s"]
        assert summary["count"] == 3
        assert summary["sum"] == 9
        assert summary["min"] == 1 and summary["max"] == 5

    def test_gauges_are_skipped(self):
        parent = MetricsRegistry()
        parent.gauge("workers", 2)
        worker = MetricsRegistry()
        worker.gauge("workers", 99)
        parent.merge_snapshot(worker.snapshot())
        assert parent.snapshot()["gauges"]["workers"] == 2

    def test_merge_is_associative_over_workers(self):
        fleet = MetricsRegistry()
        for count in (1, 2, 3):
            worker = MetricsRegistry()
            worker.inc("jobs", count)
            fleet.merge_snapshot(worker.snapshot())
        assert fleet.counter("jobs") == 6


class TestPrometheus:
    def _registry(self):
        reg = MetricsRegistry()
        reg.inc("serve.completed", 3, kind="lockrange")
        reg.inc("df.evaluations", 1200, method="fft")
        reg.gauge("serve.queue_depth", 2)
        reg.observe("serve.e2e_s", 0.5, tenant="ci")
        reg.observe("serve.e2e_s", 1.5, tenant="ci")
        return reg

    def test_exposition_round_trips_through_parse(self):
        from repro.obs import parse_prometheus, to_prometheus, validate_prometheus

        text = to_prometheus(self._registry().snapshot())
        assert validate_prometheus(text) == []
        parsed = parse_prometheus(text)
        assert parsed["repro_serve_completed_total{kind=lockrange}"] == 3
        assert parsed["repro_df_evaluations_total{method=fft}"] == 1200
        assert parsed["repro_serve_queue_depth"] == 2
        assert parsed["repro_serve_e2e_s_count{tenant=ci}"] == 2
        assert parsed["repro_serve_e2e_s_sum{tenant=ci}"] == 2.0

    def test_exposition_is_deterministic(self):
        from repro.obs import to_prometheus

        snapshot = self._registry().snapshot()
        assert to_prometheus(snapshot) == to_prometheus(snapshot)
        assert to_prometheus(snapshot).endswith("\n")

    def test_type_lines_and_counter_suffix(self):
        from repro.obs import to_prometheus

        text = to_prometheus(self._registry().snapshot())
        lines = text.splitlines()
        assert "# TYPE repro_serve_completed_total counter" in lines
        assert "# TYPE repro_serve_queue_depth gauge" in lines
        assert "# TYPE repro_serve_e2e_s_count summary" in lines
        assert "# TYPE repro_serve_e2e_s_sum summary" in lines
        # Counters must carry the _total suffix on every sample.
        samples = [l for l in lines if l.startswith("repro_serve_completed")]
        assert samples and all("_total" in l for l in samples)

    def test_validator_rejects_garbage(self):
        from repro.obs import validate_prometheus

        assert validate_prometheus("") != []
        assert validate_prometheus("not a metric line\n") != []
        # A counter sample without a TYPE declaration is a problem.
        assert validate_prometheus("repro_x_total 1\n") != []
