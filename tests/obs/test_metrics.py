"""Metrics registry: labels, snapshot determinism, numeric coercion."""

from __future__ import annotations

import json

from repro.obs import MetricsRegistry


class TestCounters:
    def test_inc_defaults_to_one(self):
        reg = MetricsRegistry()
        reg.inc("events")
        reg.inc("events")
        assert reg.counter("events") == 2

    def test_labels_fold_into_the_key_sorted(self):
        reg = MetricsRegistry()
        reg.inc("df.evaluations", method="fft", stage="solve")
        reg.inc("df.evaluations", stage="solve", method="fft")  # same key
        snapshot = reg.snapshot()
        assert snapshot["counters"] == {
            "df.evaluations{method=fft,stage=solve}": 2
        }

    def test_different_labels_are_different_series(self):
        reg = MetricsRegistry()
        reg.inc("df.evaluations", 10, method="fft")
        reg.inc("df.evaluations", 3, method="dense")
        assert reg.counter("df.evaluations", method="fft") == 10
        assert reg.counter("df.evaluations", method="dense") == 3
        assert reg.counter_total("df.evaluations") == 13

    def test_unknown_counter_reads_zero(self):
        assert MetricsRegistry().counter("never.touched") == 0


class TestGaugesAndHistograms:
    def test_gauge_overwrites(self):
        reg = MetricsRegistry()
        reg.gauge("cache.entries", 5)
        reg.gauge("cache.entries", 2)
        assert reg.snapshot()["gauges"] == {"cache.entries": 2}

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        for value in (2.0, 4.0, 6.0):
            reg.observe("hb.iterations", value, kind="lock")
        (summary,) = reg.snapshot()["histograms"].values()
        assert summary == {"count": 3, "sum": 12, "min": 2, "max": 6, "mean": 4}


class TestSnapshot:
    def test_snapshot_is_deterministic_and_json_stable(self):
        def build():
            reg = MetricsRegistry()
            # Insertion order deliberately differs between the two builds.
            for name in ("b", "a", "c") if build.flip else ("c", "a", "b"):
                reg.inc(name, 1, side="x")
            reg.observe("h", 1.5)
            reg.gauge("g", 7)
            build.flip = not build.flip
            return reg.snapshot()

        build.flip = False
        first, second = build(), build()
        assert json.dumps(first, sort_keys=False) == json.dumps(
            second, sort_keys=False
        )

    def test_integral_floats_become_ints(self):
        reg = MetricsRegistry()
        reg.inc("n", 2.0)
        reg.gauge("g", 3.0)
        snapshot = reg.snapshot()
        assert isinstance(snapshot["counters"]["n"], int)
        assert isinstance(snapshot["gauges"]["g"], int)

    def test_non_integral_values_stay_floats(self):
        reg = MetricsRegistry()
        reg.observe("r", 1.25)
        summary = reg.snapshot()["histograms"]["r"]
        assert summary["mean"] == 1.25

    def test_reset_drops_everything(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.gauge("b", 1)
        reg.observe("c", 1)
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
