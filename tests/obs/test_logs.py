"""Structured logging: JSON mode, text mode, and the log.records counter."""

from __future__ import annotations

import io
import json
import logging

from repro.obs import (
    enable_json_logs,
    get_logger,
    json_logs_enabled,
    metrics,
)


class TestJsonMode:
    def test_records_are_json_lines_with_fields(self, clean_obs):
        stream = io.StringIO()
        enable_json_logs(stream)
        assert json_logs_enabled()
        log = get_logger("repro.test")
        log.warning("cache.quarantined", file="ab.npz", fault="cache-corruption")
        (line,) = stream.getvalue().splitlines()
        record = json.loads(line)
        assert record["level"] == "warning"
        assert record["logger"] == "repro.test"
        assert record["event"] == "cache.quarantined"
        assert record["file"] == "ab.npz"
        assert record["fault"] == "cache-corruption"
        assert isinstance(record["ts"], float)

    def test_non_json_values_are_sanitised(self, clean_obs):
        stream = io.StringIO()
        enable_json_logs(stream)
        get_logger("repro.test").info("event", bad=float("nan"))
        record = json.loads(stream.getvalue())
        assert isinstance(record["bad"], str)

    def test_reserved_keys_are_not_clobbered(self, clean_obs):
        stream = io.StringIO()
        enable_json_logs(stream)
        get_logger("repro.test").info("real-event", event="fake", level="fake")
        record = json.loads(stream.getvalue())
        assert record["event"] == "real-event"
        assert record["level"] == "info"


class TestTextMode:
    def test_renders_through_stdlib_logging(self, clean_obs, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.test"):
            get_logger("repro.test").warning("solve.fault", kind="no-lock")
        (record,) = caplog.records
        assert "solve.fault" in record.getMessage()
        assert "kind=no-lock" in record.getMessage()

    def test_below_level_events_are_skipped(self, clean_obs, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.test"):
            get_logger("repro.test").debug("noise")
        assert caplog.records == []


class TestMetricsCoupling:
    def test_every_emit_bumps_the_level_counter(self, clean_obs):
        log = get_logger("repro.test")
        log.warning("a")
        log.warning("b")
        log.error("c")
        assert metrics.counter("log.records", level="warning") == 2
        assert metrics.counter("log.records", level="error") == 1
