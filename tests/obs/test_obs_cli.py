"""End-to-end observability: --trace/--log-json runs, `repro obs`, `repro cache`."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import load_trace, validate_obs_report, validate_trace


@pytest.fixture
def traced_run(clean_obs, tmp_path, monkeypatch):
    """One lockrange run under --trace --log-json, in a scratch cwd."""
    monkeypatch.chdir(tmp_path)
    code = main(
        [
            "--trace",
            "--log-json",
            "lockrange",
            "--oscillator",
            "tanh",
            "--vi",
            "0.05",
            "--n",
            "3",
        ]
    )
    assert code == 0
    return tmp_path


class TestTraceFlag:
    def test_trace_and_report_files_validate(self, traced_run):
        trace_path = traced_run / "TRACE.jsonl"
        report_path = traced_run / "OBS_REPORT.json"
        assert trace_path.is_file()
        assert report_path.is_file()
        assert validate_trace(trace_path) == []
        assert validate_obs_report(report_path) == []

    def test_spans_nest_under_the_cli_root(self, traced_run):
        _, spans = load_trace(traced_run / "TRACE.jsonl")
        by_name = {s["name"]: s for s in spans}
        root = by_name["cli.lockrange"]
        assert root["parent_id"] is None
        assert root["attrs"]["exit_code"] == 0
        # ladder -> rung -> lockrange -> phases, all under the root.
        assert by_name["ladder"]["parent_id"] == root["span_id"]
        assert by_name["lockrange"]["parent_id"] == by_name["rung"]["span_id"]
        assert by_name["characterize"]["depth"] > by_name["lockrange"]["depth"]

    def test_report_carries_run_context_and_counters(self, traced_run):
        payload = json.loads((traced_run / "OBS_REPORT.json").read_text())
        assert payload["exit_code"] == 0
        assert payload["trace_file"].endswith("TRACE.jsonl")
        assert "lockrange" in payload["argv"]
        counters = payload["metrics"]["counters"]
        assert counters["lockrange.solves{method=fft}"] == 1
        assert any(key.startswith("df.evaluations") for key in counters)

    def test_custom_trace_path(self, clean_obs, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(
            ["--trace", "deep/run.jsonl", "natural", "--oscillator", "tanh"]
        )
        assert code == 0
        assert validate_trace(tmp_path / "deep" / "run.jsonl") == []


class TestObsCommand:
    def test_renders_tree_and_totals(self, traced_run, capsys):
        assert main(["obs", "TRACE.jsonl"]) == 0
        out = capsys.readouterr().out
        assert "cli.lockrange" in out
        assert "lockrange" in out
        assert "per-span totals:" in out
        # Tree indentation: the solve span sits under the CLI root.
        tree_lines = [l for l in out.splitlines() if "* ladder" in l]
        assert tree_lines and tree_lines[0].startswith("  ")

    def test_validate_mode(self, traced_run, capsys):
        code = main(
            ["obs", "TRACE.jsonl", "--validate", "--obs-report", "OBS_REPORT.json"]
        )
        assert code == 0
        assert "valid" in capsys.readouterr().out

    def test_validate_rejects_garbage(self, clean_obs, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "bad.jsonl").write_text('{"trace": "nope"}\n')
        assert main(["obs", "bad.jsonl", "--validate"]) == 1

    def test_render_missing_file_fails_cleanly(self, clean_obs, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["obs", "missing.jsonl"]) == 1

    def test_rendering_does_not_overwrite_the_trace(self, traced_run):
        # Regression: the obs positional must not collide with the global
        # --trace flag (which would re-enable tracing and clobber the file).
        before = (traced_run / "TRACE.jsonl").read_bytes()
        assert main(["obs", "TRACE.jsonl"]) == 0
        assert (traced_run / "TRACE.jsonl").read_bytes() == before


class TestLogJson:
    def test_warnings_become_json_lines(self, clean_obs, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        # An out-of-range injection frequency drops per-point solves, which
        # record faults; under a ladder the first occurrence warns.
        main(
            [
                "--log-json",
                "locks",
                "--oscillator",
                "tanh",
                "--vi",
                "0.03",
                "--n",
                "3",
                "--finj",
                "490k",
            ]
        )
        err = capsys.readouterr().err
        records = [json.loads(line) for line in err.splitlines() if line]
        assert all("event" in r and "level" in r for r in records)


class TestCacheCommand:
    def test_stats_lists_counters_and_root(self, clean_obs, capsys):
        assert main(["cache", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "cache root:" in out
        assert "records on disk:" in out
        for stat in ("hits", "misses", "corrupt", "puts"):
            assert f"this process {stat}:" in out

    def test_clear_empties_the_store(self, clean_obs, capsys):
        # Populate the (test-session-scoped, isolated) cache first.
        main(["lockrange", "--oscillator", "tanh", "--vi", "0.05", "--n", "3"])
        capsys.readouterr()
        assert main(["cache", "--clear"]) == 0
        assert "cache cleared" in capsys.readouterr().out
        assert main(["cache", "--stats"]) == 0
        assert "records on disk: 0" in capsys.readouterr().out
