"""Solver telemetry: HB span attributes, ladder rungs, fault counters."""

from __future__ import annotations

import logging

import pytest

from repro.core.harmonic_balance import hb_natural_oscillation
from repro.obs import convergence_event, events_active, metrics, trace, tracer
from repro.robust.diagnostics import SolveDiagnostics, collecting, record_fault
from repro.robust.faults import SolveFault
from repro.robust.ladder import EscalationPolicy, Rung, run_ladder


class TestHbTelemetry:
    def test_hb_span_carries_iterations_and_residual(
        self, clean_obs, tanh_nonlinearity, demo_tank
    ):
        tracer.enable()
        solution = hb_natural_oscillation(
            tanh_nonlinearity, demo_tank, k_max=3, n_samples=128
        )
        spans = {r["name"]: r for r in tracer.records()}
        hb = spans["hb.natural"]
        assert hb["attrs"]["iterations"] == solution.iterations
        assert hb["attrs"]["residual_norm"] == pytest.approx(
            solution.residual_norm, abs=1e-18
        )
        newton_events = [
            e for e in hb.get("events", ()) if e["name"] == "hb-newton"
        ]
        assert len(newton_events) == solution.iterations
        assert newton_events[0]["iteration"] == 1
        assert "residual" in newton_events[0]

    def test_hb_metrics_families(self, clean_obs, tanh_nonlinearity, demo_tank):
        hb_natural_oscillation(tanh_nonlinearity, demo_tank, k_max=3, n_samples=128)
        assert metrics.counter("hb.solves", kind="natural") == 1
        snapshot = metrics.snapshot()
        iters = snapshot["histograms"]["hb.iterations{kind=natural}"]
        assert iters["count"] == 1
        assert iters["min"] >= 1
        assert "hb.residual_norm{kind=natural}" in snapshot["histograms"]

    def test_untraced_solve_records_no_spans(
        self, clean_obs, tanh_nonlinearity, demo_tank
    ):
        hb_natural_oscillation(tanh_nonlinearity, demo_tank, k_max=3, n_samples=128)
        assert tracer.records() == []


class TestConvergenceEvents:
    def test_inactive_without_tracing(self, clean_obs):
        assert not events_active()
        convergence_event("ignored", value=1)  # must be a silent no-op

    def test_events_attach_to_the_current_span(self, clean_obs):
        tracer.enable()
        assert events_active()
        with trace("solve"):
            convergence_event("step", iteration=1, residual=0.5)
        (record,) = tracer.records()
        (event,) = record["events"]
        assert event["name"] == "step"
        assert event["iteration"] == 1


class TestLadderTelemetry:
    @staticmethod
    def _policy():
        return EscalationPolicy(
            "test-stage",
            (
                Rung("baseline", "first try", {}),
                Rung("retry", "second try", {"n": 2}),
            ),
        )

    def test_recovery_counters_and_rung_spans(self, clean_obs):
        from repro.robust.faults import NumericalFaultError

        calls = {"count": 0}

        def attempt(params):
            calls["count"] += 1
            if calls["count"] == 1:
                raise NumericalFaultError(
                    SolveFault("non-finite-samples", "test-stage", "injected")
                )
            return "answer"

        tracer.enable()
        result = run_ladder(self._policy(), attempt)
        assert result.value == "answer"
        assert result.diagnostics.recovered_via == "retry"
        assert (
            metrics.counter(
                "ladder.attempts", stage="test-stage", rung="baseline", outcome="fault"
            )
            == 1
        )
        assert (
            metrics.counter(
                "ladder.attempts", stage="test-stage", rung="retry", outcome="ok"
            )
            == 1
        )
        assert metrics.counter("ladder.recoveries", stage="test-stage", rung="retry") == 1
        rungs = [r for r in tracer.records() if r["name"] == "rung"]
        assert [r["attrs"]["outcome"] for r in rungs] == ["fault", "ok"]
        (ladder,) = [r for r in tracer.records() if r["name"] == "ladder"]
        assert ladder["attrs"]["outcome"] == "ok"
        assert ladder["attrs"]["rung"] == "retry"

    def test_exhaustion_counter(self, clean_obs):
        from repro.robust.faults import NumericalFaultError

        def attempt(params):
            raise NumericalFaultError(
                SolveFault("non-finite-samples", "test-stage", "always")
            )

        with pytest.raises(NumericalFaultError):
            run_ladder(self._policy(), attempt)
        assert metrics.counter("ladder.exhausted", stage="test-stage") == 1


class TestFaultTelemetry:
    def test_every_fault_bumps_the_kind_counter(self, clean_obs):
        record_fault(SolveFault("no-lock", "lock-range", "standalone"))
        assert (
            metrics.counter("faults.recorded", kind="no-lock", stage="lock-range")
            == 1
        )

    def test_first_occurrence_warns_repeats_stay_silent(self, clean_obs, caplog):
        diagnostics = SolveDiagnostics(stage="lock-range")
        with caplog.at_level(logging.WARNING, logger="repro.robust.diagnostics"):
            with collecting(diagnostics):
                record_fault(
                    SolveFault("phase-inversion-out-of-range", "lock-range", "p1")
                )
                record_fault(
                    SolveFault("phase-inversion-out-of-range", "lock-range", "p2")
                )
        warnings = [r for r in caplog.records if "solve.fault" in r.getMessage()]
        assert len(warnings) == 1
        assert "phase-inversion-out-of-range" in warnings[0].getMessage()
        # Both observations were still coalesced onto the diagnostics.
        (fault,) = diagnostics.faults
        assert fault.count == 2

    def test_fault_event_lands_in_the_trace(self, clean_obs):
        tracer.enable()
        with trace("sweep"):
            record_fault(SolveFault("curve-missing", "lock-range", "gone"))
        (record,) = tracer.records()
        (event,) = record["events"]
        assert event["name"] == "fault"
        assert event["kind"] == "curve-missing"
