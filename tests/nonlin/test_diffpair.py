"""Tests for the cross-coupled diff-pair analytic law."""

import numpy as np
import pytest

from repro.nonlin import CrossCoupledDiffPair


class TestCrossCoupledDiffPair:
    def test_odd_symmetry(self):
        f = CrossCoupledDiffPair(i_ee=5e-4)
        v = np.linspace(-0.5, 0.5, 41)
        assert np.allclose(f(v), -f(-v))

    def test_saturation_is_half_tail_current(self):
        f = CrossCoupledDiffPair(i_ee=5e-4, alpha=1.0)
        assert float(f(np.asarray(10.0))) == pytest.approx(-2.5e-4, rel=1e-9)
        assert f.saturation_current() == pytest.approx(2.5e-4)

    def test_startup_gm_is_quarter(self):
        # The cross-coupled pair's small-signal conductance is -gm/2 with
        # gm = (I_EE/2)/V_T, i.e. -I_EE/(4 V_T).
        f = CrossCoupledDiffPair(i_ee=5e-4, v_t=0.025)
        assert f.startup_gm() == pytest.approx(5e-4 / (4 * 0.025))
        assert float(f.derivative(np.asarray(0.0))) == pytest.approx(-f.startup_gm())

    def test_min_tank_resistance(self):
        f = CrossCoupledDiffPair(i_ee=5e-4, v_t=0.025)
        assert f.min_tank_resistance() == pytest.approx(1.0 / f.startup_gm())

    def test_alpha_scales_everything(self):
        ideal = CrossCoupledDiffPair(i_ee=5e-4, alpha=1.0)
        lossy = CrossCoupledDiffPair(i_ee=5e-4, alpha=0.99)
        v = np.linspace(-0.3, 0.3, 11)
        assert np.allclose(lossy(v), 0.99 * ideal(v))

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            CrossCoupledDiffPair(alpha=1.5)
        with pytest.raises(ValueError):
            CrossCoupledDiffPair(alpha=0.0)

    def test_matches_spice_extraction_in_tanh_region(self):
        # Cross-check the closed form against the MNA simulator's DC sweep
        # (moderate |v| where base-collector junctions stay off).
        from repro.nonlin import extract_iv_curve
        from repro.spice import Circuit

        i_ee = 2e-4
        ckt = Circuit("dp-cell")
        ckt.add_voltage_source("VCM", "ncr", "0", 5.0)
        ckt.add_voltage_source("VX", "ncl", "ncr", 0.0)
        ckt.add_bjt("Q1", "ncl", "ncr", "e")
        ckt.add_bjt("Q2", "ncr", "ncl", "e")
        ckt.add_current_source("IEE", "e", "0", i_ee)
        table = extract_iv_curve(ckt, "VX", -0.3, 0.3, 61)
        recentred = table.shifted(0.0)
        analytic = CrossCoupledDiffPair(i_ee=i_ee)
        v = np.linspace(-0.25, 0.25, 11)
        extracted = np.array([float(recentred(np.asarray(x))) for x in v])
        # Finite beta contributes ~1% corrections.
        assert np.allclose(extracted, analytic(v), atol=0.02 * i_ee)
