"""Tests for the Nonlinearity interface and wrappers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.nonlin import FunctionNonlinearity, NegativeTanh


class TestFunctionNonlinearity:
    def test_wraps_callable(self):
        f = FunctionNonlinearity(lambda v: -2.0 * v, name="lin")
        assert f(np.asarray(1.5)) == pytest.approx(-3.0)
        assert f.name == "lin"

    def test_rejects_non_callable(self):
        with pytest.raises(TypeError):
            FunctionNonlinearity(42)

    def test_rejects_non_callable_derivative(self):
        with pytest.raises(TypeError):
            FunctionNonlinearity(lambda v: v, dfunc=1.0)

    def test_numeric_derivative_matches_analytic(self):
        f = FunctionNonlinearity(lambda v: np.sin(v))
        v = np.linspace(-2.0, 2.0, 17)
        assert np.allclose(f.derivative(v), np.cos(v), atol=1e-8)

    def test_explicit_derivative_used(self):
        f = FunctionNonlinearity(lambda v: v**2, dfunc=lambda v: np.full_like(v, 7.0))
        assert float(f.derivative(np.asarray(1.0))) == 7.0

    def test_vectorised(self):
        f = FunctionNonlinearity(lambda v: -v)
        out = f(np.ones((3, 4)))
        assert out.shape == (3, 4)


class TestNegativeResistanceChecks:
    def test_tanh_is_negative_resistance_at_origin(self):
        assert NegativeTanh().is_negative_resistance()

    def test_tanh_not_negative_resistance_in_saturation(self):
        f = NegativeTanh(gm=1e-3, i_sat=1e-3)
        # Deep in saturation the slope approaches zero from below; it is
        # still (weakly) negative but tiny.
        assert abs(f.small_signal_conductance(100.0)) < 1e-6

    def test_small_signal_conductance_value(self):
        f = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        assert f.small_signal_conductance(0.0) == pytest.approx(-2.5e-3)


class TestShifted:
    def test_shift_passes_through_origin(self):
        f = NegativeTanh(gm=1e-3, i_sat=1e-3)
        g = f.shifted(0.3)
        assert float(g(np.asarray(0.0))) == pytest.approx(0.0, abs=1e-18)

    def test_shift_preserves_slope(self):
        f = NegativeTanh(gm=1e-3, i_sat=1e-3)
        g = f.shifted(0.3)
        assert float(g.derivative(np.asarray(0.0))) == pytest.approx(
            float(f.derivative(np.asarray(0.3)))
        )

    def test_explicit_i_bias(self):
        f = NegativeTanh(gm=1e-3, i_sat=1e-3)
        g = f.shifted(0.0, i_bias=1e-4)
        assert float(g(np.asarray(0.0))) == pytest.approx(-1e-4)

    @given(st.floats(min_value=-0.5, max_value=0.5))
    def test_shift_is_translation(self, v):
        f = NegativeTanh(gm=1e-3, i_sat=1e-3)
        g = f.shifted(0.2)
        expected = float(f(np.asarray(v + 0.2))) - float(f(np.asarray(0.2)))
        assert float(g(np.asarray(v))) == pytest.approx(expected, abs=1e-15)
