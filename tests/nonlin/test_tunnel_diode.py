"""Tests for the appendix VI-C tunnel diode model."""

import numpy as np
import pytest

from repro.nonlin import BiasedTunnelDiode, TunnelDiode


class TestTunnelDiode:
    def test_components_sum(self):
        d = TunnelDiode()
        v = np.linspace(0.0, 0.6, 31)
        assert np.allclose(d(v), d.tunnel_current(v) + d.diode_current(v))

    def test_paper_defaults(self):
        d = TunnelDiode()
        assert d.i_s == 1e-12
        assert d.eta == 1.0
        assert d.v_th == 0.025
        assert d.m == 2.0
        assert d.v0 == 0.2
        assert d.r0 == 1000.0

    def test_ohmic_region_slope(self):
        # Near v = 0 the tunnel branch behaves like 1/R0.
        d = TunnelDiode()
        assert float(d.derivative(np.asarray(0.0))) == pytest.approx(
            1.0 / 1000.0, rel=1e-6
        )

    def test_peak_voltage_formula(self):
        # For m = 2 the pure tunnel-branch peak is V0/sqrt(2); the junction
        # current shifts it negligibly.
        d = TunnelDiode()
        assert d.peak_voltage() == pytest.approx(0.2 / np.sqrt(2.0), rel=1e-3)

    def test_valley_exists_past_peak(self):
        d = TunnelDiode()
        assert d.valley_voltage() > d.peak_voltage()

    def test_ndr_between_peak_and_valley(self):
        d = TunnelDiode()
        v_mid = d.ndr_center()
        assert float(d.derivative(np.asarray(v_mid))) < 0.0

    def test_positive_resistance_outside_ndr(self):
        d = TunnelDiode()
        assert float(d.derivative(np.asarray(0.05))) > 0.0
        assert float(d.derivative(np.asarray(0.55))) > 0.0

    def test_derivative_matches_numeric(self):
        d = TunnelDiode()
        v = np.linspace(0.01, 0.55, 25)
        h = 1e-8
        numeric = (d(v + h) - d(v - h)) / (2 * h)
        assert np.allclose(d.derivative(v), numeric, rtol=1e-5)

    def test_no_overflow_at_extreme_voltages(self):
        d = TunnelDiode()
        out = d(np.asarray([-100.0, 100.0]))
        assert np.all(np.isfinite(out))

    def test_paper_bias_point_is_ndr(self):
        # Fig. 16: "the tunnel diode acts as a negative resistance for
        # operating points near 0.25 V".
        d = TunnelDiode()
        assert float(d.derivative(np.asarray(0.25))) < 0.0


class TestBiasedTunnelDiode:
    def test_passes_through_origin(self):
        b = BiasedTunnelDiode(v_bias=0.25)
        assert float(b(np.asarray(0.0))) == pytest.approx(0.0, abs=1e-18)

    def test_is_shifted_copy(self):
        d = TunnelDiode()
        b = BiasedTunnelDiode(diode=d, v_bias=0.25)
        v = np.linspace(-0.2, 0.2, 21)
        assert np.allclose(b(v), d(v + 0.25) - d(np.asarray(0.25)))

    def test_negative_resistance_at_origin(self):
        b = BiasedTunnelDiode(v_bias=0.25)
        assert b.is_negative_resistance()

    def test_derivative_consistent(self):
        b = BiasedTunnelDiode(v_bias=0.25)
        d = TunnelDiode()
        assert float(b.derivative(np.asarray(0.1))) == pytest.approx(
            float(d.derivative(np.asarray(0.35)))
        )
