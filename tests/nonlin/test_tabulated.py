"""Tests for tabulated nonlinearities (PCHIP and linear-table)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.nonlin import NegativeTanh, TabulatedNonlinearity
from repro.nonlin.tabulated import LinearTableNonlinearity


def _tanh_table(extrapolation="linear", n=101):
    f = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
    v = np.linspace(-1.0, 1.0, n)
    return TabulatedNonlinearity(v, f(v), extrapolation=extrapolation), f


class TestTabulatedNonlinearity:
    def test_reproduces_samples_exactly(self):
        table, f = _tanh_table()
        v = np.linspace(-1.0, 1.0, 101)
        assert np.allclose(table(v), f(v), atol=1e-15)

    def test_interpolation_accuracy_between_samples(self):
        table, f = _tanh_table()
        assert table.max_abs_error_against(f) < 1e-6

    def test_derivative_close_to_truth(self):
        table, f = _tanh_table(n=201)
        v = np.linspace(-0.8, 0.8, 37)
        assert np.allclose(table.derivative(v), f.derivative(v), atol=2e-5)

    def test_scalar_in_scalar_out(self):
        table, _ = _tanh_table()
        assert isinstance(table(0.25), float)
        assert isinstance(table.derivative(0.25), float)

    def test_linear_extrapolation_continues_end_slope(self):
        table, _ = _tanh_table()
        inside = table(1.0)
        slope = table.derivative(1.0)
        assert table(1.5) == pytest.approx(inside + 0.5 * slope, rel=1e-9)

    def test_clamp_extrapolation_holds_value(self):
        table, _ = _tanh_table(extrapolation="clamp")
        assert table(5.0) == pytest.approx(table(1.0))
        assert table.derivative(5.0) == 0.0

    def test_raise_extrapolation_raises(self):
        table, _ = _tanh_table(extrapolation="raise")
        with pytest.raises(ValueError, match="outside"):
            table(2.0)
        with pytest.raises(ValueError, match="outside"):
            table.derivative(2.0)

    def test_rejects_too_few_samples(self):
        with pytest.raises(ValueError, match="4 samples"):
            TabulatedNonlinearity(np.array([0.0, 1.0, 2.0]), np.zeros(3))

    def test_rejects_unknown_extrapolation(self):
        with pytest.raises(ValueError, match="extrapolation"):
            _tanh_table(extrapolation="wild")

    def test_rejects_nonmonotonic_v(self):
        with pytest.raises(ValueError):
            TabulatedNonlinearity(np.array([0.0, 2.0, 1.0, 3.0]), np.zeros(4))

    def test_samples_are_readonly(self):
        table, _ = _tanh_table()
        with pytest.raises(ValueError):
            table.v_samples[0] = 99.0

    def test_domain(self):
        table, _ = _tanh_table()
        assert table.domain == (-1.0, 1.0)

    def test_pchip_does_not_overshoot_monotone_data(self):
        # Monotone-decreasing samples must give a monotone interpolant —
        # spurious wiggles would invent fake NDR regions.
        table, _ = _tanh_table(n=21)
        v = np.linspace(-1.0, 1.0, 2001)
        i = table(v)
        assert np.all(np.diff(i) <= 1e-15)


class TestLinearTableNonlinearity:
    def test_from_nonlinearity_accuracy(self):
        f = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        lin = LinearTableNonlinearity.from_nonlinearity(f, -1.0, 1.0, 4097)
        v = np.linspace(-0.9, 0.9, 301)
        assert np.max(np.abs(lin(v) - f(v))) < 1e-9

    def test_linear_extrapolation(self):
        lin = LinearTableNonlinearity(np.array([0.0, 1.0]), np.array([0.0, 2.0]))
        assert float(lin(np.asarray(2.0))) == pytest.approx(4.0)
        assert float(lin(np.asarray(-1.0))) == pytest.approx(-2.0)

    def test_resampled_linear_matches_pchip_table(self):
        table, f = _tanh_table(n=201)
        lin = table.resampled_linear(8193)
        v = np.linspace(-0.9, 0.9, 101)
        assert np.max(np.abs(lin(v) - table(v))) < 1e-8

    def test_derivative_reasonable(self):
        f = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        lin = LinearTableNonlinearity.from_nonlinearity(f, -1.0, 1.0, 8193)
        assert float(lin.derivative(np.asarray(0.0))) == pytest.approx(-2.5e-3, rel=1e-4)

    @given(st.floats(min_value=-0.95, max_value=0.95))
    def test_between_bracketing_samples(self, v):
        f = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        lin = LinearTableNonlinearity.from_nonlinearity(f, -1.0, 1.0, 513)
        value = float(lin(np.asarray(v)))
        lo = float(f(np.asarray(v - 0.005)))
        hi = float(f(np.asarray(v + 0.005)))
        assert min(lo, hi) - 1e-12 <= value <= max(lo, hi) + 1e-12
