"""Tests for the analytic nonlinearity models."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.nonlin import (
    CubicNonlinearity,
    NegativeTanh,
    PiecewiseLinearNegativeResistance,
)


class TestNegativeTanh:
    def test_odd_symmetry(self):
        f = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        v = np.linspace(-2, 2, 41)
        assert np.allclose(f(v), -f(-v))

    def test_saturation_level(self):
        f = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        assert float(f(np.asarray(100.0))) == pytest.approx(-1e-3, rel=1e-9)

    def test_derivative_matches_numeric(self):
        f = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        v = np.linspace(-1, 1, 21)
        h = 1e-7
        numeric = (f(v + h) - f(v - h)) / (2 * h)
        assert np.allclose(f.derivative(v), numeric, rtol=1e-6)

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            NegativeTanh(gm=0.0)
        with pytest.raises(ValueError):
            NegativeTanh(i_sat=-1.0)


class TestCubic:
    def test_shape(self):
        f = CubicNonlinearity(a=1e-3, b=1e-3)
        assert float(f(np.asarray(0.0))) == 0.0
        # Negative slope at origin, positive restoring at large v.
        assert float(f.derivative(np.asarray(0.0))) < 0.0
        assert float(f(np.asarray(10.0))) > 0.0

    def test_natural_amplitude_formula(self):
        f = CubicNonlinearity(a=2.5e-3, b=1e-3)
        a = f.natural_amplitude(1000.0)
        # A = 2 sqrt((a - 1/R) / (3 b))
        assert a == pytest.approx(2.0 * np.sqrt((2.5e-3 - 1e-3) / (3e-3)))

    def test_natural_amplitude_requires_startup(self):
        f = CubicNonlinearity(a=1e-3, b=1e-3)
        with pytest.raises(ValueError, match="no oscillation"):
            f.natural_amplitude(500.0)  # 1/R = 2e-3 > a

    @given(st.floats(min_value=1.1e-3, max_value=1e-2))
    def test_amplitude_grows_with_a(self, a):
        f = CubicNonlinearity(a=a, b=1e-3)
        f_weaker = CubicNonlinearity(a=1.05e-3, b=1e-3)
        assert f.natural_amplitude(1000.0) >= f_weaker.natural_amplitude(1000.0)


class TestPiecewiseLinear:
    def test_linear_region(self):
        f = PiecewiseLinearNegativeResistance(g=1e-3, v_knee=0.1)
        assert float(f(np.asarray(0.05))) == pytest.approx(-5e-5)

    def test_saturated_region(self):
        f = PiecewiseLinearNegativeResistance(g=1e-3, v_knee=0.1)
        assert float(f(np.asarray(5.0))) == pytest.approx(-1e-4)

    def test_derivative_zero_outside_knee(self):
        f = PiecewiseLinearNegativeResistance(g=1e-3, v_knee=0.1)
        assert float(f.derivative(np.asarray(0.2))) == 0.0
        assert float(f.derivative(np.asarray(0.05))) == pytest.approx(-1e-3)

    def test_fundamental_gain_inside_linear_region(self):
        f = PiecewiseLinearNegativeResistance(g=1e-3, v_knee=0.1)
        assert f.fundamental_gain(0.05) == pytest.approx(1e-3)

    def test_fundamental_gain_classic_formula(self):
        f = PiecewiseLinearNegativeResistance(g=1e-3, v_knee=0.1)
        amplitude = 0.5
        k = 0.1 / amplitude
        expected = 1e-3 * (2 / np.pi) * (np.arcsin(k) + k * np.sqrt(1 - k * k))
        assert f.fundamental_gain(amplitude) == pytest.approx(expected)

    def test_fundamental_gain_decreases_with_amplitude(self):
        f = PiecewiseLinearNegativeResistance(g=1e-3, v_knee=0.1)
        gains = [f.fundamental_gain(a) for a in (0.1, 0.2, 0.5, 1.0, 2.0)]
        assert all(g1 >= g2 for g1, g2 in zip(gains, gains[1:]))
