"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_natural_defaults(self):
        args = build_parser().parse_args(["natural", "--oscillator", "tanh"])
        assert args.oscillator == "tanh"

    def test_locks_options(self):
        args = build_parser().parse_args(
            ["locks", "--oscillator", "tanh", "--vi", "0.05", "--n", "5"]
        )
        assert args.n == 5
        assert args.vi == "0.05"


class TestCommands:
    def test_natural_tanh(self, capsys):
        assert main(["natural", "--oscillator", "tanh"]) == 0
        out = capsys.readouterr().out
        assert "1.208" in out
        assert "stable" in out

    def test_natural_custom(self, capsys):
        code = main(
            ["natural", "--gm", "2.5m", "--isat", "1m",
             "--r", "1k", "--l", "100u", "--c", "10n"]
        )
        assert code == 0
        assert "159.2 kHz" in capsys.readouterr().out

    def test_custom_requires_full_tank(self):
        with pytest.raises(SystemExit):
            main(["natural", "--gm", "2.5m", "--isat", "1m", "--r", "1k"])

    def test_locks_inside_range(self, capsys):
        code = main(["locks", "--oscillator", "tanh", "--vi", "0.03", "--n", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "stable" in out
        assert "multiple of n = 3" in out

    def test_locks_outside_range_exit_code(self, capsys):
        code = main(
            ["locks", "--oscillator", "tanh", "--vi", "0.03", "--n", "3",
             "--finj", "490k"]
        )
        assert code == 1
        assert "outside the lock range" in capsys.readouterr().out

    def test_lockrange_tanh(self, capsys):
        assert main(["lockrange", "--oscillator", "tanh"]) == 0
        out = capsys.readouterr().out
        assert "lock range width" in out
        assert "boundary tank phase" in out

    def test_experiment_dispatch(self, capsys):
        assert main(["experiment", "FIG6"]) == 0
        assert "RLC tank transfer function" in capsys.readouterr().out

    def test_experiment_unknown_id(self):
        with pytest.raises(KeyError):
            main(["experiment", "FIG99"])


class TestMethodAndProfile:
    def test_lockrange_method_dense(self, capsys):
        assert main(["lockrange", "--oscillator", "tanh", "--method", "dense"]) == 0
        assert "lock range width" in capsys.readouterr().out

    def test_locks_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["locks", "--oscillator", "tanh", "--method", "magic"]
            )

    def test_profile_writes_bench_json(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["--profile", "lockrange", "--oscillator", "tanh"]) == 0
        out = capsys.readouterr().out
        path = tmp_path / "BENCH_LOCKRANGE.json"
        assert path.exists()
        assert "profile written to" in out
        record = json.loads(path.read_text())
        assert record["bench"] == "LOCKRANGE"
        assert record["exit_code"] == 0
        assert record["argv"] == ["--profile", "lockrange", "--oscillator", "tanh"]
        assert "characterize" in record["phases"]
        assert {"hits", "misses"} <= set(record["cache"])


class TestCacheStats:
    def test_stats_report_legacy_records_separately(
        self, capsys, tmp_path, monkeypatch
    ):
        """Pre-fingerprint records show as 'legacy', not as missing coverage."""
        import numpy as np

        from repro.perf.surface_cache import SurfaceCache

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        cache = SurfaceCache(tmp_path)
        cache.put("ab" * 32, {"coefficients": np.arange(4.0)})
        # Strip the fingerprint from a second record: a legacy store from
        # before output fingerprints existed.
        legacy_key = "cd" * 32
        cache.put(legacy_key, {"coefficients": np.arange(3.0)})
        path = cache.path_for(legacy_key)
        with np.load(path, allow_pickle=False) as record:
            meta = json.loads(str(record["__meta__"]))
            arrays = {
                name: record[name] for name in record.files if name != "__meta__"
            }
        meta.pop("fingerprint")
        np.savez(path, __meta__=np.asarray(json.dumps(meta)), **arrays)

        assert main(["cache", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "records with output fingerprint: 1/1" in out
        assert "legacy pre-fingerprint 1" in out
