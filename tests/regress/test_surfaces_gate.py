"""Tests for the golden surface manifest gate (``repro regress surfaces``)."""

import json
import pathlib

from repro.cli import main
from repro.regress import (
    MANIFEST_CASES,
    compute_manifest,
    diff_manifest,
    load_manifest,
    write_manifest,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
COMMITTED_MANIFEST = REPO_ROOT / "tests" / "regress" / "golden" / "manifest.json"


class TestManifestComputation:
    def test_every_declared_case_is_computed(self):
        manifest = compute_manifest()
        assert set(manifest["entries"]) == {c.case_id for c in MANIFEST_CASES}
        for entry in manifest["entries"].values():
            assert len(entry["disk_key"]) == 64
            assert len(entry["fingerprint"]) == 64

    def test_self_diff_is_clean(self):
        manifest = compute_manifest()
        assert diff_manifest(manifest, manifest) == []

    def test_committed_manifest_matches_current_code(self):
        """THE gate: the code computes exactly the pinned surfaces.

        If this fails, the numerics (or the cache-key recipe) drifted:
        either fix the regression or — for an intentional change — regen
        with ``repro regress surfaces --update`` and have the new
        fingerprints reviewed.
        """
        golden = load_manifest(COMMITTED_MANIFEST)
        assert diff_manifest(compute_manifest(), golden) == []


class TestDiffClassification:
    def _golden(self):
        return compute_manifest()

    def test_payload_drift_is_reported_as_payload(self):
        golden = self._golden()
        current = json.loads(json.dumps(golden))
        case = next(iter(current["entries"]))
        current["entries"][case]["fingerprint"] = "0" * 64
        problems = diff_manifest(current, golden)
        assert len(problems) == 1
        assert "PAYLOAD drift" in problems[0]
        assert case in problems[0]

    def test_key_drift_is_reported_as_key(self):
        golden = self._golden()
        current = json.loads(json.dumps(golden))
        case = next(iter(current["entries"]))
        current["entries"][case]["disk_key"] = "f" * 64
        problems = diff_manifest(current, golden)
        assert len(problems) == 1
        assert "KEY drift" in problems[0]

    def test_removed_case_requires_update(self):
        golden = self._golden()
        current = json.loads(json.dumps(golden))
        case = next(iter(current["entries"]))
        del current["entries"][case]
        problems = diff_manifest(current, golden)
        assert any("no longer computed" in p for p in problems)

    def test_unpinned_case_requires_update(self):
        golden = self._golden()
        current = json.loads(json.dumps(golden))
        current["entries"]["new-case"] = dict(
            next(iter(current["entries"].values()))
        )
        problems = diff_manifest(current, golden)
        assert any("not pinned" in p for p in problems)


class TestSurfacesCli:
    def test_mutated_golden_fails_the_gate(self, capsys, tmp_path):
        """Acceptance criterion: a mutated fingerprint exits non-zero."""
        golden = load_manifest(COMMITTED_MANIFEST)
        case = next(iter(golden["entries"]))
        golden["entries"][case]["fingerprint"] = "0" * 64
        mutated = tmp_path / "manifest.json"
        write_manifest(golden, mutated)

        assert main(["regress", "surfaces", "--manifest", str(mutated)]) == 1
        err = capsys.readouterr().err
        assert "PAYLOAD drift" in err
        assert "--update" in err

    def test_update_then_check_round_trips(self, capsys, tmp_path):
        target = tmp_path / "manifest.json"
        assert main(["regress", "surfaces", "--manifest", str(target),
                     "--update"]) == 0
        assert target.exists()
        assert main(["regress", "surfaces", "--manifest", str(target)]) == 0
        out = capsys.readouterr().out
        assert "match the golden manifest" in out

    def test_missing_manifest_points_at_bootstrap(self, capsys, tmp_path):
        missing = tmp_path / "nope.json"
        assert main(["regress", "surfaces", "--manifest", str(missing)]) == 1
        assert "--update" in capsys.readouterr().err
