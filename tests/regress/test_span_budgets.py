"""Tests for the span-budget gate (``repro regress spans``).

The verdict logic (:func:`~repro.regress.spans.evaluate_budgets`) is pure
over telemetry deltas, so most cases here feed synthetic deltas and cost
nothing.  Two tests drive the real gate through the CLI with a single
scenario — one with an impossible budget (the acceptance criterion: a
span-budget overrun exits non-zero) and one with lenient budgets (the
replay machinery itself works end to end, including the trace file).
"""

import pathlib

import pytest

from repro.cli import main
from repro.obs import validate_trace
from repro.regress import SPAN_BUDGETS, SpanBudget, evaluate_budgets


def _verdict(verdicts, name):
    matches = [v for v in verdicts if v.name == name]
    assert len(matches) == 1, f"expected exactly one verdict named {name}"
    return matches[0]


class TestEvaluateBudgets:
    def test_counter_overrun_is_a_violation(self):
        budgets = (SpanBudget("df.evaluations", "counter", "df.evaluations",
                              max=100), )
        verdicts = evaluate_budgets(
            {"df.evaluations{method=fft}": 80, "df.evaluations{method=dense}": 30},
            {}, {}, budgets,
        )
        verdict = _verdict(verdicts, "df.evaluations")
        assert verdict.value == 110  # labelled variants sum
        assert not verdict.ok
        assert "exceeds budget max" in verdict.detail

    def test_counter_within_budget_passes(self):
        budgets = (SpanBudget("hb.solves", "counter", "hb.solves", max=10),)
        verdicts = evaluate_budgets({"hb.solves": 5}, {}, {}, budgets)
        assert _verdict(verdicts, "hb.solves").ok

    def test_histogram_sum_overrun(self):
        budgets = (SpanBudget("hb.iterations", "histogram_sum",
                              "hb.iterations", max=40), )
        verdicts = evaluate_budgets(
            {}, {"hb.iterations{kind=lock}": 35, "hb.iterations{kind=natural}": 10},
            {}, budgets,
        )
        verdict = _verdict(verdicts, "hb.iterations")
        assert verdict.value == 45
        assert not verdict.ok

    def test_ladder_family_budget_catches_any_escalation(self):
        budgets = (SpanBudget("ladder.escalations", "counter", "ladder.",
                              max=0), )
        verdicts = evaluate_budgets(
            {"ladder.attempts{op=lockrange}": 1}, {}, {}, budgets
        )
        assert not _verdict(verdicts, "ladder.escalations").ok

    def test_hit_rate_below_min_is_a_violation(self):
        budgets = (SpanBudget("cache.hit_rate", "hit_rate", "cache", min=0.5),)
        verdicts = evaluate_budgets(
            {"cache.hits": 1, "cache.misses": 9}, {}, {}, budgets
        )
        verdict = _verdict(verdicts, "cache.hit_rate")
        assert verdict.value == pytest.approx(0.1)
        assert not verdict.ok

    def test_hit_rate_skips_when_no_lookups(self):
        budgets = (SpanBudget("cache.hit_rate", "hit_rate", "cache", min=0.5),)
        verdicts = evaluate_budgets({}, {}, {}, budgets)
        verdict = _verdict(verdicts, "cache.hit_rate")
        assert verdict.ok
        assert verdict.value is None
        assert "skipped" in verdict.detail

    def test_span_count_overrun(self):
        budgets = (SpanBudget("spans.characterize", "span_count",
                              "characterize", max=3), )
        verdicts = evaluate_budgets({}, {}, {"characterize": 5}, budgets)
        assert not _verdict(verdicts, "spans.characterize").ok

    def test_unknown_kind_fails_loudly(self):
        budgets = (SpanBudget("x", "nonsense", "x", max=1),)
        verdicts = evaluate_budgets({}, {}, {}, budgets)
        verdict = _verdict(verdicts, "x")
        assert not verdict.ok
        assert "unknown budget kind" in verdict.detail

    def test_declared_budgets_are_well_formed(self):
        """Every shipped budget must have a bound and a known kind."""
        kinds = {"counter", "histogram_sum", "hit_rate", "span_count"}
        for budget in SPAN_BUDGETS:
            assert budget.kind in kinds
            assert budget.max is not None or budget.min is not None


class TestSpanGateCli:
    def test_budget_overrun_exits_nonzero(self, capsys, monkeypatch):
        """Acceptance criterion: a span-budget overrun exits non-zero."""
        import repro.regress.spans as spans_mod

        impossible = (
            SpanBudget("df.evaluations", "counter", "df.evaluations", max=0),
        )
        monkeypatch.setattr(spans_mod, "SPAN_BUDGETS", impossible)
        code = main(["regress", "spans", "--scenario", "tanh-n3-vi030m"])
        assert code == 1
        captured = capsys.readouterr()
        assert "span budgets violated" in captured.err
        assert "exceeds budget max 0" in captured.out

    def test_clean_replay_passes_and_writes_a_valid_trace(
        self, capsys, monkeypatch, tmp_path
    ):
        import repro.regress.spans as spans_mod

        lenient = (
            SpanBudget("df.evaluations", "counter", "df.evaluations",
                       max=10_000_000),
            SpanBudget("ladder.escalations", "counter", "ladder.", max=0),
        )
        monkeypatch.setattr(spans_mod, "SPAN_BUDGETS", lenient)
        trace_out = tmp_path / "replay.jsonl"
        code = main(
            ["regress", "spans", "--scenario", "tanh-n3-vi030m",
             "--trace-out", str(trace_out)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 scenario(s)" in out
        assert "clean" in out
        assert trace_out.exists()
        assert validate_trace(trace_out) == []
