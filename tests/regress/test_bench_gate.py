"""Tests for the BENCH history store and tolerance bands (``repro regress bench``)."""

import json
import pathlib

from repro.cli import main
from repro.regress import append_history, check_bench_file, load_history

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _speed_snapshot(speedup: float = 6.0) -> dict:
    return {
        "bench": "SPEED",
        "schema": 1,
        "methods": {
            "FIG10": {
                "speedup_x": speedup,
                "max_i1_deviation_A": 1e-18,
                "edge_deviation_rel_width": 1e-10,
                "t_warm_characterize_s": 0.003,
            }
        },
    }


def _sweep_snapshot(width_dev: float = 0.0) -> dict:
    return {
        "bench": "SWEEP",
        "schema": 1,
        "grids": {
            "matrix-quick": {
                "speedup_x": 3.0,
                "max_width_deviation_rel": width_dev,
                "status_mismatches": 0,
            }
        },
    }


def _write(tmp_path, name, payload) -> pathlib.Path:
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


class TestHistoryStore:
    def test_append_and_load_round_trip(self, tmp_path):
        snap = _write(tmp_path, "BENCH_SPEED.json", _speed_snapshot())
        hist = tmp_path / "history"
        target = append_history(snap, history_dir=hist)
        assert target == hist / "SPEED.jsonl"
        entries = load_history("SPEED", hist)
        assert len(entries) == 1
        assert entries[0]["groups"]["FIG10"]["speedup_x"] == 6.0
        assert entries[0]["source"] == "BENCH_SPEED.json"

    def test_half_written_lines_are_skipped(self, tmp_path):
        hist = tmp_path / "history"
        snap = _write(tmp_path, "BENCH_SPEED.json", _speed_snapshot())
        append_history(snap, history_dir=hist)
        with (hist / "SPEED.jsonl").open("a") as handle:
            handle.write('{"bench": "SPEED", "gro')  # crashed CI job
        assert len(load_history("SPEED", hist)) == 1


class TestToleranceBands:
    def test_no_history_passes_on_absolute_bounds_alone(self, tmp_path):
        snap = _write(tmp_path, "BENCH_SPEED.json", _speed_snapshot())
        assert check_bench_file(snap, history_dir=tmp_path / "none") == []

    def test_speedup_below_trailing_median_band_fails(self, tmp_path):
        """Acceptance criterion: a metric outside its band is a violation."""
        hist = tmp_path / "history"
        for speedup in (6.0, 6.5, 5.8):
            snap = _write(tmp_path, "BENCH_SPEED.json", _speed_snapshot(speedup))
            append_history(snap, history_dir=hist)
        slow = _write(tmp_path, "BENCH_SPEED.json", _speed_snapshot(2.0))
        problems = check_bench_file(slow, history_dir=hist)
        assert len(problems) == 1
        assert "fell below 0.8x the trailing median" in problems[0]

    def test_speedup_inside_band_passes(self, tmp_path):
        hist = tmp_path / "history"
        snap = _write(tmp_path, "BENCH_SPEED.json", _speed_snapshot(6.0))
        append_history(snap, history_dir=hist)
        ok = _write(tmp_path, "BENCH_SPEED.json", _speed_snapshot(5.5))
        assert check_bench_file(ok, history_dir=hist) == []

    def test_nonzero_width_deviation_fails_without_history(self, tmp_path):
        """Exactness bounds gate the snapshot itself — no history needed."""
        bad = _write(tmp_path, "BENCH_SWEEP.json", _sweep_snapshot(1e-9))
        problems = check_bench_file(bad, history_dir=tmp_path / "none")
        assert len(problems) == 1
        assert "max_width_deviation_rel" in problems[0]
        assert "absolute bound" in problems[0]

    def test_missing_gated_metric_is_a_violation(self, tmp_path):
        snap = _speed_snapshot()
        del snap["methods"]["FIG10"]["speedup_x"]
        path = _write(tmp_path, "BENCH_SPEED.json", snap)
        problems = check_bench_file(path, history_dir=tmp_path / "none")
        assert any("missing or non-numeric" in p for p in problems)

    def test_unknown_bench_family_passes_ungated(self, tmp_path):
        path = _write(
            tmp_path, "BENCH_OTHER.json", {"bench": "OTHER", "things": {}}
        )
        assert check_bench_file(path, history_dir=tmp_path / "none") == []


class TestBenchCli:
    def test_out_of_band_snapshot_exits_nonzero(self, capsys, tmp_path):
        hist = tmp_path / "history"
        snap = _write(tmp_path, "BENCH_SPEED.json", _speed_snapshot(6.0))
        append_history(snap, history_dir=hist)
        slow = _write(tmp_path, "BENCH_SLOW.json", _speed_snapshot(2.0))
        code = main(["regress", "bench", str(slow), "--history", str(hist)])
        assert code == 1
        assert "bench regression" in capsys.readouterr().err

    def test_record_appends_to_history(self, capsys, tmp_path):
        hist = tmp_path / "history"
        snap = _write(tmp_path, "BENCH_SPEED.json", _speed_snapshot())
        code = main(
            ["regress", "bench", str(snap), "--history", str(hist), "--record"]
        )
        assert code == 0
        assert len(load_history("SPEED", hist)) == 1
        assert "appended" in capsys.readouterr().out

    def test_missing_files_are_skipped_not_fatal(self, capsys, tmp_path):
        code = main(
            ["regress", "bench", str(tmp_path / "BENCH_NOPE.json"),
             "--history", str(tmp_path)]
        )
        assert code == 0
        assert "not found (skipped)" in capsys.readouterr().out

    def test_committed_snapshots_pass_their_committed_history(self, capsys):
        """THE gate CI runs on every push, against the committed files."""
        files = [
            str(REPO_ROOT / name)
            for name in (
                "BENCH_SPEED.json",
                "BENCH_TRANSIENT.json",
                "BENCH_SWEEP.json",
            )
        ]
        history = str(REPO_ROOT / "benchmarks" / "results" / "history")
        assert main(["regress", "bench", *files, "--history", history]) == 0
        assert "inside every tolerance band" in capsys.readouterr().out
