"""Golden-string locks on the cross-PR stability contracts.

Two kinds of name/byte contracts outlive any one PR: the surface cache's
disk-key recipe (a silent change cold-starts every deployed cache) and
the v1 trace schema's field names (a silent rename breaks every trace
consumer).  These tests pin both against **literal** strings — not
against the code that generates them — so the only way to change them is
to edit the literals here, which makes the change a reviewed schema
event.

The disk-key literal uses :class:`~repro.nonlin.CubicNonlinearity`
(``i(v) = -a v + b v^3``): its probe-grid samples are a handful of exact
IEEE multiply/adds, bitwise identical on every platform/libm, unlike the
``tanh`` families whose transcendental samples may vary in the last ulp
across libm versions.
"""

import numpy as np

from repro.core.two_tone import surface_disk_key
from repro.nonlin import CubicNonlinearity
from repro.obs.tracing import (
    ACCEPTED_TRACE_SCHEMAS,
    SPAN_RECORD_FIELDS,
    TRACE_HEADER_FIELDS,
    TRACE_SCHEMA_VERSION,
    Tracer,
)
from repro.perf import payload_fingerprint


class TestDiskKeyLock:
    #: Computed once at PR time and frozen.  If this assertion fires, the
    #: cache-key recipe changed: bump the literal only as a deliberate,
    #: documented cache-format migration (every fleet cache cold-starts).
    GOLDEN_KEY = "c6102befecc2523fa1bfbc36c561796b244e40a5a97356474a894fc1bf0fdc72"

    def _key(self):
        return surface_disk_key(
            CubicNonlinearity(a=2.5e-3, b=1e-3),
            np.linspace(0.1, 1.0, 7),
            0.03,
            3,
        )

    def test_disk_key_recipe_is_frozen(self):
        assert self._key() == self.GOLDEN_KEY

    def test_disk_key_is_pure(self):
        assert self._key() == self._key()


class TestPayloadFingerprintLock:
    #: Frozen hash of an exact (integer-valued float64) payload: fires if
    #: the fingerprint domain prefix, the name/hash framing, or the
    #: per-array hashing ever changes — which would silently invalidate
    #: every committed golden manifest.
    GOLDEN_FINGERPRINT = (
        "03fca141e3e349b41bc2dafae6d31a14ab1ab75b7a738bea7623f7289ef0c706"
    )

    def test_fingerprint_recipe_is_frozen(self):
        payload = {
            "coefficients": np.arange(12, dtype=np.float64).reshape(3, 4),
            "amplitudes": np.arange(5, dtype=np.float64) / 4.0,
        }
        assert payload_fingerprint(payload) == self.GOLDEN_FINGERPRINT


class TestTraceSchemaLock:
    def test_schema_version_is_one_point_one(self):
        # v1.1 is the additive stitching revision: trace_id /
        # parent_span_id / process joined the record as optional fields.
        assert TRACE_SCHEMA_VERSION == "1.1"

    def test_v1_traces_still_accepted(self):
        assert ACCEPTED_TRACE_SCHEMAS == (1, "1.1")

    def test_span_record_field_names(self):
        assert SPAN_RECORD_FIELDS == (
            "span_id",
            "parent_id",
            "name",
            "kind",
            "depth",
            "t_start_s",
            "dur_s",
            "trace_id",
            "parent_span_id",
            "process",
            "attrs",
            "events",
        )

    def test_trace_header_field_names(self):
        assert TRACE_HEADER_FIELDS == (
            "trace",
            "schema",
            "epoch_unix_s",
            "spans",
            "dropped",
        )

    def test_emitted_records_match_the_lock(self):
        """A real span/header emits exactly the locked names (no drift
        between the constants and what ``to_record``/``header`` write)."""
        own = Tracer()
        own.set_process("serve")
        own.enable()
        with own.ambient("deadbeefdeadbeef", 7):
            with own.span("outer", attrs={"n": 3}) as span:
                span.event("tick")
                with own.span("inner"):
                    pass
        own.disable()
        records = own.records()
        assert len(records) == 2
        for record in records:
            assert set(record) <= set(SPAN_RECORD_FIELDS)
        # The outer span is a root inside an ambient trace context with a
        # remote parent, carries attrs and events, and the tracer has a
        # process name — so it emits every locked field.
        outer = records[-1]
        assert set(outer) == set(SPAN_RECORD_FIELDS)
        assert outer["trace_id"] == "deadbeefdeadbeef"
        assert outer["parent_span_id"] == 7
        assert outer["process"] == "serve"
        # The child inherits the trace id but not the remote parent link.
        inner = records[0]
        assert inner["trace_id"] == "deadbeefdeadbeef"
        assert "parent_span_id" not in inner
        assert tuple(own.header()) == TRACE_HEADER_FIELDS

    def test_plain_spans_emit_no_stitching_fields(self):
        """Without a trace context or process name, records stay v1-shaped
        byte for byte — CLI traces do not grow fields."""
        own = Tracer()
        own.enable()
        with own.span("solo"):
            pass
        (record,) = own.records()
        assert set(record) == {
            "span_id",
            "parent_id",
            "name",
            "kind",
            "depth",
            "t_start_s",
            "dur_s",
        }
