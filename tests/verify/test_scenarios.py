"""Tier-1 tests for the verification scenario matrix (no solver runs)."""

import dataclasses

import pytest

from repro.tank import ParallelRLC
from repro.verify.scenarios import (
    FAMILIES,
    FULL_EXTRA_SCENARIOS,
    QUICK_SCENARIOS,
    Scenario,
    get_scenario,
    scenario_matrix,
)


class TestCoverageContract:
    """The floor the acceptance criteria promise for every CI run."""

    def test_quick_matrix_size(self):
        assert len(QUICK_SCENARIOS) >= 12

    def test_ids_unique_across_full_matrix(self):
        ids = [s.scenario_id for s in scenario_matrix("full")]
        assert len(ids) == len(set(ids))

    def test_both_paper_oscillators_in_quick(self):
        families = {s.family for s in QUICK_SCENARIOS}
        assert {"diffpair", "tunnel"} <= families

    def test_orders_one_two_three_in_quick(self):
        assert {1, 2, 3} <= {s.n for s in QUICK_SCENARIOS}

    def test_every_family_is_buildable(self):
        for family, builder in FAMILIES.items():
            nonlinearity, tank = builder()
            assert callable(nonlinearity)
            assert tank.center_frequency > 0, family

    def test_full_mode_is_superset(self):
        quick = set(s.scenario_id for s in scenario_matrix("quick"))
        full = set(s.scenario_id for s in scenario_matrix("full"))
        assert quick < full
        assert full - quick == {s.scenario_id for s in FULL_EXTRA_SCENARIOS}


class TestScenarioMechanics:
    def test_matrix_is_deterministic(self):
        assert scenario_matrix("quick") == scenario_matrix("quick")
        assert scenario_matrix("full") == scenario_matrix("full")

    def test_invalid_mode_raises(self):
        with pytest.raises(ValueError, match="mode"):
            scenario_matrix("exhaustive")

    def test_get_scenario_roundtrip(self):
        for scenario in scenario_matrix("full"):
            assert get_scenario(scenario.scenario_id) is scenario

    def test_get_scenario_unknown_raises_with_catalog(self):
        with pytest.raises(KeyError, match="tanh-n3-vi030m"):
            get_scenario("nonsense")

    def test_scenarios_are_frozen(self):
        scenario = QUICK_SCENARIOS[0]
        with pytest.raises(dataclasses.FrozenInstanceError):
            scenario.n = 99

    def test_build_applies_q_scale(self):
        base = Scenario("s", "tanh", 3, 0.03)
        scaled = Scenario("s2", "tanh", 3, 0.03, q_scale=2.0)
        _, tank = base.build()
        _, tank2 = scaled.build()
        assert tank2.r == pytest.approx(2.0 * tank.r)
        # q_scale moves Q but not the centre frequency.
        assert tank2.center_frequency == pytest.approx(tank.center_frequency)

    def test_build_unknown_family_raises(self):
        bogus = Scenario("x", "ring", 1, 0.01)
        with pytest.raises(KeyError, match="ring"):
            bogus.build()

    def test_describe_mentions_the_knobs(self):
        scenario = Scenario("id1", "tanh", 2, 0.04, q_scale=0.5)
        text = scenario.describe()
        assert "id1" in text and "n=2" in text and "0.04" in text and "0.5" in text

    def test_tolerance_overrides_are_per_scenario(self):
        # The diffpair n=1 scenario documents a wider Adler band; the
        # override must stay scoped to that scenario.
        wide = get_scenario("diffpair-n1-vi030m")
        assert wide.tolerances["adler_width_ratio_hi"] > 3.0
        assert "adler_width_ratio_hi" not in get_scenario("tanh-n3-vi030m").tolerances
