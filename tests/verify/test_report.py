"""Tier-1 tests for the verification report and golden-artifact diffing."""

import json

import pytest

from repro.verify.checks import CheckResult, _passfail
from repro.verify.report import (
    ScenarioVerdict,
    VerifyReport,
    diff_against_golden,
    golden_payload,
    write_golden,
)


def _report(statuses, mode="quick"):
    """A report with one scenario holding one check per given status."""
    checks = [
        CheckResult(name=f"check-{i}", status=status, detail=status.lower())
        for i, status in enumerate(statuses)
    ]
    verdict = ScenarioVerdict(
        scenario_id="s1", description="s1: fake", checks=checks, wall_s=1.0
    )
    return VerifyReport(mode=mode, scenarios=[verdict])


class TestCheckResult:
    @pytest.mark.parametrize("status,ok", [
        ("PASS", True), ("SKIP", True), ("FAIL", False), ("ERROR", False),
    ])
    def test_ok_semantics(self, status, ok):
        assert CheckResult("c", status).ok is ok

    def test_passfail_boundary_is_inclusive(self):
        # deviation == tolerance sits inside the declared band.
        assert _passfail("c", 1.0, 1.0).status == "PASS"
        assert _passfail("c", 1.0 + 1e-12, 1.0).status == "FAIL"

    def test_to_dict_round_trips_through_json(self):
        check = _passfail("c", 0.5, 1.0, detail="d")
        again = json.loads(json.dumps(check.to_dict()))
        assert again == {
            "name": "c", "status": "PASS",
            "deviation": 0.5, "tolerance": 1.0, "detail": "d",
        }


class TestVerifyReport:
    def test_summary_counts(self):
        report = _report(["PASS", "PASS", "FAIL", "ERROR", "SKIP"])
        summary = report.summary()
        assert summary["scenarios"] == 1
        assert summary["scenarios_passed"] == 0
        assert summary["checks"] == 5
        assert summary["passed"] == 2
        assert summary["failed"] == 1
        assert summary["errors"] == 1
        assert summary["skipped"] == 1
        assert summary["disagreements"] == 2

    def test_skips_are_not_disagreements(self):
        report = _report(["PASS", "SKIP"])
        assert report.ok
        assert report.disagreements == []

    def test_matrix_checks_count_as_disagreements(self):
        report = _report(["PASS"])
        report.matrix_checks.append(CheckResult("mono", "FAIL"))
        assert not report.ok
        assert report.disagreements == [("matrix", report.matrix_checks[0])]

    def test_write_produces_schema_tagged_json(self, tmp_path):
        report = _report(["PASS", "FAIL"])
        path = report.write(tmp_path / "sub" / "VERIFY_REPORT.json")
        payload = json.loads(path.read_text())
        assert payload["report"] == "VERIFY"
        assert payload["schema"] == 1
        assert payload["mode"] == "quick"
        assert payload["summary"]["disagreements"] == 1
        assert payload["scenarios"][0]["checks"][1]["status"] == "FAIL"

    def test_format_flags_and_hides_passes(self):
        report = _report(["PASS", "FAIL"])
        text = report.format()
        assert text.startswith("XX ")
        assert "check-1" in text       # the failure is listed ...
        assert "check-0" not in text   # ... passing checks are not
        assert "0/1 scenarios clean" in text


class TestGolden:
    def test_payload_is_status_only_and_byte_stable(self):
        report = _report(["PASS", "FAIL", "SKIP"])
        payload = golden_payload(report)
        assert payload["scenarios"]["s1"] == {
            "check-0": "PASS", "check-1": "FAIL", "check-2": "SKIP",
        }
        text = json.dumps(payload, sort_keys=True)
        assert "deviation" not in text and "wall" not in text
        assert json.dumps(golden_payload(_report(["PASS", "FAIL", "SKIP"])),
                          sort_keys=True) == text

    def test_clean_diff(self, tmp_path):
        report = _report(["PASS", "SKIP"])
        path = write_golden(report, tmp_path / "golden.json")
        assert diff_against_golden(report, path) == []

    def test_pass_to_fail_is_a_regression(self, tmp_path):
        path = write_golden(_report(["PASS", "PASS"]), tmp_path / "golden.json")
        regressions = diff_against_golden(_report(["PASS", "FAIL"]), path)
        assert regressions == ["s1/check-1: PASS -> FAIL"]

    def test_improvements_and_new_checks_are_not_regressions(self, tmp_path):
        path = write_golden(_report(["FAIL", "PASS"]), tmp_path / "golden.json")
        better = _report(["PASS", "PASS", "PASS"])  # FAIL fixed + new check
        assert diff_against_golden(better, path) == []

    def test_missing_scenario_flagged_only_for_same_mode(self, tmp_path):
        path = write_golden(_report(["PASS"]), tmp_path / "golden.json")
        empty_same_mode = VerifyReport(mode="quick")
        assert diff_against_golden(empty_same_mode, path) == [
            "s1: scenario missing from run"
        ]
        # A --scenario sub-matrix is tagged "quick-subset" by the harness
        # and must not be blamed for the scenarios it never requested.
        subset = VerifyReport(mode="quick-subset")
        assert diff_against_golden(subset, path) == []

    def test_vanished_check_is_a_regression(self, tmp_path):
        path = write_golden(_report(["PASS", "PASS"]), tmp_path / "golden.json")
        regressions = diff_against_golden(_report(["PASS"]), path)
        assert regressions == ["s1/check-1: PASS -> MISSING"]

    def test_matrix_check_not_blamed_on_subset_runs(self, tmp_path):
        # A --scenario sub-matrix computes the matrix checks over fewer
        # scenarios (often SKIP: no V_i pairs); that is not a regression.
        golden = _report(["PASS"])
        golden.matrix_checks.append(CheckResult("mono", "PASS"))
        path = write_golden(golden, tmp_path / "golden.json")
        subset = _report(["PASS"], mode="quick-subset")
        subset.matrix_checks.append(CheckResult("mono", "SKIP"))
        assert diff_against_golden(subset, path) == []

    def test_matrix_check_regression(self, tmp_path):
        golden = _report(["PASS"])
        golden.matrix_checks.append(CheckResult("mono", "PASS"))
        path = write_golden(golden, tmp_path / "golden.json")
        bad = _report(["PASS"])
        bad.matrix_checks.append(CheckResult("mono", "FAIL"))
        assert diff_against_golden(bad, path) == ["matrix/mono: PASS -> FAIL"]
