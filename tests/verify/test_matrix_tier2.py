"""Tier-2: the full quick verification matrix, end to end.

Slow by design (the quick matrix solves every scenario through both DF
paths plus harmonic balance, ~30-60 s total), so the whole module carries
the ``tier2`` marker and the default run excludes it; CI and developers
run it with ``pytest -m tier2`` or ``python -m repro verify --quick``.
"""

import json
import pathlib

import pytest

from repro.verify import (
    diff_against_golden,
    get_scenario,
    golden_payload,
    run_matrix,
    run_scenario,
)

pytestmark = pytest.mark.tier2

GOLDEN = pathlib.Path(__file__).parent / "golden" / "verify_quick_golden.json"


@pytest.fixture(scope="module")
def quick_report():
    return run_matrix("quick")


class TestQuickMatrix:
    def test_no_confirmed_disagreements(self, quick_report):
        assert quick_report.ok, "\n" + quick_report.format()

    def test_coverage_contract(self, quick_report):
        assert len(quick_report.scenarios) >= 12
        ids = [v.scenario_id for v in quick_report.scenarios]
        families = {get_scenario(i).family for i in ids}
        orders = {get_scenario(i).n for i in ids}
        assert {"diffpair", "tunnel"} <= families
        assert {1, 2, 3} <= orders

    def test_every_scenario_ran_the_full_battery(self, quick_report):
        for verdict in quick_report.scenarios:
            assert len(verdict.checks) == 10, verdict.scenario_id
            assert verdict.wall_s > 0.0
            assert verdict.metrics["lockrange_width_hz"] > 0.0

    def test_report_serialises(self, quick_report, tmp_path):
        path = quick_report.write(tmp_path / "VERIFY_REPORT.json")
        payload = json.loads(path.read_text())
        assert payload["summary"]["disagreements"] == 0
        assert len(payload["scenarios"]) == len(quick_report.scenarios)

    def test_matches_committed_golden(self, quick_report):
        assert GOLDEN.exists(), "run `python -m repro verify --quick --update-golden`"
        regressions = diff_against_golden(quick_report, GOLDEN)
        assert regressions == []


class TestDeterminism:
    def test_scenario_rerun_is_bit_identical(self):
        # Every path is seeded quadrature/Newton work: two runs of the
        # same scenario must agree not just in status but in deviation.
        scenario = get_scenario("tanh-n1-vi030m")
        first = run_scenario(scenario)
        second = run_scenario(scenario)
        assert [c.to_dict() for c in first.checks] == [
            c.to_dict() for c in second.checks
        ]

    def test_subset_run_mode_tag(self):
        report = run_matrix("quick", scenario_ids=["tanh-n1-vi030m"])
        assert report.mode == "quick-subset"
        assert golden_payload(report)["mode"] == "quick-subset"
        if GOLDEN.exists():
            # A deliberate sub-matrix is never blamed for missing scenarios.
            missing = [
                r for r in diff_against_golden(report, GOLDEN) if "missing" in r
            ]
            assert missing == []
