"""Tier-1 unit tests for individual checks, on stubbed artifacts.

The full solvers never run here: lock solutions are hand-built stubs, so
these tests pin down the *comparison logic* — circular phase pairing,
count/stability mismatch reporting, spacing arithmetic, matrix-level
monotonicity — at zero numerical cost.
"""

import types

import numpy as np
import pytest

from repro.verify.checks import (
    DEFAULT_TOLERANCES,
    ScenarioArtifacts,
    check_lock_states_fft_vs_dense,
    check_state_multiplicity,
)
from repro.verify.harness import _check_vi_monotonic
from repro.verify.report import ScenarioVerdict
from repro.verify.scenarios import Scenario


def _lock(phi, amplitude=1.0, stable=True, n=3):
    return types.SimpleNamespace(
        phi=phi,
        amplitude=amplitude,
        stable=stable,
        oscillator_phases=np.asarray(
            [phi / n + 2.0 * np.pi * k / n for k in range(n)]
        ),
    )


def _solution(locks, n=3):
    return types.SimpleNamespace(
        locks=list(locks), n=n, total_states=n * len(locks)
    )


def _artifacts(fft_locks, dense_locks=None, n=3, **tolerances):
    scenario = Scenario("stub", "tanh", n, 0.03, tolerances=dict(tolerances))
    art = ScenarioArtifacts(scenario=scenario, nonlinearity=None, tank=None)
    art.locks_center["fft"] = _solution(fft_locks, n=n)
    if dense_locks is not None:
        art.locks_center["dense"] = _solution(dense_locks, n=n)
    return art


class TestLockStatePairing:
    def test_identical_sets_pass(self):
        locks = [_lock(0.5), _lock(3.6, stable=False)]
        result = check_lock_states_fft_vs_dense(_artifacts(locks, locks))
        assert result.status == "PASS"
        assert result.deviation == pytest.approx(0.0, abs=1e-12)

    def test_wraparound_phases_pair_circularly(self):
        # One solver reports a state at phi ~ 2 pi, the other at phi ~ 0:
        # the same physical state.  Naive order-based pairing would match
        # it against the other lock and report a huge phase error.
        eps = 1e-7
        fft = [_lock(2.0 * np.pi - eps), _lock(2.0)]
        dense = [_lock(eps), _lock(2.0)]
        result = check_lock_states_fft_vs_dense(_artifacts(fft, dense))
        assert result.status == "PASS"
        # Deviation is band-normalised: 2 eps against the 1e-5 rad band.
        assert result.deviation < 0.1

    def test_count_mismatch_fails(self):
        result = check_lock_states_fft_vs_dense(
            _artifacts([_lock(0.5), _lock(3.6)], [_lock(0.5)])
        )
        assert result.status == "FAIL"
        assert "count differs" in result.detail

    def test_stability_mismatch_fails(self):
        fft = [_lock(0.5, stable=True)]
        dense = [_lock(0.5, stable=False)]
        result = check_lock_states_fft_vs_dense(_artifacts(fft, dense))
        assert result.status == "FAIL"
        assert "stability differs" in result.detail

    def test_amplitude_gap_outside_band_fails(self):
        fft = [_lock(0.5, amplitude=1.0)]
        dense = [_lock(0.5, amplitude=1.001)]  # 1e-3 >> 1e-5 band
        result = check_lock_states_fft_vs_dense(_artifacts(fft, dense))
        assert result.status == "FAIL"

    def test_solver_error_reports_error_status(self):
        art = _artifacts([_lock(0.5)], [_lock(0.5)])
        del art.locks_center["dense"]
        art.errors["locks-center-dense"] = RuntimeError("solver blew up")
        result = check_lock_states_fft_vs_dense(art)
        assert result.status == "ERROR"
        assert "solver blew up" in result.detail

    def test_scenario_tolerance_override_applies(self):
        fft = [_lock(0.5, amplitude=1.0)]
        dense = [_lock(0.5, amplitude=1.001)]
        art = _artifacts(fft, dense, lockstates_amp_rel=0.01)
        assert check_lock_states_fft_vs_dense(art).status == "PASS"
        assert "lockstates_amp_rel" in DEFAULT_TOLERANCES


class TestStateMultiplicity:
    def test_exact_spacing_passes(self):
        result = check_state_multiplicity(_artifacts([_lock(0.7), _lock(2.9)]))
        assert result.status == "PASS"

    def test_corrupted_spacing_fails(self):
        lock = _lock(0.7)
        lock.oscillator_phases = lock.oscillator_phases + np.asarray(
            [0.0, 1e-3, 0.0]
        )
        result = check_state_multiplicity(_artifacts([lock]))
        assert result.status == "FAIL"
        assert result.deviation > result.tolerance

    def test_wrong_state_count_fails(self):
        lock = _lock(0.7, n=3)
        lock.oscillator_phases = lock.oscillator_phases[:2]
        art = _artifacts([lock])
        art.locks_center["fft"].total_states = 2
        result = check_state_multiplicity(art)
        assert result.status == "FAIL"


class TestViMonotonicMatrixCheck:
    @staticmethod
    def _entry(family, n, v_i, width):
        scenario = Scenario(f"{family}-n{n}-vi{v_i:g}", family, n, v_i)
        verdict = ScenarioVerdict(
            scenario_id=scenario.scenario_id,
            description=scenario.describe(),
            metrics={"lockrange_width_hz": width},
        )
        return scenario, verdict

    def _run(self, entries):
        scenarios, verdicts = zip(*entries)
        return _check_vi_monotonic(list(verdicts), list(scenarios))

    def test_monotone_family_passes(self):
        result = self._run([
            self._entry("tanh", 3, 0.01, 100.0),
            self._entry("tanh", 3, 0.03, 300.0),
            self._entry("tanh", 3, 0.06, 550.0),
        ])
        assert result.status == "PASS"
        assert "2 adjacent" in result.detail

    def test_groups_are_independent(self):
        # Different (family, n) groups must not be compared against each
        # other even when one family is much wider than the other.
        result = self._run([
            self._entry("tanh", 3, 0.01, 100.0),
            self._entry("tanh", 3, 0.03, 300.0),
            self._entry("tunnel", 3, 0.02, 5.0),
        ])
        assert result.status == "PASS"

    def test_shrinking_width_fails(self):
        result = self._run([
            self._entry("tanh", 3, 0.01, 100.0),
            self._entry("tanh", 3, 0.03, 90.0),
        ])
        assert result.status == "FAIL"
        assert "<=" in result.detail

    def test_no_pairs_skips(self):
        result = self._run([self._entry("tanh", 3, 0.03, 300.0)])
        assert result.status == "SKIP"

    def test_missing_width_drops_scenario_not_check(self):
        entries = [
            self._entry("tanh", 3, 0.01, 100.0),
            self._entry("tanh", 3, 0.03, None),
            self._entry("tanh", 3, 0.06, 550.0),
        ]
        entries[1][1].metrics.pop("lockrange_width_hz")
        result = self._run(entries)
        # 0.01 and 0.06 remain an adjacent pair after the drop.
        assert result.status == "PASS"
        assert "1 adjacent" in result.detail
