"""Shared fixtures: the canonical oscillators at test-friendly settings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nonlin import CubicNonlinearity, NegativeTanh
from repro.tank import ParallelRLC


@pytest.fixture(scope="session")
def tanh_nonlinearity() -> NegativeTanh:
    """The Section III demo nonlinearity."""
    return NegativeTanh(gm=2.5e-3, i_sat=1e-3)


@pytest.fixture(scope="session")
def demo_tank() -> ParallelRLC:
    """The Section III demo tank (Q = 10, f_c ~ 159 kHz)."""
    return ParallelRLC(r=1000.0, l=100e-6, c=10e-9)


@pytest.fixture(scope="session")
def cubic_nonlinearity() -> CubicNonlinearity:
    """Cubic law with closed-form oracles."""
    return CubicNonlinearity(a=2.5e-3, b=1e-3)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for randomised (non-hypothesis) checks."""
    return np.random.default_rng(20140601)  # DAC'14 started June 1, 2014
