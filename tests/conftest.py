"""Shared fixtures: the canonical oscillators at test-friendly settings."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.nonlin import CubicNonlinearity, NegativeTanh
from repro.tank import ParallelRLC

try:
    from hypothesis import settings as _hypothesis_settings
except ImportError:  # pragma: no cover - hypothesis is an optional test dep
    _hypothesis_settings = None

if _hypothesis_settings is not None:
    # Derandomise property tests: examples are derived from each test's
    # source, so two runs of the same tree explore the same inputs and a
    # red/green diff always means a code change, never an unlucky draw.
    _hypothesis_settings.register_profile("repro", derandomize=True)
    _hypothesis_settings.load_profile("repro")


@pytest.fixture(scope="session", autouse=True)
def _isolated_surface_cache(tmp_path_factory):
    """Point the describing-function surface cache at a throwaway root.

    Keeps the suite hermetic (no writes to ``~/.cache``) while still
    exercising the disk cache — warm hits within one test session are
    real.
    """
    root = tmp_path_factory.mktemp("repro-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(root)
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(scope="session")
def tanh_nonlinearity() -> NegativeTanh:
    """The Section III demo nonlinearity."""
    return NegativeTanh(gm=2.5e-3, i_sat=1e-3)


@pytest.fixture(scope="session")
def demo_tank() -> ParallelRLC:
    """The Section III demo tank (Q = 10, f_c ~ 159 kHz)."""
    return ParallelRLC(r=1000.0, l=100e-6, c=10e-9)


@pytest.fixture(scope="session")
def cubic_nonlinearity() -> CubicNonlinearity:
    """Cubic law with closed-form oracles."""
    return CubicNonlinearity(a=2.5e-3, b=1e-3)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for randomised (non-hypothesis) checks."""
    return np.random.default_rng(20140601)  # DAC'14 started June 1, 2014
