"""SPICE-level end-to-end: the paper's full circuits through the MNA engine.

These are the strongest validations in the suite: the transistor-level
(or diode-level) oscillator netlists — no extracted ``f(v)``, no
canonical-ODE shortcut, nothing shared with the prediction path — must
oscillate at the amplitude and frequency the describing-function analysis
predicts from the DC-sweep-extracted nonlinearity.
"""

import numpy as np
import pytest

from repro.experiments.circuits import (
    DIFFPAIR_C,
    DIFFPAIR_L,
    TUNNEL_BIAS,
    TUNNEL_C,
    TUNNEL_L,
    diffpair_oscillator_circuit,
    tunnel_oscillator_circuit,
)
from repro.measure import Waveform, measure_steady_state
from repro.spice import dc_operating_point, transient


class TestDiffpairFullCircuit:
    @pytest.fixture(scope="class")
    def steady_state(self):
        ckt = diffpair_oscillator_circuit()
        system = ckt.build()
        op = dc_operating_point(system)
        # Differential seed on the DC solution replaces start-up noise.
        x0 = op.x.copy()
        x0[system.node_index["ncl"]] += 0.2
        x0[system.node_index["ncr"]] -= 0.2
        f_c = 1.0 / (2 * np.pi * np.sqrt(DIFFPAIR_L * DIFFPAIR_C))
        period = 1.0 / f_c
        result = transient(ckt, t_end=120 * period, dt=period / 96, x0=x0)
        vdiff = result.differential_voltage("ncl", "ncr")
        tail = Waveform(result.t, vdiff).slice_time(80 * period)
        return measure_steady_state(tail, analysis_cycles=15.0)

    def test_amplitude_matches_paper(self, steady_state):
        # Paper Fig. 13: A = 0.505 V; the transistor-level simulation must
        # land on the prediction built from the extracted f(v).
        assert steady_state.amplitude == pytest.approx(0.505, rel=2e-3)

    def test_frequency_near_tank_center(self, steady_state):
        # Paper: 0.5033 MHz (with the small finite-Q downward shift).
        assert steady_state.frequency_hz == pytest.approx(503.3e3, rel=2e-3)
        f_c = 1.0 / (2 * np.pi * np.sqrt(DIFFPAIR_L * DIFFPAIR_C))
        assert steady_state.frequency_hz < f_c  # harmonic feedback shift

    def test_waveform_sinusoidal(self, steady_state):
        assert steady_state.settled
        assert steady_state.thd < 0.05


class TestTunnelFullCircuit:
    @pytest.fixture(scope="class")
    def steady_state(self):
        ckt = tunnel_oscillator_circuit()
        system = ckt.build()
        op = dc_operating_point(system)
        x0 = op.x.copy()
        x0[system.node_index["a"]] += 0.05
        f_c = 1.0 / (2 * np.pi * np.sqrt(TUNNEL_L * TUNNEL_C))
        period = 1.0 / f_c
        # Q = 316: growth from a 50 mV seed takes a few hundred cycles.
        result = transient(ckt, t_end=700 * period, dt=period / 64, x0=x0)
        v = result.voltage("a") - TUNNEL_BIAS
        tail = Waveform(result.t, v).slice_time(620 * period)
        return measure_steady_state(tail, analysis_cycles=25.0)

    def test_bias_point(self):
        op = dc_operating_point(tunnel_oscillator_circuit())
        assert op.voltage("a") == pytest.approx(TUNNEL_BIAS, abs=1e-9)

    def test_amplitude_matches_paper(self, steady_state):
        # Paper Fig. 17: A = 0.199 V.
        assert steady_state.amplitude == pytest.approx(0.199, rel=5e-3)

    def test_frequency_matches_paper(self, steady_state):
        assert steady_state.frequency_hz == pytest.approx(503.3e6, rel=1e-3)

    def test_waveform_sinusoidal(self, steady_state):
        assert steady_state.settled
        assert steady_state.thd < 0.02
