"""Unit tests for the linear/Newton solver layer and MNA assembly."""

import numpy as np
import pytest

from repro.spice import Circuit
from repro.spice.solver import (
    NewtonResult,
    SingularCircuitError,
    newton_solve,
    solve_linear,
)


class TestSolveLinear:
    def test_solves_well_posed_system(self):
        a = np.array([[2.0, 0.0], [0.0, 4.0]])
        x = solve_linear(a, np.array([2.0, 8.0]))
        assert np.allclose(x, [1.0, 2.0])

    def test_singular_raises_descriptively(self):
        with pytest.raises(SingularCircuitError, match="floating"):
            solve_linear(np.zeros((2, 2)), np.ones(2))


class TestNewtonSolve:
    def test_linear_system_converges(self):
        # Step limiting bounds each update to ~max(1, |x|), so a cold
        # start two units away needs a few iterations — but must land
        # exactly.
        a = np.array([[3.0]])
        result = newton_solve(lambda x: a @ x - 6.0, lambda x: a, np.zeros(1))
        assert result.converged
        assert result.x[0] == pytest.approx(2.0)
        assert result.iterations <= 6

    def test_scalar_nonlinear(self):
        result = newton_solve(
            lambda x: np.array([x[0] ** 3 - 8.0]),
            lambda x: np.array([[3.0 * x[0] ** 2]]),
            np.array([1.0]),
        )
        assert result.x[0] == pytest.approx(2.0, rel=1e-9)

    def test_exponential_with_damping(self):
        # diode-like residual from a hopeless start: damping must save it.
        def residual(x):
            return np.array([1e-12 * (np.exp(np.minimum(x[0] / 0.025, 400)) - 1.0) - 1e-3])

        def jacobian(x):
            return np.array([[1e-12 * np.exp(np.minimum(x[0] / 0.025, 400)) / 0.025]])

        result = newton_solve(residual, jacobian, np.array([5.0]), max_iter=300)
        assert result.x[0] == pytest.approx(0.025 * np.log(1e9 + 1.0), rel=1e-6)

    def test_nonconvergent_raises(self):
        # A residual with no root: |x| + 1 = 0.
        with pytest.raises(Exception, match="converge"):
            newton_solve(
                lambda x: np.array([abs(x[0]) + 1.0]),
                lambda x: np.array([[np.sign(x[0]) if x[0] else 1.0]]),
                np.array([1.0]),
                max_iter=10,
            )

    def test_nonconvergent_returns_best_when_allowed(self):
        result = newton_solve(
            lambda x: np.array([abs(x[0]) + 1.0]),
            lambda x: np.array([[np.sign(x[0]) if x[0] else 1.0]]),
            np.array([1.0]),
            max_iter=5,
            require_convergence=False,
        )
        assert isinstance(result, NewtonResult)
        assert not result.converged


class TestMnaAssembly:
    def _system(self):
        ckt = Circuit("rlc + source")
        ckt.add_voltage_source("V1", "a", "0", 1.0)
        ckt.add_resistor("R1", "a", "b", 1e3)
        ckt.add_capacitor("C1", "b", "0", 1e-9)
        ckt.add_inductor("L1", "b", "0", 1e-6)
        return ckt.build()

    def test_sizes(self):
        system = self._system()
        assert system.n_nodes == 2
        assert system.size == 4  # 2 nodes + V branch + L branch

    def test_g_matrix_symmetry_of_passive_part(self):
        # The resistor block of G is symmetric (reciprocity).
        system = self._system()
        a = system.node_index["a"]
        b = system.node_index["b"]
        g = system.g_matrix
        assert g[a, b] == g[b, a]

    def test_residual_zero_at_dc_solution(self):
        from repro.spice import dc_operating_point

        system = self._system()
        op = dc_operating_point(system)
        residual = system.residual(op.x, np.zeros(system.size), 0.0)
        assert np.max(np.abs(residual)) < 1e-9

    def test_source_vector_time_dependence(self):
        from repro.spice.elements.sources import sine

        ckt = Circuit("ac source")
        ckt.add_voltage_source("V1", "a", "0", sine(0.0, 1.0, 1e3))
        ckt.add_resistor("R1", "a", "0", 1.0)
        system = ckt.build()
        s0 = system.source_vector(0.0)
        s_quarter = system.source_vector(0.25e-3)
        assert not np.allclose(s0, s_quarter)

    def test_voltage_accessor_ground(self):
        system = self._system()
        assert system.voltage(np.ones(system.size), "0") == 0.0

    def test_nonlinear_empty_for_linear_circuit(self):
        system = self._system()
        i_nl, j_nl = system.nonlinear(np.ones(system.size))
        assert np.all(i_nl == 0.0)
        assert np.all(j_nl == 0.0)
