"""Tests for mutual inductance (transformer coupling)."""

import numpy as np
import pytest

from repro.spice import Circuit, ac_analysis, parse_netlist
from repro.spice.elements.passives import Inductor, MutualInductance


def _transformer(k=0.5, l1=1e-3, l2=1e-3, r_load=100.0, r_series=1e-3):
    """Voltage-driven primary, resistor-loaded secondary.

    A small series resistance keeps the DC operating point well posed (an
    ideal source directly across an ideal inductor leaves the loop current
    indeterminate).
    """
    ckt = Circuit("transformer")
    ckt.add_voltage_source("Vin", "in", "0", 0.0)
    ckt.add_resistor("Rs", "in", "p", r_series)
    ckt.add_inductor("L1", "p", "0", l1)
    ckt.add_inductor("L2", "s", "0", l2)
    ckt.add_mutual("K1", "L1", "L2", k)
    ckt.add_resistor("RL", "s", "0", r_load)
    return ckt


class TestMutualInductance:
    def test_mutual_value(self):
        la = Inductor("L1", "a", "0", 4e-3)
        lb = Inductor("L2", "b", "0", 1e-3)
        m = MutualInductance("K1", la, lb, 0.5)
        assert m.mutual == pytest.approx(0.5 * 2e-3)

    def test_rejects_self_coupling(self):
        la = Inductor("L1", "a", "0", 1e-3)
        with pytest.raises(ValueError, match="itself"):
            MutualInductance("K1", la, la, 0.5)

    def test_rejects_non_inductors(self):
        from repro.spice.elements.passives import Resistor

        la = Inductor("L1", "a", "0", 1e-3)
        r = Resistor("R1", "a", "0", 1.0)
        with pytest.raises(TypeError):
            MutualInductance("K1", la, r, 0.5)

    def test_rejects_bad_coupling(self):
        la = Inductor("L1", "a", "0", 1e-3)
        lb = Inductor("L2", "b", "0", 1e-3)
        with pytest.raises(ValueError):
            MutualInductance("K1", la, lb, 1.5)
        with pytest.raises(ValueError):
            MutualInductance("K2", la, lb, 0.0)

    def test_ideal_transformer_voltage_ratio(self):
        # k -> 1 with a light load: secondary voltage = sqrt(L2/L1) * V1.
        ckt = _transformer(k=0.9999, l1=4e-3, l2=1e-3, r_load=1e6)
        w = np.asarray([1e5])
        ac = ac_analysis(ckt, "Vin", w)
        ratio = abs(ac.voltage("s")[0]) / abs(ac.voltage("p")[0])
        assert ratio == pytest.approx(0.5, rel=1e-3)

    def test_no_coupling_limit(self):
        # Weak coupling: almost nothing appears on the secondary.
        ckt = _transformer(k=1e-3, r_load=1e3)
        ac = ac_analysis(ckt, "Vin", np.asarray([1e5]))
        assert abs(ac.voltage("s")[0]) < 1e-2

    def test_reflected_impedance_loads_primary(self):
        # A shorted-ish secondary reflects into the primary branch:
        # the primary current rises versus the uncoupled case.
        w = np.asarray([1e5])
        coupled = _transformer(k=0.8, r_load=1.0)
        ac_c = ac_analysis(coupled, "Vin", w)
        i_coupled = abs(ac_c.solutions[0][ac_c.system.branch_index["Vin"]])
        uncoupled = _transformer(k=1e-6, r_load=1.0)
        ac_u = ac_analysis(uncoupled, "Vin", w)
        i_uncoupled = abs(ac_u.solutions[0][ac_u.system.branch_index["Vin"]])
        assert i_coupled > 1.5 * i_uncoupled

    def test_energy_conserving_in_transient(self):
        # Drive the primary with a step through a resistor; with passive
        # elements only, the secondary load dissipates but nothing blows
        # up (TRAP stability with the coupled C-matrix).
        from repro.spice import transient

        ckt = Circuit("transformer transient")
        ckt.add_voltage_source("Vin", "in", "0", 1.0)
        ckt.add_resistor("Rs", "in", "p", 50.0)
        ckt.add_inductor("L1", "p", "0", 1e-3)
        ckt.add_inductor("L2", "s", "0", 1e-3)
        ckt.add_mutual("K1", "L1", "L2", 0.7)
        ckt.add_resistor("RL", "s", "0", 100.0)
        result = transient(ckt, t_end=2e-4, dt=1e-7, skip_dc=True)
        assert np.all(np.isfinite(result.x))
        # DC steady state: inductors short, secondary voltage -> 0.
        assert abs(result.voltage("s")[-1]) < 1e-3

    def test_netlist_k_element(self):
        deck = """transformer
Vin in 0 DC 0
Rs in p 1m
L1 p 0 4m
L2 s 0 1m
K1 L1 L2 0.9999
RL s 0 1meg
.end
"""
        parsed = parse_netlist(deck)
        ac = ac_analysis(parsed.circuit, "Vin", np.asarray([1e5]))
        # Same ideal-ratio check through the netlist path.
        # (drive amplitude is the AC default 1.0 on Vin)
        assert abs(ac.voltage("s")[0]) == pytest.approx(0.5, rel=1e-3)

    def test_netlist_k_before_inductors(self):
        # K lines may precede the inductors they couple.
        deck = """order
K1 L1 L2 0.5
Vin p 0 DC 0
L1 p 0 1m
L2 s 0 1m
RL s 0 1k
.end
"""
        parsed = parse_netlist(deck)
        assert parsed.circuit.element("K1").mutual == pytest.approx(0.5e-3)

    def test_netlist_k_bad_reference(self):
        deck = "t\nK1 L1 LX 0.5\nL1 a 0 1m\nR1 a 0 1\n.end\n"
        from repro.spice.netlist import NetlistError

        with pytest.raises(NetlistError, match="coupling"):
            parse_netlist(deck)
