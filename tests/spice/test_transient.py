"""Tests for transient analysis against closed-form circuit responses."""

import numpy as np
import pytest

from repro.spice import Circuit, transient
from repro.spice.elements.sources import pulse, sine


class TestFirstOrderCircuits:
    def test_rc_step_response(self):
        ckt = Circuit("rc step")
        ckt.add_voltage_source("V1", "in", "0", 1.0)
        ckt.add_resistor("R1", "in", "out", 1e3)
        ckt.add_capacitor("C1", "out", "0", 1e-6)
        tau = 1e-3
        result = transient(ckt, t_end=5 * tau, dt=tau / 100, skip_dc=True)
        expected = 1.0 - np.exp(-result.t / tau)
        assert np.max(np.abs(result.voltage("out") - expected)) < 1e-4

    def test_rl_current_rise(self):
        ckt = Circuit("rl step")
        ckt.add_voltage_source("V1", "in", "0", 1.0)
        ckt.add_resistor("R1", "in", "a", 100.0)
        ckt.add_inductor("L1", "a", "0", 1e-3)
        tau = 1e-3 / 100.0
        result = transient(ckt, t_end=5 * tau, dt=tau / 100, skip_dc=True)
        expected = (1.0 / 100.0) * (1.0 - np.exp(-result.t / tau))
        assert np.max(np.abs(result.branch_current("L1") - expected)) < 1e-6

    def test_trap_second_order_convergence(self):
        # Halving dt must cut the RC-step error ~4x for TRAP.
        def rc_error(dt):
            ckt = Circuit("rc conv")
            ckt.add_voltage_source("V1", "in", "0", 1.0)
            ckt.add_resistor("R1", "in", "out", 1e3)
            ckt.add_capacitor("C1", "out", "0", 1e-6)
            r = transient(ckt, t_end=2e-3, dt=dt, skip_dc=True)
            return float(
                np.max(np.abs(r.voltage("out") - (1.0 - np.exp(-r.t / 1e-3))))
            )

        e1 = rc_error(2e-5)
        e2 = rc_error(1e-5)
        assert e1 / e2 == pytest.approx(4.0, rel=0.3)


class TestSecondOrderCircuits:
    def test_lc_resonance_frequency(self):
        # Free LC ringing at w = 1/sqrt(LC), started via initial condition.
        ckt = Circuit("lc ring")
        ckt.add_current_source("Ikick", "0", "a", pulse(0.0, 1e-3, width=1e-7))
        ckt.add_inductor("L1", "a", "0", 100e-6)
        ckt.add_capacitor("C1", "a", "0", 10e-9)
        ckt.add_resistor("Rbig", "a", "0", 1e9)
        w0 = 1.0 / np.sqrt(100e-6 * 10e-9)
        period = 2 * np.pi / w0
        result = transient(ckt, t_end=20 * period, dt=period / 200, skip_dc=True)
        from repro.measure import Waveform

        wf = Waveform(result.t, result.voltage("a"))
        tail = wf.slice_time(5 * period)
        assert tail.frequency_from_crossings() == pytest.approx(w0, rel=1e-3)

    def test_trap_preserves_lc_energy_better_than_be(self):
        def ring_amplitude(method):
            ckt = Circuit("lc energy")
            ckt.add_current_source("Ikick", "0", "a", pulse(0.0, 1e-3, width=1e-7))
            ckt.add_inductor("L1", "a", "0", 100e-6)
            ckt.add_capacitor("C1", "a", "0", 10e-9)
            ckt.add_resistor("Rbig", "a", "0", 1e9)
            period = 2 * np.pi * np.sqrt(100e-6 * 10e-9)
            r = transient(
                ckt, t_end=30 * period, dt=period / 80, skip_dc=True, method=method
            )
            tail = r.voltage("a")[-200:]
            return float(np.max(np.abs(tail)))

        amp_trap = ring_amplitude("trap")
        amp_be = ring_amplitude("be")
        # Backward Euler damps the tank numerically; TRAP does not.
        assert amp_be < 0.5 * amp_trap

    def test_driven_rlc_steady_state_amplitude(self):
        # Series-free parallel RLC driven by a sinusoidal current at
        # resonance: steady-state amplitude = I * R.
        ckt = Circuit("driven tank")
        ckt.add_current_source(
            "Iin", "0", "a", sine(0.0, 1e-3, 1.0 / (2 * np.pi * np.sqrt(1e-12)))
        )
        # L, C chosen so w0 = 1e6 rad/s.
        ckt.add_resistor("R", "a", "0", 500.0)
        ckt.add_inductor("L", "a", "0", 100e-6)
        ckt.add_capacitor("C", "a", "0", 10e-9)
        period = 2 * np.pi / 1e6
        q = 500.0 * np.sqrt(10e-9 / 100e-6)
        result = transient(ckt, t_end=20 * q * period, dt=period / 100)
        tail = result.voltage("a")[-400:]
        assert float(np.max(tail)) == pytest.approx(0.5, rel=0.02)


class TestAdaptiveStepping:
    def test_adaptive_tracks_pulse(self):
        ckt = Circuit("pulse adaptive")
        ckt.add_voltage_source(
            "V1", "in", "0", pulse(0.0, 1.0, delay=5e-5, rise=1e-6, width=2e-4)
        )
        ckt.add_resistor("R1", "in", "out", 1e3)
        ckt.add_capacitor("C1", "out", "0", 1e-8)
        result = transient(
            ckt, t_end=5e-4, dt=1e-6, adaptive=True, lte_tol=1e-4
        )
        # The flat regions should have stretched the step well beyond dt.
        steps = np.diff(result.t)
        assert steps.max() > 2e-6
        # And the final value approaches the pulse's low level.
        assert result.voltage("out")[-1] == pytest.approx(
            float(result.voltage("in")[-1]), abs=0.05
        )

    def test_stats_reported(self):
        ckt = Circuit("stats")
        ckt.add_voltage_source("V1", "in", "0", 1.0)
        ckt.add_resistor("R1", "in", "out", 1e3)
        ckt.add_capacitor("C1", "out", "0", 1e-6)
        result = transient(ckt, t_end=1e-4, dt=1e-6)
        assert result.stats["steps"] > 0
        assert result.stats["newton_iterations"] >= result.stats["steps"]
        assert result.stats["method"] == "trap"


class TestValidation:
    def test_rejects_bad_method(self):
        ckt = Circuit("x")
        ckt.add_voltage_source("V1", "a", "0", 1.0)
        ckt.add_resistor("R1", "a", "0", 1.0)
        with pytest.raises(ValueError, match="method"):
            transient(ckt, t_end=1.0, dt=0.1, method="euler")

    def test_rejects_nonpositive_times(self):
        ckt = Circuit("x")
        ckt.add_voltage_source("V1", "a", "0", 1.0)
        ckt.add_resistor("R1", "a", "0", 1.0)
        with pytest.raises(ValueError):
            transient(ckt, t_end=0.0, dt=0.1)
        with pytest.raises(ValueError):
            transient(ckt, t_end=1.0, dt=0.0)
