"""Tests for the level-1 MOSFET and the NMOS cross-coupled oscillator flow."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spice import Circuit, dc_operating_point, parse_netlist
from repro.spice.elements.mosfet import Mosfet


class TestDrainCurrent:
    def test_cutoff(self):
        m = Mosfet("M1", "d", "g", "s", k=2e-4, v_th=0.5)
        assert m.drain_current(0.3, 1.0) == (0.0, 0.0, 0.0)

    def test_saturation_value(self):
        m = Mosfet("M1", "d", "g", "s", k=2e-4, v_th=0.5)
        i_d, gm, gds = m.drain_current(1.0, 2.0)
        assert i_d == pytest.approx(0.5 * 2e-4 * 0.25)
        assert gm == pytest.approx(2e-4 * 0.5)
        assert gds == 0.0

    def test_triode_value(self):
        m = Mosfet("M1", "d", "g", "s", k=2e-4, v_th=0.5)
        i_d, gm, gds = m.drain_current(1.5, 0.2)
        assert i_d == pytest.approx(2e-4 * (1.0 * 0.2 - 0.02))
        assert gds == pytest.approx(2e-4 * (1.0 - 0.2))

    def test_continuity_at_saturation_edge(self):
        m = Mosfet("M1", "d", "g", "s", k=2e-4, v_th=0.5, lam=0.02)
        v_ov = 0.7
        below = m.drain_current(0.5 + v_ov, v_ov - 1e-9)
        above = m.drain_current(0.5 + v_ov, v_ov + 1e-9)
        assert below[0] == pytest.approx(above[0], rel=1e-6)
        assert below[2] == pytest.approx(above[2], rel=1e-3, abs=1e-9)

    def test_reverse_mode_antisymmetry(self):
        # With the gate referenced symmetrically, swapping drain/source
        # reverses the current: i(v_gs, v_ds) = -i(v_gs - v_ds, -v_ds).
        m = Mosfet("M1", "d", "g", "s", k=2e-4, v_th=0.5)
        fwd = m.drain_current(1.2, 0.4)[0]
        rev = m.drain_current(1.2 - 0.4, -0.4)[0]
        assert rev == pytest.approx(-fwd)

    def test_pmos_mirror(self):
        n = Mosfet("M1", "d", "g", "s", k=2e-4, v_th=0.5, polarity="nmos")
        p = Mosfet("M2", "d", "g", "s", k=2e-4, v_th=0.5, polarity="pmos")
        assert p.drain_current(-1.0, -2.0)[0] == pytest.approx(
            -n.drain_current(1.0, 2.0)[0]
        )

    def test_rejects_bad_polarity(self):
        with pytest.raises(ValueError):
            Mosfet("M1", "d", "g", "s", polarity="finfet")

    @settings(max_examples=40)
    @given(
        st.floats(min_value=-1.5, max_value=2.0),
        st.floats(min_value=-2.0, max_value=2.0),
    )
    def test_derivatives_match_finite_difference(self, v_gs, v_ds):
        m = Mosfet("M1", "d", "g", "s", k=2e-4, v_th=0.5, lam=0.05)
        h = 1e-7
        i0, gm, gds = m.drain_current(v_gs, v_ds)
        i_gp = m.drain_current(v_gs + h, v_ds)[0]
        i_gm = m.drain_current(v_gs - h, v_ds)[0]
        i_dp = m.drain_current(v_gs, v_ds + h)[0]
        i_dm = m.drain_current(v_gs, v_ds - h)[0]
        assert gm == pytest.approx((i_gp - i_gm) / (2 * h), abs=2e-9)
        assert gds == pytest.approx((i_dp - i_dm) / (2 * h), abs=2e-9)


class TestMosfetInCircuits:
    def test_common_source_bias(self):
        ckt = Circuit("common source")
        ckt.add_voltage_source("VDD", "vdd", "0", 3.0)
        ckt.add_voltage_source("VG", "g", "0", 1.0)
        ckt.add_resistor("RD", "vdd", "d", 10e3)
        ckt.add_mosfet("M1", "d", "g", "0", k=2e-4, v_th=0.5)
        op = dc_operating_point(ckt)
        # Saturation: i_d = 25 uA -> v_d = 3 - 0.25 = 2.75 V.
        assert op.voltage("d") == pytest.approx(2.75, abs=1e-6)

    def test_netlist_mosfet(self):
        deck = """nmos bias
VDD vdd 0 3
VG g 0 1
RD vdd d 10k
M1 d g 0 0 nch
.model nch NMOS(kp=2e-4 vto=0.5)
.end
"""
        parsed = parse_netlist(deck)
        op = dc_operating_point(parsed.circuit)
        assert op.voltage("d") == pytest.approx(2.75, abs=1e-6)

    def test_cross_coupled_nmos_is_negative_resistance(self):
        # The modern RFIC incarnation of the paper's diff-pair: extract
        # f(v) of an NMOS negative-gm cell and check the NDR at balance.
        from repro.nonlin import extract_iv_curve

        ckt = Circuit("nmos xcouple")
        ckt.add_voltage_source("VCM", "ncr", "0", 1.5)
        ckt.add_voltage_source("VX", "ncl", "ncr", 0.0)
        ckt.add_mosfet("M1", "ncl", "ncr", "tail", k=1e-3, v_th=0.5)
        ckt.add_mosfet("M2", "ncr", "ncl", "tail", k=1e-3, v_th=0.5)
        ckt.add_current_source("ISS", "tail", "0", 2e-4)
        table = extract_iv_curve(ckt, "VX", -0.8, 0.8, 81).shifted(0.0)
        g0 = float(table.derivative(np.asarray(0.0)))
        assert g0 < 0.0
        # Balanced pair: |G| = gm/2 with gm = sqrt(2 k I_D), I_D = ISS/2.
        gm_half = 0.5 * np.sqrt(2.0 * 1e-3 * 1e-4)
        assert abs(g0) == pytest.approx(gm_half, rel=0.05)

    def test_nmos_oscillator_end_to_end(self):
        # Full pipeline on the CMOS cell: extraction -> DF prediction ->
        # transient validation of the amplitude.
        from repro.core import predict_natural_oscillation
        from repro.measure import Waveform, measure_steady_state
        from repro.nonlin import extract_iv_curve
        from repro.nonlin.tabulated import LinearTableNonlinearity
        from repro.odesim import simulate_oscillator
        from repro.tank import ParallelRLC

        ckt = Circuit("nmos xcouple")
        ckt.add_voltage_source("VCM", "ncr", "0", 1.5)
        ckt.add_voltage_source("VX", "ncl", "ncr", 0.0)
        ckt.add_mosfet("M1", "ncl", "ncr", "tail", k=2e-3, v_th=0.5)
        ckt.add_mosfet("M2", "ncr", "ncl", "tail", k=2e-3, v_th=0.5)
        ckt.add_current_source("ISS", "tail", "0", 4e-4)
        table = extract_iv_curve(ckt, "VX", -1.2, 1.2, 121).shifted(0.0)
        law = LinearTableNonlinearity.from_nonlinearity(table, -1.2, 1.2, 4097)
        tank = ParallelRLC(r=6e3, l=100e-6, c=10e-9)
        natural = predict_natural_oscillation(law, tank)
        period = 2 * np.pi / tank.center_frequency
        sim = simulate_oscillator(
            law, tank, t_end=400 * period, record_start=350 * period
        )
        state = measure_steady_state(Waveform(sim.t, sim.v[:, 0]))
        assert state.amplitude == pytest.approx(natural.amplitude, rel=2e-3)
