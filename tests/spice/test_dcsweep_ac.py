"""Tests for DC sweep and AC analysis."""

import numpy as np
import pytest

from repro.nonlin import TunnelDiode
from repro.spice import Circuit, ac_analysis, dc_sweep


class TestDcSweep:
    def test_linear_resistor_iv(self):
        ckt = Circuit("ohm")
        ckt.add_voltage_source("VX", "a", "0", 0.0)
        ckt.add_resistor("R1", "a", "0", 2e3)
        values = np.linspace(-1.0, 1.0, 21)
        sweep = dc_sweep(ckt, "VX", values)
        # Current INTO the resistor = -branch current of VX.
        assert np.allclose(-sweep.source_current(), values / 2e3)

    def test_tunnel_diode_full_curve(self):
        ckt = Circuit("tunnel sweep")
        ckt.add_voltage_source("VX", "a", "0", 0.0)
        ckt.add_tunnel_diode("TD1", "a", "0")
        values = np.linspace(0.0, 0.6, 121)
        sweep = dc_sweep(ckt, "VX", values)
        model = TunnelDiode()
        assert np.allclose(-sweep.source_current(), model(values), atol=1e-12)

    def test_sweep_through_ndr_is_continuous(self):
        # Continuation must not jump branches crossing the NDR region:
        # the sweep's step-to-step increments must track the model's own
        # local increments (a branch jump would show as a spike).
        ckt = Circuit("ndr continuity")
        ckt.add_voltage_source("VX", "a", "0", 0.0)
        ckt.add_tunnel_diode("TD1", "a", "0")
        values = np.linspace(0.0, 0.6, 241)
        sweep = dc_sweep(ckt, "VX", values)
        i = -sweep.source_current()
        model_i = TunnelDiode()(values)
        assert np.max(np.abs(np.diff(i) - np.diff(model_i))) < 1e-9

    def test_current_source_sweep(self):
        ckt = Circuit("isweep")
        ckt.add_current_source("IX", "0", "a", 0.0)
        ckt.add_resistor("R1", "a", "0", 1e3)
        sweep = dc_sweep(ckt, "IX", np.linspace(0.0, 1e-3, 5))
        assert np.allclose(sweep.voltage("a"), sweep.values * 1e3)

    def test_waveform_restored_after_sweep(self):
        from repro.spice.elements.sources import sine

        ckt = Circuit("restore")
        wave = sine(0.0, 1.0, 1e3)
        ckt.add_voltage_source("VX", "a", "0", wave)
        ckt.add_resistor("R1", "a", "0", 1e3)
        dc_sweep(ckt, "VX", np.array([0.0, 1.0]))
        assert ckt.element("VX").waveform is wave

    def test_rejects_non_source(self):
        ckt = Circuit("bad sweep")
        ckt.add_voltage_source("VX", "a", "0", 0.0)
        ckt.add_resistor("R1", "a", "0", 1e3)
        with pytest.raises(TypeError):
            dc_sweep(ckt, "R1", np.array([0.0]))


class TestAcAnalysis:
    def _tank(self):
        ckt = Circuit("tank")
        ckt.add_current_source("Iin", "0", "t", 0.0)
        ckt.add_resistor("R", "t", "0", 1000.0)
        ckt.add_inductor("L", "t", "0", 100e-6)
        ckt.add_capacitor("C", "t", "0", 10e-9)
        return ckt

    def test_tank_impedance_matches_analytic(self):
        from repro.tank import ParallelRLC

        rlc = ParallelRLC(r=1000.0, l=100e-6, c=10e-9)
        w = np.linspace(0.5, 2.0, 61) * rlc.center_frequency
        ac = ac_analysis(self._tank(), "Iin", w)
        assert np.allclose(ac.voltage("t"), rlc.transfer(w), rtol=1e-9)

    def test_rc_lowpass_pole(self):
        ckt = Circuit("rc lowpass")
        ckt.add_voltage_source("Vin", "in", "0", 0.0)
        ckt.add_resistor("R1", "in", "out", 1e3)
        ckt.add_capacitor("C1", "out", "0", 1e-6)
        w_pole = 1.0 / (1e3 * 1e-6)
        ac = ac_analysis(ckt, "Vin", np.asarray([w_pole]))
        h = complex(ac.voltage("out")[0])
        assert abs(h) == pytest.approx(1.0 / np.sqrt(2.0), rel=1e-9)
        assert np.angle(h) == pytest.approx(-np.pi / 4.0, rel=1e-9)

    def test_linearisation_around_bias(self):
        # Small-signal conductance of a diode at bias: g = Is e^{V/Vt}/Vt.
        ckt = Circuit("diode smallsignal")
        ckt.add_voltage_source("VB", "a", "0", 0.6)
        ckt.add_current_source("Iac", "0", "a", 0.0)
        ckt.add_diode("D1", "a", "0", i_s=1e-12, v_t=0.025)
        ac = ac_analysis(ckt, "Iac", np.asarray([1.0]))
        # The bias source pins the node: AC current flows into the source,
        # so the node phasor is 0 — instead check via a resistive bias.
        assert abs(ac.voltage("a")[0]) < 1e-15

    def test_ground_voltage_is_zero(self):
        ac = ac_analysis(self._tank(), "Iin", np.asarray([1e6]))
        assert np.all(ac.voltage("0") == 0.0)

    def test_rejects_non_source_drive(self):
        ckt = self._tank()
        with pytest.raises(TypeError):
            ac_analysis(ckt, "R", np.asarray([1e6]))
