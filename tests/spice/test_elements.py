"""Tests for element stamps and device models in isolation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spice.circuit import Circuit
from repro.spice.elements.bjt import Bjt
from repro.spice.elements.diode import Diode, limited_exponential
from repro.spice.elements.sources import dc, pulse, sine


class TestLimitedExponential:
    def test_matches_exp_below_limit(self):
        v_t = 0.025
        for v in (0.0, 0.3, 0.9):
            value, deriv = limited_exponential(v, v_t)
            assert value == pytest.approx(np.exp(v / v_t))
            assert deriv == pytest.approx(np.exp(v / v_t) / v_t)

    def test_linear_above_limit(self):
        v_t = 0.025
        v_lim = 40 * v_t
        v = v_lim + 0.5
        value, deriv = limited_exponential(v, v_t)
        assert deriv == pytest.approx(np.exp(40.0) / v_t)
        assert value == pytest.approx(np.exp(40.0) + deriv * 0.5)

    def test_c1_continuity_at_limit(self):
        v_t = 0.025
        v_lim = 40 * v_t
        below = limited_exponential(v_lim - 1e-9, v_t)
        above = limited_exponential(v_lim + 1e-9, v_t)
        assert below[0] == pytest.approx(above[0], rel=1e-6)
        assert below[1] == pytest.approx(above[1], rel=1e-6)

    def test_finite_at_huge_voltage(self):
        value, deriv = limited_exponential(100.0, 0.025)
        assert np.isfinite(value) and np.isfinite(deriv)


class TestDiodeModel:
    def test_current_and_conductance(self):
        d = Diode("D1", "a", "0", i_s=1e-12, v_t=0.025)
        i, g = d.current(0.6)
        assert i == pytest.approx(1e-12 * (np.exp(24.0) - 1.0))
        assert g == pytest.approx(1e-12 * np.exp(24.0) / 0.025)

    @given(st.floats(min_value=-1.0, max_value=0.9))
    def test_conductance_is_derivative(self, v):
        d = Diode("D1", "a", "0")
        h = 1e-7
        i_p, _ = d.current(v + h)
        i_m, _ = d.current(v - h)
        _, g = d.current(v)
        assert g == pytest.approx((i_p - i_m) / (2 * h), rel=1e-4, abs=1e-18)


class TestBjtModel:
    def test_kcl_current_conservation(self):
        q = Bjt("Q1", "c", "b", "e")
        i_c, i_b, _ = q.currents(0.65, -2.0)
        i_e = -(i_c + i_b)
        assert i_c + i_b + i_e == pytest.approx(0.0, abs=1e-20)

    def test_forward_active_gain(self):
        q = Bjt("Q1", "c", "b", "e", beta_f=100.0)
        i_c, i_b, _ = q.currents(0.65, -2.0)
        assert i_c / i_b == pytest.approx(100.0, rel=1e-9)

    def test_pnp_polarity(self):
        npn = Bjt("Q1", "c", "b", "e", polarity="npn")
        pnp = Bjt("Q2", "c", "b", "e", polarity="pnp")
        i_c_n, i_b_n, _ = npn.currents(0.65, -2.0)
        i_c_p, i_b_p, _ = pnp.currents(-0.65, 2.0)
        assert i_c_p == pytest.approx(-i_c_n)
        assert i_b_p == pytest.approx(-i_b_n)

    def test_rejects_bad_polarity(self):
        with pytest.raises(ValueError):
            Bjt("Q1", "c", "b", "e", polarity="mosfet")

    @settings(max_examples=30)
    @given(
        st.floats(min_value=-0.8, max_value=0.75),
        st.floats(min_value=-0.8, max_value=0.75),
    )
    def test_jacobian_matches_finite_difference(self, v_be, v_bc):
        q = Bjt("Q1", "c", "b", "e")
        h = 1e-8
        i_c, i_b, (dc_be, dc_bc, db_be, db_bc) = q.currents(v_be, v_bc)
        # Forward differences of exponential-scale currents suffer
        # cancellation: the noise floor is ~a few hundred ULPs of the
        # larger current divided by h.
        noise = 1e4 * np.finfo(float).eps * max(abs(i_c), abs(i_b), 1e-12) / h
        i_c_p, i_b_p, _ = q.currents(v_be + h, v_bc)
        assert dc_be == pytest.approx((i_c_p - i_c) / h, rel=1e-4, abs=noise)
        assert db_be == pytest.approx((i_b_p - i_b) / h, rel=1e-4, abs=noise)
        i_c_q, i_b_q, _ = q.currents(v_be, v_bc + h)
        assert dc_bc == pytest.approx((i_c_q - i_c) / h, rel=1e-4, abs=noise)
        assert db_bc == pytest.approx((i_b_q - i_b) / h, rel=1e-4, abs=noise)


class TestWaveforms:
    def test_dc(self):
        assert dc(3.0)(123.0) == 3.0

    def test_sine_phase_and_delay(self):
        w = sine(1.0, 2.0, 1e3, delay=1e-3)
        assert w(0.5e-3) == pytest.approx(1.0)  # held before delay
        assert w(1e-3 + 0.25e-3) == pytest.approx(3.0)

    def test_pulse_shape(self):
        w = pulse(0.0, 1.0, delay=1e-6, rise=1e-7, fall=1e-7, width=1e-6)
        assert w(0.0) == 0.0
        assert w(1.05e-6) == pytest.approx(0.5)
        assert w(1.5e-6) == 1.0
        assert w(2.15e-6) == pytest.approx(0.5)
        assert w(3e-6) == 0.0

    def test_periodic_pulse(self):
        w = pulse(0.0, 1.0, width=1e-6, period=4e-6)
        assert w(0.5e-6) == 1.0
        assert w(2e-6) == 0.0
        assert w(4.5e-6) == 1.0

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            pulse(0.0, 1.0, width=0.0)


class TestCircuitBuilder:
    def test_duplicate_names_rejected(self):
        ckt = Circuit("dup")
        ckt.add_resistor("R1", "a", "0", 1.0)
        with pytest.raises(ValueError, match="duplicate"):
            ckt.add_resistor("R1", "b", "0", 1.0)

    def test_node_names_order(self):
        ckt = Circuit("order")
        ckt.add_resistor("R1", "x", "y", 1.0)
        ckt.add_resistor("R2", "y", "0", 1.0)
        assert ckt.node_names() == ["x", "y"]

    def test_ground_aliases(self):
        ckt = Circuit("gnd")
        ckt.add_resistor("R1", "a", "gnd", 1.0)
        ckt.add_resistor("R2", "a", "GND", 1.0)
        ckt.add_voltage_source("V1", "a", "0", 1.0)
        system = ckt.build()
        assert system.n_nodes == 1

    def test_unknown_element_lookup(self):
        ckt = Circuit("missing")
        with pytest.raises(KeyError):
            ckt.element("R99")

    def test_branch_indices_after_nodes(self):
        ckt = Circuit("branches")
        ckt.add_voltage_source("V1", "a", "0", 1.0)
        ckt.add_inductor("L1", "a", "b", 1e-3)
        ckt.add_resistor("R1", "b", "0", 1.0)
        system = ckt.build()
        assert system.size == 2 + 2  # two nodes + two branch currents
        assert system.branch_index["V1"] >= system.n_nodes
        assert system.branch_index["L1"] >= system.n_nodes
