"""Tests for the DC operating point solver (textbook circuit oracles)."""

import numpy as np
import pytest

from repro.nonlin import NegativeTanh
from repro.spice import Circuit, dc_operating_point
from repro.spice.solver import SingularCircuitError


class TestLinearCircuits:
    def test_voltage_divider(self):
        ckt = Circuit("divider")
        ckt.add_voltage_source("V1", "in", "0", 10.0)
        ckt.add_resistor("R1", "in", "mid", 1e3)
        ckt.add_resistor("R2", "mid", "0", 3e3)
        op = dc_operating_point(ckt)
        assert op.voltage("mid") == pytest.approx(7.5)
        assert op.voltage("in") == pytest.approx(10.0)

    def test_source_current_sign_convention(self):
        # SPICE: a source delivering power reports negative current.
        ckt = Circuit("loaded source")
        ckt.add_voltage_source("V1", "a", "0", 5.0)
        ckt.add_resistor("R1", "a", "0", 1e3)
        op = dc_operating_point(ckt)
        assert op.branch_current("V1") == pytest.approx(-5e-3)

    def test_current_source_into_resistor(self):
        ckt = Circuit("norton")
        # 1 mA extracted from ground into node a: current flows 0 -> a.
        ckt.add_current_source("I1", "0", "a", 1e-3)
        ckt.add_resistor("R1", "a", "0", 2e3)
        op = dc_operating_point(ckt)
        assert op.voltage("a") == pytest.approx(2.0)

    def test_inductor_is_dc_short(self):
        ckt = Circuit("inductor short")
        ckt.add_voltage_source("V1", "a", "0", 3.0)
        ckt.add_inductor("L1", "a", "b", 1e-3)
        ckt.add_resistor("R1", "b", "0", 1e3)
        op = dc_operating_point(ckt)
        assert op.voltage("b") == pytest.approx(3.0)
        assert op.branch_current("L1") == pytest.approx(3e-3)

    def test_capacitor_is_dc_open(self):
        ckt = Circuit("capacitor open")
        ckt.add_voltage_source("V1", "a", "0", 3.0)
        ckt.add_resistor("R1", "a", "b", 1e3)
        ckt.add_capacitor("C1", "b", "0", 1e-9)
        ckt.add_resistor("R2", "b", "0", 1e6)
        op = dc_operating_point(ckt)
        # Nearly the full source voltage appears across the big resistor.
        assert op.voltage("b") == pytest.approx(3.0 * 1e6 / (1e6 + 1e3), rel=1e-9)

    def test_vccs(self):
        ckt = Circuit("vccs")
        ckt.add_voltage_source("V1", "c", "0", 2.0)
        # i(a->0) = gm * v(c): pushes current out of node a.
        ckt.add_vccs("G1", "a", "0", "c", "0", gm=1e-3)
        ckt.add_resistor("R1", "a", "0", 1e3)
        op = dc_operating_point(ckt)
        assert op.voltage("a") == pytest.approx(-2.0)

    def test_floating_node_raises(self):
        ckt = Circuit("floating")
        ckt.add_voltage_source("V1", "a", "0", 1.0)
        ckt.add_capacitor("C1", "a", "b", 1e-9)
        ckt.add_capacitor("C2", "b", "0", 1e-9)
        with pytest.raises(SingularCircuitError):
            dc_operating_point(ckt)

    def test_empty_circuit_rejected(self):
        with pytest.raises(ValueError):
            dc_operating_point(Circuit("empty"))


class TestNonlinearCircuits:
    def test_diode_forward_drop(self):
        ckt = Circuit("diode drop")
        ckt.add_voltage_source("V1", "a", "0", 5.0)
        ckt.add_resistor("R1", "a", "d", 1e3)
        ckt.add_diode("D1", "d", "0", i_s=1e-12, v_t=0.025)
        op = dc_operating_point(ckt)
        v_d = op.voltage("d")
        # ~0.5-0.7 V drop, and KCL holds exactly.
        assert 0.4 < v_d < 0.8
        i_r = (5.0 - v_d) / 1e3
        i_d = 1e-12 * (np.exp(v_d / 0.025) - 1.0)
        assert i_r == pytest.approx(i_d, rel=1e-6)

    def test_diode_reverse_blocks(self):
        ckt = Circuit("reverse diode")
        ckt.add_voltage_source("V1", "a", "0", -5.0)
        ckt.add_resistor("R1", "a", "d", 1e3)
        ckt.add_diode("D1", "d", "0")
        op = dc_operating_point(ckt)
        assert op.voltage("d") == pytest.approx(-5.0, abs=1e-6)

    def test_bjt_forward_active(self):
        # Classic bias: base from a divider-free direct source.  0.55 V
        # demands Ic ~ 3.6 mA, which the 1 kOhm collector resistor can
        # supply with the device still forward-active.
        ckt = Circuit("bjt bias")
        ckt.add_voltage_source("VCC", "vcc", "0", 10.0)
        ckt.add_voltage_source("VB", "b", "0", 0.55)
        ckt.add_resistor("RC", "vcc", "c", 1e3)
        ckt.add_bjt("Q1", "c", "b", "0", i_s=1e-12, beta_f=100.0)
        op = dc_operating_point(ckt)
        i_c_expected = 1e-12 * np.exp(0.55 / 0.025)
        assert op.voltage("c") > op.voltage("b")  # forward active
        assert (10.0 - op.voltage("c")) / 1e3 == pytest.approx(i_c_expected, rel=0.02)

    def test_bjt_saturates_against_collector_resistor(self):
        # An overdriven base cannot demand more than the resistor supplies:
        # the device saturates and the collector collapses near ground.
        ckt = Circuit("bjt saturated")
        ckt.add_voltage_source("VCC", "vcc", "0", 10.0)
        ckt.add_voltage_source("VB", "b", "0", 0.65)
        ckt.add_resistor("RC", "vcc", "c", 1e3)
        ckt.add_bjt("Q1", "c", "b", "0", i_s=1e-12, beta_f=100.0)
        op = dc_operating_point(ckt)
        assert op.voltage("c") < 0.2
        assert (10.0 - op.voltage("c")) / 1e3 == pytest.approx(0.01, rel=0.05)

    def test_diffpair_splits_tail_current(self):
        ckt = Circuit("balanced pair")
        ckt.add_voltage_source("VCC", "vcc", "0", 5.0)
        ckt.add_resistor("RC1", "vcc", "c1", 1e3)
        ckt.add_resistor("RC2", "vcc", "c2", 1e3)
        ckt.add_voltage_source("VB1", "b1", "0", 0.0)
        ckt.add_voltage_source("VB2", "b2", "0", 0.0)
        ckt.add_bjt("Q1", "c1", "b1", "e")
        ckt.add_bjt("Q2", "c2", "b2", "e")
        ckt.add_current_source("IEE", "e", "0", 2e-4)
        op = dc_operating_point(ckt)
        # Balanced inputs: equal collector voltages, half tail each.
        assert op.voltage("c1") == pytest.approx(op.voltage("c2"), abs=1e-9)
        i_c1 = (5.0 - op.voltage("c1")) / 1e3
        assert i_c1 == pytest.approx(1e-4, rel=0.03)

    def test_tunnel_diode_bias_in_ndr(self):
        from repro.nonlin import TunnelDiode

        ckt = Circuit("tunnel bias")
        ckt.add_voltage_source("VB", "a", "0", 0.25)
        ckt.add_tunnel_diode("TD1", "a", "0")
        op = dc_operating_point(ckt)
        model = TunnelDiode()
        assert -op.branch_current("VB") == pytest.approx(
            float(model(np.asarray(0.25))), rel=1e-9
        )

    def test_behavioral_source(self):
        law = NegativeTanh(gm=1e-3, i_sat=1e-3)
        ckt = Circuit("behavioral")
        ckt.add_voltage_source("V1", "a", "0", 0.5)
        ckt.add_behavioral("B1", "a", "0", law)
        op = dc_operating_point(ckt)
        assert -op.branch_current("V1") == pytest.approx(
            float(law(np.asarray(0.5))), rel=1e-9
        )

    def test_warm_start_accepted(self):
        ckt = Circuit("warm")
        ckt.add_voltage_source("V1", "a", "0", 1.0)
        ckt.add_resistor("R1", "a", "0", 1e3)
        system = ckt.build()
        cold = dc_operating_point(system)
        warm = dc_operating_point(system, x0=cold.x)
        assert warm.iterations <= cold.iterations
        assert np.allclose(warm.x, cold.x)
