"""Tests for subcircuit expansion and .ic cards."""

import numpy as np
import pytest

from repro.spice import Circuit, dc_operating_point, parse_netlist, transient
from repro.spice.netlist import NetlistError


class TestSubcircuits:
    def test_basic_expansion(self):
        deck = """divider in a box
.subckt div top out
R1 top out 1k
R2 out 0 1k
.ends
V1 in 0 10
X1 in mid div
.end
"""
        parsed = parse_netlist(deck)
        op = dc_operating_point(parsed.circuit)
        assert op.voltage("mid") == pytest.approx(5.0)
        # Internal element names carry the instance suffix.
        assert parsed.circuit.element("R1_X1").resistance == pytest.approx(1e3)

    def test_two_instances_are_independent(self):
        deck = """two dividers
.subckt div top out
R1 top out 1k
R2 out 0 3k
.ends
V1 in 0 8
X1 in a div
X2 in b div
RB b 0 3k
.end
"""
        parsed = parse_netlist(deck)
        op = dc_operating_point(parsed.circuit)
        assert op.voltage("a") == pytest.approx(6.0)
        # X2's output is loaded by RB (3k || 3k = 1.5k): 8 * 1.5/2.5.
        assert op.voltage("b") == pytest.approx(4.8)

    def test_internal_nodes_are_private(self):
        deck = """private nodes
.subckt cell p
R1 p m 1k
R2 m 0 1k
.ends
V1 in 0 2
X1 in cell
Rm m 0 1k
.end
"""
        parsed = parse_netlist(deck)
        op = dc_operating_point(parsed.circuit)
        # The top-level node 'm' is NOT the subckt's internal 'm'.
        assert op.voltage("m") == pytest.approx(0.0)
        assert op.voltage("m.X1") == pytest.approx(1.0)

    def test_nested_subcircuits(self):
        deck = """nested
.subckt half top out
R1 top out 1k
R2 out 0 1k
.ends
.subckt quarter top out
X1 top mid half
X2 mid out half
.ends
V1 in 0 8
Xq in q quarter
Rload q 0 1meg
.end
"""
        parsed = parse_netlist(deck)
        op = dc_operating_point(parsed.circuit)
        # Loaded cascade: stage 2 (2 kOhm input) loads stage 1's output,
        # giving mid = 3.2 V and q = 1.6 V exactly.
        assert op.voltage("mid.Xq") == pytest.approx(3.2, rel=1e-3)
        assert op.voltage("q") == pytest.approx(1.6, rel=1e-3)

    def test_port_count_mismatch(self):
        deck = """bad ports
.subckt div top out
R1 top out 1k
.ends
V1 in 0 1
X1 in div
.end
"""
        with pytest.raises(NetlistError, match="ports"):
            parse_netlist(deck)

    def test_unknown_subckt(self):
        deck = "t\nV1 a 0 1\nX1 a 0 nosuch\n.end\n"
        with pytest.raises(NetlistError, match="unknown subcircuit"):
            parse_netlist(deck)

    def test_missing_ends(self):
        deck = "t\n.subckt div a b\nR1 a b 1\nV1 x 0 1\n.end\n"
        with pytest.raises(NetlistError, match="missing its .ends"):
            parse_netlist(deck)

    def test_cards_inside_subckt_rejected(self):
        deck = "t\n.subckt d a\n.tran 1n 1u\n.ends\nR1 a 0 1\n.end\n"
        with pytest.raises(NetlistError, match="not allowed inside"):
            parse_netlist(deck)

    def test_mutual_inside_subckt(self):
        deck = """transformer cell
.subckt xfmr p s
L1 p 0 4m
L2 s 0 1m
K1 L1 L2 0.9999
.ends
Vin in 0 DC 0
Rs in p 1m
X1 p s xfmr
RL s 0 1meg
.end
"""
        from repro.spice import ac_analysis

        parsed = parse_netlist(deck)
        ac = ac_analysis(parsed.circuit, "Vin", np.asarray([1e5]))
        assert abs(ac.voltage("s")[0]) == pytest.approx(0.5, rel=1e-3)


class TestInitialConditions:
    def test_ic_card_parsed(self):
        deck = "t\nR1 a 0 1k\nC1 a 0 1n\n.ic v(a)=2.5\n.end\n"
        parsed = parse_netlist(deck)
        assert parsed.initial_conditions == {"a": 2.5}

    def test_ic_card_multiple_entries(self):
        deck = "t\nR1 a b 1k\nR2 b 0 1k\n.ic v(a)=1 v(b)=0.5\n.end\n"
        parsed = parse_netlist(deck)
        assert parsed.initial_conditions == {"a": 1.0, "b": 0.5}

    def test_malformed_ic_rejected(self):
        with pytest.raises(NetlistError, match=r"v\(node\)=value"):
            parse_netlist("t\nR1 a 0 1\n.ic a=1\n.end\n")

    def test_transient_honours_ic(self):
        # RC discharge from the .ic value, no sources at all.
        ckt = Circuit("rc discharge")
        ckt.add_resistor("R1", "a", "0", 1e3)
        ckt.add_capacitor("C1", "a", "0", 1e-6)
        result = transient(ckt, t_end=1e-3, dt=1e-5, ic={"a": 2.0})
        expected = 2.0 * np.exp(-result.t / 1e-3)
        assert np.max(np.abs(result.voltage("a") - expected)) < 2e-4

    def test_transient_rejects_unknown_ic_node(self):
        ckt = Circuit("x")
        ckt.add_resistor("R1", "a", "0", 1e3)
        ckt.add_voltage_source("V1", "a", "0", 1.0)
        with pytest.raises(ValueError, match="unknown node"):
            transient(ckt, t_end=1e-3, dt=1e-5, ic={"zz": 1.0})

    def test_netlist_ic_drives_oscillator_startup(self):
        # The canonical startup use: seed the tank via .ic, watch growth.
        deck = """seeded tank
R1 a 0 1k
L1 a 0 100u
C1 a 0 10n
.ic v(a)=1.0
.end
"""
        parsed = parse_netlist(deck)
        period = 2 * np.pi * np.sqrt(100e-6 * 10e-9)
        result = transient(
            parsed.circuit,
            t_end=3 * period,
            dt=period / 200,
            ic=parsed.initial_conditions,
        )
        v = result.voltage("a")
        assert v[0] == pytest.approx(1.0)
        # Rings and decays (Q = 10): amplitude down but alive at 3 cycles.
        assert 0.05 < np.max(np.abs(v[-100:])) < 1.0
