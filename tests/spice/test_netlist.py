"""Tests for the netlist parser."""

import numpy as np
import pytest

from repro.spice import Circuit, dc_operating_point, parse_netlist
from repro.spice.netlist import NetlistError


class TestBasicParsing:
    def test_title_and_elements(self):
        deck = """my circuit
R1 a 0 1k
C1 a 0 1n
L1 a 0 100u
.end
"""
        parsed = parse_netlist(deck)
        assert parsed.circuit.title == "my circuit"
        names = [el.name for el in parsed.circuit.elements]
        assert names == ["R1", "C1", "L1"]
        assert parsed.circuit.element("R1").resistance == pytest.approx(1e3)
        assert parsed.circuit.element("C1").capacitance == pytest.approx(1e-9)
        assert parsed.circuit.element("L1").inductance == pytest.approx(100e-6)

    def test_comments_and_blank_lines_skipped(self):
        deck = """title
* a comment
R1 a 0 1k

R2 a 0 2k ; trailing comment
.end
"""
        parsed = parse_netlist(deck)
        assert len(parsed.circuit.elements) == 2

    def test_continuation_lines(self):
        deck = """title
V1 a 0
+ SIN(0 1 1k)
R1 a 0 1k
.end
"""
        parsed = parse_netlist(deck)
        src = parsed.circuit.element("V1")
        assert src.value(0.25e-3) == pytest.approx(1.0, rel=1e-9)

    def test_everything_after_end_ignored(self):
        deck = """title
R1 a 0 1k
.end
garbage that would not parse
"""
        parsed = parse_netlist(deck)
        assert len(parsed.circuit.elements) == 1

    def test_empty_rejected(self):
        with pytest.raises(NetlistError):
            parse_netlist("")

    def test_bad_element_letter(self):
        with pytest.raises(NetlistError, match="element letter"):
            parse_netlist("t\nZ1 a 0 1k\n.end\n")

    def test_line_number_in_error(self):
        with pytest.raises(NetlistError, match="line 3"):
            parse_netlist("t\nR1 a 0 1k\nR2 a 0\n.end\n")


class TestSources:
    def test_dc_keyword(self):
        parsed = parse_netlist("t\nV1 a 0 DC 3.3\nR1 a 0 1k\n.end\n")
        assert parsed.circuit.element("V1").value(0.0) == 3.3

    def test_bare_value(self):
        parsed = parse_netlist("t\nI1 a 0 2m\nR1 a 0 1k\n.end\n")
        assert parsed.circuit.element("I1").value(0.0) == 2e-3

    def test_sin_waveform(self):
        parsed = parse_netlist("t\nV1 a 0 SIN(1 2 1k)\nR1 a 0 1k\n.end\n")
        src = parsed.circuit.element("V1")
        assert src.value(0.0) == pytest.approx(1.0)
        assert src.value(0.25e-3) == pytest.approx(3.0)

    def test_pulse_waveform(self):
        parsed = parse_netlist(
            "t\nV1 a 0 PULSE(0 5 1u 1n 1n 10u)\nR1 a 0 1k\n.end\n"
        )
        src = parsed.circuit.element("V1")
        assert src.value(0.0) == 0.0
        assert src.value(5e-6) == 5.0
        assert src.value(20e-6) == 0.0

    def test_malformed_sin_rejected(self):
        with pytest.raises(NetlistError, match="SIN"):
            parse_netlist("t\nV1 a 0 SIN(1)\nR1 a 0 1k\n.end\n")


class TestModels:
    def test_bjt_model_applied(self):
        deck = """t
Q1 c b e mynpn
V1 c 0 5
V2 b 0 0.6
V3 e 0 0
.model mynpn NPN(is=2e-12 bf=50)
.end
"""
        parsed = parse_netlist(deck)
        q = parsed.circuit.element("Q1")
        assert q.i_s == 2e-12
        assert q.beta_f == 50.0

    def test_tunnel_model(self):
        deck = """t
VX a 0 DC 0.25
D1 a 0 td
.model td TUNNEL(v0=0.2 r0=1000 m=2)
.end
"""
        parsed = parse_netlist(deck)
        op = dc_operating_point(parsed.circuit)
        from repro.nonlin import TunnelDiode

        assert -op.branch_current("VX") == pytest.approx(
            float(TunnelDiode()(np.asarray(0.25))), rel=1e-9
        )

    def test_plain_diode_default_model(self):
        parsed = parse_netlist("t\nV1 a 0 0.6\nD1 a 0\n.end\n")
        assert parsed.circuit.element("D1").i_s == 1e-12

    def test_bad_model_card(self):
        with pytest.raises(NetlistError, match="model"):
            parse_netlist("t\n.model broken NOTATYPE(x=1)\nR1 a 0 1\n.end\n")


class TestAnalysisCards:
    def test_tran_card(self):
        parsed = parse_netlist("t\nR1 a 0 1k\n.tran 10n 2m\n.end\n")
        tran = parsed.analyses[0]
        assert tran.kind == "tran"
        assert tran.params["tstep"] == 10e-9
        assert tran.params["tstop"] == 2e-3

    def test_dc_card(self):
        parsed = parse_netlist("t\nV1 a 0 0\nR1 a 0 1k\n.dc V1 -0.5 0.5 0.01\n.end\n")
        card = parsed.analyses[0]
        assert card.kind == "dc"
        assert card.params["source"] == "V1"
        assert card.params["step"] == 0.01

    def test_ac_card(self):
        parsed = parse_netlist("t\nR1 a 0 1k\n.ac lin 100 1k 1meg\n.end\n")
        card = parsed.analyses[0]
        assert card.kind == "ac"
        assert card.params["fstop"] == 1e6

    def test_unknown_card_rejected(self):
        with pytest.raises(NetlistError, match="unsupported card"):
            parse_netlist("t\nR1 a 0 1k\n.noise v(a) V1\n.end\n")


class TestEndToEnd:
    def test_canonical_extraction_netlists_run(self):
        from repro.experiments.circuits import (
            DIFFPAIR_EXTRACTION_NETLIST,
            TUNNEL_EXTRACTION_NETLIST,
        )
        from repro.spice import dc_sweep

        parsed = parse_netlist(DIFFPAIR_EXTRACTION_NETLIST)
        card = parsed.analyses[0]
        values = np.arange(
            card.params["start"], card.params["stop"] + 1e-12, card.params["step"]
        )
        sweep = dc_sweep(parsed.circuit, card.params["source"], values[:21])
        i = -sweep.source_current(card.params["source"])
        assert np.all(np.isfinite(i))

        parsed2 = parse_netlist(TUNNEL_EXTRACTION_NETLIST)
        assert parsed2.analyses[0].kind == "dc"

    def test_netlist_matches_api_circuit(self):
        deck = """divider
V1 in 0 10
R1 in mid 1k
R2 mid 0 1k
.end
"""
        parsed = parse_netlist(deck)
        op = dc_operating_point(parsed.circuit)
        api = Circuit("divider")
        api.add_voltage_source("V1", "in", "0", 10.0)
        api.add_resistor("R1", "in", "mid", 1e3)
        api.add_resistor("R2", "mid", "0", 1e3)
        op2 = dc_operating_point(api)
        assert op.voltage("mid") == pytest.approx(op2.voltage("mid"))
