"""Failure-injection tests: every layer must fail loudly and descriptively.

A numerical library's worst bug class is the silent wrong answer; these
tests feed each layer inputs that *should* break it and assert the error
is (a) raised, (b) the right type, and (c) carries an actionable message.
"""

import numpy as np
import pytest

from repro.core import predict_natural_oscillation, solve_lock_states
from repro.core.natural import NoOscillationError
from repro.nonlin import FunctionNonlinearity, NegativeTanh
from repro.tank import ParallelRLC


@pytest.fixture
def tank():
    return ParallelRLC(r=1000.0, l=100e-6, c=10e-9)


class TestCoreFailures:
    def test_dead_device_reports_startup(self, tank):
        dead = FunctionNonlinearity(lambda v: np.zeros_like(v), name="open")
        with pytest.raises(NoOscillationError, match="start-up"):
            predict_natural_oscillation(dead, tank)

    def test_positive_resistance_reports_startup(self, tank):
        resistor = FunctionNonlinearity(lambda v: 1e-3 * v, name="R")
        with pytest.raises(NoOscillationError):
            predict_natural_oscillation(resistor, tank)

    def test_non_limiting_device_reported(self, tank):
        # A pure negative conductance never limits: T_f stays above 1.
        runaway = FunctionNonlinearity(lambda v: -2.5e-3 * v, name="ngc")
        with pytest.raises(NoOscillationError, match="amplitude-limiting"):
            predict_natural_oscillation(runaway, tank)

    def test_nan_producing_device_is_caught_early(self, tank):
        # sqrt goes NaN for negative drive: the describing-function
        # quadrature must surface it, not propagate NaN silently.
        bad = FunctionNonlinearity(lambda v: -1e-3 * np.sqrt(v), name="nan")
        with pytest.raises((ValueError, NoOscillationError, FloatingPointError)):
            with np.errstate(invalid="raise"):
                predict_natural_oscillation(bad, tank)

    def test_solver_rejects_inverted_window(self, tank):
        tanh = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        with pytest.raises(ValueError, match="amplitude_window"):
            solve_lock_states(
                tanh, tank, v_i=0.03, w_injection=3e6, n=3,
                amplitude_window=(2.0, 1.0),
            )


class TestMeasureFailures:
    def test_waveform_rejects_nan(self):
        from repro.measure import Waveform

        t = np.linspace(0, 1, 100)
        x = np.sin(t)
        x[50] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            Waveform(t, x)

    def test_demod_on_too_short_record(self):
        from repro.measure import Waveform, quadrature_demodulate

        t = np.linspace(0, 1e-5, 32)
        wf = Waveform(t, np.sin(2 * np.pi * 1e5 * t))
        with pytest.raises(ValueError, match="too short"):
            quadrature_demodulate(wf, 2 * np.pi * 1e3)

    def test_lock_scan_without_lockable_injection(self):
        # Even order on an odd nonlinearity barely couples: the scan
        # window never brackets a lock -> descriptive failure.
        from repro.measure import simulate_lock_range
        from repro.measure.lockrange_sim import LockScanError

        tanh = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        tank = ParallelRLC(r=1000.0, l=100e-6, c=10e-9)
        with pytest.raises(LockScanError):
            simulate_lock_range(
                tanh, tank, v_i=0.001, n=2,
                scan_rel_span=0.01, batch=6, rounds=1,
                settle_cycles=100.0, acquire_cycles=150.0,
                observe_cycles=100.0, steps_per_cycle=48,
            )


class TestSpiceFailures:
    def test_shorted_voltage_source_loop(self):
        from repro.spice import Circuit, dc_operating_point
        from repro.spice.solver import SingularCircuitError

        ckt = Circuit("v loop")
        ckt.add_voltage_source("V1", "a", "0", 1.0)
        ckt.add_voltage_source("V2", "a", "0", 2.0)
        ckt.add_resistor("R1", "a", "0", 1e3)
        with pytest.raises(SingularCircuitError, match="loops"):
            dc_operating_point(ckt)

    def test_current_source_cutset(self):
        from repro.spice import Circuit, dc_operating_point
        from repro.spice.solver import SingularCircuitError

        ckt = Circuit("i cutset")
        ckt.add_current_source("I1", "0", "a", 1e-3)
        ckt.add_current_source("I2", "a", "0", 2e-3)
        with pytest.raises(SingularCircuitError):
            dc_operating_point(ckt)

    def test_transient_step_cap(self):
        from repro.spice import Circuit, transient

        ckt = Circuit("cap")
        ckt.add_voltage_source("V1", "a", "0", 1.0)
        ckt.add_resistor("R1", "a", "out", 1e3)
        ckt.add_capacitor("C1", "out", "0", 1e-6)
        with pytest.raises(RuntimeError, match="max_steps"):
            transient(ckt, t_end=1.0, dt=1e-6, max_steps=100)

    def test_netlist_error_carries_line_number(self):
        from repro.spice import parse_netlist
        from repro.spice.netlist import NetlistError

        deck = "title\nR1 a 0 1k\nQ9 c b\n.end\n"
        with pytest.raises(NetlistError, match="line 3"):
            parse_netlist(deck)


class TestHarmonicBalanceFailures:
    def test_hb_outside_lock_range(self, tank):
        from repro.core.harmonic_balance import HbConvergenceError, hb_lock_state

        tanh = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        with pytest.raises(HbConvergenceError, match="lock"):
            hb_lock_state(
                tanh, tank, v_i=0.03,
                w_injection=3 * tank.center_frequency * 1.05, n=3,
            )
