"""Batched quadrature demodulation against the per-record reference."""

import numpy as np
import pytest

from repro.measure.phase import quadrature_demodulate, quadrature_demodulate_many
from repro.measure.waveform import Waveform


def _batch(rng, w_refs, n_samples=6000, dt=1e-7, detune=1.0001):
    t = np.arange(n_samples) * dt
    phases = rng.uniform(0.0, 2.0 * np.pi, w_refs.size)
    x = np.cos(np.outer(t, w_refs * detune) + phases)
    x += 0.01 * rng.standard_normal(x.shape)
    return t, x


class TestParity:
    def test_matches_per_record_reference(self, rng):
        w_refs = 2.0 * np.pi * 1.59e5 * np.linspace(0.98, 1.02, 8)
        t, x = _batch(rng, w_refs)
        many = quadrature_demodulate_many(t, x, w_refs)
        for j, w_ref in enumerate(w_refs):
            single = quadrature_demodulate(Waveform(t, x[:, j]), w_ref)
            assert np.array_equal(many[j].t, single.t)
            assert np.allclose(many[j].amplitude, single.amplitude, atol=1e-11)
            assert np.allclose(many[j].phase, single.phase, atol=1e-11)
            assert many[j].w_ref == single.w_ref

    def test_mixed_window_lengths(self, rng):
        # Wide reference spread -> several distinct smoothing windows.
        w_refs = 2.0 * np.pi * 1.59e5 * np.linspace(0.7, 1.4, 6)
        t, x = _batch(rng, w_refs)
        many = quadrature_demodulate_many(t, x, w_refs)
        lengths = set()
        for j, w_ref in enumerate(w_refs):
            single = quadrature_demodulate(Waveform(t, x[:, j]), w_ref)
            lengths.add(single.t.size)
            assert np.array_equal(many[j].t, single.t)
            assert np.allclose(many[j].phase, single.phase, atol=1e-11)
        assert len(lengths) > 1

    def test_derived_metrics_agree(self, rng):
        w_refs = 2.0 * np.pi * 1.59e5 * np.linspace(0.99, 1.01, 5)
        t, x = _batch(rng, w_refs, detune=1.0)
        many = quadrature_demodulate_many(t, x, w_refs)
        for j, w_ref in enumerate(w_refs):
            single = quadrature_demodulate(Waveform(t, x[:, j]), w_ref)
            assert many[j].mean_frequency() == pytest.approx(
                single.mean_frequency(), rel=1e-12
            )
            assert many[j].phase_drift() == pytest.approx(
                single.phase_drift(), abs=1e-11
            )


class TestValidation:
    def test_shape_mismatches(self, rng):
        t = np.arange(1000) * 1e-7
        x = rng.standard_normal((1000, 3))
        w = 2.0 * np.pi * 1.59e5
        with pytest.raises(ValueError):
            quadrature_demodulate_many(t, x[:-1], np.full(3, w))
        with pytest.raises(ValueError):
            quadrature_demodulate_many(t, x, np.full(2, w))
        with pytest.raises(ValueError):
            quadrature_demodulate_many(t, x, np.asarray([w, -w, w]))
        with pytest.raises(ValueError):
            quadrature_demodulate_many(t, x, np.full(3, w), smooth_periods=0)

    def test_too_short_record(self, rng):
        t = np.arange(50) * 1e-7
        x = rng.standard_normal((50, 2))
        w = np.full(2, 2.0 * np.pi * 1.59e5)
        with pytest.raises(ValueError, match="too short"):
            quadrature_demodulate_many(t, x, w)
