"""StreamingLockDetector unit behaviour + fast-vs-referee edge agreement."""

import numpy as np
import pytest

from repro.measure import simulate_lock_range
from repro.measure.lockdetect import StreamingLockDetector
from repro.nonlin import NegativeTanh
from repro.tank import ParallelRLC

W_REF = 2.0 * np.pi * 1e5
PERIOD = 2.0 * np.pi / W_REF


def _feed(detector, freqs, *, chunks=40, chunk_cycles=25, fs_per_cycle=64):
    """Stream synthetic cosines at per-member `freqs` into the detector."""
    n = len(freqs)
    dt = PERIOD / fs_per_cycle
    samples = int(chunk_cycles * fs_per_cycle)
    active = np.arange(n)
    for c in range(chunks):
        t = (c * samples + 1 + np.arange(samples)) * dt
        v = np.cos(np.asarray(freqs)[None, :] * t[:, None])
        if active.size == 0:
            break
        decided = detector.update(t, v[:, active], active)
        active = active[~decided]
    return active


def _detector(n, **overrides):
    kwargs = dict(
        w_refs=np.full(n, W_REF),
        observe_time=150 * PERIOD,
        min_decide_time=100 * PERIOD,
    )
    kwargs.update(overrides)
    return StreamingLockDetector(**kwargs)


class TestStreamingLockDetector:
    def test_clean_lock_decided_early(self):
        det = _detector(1)
        remaining = _feed(det, [W_REF])
        assert remaining.size == 0
        assert det.codes[0] == StreamingLockDetector.LOCKED
        assert det.verdict(0).locked

    def test_fast_beat_decided_unlocked(self):
        det = _detector(1)
        remaining = _feed(det, [W_REF * 1.01])
        assert remaining.size == 0
        assert det.codes[0] == StreamingLockDetector.UNLOCKED
        assert not det.verdict(0).locked

    def test_slow_beat_stays_undecided(self):
        # A beat slower than the unlock excursion but drifting more than
        # the (margined) lock tolerance must fall through to the referee.
        det = _detector(1, unlock_cycles=3.0)
        total_time = 40 * 25 * PERIOD
        dw = 2.0 * np.pi * 1.5 / total_time  # 1.5 turns over the whole feed
        remaining = _feed(det, [W_REF + dw])
        assert remaining.tolist() == [0]
        assert det.codes[0] == StreamingLockDetector.UNDECIDED
        assert det.verdict(0) is None

    def test_no_verdict_before_min_decide_time(self):
        det = _detector(1, min_decide_time=1e6 * PERIOD)
        remaining = _feed(det, [W_REF * 1.01])
        assert remaining.tolist() == [0]
        assert det.verdict(0) is None

    def test_mixed_batch_partitions(self):
        det = _detector(3)
        total_time = 40 * 25 * PERIOD
        slow = W_REF + 2.0 * np.pi * 1.5 / total_time
        remaining = _feed(det, [W_REF, slow, W_REF * 1.02])
        assert remaining.tolist() == [1]
        assert det.codes[0] == StreamingLockDetector.LOCKED
        assert det.codes[2] == StreamingLockDetector.UNLOCKED

    def test_rejects_nonpositive_w_refs(self):
        with pytest.raises(ValueError):
            _detector(1, w_refs=np.array([0.0]))


class TestFastLockRangeEdges:
    def test_edges_match_reference_within_resolution(self):
        """The tentpole acceptance shape, at test-suite scale."""
        tanh = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        tank = ParallelRLC(r=1000.0, l=100e-6, c=10e-9)
        kwargs = dict(
            v_i=0.03,
            n=3,
            scan_rel_span=0.008,
            batch=8,
            rounds=1,
            settle_cycles=200.0,
            acquire_cycles=350.0,
            observe_cycles=200.0,
            steps_per_cycle=48,
        )
        ref = simulate_lock_range(tanh, tank, engine="reference", **kwargs)
        fast = simulate_lock_range(tanh, tank, engine="auto", **kwargs)
        assert fast.resolution == ref.resolution
        assert abs(fast.injection_lower - ref.injection_lower) <= ref.resolution
        assert abs(fast.injection_upper - ref.injection_upper) <= ref.resolution
