"""Tests for the Waveform container."""

import numpy as np
import pytest

from repro.measure import Waveform


def _sine(freq=1e3, duration=0.01, fs=1e6, phase=0.0):
    t = np.arange(0.0, duration, 1.0 / fs)
    return Waveform(t, np.cos(2 * np.pi * freq * t + phase))


class TestConstruction:
    def test_basic(self):
        wf = _sine()
        assert wf.dt == pytest.approx(1e-6)
        assert wf.duration == pytest.approx(0.01, rel=1e-3)
        assert len(wf) == 10000

    def test_rejects_nonuniform(self):
        t = np.array([0.0, 1.0, 2.5, 3.0])
        with pytest.raises(ValueError, match="uniform"):
            Waveform(t, np.zeros(4))

    def test_rejects_decreasing(self):
        t = np.array([0.0, 2.0, 1.0, 3.0])
        with pytest.raises(ValueError, match="increasing"):
            Waveform(t, np.zeros(4))

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError):
            Waveform(np.arange(5.0), np.zeros(4))

    def test_rejects_nan(self):
        t = np.arange(5.0)
        x = np.array([0.0, 1.0, np.nan, 0.0, 1.0])
        with pytest.raises(ValueError):
            Waveform(t, x)

    def test_rejects_too_short(self):
        with pytest.raises(ValueError):
            Waveform(np.arange(3.0), np.zeros(3))


class TestSlicing:
    def test_slice_time(self):
        wf = _sine()
        part = wf.slice_time(0.002, 0.004)
        assert part.t[0] >= 0.002
        assert part.t[-1] <= 0.004

    def test_last_cycles(self):
        wf = _sine(freq=1e3)
        w0 = 2 * np.pi * 1e3
        tail = wf.last_cycles(3.0, w0)
        assert tail.duration == pytest.approx(3e-3, rel=1e-2)

    def test_slice_too_narrow_rejected(self):
        wf = _sine()
        with pytest.raises(ValueError):
            wf.slice_time(0.0050000, 0.0050001)


class TestZeroCrossings:
    def test_rising_count(self):
        wf = _sine(freq=1e3, duration=0.01)
        crossings = wf.zero_crossings(rising=True)
        assert crossings.size == pytest.approx(10, abs=1)

    def test_falling_differs_from_rising(self):
        wf = _sine(freq=1e3)
        rising = wf.zero_crossings(rising=True)
        falling = wf.zero_crossings(rising=False)
        assert not np.allclose(rising[: falling.size], falling[: rising.size])

    def test_frequency_from_crossings(self):
        wf = _sine(freq=1e3)
        assert wf.frequency_from_crossings() == pytest.approx(
            2 * np.pi * 1e3, rel=1e-6
        )

    def test_no_crossings_for_dc(self):
        t = np.arange(0.0, 1.0, 0.01)
        wf = Waveform(t, np.ones_like(t))
        assert wf.zero_crossings().size == 0
        with pytest.raises(ValueError):
            wf.frequency_from_crossings()
