"""Tests for the pulse-kick states experiment (light settings)."""

import numpy as np
import pytest

from repro.core import enumerate_states, solve_lock_states
from repro.measure import run_states_experiment
from repro.nonlin import NegativeTanh
from repro.tank import ParallelRLC


@pytest.fixture(scope="module")
def setup():
    return (
        NegativeTanh(gm=2.5e-3, i_sat=1e-3),
        ParallelRLC(r=1000.0, l=100e-6, c=10e-9),
    )


@pytest.fixture(scope="module")
def experiment(setup):
    tanh, tank = setup
    w_inj = 3 * tank.center_frequency
    solution = solve_lock_states(tanh, tank, v_i=0.03, w_injection=w_inj, n=3)
    lock = solution.stable_locks[0]
    states = enumerate_states(lock.phi, 3)
    return (
        run_states_experiment(
            tanh,
            tank,
            v_i=0.03,
            w_injection=w_inj,
            n=3,
            theoretical_states=states,
            # Diverse fractional-cycle kick phases; the default kick
            # profile (amplitude-scaled, strength-swept, alternating
            # polarity) visits several of the n states.
            pulse_times_cycles=(600.37, 1200.71, 1800.13, 2400.59),
            acquire_cycles=400.0,
            settle_cycles=200.0,
            steps_per_cycle=48,
        ),
        lock,
    )


class TestStatesExperiment:
    def test_segments_all_relock(self, experiment):
        result, __ = experiment
        assert len(result.segments) >= 3
        assert all(seg.locked for seg in result.segments)

    def test_multiple_states_visited(self, experiment):
        result, __ = experiment
        assert len(result.observed_states) >= 2

    def test_phases_match_theory(self, experiment):
        result, __ = experiment
        errors = result.state_spacing_errors()
        assert errors.size > 0
        # Finite-Q DF phase offset stays well under a state spacing
        # (2 pi / 3 ~ 2.1 rad).
        assert float(np.max(errors)) < 0.3

    def test_amplitudes_match_lock(self, experiment):
        result, lock = experiment
        for seg in result.segments:
            assert seg.amplitude == pytest.approx(lock.amplitude, rel=5e-3)

    def test_state_labels_valid(self, experiment):
        result, __ = experiment
        for seg in result.segments:
            assert 0 <= seg.state_index < 3

    def test_phase_trace_available(self, experiment):
        result, __ = experiment
        assert result.waveform_t.size == result.waveform_phase.size
        assert result.waveform_t.size > 100

    def test_rejects_wrong_state_count(self, setup):
        tanh, tank = setup
        with pytest.raises(ValueError, match="3"):
            run_states_experiment(
                tanh,
                tank,
                v_i=0.03,
                w_injection=3 * tank.center_frequency,
                n=3,
                theoretical_states=np.array([0.0, 1.0]),
            )
