"""Tests for waveform CSV interop."""

import numpy as np
import pytest

from repro.measure import Waveform


class TestCsvRoundtrip:
    def test_roundtrip(self, tmp_path):
        t = np.linspace(0.0, 1e-3, 1000)
        wf = Waveform(t, np.sin(2 * np.pi * 5e3 * t))
        path = tmp_path / "wave.csv"
        wf.to_csv(path)
        back = Waveform.from_csv(path)
        assert np.allclose(back.t, wf.t)
        assert np.allclose(back.x, wf.x)

    def test_header_written(self, tmp_path):
        t = np.linspace(0.0, 1.0, 10)
        Waveform(t, t).to_csv(tmp_path / "w.csv")
        first = (tmp_path / "w.csv").read_text().splitlines()[0]
        assert first == "t,x"

    def test_from_csv_validates_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("t\n1\n2\n3\n4\n")
        with pytest.raises(ValueError):
            Waveform.from_csv(path)

    def test_loaded_waveform_measurable(self, tmp_path):
        from repro.measure import measure_steady_state

        t = np.arange(0.0, 50e-5, 1.0 / 64e5)
        wf = Waveform(t, 0.7 * np.cos(2 * np.pi * 1e5 * t))
        path = tmp_path / "tone.csv"
        wf.to_csv(path)
        state = measure_steady_state(Waveform.from_csv(path))
        assert state.amplitude == pytest.approx(0.7, rel=1e-4)
