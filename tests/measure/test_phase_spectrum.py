"""Tests for demodulation, harmonic analysis and steady-state measurement."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.measure import (
    Waveform,
    harmonic_phasors,
    measure_steady_state,
    quadrature_demodulate,
    thd,
)
from repro.measure.spectrum import dominant_frequency


def _tone(freq=1e5, amp=1.0, phase=0.3, duration=None, fs=None, harmonics=()):
    if duration is None:
        duration = 60.0 / freq
    if fs is None:
        fs = 64 * freq
    t = np.arange(0.0, duration, 1.0 / fs)
    x = amp * np.cos(2 * np.pi * freq * t + phase)
    for k, hamp in harmonics:
        x = x + hamp * np.cos(2 * np.pi * k * freq * t)
    return Waveform(t, x)


class TestQuadratureDemodulate:
    def test_amplitude_and_phase_recovered(self):
        wf = _tone(amp=0.7, phase=0.3)
        demod = quadrature_demodulate(wf, 2 * np.pi * 1e5)
        assert np.mean(demod.amplitude) == pytest.approx(0.7, rel=1e-6)
        assert demod.settled_phase() == pytest.approx(0.3, abs=1e-6)

    def test_frequency_offset_appears_as_phase_slope(self):
        wf = _tone(freq=1.001e5)
        demod = quadrature_demodulate(wf, 2 * np.pi * 1e5)
        assert demod.mean_frequency() == pytest.approx(2 * np.pi * 1.001e5, rel=1e-6)

    def test_drift_zero_for_locked_tone(self):
        wf = _tone()
        demod = quadrature_demodulate(wf, 2 * np.pi * 1e5)
        assert demod.phase_drift() < 1e-6

    def test_ripple_small_for_clean_tone(self):
        wf = _tone()
        demod = quadrature_demodulate(wf, 2 * np.pi * 1e5)
        assert demod.amplitude_ripple() < 1e-6

    def test_harmonics_rejected_by_smoothing(self):
        wf = _tone(harmonics=((3, 0.2),))
        demod = quadrature_demodulate(wf, 2 * np.pi * 1e5, smooth_periods=2)
        assert np.mean(demod.amplitude) == pytest.approx(1.0, rel=1e-4)

    def test_too_short_record_rejected(self):
        wf = _tone(duration=2e-5)
        with pytest.raises(ValueError, match="too short"):
            quadrature_demodulate(wf, 2 * np.pi * 1e5, smooth_periods=2)

    @settings(max_examples=20)
    @given(
        st.floats(min_value=0.1, max_value=3.0),
        st.floats(min_value=-3.0, max_value=3.0),
    )
    def test_amplitude_phase_roundtrip(self, amp, phase):
        wf = _tone(amp=amp, phase=phase)
        demod = quadrature_demodulate(wf, 2 * np.pi * 1e5)
        assert np.mean(demod.amplitude) == pytest.approx(amp, rel=1e-5)
        recovered = np.angle(np.exp(1j * (demod.settled_phase() - phase)))
        assert recovered == pytest.approx(0.0, abs=1e-5)


class TestHarmonicPhasors:
    def test_pure_tone(self):
        wf = _tone(amp=2.0, phase=0.0)
        phasors = harmonic_phasors(wf, 2 * np.pi * 1e5, k_max=4)
        assert phasors[1] == pytest.approx(1.0, rel=1e-4)  # X_1 = A/2
        assert abs(phasors[2]) < 1e-4
        assert abs(phasors[0]) < 1e-4

    def test_harmonic_content(self):
        wf = _tone(amp=1.0, phase=0.0, harmonics=((3, 0.25),))
        phasors = harmonic_phasors(wf, 2 * np.pi * 1e5, k_max=4)
        assert abs(phasors[3]) == pytest.approx(0.125, rel=1e-3)

    def test_thd(self):
        wf = _tone(amp=1.0, phase=0.0, harmonics=((2, 0.1), (3, 0.1)))
        measured = thd(wf, 2 * np.pi * 1e5)
        assert measured == pytest.approx(np.sqrt(0.05**2 + 0.05**2) / 0.5, rel=1e-2)

    def test_record_too_short(self):
        wf = _tone(duration=0.5 / 1e5)
        with pytest.raises(ValueError, match="one fundamental period"):
            harmonic_phasors(wf, 2 * np.pi * 1e5)


class TestDominantFrequency:
    def test_recovers_tone(self):
        wf = _tone(freq=1e5)
        assert dominant_frequency(wf) == pytest.approx(2 * np.pi * 1e5, rel=1e-3)

    def test_ignores_dc(self):
        wf = _tone(freq=1e5)
        shifted = Waveform(wf.t, wf.x + 5.0)
        assert dominant_frequency(shifted) == pytest.approx(2 * np.pi * 1e5, rel=1e-3)


class TestMeasureSteadyState:
    def test_clean_tone(self):
        wf = _tone(amp=0.505, freq=5.033e5, duration=100 / 5.033e5)
        state = measure_steady_state(wf)
        assert state.amplitude == pytest.approx(0.505, rel=1e-5)
        assert state.frequency_hz == pytest.approx(5.033e5, rel=1e-6)
        assert state.settled
        assert state.thd < 1e-4

    def test_hint_accepted(self):
        wf = _tone(freq=1e5)
        state = measure_steady_state(wf, w_hint=2 * np.pi * 1.02e5)
        assert state.frequency_hz == pytest.approx(1e5, rel=1e-5)

    def test_unsettled_detected(self):
        t = np.arange(0.0, 50e-5, 1.0 / (64e5))
        growing = (1.0 + 20.0 * t / t[-1]) * np.cos(2 * np.pi * 1e5 * t)
        state = measure_steady_state(Waveform(t, growing))
        assert not state.settled
