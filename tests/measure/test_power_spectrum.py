"""Tests for the power-spectrum utility, incl. the pulling-sideband picture."""

import numpy as np
import pytest

from repro.measure import Waveform, power_spectrum


def _tone(freq=1e5, amp=1.0, duration=None, fs=None):
    if duration is None:
        duration = 200.0 / freq
    if fs is None:
        fs = 32 * freq
    t = np.arange(0.0, duration, 1.0 / fs)
    return Waveform(t, amp * np.cos(2 * np.pi * freq * t))


class TestPowerSpectrum:
    def test_single_line_power(self):
        wf = _tone(amp=0.8)
        f, p = power_spectrum(wf)
        peak = int(np.argmax(p))
        assert f[peak] == pytest.approx(1e5, rel=1e-2)
        # A-squared-over-two normalisation (window scalloping < 1%
        # because the tone falls on a near-integer number of cycles).
        assert p[peak] == pytest.approx(0.8**2 / 2.0, rel=0.05)

    def test_dc_removed(self):
        wf = _tone()
        shifted = Waveform(wf.t, wf.x + 3.0)
        f, p = power_spectrum(shifted)
        assert p[0] < 1e-10

    def test_two_tones_resolved(self):
        t = np.arange(0.0, 2e-3, 1.0 / 32e5)
        x = np.cos(2 * np.pi * 1e5 * t) + 0.3 * np.cos(2 * np.pi * 1.2e5 * t)
        f, p = power_spectrum(Waveform(t, x))
        main = p[np.argmin(np.abs(f - 1e5))]
        side = p[np.argmin(np.abs(f - 1.2e5))]
        assert side / main == pytest.approx(0.09, rel=0.1)

    def test_unknown_window_rejected(self):
        with pytest.raises(ValueError):
            power_spectrum(_tone(), window="flattop")


class TestPullingSidebands:
    def test_pulled_oscillator_spectrum_structure(self):
        # Quasi-lock spectrum just outside the n = 3 lock range.  The
        # oscillator's phase slips by 2 pi / 3 per beat cycle (one state
        # spacing), so the dominant sideband pair sits at ~3x the
        # slow-flow beat frequency, and the main line's near skirt is
        # asymmetric — heavier away from the injection (the Adler/Armand
        # quasi-lock picture, paper ref [5], with the n-state structure
        # stamped on it).
        from repro.core import analyze_pulling, predict_lock_range
        from repro.nonlin import NegativeTanh
        from repro.odesim import InjectionSpec, simulate_oscillator
        from repro.tank import ParallelRLC

        tanh = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        tank = ParallelRLC(r=1000.0, l=100e-6, c=10e-9)
        lr = predict_lock_range(tanh, tank, v_i=0.03, n=3)
        w_inj = lr.injection_upper * 1.01
        pulled = analyze_pulling(tanh, tank, v_i=0.03, w_injection=w_inj, n=3)
        assert not pulled.locked
        beat_hz = pulled.beat_frequency / (2 * np.pi)
        assert beat_hz > 0

        period = 2 * np.pi / tank.center_frequency
        sim = simulate_oscillator(
            tanh,
            tank,
            t_end=2500 * period,
            injection=InjectionSpec(v_i=0.03, w=np.array([w_inj])),
            record_start=500 * period,
        )
        f, p = power_spectrum(Waveform(sim.t, sim.v[:, 0]))
        peak = int(np.argmax(p))
        f_main = f[peak]

        # Dominant discrete sideband pair: search beyond the main-line
        # skirt, find the strongest line, check its offset ~ 3x beat.
        df = f[1] - f[0]
        skirt = 10 * df
        upper_mask = (f > f_main + skirt) & (f < f_main + 6 * beat_hz)
        side_idx = np.argmax(p[upper_mask])
        f_side = f[upper_mask][side_idx]
        offset = f_side - f_main
        assert offset == pytest.approx(3 * beat_hz, rel=0.25)
        # Mirror line exists on the low side too.
        lower_mask = np.abs(f - (f_main - offset)) < 3 * df
        assert p[lower_mask].max() > 1e-4 * p[peak]

        # Near-skirt asymmetry: with the injection above the carrier, the
        # line adjacent to the main peak is heavier on the low side.
        low_skirt = p[peak - 2]
        high_skirt = p[peak + 2]
        assert low_skirt > 2.0 * high_skirt
