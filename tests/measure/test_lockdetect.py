"""Tests for the lock detector on synthetic and simulated waveforms."""

import numpy as np
import pytest

from repro.measure import Waveform, detect_lock
from repro.nonlin import NegativeTanh
from repro.odesim import InjectionSpec, simulate_oscillator
from repro.tank import ParallelRLC


def _tone(freq, duration, fs, phase=0.0, drift=0.0):
    t = np.arange(0.0, duration, 1.0 / fs)
    return Waveform(t, np.cos(2 * np.pi * freq * t + phase + drift * t))


class TestSyntheticSignals:
    def test_exact_subharmonic_is_locked(self):
        f_osc = 1e5
        wf = _tone(f_osc, 100 / f_osc, 64 * f_osc, phase=1.2)
        verdict = detect_lock(wf, 2 * np.pi * 3 * f_osc, 3)
        assert verdict.locked
        assert verdict.phase == pytest.approx(1.2, abs=1e-6)
        assert abs(verdict.residual_beat) < 1.0

    def test_detuned_oscillator_not_locked(self):
        f_osc = 1.0005e5  # 0.05% off the reference
        wf = _tone(f_osc, 200 / f_osc, 64 * f_osc)
        verdict = detect_lock(wf, 2 * np.pi * 3e5, 3)
        assert not verdict.locked
        # The residual beat is the detuning itself.
        assert verdict.residual_beat == pytest.approx(2 * np.pi * 50.0, rel=1e-3)
        assert verdict.phase_drift > 0.5

    def test_slow_phase_drift_rejected(self):
        f_osc = 1e5
        # A 2 rad drift across the window: pulling, not locking.
        wf = _tone(f_osc, 100 / f_osc, 64 * f_osc, drift=2.0 / (100 / f_osc))
        verdict = detect_lock(wf, 2 * np.pi * 3e5, 3)
        assert not verdict.locked

    def test_fundamental_case(self):
        f_osc = 1e5
        wf = _tone(f_osc, 100 / f_osc, 64 * f_osc)
        assert detect_lock(wf, 2 * np.pi * f_osc, 1).locked

    def test_rejects_bad_n(self):
        wf = _tone(1e5, 1e-3, 64e5)
        with pytest.raises(ValueError):
            detect_lock(wf, 2 * np.pi * 3e5, 0)


class TestSimulatedOscillator:
    @pytest.fixture(scope="class")
    def setup(self):
        return (
            NegativeTanh(gm=2.5e-3, i_sat=1e-3),
            ParallelRLC(r=1000.0, l=100e-6, c=10e-9),
        )

    def test_in_range_injection_locks(self, setup):
        tanh, tank = setup
        period = 2 * np.pi / tank.center_frequency
        w_inj = 3 * tank.center_frequency * 1.0005
        result = simulate_oscillator(
            tanh,
            tank,
            t_end=700 * period,
            injection=InjectionSpec(v_i=0.03, w=np.array([w_inj])),
            record_start=450 * period,
        )
        verdict = detect_lock(Waveform(result.t, result.v[:, 0]), w_inj, 3)
        assert verdict.locked

    def test_out_of_range_injection_does_not_lock(self, setup):
        tanh, tank = setup
        period = 2 * np.pi / tank.center_frequency
        w_inj = 3 * tank.center_frequency * 1.01
        result = simulate_oscillator(
            tanh,
            tank,
            t_end=700 * period,
            injection=InjectionSpec(v_i=0.03, w=np.array([w_inj])),
            record_start=450 * period,
        )
        verdict = detect_lock(Waveform(result.t, result.v[:, 0]), w_inj, 3)
        assert not verdict.locked

    def test_locked_phase_matches_prediction(self, setup):
        from repro.core import solve_lock_states

        tanh, tank = setup
        period = 2 * np.pi / tank.center_frequency
        w_inj = 3 * tank.center_frequency
        solution = solve_lock_states(tanh, tank, v_i=0.03, w_injection=w_inj, n=3)
        stable = solution.stable_locks[0]
        result = simulate_oscillator(
            tanh,
            tank,
            t_end=900 * period,
            injection=InjectionSpec(v_i=0.03, w=np.array([w_inj])),
            record_start=600 * period,
        )
        verdict = detect_lock(Waveform(result.t, result.v[:, 0]), w_inj, 3)
        assert verdict.locked
        # Amplitude matches the describing-function prediction.
        assert verdict.amplitude == pytest.approx(stable.amplitude, rel=1e-3)
        # Phase lands on one of the n predicted states (to the DF
        # approximation's finite-Q accuracy).
        distances = np.abs(
            np.angle(np.exp(1j * (verdict.phase - stable.oscillator_phases)))
        )
        assert float(np.min(distances)) < 0.1
