"""Tests for the simulated lock range (kept light: coarse settings)."""

import numpy as np
import pytest

from repro.core import predict_lock_range
from repro.measure import simulate_lock_range
from repro.measure.lockrange_sim import LockScanError
from repro.nonlin import NegativeTanh
from repro.tank import ParallelRLC


@pytest.fixture(scope="module")
def setup():
    return (
        NegativeTanh(gm=2.5e-3, i_sat=1e-3),
        ParallelRLC(r=1000.0, l=100e-6, c=10e-9),
    )


@pytest.fixture(scope="module")
def simulated(setup):
    tanh, tank = setup
    # Coarse but real: one scan + one refinement round per edge.
    return simulate_lock_range(
        tanh,
        tank,
        v_i=0.03,
        n=3,
        scan_rel_span=0.008,
        batch=8,
        rounds=1,
        settle_cycles=200.0,
        acquire_cycles=350.0,
        observe_cycles=200.0,
        steps_per_cycle=48,
    )


class TestSimulateLockRange:
    def test_brackets_center(self, setup, simulated):
        __, tank = setup
        center = 3 * tank.center_frequency
        assert simulated.injection_lower < center < simulated.injection_upper

    def test_agrees_with_prediction(self, setup, simulated):
        tanh, tank = setup
        predicted = predict_lock_range(tanh, tank, v_i=0.03, n=3)
        assert simulated.injection_lower == pytest.approx(
            predicted.injection_lower, rel=2e-3
        )
        assert simulated.injection_upper == pytest.approx(
            predicted.injection_upper, rel=2e-3
        )

    def test_probes_recorded(self, simulated):
        assert len(simulated.probes) >= 8
        assert any(flag for _, flag in simulated.probes)
        assert any(not flag for _, flag in simulated.probes)

    def test_probe_classifications_consistent_with_range(self, simulated):
        for w, locked in simulated.probes:
            if simulated.injection_lower * 1.001 < w < simulated.injection_upper * 0.999:
                assert locked, f"probe inside range at {w} classified unlocked"

    def test_hz_accessors(self, simulated):
        assert simulated.width_hz == pytest.approx(
            (simulated.injection_upper - simulated.injection_lower) / (2 * np.pi)
        )

    def test_window_too_small_raises(self, setup):
        tanh, tank = setup
        with pytest.raises(LockScanError, match="beyond the scan window"):
            simulate_lock_range(
                tanh,
                tank,
                v_i=0.03,
                n=3,
                scan_rel_span=5e-4,  # narrower than the lock range
                batch=6,
                rounds=1,
                settle_cycles=150.0,
                acquire_cycles=250.0,
                observe_cycles=150.0,
                steps_per_cycle=48,
            )

    def test_rejects_small_batch(self, setup):
        tanh, tank = setup
        with pytest.raises(ValueError):
            simulate_lock_range(tanh, tank, v_i=0.03, n=3, batch=2)
