"""Tests for the batched oscillator transient engine."""

import numpy as np
import pytest

from repro.measure import Waveform, measure_steady_state
from repro.nonlin import NegativeTanh
from repro.odesim import InjectionSpec, PulseSpec, simulate_oscillator
from repro.tank import GeneralTank, ParallelRLC


@pytest.fixture(scope="module")
def setup():
    return (
        NegativeTanh(gm=2.5e-3, i_sat=1e-3),
        ParallelRLC(r=1000.0, l=100e-6, c=10e-9),
    )


class TestFreeRunning:
    def test_startup_growth_and_settling(self, setup):
        tanh, tank = setup
        period = 2 * np.pi / tank.center_frequency
        result = simulate_oscillator(tanh, tank, t_end=300 * period)
        v = result.v[:, 0]
        # Grows from the mV seed to volt-scale swing.  The envelope time
        # constant is only ~2 cycles here, so look at the first few
        # cycles for "still small" and the tail for "settled large".
        assert np.max(np.abs(v[: len(v) // 100])) < 0.5
        assert np.max(np.abs(v[-len(v) // 10 :])) > 1.0

    def test_amplitude_matches_describing_function(self, setup):
        from repro.core import predict_natural_oscillation

        tanh, tank = setup
        period = 2 * np.pi / tank.center_frequency
        result = simulate_oscillator(
            tanh, tank, t_end=350 * period, record_start=300 * period
        )
        state = measure_steady_state(Waveform(result.t, result.v[:, 0]))
        natural = predict_natural_oscillation(tanh, tank)
        assert state.amplitude == pytest.approx(natural.amplitude, rel=5e-4)

    def test_no_oscillation_below_startup(self, setup):
        __, tank = setup
        weak = NegativeTanh(gm=0.5e-3, i_sat=1e-3)
        period = 2 * np.pi / tank.center_frequency
        result = simulate_oscillator(weak, tank, t_end=150 * period, v0=0.1)
        assert abs(result.v[-1, 0]) < 1e-3

    def test_energy_decay_rate_without_device(self, setup):
        # Pure RLC decay: envelope time constant is 2RC.
        __, tank = setup
        from repro.nonlin import FunctionNonlinearity

        dead = FunctionNonlinearity(lambda v: np.zeros_like(v), name="open")
        period = 2 * np.pi / tank.center_frequency
        result = simulate_oscillator(
            dead, tank, t_end=40 * period, v0=1.0, steps_per_cycle=128
        )
        from repro.measure import quadrature_demodulate

        demod = quadrature_demodulate(
            Waveform(result.t, result.v[:, 0]), tank.center_frequency
        )
        tau = 2.0 * tank.r * tank.c
        fit = np.polyfit(demod.t, np.log(demod.amplitude), 1)[0]
        assert fit == pytest.approx(-1.0 / tau, rel=2e-3)


class TestInjection:
    def test_batch_shapes(self, setup):
        tanh, tank = setup
        period = 2 * np.pi / tank.center_frequency
        w = 3 * tank.center_frequency * np.array([0.999, 1.0, 1.001])
        result = simulate_oscillator(
            tanh,
            tank,
            t_end=50 * period,
            injection=InjectionSpec(v_i=0.03, w=w),
        )
        assert result.batch_size == 3
        assert result.v.shape[1] == 3
        assert np.all(result.w_injection == w)

    def test_member_extraction(self, setup):
        tanh, tank = setup
        period = 2 * np.pi / tank.center_frequency
        w = 3 * tank.center_frequency * np.array([1.0, 1.001])
        result = simulate_oscillator(
            tanh, tank, t_end=20 * period, injection=InjectionSpec(v_i=0.03, w=w)
        )
        member = result.member(1)
        assert member.batch_size == 1
        assert np.allclose(member.v[:, 0], result.v[:, 1])

    def test_tail_slicing(self, setup):
        tanh, tank = setup
        period = 2 * np.pi / tank.center_frequency
        result = simulate_oscillator(tanh, tank, t_end=50 * period)
        tail = result.tail(25 * period)
        assert tail.t[0] >= 25 * period
        assert tail.t.size < result.t.size

    def test_injection_spec_amplitude_convention(self):
        spec = InjectionSpec(v_i=0.03, w=np.array([1.0]))
        assert spec.amplitude() == pytest.approx(0.06)
        assert spec.voltage(0.0, np.array([1.0]))[0] == pytest.approx(0.06)


class TestPulse:
    def test_pulse_value_window(self):
        p = PulseSpec(t_start=1.0, duration=0.5, current=1e-3)
        assert p.value(0.9) == 0.0
        assert p.value(1.2) == 1e-3
        assert p.value(1.6) == 0.0

    def test_pulse_perturbs_trajectory(self, setup):
        tanh, tank = setup
        period = 2 * np.pi / tank.center_frequency
        base = simulate_oscillator(tanh, tank, t_end=60 * period, v0=0.5)
        kicked = simulate_oscillator(
            tanh,
            tank,
            t_end=60 * period,
            v0=0.5,
            pulses=(PulseSpec(t_start=30 * period, duration=period, current=5e-3),),
        )
        before = np.allclose(
            base.v[base.t < 29 * period], kicked.v[kicked.t < 29 * period]
        )
        after = np.allclose(
            base.v[base.t > 35 * period], kicked.v[kicked.t > 35 * period], atol=1e-3
        )
        assert before and not after


class TestValidation:
    def test_rejects_general_tank(self, setup):
        tanh, tank = setup
        sampled = GeneralTank.from_tank(tank, span=0.4, n=500)
        with pytest.raises(TypeError, match="ParallelRLC"):
            simulate_oscillator(tanh, sampled, t_end=1e-3)

    def test_rejects_coarse_stepping(self, setup):
        tanh, tank = setup
        with pytest.raises(ValueError, match="steps_per_cycle"):
            simulate_oscillator(tanh, tank, t_end=1e-3, steps_per_cycle=8)

    def test_uniform_time_axis(self, setup):
        tanh, tank = setup
        period = 2 * np.pi / tank.center_frequency
        result = simulate_oscillator(
            tanh, tank, t_end=20.3 * period, record_every=3
        )
        # Must be Waveform-compatible (uniform to 1 ppm).
        Waveform(result.t, result.v[:, 0])
