"""Backend parity for the chunked RK4 kernels (C / numba / numpy)."""

import numpy as np
import pytest

from repro.nonlin import (
    BiasedTunnelDiode,
    CrossCoupledDiffPair,
    CubicNonlinearity,
    LinearTableNonlinearity,
    NegativeTanh,
    PiecewiseLinearNegativeResistance,
    TabulatedNonlinearity,
    TunnelDiode,
)
from repro.odesim.kernels import (
    LAW_KINDS,
    available_backends,
    best_compiled_backend,
    build_stepper,
)
from repro.tank import ParallelRLC

TANK = ParallelRLC(r=1000.0, l=100e-6, c=10e-9)


def _table_pair():
    v = np.linspace(-2.0, 2.0, 41)
    return v, -1e-3 * np.tanh(2.5 * v)


#: One representative per CompiledLaw kind (the table entry covers both
#: the direct LinearTableNonlinearity and the shifted composition).
LAWS = {
    "tanh": NegativeTanh(gm=2.5e-3, i_sat=1e-3),
    "cubic": CubicNonlinearity(a=2.5e-3, b=1e-3),
    "pwl": PiecewiseLinearNegativeResistance(g=2.5e-3, v_knee=0.4),
    "tunnel": BiasedTunnelDiode(TunnelDiode(), v_bias=0.25),
    "table": LinearTableNonlinearity(*_table_pair()),
}


def _stepper_kwargs(h):
    return dict(
        v_i2=2.0 * 0.03,
        phase=0.0,
        pulses=(),
        inv_c=1.0 / TANK.c,
        inv_l=1.0 / TANK.l,
        inv_rc=1.0 / (TANK.r * TANK.c),
        h=h,
    )


def _run(stepper, w, n_steps):
    batch = w.size
    v = np.full(batch, 1e-3)
    il = np.zeros(batch)
    out_v = np.empty((n_steps, batch))
    out_il = np.empty((n_steps, batch))
    stepper.step(v, il, w, 0, n_steps, out_v=out_v, out_il=out_il)
    return v, il, out_v, out_il


class TestBackendDiscovery:
    def test_numpy_always_available(self):
        backends = available_backends()
        assert backends[-1] == "numpy"

    def test_best_compiled_consistent(self):
        best = best_compiled_backend()
        if best is not None:
            assert best in available_backends()
        else:
            assert available_backends() == ("numpy",)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            build_stepper(LAWS["tanh"], backend="fortran", **_stepper_kwargs(1e-9))


class TestLawCoverage:
    @pytest.mark.parametrize("kind", LAW_KINDS)
    def test_every_kind_has_a_family(self, kind):
        law = LAWS[kind].compiled_law()
        assert law is not None and law.kind == kind

    def test_diffpair_maps_to_tanh(self):
        law = CrossCoupledDiffPair(i_ee=5e-4).compiled_law()
        assert law is not None and law.kind == "tanh"

    def test_pchip_table_has_no_compiled_law(self):
        v, i = _table_pair()
        assert TabulatedNonlinearity(v, i).compiled_law() is None


class TestBackendParity:
    """Every available backend integrates every law kind identically."""

    @pytest.mark.parametrize("kind", LAW_KINDS)
    def test_compiled_matches_numpy(self, kind):
        best = best_compiled_backend()
        if best is None:
            pytest.skip("no compiled backend in this environment")
        nl = LAWS[kind]
        w = 3.0 * TANK.center_frequency * np.array([0.999, 1.0, 1.001])
        h = (2.0 * np.pi / w.max()) / 64.0
        kwargs = _stepper_kwargs(h)
        ref = _run(build_stepper(nl, backend="numpy", **kwargs), w, 50 * 64)
        fast = _run(build_stepper(nl, backend=best, **kwargs), w, 50 * 64)
        scale = np.max(np.abs(ref[2]))
        for a, b in zip(ref, fast):
            np.testing.assert_allclose(a, b, rtol=0.0, atol=1e-12 * scale)

    def test_numpy_fallback_runs_uncompilable_laws(self):
        v, i = _table_pair()
        nl = TabulatedNonlinearity(v, i)
        stepper = build_stepper(nl, backend="auto", **_stepper_kwargs(1e-8))
        assert stepper.backend == "numpy"
        w = np.array([3.0 * TANK.center_frequency])
        vf, ilf, out_v, _ = _run(stepper, w, 64)
        assert np.all(np.isfinite(out_v)) and np.isfinite(vf[0]) and np.isfinite(ilf[0])

    def test_compiled_backend_refuses_uncompilable_law(self):
        best = best_compiled_backend()
        if best is None:
            pytest.skip("no compiled backend in this environment")
        v, i = _table_pair()
        with pytest.raises(RuntimeError):
            build_stepper(TabulatedNonlinearity(v, i), backend=best, **_stepper_kwargs(1e-8))

    def test_chunked_equals_single_call(self):
        stepper = build_stepper(LAWS["tanh"], backend="numpy", **_stepper_kwargs(1e-8))
        w = np.array([3.0 * TANK.center_frequency, 3.1 * TANK.center_frequency])
        v1, il1, _, _ = _run(stepper, w, 1000)
        v2 = np.full(2, 1e-3)
        il2 = np.zeros(2)
        done = 0
        for size in (137, 263, 600):
            stepper.step(v2, il2, w, done, size)
            done += size
        np.testing.assert_allclose(v1, v2, rtol=1e-12)
        np.testing.assert_allclose(il1, il2, rtol=1e-12)
