"""Compiled-engine vs reference-loop equivalence and engine selection."""

import numpy as np
import pytest

from repro.experiments.circuits import (
    diffpair_oscillator,
    tanh_oscillator,
    tunnel_oscillator,
)
from repro.nonlin import NegativeTanh
from repro.odesim import (
    ENGINES,
    InjectionSpec,
    PulseSpec,
    default_engine,
    resolve_engine,
    set_default_engine,
    simulate_oscillator,
)
from repro.odesim.kernels import best_compiled_backend
from repro.tank import ParallelRLC

TANK = ParallelRLC(r=1000.0, l=100e-6, c=10e-9)
TANH = NegativeTanh(gm=2.5e-3, i_sat=1e-3)


def _pair(nonlinearity, tank, **kwargs):
    """(reference, auto) results of the same short transient."""
    ref = simulate_oscillator(nonlinearity, tank, engine="reference", **kwargs)
    fast = simulate_oscillator(nonlinearity, tank, engine="auto", **kwargs)
    return ref, fast


def _assert_equivalent(ref, fast):
    # The recording grid is computed identically on both paths; the
    # trajectories agree to integrator round-off (exactly equal grids,
    # near-exactly equal states).
    np.testing.assert_array_equal(ref.t, fast.t)
    scale = max(float(np.max(np.abs(ref.v))), 1e-300)
    np.testing.assert_allclose(fast.v, ref.v, rtol=0.0, atol=5e-12 * scale)
    scale_il = max(float(np.max(np.abs(ref.i_l))), 1e-300)
    np.testing.assert_allclose(fast.i_l, ref.i_l, rtol=0.0, atol=5e-12 * scale_il)


class TestEngineSelection:
    def test_engines_tuple(self):
        assert ENGINES == ("auto", "compiled", "reference")

    def test_resolve_explicit_beats_default(self):
        previous = set_default_engine("reference")
        try:
            assert resolve_engine(None) == "reference"
            assert resolve_engine("auto") == "auto"
        finally:
            set_default_engine(previous)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "reference")
        assert default_engine() == "reference"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            resolve_engine("spice")
        with pytest.raises(ValueError):
            set_default_engine("spice")

    def test_meta_records_engine_and_backend(self):
        period = 2.0 * np.pi / TANK.center_frequency
        ref = simulate_oscillator(TANH, TANK, t_end=3 * period, engine="reference")
        assert ref.meta["engine"] == "reference"
        assert ref.meta["backend"] == "reference"
        fast = simulate_oscillator(TANH, TANK, t_end=3 * period, engine="auto")
        assert fast.meta["engine"] == "auto"
        assert fast.meta["backend"] in ("c", "numba", "numpy")

    def test_compiled_engine_honest(self):
        period = 2.0 * np.pi / TANK.center_frequency
        if best_compiled_backend() is None:
            with pytest.raises(RuntimeError):
                simulate_oscillator(TANH, TANK, t_end=period, engine="compiled")
        else:
            result = simulate_oscillator(TANH, TANK, t_end=period, engine="compiled")
            assert result.meta["backend"] in ("c", "numba")


class TestReferenceEquivalence:
    @pytest.mark.parametrize(
        "make_setup", [tanh_oscillator, diffpair_oscillator, tunnel_oscillator]
    )
    def test_injected_batch_all_families(self, make_setup):
        setup = make_setup()
        w_c = setup.tank.center_frequency
        period = 2.0 * np.pi / w_c
        ref, fast = _pair(
            setup.nonlinearity,
            setup.tank,
            t_end=40 * period,
            injection=InjectionSpec(
                v_i=setup.v_i, w=setup.n * w_c * np.array([0.995, 1.0, 1.005])
            ),
            steps_per_cycle=48,
            record_start=20 * period,
        )
        _assert_equivalent(ref, fast)

    def test_free_running_with_decimation(self):
        period = 2.0 * np.pi / TANK.center_frequency
        ref, fast = _pair(
            TANH, TANK, t_end=30 * period, record_every=7, record_start=3.2 * period
        )
        _assert_equivalent(ref, fast)

    def test_pulses(self):
        period = 2.0 * np.pi / TANK.center_frequency
        pulses = (
            PulseSpec(t_start=5 * period, duration=0.5 * period, current=5e-3),
            PulseSpec(t_start=12 * period, duration=0.75 * period, current=-3e-3),
        )
        ref, fast = _pair(TANH, TANK, t_end=25 * period, pulses=pulses)
        _assert_equivalent(ref, fast)

    def test_record_start_beyond_end_single_sample(self):
        period = 2.0 * np.pi / TANK.center_frequency
        ref, fast = _pair(TANH, TANK, t_end=2 * period, record_start=5 * period)
        assert ref.t.size == fast.t.size == 1
        _assert_equivalent(ref, fast)
