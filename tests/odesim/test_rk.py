"""Tests for the RK integrators against analytic ODE solutions."""

import numpy as np
import pytest

from repro.odesim.rk import rk4_batched, rk45_adaptive


class TestRk4Batched:
    def test_exponential_decay(self):
        t, y = rk4_batched(
            lambda t, y: -y, np.ones((1, 1)), 0.0, 5.0, 0.01
        )
        assert y[-1, 0, 0] == pytest.approx(np.exp(-5.0), rel=1e-8)

    def test_harmonic_oscillator_amplitude(self):
        def rhs(t, y):
            return np.stack([y[1], -y[0]])

        t, y = rk4_batched(rhs, np.array([[1.0], [0.0]]), 0.0, 20 * np.pi, 0.01)
        assert y[-1, 0, 0] == pytest.approx(1.0, abs=1e-6)
        assert y[-1, 1, 0] == pytest.approx(0.0, abs=1e-6)

    def test_fourth_order_convergence(self):
        def error(dt):
            __, y = rk4_batched(lambda t, y: -y, np.ones((1, 1)), 0.0, 1.0, dt)
            return abs(y[-1, 0, 0] - np.exp(-1.0))

        # Halving dt must cut the error ~16x.
        assert error(0.02) / error(0.01) == pytest.approx(16.0, rel=0.2)

    def test_batch_members_independent(self):
        y0 = np.array([[1.0, 2.0, 3.0]])
        __, y = rk4_batched(lambda t, y: -y, y0, 0.0, 1.0, 0.001)
        assert np.allclose(y[-1, 0], y0[0] * np.exp(-1.0), rtol=1e-9)

    def test_record_every(self):
        t, y = rk4_batched(
            lambda t, y: -y, np.ones((1, 1)), 0.0, 1.0, 0.01, record_every=10
        )
        assert t.size <= 12

    def test_record_start_trims(self):
        t, __ = rk4_batched(
            lambda t, y: -y, np.ones((1, 1)), 0.0, 1.0, 0.01, record_start=0.5
        )
        assert t[0] >= 0.5

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            rk4_batched(lambda t, y: -y, np.ones((1, 1)), 1.0, 0.5, 0.01)


class TestRk45Adaptive:
    def test_exponential_accuracy(self):
        t, y = rk45_adaptive(lambda t, y: -y, np.array([1.0]), 0.0, 3.0, rtol=1e-10)
        assert y[-1, 0] == pytest.approx(np.exp(-3.0), rel=1e-8)

    def test_ends_exactly_at_t_end(self):
        t, __ = rk45_adaptive(lambda t, y: -y, np.array([1.0]), 0.0, 2.0)
        assert t[-1] == pytest.approx(2.0, abs=1e-12)

    def test_stiffish_problem_adapts(self):
        # y' = -100(y - sin t) + cos t has a fast transient then slow flow.
        def rhs(t, y):
            return -100.0 * (y - np.sin(t)) + np.cos(t)

        t, y = rk45_adaptive(rhs, np.array([1.0]), 0.0, 2.0, rtol=1e-8)
        assert y[-1, 0] == pytest.approx(np.sin(2.0), abs=1e-5)
        steps = np.diff(t)
        assert steps.max() / steps.min() > 5.0

    def test_van_der_pol_limit_cycle(self):
        def rhs(t, y):
            return np.array([y[1], 1.0 * (1 - y[0] ** 2) * y[1] - y[0]])

        __, y = rk45_adaptive(rhs, np.array([0.1, 0.0]), 0.0, 60.0, rtol=1e-8)
        # Classic mu=1 limit cycle peak amplitude ~2.0.
        assert np.max(np.abs(y[-500:, 0])) == pytest.approx(2.0, abs=0.05)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            rk45_adaptive(lambda t, y: -y, np.array([1.0]), 1.0, 1.0)
