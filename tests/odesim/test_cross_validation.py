"""Cross-validation: the fast ODE path vs the full MNA transient.

The two integration paths solve the same circuit; on short runs their
waveforms must agree closely.  This is the guard that the odesim shortcut
never drifts from the SPICE-level ground truth it stands in for.
"""

import numpy as np
import pytest

from repro.nonlin import NegativeTanh
from repro.odesim import InjectionSpec, simulate_oscillator
from repro.spice import Circuit, transient
from repro.spice.elements.sources import sine
from repro.tank import ParallelRLC


@pytest.fixture(scope="module")
def setup():
    return (
        NegativeTanh(gm=2.5e-3, i_sat=1e-3),
        ParallelRLC(r=1000.0, l=100e-6, c=10e-9),
    )


def _mna_oscillator(tanh, tank, v_i=0.0, f_inj=None):
    """The canonical oscillator as an MNA circuit.

    Series injection source between tank node 'a' and the nonlinearity
    input node 'b' realises v_in = v_tank + v_inj (Fig. 8a).
    """
    ckt = Circuit("canonical oscillator")
    ckt.add_resistor("R", "a", "0", tank.r)
    ckt.add_inductor("L", "a", "0", tank.l)
    ckt.add_capacitor("C", "a", "0", tank.c)
    if v_i > 0.0:
        ckt.add_voltage_source("Vinj", "b", "a", sine(0.0, 2 * v_i, f_inj, phase_deg=90.0))
        ckt.add_behavioral("B1", "b", "0", tanh)
    else:
        ckt.add_behavioral("B1", "a", "0", tanh)
    return ckt


class TestOdeVsMna:
    def test_free_running_waveforms_agree(self, setup):
        tanh, tank = setup
        period = 2 * np.pi / tank.center_frequency
        n_cycles = 30
        dt = period / 256
        ode = simulate_oscillator(
            tanh, tank, t_end=n_cycles * period, v0=0.5, steps_per_cycle=256
        )
        ckt = _mna_oscillator(tanh, tank)
        system = ckt.build()
        x0 = np.zeros(system.size)
        x0[system.node_index["a"]] = 0.5
        mna = transient(ckt, t_end=n_cycles * period, dt=dt, x0=x0)
        v_mna = np.interp(ode.t, mna.t, mna.voltage("a"))
        # Same equations, different integrators: agreement to ~1% of the
        # swing over 30 cycles.
        assert np.max(np.abs(v_mna - ode.v[:, 0])) < 0.02

    def test_injected_waveforms_agree(self, setup):
        tanh, tank = setup
        period = 2 * np.pi / tank.center_frequency
        n_cycles = 20
        w_inj = 3 * tank.center_frequency
        ode = simulate_oscillator(
            tanh,
            tank,
            t_end=n_cycles * period,
            v0=0.5,
            injection=InjectionSpec(v_i=0.03, w=np.array([w_inj])),
            steps_per_cycle=256,
        )
        ckt = _mna_oscillator(tanh, tank, v_i=0.03, f_inj=w_inj / (2 * np.pi))
        system = ckt.build()
        x0 = np.zeros(system.size)
        x0[system.node_index["a"]] = 0.5
        mna = transient(ckt, t_end=n_cycles * period, dt=period / 256, x0=x0)
        v_mna = np.interp(ode.t, mna.t, mna.voltage("a"))
        assert np.max(np.abs(v_mna - ode.v[:, 0])) < 0.03
