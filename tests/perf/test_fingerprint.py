"""Tier-1 tests for output fingerprinting of cached surface records."""

import json
import tempfile

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.perf import payload_fingerprint
from repro.perf.sharded_cache import ShardedSurfaceCache
from repro.perf.surface_cache import SurfaceCache

KEY = "ab" * 32


def _arrays() -> dict:
    return {
        "amplitudes": np.linspace(0.1, 1.0, 16),
        "coefficients": np.arange(32, dtype=float).reshape(4, 8),
    }


class TestPayloadFingerprint:
    def test_deterministic(self):
        assert payload_fingerprint(_arrays()) == payload_fingerprint(_arrays())

    def test_insertion_order_does_not_matter(self):
        arrays = _arrays()
        reordered = dict(reversed(list(arrays.items())))
        assert payload_fingerprint(arrays) == payload_fingerprint(reordered)

    def test_value_sensitivity(self):
        arrays = _arrays()
        mutated = {k: v.copy() for k, v in arrays.items()}
        mutated["coefficients"][0, 0] += 1e-16
        assert payload_fingerprint(arrays) != payload_fingerprint(mutated)

    def test_name_sensitivity(self):
        arrays = _arrays()
        renamed = {
            ("renamed" if k == "coefficients" else k): v
            for k, v in arrays.items()
        }
        assert payload_fingerprint(arrays) != payload_fingerprint(renamed)


#: Arbitrary named-array payloads: what any surface serialises to.  Names
#: exclude the reserved ``__meta__`` npz slot; values are small float64
#: arrays (the hash is over raw bytes, so shape/size diversity is what
#: matters, not magnitude).
_payloads = st.dictionaries(
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=10).filter(
        lambda name: name != "__meta__"
    ),
    hnp.arrays(
        dtype=np.float64,
        shape=hnp.array_shapes(max_dims=2, max_side=8),
        elements=st.floats(allow_nan=False, allow_infinity=False, width=64),
    ),
    min_size=1,
    max_size=4,
)


class TestPayloadFingerprintProperties:
    """Hypothesis laws for the content hash every regression gate trusts."""

    @given(data=st.data())
    def test_permutation_invariant(self, data):
        arrays = data.draw(_payloads)
        permuted = dict(data.draw(st.permutations(list(arrays.items()))))
        assert payload_fingerprint(permuted) == payload_fingerprint(arrays)

    @given(data=st.data())
    def test_every_element_bit_is_load_bearing(self, data):
        arrays = data.draw(_payloads)
        name = data.draw(st.sampled_from(sorted(arrays)))
        index = data.draw(st.integers(0, arrays[name].size - 1))
        bit = data.draw(st.integers(0, 63))
        mutated = {key: value.copy() for key, value in arrays.items()}
        flat = mutated[name].reshape(-1).view(np.uint64)
        flat[index] ^= np.uint64(1) << np.uint64(bit)
        assert payload_fingerprint(mutated) != payload_fingerprint(arrays)

    @given(arrays=_payloads)
    @settings(max_examples=15, deadline=None)
    def test_stable_across_sharded_cache_roundtrip(self, arrays):
        fingerprint = payload_fingerprint(arrays)
        with tempfile.TemporaryDirectory(prefix="repro-fp-prop-") as tmp:
            ShardedSurfaceCache(tmp).put("prop", fingerprint, arrays)
            # A fresh instance bypasses the in-process LRU, so the record
            # round-trips through the npz disk tier.
            record = ShardedSurfaceCache(tmp).get("prop", fingerprint)
            assert record is not None
            loaded, meta = record
            assert meta["fingerprint"] == fingerprint
            assert payload_fingerprint(loaded) == fingerprint


class TestCacheStamping:
    def test_put_stamps_fingerprint(self, tmp_path):
        cache = SurfaceCache(tmp_path)
        arrays = _arrays()
        cache.put(KEY, arrays, {"v_i": 0.03})
        _, meta = cache.get(KEY)
        assert meta["fingerprint"] == payload_fingerprint(arrays)
        assert meta["v_i"] == 0.03

    def test_coverage_counts_verified(self, tmp_path):
        cache = SurfaceCache(tmp_path)
        for index, key in enumerate((KEY, "cd" * 32)):
            cache.put(key, {"coefficients": np.full(8, float(index))})
        coverage = cache.fingerprint_coverage()
        assert coverage == {
            "records": 2,
            "fingerprinted": 2,
            "legacy": 0,
            "verified": 2,
            "mismatched": 0,
        }

    def test_coverage_flags_bit_rot(self, tmp_path):
        cache = SurfaceCache(tmp_path)
        cache.put(KEY, _arrays())
        # Rewrite the record's arrays while keeping the stored meta —
        # exactly the silent drift the fingerprint exists to catch.
        path = cache.path_for(KEY)
        with np.load(path, allow_pickle=False) as record:
            meta_blob = str(record["__meta__"])
        np.savez(
            path,
            __meta__=np.asarray(meta_blob),
            amplitudes=np.zeros(3),
            coefficients=np.zeros(3),
        )
        coverage = cache.fingerprint_coverage()
        assert coverage["records"] == 1
        assert coverage["mismatched"] == 1
        assert coverage["verified"] == 0

    def test_prefingerprint_records_counted_as_legacy(self, tmp_path):
        cache = SurfaceCache(tmp_path)
        cache.put(KEY, _arrays())
        # Simulate a record written before the fingerprint field existed.
        path = cache.path_for(KEY)
        with np.load(path, allow_pickle=False) as record:
            meta = json.loads(str(record["__meta__"]))
            arrays = {
                name: record[name]
                for name in record.files
                if name != "__meta__"
            }
        meta.pop("fingerprint")
        np.savez(path, __meta__=np.asarray(json.dumps(meta)), **arrays)
        coverage = cache.fingerprint_coverage()
        assert coverage == {
            "records": 1,
            "fingerprinted": 0,
            "legacy": 1,
            "verified": 0,
            "mismatched": 0,
        }
