"""Tier-1 tests for the sharded surface-cache tier.

The satellite contract, verbatim: two threads asking for the same
uncharacterised shard key must produce exactly one characterisation
(observed through the ``cache.*`` metrics), the in-process LRU must
honour its byte budget, and a ``.corrupt`` shard must never wedge a
sweep.
"""

import threading

import numpy as np
import pytest

from repro.obs import metrics
from repro.perf import ShardedSurfaceCache, payload_fingerprint
from repro.perf.surface_cache import SCHEMA_VERSION


def _arrays(seed: int = 0, size: int = 64) -> dict:
    rng = np.random.default_rng(seed)
    return {"coefficients": rng.standard_normal(size)}


@pytest.fixture()
def cache(tmp_path):
    return ShardedSurfaceCache(tmp_path / "shards")


class TestShardLayout:
    def test_records_land_in_shard_dirs(self, cache, tmp_path):
        cache.put("tanh-n3-q1", "a" * 64, _arrays(), {"v_i": 0.03})
        cache.put("tunnel-n2-q1", "b" * 64, _arrays(1), {"v_i": 0.02})
        assert sorted(cache.shards()) == ["tanh-n3-q1", "tunnel-n2-q1"]
        assert (tmp_path / "shards" / "tanh-n3-q1").is_dir()

    def test_rejects_path_escaping_shard_names(self, cache):
        for bad in ("../evil", "a/b", ".hidden", ""):
            with pytest.raises(ValueError):
                cache.put(bad, "a" * 64, _arrays())

    def test_round_trip_meta_is_stamped(self, cache):
        arrays = _arrays()
        cache.put("s", "a" * 64, arrays, {"v_i": 0.03})
        got_arrays, meta = cache.get("s", "a" * 64)
        assert meta["schema"] == SCHEMA_VERSION
        assert meta["fingerprint"] == payload_fingerprint(arrays)
        assert meta["v_i"] == 0.03
        np.testing.assert_array_equal(
            got_arrays["coefficients"], arrays["coefficients"]
        )


class TestSingleFlight:
    def test_two_threads_one_build(self, cache):
        builds_before = metrics.counter("cache.singleflight_builds")
        build_calls = []
        release = threading.Event()

        def builder():
            build_calls.append(threading.get_ident())
            release.wait(timeout=5.0)
            return _arrays(), {"v_i": 0.03}

        results = [None, None]

        def worker(slot):
            results[slot] = cache.get_or_build("s", "a" * 64, builder)

        threads = [
            threading.Thread(target=worker, args=(slot,)) for slot in (0, 1)
        ]
        for t in threads:
            t.start()
        # Give the loser time to park on the leader's flight, then let
        # the build finish.
        import time

        time.sleep(0.2)
        release.set()
        for t in threads:
            t.join(timeout=10.0)
        assert len(build_calls) == 1
        assert metrics.counter("cache.singleflight_builds") == builds_before + 1
        for arrays, meta in results:
            assert meta["fingerprint"] == payload_fingerprint(arrays)

    def test_get_or_build_many_builds_once_cold_zero_warm(self, cache):
        calls = []
        items = {"a" * 64: 0.01, "b" * 64: 0.02, "c" * 64: 0.03}
        key_of = {token: key for key, token in items.items()}

        def builder_many(tokens):
            calls.append(sorted(tokens))
            return {
                key_of[token]: (_arrays(int(token * 1000)), {"token": token})
                for token in tokens
            }
        cold = cache.get_or_build_many("s", items, builder_many)
        assert len(calls) == 1
        assert set(cold) == set(items)
        warm = cache.get_or_build_many("s", items, builder_many)
        assert len(calls) == 1  # nothing rebuilt
        assert set(warm) == set(items)

    def test_get_or_build_many_rejects_partial_builders(self, cache):
        def builder_many(tokens):
            return {}  # omits every requested key

        with pytest.raises((ValueError, KeyError)):
            cache.get_or_build_many("s", {"a" * 64: 1}, builder_many)


class TestLru:
    def test_byte_budget_eviction(self, tmp_path):
        # Each record is ~8 kB; budget of 20 kB holds two.
        cache = ShardedSurfaceCache(tmp_path / "shards", lru_bytes=20_000)
        evictions_before = metrics.counter("cache.lru_evictions")
        for index, key in enumerate(("a" * 64, "b" * 64, "c" * 64)):
            cache.put("s", key, _arrays(index, size=1024))
        stats = cache.lru_stats
        assert stats["entries"] <= 2
        assert stats["bytes"] <= 20_000
        assert metrics.counter("cache.lru_evictions") > evictions_before

    def test_oversized_records_bypass_lru(self, tmp_path):
        cache = ShardedSurfaceCache(tmp_path / "shards", lru_bytes=100)
        cache.put("s", "a" * 64, _arrays(size=1024))
        assert cache.lru_stats["entries"] == 0
        # Still served from disk.
        assert cache.get("s", "a" * 64) is not None


class TestCorruption:
    def test_corrupt_shard_record_recovers(self, tmp_path):
        # lru_bytes=0 disables the in-process tier, so every read goes
        # to disk and actually sees the corruption.
        cache = ShardedSurfaceCache(tmp_path / "shards", lru_bytes=0)
        key = "a" * 64
        cache.put("s", key, _arrays(), {"v_i": 0.03})
        path = cache.shard("s").path_for(key)
        path.write_bytes(b"not an npz")
        assert cache.get("s", key) is None
        assert path.with_suffix(path.suffix + ".corrupt").exists()

        # get_or_build recovers by rebuilding — the sweep never wedges.
        rebuilt = []

        def builder():
            rebuilt.append(True)
            return _arrays(7), {"v_i": 0.03}

        arrays, meta = cache.get_or_build("s", key, builder)
        assert rebuilt == [True]
        assert meta["fingerprint"] == payload_fingerprint(arrays)
