"""Concurrency hardening for the sharded cache's single-flight tier.

The serve layer leans on ``get_or_build_many`` from worker subprocesses
and retrying dispatchers, so the failure modes here are harsher than a
polite builder exception: a caller cancelled mid-batch, a worker thread
that dies without unwinding its ``finally``, a leader that simply never
comes back.  None of them may leave the in-process LRU or the shard
directory wedged — every latch must be released or, past
``flight_timeout_s``, forcibly taken over by a waiter.
"""

import threading
import time

import numpy as np
import pytest

from repro.obs import metrics
from repro.perf import ShardedSurfaceCache


def _arrays(seed: int = 0, size: int = 32) -> dict:
    rng = np.random.default_rng(seed)
    return {"coefficients": rng.standard_normal(size)}


def _keys(n: int) -> list[str]:
    return [f"{i:02x}" + "f" * 62 for i in range(n)]


@pytest.fixture()
def cache(tmp_path):
    return ShardedSurfaceCache(tmp_path / "shards", flight_timeout_s=0.2)


class TestBuilderDeathReleasesFlights:
    def test_mid_build_failure_leaves_no_latch(self, cache):
        keys = _keys(4)

        def dying_builder(tokens):
            # Simulates a worker dying after characterising half the batch:
            # nothing is returned, the exception unwinds the harness.
            raise RuntimeError("worker died mid-build")

        with pytest.raises(RuntimeError, match="mid-build"):
            cache.get_or_build_many(
                "s", {k: i for i, k in enumerate(keys)}, dying_builder
            )
        assert cache.inflight_count == 0

        # The key space is not poisoned: a fresh call rebuilds everything.
        built = cache.get_or_build_many(
            "s",
            {k: i for i, k in enumerate(keys)},
            lambda tokens: {keys[t]: (_arrays(t), {"t": t}) for t in tokens},
        )
        assert set(built) == set(keys)
        assert cache.inflight_count == 0
        assert cache.lru_stats["entries"] == len(keys)

    def test_partial_put_before_death_is_kept(self, cache):
        keys = _keys(3)

        def half_then_die(tokens):
            # The builder managed one atomic put before dying.
            cache.put("s", keys[0], _arrays(0), {"t": 0})
            raise RuntimeError("died after one put")

        with pytest.raises(RuntimeError):
            cache.get_or_build_many(
                "s", {k: i for i, k in enumerate(keys)}, half_then_die
            )
        assert cache.inflight_count == 0
        # The completed record survives and is served without a rebuild.
        record = cache.get("s", keys[0])
        assert record is not None


class TestConcurrentCancellation:
    def test_cancelled_waiters_do_not_leak_latches(self, cache):
        """A leader holds the flight while waiters get cancelled around it."""
        key = _keys(1)[0]
        leader_in_build = threading.Event()
        release_leader = threading.Event()
        results = {}

        def slow_builder(tokens):
            leader_in_build.set()
            release_leader.wait(5.0)
            return {key: (_arrays(7), {})}

        def leader():
            results["leader"] = cache.get_or_build_many(
                "s", {key: 0}, slow_builder
            )

        class Cancelled(Exception):
            pass

        def cancelled_waiter():
            # A waiter that gets cancelled (raises) the moment it would
            # start waiting: guard the builder path so if it ever leads,
            # it unwinds like an asyncio cancellation would.
            def cancelling_builder(tokens):
                raise Cancelled()

            try:
                cache.get_or_build_many("s", {key: 0}, cancelling_builder)
            except Cancelled:
                pass

        leader_thread = threading.Thread(target=leader)
        leader_thread.start()
        assert leader_in_build.wait(5.0)
        waiters = [threading.Thread(target=cancelled_waiter) for _ in range(4)]
        for w in waiters:
            w.start()
        time.sleep(0.05)
        release_leader.set()
        leader_thread.join(5.0)
        for w in waiters:
            w.join(5.0)
        assert not leader_thread.is_alive()
        assert cache.inflight_count == 0
        assert key in results["leader"]

    def test_overlapping_batches_with_one_dying_all_converge(self, cache):
        keys = _keys(6)
        items = {k: i for i, k in enumerate(keys)}
        errors = []
        done = []

        def make_builder(worker_id):
            def builder(tokens):
                if worker_id == 0:
                    raise RuntimeError("worker 0 died")
                return {keys[t]: (_arrays(t), {"w": worker_id}) for t in tokens}

            return builder

        def run(worker_id):
            try:
                done.append(
                    cache.get_or_build_many("s", items, make_builder(worker_id))
                )
            except RuntimeError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10.0)
        assert all(not t.is_alive() for t in threads)
        assert cache.inflight_count == 0
        # At most worker 0 errored; every surviving batch is complete.
        assert len(errors) <= 1
        assert len(done) >= 3
        for batch in done:
            assert set(batch) == set(keys)
        # The shard directory holds only parseable records (no torn files).
        fresh = ShardedSurfaceCache(cache.root, flight_timeout_s=0.2)
        for k in keys:
            assert fresh.get("s", k) is not None


class TestLeakedLatchTakeover:
    def test_waiter_takes_over_a_dead_leaders_latch(self, cache):
        """A latch acquired but never released must not wedge waiters."""
        key = _keys(1)[0]
        # Simulate a leader that died without unwinding: acquire the
        # flight by hand and walk away.
        assert cache._acquire_flight("s", key) is None
        takeovers_before = metrics.counter("cache.singleflight_takeovers")

        t0 = time.monotonic()
        record = cache.get_or_build(
            "s", key, lambda: (_arrays(3), {"rebuilt": True})
        )
        elapsed = time.monotonic() - t0
        assert record is not None
        arrays, meta = record
        assert meta.get("rebuilt") is True
        # Waited out one flight timeout, then took over — not forever.
        assert 0.15 <= elapsed < 5.0
        assert metrics.counter("cache.singleflight_takeovers") > takeovers_before
        assert cache.inflight_count == 0

    def test_takeover_wakes_all_parked_waiters(self, cache):
        key = _keys(1)[0]
        assert cache._acquire_flight("s", key) is None
        results = []

        def waiter():
            results.append(
                cache.get_or_build(
                    "s", key, lambda: (_arrays(5), {"by": "waiter"})
                )
            )

        threads = [threading.Thread(target=waiter) for _ in range(3)]
        t0 = time.monotonic()
        for t in threads:
            t.start()
        for t in threads:
            t.join(10.0)
        elapsed = time.monotonic() - t0
        assert all(not t.is_alive() for t in threads)
        assert len(results) == 3
        # One takeover elected a new leader; the others re-probed the
        # stored record instead of serialising three timeouts.
        assert elapsed < 3 * cache.flight_timeout_s + 1.0
        assert cache.inflight_count == 0

    def test_live_leader_is_not_preempted_before_timeout(self, cache):
        """Waiters must trust a live flight for the full timeout window."""
        key = _keys(1)[0]
        builds = []
        release = threading.Event()
        in_build = threading.Event()

        def slow_build():
            in_build.set()
            builds.append(1)
            release.wait(5.0)
            return _arrays(9), {}

        leader = threading.Thread(
            target=lambda: cache.get_or_build("s", key, slow_build)
        )
        leader.start()
        assert in_build.wait(5.0)
        waiter_result = []
        waiter = threading.Thread(
            target=lambda: waiter_result.append(
                cache.get_or_build("s", key, slow_build)
            )
        )
        waiter.start()
        # Release inside the 0.2 s flight timeout: the waiter should get
        # the leader's record without ever building.
        time.sleep(0.05)
        release.set()
        leader.join(5.0)
        waiter.join(5.0)
        assert len(builds) == 1
        assert waiter_result and waiter_result[0] is not None
        assert cache.inflight_count == 0
