"""The on-disk surface cache: round-trips, invalidation, hygiene."""

import json

import numpy as np
import pytest

from repro.core.two_tone import TwoToneDF
from repro.nonlin import NegativeTanh
from repro.perf import (
    SurfaceCache,
    array_hash,
    combine_keys,
    default_cache,
    nonlinearity_fingerprint,
)

KEY_A = "ab" * 32
KEY_B = "cd" * 32


@pytest.fixture
def cache(tmp_path):
    return SurfaceCache(tmp_path / "cache")


class TestRecordIO:
    def test_round_trip(self, cache, rng):
        arrays = {
            "real": rng.standard_normal((5, 7)),
            "cplx": rng.standard_normal(9) + 1j * rng.standard_normal(9),
        }
        meta = {"nonlinearity": "tanh", "n": 3}
        cache.put(KEY_A, arrays, meta)
        loaded, loaded_meta = cache.get(KEY_A)
        for name, array in arrays.items():
            assert np.array_equal(loaded[name], array)
        assert loaded_meta["nonlinearity"] == "tanh"
        assert loaded_meta["n"] == 3
        assert loaded_meta["schema"] == 1

    def test_miss_returns_none(self, cache):
        assert cache.get(KEY_A) is None
        assert cache.stats["misses"] == 1

    def test_corrupt_record_is_a_miss_and_quarantined(self, cache, caplog):
        cache.put(KEY_A, {"x": np.arange(4.0)})
        path = cache.path_for(KEY_A)
        path.write_bytes(b"not an npz file")
        with caplog.at_level("WARNING", logger="repro.perf.surface_cache"):
            assert cache.get(KEY_A) is None
        # Quarantined for post-mortem, invisible to future lookups.
        assert not path.exists()
        quarantined = path.with_name(path.name + ".corrupt")
        assert quarantined.exists()
        assert cache.stats["corrupt"] == 1
        assert any("quarantined" in r.message for r in caplog.records)

    def test_truncated_record_is_a_miss_and_quarantined(self, cache):
        cache.put(KEY_A, {"x": np.arange(64.0), "y": np.ones((8, 8))})
        path = cache.path_for(KEY_A)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 3])  # torn write / disk-full
        assert cache.get(KEY_A) is None
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()
        assert cache.stats["corrupt"] == 1
        # The slot is reusable: a recompute landing on the same key works.
        cache.put(KEY_A, {"x": np.arange(64.0), "y": np.ones((8, 8))})
        loaded, _ = cache.get(KEY_A)
        assert np.array_equal(loaded["x"], np.arange(64.0))

    def test_quarantined_record_not_counted_as_an_entry(self, cache):
        cache.put(KEY_A, {"x": np.arange(4.0)})
        cache.path_for(KEY_A).write_bytes(b"junk")
        assert cache.get(KEY_A) is None
        assert len(cache) == 0  # *.npz.corrupt is not a live record

    def test_schema_mismatch_is_a_miss(self, cache, monkeypatch):
        cache.put(KEY_A, {"x": np.arange(4.0)})
        monkeypatch.setattr("repro.perf.surface_cache.SCHEMA_VERSION", 2)
        assert cache.get(KEY_A) is None
        # A stale-but-wellformed record is deleted silently, not quarantined.
        assert cache.stats["corrupt"] == 0

    def test_invalid_keys_rejected(self, cache):
        for bad in ("", "XYZ", "../escape", "ab/cd"):
            with pytest.raises(ValueError):
                cache.path_for(bad)

    def test_meta_name_reserved(self, cache):
        with pytest.raises(ValueError):
            cache.put(KEY_A, {"__meta__": np.arange(3.0)})


class TestEviction:
    def test_lru_bound(self, tmp_path):
        cache = SurfaceCache(tmp_path, max_entries=3)
        keys = [f"{i:02d}" * 32 for i in range(5)]
        for i, key in enumerate(keys):
            cache.put(key, {"x": np.asarray([float(i)])})
        assert len(cache) == 3
        # The most recent records survive.
        assert cache.get(keys[-1]) is not None

    def test_clear(self, cache):
        cache.put(KEY_A, {"x": np.arange(3.0)})
        cache.put(KEY_B, {"x": np.arange(4.0)})
        assert cache.clear() == 2
        assert len(cache) == 0


class TestDisableSwitch:
    def test_no_cache_env(self, cache, monkeypatch):
        cache.put(KEY_A, {"x": np.arange(3.0)})
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert cache.get(KEY_A) is None
        cache.put(KEY_B, {"x": np.arange(3.0)})
        monkeypatch.delenv("REPRO_NO_CACHE")
        assert cache.get(KEY_A) is not None
        assert cache.get(KEY_B) is None


class TestDefaultCacheResolution:
    def test_follows_env_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "a"))
        first = default_cache()
        assert first.root == tmp_path / "a"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "b"))
        second = default_cache()
        assert second.root == tmp_path / "b"
        assert second is not first


class TestFingerprint:
    def test_identical_laws_hash_equal(self):
        a = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        b = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        assert nonlinearity_fingerprint(a, 2.0) == nonlinearity_fingerprint(b, 2.0)

    def test_parameter_change_changes_hash(self):
        a = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        b = NegativeTanh(gm=2.6e-3, i_sat=1e-3)
        assert nonlinearity_fingerprint(a, 2.0) != nonlinearity_fingerprint(b, 2.0)

    def test_window_is_part_of_the_identity(self):
        a = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
        assert nonlinearity_fingerprint(a, 2.0) != nonlinearity_fingerprint(a, 2.5)

    def test_array_hash_sensitive_to_content_and_layout(self, rng):
        x = rng.standard_normal(16)
        y = x.copy()
        assert array_hash(x) == array_hash(y)
        y[3] += 1e-16 + abs(y[3]) * 1e-15
        assert array_hash(x) != array_hash(y)
        assert array_hash(x) != array_hash(x.reshape(4, 4))

    def test_combine_keys_is_hex(self):
        key = combine_keys("tag", 3, 0.03, np.arange(5.0))
        assert len(key) == 64
        assert all(c in "0123456789abcdef" for c in key)


class TestSurfaceCacheIntegration:
    """End-to-end: TwoToneDF persists surfaces and invalidates on change."""

    AMPS = np.linspace(0.4, 1.7, 10)

    def _df(self, gm=2.5e-3):
        return TwoToneDF(NegativeTanh(gm=gm, i_sat=1e-3), 0.03, 3, n_samples=512)

    def test_cross_instance_warm_start(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cold = self._df().surface(self.AMPS)
        cache = default_cache()
        assert len(cache) == 1
        before_hits = cache.stats["hits"]
        warm = self._df().surface(self.AMPS)
        assert cache.stats["hits"] == before_hits + 1
        assert np.array_equal(warm.coefficients, cold.coefficients)

    def test_fingerprint_change_invalidates(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        self._df(gm=2.5e-3).surface(self.AMPS)
        cache = default_cache()
        assert len(cache) == 1
        self._df(gm=2.6e-3).surface(self.AMPS)
        # A different law must land in a different record, not reuse the old.
        assert len(cache) == 2

    def test_record_is_inspectable(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        self._df().surface(self.AMPS)
        cache = default_cache()
        record = next(iter(cache._records()))
        with np.load(record, allow_pickle=False) as data:
            meta = json.loads(str(data["__meta__"]))
        assert meta["schema"] == 1
