"""Phase timers and the BENCH_*.json writer."""

import json
import time

import pytest

from repro.perf import PhaseTimer, write_bench_json
from repro.perf.timers import BENCH_SCHEMA_VERSION


class TestPhaseTimer:
    def test_disabled_is_a_no_op(self):
        timer = PhaseTimer()
        with timer.phase("x"):
            pass
        timer.add("y", 1.0)
        assert timer.phases == {}

    def test_accumulates_calls(self):
        timer = PhaseTimer()
        timer.enable()
        for _ in range(3):
            with timer.phase("work"):
                time.sleep(0.001)
        snap = timer.as_dict()
        assert snap["phases"]["work"]["calls"] == 3
        assert snap["phases"]["work"]["total_s"] > 0.0
        assert snap["total_s"] >= snap["phases"]["work"]["total_s"]

    def test_enable_resets(self):
        timer = PhaseTimer()
        timer.enable()
        timer.add("old", 1.0)
        timer.enable()
        assert timer.phases == {}

    def test_add_external_duration(self):
        timer = PhaseTimer()
        timer.enable()
        timer.add("ext", 0.25)
        timer.add("ext", 0.25)
        entry = timer.as_dict()["phases"]["ext"]
        assert entry == {"total_s": 0.5, "calls": 2}

    def test_timing_survives_exceptions(self):
        timer = PhaseTimer()
        timer.enable()
        with pytest.raises(RuntimeError):
            with timer.phase("boom"):
                raise RuntimeError
        assert timer.phases["boom"]["calls"] == 1


class TestBenchJson:
    def test_writes_schema_envelope(self, tmp_path):
        path = write_bench_json(
            "fig10", {"total_s": 1.5, "phases": {}}, directory=tmp_path
        )
        assert path.name == "BENCH_FIG10.json"
        payload = json.loads(path.read_text())
        assert payload["bench"] == "FIG10"
        assert payload["schema"] == BENCH_SCHEMA_VERSION
        assert payload["total_s"] == 1.5

    def test_rejects_path_separators(self, tmp_path):
        with pytest.raises(ValueError):
            write_bench_json("../oops", {}, directory=tmp_path)
        with pytest.raises(ValueError):
            write_bench_json("", {}, directory=tmp_path)
