"""Tests for the optional matplotlib layer's availability handling."""

import pytest

from repro.viz.plots import matplotlib_available, plot_natural


class TestMatplotlibOptionality:
    def test_available_reports_boolean(self):
        assert isinstance(matplotlib_available(), bool)

    def test_plot_raises_cleanly_without_matplotlib(self, demo_tank, tanh_nonlinearity):
        if matplotlib_available():
            pytest.skip("matplotlib installed; the unavailable branch is moot")
        from repro.core import predict_natural_oscillation

        natural = predict_natural_oscillation(tanh_nonlinearity, demo_tank)
        with pytest.raises(RuntimeError, match="ASCII"):
            plot_natural(natural)

    def test_plot_works_when_available(self, demo_tank, tanh_nonlinearity, tmp_path):
        if not matplotlib_available():
            pytest.skip("matplotlib not installed")
        from repro.core import predict_natural_oscillation

        natural = predict_natural_oscillation(tanh_nonlinearity, demo_tank)
        out = tmp_path / "fig3.png"
        plot_natural(natural, str(out))
        assert out.exists()
