"""Tests for the ASCII renderer."""

import numpy as np
import pytest

from repro.core.curves import LevelCurve
from repro.viz.ascii import AsciiCanvas, render_curves, render_waveform


class TestAsciiCanvas:
    def test_point_lands_in_grid(self):
        canvas = AsciiCanvas(20, 10, x_range=(0, 1), y_range=(0, 1))
        canvas.plot_point(0.5, 0.5, "X")
        output = canvas.render()
        assert "X" in output

    def test_out_of_range_point_ignored(self):
        canvas = AsciiCanvas(20, 10, x_range=(0, 1), y_range=(0, 1))
        canvas.plot_point(5.0, 5.0, "X")
        assert "X" not in canvas.render()

    def test_polyline_continuous(self):
        canvas = AsciiCanvas(40, 20, x_range=(0, 1), y_range=(0, 1))
        canvas.plot_polyline(np.array([0.0, 1.0]), np.array([0.0, 1.0]), "*")
        output = canvas.render()
        # Diagonal across a 40x20 canvas needs at least ~20 marks.
        assert output.count("*") >= 20

    def test_title_and_labels(self):
        canvas = AsciiCanvas(20, 10, x_range=(0, 1), y_range=(0, 2))
        text = canvas.render(title="my plot", x_label="phi", y_label="A")
        assert "my plot" in text
        assert "x: phi" in text
        assert "y: A" in text

    def test_axis_limits_printed(self):
        canvas = AsciiCanvas(20, 10, x_range=(0, 1), y_range=(0, 2))
        text = canvas.render()
        assert "2" in text and "1" in text

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ValueError):
            AsciiCanvas(4, 2, x_range=(0, 1), y_range=(0, 1))

    def test_rejects_degenerate_range(self):
        with pytest.raises(ValueError):
            AsciiCanvas(20, 10, x_range=(1, 1), y_range=(0, 1))


class TestRenderCurves:
    def test_families_use_distinct_glyphs(self):
        a = [LevelCurve(x=np.linspace(0, 1, 10), y=np.full(10, 0.3), level=1.0)]
        b = [LevelCurve(x=np.linspace(0, 1, 10), y=np.full(10, 0.7), level=0.0)]
        text = render_curves([(a, "#"), (b, ":")])
        assert "#" in text and ":" in text

    def test_markers_drawn(self):
        a = [LevelCurve(x=np.linspace(0, 1, 10), y=np.linspace(0, 1, 10), level=1.0)]
        text = render_curves([(a, ".")], points=[(0.5, 0.5, "O")])
        assert "O" in text


class TestRenderWaveform:
    def test_sine_rendered(self):
        t = np.linspace(0, 1e-3, 500)
        text = render_waveform(t, np.sin(2 * np.pi * 5e3 * t), title="wave")
        assert "wave" in text
        assert text.count("*") > 50

    def test_long_waveform_decimated(self):
        t = np.linspace(0, 1.0, 100_000)
        text = render_waveform(t, np.sin(t), max_points=1000)
        assert isinstance(text, str)
