#!/usr/bin/env python
"""Validate observability artifacts against their schemas.

Usage::

    python scripts/check_obs_schemas.py TRACE.jsonl [OBS_REPORT.json]

Runs the same structural validators the ``repro obs --validate`` command
uses (header magic + schema version, span record shapes, parent/depth
referential integrity, report field types) and exits non-zero listing
every problem found.  CI runs this against the artifacts of a traced
smoke run so a schema drift fails the build instead of silently breaking
downstream consumers.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import validate_obs_report, validate_trace  # noqa: E402


def main(argv: list[str]) -> int:
    if not argv or len(argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    problems: list[str] = []
    trace_path = Path(argv[0])
    try:
        problems += [f"{trace_path}: {p}" for p in validate_trace(trace_path)]
    except (OSError, ValueError) as exc:
        problems.append(f"{trace_path}: {exc}")
    if len(argv) == 2:
        report_path = Path(argv[1])
        try:
            problems += [
                f"{report_path}: {p}" for p in validate_obs_report(report_path)
            ]
        except (OSError, ValueError) as exc:
            problems.append(f"{report_path}: {exc}")
    if problems:
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        return 1
    checked = " and ".join(argv)
    print(f"{checked}: schemas valid")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
