#!/usr/bin/env python
"""Validate observability and service artifacts against their schemas.

Usage::

    python scripts/check_obs_schemas.py ARTIFACT [ARTIFACT ...]

Each artifact is dispatched to its structural validator by shape:

* ``*.jsonl`` files are span traces (header magic + schema version, span
  record shapes, parent/depth referential integrity);
* ``*.prom`` / ``*.txt`` files are Prometheus text expositions (sample
  grammar, ``# TYPE`` declarations, counter ``_total`` suffixes, no
  duplicate samples) as scraped from ``/metricz?format=prometheus``;
* JSON documents with ``"report": "SERVE"`` are ``SERVE_REPORT.json``
  run summaries (terminal tallies must add up, the dead-letter list must
  match its tally);
* any other JSON document is an ``OBS_REPORT.json`` metrics snapshot.

These are the same validators ``repro obs --validate`` and the service
report module use.  Exits non-zero listing every problem found, so a
schema drift fails CI instead of silently breaking downstream consumers.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import (  # noqa: E402
    validate_obs_report,
    validate_prometheus,
    validate_trace,
)
from repro.serve import validate_serve_report  # noqa: E402


def _validate_one(path: Path) -> list[str]:
    if path.suffix == ".jsonl":
        return list(validate_trace(path))
    if path.suffix in (".prom", ".txt"):
        return list(validate_prometheus(path.read_text()))
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable JSON: {exc}"]
    if isinstance(doc, dict) and doc.get("report") == "SERVE":
        return list(validate_serve_report(doc))
    return list(validate_obs_report(path))


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__, file=sys.stderr)
        return 2
    problems: list[str] = []
    for arg in argv:
        path = Path(arg)
        try:
            problems += [f"{path}: {p}" for p in _validate_one(path)]
        except (OSError, ValueError) as exc:
            problems.append(f"{path}: {exc}")
    if problems:
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        return 1
    checked = " and ".join(argv)
    print(f"{checked}: schemas valid")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
