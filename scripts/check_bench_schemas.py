#!/usr/bin/env python
"""Validate BENCH_*.json records against their schemas.

Usage::

    python scripts/check_bench_schemas.py BENCH_TRANSIENT.json [...]

Every bench record must carry the standard envelope written by
``repro.perf.write_bench_json`` (``bench`` id matching the filename and an
integer ``schema`` version); records with a known per-bench schema
(currently TRANSIENT, SPEED and SWEEP) are additionally checked field by
field; SWEEP records additionally enforce the performance gates.
CI runs this against the artifacts of the bench jobs so a schema drift
fails the build instead of silently breaking downstream consumers.
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

#: Required numeric fields of one per-oscillator TRANSIENT record.
TRANSIENT_FIELDS = (
    "t_reference_s",
    "t_fast_s",
    "speedup_x",
    "steps_s_reference",
    "steps_s_fast",
    "max_lock_edge_deviation_rad_s",
    "bisection_resolution_rad_s",
    "width_hz_reference",
    "width_hz_fast",
)

#: Required numeric fields of one per-figure SPEED method record.
SPEED_FIELDS = (
    "t_fft_cold_s",
    "t_dense_cold_s",
    "speedup_x",
    "max_i1_deviation_A",
    "edge_deviation_rel_width",
    "t_warm_characterize_s",
)

#: Required numeric fields of one per-grid SWEEP record.
SWEEP_FIELDS = (
    "t_batch_s",
    "t_scalar_measured_s",
    "scalar_points_measured",
    "points_total",
    "t_scalar_extrapolated_s",
    "speedup_x",
    "max_width_deviation_rel",
    "tolerance_rel",
    "status_mismatches",
    "locked_points",
    "unlocked_points",
)


def _check_sweep_gates(grids: object) -> list[str]:
    """The SWEEP acceptance gates, enforced on the committed record.

    Structural validity is :func:`_check_numeric_records`'s job; this
    asserts the *performance contract*: the batched engine must beat the
    scalar point loop by at least 5x on the committed grid, with every
    measured point in exact status agreement, widths inside the declared
    tolerance, and a non-degenerate tongue (locked and unlocked cells).
    """
    if not isinstance(grids, dict):
        return []  # structural pass already reported the shape problem
    problems: list[str] = []
    for name, record in grids.items():
        if not isinstance(record, dict):
            continue
        checks = (
            ("speedup_x", record.get("speedup_x"), ">=", 5.0),
            (
                "max_width_deviation_rel",
                record.get("max_width_deviation_rel"),
                "<=",
                record.get("tolerance_rel"),
            ),
            ("status_mismatches", record.get("status_mismatches"), "<=", 0.0),
            ("locked_points", record.get("locked_points"), ">=", 1.0),
            ("unlocked_points", record.get("unlocked_points"), ">=", 1.0),
        )
        for field, value, op, bound in checks:
            if not isinstance(value, (int, float)) or not isinstance(
                bound, (int, float)
            ):
                continue  # the field-level pass reports missing/non-numeric
            ok = value >= bound if op == ">=" else value <= bound
            if not ok:
                problems.append(
                    f"grids[{name!r}].{field} = {value!r} violates the "
                    f"gate ({op} {bound!r})"
                )
    return problems


def _check_numeric_records(
    groups: object, fields: tuple[str, ...], label: str
) -> list[str]:
    problems: list[str] = []
    if not isinstance(groups, dict) or not groups:
        return [f"{label} must be a non-empty object"]
    for name, record in groups.items():
        if not isinstance(record, dict):
            problems.append(f"{label}[{name!r}] must be an object")
            continue
        for field in fields:
            value = record.get(field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"{label}[{name!r}].{field} must be a number")
            elif not math.isfinite(value) or value < 0.0:
                problems.append(
                    f"{label}[{name!r}].{field} must be finite and >= 0, "
                    f"got {value!r}"
                )
    return problems


def check_bench_file(path: Path) -> list[str]:
    """Structural problems with one bench record (empty when valid)."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return [str(exc)]
    if not isinstance(payload, dict):
        return ["top level must be a JSON object"]
    problems: list[str] = []
    bench = payload.get("bench")
    expected = path.name.removeprefix("BENCH_").removesuffix(".json")
    if bench != expected:
        problems.append(f"bench id {bench!r} does not match filename ({expected})")
    if not isinstance(payload.get("schema"), int):
        problems.append("schema version must be an integer")
    if bench == "TRANSIENT":
        problems += _check_numeric_records(
            payload.get("oscillators"), TRANSIENT_FIELDS, "oscillators"
        )
        if not isinstance(payload.get("backend"), str):
            problems.append("backend must be a string")
    elif bench == "SPEED":
        problems += _check_numeric_records(
            payload.get("methods"), SPEED_FIELDS, "methods"
        )
    elif bench == "SWEEP":
        problems += _check_numeric_records(
            payload.get("grids"), SWEEP_FIELDS, "grids"
        )
        problems += _check_sweep_gates(payload.get("grids"))
    return problems


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__, file=sys.stderr)
        return 2
    problems: list[str] = []
    for arg in argv:
        path = Path(arg)
        problems += [f"{path}: {p}" for p in check_bench_file(path)]
    if problems:
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        return 1
    print(f"{' and '.join(argv)}: schemas valid")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
