#!/usr/bin/env python
"""Append the committed BENCH_*.json snapshots to the bench history store.

Equivalent to ``python -m repro regress bench --record`` but usable before
the gate has any history at all (the bootstrap case) and from bench CI
jobs that just regenerated the snapshots::

    PYTHONPATH=src python scripts/seed_bench_history.py [BENCH_FILE ...]

With no arguments, seeds from BENCH_SPEED.json / BENCH_TRANSIENT.json /
BENCH_SWEEP.json in the working directory (missing ones are skipped).
History files are append-only JSON lines under
``benchmarks/results/history/``; every appended line immediately becomes
part of the trailing median the ratio bands are enforced against, so only
record runs from the canonical bench environment.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.regress import DEFAULT_BENCH_FILES, DEFAULT_HISTORY_DIR, append_history


def main(argv: list[str] | None = None) -> int:
    files = (argv if argv is not None else sys.argv[1:]) or list(DEFAULT_BENCH_FILES)
    seeded = 0
    for bench_file in files:
        path = pathlib.Path(bench_file)
        if not path.is_file():
            print(f"skip: {path} not found")
            continue
        target = append_history(path, history_dir=DEFAULT_HISTORY_DIR)
        if target is None:
            print(f"skip: {path} has no gateable groups")
            continue
        print(f"appended {path} -> {target}")
        seeded += 1
    if not seeded:
        print("nothing seeded", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
