"""Run every DESIGN.md experiment and write a consolidated report.

Usage::

    python scripts/run_all_experiments.py [--quick] [--out report.txt]

The benchmark suite does the same work under pytest-benchmark timing;
this script is the plain-Python path for anyone who wants the numbers
without the test harness.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS, run_experiment

#: Drivers accepting a `quick` switch (the transient-heavy ones).
_QUICK_AWARE = {"FIG15", "FIG19", "TAB1", "TAB2", "SPEED", "ABL2"}

#: Execution order: cheap prediction experiments first, transients last.
_ORDER = [
    "FIG3", "FIG6", "FIG7", "FIG9", "FIG10",
    "FIG12", "FIG14", "FIG16", "FIG18",
    "ABL1", "ABL3", "ABL2",
    "FIG13", "FIG17", "SPEED",
    "FIG15", "FIG19", "TAB1", "TAB2",
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="reduced-cost variants")
    parser.add_argument("--out", default=None, help="also write the report here")
    parser.add_argument(
        "--only", nargs="*", default=None, help="subset of experiment ids"
    )
    args = parser.parse_args(argv)

    ids = [e.upper() for e in args.only] if args.only else _ORDER
    unknown = [e for e in ids if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment ids: {', '.join(unknown)}")

    blocks = []
    for experiment_id in ids:
        t0 = time.perf_counter()
        kwargs = {"quick": True} if (args.quick and experiment_id in _QUICK_AWARE) else {}
        result = run_experiment(experiment_id, **kwargs)
        elapsed = time.perf_counter() - t0
        result.ascii_plot = ""  # keep the consolidated report compact
        block = result.format() + f"\n  [completed in {elapsed:.2f} s]"
        blocks.append(block)
        print(block, flush=True)
        print(flush=True)

    report = "\n\n".join(blocks) + "\n"
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
