"""ABL2 bench: graphical technique vs frequency-scan, Adler and PPV baselines."""

from repro.experiments.extras import run_ablation_baselines


def test_ablation_baselines(benchmark, save_report):
    result = benchmark.pedantic(
        run_ablation_baselines, kwargs={"quick": True}, rounds=1, iterations=1
    )
    save_report(result)
    # The invariant-curve shortcut must beat the per-frequency scan.
    assert float(result.value("invariant-curve shortcut speedup (x)")) > 2.0
    graphical = result.data["graphical"]
    adler = result.data["adler"]
    lo, hi = result.data["ppv"]
    # All three predictors agree on the width to ~10% at this injection.
    assert abs(adler.width / graphical.width - 1.0) < 0.1
    assert abs((hi - lo) / graphical.width - 1.0) < 0.1
