"""TRANSIENT bench: compiled RK4 stepping + early-exit lock detection vs
the pure-Python referee loop on end-to-end lock-range bisection
(BENCH_TRANSIENT.json)."""

import pathlib

from repro.experiments.extras import run_transient_bench
from repro.perf import write_bench_json

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def test_transient_engine(benchmark, save_report):
    result = benchmark.pedantic(
        run_transient_bench, kwargs={"quick": True}, rounds=1, iterations=1
    )
    save_report(result)
    oscillators = result.data["oscillators"]
    write_bench_json(
        "TRANSIENT",
        {
            "backend": result.value("compiled backend"),
            "oscillators": oscillators,
        },
        directory=REPO_ROOT,
    )
    # The gate: >= 5x end-to-end on at least two oscillator families, with
    # both measured lock edges inside the bisection resolution of the
    # referee's answer (identical scan parameters, so same resolution).
    assert len(oscillators) >= 2
    for name, record in oscillators.items():
        assert record["speedup_x"] >= 5.0, (name, record)
        assert (
            record["max_lock_edge_deviation_rad_s"]
            <= record["bisection_resolution_rad_s"]
        ), (name, record)
        assert record["steps_s_fast"] > record["steps_s_reference"], (name, record)
