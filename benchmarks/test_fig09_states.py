"""FIG9 bench: the n-state phasor fan of one lock (n = 3)."""

import numpy as np

from repro.experiments.section3 import run_fig09


def test_fig09_states(benchmark, save_report):
    result = benchmark(run_fig09)
    save_report(result)
    phases = result.data["phases"]
    fan = result.data["fan"]
    assert phases.size == 3
    assert np.allclose(np.diff(np.sort(phases)), 2 * np.pi / 3)
    # Fig. 9: three equal-length phasors, 120 degrees apart.
    assert np.allclose(np.abs(fan), np.abs(fan[0]))
