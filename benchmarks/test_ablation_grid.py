"""ABL1 bench: lock-limit accuracy vs pre-characterisation grid resolution."""

from repro.experiments.extras import run_ablation_grid


def test_ablation_grid(benchmark, save_report):
    result = benchmark.pedantic(run_ablation_grid, rounds=1, iterations=1)
    save_report(result)
    # Even the coarsest grid stays within 1e-3 relative of the finest —
    # the sub-grid refinement does the heavy lifting ("minimal cost").
    errors = [err for err, _ in result.data.values()]
    assert max(errors) < 1e-3
    # And the finest tabulated config is the most accurate.
    assert errors[-1] <= errors[0] + 1e-9
