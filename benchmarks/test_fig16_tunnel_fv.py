"""FIG16 bench: tunnel diode f(v) + natural-amplitude prediction."""

from repro.experiments.section4_tunnel import run_fig16


def test_fig16_tunnel_fv(benchmark, save_report):
    result = benchmark.pedantic(run_fig16, rounds=1, iterations=1)
    save_report(result)
    # Paper Fig. 16c: A = 0.199 V at 0.5033 GHz, bias inside the NDR.
    assert abs(float(result.value("predicted natural amplitude A (V)")) - 0.199) < 2e-3
    assert result.value("negative resistance at bias") == "yes"
    peak = float(result.value("NDR peak voltage (V)"))
    valley = float(result.value("NDR valley voltage (V)"))
    assert peak < 0.25 < valley
