"""TAB2 bench: tunnel diode lock limits, prediction vs transient simulation.

Regenerates the paper's second table:

    | SHIL       | lower lock limit | upper lock limit | lock range Df |
    | Simulation | 1.507185 GHz     | 1.512293 GHz     | 0.005108 GHz  |
    | Prediction | 1.507320 GHz     | 1.512429 GHz     | 0.005109 GHz  |
"""

from repro.experiments.section4_tunnel import run_table2


def test_table2_tunnel(benchmark, save_report):
    result = benchmark.pedantic(run_table2, kwargs={"quick": True}, rounds=1, iterations=1)
    save_report(result)
    assert float(result.value("lower-limit relative error")) < 2e-3
    assert float(result.value("upper-limit relative error")) < 2e-3
    assert 0.9 < float(result.value("width ratio pred/sim")) < 1.1
    assert float(result.value("speedup (x)")) > 10.0
