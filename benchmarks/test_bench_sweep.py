"""SWEEP bench: batched tongue-map engine (stacked pre-characterisation +
one lock solve per V_i) vs the scalar point loop on the 32x32 tanh
Arnol'd-tongue grid (BENCH_SWEEP.json)."""

import pathlib

from repro.experiments.extras import run_sweep_bench
from repro.perf import write_bench_json

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def test_sweep_engine(benchmark, save_report):
    result = benchmark.pedantic(
        run_sweep_bench, kwargs={"quick": True}, rounds=1, iterations=1
    )
    save_report(result)
    grids = result.data["grids"]
    write_bench_json("SWEEP", {"grids": grids}, directory=REPO_ROOT)
    # The gate: >= 5x over the scalar point loop on the 32x32 tongue,
    # with every measured point in exact status agreement and lock widths
    # inside the declared tolerance, and the tongue non-degenerate (both
    # locked and unlocked cells present).
    assert grids
    for name, record in grids.items():
        assert record["speedup_x"] >= 5.0, (name, record)
        assert record["status_mismatches"] == 0, (name, record)
        assert (
            record["max_width_deviation_rel"] <= record["tolerance_rel"]
        ), (name, record)
        assert record["locked_points"] >= 1, (name, record)
        assert record["unlocked_points"] >= 1, (name, record)
