"""TAB1 bench: diff-pair lock limits, prediction vs transient simulation.

This regenerates the paper's first table:

    | SHIL       | lower lock limit | upper lock limit | lock range Df |
    | Simulation | 1.4998 MHz       | 1.5174 MHz       | 0.0176 MHz    |
    | Prediction | 1.501065 MHz     | 1.518735 MHz     | 0.01767 MHz   |

The shape assertions: prediction and simulation agree to ~1e-3 relative
on both edges, the widths match within a few percent, and the predictor
is 1-2 orders of magnitude faster.
"""

from repro.experiments.section4_diffpair import run_table1


def test_table1_diffpair(benchmark, save_report):
    result = benchmark.pedantic(run_table1, kwargs={"quick": True}, rounds=1, iterations=1)
    save_report(result)
    assert float(result.value("lower-limit relative error")) < 2e-3
    assert float(result.value("upper-limit relative error")) < 2e-3
    assert 0.93 < float(result.value("width ratio pred/sim")) < 1.07
    assert float(result.value("speedup (x)")) > 10.0
