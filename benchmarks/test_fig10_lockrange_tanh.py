"""FIG10 bench: lock-range prediction via the isoline procedure (tanh)."""

from repro.experiments.section3 import run_fig10


def test_fig10_lockrange_tanh(benchmark, save_report):
    result = benchmark(run_fig10)
    save_report(result)
    lock_range = result.data["lock_range"]
    picture = result.data["picture"]
    # Symmetric phase-deviation boundary (Appendix VI-B3) and a non-empty
    # isoline fan around it.
    assert abs(lock_range.phi_d_at_lower + lock_range.phi_d_at_upper) < 1e-6
    assert picture.tf_curves
    assert len(picture.isolines) >= 5
