"""ABL3 bench: the filtering assumption — DF vs harmonic balance vs simulation."""

from repro.experiments.extras import run_ablation_filtering


def test_ablation_filtering(benchmark, save_report):
    result = benchmark.pedantic(run_ablation_filtering, rounds=1, iterations=1)
    save_report(result)
    # Harmonic balance must beat the DF frequency and lock-phase errors.
    df_freq_err = abs(float(result.value("DF frequency (= f_c) error (Hz)")))
    hb_freq_err = abs(float(result.value("HB frequency error (Hz)")))
    assert hb_freq_err < 0.25 * df_freq_err
    df_phase, hb_phase = result.data["phase_errors"]
    assert hb_phase < 0.5 * df_phase
