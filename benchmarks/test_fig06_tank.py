"""FIG6 bench: RLC tank transfer function characterisation."""

import numpy as np

from repro.experiments.section3 import run_fig06


def test_fig06_tank(benchmark, save_report):
    result = benchmark(run_fig06)
    save_report(result)
    h = result.data["h"]
    w = result.data["w"]
    # Peak at the centre, phase falling through zero (Fig. 6 shape).
    peak = int(np.argmax(np.abs(h)))
    assert abs(w[peak] / (w[len(w) // 2]) - 1.0) < 0.01
    phase = np.angle(h)
    assert phase[0] > 0.0 > phase[-1]
