"""Benchmark harness helpers.

Each benchmark runs one experiment driver (see DESIGN.md's per-experiment
index), asserts the shape results the paper reports, and saves the
formatted report under ``benchmarks/results/<ID>.txt`` so the numbers are
inspectable after a ``--benchmark-only`` run (which captures stdout).

Heavy transient-validation benches run their driver once
(``benchmark.pedantic(rounds=1)``) — the interesting number is the
experiment's *internal* prediction-vs-simulation timing, not a re-run
distribution.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_report(results_dir):
    """Write an ExperimentResult's report to results/<id>.txt and echo it."""

    def _save(result):
        path = results_dir / f"{result.experiment_id}.txt"
        text = result.format()
        path.write_text(text + "\n")
        print("\n" + text)
        return result

    return _save
