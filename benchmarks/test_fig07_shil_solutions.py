"""FIG7 bench: SHIL solution curves and intersections at one frequency."""

from repro.experiments.section3 import run_fig07


def test_fig07_shil_solutions(benchmark, save_report):
    result = benchmark(run_fig07)
    save_report(result)
    solution = result.data["solution"]
    # The Fig. 7 picture: two lock states, one stable and one unstable,
    # and a physical state count that is a multiple of n.
    assert len(solution.locks) == 2
    assert sorted(lock.stable for lock in solution.locks) == [False, True]
    assert solution.total_states % solution.n == 0
