"""FIG17 bench: transient simulation validating the tunnel-diode amplitude."""

from repro.experiments.section4_tunnel import run_fig17


def test_fig17_tunnel_transient(benchmark, save_report):
    result = benchmark.pedantic(run_fig17, rounds=1, iterations=1)
    save_report(result)
    assert float(result.value("relative error")) < 1e-3
    assert result.value("settled") == "yes"
    state = result.data["steady_state"]
    assert state.thd < 0.02
    assert abs(state.frequency_hz / 1e9 - 0.5033) < 0.001
