"""FIG12 bench: diff-pair f(v) extraction + natural-amplitude prediction."""

from repro.experiments.section4_diffpair import run_fig12


def test_fig12_diffpair_fv(benchmark, save_report):
    result = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    save_report(result)
    # Paper Fig. 12b: A = 0.505 V at 0.5033 MHz.
    predicted = float(result.value("predicted natural amplitude A (V)"))
    assert abs(predicted - 0.505) < 1e-3
    natural = result.data["natural"]
    assert abs(natural.frequency_hz - 503292.0) < 100.0
    # The extracted curve matches the analytic tanh inside its window but
    # adds the BC-clamp behaviour outside it.
    assert float(result.value("max |extracted-analytic| on +-0.3V (A)")) < 1e-5
    assert result.value("BC clamp visible beyond tanh region") == "yes"
