"""SPEED bench: the paper's 25x/50x prediction-vs-simulation speedup claim,
plus the FFT-factorised fast path vs the dense-quadrature referee
(BENCH_SPEED.json)."""

import pathlib

from repro.experiments.extras import run_speedup
from repro.perf import write_bench_json

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def test_speedup(benchmark, save_report):
    result = benchmark.pedantic(run_speedup, kwargs={"quick": True}, rounds=1, iterations=1)
    save_report(result)
    # "1-2 orders of magnitude faster": anything >= 10x reproduces the
    # claim's order of magnitude on this substrate.
    assert float(result.value("speedup (x)")) > 10.0
    predicted = result.data["predicted"]
    simulated = result.data["simulated"]
    assert abs(predicted.width_hz / simulated.width_hz - 1.0) < 0.1

    # FFT fast path vs dense referee on the three paper prediction paths.
    methods = result.data["methods"]
    write_bench_json(
        "SPEED",
        {
            "prediction_s": float(result.value("prediction time (s)")),
            "simulation_s": float(result.value("simulation time (s)")),
            "prediction_vs_simulation_x": float(result.value("speedup (x)")),
            "methods": methods,
        },
        directory=REPO_ROOT,
    )
    for fig, record in methods.items():
        assert record["speedup_x"] >= 3.0, (fig, record)
        assert record["max_i1_deviation_A"] <= 1e-9, (fig, record)
        assert record["t_warm_characterize_s"] < 0.1, (fig, record)
        assert record["edge_deviation_rel_width"] < 1e-4, (fig, record)
