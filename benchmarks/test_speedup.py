"""SPEED bench: the paper's 25x/50x prediction-vs-simulation speedup claim."""

from repro.experiments.extras import run_speedup


def test_speedup(benchmark, save_report):
    result = benchmark.pedantic(run_speedup, kwargs={"quick": True}, rounds=1, iterations=1)
    save_report(result)
    # "1-2 orders of magnitude faster": anything >= 10x reproduces the
    # claim's order of magnitude on this substrate.
    assert float(result.value("speedup (x)")) > 10.0
    predicted = result.data["predicted"]
    simulated = result.data["simulated"]
    assert abs(predicted.width_hz / simulated.width_hz - 1.0) < 0.1
