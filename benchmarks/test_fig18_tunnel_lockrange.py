"""FIG18 bench: predicted 3rd-SHIL lock range of the tunnel diode oscillator."""

from repro.experiments.section4_tunnel import run_fig18


def test_fig18_tunnel_lockrange(benchmark, save_report):
    result = benchmark.pedantic(run_fig18, rounds=1, iterations=1)
    save_report(result)
    # Paper Table 2 prediction: [1.507320, 1.512429] GHz.
    lower = float(result.value("lower lock limit (GHz)"))
    upper = float(result.value("upper lock limit (GHz)"))
    assert abs(lower - 1.507320) < 0.001
    assert abs(upper - 1.512429) < 0.001
    assert result.value("A under lock < natural A") == "yes"
