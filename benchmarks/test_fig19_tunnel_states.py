"""FIG19 bench: the three SHIL states of the tunnel diode oscillator."""

from repro.experiments.section4_tunnel import run_fig19


def test_fig19_tunnel_states(benchmark, save_report):
    result = benchmark.pedantic(run_fig19, kwargs={"quick": True}, rounds=1, iterations=1)
    save_report(result)
    experiment = result.data["experiment"]
    assert all(seg.locked for seg in experiment.segments)
    assert len(experiment.observed_states) >= 2
    # High Q (316): the finite-Q phase offset is tiny at UHF.
    assert float(max(experiment.state_spacing_errors())) < 0.05
