"""FIG14 bench: predicted 3rd-SHIL lock range of the diff-pair."""

from repro.experiments.section4_diffpair import run_fig14


def test_fig14_diffpair_lockrange(benchmark, save_report):
    result = benchmark.pedantic(run_fig14, rounds=1, iterations=1)
    save_report(result)
    # Paper Table 1 prediction: [1.501065, 1.518735] MHz.
    lower = float(result.value("lower lock limit (MHz)"))
    upper = float(result.value("upper lock limit (MHz)"))
    assert abs(lower - 1.501065) < 0.002
    assert abs(upper - 1.518735) < 0.002
    # Fig. 14's qualitative signature: A decreases toward the lock edge.
    assert result.value("A under lock < natural A") == "yes"
