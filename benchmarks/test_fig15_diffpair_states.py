"""FIG15 bench: the three SHIL states of the diff-pair via pulse kicks."""

from repro.experiments.section4_diffpair import run_fig15


def test_fig15_diffpair_states(benchmark, save_report):
    result = benchmark.pedantic(run_fig15, kwargs={"quick": True}, rounds=1, iterations=1)
    save_report(result)
    experiment = result.data["experiment"]
    # Fig. 15: every segment re-locks onto one of the n = 3 theoretical
    # phases; across the kick sequence more than one state is observed
    # (which specific states a kick visits is chaotic in the kick
    # parameters — the paper's bench experiment shares that property).
    assert all(seg.locked for seg in experiment.segments)
    assert len(experiment.observed_states) >= 2
    assert float(max(experiment.state_spacing_errors())) < 0.3
