"""FIG3 bench: natural-oscillation prediction of the tanh oscillator."""

from repro.experiments.section3 import run_fig03


def test_fig03_natural_tanh(benchmark, save_report):
    result = benchmark(run_fig03)
    save_report(result)
    natural = result.data["natural"]
    assert natural.stable
    assert natural.loop_gain_small_signal > 1.0
    # Amplitude between the linear estimate and the hard-limit bound.
    assert 0.0 < natural.amplitude < 4.0 / 3.141 * 1e-3 * 1000.0 * 1.01
