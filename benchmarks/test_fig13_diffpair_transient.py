"""FIG13 bench: transient simulation validating the diff-pair amplitude."""

from repro.experiments.section4_diffpair import run_fig13


def test_fig13_diffpair_transient(benchmark, save_report):
    result = benchmark.pedantic(run_fig13, rounds=1, iterations=1)
    save_report(result)
    # Fig. 13: settled sinusoidal oscillation at the predicted amplitude.
    assert float(result.value("relative error")) < 2e-3
    assert result.value("settled") == "yes"
    state = result.data["steady_state"]
    assert state.thd < 0.05  # the filtering assumption: low-distortion v
    assert abs(state.frequency_hz / 1e6 - 0.5033) < 0.002
