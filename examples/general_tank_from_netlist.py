"""Pre-characterising a complex tank from a netlist — the GeneralTank flow.

The paper notes that for complex LC tank topologies the filter response
"can be pre-characterized computationally".  This example builds a tank
with a lossy inductor (series coil resistance — a topology whose
transimpedance is *not* the textbook parallel-RLC form) as a SPICE
netlist, characterises
``H(jw)`` with the MNA simulator's AC analysis, wraps the samples in a
:class:`repro.tank.GeneralTank`, and runs the full SHIL analysis on it —
no closed-form tank model anywhere in the loop.

Run:  python examples/general_tank_from_netlist.py   (~30 s)
"""

import numpy as np

from repro.core import predict_lock_range, predict_natural_oscillation
from repro.nonlin import NegativeTanh
from repro.spice import ac_analysis, parse_netlist
from repro.tank import GeneralTank

TANK_NETLIST = """* lossy-inductor tank (series coil resistance, driven at the device port)
Iin 0 port DC 0
C1  port 0   30n
Rp  port 0   8k
L1  port mid 66u
RL  mid  0   5
.ac lin 4001 80k 160k
.end
"""


def main() -> None:
    parsed = parse_netlist(TANK_NETLIST)
    card = parsed.analyses[0].params
    freqs = np.linspace(card["fstart"], card["fstop"], card["n"])
    w = 2 * np.pi * freqs

    # 1. AC-characterise the transimpedance seen at the device port.
    ac = ac_analysis(parsed.circuit, "Iin", w)
    h = ac.voltage("port")
    tank = GeneralTank(w, h)
    print(f"characterised tank: f_c = {tank.center_frequency / (2 * np.pi) / 1e3:.2f} kHz, "
          f"R_peak = {tank.peak_resistance:.1f} Ohm, "
          f"C_eff = {tank.effective_capacitance() * 1e9:.2f} nF")

    # 2. Full SHIL analysis against the sampled tank.
    device = NegativeTanh(gm=6e-3, i_sat=1e-3)
    natural = predict_natural_oscillation(device, tank)
    print(f"natural oscillation: A = {natural.amplitude:.4f} V at "
          f"{natural.frequency_hz / 1e3:.2f} kHz "
          f"(loop gain {natural.loop_gain_small_signal:.2f})")

    lock_range = predict_lock_range(device, tank, v_i=0.03, n=3)
    print(f"3rd-SHIL lock range: [{lock_range.injection_lower_hz / 1e3:.2f}, "
          f"{lock_range.injection_upper_hz / 1e3:.2f}] kHz "
          f"(width {lock_range.width_hz:.1f} Hz, "
          f"boundary phi_d = {lock_range.phi_d_at_lower:+.4f} rad)")

    # 3. Show the asymmetry the coil loss introduces: the series-RL
    #    branch skews |H| around resonance, which the sampled phase map
    #    carries into slightly asymmetric frequency limits.
    low_off = tank.center_frequency - lock_range.injection_lower / 3
    high_off = lock_range.injection_upper / 3 - tank.center_frequency
    print(f"frequency-offset asymmetry: {low_off / (2 * np.pi):.2f} Hz below vs "
          f"{high_off / (2 * np.pi):.2f} Hz above the centre "
          f"(phase-symmetric per the paper's VI-B3, frequency-asymmetric "
          f"through the tank's phase map)")


if __name__ == "__main__":
    main()
