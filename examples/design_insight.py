"""Design insight: inverse design and phase-noise suppression under lock.

The paper's pitch is that the graphical method gives *design* leverage —
it is fast and transparent enough to answer designer questions, not just
verify a finished circuit.  This example asks three of them on the tanh
demo oscillator:

1. how much injection do I need for a 2 kHz lock range?
2. how does the width trade against injection strength and tank Q?
3. what does the lock buy me in phase noise — and how does that degrade
   toward the lock-range edge?

Run:  python examples/design_insight.py   (~1 min)
"""

import numpy as np

from repro.core import (
    injection_for_lock_range,
    lock_range_sensitivity,
    phase_noise_suppression,
    predict_lock_range,
)
from repro.experiments.circuits import tanh_oscillator


def main() -> None:
    setup = tanh_oscillator()
    device, tank = setup.nonlinearity, setup.tank
    print(f"oscillator: f_c = {tank.center_frequency_hz / 1e3:.1f} kHz, "
          f"Q = {tank.quality_factor:.0f}\n")

    # 1. Inverse design: V_i for a 2 kHz 3rd-SHIL lock range.
    target = 2000.0
    v_i, lock_range = injection_for_lock_range(
        device, tank, n=3, target_width_hz=target
    )
    print(f"for a {target:.0f} Hz lock range at n = 3: V_i = {v_i * 1e3:.2f} mV "
          f"(achieved {lock_range.width_hz:.1f} Hz)")

    # 2. Local trade-offs around that operating point.
    s = lock_range_sensitivity(device, tank, v_i=v_i, n=3)
    print(f"sensitivities: d log W / d log V_i = {s['dlogW_dlogVi']:+.2f}, "
          f"d log W / d log Q = {s.get('dlogW_dlogQ', float('nan')):+.2f}")
    print("  (double the injection ~ double the range; raising Q narrows it)\n")

    # 3. Phase-noise suppression across the lock range.
    lr = predict_lock_range(device, tank, v_i=v_i, n=3)
    w_center = 3 * tank.center_frequency
    print("lock point          relock corner   suppression at 100 Hz offset")
    for frac, label in ((0.0, "centre"), (0.6, "60% out"), (0.95, "95% out")):
        w_inj = w_center + frac * (lr.injection_upper - w_center)
        model = phase_noise_suppression(
            device, tank, v_i=v_i, w_injection=w_inj, n=3
        )
        supp_db = 10 * np.log10(model.oscillator_noise_transfer(np.array([100.0]))[0])
        print(f"  {label:<16}  {model.corner_hz:9.1f} Hz   {supp_db:+7.1f} dB")
    print("\nLocks near the edge re-lock slowly: the suppression corner "
          "collapses, so a divider biased at the edge of its lock range is "
          "noisy — quantitative backing for centring the injection.")


if __name__ == "__main__":
    main()
