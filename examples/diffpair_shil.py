"""The paper's Section IV-A flow on the cross-coupled BJT diff-pair.

End-to-end: extract i = f(v) from the SPICE-level cell by DC sweep
(Fig. 11b/12a), predict the natural oscillation (Fig. 12b, A = 0.505 V),
validate by transient simulation (Fig. 13), and predict the 3rd-SHIL lock
range (Fig. 14 / Table 1's prediction row).

Run:  python examples/diffpair_shil.py            (~20 s)
      python examples/diffpair_shil.py --validate (adds the simulated
                                                   lock range, minutes)
"""

import sys

import numpy as np

from repro.core import predict_lock_range, predict_natural_oscillation
from repro.experiments.circuits import diffpair_extraction_circuit, diffpair_oscillator
from repro.measure import Waveform, measure_steady_state, simulate_lock_range
from repro.nonlin import extract_iv_curve
from repro.odesim import simulate_oscillator
from repro.viz.ascii import render_waveform


def main(validate: bool = False) -> None:
    setup = diffpair_oscillator()
    tank = setup.tank
    print(f"diff-pair tank: f_c = {tank.center_frequency_hz / 1e3:.1f} kHz, "
          f"Q = {tank.quality_factor:.1f}")

    # 1. Extract f(v) by DC sweep on the SPICE-level cell (Fig. 11b).
    from repro.nonlin.tabulated import LinearTableNonlinearity

    table = extract_iv_curve(
        diffpair_extraction_circuit(), "VX", -0.8, 0.8, 161, name="diffpair"
    ).shifted(0.0)
    law = LinearTableNonlinearity.from_nonlinearity(table, -0.8, 0.8, 4097)
    print(f"extracted f(v): f'(0) = {float(law.derivative(np.asarray(0.0))) * 1e3:.3f} mS "
          f"(negative resistance)")

    # 2. Natural oscillation prediction (Fig. 12b).
    natural = predict_natural_oscillation(law, tank)
    print(f"predicted natural oscillation: A = {natural.amplitude:.4f} V "
          f"(paper: 0.505 V) at {natural.frequency_hz / 1e6:.4f} MHz")

    # 3. Transient validation (Fig. 13).
    period = 2 * np.pi / tank.center_frequency
    sim = simulate_oscillator(
        law, tank, t_end=600 * period, record_start=540 * period
    )
    waveform = Waveform(sim.t, sim.v[:, 0])
    state = measure_steady_state(waveform)
    print(f"simulated:   A = {state.amplitude:.4f} V at "
          f"{state.frequency_hz / 1e6:.4f} MHz (THD {state.thd:.3f})")
    print(render_waveform(waveform.t, waveform.x,
                          title="diff-pair steady-state oscillation"))

    # 4. 3rd-SHIL lock-range prediction (Fig. 14).
    lock_range = predict_lock_range(law, tank, v_i=setup.v_i, n=setup.n)
    print(f"predicted lock range: [{lock_range.injection_lower_hz / 1e6:.6f}, "
          f"{lock_range.injection_upper_hz / 1e6:.6f}] MHz "
          f"(width {lock_range.width_hz / 1e6:.5f} MHz; "
          f"paper: [1.501065, 1.518735], 0.01767 MHz)")

    if validate:
        print("\nsimulating the lock range (batched bisection)...")
        simulated = simulate_lock_range(
            law, tank, v_i=setup.v_i, n=setup.n,
            scan_rel_span=0.009, batch=10, rounds=2,
            settle_cycles=400.0, acquire_cycles=800.0, observe_cycles=300.0,
        )
        print(f"simulated lock range: [{simulated.injection_lower_hz / 1e6:.6f}, "
              f"{simulated.injection_upper_hz / 1e6:.6f}] MHz "
              f"(paper simulation: [1.4998, 1.5174] MHz)")


if __name__ == "__main__":
    main(validate="--validate" in sys.argv)
