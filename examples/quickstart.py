"""Quickstart: analyse sub-harmonic injection locking in three calls.

Builds the Section III demo oscillator (negative-tanh nonlinearity, Q=10
parallel tank), predicts its free-running oscillation, finds the 3rd
sub-harmonic lock states for a given injection, and computes the lock
range — printing the same quantities the paper's figures show.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    NegativeTanh,
    ParallelRLC,
    predict_lock_range,
    predict_natural_oscillation,
    solve_lock_states,
)
from repro.viz.ascii import render_curves


def main() -> None:
    # 1. The oscillator: i = f(v) negative resistance + parallel RLC tank.
    nonlinearity = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
    tank = ParallelRLC(r=1000.0, l=100e-6, c=10e-9)
    print(f"tank: f_c = {tank.center_frequency_hz / 1e3:.2f} kHz, Q = {tank.quality_factor:.1f}")

    # 2. Natural oscillation (paper Fig. 3): solve T_f(A) = 1.
    natural = predict_natural_oscillation(nonlinearity, tank)
    print(f"natural oscillation: A = {natural.amplitude:.4f} V "
          f"at {natural.frequency_hz / 1e3:.2f} kHz "
          f"(loop gain T_f(0) = {natural.loop_gain_small_signal:.2f})")

    # 3. Lock states for a 3rd sub-harmonic injection at 3 w_c
    #    (paper Fig. 7): intersections of the two condition curves.
    v_i, n = 0.03, 3
    solution = solve_lock_states(
        nonlinearity, tank, v_i=v_i, w_injection=n * tank.center_frequency, n=n
    )
    print(f"\nlock states at w_inj = 3 w_c (V_i = {v_i} V):")
    for lock in solution.locks:
        tag = "stable" if lock.stable else "unstable"
        states = ", ".join(f"{psi:.3f}" for psi in lock.oscillator_phases)
        print(f"  phi = {lock.phi:.4f} rad, A = {lock.amplitude:.4f} V ({tag}); "
              f"oscillator phases: [{states}] rad")
    print(render_curves(
        [(solution.tf_curves, "."), (solution.phase_curves, ":")],
        points=[(l.phi, l.amplitude, "O" if l.stable else "X") for l in solution.locks],
        title="T_f = 1 (.) vs phase condition (:) — O stable, X unstable",
    ))

    # 4. Lock range (paper Fig. 10): one pass along the invariant curve.
    lock_range = predict_lock_range(nonlinearity, tank, v_i=v_i, n=n)
    print(f"\n3rd-SHIL lock range: "
          f"[{lock_range.injection_lower_hz / 1e3:.2f}, "
          f"{lock_range.injection_upper_hz / 1e3:.2f}] kHz "
          f"(width {lock_range.width_hz:.1f} Hz, "
          f"boundary phi_d = {lock_range.phi_d_at_lower:+.4f} rad)")


if __name__ == "__main__":
    main()
