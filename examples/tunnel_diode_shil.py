"""The paper's Section IV-B flow on the UHF tunnel diode oscillator.

Uses the appendix VI-C tunnel diode model biased at 0.25 V inside its
negative-differential-resistance region, reproduces the A = 0.199 V
natural oscillation at 503.3 MHz (Figs. 16-17), predicts the 3rd-SHIL
lock range near 1.51 GHz (Fig. 18 / Table 2), and demonstrates the three
lock states via pulse kicks (Fig. 19).

Run:  python examples/tunnel_diode_shil.py          (~1 min)
"""

import numpy as np

from repro.core import (
    enumerate_states,
    predict_lock_range,
    predict_natural_oscillation,
    solve_lock_states,
)
from repro.experiments.circuits import tunnel_oscillator
from repro.experiments.section4_tunnel import tunnel_law
from repro.measure import run_states_experiment
from repro.nonlin import TunnelDiode


def main() -> None:
    setup = tunnel_oscillator()
    tank = setup.tank
    model = TunnelDiode()
    print(f"tunnel diode: NDR between {model.peak_voltage():.3f} V and "
          f"{model.valley_voltage():.3f} V; biased at 0.25 V")
    print(f"tank: f_c = {tank.center_frequency_hz / 1e6:.1f} MHz, "
          f"Q = {tank.quality_factor:.0f}")

    law = tunnel_law()
    natural = predict_natural_oscillation(law, tank)
    print(f"natural oscillation: A = {natural.amplitude:.4f} V "
          f"(paper: 0.199 V) at {natural.frequency_hz / 1e9:.4f} GHz")

    lock_range = predict_lock_range(law, tank, v_i=setup.v_i, n=setup.n)
    print(f"3rd-SHIL lock range: [{lock_range.injection_lower_hz / 1e9:.6f}, "
          f"{lock_range.injection_upper_hz / 1e9:.6f}] GHz "
          f"(paper prediction: [1.507320, 1.512429] GHz)")

    # The three lock states (Fig. 19): kick the locked oscillator with
    # short current pulses and watch it settle into different phases.
    w_inj = setup.n * tank.center_frequency
    solution = solve_lock_states(law, tank, v_i=setup.v_i, w_injection=w_inj, n=setup.n)
    lock = solution.stable_locks[0]
    states = enumerate_states(lock.phi, setup.n)
    print(f"\ntheoretical state phases: "
          f"{', '.join(f'{s:.4f}' for s in states)} rad (spacing 2 pi / 3)")
    experiment = run_states_experiment(
        law, tank,
        v_i=setup.v_i, w_injection=w_inj, n=setup.n,
        theoretical_states=states,
        pulse_times_cycles=(900.37, 1800.71, 2700.13),
        acquire_cycles=500.0, settle_cycles=250.0,
    )
    for k, seg in enumerate(experiment.segments):
        print(f"  segment {k}: settled in state {seg.state_index} "
              f"(phase {seg.phase:.4f} rad, A = {seg.amplitude:.4f} V)")
    print(f"distinct states observed: {sorted(experiment.observed_states)}")


if __name__ == "__main__":
    main()
