"""Design-space exploration: lock range vs injection strength and order.

The graphical method's one-pass speed is what makes design sweeps
practical.  This example maps the 3rd-SHIL lock range of the tanh demo
oscillator across injection amplitudes (the "how much injection do I need
for this lock range" question an RFIC designer actually asks), and
compares sub-harmonic orders n = 1..5 at fixed injection, printing a
small design table plus an ASCII trend plot.

Run:  python examples/lock_range_design_sweep.py   (~1 min)
"""

import numpy as np

from repro.core import predict_lock_range, predict_natural_oscillation
from repro.core.lockrange import NoLockError
from repro.experiments.circuits import tanh_oscillator
from repro.viz.ascii import AsciiCanvas


def main() -> None:
    setup = tanh_oscillator()
    nonlinearity, tank = setup.nonlinearity, setup.tank
    natural = predict_natural_oscillation(nonlinearity, tank)
    print(f"oscillator: A0 = {natural.amplitude:.3f} V at "
          f"{tank.center_frequency_hz / 1e3:.1f} kHz (Q = {tank.quality_factor:.0f})\n")

    # Sweep 1: lock-range width vs injection amplitude at n = 3.
    v_i_values = np.linspace(0.005, 0.08, 12)
    widths = []
    print("V_i (V)   width (Hz)   phi_d boundary (rad)   A at edge (V)")
    for v_i in v_i_values:
        lr = predict_lock_range(nonlinearity, tank, v_i=float(v_i), n=3)
        widths.append(lr.width_hz)
        print(f"{v_i:7.3f}   {lr.width_hz:10.1f}   {lr.phi_d_at_lower:20.4f}"
              f"   {lr.amplitude_at_lower:13.4f}")
    canvas = AsciiCanvas(
        70, 18,
        x_range=(float(v_i_values[0]), float(v_i_values[-1])),
        y_range=(0.0, max(widths) * 1.05),
    )
    canvas.plot_polyline(v_i_values, np.asarray(widths), "*")
    print(canvas.render(title="3rd-SHIL lock-range width vs V_i",
                        x_label="V_i (V)", y_label="width (Hz)"))

    # Sweep 2: order dependence at fixed V_i.  For an odd nonlinearity
    # the even orders (n = 2, 4) couple only at second order in V_i and
    # lock over ranges ~40x narrower than the odd orders — the classic
    # even-mode suppression of differential oscillators, falling out of
    # the two-tone describing function with no special casing.
    print("\nn    injection near    width (Hz)")
    for n in range(1, 6):
        try:
            lr = predict_lock_range(nonlinearity, tank, v_i=0.03, n=n)
            f_center = n * tank.center_frequency_hz
            print(f"{n}    {f_center / 1e3:10.1f} kHz   {lr.width_hz:10.1f}")
        except NoLockError:
            print(f"{n}    {'-':>14}   no stable lock at V_i = 0.03 V")


if __name__ == "__main__":
    main()
