"""Analysing a user-defined nonlinearity — the "any nonlinearity" claim.

The paper's selling point is that the technique handles *arbitrary*
memoryless nonlinearities by pre-characterising them computationally.
This example defines an asymmetric exponential-limited negative
resistance that none of the classic closed forms cover, wraps it in a
``FunctionNonlinearity``, and runs the whole analysis stack on it —
including cross-checking the lock range against transient simulation.

Run:  python examples/custom_nonlinearity.py       (~1 min)
"""

import numpy as np

from repro import FunctionNonlinearity, ParallelRLC
from repro.core import (
    predict_lock_range,
    predict_natural_oscillation,
    solve_lock_states,
)
from repro.measure import simulate_lock_range


def main() -> None:
    # An asymmetric negative resistance: tanh-like for v > 0 but with a
    # softer exponential recovery for v < 0 (e.g. a single-ended stage).
    def law(v):
        v = np.asarray(v, dtype=float)
        return -1.5e-3 * np.tanh(3.0 * v) + 0.4e-3 * (np.exp(np.minimum(v, 1.0)) - 1.0 - v)

    device = FunctionNonlinearity(law, name="asymmetric-ndr")
    tank = ParallelRLC(r=1200.0, l=50e-6, c=20e-9)
    print(f"custom device: f'(0) = {device.small_signal_conductance():.3e} S, "
          f"negative resistance: {device.is_negative_resistance()}")
    print(f"tank: f_c = {tank.center_frequency_hz / 1e3:.1f} kHz, "
          f"Q = {tank.quality_factor:.1f}")

    natural = predict_natural_oscillation(device, tank)
    print(f"natural oscillation: A = {natural.amplitude:.4f} V")

    # Asymmetric f => even harmonics exist; the DC component and the
    # second harmonic of the current are nonzero.
    from repro.core.describing_function import harmonic_coefficients

    harmonics = harmonic_coefficients(device, natural.amplitude, k_max=5)
    print("current harmonics |I_k| (A):",
          ", ".join(f"k={k}: {abs(harmonics.harmonic(k)):.2e}" for k in range(5)))

    v_i, n = 0.05, 3
    solution = solve_lock_states(
        device, tank, v_i=v_i, w_injection=n * tank.center_frequency, n=n
    )
    print(f"\nlock states at centre (V_i = {v_i} V, n = {n}):")
    for lock in solution.locks:
        tag = "stable" if lock.stable else "unstable"
        print(f"  phi = {lock.phi:.4f} rad, A = {lock.amplitude:.4f} V ({tag})")

    predicted = predict_lock_range(device, tank, v_i=v_i, n=n)
    print(f"predicted lock range: [{predicted.injection_lower_hz / 1e3:.2f}, "
          f"{predicted.injection_upper_hz / 1e3:.2f}] kHz "
          f"(width {predicted.width_hz:.1f} Hz)")

    print("cross-checking against transient simulation...")
    simulated = simulate_lock_range(
        device, tank, v_i=v_i, n=n,
        scan_rel_span=3.0 * predicted.width / (2 * predicted.injection_lower),
        batch=10, rounds=2,
        settle_cycles=250.0, acquire_cycles=450.0, observe_cycles=250.0,
    )
    print(f"simulated lock range: [{simulated.injection_lower_hz / 1e3:.2f}, "
          f"{simulated.injection_upper_hz / 1e3:.2f}] kHz")
    err_lo = abs(predicted.injection_lower - simulated.injection_lower) / simulated.injection_lower
    err_hi = abs(predicted.injection_upper - simulated.injection_upper) / simulated.injection_upper
    print(f"edge agreement: {err_lo:.2e} / {err_hi:.2e} relative")
    print(f"width: predicted {predicted.width_hz:.0f} Hz vs simulated "
          f"{simulated.width_hz:.0f} Hz — strongly asymmetric nonlinearities "
          f"put energy in even harmonics the fundamental-only analysis drops; "
          f"the harmonic-balance refinement (repro.core.harmonic_balance) "
          f"recovers that physics when the discrepancy matters.")


if __name__ == "__main__":
    main()
