"""Lightweight argument-validation helpers.

Consistent, early, descriptive errors are worth far more in a numerical
library than defensive silence — a NaN that leaks into a Newton iteration
surfaces as a cryptic singular-matrix failure ten frames later.  Each helper
raises ``ValueError`` (or ``TypeError`` where appropriate) with the offending
name in the message.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_positive",
    "check_in_range",
    "check_finite",
    "check_monotonic",
    "check_shape_match",
]


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that a scalar is positive (or non-negative if not strict)."""
    value = float(value)
    if strict and not value > 0.0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and not value >= 0.0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Validate that a scalar lies in ``[low, high]`` (or ``(low, high)``)."""
    value = float(value)
    if inclusive:
        ok = low <= value <= high
    else:
        ok = low < value < high
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ValueError(
            f"{name} must be in {bracket[0]}{low}, {high}{bracket[1]}, got {value}"
        )
    return value


def check_finite(name: str, array: np.ndarray) -> np.ndarray:
    """Validate that every entry of an array is finite."""
    array = np.asarray(array)
    if not np.all(np.isfinite(array)):
        bad = int(np.count_nonzero(~np.isfinite(array)))
        raise ValueError(f"{name} contains {bad} non-finite entries")
    return array


def check_monotonic(name: str, array: np.ndarray, *, strict: bool = True) -> np.ndarray:
    """Validate that a 1-D array is monotonically increasing."""
    array = np.asarray(array, dtype=float)
    if array.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {array.shape}")
    diffs = np.diff(array)
    ok = np.all(diffs > 0) if strict else np.all(diffs >= 0)
    if not ok:
        raise ValueError(f"{name} must be monotonically increasing")
    return array


def check_shape_match(name_a: str, a: np.ndarray, name_b: str, b: np.ndarray) -> None:
    """Validate that two arrays have identical shapes."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(
            f"{name_a} and {name_b} must have the same shape, "
            f"got {a.shape} vs {b.shape}"
        )
