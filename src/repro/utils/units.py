"""Engineering / SPICE-style unit notation.

SPICE netlists and RF design notes use suffix notation for component values
(``100u``, ``1n``, ``2.2k``, ``1meg``).  This module converts between such
strings and floats, and formats floats back into engineering notation for
reports and benchmark tables.

The parser follows SPICE conventions:

* suffixes are case-insensitive;
* ``m`` is milli and ``meg`` is mega (the classic SPICE trap);
* trailing unit names after the suffix are ignored (``10kOhm`` == ``10k``);
* plain numbers (including exponent notation) pass through unchanged.
"""

from __future__ import annotations

import math
import re

__all__ = ["SI_PREFIXES", "parse_value", "format_eng", "format_si"]

#: Mapping of SPICE suffixes to multipliers.  Order matters only for
#: documentation; lookup is by exact (lower-cased) match.
SI_PREFIXES: dict[str, float] = {
    "f": 1e-15,
    "p": 1e-12,
    "n": 1e-9,
    "u": 1e-6,
    "m": 1e-3,
    "k": 1e3,
    "meg": 1e6,
    "g": 1e9,
    "t": 1e12,
}

#: Exponents for engineering-notation formatting, most negative first.
_ENG_STEPS: list[tuple[int, str]] = [
    (-15, "f"),
    (-12, "p"),
    (-9, "n"),
    (-6, "u"),
    (-3, "m"),
    (0, ""),
    (3, "k"),
    (6, "M"),
    (9, "G"),
    (12, "T"),
]

_VALUE_RE = re.compile(
    r"""^\s*
        (?P<number>[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)
        (?P<suffix>[a-zA-Z]*)
        \s*$""",
    re.VERBOSE,
)


def parse_value(text: str | float | int) -> float:
    """Parse a SPICE-style value string into a float.

    Accepts floats/ints unchanged (for convenience when a value may already
    be numeric).

    >>> parse_value("100u")
    0.0001
    >>> parse_value("1meg")
    1000000.0
    >>> parse_value("2.2k")
    2200.0
    >>> parse_value(42)
    42.0

    Raises
    ------
    ValueError
        If the string is not a number with an optional SPICE suffix.
    """
    if isinstance(text, (int, float)):
        return float(text)
    match = _VALUE_RE.match(text)
    if match is None:
        raise ValueError(f"cannot parse value {text!r}")
    number = float(match.group("number"))
    suffix = match.group("suffix").lower()
    if not suffix:
        return number
    # SPICE semantics: 'meg' must be checked before 'm'; longer unit names
    # like '10kohm' keep only the leading recognised prefix.
    if suffix.startswith("meg"):
        return number * 1e6
    if suffix[0] in SI_PREFIXES:
        return number * SI_PREFIXES[suffix[0]]
    # Unknown suffix that is purely a unit name ("10Ohm", "5V"): ignore it.
    if suffix.isalpha():
        return number
    raise ValueError(f"cannot parse value {text!r}")


def format_eng(value: float, digits: int = 4, *, spice: bool = False) -> str:
    """Format ``value`` in engineering notation with an SI letter suffix.

    With ``spice=True`` mega is written ``meg`` so the output re-parses
    under SPICE's case-insensitive suffix rules (where a bare ``m`` always
    means milli).

    >>> format_eng(0.0001)
    '100u'
    >>> format_eng(5.033e8)
    '503.3M'
    >>> format_eng(5.033e8, spice=True)
    '503.3meg'
    >>> format_eng(0.0)
    '0'
    """
    if value == 0.0 or not math.isfinite(value):
        return f"{value:g}"
    sign = "-" if value < 0 else ""
    mag = abs(value)
    exponent = int(math.floor(math.log10(mag) / 3.0) * 3)
    exponent = max(min(exponent, _ENG_STEPS[-1][0]), _ENG_STEPS[0][0])
    suffix = next(s for e, s in _ENG_STEPS if e == exponent)
    if spice and suffix == "M":
        suffix = "meg"
    mantissa = mag / 10.0**exponent
    text = f"{mantissa:.{digits}g}"
    return f"{sign}{text}{suffix}"


def format_si(value: float, unit: str, digits: int = 4) -> str:
    """Format a value with an SI suffix and a unit name.

    >>> format_si(5.033e5, "Hz")
    '503.3 kHz'
    """
    if value == 0.0 or not math.isfinite(value):
        return f"{value:g} {unit}"
    sign = "-" if value < 0 else ""
    mag = abs(value)
    exponent = int(math.floor(math.log10(mag) / 3.0) * 3)
    exponent = max(min(exponent, _ENG_STEPS[-1][0]), _ENG_STEPS[0][0])
    suffix = next(s for e, s in _ENG_STEPS if e == exponent)
    mantissa = mag / 10.0**exponent
    text = f"{mantissa:.{digits}g}"
    space = " " if (suffix or unit) else ""
    return f"{sign}{text}{space}{suffix}{unit}"
