"""Grid containers and bracketing helpers used by the graphical procedure.

The graphical SHIL technique evaluates describing-function surfaces over a
rectangular ``(phi, A)`` grid and then extracts level sets.  ``Grid2D`` holds
the axes plus any number of named sampled surfaces, and offers bilinear
interpolation so downstream code (curve extraction, stability slopes) never
re-derives indexing arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import check_monotonic, check_positive

__all__ = ["Grid2D", "linear_grid", "log_grid", "refine_bracket"]


def linear_grid(low: float, high: float, n: int) -> np.ndarray:
    """Uniform 1-D grid with at least two points.

    A named wrapper around :func:`numpy.linspace` that validates the inputs
    the way the rest of the library expects.
    """
    if n < 2:
        raise ValueError(f"grid needs at least 2 points, got {n}")
    if not high > low:
        raise ValueError(f"grid requires high > low, got [{low}, {high}]")
    return np.linspace(low, high, n)


def log_grid(low: float, high: float, n: int) -> np.ndarray:
    """Logarithmic 1-D grid, used for frequency sweeps (AC analysis)."""
    check_positive("low", low)
    check_positive("high", high)
    if n < 2:
        raise ValueError(f"grid needs at least 2 points, got {n}")
    if not high > low:
        raise ValueError(f"grid requires high > low, got [{low}, {high}]")
    return np.logspace(np.log10(low), np.log10(high), n)


@dataclass
class Grid2D:
    """A rectangular grid over ``(x, y)`` with named sampled surfaces.

    Conventions follow the paper's plots: ``x`` is the phase variable
    ``phi`` and ``y`` is the amplitude ``A``.  Surfaces are stored with
    shape ``(len(y), len(x))`` — row index varies ``y`` — matching
    ``numpy.meshgrid(x, y)`` output.

    Parameters
    ----------
    x, y:
        Strictly increasing axis vectors.
    surfaces:
        Mapping from surface name to a 2-D array of samples.
    """

    x: np.ndarray
    y: np.ndarray
    surfaces: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.x = check_monotonic("x", self.x)
        self.y = check_monotonic("y", self.y)
        for name, surface in self.surfaces.items():
            self._check_surface(name, surface)

    def _check_surface(self, name: str, surface: np.ndarray) -> np.ndarray:
        surface = np.asarray(surface)
        expected = (self.y.size, self.x.size)
        if surface.shape != expected:
            raise ValueError(
                f"surface {name!r} has shape {surface.shape}, expected {expected}"
            )
        return surface

    def add_surface(self, name: str, surface: np.ndarray) -> None:
        """Attach a sampled surface; shape must be ``(len(y), len(x))``."""
        self.surfaces[name] = self._check_surface(name, surface)

    def meshgrid(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``X, Y`` meshes with the same shape as the surfaces."""
        return np.meshgrid(self.x, self.y)

    def interpolate(self, name: str, x: float, y: float) -> float:
        """Bilinear interpolation of surface ``name`` at a point.

        Points outside the grid are clamped to the boundary — callers that
        care about extrapolation should test bounds themselves.
        """
        surface = self.surfaces[name]
        xi = np.clip(np.searchsorted(self.x, x) - 1, 0, self.x.size - 2)
        yi = np.clip(np.searchsorted(self.y, y) - 1, 0, self.y.size - 2)
        x0, x1 = self.x[xi], self.x[xi + 1]
        y0, y1 = self.y[yi], self.y[yi + 1]
        tx = np.clip((x - x0) / (x1 - x0), 0.0, 1.0)
        ty = np.clip((y - y0) / (y1 - y0), 0.0, 1.0)
        z00 = surface[yi, xi]
        z01 = surface[yi, xi + 1]
        z10 = surface[yi + 1, xi]
        z11 = surface[yi + 1, xi + 1]
        return float(
            z00 * (1 - tx) * (1 - ty)
            + z01 * tx * (1 - ty)
            + z10 * (1 - tx) * ty
            + z11 * tx * ty
        )

    def gradient(self, name: str, x: float, y: float) -> tuple[float, float]:
        """Central-difference gradient ``(dz/dx, dz/dy)`` at a point."""
        hx = float(np.min(np.diff(self.x)))
        hy = float(np.min(np.diff(self.y)))
        zxp = self.interpolate(name, x + hx, y)
        zxm = self.interpolate(name, x - hx, y)
        zyp = self.interpolate(name, x, y + hy)
        zym = self.interpolate(name, x, y - hy)
        return (zxp - zxm) / (2 * hx), (zyp - zym) / (2 * hy)


def refine_bracket(
    func,
    low: float,
    high: float,
    *,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> float:
    """Bisection root refinement on a bracketing interval.

    ``func(low)`` and ``func(high)`` must have opposite signs.  Used for the
    final polish of describing-function intersections and the lock-range
    boundary, where robustness matters more than the quadratic convergence
    of Newton (the surfaces are only piecewise-smooth after tabulation).
    """
    f_low = func(low)
    f_high = func(high)
    if f_low == 0.0:
        return low
    if f_high == 0.0:
        return high
    if np.sign(f_low) == np.sign(f_high):
        raise ValueError(
            f"refine_bracket requires a sign change: f({low})={f_low}, "
            f"f({high})={f_high}"
        )
    for _ in range(max_iter):
        mid = 0.5 * (low + high)
        f_mid = func(mid)
        if f_mid == 0.0 or (high - low) < tol * max(1.0, abs(mid)):
            return mid
        if np.sign(f_mid) == np.sign(f_low):
            low, f_low = mid, f_mid
        else:
            high, f_high = mid, f_mid
    return 0.5 * (low + high)
