"""Shared utilities: engineering-unit parsing, validation, grid helpers.

These are deliberately dependency-light — everything here operates on plain
Python scalars and numpy arrays so the rest of the library can import it
without cycles.
"""

from repro.utils.units import (
    SI_PREFIXES,
    format_eng,
    format_si,
    parse_value,
)
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_monotonic,
    check_positive,
    check_shape_match,
)
from repro.utils.grids import (
    Grid2D,
    linear_grid,
    log_grid,
    refine_bracket,
)
from repro.utils.serialize import dumps, to_jsonable

__all__ = [
    "SI_PREFIXES",
    "format_eng",
    "format_si",
    "parse_value",
    "check_finite",
    "check_in_range",
    "check_monotonic",
    "check_positive",
    "check_shape_match",
    "Grid2D",
    "linear_grid",
    "log_grid",
    "refine_bracket",
    "to_jsonable",
    "dumps",
]
