"""JSON-friendly serialisation of analysis results.

EDA flows are pipelines: a lock-range prediction feeds a spec checker, a
regression dashboard, a report generator.  ``to_jsonable`` converts the
library's result objects (dataclasses holding floats, complex phasors and
numpy arrays) into plain JSON-compatible structures, with conventions:

* numpy arrays -> lists (complex arrays -> ``{"re": [...], "im": [...]}``),
* complex scalars -> ``{"re": ..., "im": ...}``,
* dataclasses -> ``{"__type__": <class name>, ...fields}``,
* objects exposing heavyweight internals (grids, waveforms) are reduced
  to their summary fields via each class's ``_summary_fields_`` when
  present.

``dumps`` wraps :func:`json.dumps` over that conversion.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np

__all__ = ["to_jsonable", "dumps"]

#: Per-class field whitelists for objects whose full payload is too heavy
#: or non-numeric to serialise (grids, curves, callables).
_SUMMARY_FIELDS: dict[str, tuple[str, ...]] = {
    "ShilSolution": ("n", "v_i", "w_i", "phi_d", "locks"),
    "LockState": (
        "phi",
        "amplitude",
        "stable",
        "oscillator_phases",
        "residual_norm",
    ),
    "NaturalOscillation": (
        "amplitude",
        "frequency",
        "stable",
        "loop_gain_small_signal",
        "tf_slope",
    ),
    "LockRange": (
        "n",
        "v_i",
        "injection_lower",
        "injection_upper",
        "phi_d_at_lower",
        "phi_d_at_upper",
        "amplitude_at_lower",
        "amplitude_at_upper",
    ),
    "HbSolution": ("w", "harmonics", "residual_norm", "iterations"),
    "PullingAnalysis": (
        "locked",
        "beat_frequency",
        "amplitude_mean",
        "amplitude_depth",
    ),
    "LockNoiseModel": ("relock_rate", "amplitude_rate", "n"),
    "SimulatedLockRange": (
        "n",
        "v_i",
        "injection_lower",
        "injection_upper",
        "resolution",
    ),
}


def to_jsonable(obj):
    """Recursively convert an analysis result into JSON-compatible data."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, complex) or isinstance(obj, np.complexfloating):
        value = complex(obj)
        return {"re": value.real, "im": value.imag}
    if isinstance(obj, np.ndarray):
        if np.iscomplexobj(obj):
            return {"re": obj.real.tolist(), "im": obj.imag.tolist()}
        return obj.tolist()
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(item) for item in obj]
    if isinstance(obj, dict):
        return {str(key): to_jsonable(value) for key, value in obj.items()}
    type_name = type(obj).__name__
    if type_name in _SUMMARY_FIELDS:
        payload = {"__type__": type_name}
        for field in _SUMMARY_FIELDS[type_name]:
            payload[field] = to_jsonable(getattr(obj, field))
        return payload
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        payload = {"__type__": type_name}
        for field in dataclasses.fields(obj):
            payload[field.name] = to_jsonable(getattr(obj, field.name))
        return payload
    raise TypeError(f"cannot serialise {type_name!r} to JSON")


def dumps(obj, **kwargs) -> str:
    """Serialise an analysis result to a JSON string."""
    kwargs.setdefault("indent", 2)
    return json.dumps(to_jsonable(obj), **kwargs)
