"""Hierarchical spans: the single timing/tracing primitive of the repo.

A *span* is one timed, attributed, nestable unit of work.  The process-wide
:data:`tracer` hands them out::

    from repro.obs import trace

    with trace("lockrange") as span:
        ...
        span.set(n=3, samples=412)
        if span.recording:
            span.event("edge-refined", phi_d=0.31)

Design constraints, in priority order:

1. **Near-zero overhead when disabled.**  With no trace buffer and no
   sinks registered, :meth:`Tracer.span` returns a shared no-op singleton:
   the whole ``with`` block costs one attribute check and allocates
   nothing, so spans stay in production code (the describing-function and
   harmonic-balance hot paths included).  Hot-path attribute/event calls
   are guarded by ``span.recording`` so their keyword dicts are never
   built either.
2. **One timing code path.**  :class:`repro.perf.timers.PhaseTimer` (the
   ``--profile`` aggregator) is a *sink* over the same spans — see
   :meth:`Tracer.add_sink` — so phase timing and tracing can never
   disagree about what was measured.
3. **Post-hoc diagnosability.**  With tracing on, every finished span is
   buffered as a JSON-safe record (parent id, depth, start offset,
   duration, attributes, events) and :meth:`Tracer.write` emits them as a
   JSON-lines file: one header line, then one line per span in completion
   order.  ``python -m repro obs <file>`` renders the tree.

Nesting is tracked with :mod:`contextvars`, so spans are re-entrant and
remain correct across threads and asyncio tasks.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import pathlib
import time
import uuid

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "ACCEPTED_TRACE_SCHEMAS",
    "SPAN_RECORD_FIELDS",
    "TRACE_HEADER_FIELDS",
    "Clock",
    "Span",
    "Tracer",
    "tracer",
    "trace",
    "current_span",
    "current_trace_id",
    "new_trace_id",
    "load_trace",
]

#: Bump when the trace-file record layout changes.  v1.1 is a strictly
#: additive revision over v1: span records may carry ``trace_id`` /
#: ``parent_span_id`` / ``process`` (the cross-process stitching fields);
#: every v1 consumer that ignores unknown-to-it optional fields still
#: parses a v1.1 trace, and the validators accept both versions.
TRACE_SCHEMA_VERSION = "1.1"

#: The exact field names of one span record (``Span.to_record``) and of
#: the trace-file header, in emission order.  ``attrs``/``events`` are
#: optional on a record, as are the v1.1 stitching fields ``trace_id``
#: (request-scoped correlation id), ``parent_span_id`` (remote parent at a
#: process boundary) and ``process`` (which process emitted the span);
#: everything else is always present.  These names are part of the
#: on-disk contract — every trace consumer (the renderer, the validators,
#: external tooling) keys on them — so they are locked by a golden
#: regression test (``tests/regress/test_schema_locks.py``): renaming one
#: requires touching this constant, which makes the rename a reviewed
#: schema event instead of a silent consumer break.
SPAN_RECORD_FIELDS = (
    "span_id",
    "parent_id",
    "name",
    "kind",
    "depth",
    "t_start_s",
    "dur_s",
    "trace_id",
    "parent_span_id",
    "process",
    "attrs",
    "events",
)
TRACE_HEADER_FIELDS = ("trace", "schema", "epoch_unix_s", "spans", "dropped")

#: Schema versions ``validate_trace`` accepts (v1 files remain readable).
ACCEPTED_TRACE_SCHEMAS = (1, "1.1")

#: Buffered-span bound: a runaway sweep cannot exhaust memory; overflow is
#: counted and reported in the trace header instead of silently dropped.
_MAX_BUFFERED_SPANS = 200_000

_now = time.perf_counter


def new_trace_id() -> str:
    """Mint a fresh 16-hex-char trace id (one per external request)."""
    return uuid.uuid4().hex[:16]


class Clock:
    """Monotonic stopwatch — the one wall-clock primitive under spans.

    :class:`repro.perf.timers.Stopwatch` is a re-export of this class, so
    every elapsed-seconds measurement in the repo shares a single clock
    implementation.
    """

    __slots__ = ("_start",)

    def __init__(self) -> None:
        self._start = _now()

    def restart(self) -> None:
        self._start = _now()

    @property
    def elapsed(self) -> float:
        """Seconds since construction (or the last :meth:`restart`)."""
        return _now() - self._start


def _json_safe(value):
    """Coerce an attribute/event value to something ``json.dumps`` accepts."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # NaN/Inf are not valid JSON; keep the information as a string.
        return value if value == value and abs(value) != float("inf") else repr(value)
    try:  # numpy scalars expose item(); recurse for the float case above
        return _json_safe(value.item())
    except AttributeError:
        return str(value)


class _NoopSpan:
    """Shared do-nothing span: the disabled-tracer fast path.

    Stateless, hence safely re-entrant; every disabled ``with trace(...)``
    block enters and exits this one module-level instance.
    """

    __slots__ = ()

    #: Hot paths guard expensive attribute/event construction with this.
    recording = False

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **attrs) -> None:
        pass

    def set_attribute(self, key, value) -> None:
        pass

    def event(self, name, /, **fields) -> None:
        pass

    @property
    def elapsed(self) -> float:
        return 0.0


NOOP_SPAN = _NoopSpan()


class Span:
    """One live span (also its own context manager).

    Only ever constructed by :meth:`Tracer.span` while the tracer is
    active; user code receives either this or :data:`NOOP_SPAN` and treats
    both uniformly.
    """

    __slots__ = (
        "name",
        "kind",
        "span_id",
        "parent_id",
        "depth",
        "trace_id",
        "parent_span_id",
        "attrs",
        "events",
        "dur_s",
        "_tracer",
        "_t0",
        "_start_rel",
        "_token",
    )

    def __init__(self, owner: "Tracer", name: str, kind: str, attrs: dict | None):
        self._tracer = owner
        self.name = str(name)
        self.kind = kind
        self.attrs = dict(attrs) if attrs else {}
        self.events: list[dict] = []
        self.span_id = 0
        self.parent_id: int | None = None
        self.depth = 0
        self.trace_id: str | None = None
        self.parent_span_id: int | None = None
        self.dur_s = 0.0
        self._t0 = 0.0
        self._start_rel = 0.0
        self._token = None

    @property
    def recording(self) -> bool:
        """True when events/attributes will reach a trace file."""
        return self._tracer._trace_on

    @property
    def elapsed(self) -> float:
        return _now() - self._t0

    def set(self, **attrs) -> None:
        """Attach attributes (``span.set(iterations=5, residual=1e-13)``)."""
        self.attrs.update(attrs)

    def set_attribute(self, key, value) -> None:
        self.attrs[key] = value

    def event(self, name: str, /, **fields) -> None:
        """Record a point-in-time event inside this span.

        Guard hot loops with ``if span.recording:`` so the ``fields`` dict
        is only built when a trace is actually being collected.
        """
        record = {"name": str(name), "t_s": round(_now() - self._tracer._epoch, 6)}
        for key, value in fields.items():
            record[key] = _json_safe(value)
        self.events.append(record)

    def __enter__(self) -> "Span":
        owner = self._tracer
        parent = owner._current.get()
        if parent is not None:
            self.parent_id = parent.span_id
            self.depth = parent.depth + 1
            self.trace_id = parent.trace_id
            if self.trace_id is None:
                # An enclosing span opened before the ambient context (e.g.
                # the CLI root around a serve session) has no trace_id; the
                # request-scoped ambient id still applies to this subtree.
                context = owner._ambient.get()
                if context is not None:
                    self.trace_id = context[0]
        else:
            context = owner._ambient.get()
            if context is not None:
                self.trace_id = context[0]
                self.parent_span_id = context[1]
        owner._count += 1
        self.span_id = owner._count
        self._token = owner._current.set(self)
        self._t0 = _now()
        self._start_rel = self._t0 - owner._epoch
        return self

    def __exit__(self, exc_type, exc, tb):
        self.dur_s = _now() - self._t0
        self._tracer._current.reset(self._token)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self)
        return False

    def to_record(self) -> dict:
        """The JSON-safe trace-file form of this (finished) span."""
        record = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "depth": self.depth,
            "t_start_s": round(self._start_rel, 6),
            "dur_s": round(self.dur_s, 6),
        }
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
        if self.parent_span_id is not None:
            record["parent_span_id"] = self.parent_span_id
        process = self._tracer._process
        if process is not None:
            record["process"] = process
        if self.attrs:
            record["attrs"] = {k: _json_safe(v) for k, v in self.attrs.items()}
        if self.events:
            record["events"] = self.events
        return record


class Tracer:
    """Process-wide span factory, buffer, and sink dispatcher.

    Two independent reasons to be *active*:

    * ``enable()``/``disable()`` — collect span records for a trace file;
    * registered sinks — e.g. the ``--profile`` :class:`PhaseTimer`, which
      aggregates span durations without buffering records.

    When neither applies, :meth:`span` returns :data:`NOOP_SPAN`.
    """

    def __init__(self) -> None:
        self._trace_on = False
        self._sinks: list = []
        self._records: list[dict] = []
        self._dropped = 0
        self._count = 0
        self._epoch = _now()
        self._epoch_unix = time.time()
        self._process: str | None = None
        self._current: contextvars.ContextVar[Span | None] = contextvars.ContextVar(
            "repro_current_span", default=None
        )
        self._ambient: contextvars.ContextVar[tuple[str, int | None] | None] = (
            contextvars.ContextVar("repro_trace_context", default=None)
        )

    # -- state ----------------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether spans are being materialised at all."""
        return self._trace_on or bool(self._sinks)

    @property
    def recording(self) -> bool:
        """Whether span records are being buffered for a trace file."""
        return self._trace_on

    def enable(self) -> None:
        """Start buffering span records; resets any prior buffer."""
        self._records = []
        self._dropped = 0
        self._count = 0
        self._epoch = _now()
        self._epoch_unix = time.time()
        self._trace_on = True

    def disable(self) -> None:
        """Stop buffering (the collected records remain readable)."""
        self._trace_on = False

    def clear(self) -> None:
        """Stop buffering and drop any collected records."""
        self._trace_on = False
        self._records = []
        self._dropped = 0
        self._count = 0

    def set_process(self, name: str | None) -> None:
        """Stamp every subsequently emitted record with a ``process`` name.

        The serve layer sets ``"serve"`` in the parent and ``"worker"`` in
        forked workers so a stitched trace shows which side of the process
        boundary each span ran on.  ``None`` (the default) omits the field,
        keeping single-process CLI traces byte-identical to v1 output.
        """
        self._process = None if name is None else str(name)

    @contextlib.contextmanager
    def ambient(self, trace_id: str, remote_parent_id: int | None = None):
        """Run a block under an inherited trace context.

        Root spans opened inside the block adopt ``trace_id``, and — when
        ``remote_parent_id`` is given — record it as ``parent_span_id``:
        the id of the span *in another process* that logically contains
        them.  Child spans inherit ``trace_id`` from their parent span as
        usual.  This is the receiving half of trace-context propagation:
        the HTTP ingress mints an id with :func:`new_trace_id` and enters
        this context; the worker enters it with the (trace_id, span_id)
        pair carried by the job envelope.
        """
        token = self._ambient.set((str(trace_id), remote_parent_id))
        try:
            yield
        finally:
            self._ambient.reset(token)

    def reset_context(self) -> None:
        """Forget any span / ambient context inherited by THIS context.

        A forked worker process inherits the parent's contextvars wholesale
        — including whatever span happened to be live in the service loop
        at fork time (a mid-retry restart forks under the crashed
        ``serve.attempt``).  Workers call this once at startup so their
        spans root cleanly instead of adopting a stale parent id from
        another process's id space.
        """
        self._current.set(None)
        self._ambient.set(None)

    @contextlib.contextmanager
    def detached(self):
        """Run a block with no ambient parent span.

        Spans opened inside the block become roots of their own tree,
        even when the caller sits inside a live span.  The span-budget
        regression gate uses this so its replay records a self-contained
        (and schema-valid) trace regardless of which CLI span invoked it.
        """
        token = self._current.set(None)
        try:
            yield
        finally:
            self._current.reset(token)

    def add_sink(self, sink) -> None:
        """Register an object with an ``on_span(span)`` method."""
        if sink not in self._sinks:
            self._sinks.append(sink)

    def remove_sink(self, sink) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    # -- span factory ---------------------------------------------------------

    def span(self, name: str, kind: str = "span", attrs: dict | None = None):
        """A context-managed span, or the no-op singleton when inactive."""
        if not (self._trace_on or self._sinks):
            return NOOP_SPAN
        return Span(self, name, kind, attrs)

    def _finish(self, span: Span) -> None:
        if self._trace_on:
            if len(self._records) < _MAX_BUFFERED_SPANS:
                self._records.append(span.to_record())
            else:
                self._dropped += 1
        for sink in self._sinks:
            sink.on_span(span)

    # -- export ---------------------------------------------------------------

    def records(self) -> list[dict]:
        """A copy of the buffered span records (completion order)."""
        return list(self._records)

    @property
    def epoch_unix(self) -> float:
        """Unix time corresponding to ``t_start_s == 0`` in this buffer."""
        return self._epoch_unix

    def graft(
        self,
        records: list[dict],
        *,
        parent: "Span",
        process: str = "worker",
        epoch_unix_s: float | None = None,
    ) -> int:
        """Stitch a finished span tree from another process under ``parent``.

        ``records`` is another tracer's ``records()`` output (the worker's
        whole buffer for one job).  Each record is renumbered into this
        tracer's id space, re-rooted — records whose parent is absent from
        the shipped set become children of ``parent`` (the live
        ``serve.attempt`` span) — depth-shifted accordingly, stamped with
        ``process`` and the parent's ``trace_id``, and time-shifted from
        the remote epoch onto this tracer's epoch.  The shift is clamped
        so no grafted span starts before ``parent`` does: clock skew
        between ``time.time()`` readings in the two processes can never
        produce a child-starts-before-parent trace that fails validation.

        Returns the number of records grafted.  Records beyond the buffer
        bound are counted as dropped, exactly like locally finished spans.
        """
        if not self._trace_on or not records:
            return 0
        shipped = {rec["span_id"] for rec in records}
        offset = 0.0
        if epoch_unix_s is not None:
            offset = float(epoch_unix_s) - self._epoch_unix
        min_start = min(float(rec.get("t_start_s", 0.0)) for rec in records)
        floor = parent._start_rel
        if min_start + offset < floor:
            offset = floor - min_start
        id_map: dict[int, int] = {}
        for rec in records:
            self._count += 1
            id_map[rec["span_id"]] = self._count
        grafted = 0
        for rec in records:
            out = dict(rec)
            out["span_id"] = id_map[rec["span_id"]]
            old_parent = rec.get("parent_id")
            if old_parent in id_map:
                out["parent_id"] = id_map[old_parent]
                out["depth"] = rec["depth"] + parent.depth + 1
            else:
                out["parent_id"] = parent.span_id
                out["depth"] = parent.depth + 1
                out.setdefault("parent_span_id", parent.span_id)
            out["t_start_s"] = round(float(rec.get("t_start_s", 0.0)) + offset, 6)
            if parent.trace_id is not None:
                out["trace_id"] = parent.trace_id
            out["process"] = process
            if len(self._records) < _MAX_BUFFERED_SPANS:
                self._records.append(out)
                grafted += 1
            else:
                self._dropped += 1
        return grafted

    def header(self) -> dict:
        return {
            "trace": "repro",
            "schema": TRACE_SCHEMA_VERSION,
            "epoch_unix_s": round(self._epoch_unix, 3),
            "spans": len(self._records),
            "dropped": self._dropped,
        }

    def write(self, path: str | pathlib.Path) -> pathlib.Path:
        """Emit the buffered trace as JSON lines (header first)."""
        path = pathlib.Path(path)
        if path.parent != pathlib.Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            handle.write(json.dumps(self.header(), sort_keys=True) + "\n")
            for record in self._records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return path


#: The process-wide tracer every span in the repo goes through.
tracer = Tracer()


def trace(name: str, attrs: dict | None = None):
    """Open a span on the process-wide tracer: ``with trace("x") as s:``.

    ``attrs`` is an optional dict rather than ``**kwargs`` so the disabled
    path stays allocation-free; attach attributes through the yielded span
    when tracing matters (it no-ops when disabled).
    """
    return tracer.span(name, attrs=attrs)


def current_span():
    """The innermost live span, or the no-op singleton outside any."""
    span = tracer._current.get()
    return span if span is not None else NOOP_SPAN


def current_trace_id() -> str | None:
    """The trace id of the innermost live span or ambient context, if any.

    Lets code far from the HTTP layer (e.g. job admission) correlate its
    artifacts with the request that caused them without plumbing the id
    through every call signature.
    """
    span = tracer._current.get()
    if span is not None and span.trace_id is not None:
        return span.trace_id
    context = tracer._ambient.get()
    return context[0] if context is not None else None


def load_trace(path: str | pathlib.Path) -> tuple[dict, list[dict]]:
    """Parse a JSON-lines trace file back into ``(header, spans)``.

    Raises ``ValueError`` on a file that is not a repro trace (wrong header
    magic) — schema *version* mismatches are left to the caller, which may
    still be able to render newer/older records.
    """
    path = pathlib.Path(path)
    lines = [line for line in path.read_text().splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"{path} is empty — not a trace file")
    header = json.loads(lines[0])
    if not isinstance(header, dict) or header.get("trace") != "repro":
        raise ValueError(f"{path} does not start with a repro trace header")
    spans = [json.loads(line) for line in lines[1:]]
    return header, spans
