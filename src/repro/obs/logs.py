"""Structured logging: one event name plus machine-readable fields.

Replaces the scattered ``warnings.warn`` / ``logging.warning`` / print
paths with a single convention::

    _log = get_logger(__name__)
    _log.warning("cache.quarantined", file="ab12...npz", fault="cache-corruption")

Two output modes:

* **text** (default) — events render through the stdlib :mod:`logging`
  tree (``event key=value ...``), so existing handler/level configuration
  keeps working and library users see nothing new;
* **json** (``--log-json`` / :func:`enable_json_logs`) — each event is one
  JSON object on stderr (``ts``, ``level``, ``logger``, ``event``, plus
  the caller's fields), ready for ``jq`` or a log shipper.

Every emitted record also bumps the ``log.records{level=...}`` counter in
the metrics registry, so ``OBS_REPORT.json`` shows at a glance whether a
run warned at all.
"""

from __future__ import annotations

import json
import logging as _stdlog
import sys
import time

from repro.obs.metrics import metrics
from repro.obs.tracing import _json_safe

__all__ = [
    "StructuredLogger",
    "get_logger",
    "enable_json_logs",
    "disable_json_logs",
    "json_logs_enabled",
]

_LEVELS = {
    "debug": _stdlog.DEBUG,
    "info": _stdlog.INFO,
    "warning": _stdlog.WARNING,
    "error": _stdlog.ERROR,
}

#: Module state for the JSON mode (stream kept swappable for tests).
_state: dict = {"json": False, "stream": None}


def enable_json_logs(stream=None) -> None:
    """Switch structured logs to JSON-lines mode (stderr by default)."""
    _state["json"] = True
    _state["stream"] = stream


def disable_json_logs() -> None:
    _state["json"] = False
    _state["stream"] = None


def json_logs_enabled() -> bool:
    return bool(_state["json"])


class StructuredLogger:
    """A named logger emitting ``(event, **fields)`` records."""

    __slots__ = ("name", "_std")

    def __init__(self, name: str):
        self.name = name
        self._std = _stdlog.getLogger(name)

    def _emit(self, level: str, event: str, fields: dict) -> None:
        metrics.inc("log.records", level=level)
        if _state["json"]:
            record = {
                "ts": round(time.time(), 3),
                "level": level,
                "logger": self.name,
                "event": event,
            }
            for key, value in fields.items():
                record.setdefault(key, _json_safe(value))
            stream = _state["stream"] or sys.stderr
            print(json.dumps(record, sort_keys=True), file=stream, flush=True)
            return
        std_level = _LEVELS[level]
        if not self._std.isEnabledFor(std_level):
            return
        if fields:
            rendered = " ".join(f"{k}={_json_safe(v)}" for k, v in fields.items())
            self._std.log(std_level, "%s %s", event, rendered)
        else:
            self._std.log(std_level, "%s", event)

    def debug(self, event: str, /, **fields) -> None:
        self._emit("debug", event, fields)

    def info(self, event: str, /, **fields) -> None:
        self._emit("info", event, fields)

    def warning(self, event: str, /, **fields) -> None:
        self._emit("warning", event, fields)

    def error(self, event: str, /, **fields) -> None:
        self._emit("error", event, fields)


def get_logger(name: str) -> StructuredLogger:
    """The structured logger for a module (cheap; no registry needed)."""
    return StructuredLogger(name)
