"""Observability subsystem: spans, metrics, structured logs, convergence events.

Production-scale numerical pipelines need the same visibility a serving
stack has: when a lock-range sweep is slow or an escalation ladder burns
its budget, the answer should come from a trace file, not a debugger.
This package provides the four pieces (DESIGN.md §9):

* :mod:`repro.obs.tracing` — hierarchical **spans** via :mod:`contextvars`
  (near-zero overhead disabled; JSON-lines trace files; the single timing
  primitive the ``--profile`` phase timers are folded onto);
* :mod:`repro.obs.metrics` — the process-wide **metrics registry**
  (counters / gauges / histograms: cache hits, DF evaluations by method,
  HB Newton iterations, rung transitions, faults by kind) with one
  ``snapshot()`` → ``OBS_REPORT.json`` exporter;
* :mod:`repro.obs.convergence` — the per-iteration **event stream** the
  solvers narrate residuals and damping decisions into;
* :mod:`repro.obs.logs` — **structured logging** (event + fields; text or
  ``--log-json`` JSON-lines mode).

The package imports nothing from the rest of :mod:`repro`, so every layer
— :mod:`repro.perf` included — can depend on it without cycles.
"""

from repro.obs.convergence import convergence_event, events_active
from repro.obs.logs import (
    StructuredLogger,
    disable_json_logs,
    enable_json_logs,
    get_logger,
    json_logs_enabled,
)
from repro.obs.metrics import (
    MetricsRegistry,
    metrics,
    parse_prometheus,
    to_prometheus,
    validate_prometheus,
)
from repro.obs.report import (
    DEFAULT_OBS_REPORT_PATH,
    OBS_SCHEMA_VERSION,
    analyze_serve_trace,
    phase_totals,
    render_totals,
    render_trace,
    summarise_trace,
    validate_obs_report,
    validate_trace,
    write_obs_report,
)
from repro.obs.tracing import (
    ACCEPTED_TRACE_SCHEMAS,
    TRACE_SCHEMA_VERSION,
    Clock,
    Span,
    Tracer,
    current_span,
    current_trace_id,
    load_trace,
    new_trace_id,
    trace,
    tracer,
)

__all__ = [
    "Clock",
    "Span",
    "Tracer",
    "tracer",
    "trace",
    "current_span",
    "current_trace_id",
    "new_trace_id",
    "load_trace",
    "TRACE_SCHEMA_VERSION",
    "ACCEPTED_TRACE_SCHEMAS",
    "MetricsRegistry",
    "metrics",
    "to_prometheus",
    "parse_prometheus",
    "validate_prometheus",
    "convergence_event",
    "events_active",
    "StructuredLogger",
    "get_logger",
    "enable_json_logs",
    "disable_json_logs",
    "json_logs_enabled",
    "OBS_SCHEMA_VERSION",
    "DEFAULT_OBS_REPORT_PATH",
    "phase_totals",
    "render_trace",
    "render_totals",
    "summarise_trace",
    "analyze_serve_trace",
    "write_obs_report",
    "validate_trace",
    "validate_obs_report",
]
