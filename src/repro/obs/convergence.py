"""Convergence event stream: per-iteration solver telemetry.

DF/HB solvers live or die by their iteration-level behaviour — a Newton
that limit-cycles, a damping cap that fires every step, an escalation
ladder that silently burns its budget.  This module gives the solvers one
verb to narrate that behaviour::

    if events_active():
        convergence_event("hb-newton", iteration=i, residual=r, step=s)

Events attach to the innermost live span and land in the trace file, so a
diverged solve can be diagnosed post-hoc from the recorded residual
sequence — no debugger, no re-run.

``events_active()`` is the hot-loop guard: it is a single attribute read,
and skipping the call when no trace is collected means the field dict and
any extra norms feeding it are never computed.
"""

from __future__ import annotations

from repro.obs.tracing import NOOP_SPAN, tracer

__all__ = ["convergence_event", "events_active"]


def events_active() -> bool:
    """True when convergence events will actually reach a trace file.

    Guard per-iteration instrumentation with this so disabled runs pay
    nothing — not even the cost of computing the residual norm that would
    have been reported.
    """
    return tracer._trace_on


def convergence_event(name: str, /, **fields) -> None:
    """Record one solver-iteration event on the current span.

    A no-op outside any recording span; ``fields`` should be scalars
    (iteration number, residual norm, step norm, damping factor, rung
    name) — they are JSON-sanitised on the way into the trace.
    """
    if not tracer._trace_on:
        return
    span = tracer._current.get()
    if span is None:
        span = NOOP_SPAN
    span.event(name, **fields)
