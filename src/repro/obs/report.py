"""Trace rendering, per-phase totals, and the ``OBS_REPORT.json`` emitter.

The CLI's ``repro obs <trace>`` command is a thin wrapper over this
module: :func:`render_trace` draws the span tree with durations and the
load-bearing attributes (iteration counts, residual norms, cache
verdicts), :func:`phase_totals` aggregates wall time per span name, and
:func:`render_totals` prints the result as the familiar ``--profile``
style table.

:func:`write_obs_report` is the single metrics exporter: it snapshots the
process-wide registry into ``OBS_REPORT.json`` together with run context
(argv, exit code, trace-file path).  :func:`validate_trace` and
:func:`validate_obs_report` are the schema checks CI's observability smoke
job runs on both artifacts (also exposed via
``scripts/check_obs_schemas.py``).
"""

from __future__ import annotations

import json
import pathlib

from repro.obs.metrics import metrics
from repro.obs.tracing import (
    ACCEPTED_TRACE_SCHEMAS,
    SPAN_RECORD_FIELDS,
    TRACE_HEADER_FIELDS,
    load_trace,
)

__all__ = [
    "OBS_SCHEMA_VERSION",
    "DEFAULT_OBS_REPORT_PATH",
    "phase_totals",
    "render_trace",
    "render_totals",
    "summarise_trace",
    "analyze_serve_trace",
    "write_obs_report",
    "validate_trace",
    "validate_obs_report",
]

#: Bump when the OBS_REPORT.json layout changes.
OBS_SCHEMA_VERSION = 1

DEFAULT_OBS_REPORT_PATH = pathlib.Path("OBS_REPORT.json")

#: Attributes worth showing inline in the rendered tree, in print order.
_HIGHLIGHT_ATTRS = (
    "iterations",
    "residual_norm",
    "rung",
    "outcome",
    "method",
    "n",
    "v_i",
    "error",
)


def _format_attrs(attrs: dict) -> str:
    parts = []
    for key in _HIGHLIGHT_ATTRS:
        if key in attrs:
            value = attrs[key]
            if isinstance(value, float):
                parts.append(f"{key}={value:.3g}")
            else:
                parts.append(f"{key}={value}")
    extra = len([k for k in attrs if k not in _HIGHLIGHT_ATTRS])
    if extra:
        parts.append(f"+{extra} attr")
    return f"  [{', '.join(parts)}]" if parts else ""


def _format_duration(dur_s: float) -> str:
    if dur_s >= 1.0:
        return f"{dur_s:.2f} s"
    if dur_s >= 1e-3:
        return f"{dur_s * 1e3:.1f} ms"
    return f"{dur_s * 1e6:.0f} us"


def render_trace(spans: list[dict], *, min_dur_s: float = 0.0) -> str:
    """ASCII tree of a trace's spans (children indented under parents).

    Spans are keyed by ``span_id``/``parent_id``; siblings sort by start
    offset.  ``min_dur_s`` hides sub-threshold leaves (their time is still
    inside the parents).  Events are summarised as a count per span.
    """
    by_parent: dict = {}
    for span in spans:
        by_parent.setdefault(span.get("parent_id"), []).append(span)
    for siblings in by_parent.values():
        siblings.sort(key=lambda s: s.get("t_start_s", 0.0))

    lines: list[str] = []

    def walk(parent_id, indent: str) -> None:
        for span in by_parent.get(parent_id, ()):
            if span.get("dur_s", 0.0) < min_dur_s and span["span_id"] not in by_parent:
                continue
            marker = "- " if span.get("kind") == "phase" else "* "
            events = span.get("events") or ()
            tail = f"  ({len(events)} events)" if events else ""
            lines.append(
                f"{indent}{marker}{span['name']}  "
                f"{_format_duration(span.get('dur_s', 0.0))}"
                f"{_format_attrs(span.get('attrs') or {})}{tail}"
            )
            walk(span["span_id"], indent + "  ")

    walk(None, "")
    if not lines:
        return "(no spans recorded)"
    return "\n".join(lines)


def phase_totals(spans: list[dict]) -> dict[str, dict[str, float]]:
    """Aggregate ``{name: {"total_s", "calls"}}`` over every span.

    Matches the accumulation semantics of
    :class:`repro.perf.timers.PhaseTimer` — nested same-name spans count
    both times — so a trace and a ``BENCH_*.json`` of the same run agree.
    """
    totals: dict[str, dict[str, float]] = {}
    for span in spans:
        entry = totals.setdefault(span["name"], {"total_s": 0.0, "calls": 0})
        entry["total_s"] += float(span.get("dur_s", 0.0))
        entry["calls"] = int(entry["calls"]) + 1
    return totals

def render_totals(totals: dict[str, dict[str, float]]) -> str:
    """Per-phase totals table, widest consumer first."""
    if not totals:
        return "(no spans recorded)"
    order = sorted(totals.items(), key=lambda kv: -kv[1]["total_s"])
    width = max(len(name) for name in totals)
    lines = [f"{'span':<{width}}  {'total':>10}  {'calls':>6}"]
    for name, entry in order:
        lines.append(
            f"{name:<{width}}  {_format_duration(entry['total_s']):>10}  "
            f"{int(entry['calls']):>6}"
        )
    return "\n".join(lines)


def summarise_trace(path: str | pathlib.Path) -> str:
    """The full ``repro obs`` rendering: header, tree, per-phase totals."""
    header, spans = load_trace(path)
    lines = [
        f"trace {path}: {header.get('spans', len(spans))} spans"
        + (f", {header['dropped']} dropped" if header.get("dropped") else ""),
        "",
        render_trace(spans),
        "",
        "per-span totals:",
        render_totals(phase_totals(spans)),
    ]
    return "\n".join(lines)


def analyze_serve_trace(path: str | pathlib.Path, *, top: int = 5) -> str:
    """Per-job breakdown of a stitched serve trace (``repro obs --serve``).

    For every ``serve.job`` span: the job's trace id, status, queue wait
    versus in-worker solve time (sum of ``serve.attempt`` child
    durations), and the stitched subtree — parent spans and grafted
    worker spans in one render.  Ends with the ``top`` slowest ladder
    rungs across all jobs, the usual first suspects when a tongue sweep
    is slow.
    """
    _, spans = load_trace(path)
    by_id = {span["span_id"]: span for span in spans}
    children: dict = {}
    for span in spans:
        children.setdefault(span.get("parent_id"), []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: s.get("t_start_s", 0.0))

    def subtree(root: dict) -> list[dict]:
        # Copy the root with its parent detached so render_trace treats it
        # as the tree root even when it sits under e.g. a CLI span.
        out = [{**root, "parent_id": None}]
        stack = [root["span_id"]]
        while stack:
            for child in children.get(stack.pop(), ()):
                out.append(child)
                stack.append(child["span_id"])
        return out

    jobs = [s for s in spans if s.get("name") == "serve.job"]
    jobs.sort(key=lambda s: s.get("t_start_s", 0.0))
    lines: list[str] = [f"serve trace {path}: {len(jobs)} jobs, {len(spans)} spans"]
    for job in jobs:
        attrs = job.get("attrs") or {}
        attempts = [
            c for c in children.get(job["span_id"], ()) if c["name"] == "serve.attempt"
        ]
        solve_s = sum(float(a.get("dur_s", 0.0)) for a in attempts)
        queue_wait = attrs.get("queue_wait_s")
        if queue_wait is None:
            queue_wait = max(0.0, float(job.get("dur_s", 0.0)) - solve_s)
        worker_spans = sum(
            1 for s in subtree(job) if s.get("process") == "worker"
        )
        lines += [
            "",
            f"job {attrs.get('job_id', '?')}  kind={attrs.get('kind', '?')}"
            f"  tenant={attrs.get('tenant', '?')}"
            f"  status={attrs.get('status', '?')}"
            f"  trace_id={job.get('trace_id', '-')}",
            f"  total {_format_duration(float(job.get('dur_s', 0.0)))}"
            f" = queue-wait {_format_duration(float(queue_wait))}"
            f" + solve {_format_duration(solve_s)}"
            f"  ({len(attempts)} attempts, {worker_spans} worker spans)",
            render_trace(subtree(job)),
        ]

    rungs = sorted(
        (s for s in spans if s.get("name") == "rung"),
        key=lambda s: -float(s.get("dur_s", 0.0)),
    )[: max(0, top)]
    if rungs:
        lines += ["", f"top {len(rungs)} slowest rungs:"]
        for rung in rungs:
            attrs = rung.get("attrs") or {}
            owner = by_id.get(rung.get("parent_id"))
            lines.append(
                f"  {_format_duration(float(rung.get('dur_s', 0.0))):>9}"
                f"  stage={attrs.get('stage', '?')} rung={attrs.get('rung', '?')}"
                f" outcome={attrs.get('outcome', '?')}"
                f"  trace_id={rung.get('trace_id', '-')}"
                + (f"  under {owner['name']}" if owner else "")
            )
    return "\n".join(lines)


def write_obs_report(
    path: str | pathlib.Path = DEFAULT_OBS_REPORT_PATH,
    *,
    argv: list[str] | None = None,
    exit_code: int | None = None,
    trace_file: str | None = None,
) -> pathlib.Path:
    """Snapshot the metrics registry into ``OBS_REPORT.json``."""
    payload = {
        "report": "OBS",
        "schema": OBS_SCHEMA_VERSION,
        "metrics": metrics.snapshot(),
    }
    if argv is not None:
        payload["argv"] = list(argv)
    if exit_code is not None:
        payload["exit_code"] = int(exit_code)
    if trace_file is not None:
        payload["trace_file"] = str(trace_file)
    path = pathlib.Path(path)
    if path.parent != pathlib.Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


# -- schema validation (CI smoke job) -----------------------------------------

#: Expected type per mandatory span-record field.  Keyed off the locked
#: :data:`~repro.obs.tracing.SPAN_RECORD_FIELDS` contract; ``parent_id``
#: is absent here because it is legitimately ``None`` on root spans, and
#: ``attrs``/``events`` because they are optional.
_SPAN_FIELD_TYPES: dict[str, type | tuple[type, ...]] = {
    "span_id": int,
    "name": str,
    "kind": str,
    "depth": int,
    "t_start_s": (int, float),
    "dur_s": (int, float),
}
assert set(_SPAN_FIELD_TYPES) <= set(SPAN_RECORD_FIELDS)

#: Type per optional v1.1 stitching field, checked only when present so
#: v1 traces (which never emit them) validate unchanged.
_OPTIONAL_SPAN_FIELD_TYPES: dict[str, type | tuple[type, ...]] = {
    "trace_id": str,
    "parent_span_id": int,
    "process": str,
}
assert set(_OPTIONAL_SPAN_FIELD_TYPES) <= set(SPAN_RECORD_FIELDS)


def validate_trace(path: str | pathlib.Path) -> list[str]:
    """Structural checks on a trace file; returns problems (empty = valid).

    Checks the header magic/schema, per-record required keys and types,
    and referential integrity: every ``parent_id`` must name an earlier-
    started span and child depth must exceed its parent's — i.e. the spans
    nest correctly.
    """
    problems: list[str] = []
    try:
        header, spans = load_trace(path)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        return [f"unreadable trace: {exc}"]
    if header.get("schema") not in ACCEPTED_TRACE_SCHEMAS:
        problems.append(
            f"header schema {header.get('schema')!r} not in "
            f"{ACCEPTED_TRACE_SCHEMAS}"
        )
    if header.get("spans") != len(spans):
        problems.append(
            f"header claims {header.get('spans')} spans, file holds {len(spans)}"
        )
    for key in TRACE_HEADER_FIELDS:
        if key not in header:
            problems.append(f"header missing {key!r}")
    seen: dict[int, dict] = {}
    for i, span in enumerate(spans):
        where = f"span line {i + 2}"
        for key, types in _SPAN_FIELD_TYPES.items():
            if not isinstance(span.get(key), types):
                problems.append(f"{where}: bad or missing {key!r}")
        for key, types in _OPTIONAL_SPAN_FIELD_TYPES.items():
            if key in span and not isinstance(span[key], types):
                problems.append(f"{where}: bad optional {key!r}")
        unknown = set(span) - set(SPAN_RECORD_FIELDS)
        if unknown:
            problems.append(f"{where}: unknown fields {sorted(unknown)}")
        span_id = span.get("span_id")
        if isinstance(span_id, int):
            if span_id in seen:
                problems.append(f"{where}: duplicate span_id {span_id}")
            seen[span_id] = span
    for span in spans:
        parent_id = span.get("parent_id")
        if parent_id is None:
            if span.get("depth") != 0:
                problems.append(
                    f"span {span.get('span_id')}: root span with depth "
                    f"{span.get('depth')}"
                )
            continue
        parent = seen.get(parent_id)
        if parent is None:
            problems.append(
                f"span {span.get('span_id')}: unknown parent_id {parent_id}"
            )
            continue
        if span.get("depth") != parent.get("depth", 0) + 1:
            problems.append(
                f"span {span.get('span_id')}: depth {span.get('depth')} does not "
                f"nest under parent depth {parent.get('depth')}"
            )
        if span.get("t_start_s", 0.0) + 1e-9 < parent.get("t_start_s", 0.0):
            problems.append(
                f"span {span.get('span_id')}: starts before its parent"
            )
    return problems


def validate_obs_report(path: str | pathlib.Path) -> list[str]:
    """Structural checks on an ``OBS_REPORT.json``; empty list = valid."""
    problems: list[str] = []
    try:
        payload = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable report: {exc}"]
    if payload.get("report") != "OBS":
        problems.append(f"report field is {payload.get('report')!r}, expected 'OBS'")
    if payload.get("schema") != OBS_SCHEMA_VERSION:
        problems.append(
            f"schema {payload.get('schema')!r} != {OBS_SCHEMA_VERSION}"
        )
    snapshot = payload.get("metrics")
    if not isinstance(snapshot, dict):
        return problems + ["metrics is not an object"]
    for family in ("counters", "gauges", "histograms"):
        table = snapshot.get(family)
        if not isinstance(table, dict):
            problems.append(f"metrics.{family} is not an object")
            continue
        for key, value in table.items():
            if family == "histograms":
                if not isinstance(value, dict) or not {
                    "count",
                    "sum",
                    "min",
                    "max",
                    "mean",
                } <= set(value):
                    problems.append(f"histogram {key!r} missing summary fields")
            elif not isinstance(value, (int, float)):
                problems.append(f"{family[:-1]} {key!r} is not numeric")
    return problems
