"""Process-wide metrics registry: counters, gauges, histograms.

The registry is the numerical companion of the span tracer: spans answer
*where the time went*, metrics answer *how much work of each kind
happened* — surface-cache hits/misses/corruptions, describing-function
evaluations by method, harmonic-balance Newton iterations and residual
norms per solve, escalation-rung transitions, faults by kind.

Metric updates are plain dict operations, cheap enough to stay enabled
unconditionally (there is no on/off switch to misconfigure).  Labels are
folded into the metric key at update time —
``metrics.inc("df.evaluations", method="fft")`` is stored under
``"df.evaluations{method=fft}"`` — which keeps the snapshot a flat,
deterministic, JSON-ready mapping.

``snapshot()`` is the single export surface; the CLI's ``--trace`` mode
feeds it into ``OBS_REPORT.json`` (see :func:`repro.obs.report.write_obs_report`)
and the verification harness diffs snapshots around each scenario to
attach per-scenario work counts to ``VERIFY_REPORT.json``.
"""

from __future__ import annotations

import math
import re

__all__ = [
    "MetricsRegistry",
    "metrics",
    "to_prometheus",
    "parse_prometheus",
    "validate_prometheus",
]


def _flatten(name: str, labels: dict) -> str:
    """Fold labels into the metric key: ``name{k1=v1,k2=v2}`` (sorted)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def _as_number(value: float):
    """Ints stay ints in JSON output; integral floats become ints."""
    if isinstance(value, bool):  # bool is an int subclass; refuse silently
        return int(value)
    if isinstance(value, float) and value.is_integer() and abs(value) < 2**53:
        return int(value)
    return value


class MetricsRegistry:
    """Counters, gauges, and summary histograms under flat string keys.

    * **counter** — monotonically increasing total (:meth:`inc`);
    * **gauge** — last-written value (:meth:`gauge`);
    * **histogram** — running ``count/sum/min/max`` summary of observed
      values (:meth:`observe`); the snapshot adds the derived ``mean``.

    All three families share the label convention of :func:`_flatten`.
    """

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, dict[str, float]] = {}

    # -- updates --------------------------------------------------------------

    def inc(self, name: str, value: float = 1, **labels) -> None:
        """Add ``value`` (default 1) to a counter."""
        key = _flatten(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set a gauge to ``value`` (overwrites)."""
        self._gauges[_flatten(name, labels)] = float(value)

    def observe(self, name: str, value: float, **labels) -> None:
        """Feed one observation into a summary histogram."""
        value = float(value)
        key = _flatten(name, labels)
        entry = self._histograms.get(key)
        if entry is None:
            entry = {"count": 0, "sum": 0.0, "min": math.inf, "max": -math.inf}
            self._histograms[key] = entry
        entry["count"] += 1
        entry["sum"] += value
        if value < entry["min"]:
            entry["min"] = value
        if value > entry["max"]:
            entry["max"] = value

    # -- reads ----------------------------------------------------------------

    def counter(self, name: str, **labels) -> float:
        """Current value of a counter (0 when never incremented)."""
        return self._counters.get(_flatten(name, labels), 0)

    def counter_total(self, prefix: str) -> float:
        """Sum of every counter whose key starts with ``prefix``.

        Useful for labelled families: ``counter_total("df.evaluations")``
        sums the fft and dense variants.
        """
        return sum(v for k, v in self._counters.items() if k.startswith(prefix))

    def snapshot(self) -> dict:
        """Deterministic JSON-ready view of everything collected so far.

        Keys are sorted, integral values are emitted as ints, histogram
        summaries carry the derived mean — two runs doing identical work
        produce byte-identical snapshots.
        """
        histograms = {}
        for key in sorted(self._histograms):
            entry = self._histograms[key]
            histograms[key] = {
                "count": int(entry["count"]),
                "sum": _as_number(entry["sum"]),
                "min": _as_number(entry["min"]),
                "max": _as_number(entry["max"]),
                "mean": _as_number(entry["sum"] / entry["count"]),
            }
        return {
            "counters": {
                key: _as_number(self._counters[key]) for key in sorted(self._counters)
            },
            "gauges": {
                key: _as_number(self._gauges[key]) for key in sorted(self._gauges)
            },
            "histograms": histograms,
        }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The serve layer calls this with each worker job's metrics delta so
        ``/metricz`` aggregates solver-side counters (``hb.*``, ``df.*``,
        ``cache.*``, ``ladder.*``) across the whole fleet.  Counters add,
        histogram summaries merge exactly (count/sum add, min/max extend);
        gauges are skipped — a point-in-time reading from a dead moment in
        another process has no meaningful merge.
        """
        for key, value in (snapshot.get("counters") or {}).items():
            self._counters[key] = self._counters.get(key, 0) + value
        for key, summary in (snapshot.get("histograms") or {}).items():
            entry = self._histograms.get(key)
            if entry is None:
                entry = {"count": 0, "sum": 0.0, "min": math.inf, "max": -math.inf}
                self._histograms[key] = entry
            entry["count"] += int(summary.get("count", 0))
            entry["sum"] += float(summary.get("sum", 0.0))
            entry["min"] = min(entry["min"], float(summary.get("min", math.inf)))
            entry["max"] = max(entry["max"], float(summary.get("max", -math.inf)))

    def reset(self) -> None:
        """Drop everything (tests and long-lived workers between batches)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


#: The process-wide registry all subsystems report into.
metrics = MetricsRegistry()


# -- Prometheus text exposition ------------------------------------------------

#: Splits a flat registry key back into (name, label-block).
_KEY_RE = re.compile(r"^([^{]+)(?:\{(.*)\})?$")

#: One exposition sample line: name, optional label block, value.
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(.*)\})?"
    r" (-?(?:[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)|NaN|[+-]Inf)$"
)

_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _prom_name(name: str) -> str:
    """A registry metric name as a Prometheus identifier (``repro_`` ns)."""
    return "repro_" + re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def _prom_labels(block: str | None) -> str:
    """Reformat ``k1=v1,k2=v2`` from a flat key as quoted exposition labels."""
    if not block:
        return ""
    pairs = []
    for part in block.split(","):
        key, _, value = part.partition("=")
        key = re.sub(r"[^a-zA-Z0-9_]", "_", key)
        value = value.replace("\\", r"\\").replace('"', r"\"")
        pairs.append(f'{key}="{value}"')
    return "{" + ",".join(pairs) + "}"


def _prom_value(value) -> str:
    value = float(value)
    if value != value:
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value.is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(value)


def to_prometheus(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as Prometheus text format.

    Counters become ``<name>_total`` counter samples, gauges stay gauges,
    histogram summaries expand to ``_count``/``_sum``/``_min``/``_max``
    samples under one ``summary``-typed family.  Output is sorted and
    deterministic, so two scrapes of identical state are byte-identical —
    the same diffability contract as the JSON snapshot.
    """
    families: dict[str, tuple[str, list[tuple[str, str]]]] = {}

    def add(family: str, type_: str, labels: str, value) -> None:
        entry = families.setdefault(family, (type_, []))
        entry[1].append((labels, _prom_value(value)))

    for key, value in (snapshot.get("counters") or {}).items():
        match = _KEY_RE.match(key)
        name, block = match.group(1), match.group(2)
        add(_prom_name(name) + "_total", "counter", _prom_labels(block), value)
    for key, value in (snapshot.get("gauges") or {}).items():
        match = _KEY_RE.match(key)
        name, block = match.group(1), match.group(2)
        add(_prom_name(name), "gauge", _prom_labels(block), value)
    for key, summary in (snapshot.get("histograms") or {}).items():
        match = _KEY_RE.match(key)
        name, block = _prom_name(match.group(1)), _prom_labels(match.group(2))
        for stat in ("count", "sum", "min", "max"):
            add(f"{name}_{stat}", "summary", block, summary.get(stat, 0))

    lines: list[str] = []
    for family in sorted(families):
        type_, samples = families[family]
        lines.append(f"# TYPE {family} {type_}")
        for labels, value in sorted(samples):
            lines.append(f"{family}{labels} {value}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse exposition text back into ``{sample_key: value}``.

    Sample keys keep the exposed name and re-flatten labels the registry
    way — ``repro_serve_completed_total{kind=lockrange}`` — so assertions
    read naturally.  Raises ``ValueError`` on a malformed line; use
    :func:`validate_prometheus` to collect problems instead.
    """
    samples: dict[str, float] = {}
    for i, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {i}: not a Prometheus sample: {raw!r}")
        name, block, value = match.group(1), match.group(2), match.group(3)
        key = name
        if block:
            pairs = _LABEL_RE.findall(block)
            joined = ",".join(f"{k}={v}" for k, v in sorted(pairs))
            key = f"{name}{{{joined}}}"
        samples[key] = float(value)
    return samples


def validate_prometheus(text: str) -> list[str]:
    """Structural checks on exposition text; returns problems (empty = ok).

    Every sample line must parse, every sample must belong to a family
    declared by a preceding ``# TYPE`` line, counter samples must end in
    a counter-family suffix, and no sample may repeat.  This is what CI
    runs against the ``/metricz?format=prometheus`` scrape.
    """
    problems: list[str] = []
    types: dict[str, str] = {}
    seen: set[str] = set()
    for i, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter",
                "gauge",
                "summary",
                "histogram",
                "untyped",
            ):
                problems.append(f"line {i}: malformed TYPE comment")
            else:
                types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {i}: not a Prometheus sample: {raw!r}")
            continue
        name, block = match.group(1), match.group(2)
        if block and not re.fullmatch(f"(?:{_LABEL_RE.pattern})(?:,(?:{_LABEL_RE.pattern}))*", block):
            problems.append(f"line {i}: malformed label block {block!r}")
        if name not in types:
            problems.append(f"line {i}: sample {name!r} has no TYPE declaration")
        elif types[name] == "counter" and not name.endswith("_total"):
            problems.append(f"line {i}: counter {name!r} missing _total suffix")
        key = f"{name}{{{block}}}" if block else name
        if key in seen:
            problems.append(f"line {i}: duplicate sample {key!r}")
        seen.add(key)
    if not types and not problems:
        problems.append("no TYPE declarations found (empty exposition?)")
    return problems
