"""Process-wide metrics registry: counters, gauges, histograms.

The registry is the numerical companion of the span tracer: spans answer
*where the time went*, metrics answer *how much work of each kind
happened* — surface-cache hits/misses/corruptions, describing-function
evaluations by method, harmonic-balance Newton iterations and residual
norms per solve, escalation-rung transitions, faults by kind.

Metric updates are plain dict operations, cheap enough to stay enabled
unconditionally (there is no on/off switch to misconfigure).  Labels are
folded into the metric key at update time —
``metrics.inc("df.evaluations", method="fft")`` is stored under
``"df.evaluations{method=fft}"`` — which keeps the snapshot a flat,
deterministic, JSON-ready mapping.

``snapshot()`` is the single export surface; the CLI's ``--trace`` mode
feeds it into ``OBS_REPORT.json`` (see :func:`repro.obs.report.write_obs_report`)
and the verification harness diffs snapshots around each scenario to
attach per-scenario work counts to ``VERIFY_REPORT.json``.
"""

from __future__ import annotations

import math

__all__ = ["MetricsRegistry", "metrics"]


def _flatten(name: str, labels: dict) -> str:
    """Fold labels into the metric key: ``name{k1=v1,k2=v2}`` (sorted)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def _as_number(value: float):
    """Ints stay ints in JSON output; integral floats become ints."""
    if isinstance(value, bool):  # bool is an int subclass; refuse silently
        return int(value)
    if isinstance(value, float) and value.is_integer() and abs(value) < 2**53:
        return int(value)
    return value


class MetricsRegistry:
    """Counters, gauges, and summary histograms under flat string keys.

    * **counter** — monotonically increasing total (:meth:`inc`);
    * **gauge** — last-written value (:meth:`gauge`);
    * **histogram** — running ``count/sum/min/max`` summary of observed
      values (:meth:`observe`); the snapshot adds the derived ``mean``.

    All three families share the label convention of :func:`_flatten`.
    """

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, dict[str, float]] = {}

    # -- updates --------------------------------------------------------------

    def inc(self, name: str, value: float = 1, **labels) -> None:
        """Add ``value`` (default 1) to a counter."""
        key = _flatten(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set a gauge to ``value`` (overwrites)."""
        self._gauges[_flatten(name, labels)] = float(value)

    def observe(self, name: str, value: float, **labels) -> None:
        """Feed one observation into a summary histogram."""
        value = float(value)
        key = _flatten(name, labels)
        entry = self._histograms.get(key)
        if entry is None:
            entry = {"count": 0, "sum": 0.0, "min": math.inf, "max": -math.inf}
            self._histograms[key] = entry
        entry["count"] += 1
        entry["sum"] += value
        if value < entry["min"]:
            entry["min"] = value
        if value > entry["max"]:
            entry["max"] = value

    # -- reads ----------------------------------------------------------------

    def counter(self, name: str, **labels) -> float:
        """Current value of a counter (0 when never incremented)."""
        return self._counters.get(_flatten(name, labels), 0)

    def counter_total(self, prefix: str) -> float:
        """Sum of every counter whose key starts with ``prefix``.

        Useful for labelled families: ``counter_total("df.evaluations")``
        sums the fft and dense variants.
        """
        return sum(v for k, v in self._counters.items() if k.startswith(prefix))

    def snapshot(self) -> dict:
        """Deterministic JSON-ready view of everything collected so far.

        Keys are sorted, integral values are emitted as ints, histogram
        summaries carry the derived mean — two runs doing identical work
        produce byte-identical snapshots.
        """
        histograms = {}
        for key in sorted(self._histograms):
            entry = self._histograms[key]
            histograms[key] = {
                "count": int(entry["count"]),
                "sum": _as_number(entry["sum"]),
                "min": _as_number(entry["min"]),
                "max": _as_number(entry["max"]),
                "mean": _as_number(entry["sum"] / entry["count"]),
            }
        return {
            "counters": {
                key: _as_number(self._counters[key]) for key in sorted(self._counters)
            },
            "gauges": {
                key: _as_number(self._gauges[key]) for key in sorted(self._gauges)
            },
            "histograms": histograms,
        }

    def reset(self) -> None:
        """Drop everything (tests and long-lived workers between batches)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


#: The process-wide registry all subsystems report into.
metrics = MetricsRegistry()
