"""Generic tank characterised from sampled frequency-response data.

The paper notes that for complex LC tank topologies the filter can be
"pre-characterized computationally".  :class:`GeneralTank` implements that:
it accepts samples of ``H(jw)`` — from a closed-form expression, a
measurement, or a :mod:`repro.spice.ac` small-signal analysis of an
arbitrary passive network — and exposes the same interface as
:class:`repro.tank.rlc.ParallelRLC`, including the numeric inverse map
``phi_d -> w`` required by the lock-range procedure.
"""

from __future__ import annotations

import numpy as np
from scipy.interpolate import PchipInterpolator

from repro.tank.base import PhaseInversionError, Tank
from repro.utils.validation import check_finite, check_monotonic, check_shape_match

__all__ = ["GeneralTank"]


class GeneralTank(Tank):
    """Tank defined by sampled complex transfer data.

    Parameters
    ----------
    w:
        Strictly increasing angular-frequency samples (rad/s).  The window
        must bracket the resonance (phase zero crossing with positive
        magnitude peak).
    h:
        Complex ``H(jw)`` samples.

    Notes
    -----
    * Magnitude and (unwrapped) phase are interpolated separately with
      PCHIP, which preserves the monotone fall of the phase through
      resonance and therefore keeps ``frequency_for_phase`` single-valued.
    * The centre frequency is defined by the phase zero crossing — the same
      operational definition the paper uses (``phi_d(w_c) = 0``), not the
      magnitude peak (they differ for asymmetric tanks).
    """

    def __init__(self, w: np.ndarray, h: np.ndarray):
        w = check_monotonic("w", np.asarray(w, dtype=float))
        h = np.asarray(h, dtype=complex)
        check_shape_match("w", w, "h", h)
        check_finite("h (magnitude)", np.abs(h))
        if w.size < 8:
            raise ValueError(f"need at least 8 frequency samples, got {w.size}")
        self._w = w
        self._mag = np.abs(h)
        self._phase = np.unwrap(np.angle(h))
        if np.any(self._mag <= 0.0):
            raise ValueError("|H| must be positive at every sample")
        self._mag_interp = PchipInterpolator(w, self._mag, extrapolate=False)
        self._phase_interp = PchipInterpolator(w, self._phase, extrapolate=False)
        self._w_c = self._find_center()
        self._r_peak = float(self._mag_interp(self._w_c))
        if not np.all(np.diff(self._phase) < 0.0):
            # Phase must fall monotonically through the characterised band
            # for phi_d -> w to be single-valued; reject ambiguous data
            # early rather than return an arbitrary branch later.
            raise ValueError(
                "sampled phase is not monotonically decreasing across the "
                "band; narrow the window around one resonance"
            )
        # Inverse map: phase is strictly decreasing, so flip for PCHIP.
        self._inv_interp = PchipInterpolator(
            self._phase[::-1], w[::-1], extrapolate=False
        )

    def _find_center(self) -> float:
        sign = np.sign(self._phase)
        crossings = np.nonzero(np.diff(sign) != 0)[0]
        if crossings.size == 0:
            raise ValueError(
                "no phase zero crossing in the sampled window; the samples "
                "do not bracket the tank resonance"
            )
        k = int(crossings[0])
        w0, w1 = self._w[k], self._w[k + 1]
        p0, p1 = self._phase[k], self._phase[k + 1]
        if p0 == p1:
            return float(0.5 * (w0 + w1))
        return float(w0 - p0 * (w1 - w0) / (p1 - p0))

    # -- Tank interface ----------------------------------------------------

    @property
    def center_frequency(self) -> float:
        return self._w_c

    @property
    def peak_resistance(self) -> float:
        return self._r_peak

    @property
    def frequency_window(self) -> tuple[float, float]:
        """Characterised angular-frequency window ``(w_min, w_max)``."""
        return float(self._w[0]), float(self._w[-1])

    def transfer(self, w: np.ndarray) -> np.ndarray:
        scalar = np.ndim(w) == 0
        w = np.atleast_1d(np.asarray(w, dtype=float))
        lo, hi = self.frequency_window
        if np.any((w < lo) | (w > hi)):
            raise ValueError(
                f"frequency outside characterised window [{lo:g}, {hi:g}] rad/s"
            )
        out = self._mag_interp(w) * np.exp(1j * self._phase_interp(w))
        return out[0] if scalar else out

    def phase(self, w: np.ndarray) -> np.ndarray:
        scalar = np.ndim(w) == 0
        w = np.atleast_1d(np.asarray(w, dtype=float))
        lo, hi = self.frequency_window
        if np.any((w < lo) | (w > hi)):
            raise ValueError(
                f"frequency outside characterised window [{lo:g}, {hi:g}] rad/s"
            )
        out = self._phase_interp(w)
        return float(out[0]) if scalar else out

    def frequency_for_phase(self, phi_d: float) -> float:
        phi_lo = float(self._phase[-1])  # most negative (high frequency)
        phi_hi = float(self._phase[0])  # most positive (low frequency)
        if not phi_lo <= phi_d <= phi_hi:
            raise PhaseInversionError(
                f"phi_d={phi_d:g} outside characterised phase range "
                f"[{phi_lo:g}, {phi_hi:g}]"
            )
        return float(self._inv_interp(phi_d))

    @classmethod
    def from_tank(cls, tank: Tank, span: float = 0.5, n: int = 2001) -> "GeneralTank":
        """Sample another tank into a :class:`GeneralTank`.

        Mostly for testing — the sampled tank must reproduce the analytic
        one's lock-range predictions to grid accuracy.

        Parameters
        ----------
        tank:
            Source tank.
        span:
            Half-width of the sampling window as a fraction of ``w_c``.
        n:
            Number of samples.
        """
        w_c = tank.center_frequency
        w = np.linspace((1.0 - span) * w_c, (1.0 + span) * w_c, n)
        return cls(w, tank.transfer(w))
