"""LC tank models — the linear part ``L`` of the oscillator feedback loop.

The describing-function analysis needs only three things from the tank:

* the transimpedance ``H(jw)`` from the injected current to the tank
  voltage (magnitude and phase),
* the phase deviation ``phi_d(w) = angle H(jw)`` and its inverse map
  ``phi_d -> w`` (for translating phase lock limits into frequency lock
  limits), and
* the circle property: ``H(jw) = R * cos(phi_d) * exp(j*phi_d)`` for a
  parallel RLC, which collapses the magnitude equation of the lock
  conditions onto the cosine component ``I_1x`` (Appendix VI-B1).

:class:`~repro.tank.rlc.ParallelRLC` implements the canonical
high-Q parallel tank analytically; :class:`~repro.tank.general.GeneralTank`
wraps any sampled ``H(jw)`` (e.g. from :mod:`repro.spice.ac` on a complex
tank topology) behind the same interface.
"""

from repro.tank.base import PhaseInversionError, Tank
from repro.tank.rlc import ParallelRLC
from repro.tank.general import GeneralTank

__all__ = ["Tank", "PhaseInversionError", "ParallelRLC", "GeneralTank"]
