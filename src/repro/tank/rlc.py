"""Parallel RLC tank — the canonical second-order resonator (paper Fig. 6).

Driven by a current ``i``, a parallel combination of R, L and C develops a
voltage ``v = Z(jw) * i`` with transimpedance::

    Z(jw) = 1 / (1/R + jwC + 1/(jwL))

Standard identities used throughout:

* centre (resonant) angular frequency ``w_c = 1/sqrt(LC)``;
* quality factor ``Q = R * sqrt(C/L) = R / (w_c L) = w_c R C``;
* phase deviation ``phi_d(w) = -atan(Q * (w/w_c - w_c/w))``, positive below
  resonance, negative above (Fig. 6);
* circle property ``Z(jw) = R * cos(phi_d) * exp(j*phi_d)`` — the head of
  the output phasor traces a circle of diameter ``R`` as ``w`` sweeps
  (Appendix VI-B1).
"""

from __future__ import annotations

import numpy as np

from repro.tank.base import PhaseInversionError, Tank
from repro.utils.validation import check_positive

__all__ = ["ParallelRLC"]


class ParallelRLC(Tank):
    """Parallel RLC tank with analytic transfer function and inverse phase map.

    Parameters
    ----------
    r:
        Parallel loss resistance, ohms.
    l:
        Inductance, henries.
    c:
        Capacitance, farads.

    Examples
    --------
    The paper's diff-pair tank resonates at 503.3 kHz:

    >>> tank = ParallelRLC(r=4000.0, l=100e-6, c=1e-9)
    >>> round(tank.center_frequency / (2 * 3.141592653589793) / 1e3, 1)
    503.3
    """

    def __init__(self, r: float, l: float, c: float):
        self.r = check_positive("r", r)
        self.l = check_positive("l", l)
        self.c = check_positive("c", c)

    # -- derived quantities --------------------------------------------------

    @property
    def center_frequency(self) -> float:
        """``w_c = 1/sqrt(LC)`` in rad/s."""
        return 1.0 / np.sqrt(self.l * self.c)

    @property
    def center_frequency_hz(self) -> float:
        """Resonant frequency in hertz — convenience for reports."""
        return self.center_frequency / (2.0 * np.pi)

    @property
    def peak_resistance(self) -> float:
        """``|Z(j w_c)| = R``."""
        return self.r

    @property
    def quality_factor(self) -> float:
        """``Q = R * sqrt(C/L)``.

        The describing-function filtering assumption (only the fundamental
        survives the tank) needs moderately high Q; analyses warn below
        Q ~ 5.
        """
        return self.r * np.sqrt(self.c / self.l)

    @property
    def bandwidth(self) -> float:
        """-3 dB full bandwidth ``w_c / Q`` in rad/s."""
        return self.center_frequency / self.quality_factor

    # -- transfer function -----------------------------------------------------

    def transfer(self, w: np.ndarray) -> np.ndarray:
        """Complex transimpedance ``Z(jw)``; ``w`` in rad/s, vectorised."""
        w = np.asarray(w, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            y = 1.0 / self.r + 1j * w * self.c + 1.0 / (1j * w * self.l)
            z = 1.0 / y
        return np.where(w == 0.0, 0.0 + 0.0j, z)

    def phase(self, w: np.ndarray) -> np.ndarray:
        """``phi_d(w) = -atan(Q * (w/w_c - w_c/w))`` — exact, no wrapping issues."""
        w = np.asarray(w, dtype=float)
        x = w / self.center_frequency
        with np.errstate(divide="ignore"):
            detune = np.where(x > 0.0, x - 1.0 / x, -np.inf)
        return -np.arctan(self.quality_factor * detune)

    def frequency_for_phase(self, phi_d: float) -> float:
        """Invert the phase map analytically.

        From ``tan(phi_d) = -Q (x - 1/x)`` with ``x = w/w_c``::

            Q x^2 + tan(phi_d) x - Q = 0
            x = (-tan(phi_d) + sqrt(tan(phi_d)^2 + 4 Q^2)) / (2 Q)

        (positive root).  Valid for ``|phi_d| < pi/2`` — the tank phase of a
        single parallel RLC never reaches +-pi/2 at finite nonzero frequency.
        """
        phi_d = float(phi_d)
        if not (-np.pi / 2 < phi_d < np.pi / 2):
            raise PhaseInversionError(
                f"phi_d={phi_d:g} outside the invertible phase range "
                f"(-pi/2, pi/2) of a parallel RLC tank"
            )
        t = np.tan(phi_d)
        q = self.quality_factor
        x = (-t + np.sqrt(t * t + 4.0 * q * q)) / (2.0 * q)
        return float(x * self.center_frequency)

    def effective_capacitance(self) -> float:
        """Exact for a parallel RLC: ``C_eff = C``."""
        return self.c

    # -- circle property -------------------------------------------------------

    def circle_identity_residual(self, w: float) -> float:
        """``|Z(jw) - R cos(phi_d) e^{j phi_d}|`` — zero up to roundoff.

        Exposed so tests (and curious users) can check Appendix VI-B1
        directly rather than trusting the docstring.
        """
        z = complex(self.transfer(np.asarray(float(w))))
        phi = float(self.phase(np.asarray(float(w))))
        return abs(z - self.r * np.cos(phi) * np.exp(1j * phi))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParallelRLC(r={self.r:g}, l={self.l:g}, c={self.c:g}, "
            f"f_c={self.center_frequency_hz:.4g}Hz, Q={self.quality_factor:.3g})"
        )
