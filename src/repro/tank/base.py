"""Abstract tank interface.

A *tank* is the linear, frequency-selective part of the oscillator loop —
the transimpedance from the nonlinearity's output current (after the sign
inversion of the feedback) to the voltage across the port.  Concrete
implementations must expose the resonant behaviour through the small
interface below; everything in :mod:`repro.core` is written against it.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["Tank", "PhaseInversionError"]


class PhaseInversionError(ValueError):
    """``frequency_for_phase`` asked for a phase the tank cannot produce.

    Subclasses :class:`ValueError` for backwards compatibility, but lets
    the solve pipeline (isoline/lock-range point evaluation) distinguish
    "this tank phase is uninvertible" — an expected, recordable condition
    at the edges of the lock range — from genuine argument errors.
    """


class Tank(abc.ABC):
    """Abstract LTI resonator seen by the nonlinearity."""

    @property
    @abc.abstractmethod
    def center_frequency(self) -> float:
        """Angular centre frequency ``w_c`` (rad/s) where ``phi_d = 0``."""

    @property
    @abc.abstractmethod
    def peak_resistance(self) -> float:
        """``|H(j w_c)|`` — the resistance seen at resonance, ohms."""

    @abc.abstractmethod
    def transfer(self, w: np.ndarray) -> np.ndarray:
        """Complex transimpedance ``H(jw)``; vectorised over ``w``."""

    def phase(self, w: np.ndarray) -> np.ndarray:
        """Phase deviation ``phi_d(w) = angle H(jw)`` in radians."""
        return np.angle(self.transfer(w))

    def magnitude(self, w: np.ndarray) -> np.ndarray:
        """``|H(jw)|`` in ohms."""
        return np.abs(self.transfer(w))

    @abc.abstractmethod
    def frequency_for_phase(self, phi_d: float) -> float:
        """Invert ``phi_d(w)`` near resonance.

        Returns the angular frequency at which the tank contributes phase
        ``phi_d``.  ``phi_d > 0`` corresponds to ``w < w_c`` (inductive
        side) and ``phi_d < 0`` to ``w > w_c`` — see paper Fig. 6.
        """

    def effective_capacitance(self) -> float:
        """Slow-flow rate constant ``C_eff = Re[dY/ds] / 2`` at resonance.

        The amplitude/phase averaged dynamics of the oscillator evolve at
        rate ``1/(2 R C_eff)`` where ``Y(s) = 1/H(s)`` is the tank
        admittance; for a parallel RLC ``C_eff`` equals the physical C.
        The default implementation differentiates ``Y(jw)`` numerically.
        """
        w_c = self.center_frequency
        h = 1e-6 * w_c
        y_plus = 1.0 / complex(self.transfer(np.asarray(w_c + h)))
        y_minus = 1.0 / complex(self.transfer(np.asarray(w_c - h)))
        dy_ds = (y_plus - y_minus) / (2.0 * h) / 1j
        return float(dy_ds.real) / 2.0

    # -- circle property (Appendix VI-B1) -----------------------------------

    def circle_point(self, w: float) -> complex:
        """Normalised output phasor ``H(jw) / R`` for a unit input phasor.

        Appendix VI-B1: as ``w`` sweeps, the head of this phasor traces a
        circle of diameter 1 through the origin, centred at ``0.5 + 0j``.
        The default implementation simply evaluates the transfer function;
        :class:`repro.tank.rlc.ParallelRLC` satisfies the circle identity
        exactly, and the property test in the suite verifies it.
        """
        return complex(self.transfer(np.asarray(float(w)))) / self.peak_resistance

    def fractional_frequency(self, w: np.ndarray) -> np.ndarray:
        """Frequency detuning ``(w - w_c) / w_c`` — handy for reports."""
        return (np.asarray(w, dtype=float) - self.center_frequency) / self.center_frequency
