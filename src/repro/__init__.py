"""repro — graphical describing-function analysis of sub-harmonic injection
locking (SHIL) in LC oscillators.

A complete open-source implementation of the technique of

    P. Bhushan, "A Rigorous Graphical Technique for Predicting
    Sub-harmonic Injection Locking in LC Oscillators", DAC 2014

plus every substrate the paper's validation flow needs: a SPICE-like MNA
circuit simulator, a fast batched transient engine, waveform measurement,
and the Adler/PPV baseline predictors.

Quick tour
----------

>>> from repro import (
...     NegativeTanh, ParallelRLC,
...     predict_natural_oscillation, solve_lock_states, predict_lock_range,
... )
>>> osc = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
>>> tank = ParallelRLC(r=1000.0, l=100e-6, c=10e-9)
>>> natural = predict_natural_oscillation(osc, tank)
>>> locks = solve_lock_states(osc, tank, v_i=0.03,
...                           w_injection=3 * tank.center_frequency, n=3)
>>> lock_range = predict_lock_range(osc, tank, v_i=0.03, n=3)

Sub-packages
------------

=====================  =====================================================
``repro.core``         the paper's technique (describing functions, lock
                       states, stability, lock range)
``repro.nonlin``       memoryless ``i = f(v)`` device laws and extraction
``repro.tank``         resonator models (analytic RLC and sampled general)
``repro.spice``        from-scratch SPICE-like simulator (MNA, DC, AC,
                       transient, netlists)
``repro.odesim``       fast batched transient integration of the canonical
                       oscillator
``repro.measure``      waveform measurements, lock detection, simulated
                       lock range, the n-states experiment
``repro.baselines``    Adler and PPV lock-range baselines
``repro.experiments``  one driver per paper figure/table
``repro.viz``          ASCII (and optional matplotlib) rendering
=====================  =====================================================
"""

from repro.core import (
    FhilLock,
    LockRange,
    LockState,
    NaturalOscillation,
    ShilSolution,
    enumerate_states,
    fhil_lock_range,
    predict_lock_range,
    predict_natural_oscillation,
    solve_fhil,
    solve_lock_states,
)
from repro.nonlin import (
    BiasedTunnelDiode,
    CrossCoupledDiffPair,
    CubicNonlinearity,
    FunctionNonlinearity,
    NegativeTanh,
    Nonlinearity,
    PiecewiseLinearNegativeResistance,
    TabulatedNonlinearity,
    TunnelDiode,
    extract_iv_curve,
)
from repro.tank import GeneralTank, ParallelRLC, Tank

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "predict_natural_oscillation",
    "solve_lock_states",
    "predict_lock_range",
    "solve_fhil",
    "fhil_lock_range",
    "enumerate_states",
    "NaturalOscillation",
    "ShilSolution",
    "LockState",
    "LockRange",
    "FhilLock",
    # nonlinearities
    "Nonlinearity",
    "FunctionNonlinearity",
    "NegativeTanh",
    "CubicNonlinearity",
    "PiecewiseLinearNegativeResistance",
    "CrossCoupledDiffPair",
    "TunnelDiode",
    "BiasedTunnelDiode",
    "TabulatedNonlinearity",
    "extract_iv_curve",
    # tanks
    "Tank",
    "ParallelRLC",
    "GeneralTank",
]
