"""Dense linear solve with diagnostics, and the Newton-Raphson driver.

One Newton implementation serves the DC operating point, every DC-sweep
point and every transient timestep — they differ only in the effective
conductance matrix and right-hand side they assemble.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SingularCircuitError", "NewtonResult", "solve_linear", "newton_solve"]


class SingularCircuitError(RuntimeError):
    """The MNA matrix is singular — usually a floating node or a V-source loop."""


class ConvergenceError(RuntimeError):
    """Newton failed to converge within the iteration budget."""


def solve_linear(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """``matrix @ x = rhs`` with a descriptive singularity error."""
    try:
        return np.linalg.solve(matrix, rhs)
    except np.linalg.LinAlgError as exc:
        raise SingularCircuitError(
            "singular MNA matrix: check for floating nodes, loops of ideal "
            "voltage sources/inductors, or cut-sets of current sources"
        ) from exc


@dataclass(frozen=True)
class NewtonResult:
    """Converged Newton solution with iteration statistics."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool


def newton_solve(
    residual_fn,
    jacobian_fn,
    x0: np.ndarray,
    *,
    abstol: float = 1e-9,
    reltol: float = 1e-9,
    max_iter: int = 120,
    damping_limit: float = 1.0,
    require_convergence: bool = True,
) -> NewtonResult:
    """Damped Newton-Raphson on ``residual_fn(x) = 0``.

    Parameters
    ----------
    residual_fn, jacobian_fn:
        The system and its Jacobian at ``x``.
    x0:
        Starting point.
    abstol, reltol:
        Convergence on the update: ``|dx| <= abstol + reltol * |x|``
        componentwise, plus a residual-norm check.
    max_iter:
        Iteration budget.
    damping_limit:
        Maximum per-iteration step norm relative to ``max(1, |x|)``;
        values < 1 give source-stepping-like robustness at a convergence
        cost.
    require_convergence:
        Raise :class:`ConvergenceError` on failure instead of returning a
        ``converged=False`` result.
    """
    x = np.array(x0, dtype=float, copy=True)
    res = residual_fn(x)
    for iteration in range(1, max_iter + 1):
        jac = jacobian_fn(x)
        dx = solve_linear(jac, -res)
        # Step limiting: junction devices explode for volts-scale steps.
        scale = float(np.max(np.abs(dx)))
        limit = damping_limit * max(1.0, float(np.max(np.abs(x))))
        if scale > limit:
            dx = dx * (limit / scale)
        x_new = x + dx
        res_new = residual_fn(x_new)
        # Simple line search when the residual grows badly.
        backtracks = 0
        while (
            np.linalg.norm(res_new) > 2.0 * np.linalg.norm(res)
            and backtracks < 8
        ):
            dx = 0.5 * dx
            x_new = x + dx
            res_new = residual_fn(x_new)
            backtracks += 1
        x, res = x_new, res_new
        update_ok = np.all(np.abs(dx) <= abstol + reltol * np.abs(x))
        residual_ok = float(np.linalg.norm(res)) <= 1e-6 * max(
            1.0, float(np.linalg.norm(x))
        )
        if update_ok and residual_ok:
            return NewtonResult(
                x=x,
                iterations=iteration,
                residual_norm=float(np.linalg.norm(res)),
                converged=True,
            )
    if require_convergence:
        raise ConvergenceError(
            f"Newton did not converge in {max_iter} iterations "
            f"(|F| = {float(np.linalg.norm(res)):.3e})"
        )
    return NewtonResult(
        x=x,
        iterations=max_iter,
        residual_norm=float(np.linalg.norm(res)),
        converged=False,
    )
