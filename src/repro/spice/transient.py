"""Transient analysis: trapezoidal integration with Newton per step.

Each timestep solves the implicit system

    G x + C xdot(x) + i_nl(x) + s(t_{n+1}) = 0

with the integration rule supplying ``xdot`` as an affine function of the
new ``x``:

* backward Euler (first step, and optionally throughout):
  ``xdot = (x - x_n) / h``;
* trapezoidal (default):
  ``xdot = (2/h)(x - x_n) - xdot_n`` — second order, A-stable, the SPICE
  default for oscillator work because it adds no numerical damping (BE
  visibly decays an LC tank; the energy-conservation test in the suite
  demonstrates the difference).

Optional adaptive stepping controls the local truncation error of the
trapezoidal rule, ``LTE ~ (h^3 / 12) x'''``, estimated from divided
differences of recent derivatives — the standard SPICE ``TRTOL``
mechanism in simplified form.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.spice.circuit import Circuit
from repro.spice.dcop import dc_operating_point
from repro.spice.solver import newton_solve
from repro.utils.validation import check_positive

__all__ = ["TransientResult", "transient"]


@dataclass
class TransientResult:
    """Recorded transient solution.

    Attributes
    ----------
    t:
        Accepted time points (uniform unless ``adaptive=True``).
    x:
        Unknown vectors, shape ``(n_points, size)``.
    """

    system: "object"
    t: np.ndarray
    x: np.ndarray
    stats: dict = field(default_factory=dict)

    def voltage(self, node: str) -> np.ndarray:
        """Node voltage waveform."""
        from repro.spice.circuit import GROUND_NAMES

        if node in GROUND_NAMES:
            return np.zeros(self.t.size)
        idx = self.system.node_index[node]
        return self.x[:, idx]

    def branch_current(self, element_name: str) -> np.ndarray:
        """Branch-current waveform of a voltage source or inductor."""
        idx = self.system.branch_index[element_name]
        return self.x[:, idx]

    def differential_voltage(self, node_a: str, node_b: str) -> np.ndarray:
        """``v(node_a) - v(node_b)`` — e.g. the diff-pair output."""
        return self.voltage(node_a) - self.voltage(node_b)


def transient(
    circuit: Circuit,
    t_end: float,
    dt: float,
    *,
    method: str = "trap",
    x0: np.ndarray | None = None,
    ic: dict | None = None,
    skip_dc: bool = False,
    adaptive: bool = False,
    lte_tol: float = 1e-4,
    dt_min_factor: float = 1e-2,
    dt_max_factor: float = 8.0,
    record_every: int = 1,
    max_steps: int = 2_000_000,
) -> TransientResult:
    """Integrate a circuit transient.

    Parameters
    ----------
    circuit:
        The circuit to simulate.
    t_end:
        End time, seconds.
    dt:
        Timestep (initial timestep when ``adaptive``).
    method:
        ``"trap"`` (default) or ``"be"``.
    x0:
        Initial unknown vector; the DC operating point at ``t = 0`` when
        omitted (the usual SPICE behaviour).
    ic:
        Node-name -> initial voltage overrides (SPICE ``.ic`` card, e.g.
        from :attr:`repro.spice.netlist.ParsedNetlist.initial_conditions`);
        applied on top of whatever ``x0``/``skip_dc`` produce.
    skip_dc:
        Start from all-zeros instead of the operating point (SPICE
        ``uic``); useful to watch oscillator start-up from "noise".
    adaptive:
        Enable LTE-based step control.
    lte_tol:
        Target LTE per step (absolute, in unknown units) when adaptive.
    dt_min_factor, dt_max_factor:
        Bounds on the adaptive step relative to the nominal ``dt``.  A
        step already at the minimum is *accepted* regardless of LTE —
        source corners would otherwise pin the march at the floor.
    record_every:
        Output decimation (fixed-step mode only).
    max_steps:
        Hard cap on accepted steps; exceeded only by a runaway adaptive
        march, reported as a RuntimeError rather than a silent hang.

    Returns
    -------
    TransientResult
    """
    check_positive("t_end", t_end)
    check_positive("dt", dt)
    if method not in ("trap", "be"):
        raise ValueError(f"method must be 'trap' or 'be', got {method!r}")
    system = circuit.build()
    if x0 is not None:
        x = np.asarray(x0, dtype=float).copy()
    elif skip_dc:
        x = np.zeros(system.size)
    else:
        x = dc_operating_point(system).x.copy()
    if ic:
        for node, value in ic.items():
            if node not in system.node_index:
                raise ValueError(f"ic refers to unknown node {node!r}")
            x[system.node_index[node]] = float(value)

    g = system.g_matrix
    c = system.c_matrix
    xdot = np.zeros(system.size)
    t = 0.0
    times = [t]
    states = [x.copy()]
    newton_iters = 0
    rejected = 0
    h = dt
    step_index = 0
    # History of (t, xdot) for the LTE divided differences.
    deriv_history: list[tuple[float, np.ndarray]] = []

    def solve_step(x_n, xdot_n, h, t_new, rule):
        s_new = system.source_vector(t_new)
        if rule == "be":
            a = 1.0 / h
            xdot_of = lambda x_new: (x_new - x_n) * a
        else:
            a = 2.0 / h
            xdot_of = lambda x_new: (x_new - x_n) * a - xdot_n

        def residual(x_new):
            i_nl, _ = system.nonlinear(x_new)
            return g @ x_new + c @ xdot_of(x_new) + i_nl + s_new

        def jacobian(x_new):
            return system.resistive_jacobian(x_new) + a * c

        result = newton_solve(residual, jacobian, x_n, max_iter=60)
        return result.x, xdot_of(result.x), result.iterations

    # Fixed-step runs take exactly round(t_end/dt) uniform steps with
    # t = k*dt — no accumulated-roundoff leftovers, and the recorded time
    # axis is exactly uniform.  Adaptive runs accumulate t and guard
    # against degenerate leftover steps instead.
    fixed_total = max(1, int(round(t_end / dt))) if not adaptive else None

    while True:
        if fixed_total is not None:
            if step_index >= fixed_total:
                break
            h = dt
            t_new = (step_index + 1) * dt
        else:
            if t >= t_end - 1e-15 * t_end:
                break
            h = min(h, t_end - t)
            if h < 1e-6 * dt:
                # Roundoff leftover; a further step would make the
                # discretisation coefficient 1/h explode.
                break
            t_new = t + h
        rule = "be" if (step_index == 0 and method == "trap") else method
        x_new, xdot_new, iters = solve_step(x, xdot, h, t_new, rule)
        newton_iters += iters

        if adaptive and len(deriv_history) >= 2:
            # x''' from divided differences of xdot over the last 3 points.
            (t1, d1), (t2, d2) = deriv_history[-2], deriv_history[-1]
            t3, d3 = t + h, xdot_new
            dd1 = (d2 - d1) / (t2 - t1)
            dd2 = (d3 - d2) / (t3 - t2)
            x3 = 2.0 * (dd2 - dd1) / (t3 - t1)
            lte = float(np.max(np.abs(x3))) * h**3 / 12.0
            at_floor = h <= dt * dt_min_factor * (1.0 + 1e-9)
            if lte > lte_tol and not at_floor:
                h = max(0.5 * h, dt * dt_min_factor)
                rejected += 1
                continue
            grow = (lte_tol / max(lte, 1e-30)) ** (1.0 / 3.0)
            h_next = h * float(np.clip(grow, 0.5, 2.0))
            h_next = float(np.clip(h_next, dt * dt_min_factor, dt * dt_max_factor))
        else:
            h_next = h

        t = t_new
        x, xdot = x_new, xdot_new
        step_index += 1
        if step_index > max_steps:
            raise RuntimeError(
                f"transient exceeded max_steps={max_steps} at t={t:g}s; "
                "raise dt/lte_tol or max_steps"
            )
        deriv_history.append((t, xdot))
        if len(deriv_history) > 3:
            deriv_history.pop(0)
        if adaptive or step_index % record_every == 0:
            times.append(t)
            states.append(x.copy())
        h = h_next

    return TransientResult(
        system=system,
        t=np.asarray(times),
        x=np.asarray(states),
        stats={
            "steps": step_index,
            "newton_iterations": newton_iters,
            "rejected_steps": rejected,
            "method": method,
            "adaptive": adaptive,
        },
    )
