"""Linear passive elements: resistor, capacitor, inductor, mutual coupling."""

from __future__ import annotations

import numpy as np

from repro.spice.elements.base import Element, TwoTerminal
from repro.utils.validation import check_in_range, check_positive

__all__ = ["Resistor", "Capacitor", "Inductor", "MutualInductance"]


class Resistor(TwoTerminal):
    """Ideal resistor; stamps its conductance into ``G``."""

    def __init__(self, name: str, node_a: str, node_b: str, resistance: float):
        super().__init__(name, node_a, node_b)
        self.resistance = check_positive(f"{name}.resistance", resistance)

    def stamp_conductance(self, g_matrix: np.ndarray) -> None:
        self.stamp_pair(g_matrix, 1.0 / self.resistance)


class Capacitor(TwoTerminal):
    """Ideal capacitor; stamps into the ``dx/dt`` multiplier matrix."""

    def __init__(self, name: str, node_a: str, node_b: str, capacitance: float):
        super().__init__(name, node_a, node_b)
        self.capacitance = check_positive(f"{name}.capacitance", capacitance)

    def stamp_reactance(self, c_matrix: np.ndarray) -> None:
        self.stamp_pair(c_matrix, self.capacitance)


class Inductor(TwoTerminal):
    """Ideal inductor with an explicit branch current.

    The branch unknown ``i_L`` keeps the MNA system index-1-friendly and
    lets DC analysis treat the inductor as the short it physically is
    (its branch row degenerates to ``v_a - v_b = 0`` when ``dx/dt = 0``).
    """

    n_branches = 1

    def __init__(self, name: str, node_a: str, node_b: str, inductance: float):
        super().__init__(name, node_a, node_b)
        self.inductance = check_positive(f"{name}.inductance", inductance)

    def stamp_conductance(self, g_matrix: np.ndarray) -> None:
        k = self.branch_indices[0]
        # KCL: branch current leaves node a, enters node b.
        self._add(g_matrix, self.a, k, 1.0)
        self._add(g_matrix, self.b, k, -1.0)
        # Branch equation: v_a - v_b - L di/dt = 0.
        self._add(g_matrix, k, self.a, 1.0)
        self._add(g_matrix, k, self.b, -1.0)

    def stamp_reactance(self, c_matrix: np.ndarray) -> None:
        k = self.branch_indices[0]
        c_matrix[k, k] += -self.inductance


class MutualInductance(Element):
    """Magnetic coupling between two inductors (SPICE ``K`` element).

    Adds the mutual term ``M = k sqrt(L1 L2)`` to both inductors' branch
    equations::

        v_1 = L1 di_1/dt + M di_2/dt
        v_2 = M di_1/dt + L2 di_2/dt

    which in the residual convention stamps ``-M`` into the ``C`` matrix
    at the two branch-row cross positions.  The coupled pair is the
    standard transformer model for injection coupling in RFIC practice.

    Parameters
    ----------
    inductor_a, inductor_b:
        The two :class:`Inductor` instances (must already be added to the
        same circuit).
    coupling:
        Coupling coefficient ``k`` in ``(0, 1]`` (sign via the inductors'
        terminal order, dot convention: terminal ``a`` is the dot).
    """

    def __init__(self, name: str, inductor_a: Inductor, inductor_b: Inductor, coupling: float):
        if not isinstance(inductor_a, Inductor) or not isinstance(inductor_b, Inductor):
            raise TypeError(f"{name}: couple two Inductor elements")
        if inductor_a is inductor_b:
            raise ValueError(f"{name}: cannot couple an inductor to itself")
        super().__init__(name, ())
        check_in_range(f"{name}.coupling", abs(coupling), 0.0, 1.0, inclusive=True)
        if coupling == 0.0:
            raise ValueError(f"{name}: coupling must be nonzero")
        self.inductor_a = inductor_a
        self.inductor_b = inductor_b
        self.coupling = float(coupling)

    @property
    def mutual(self) -> float:
        """``M = k sqrt(L1 L2)`` in henries."""
        return self.coupling * float(
            np.sqrt(self.inductor_a.inductance * self.inductor_b.inductance)
        )

    def stamp_reactance(self, c_matrix: np.ndarray) -> None:
        ka = self.inductor_a.branch_indices[0]
        kb = self.inductor_b.branch_indices[0]
        c_matrix[ka, kb] += -self.mutual
        c_matrix[kb, ka] += -self.mutual
