"""Junction diode with exponential law and junction-voltage limiting."""

from __future__ import annotations

import numpy as np

from repro.spice.elements.base import TwoTerminal
from repro.utils.validation import check_positive

__all__ = ["Diode", "limited_exponential"]

#: Junction voltage beyond which the exponential is linearised — the
#: classic SPICE trick keeping wild Newton iterates finite while preserving
#: C1 continuity of the model.
_V_LIMIT_FACTOR = 40.0


def limited_exponential(v: float, v_t: float) -> tuple[float, float]:
    """``exp(v / v_t)`` with C1 linear continuation above ``40 v_t``.

    Returns ``(value, derivative-with-respect-to-v)``.
    """
    v_lim = _V_LIMIT_FACTOR * v_t
    if v <= v_lim:
        e = float(np.exp(v / v_t))
        return e, e / v_t
    e_lim = float(np.exp(_V_LIMIT_FACTOR))
    slope = e_lim / v_t
    return e_lim + slope * (v - v_lim), slope


class Diode(TwoTerminal):
    """Junction diode ``i = Is (exp(v/(eta Vt)) - 1)``; anode is terminal a.

    Parameters
    ----------
    i_s:
        Saturation current, amperes.
    eta:
        Ideality factor.
    v_t:
        Thermal voltage, volts.
    """

    is_nonlinear = True

    def __init__(
        self,
        name: str,
        anode: str,
        cathode: str,
        i_s: float = 1e-12,
        eta: float = 1.0,
        v_t: float = 0.025,
    ):
        super().__init__(name, anode, cathode)
        self.i_s = check_positive(f"{name}.i_s", i_s)
        self.eta = check_positive(f"{name}.eta", eta)
        self.v_t = check_positive(f"{name}.v_t", v_t)

    def current(self, v: float) -> tuple[float, float]:
        """Diode current and conductance at junction voltage ``v``."""
        e, de = limited_exponential(v, self.eta * self.v_t)
        return self.i_s * (e - 1.0), self.i_s * de

    def stamp_nonlinear(self, x: np.ndarray, j_matrix: np.ndarray, i_vector: np.ndarray) -> None:
        v = self.voltage_across(x)
        i, g = self.current(v)
        self.stamp_current_pair(i_vector, i)
        self.stamp_pair(j_matrix, g)
