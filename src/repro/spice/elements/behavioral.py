"""Behavioural current source wrapping an arbitrary nonlinearity.

This element is the bridge between the two halves of the library: any
:class:`repro.nonlin.Nonlinearity` — analytic, extracted, or tabulated —
can be dropped into a netlist as a two-terminal ``i = f(v)`` device.  The
canonical injected-oscillator circuit the theory analyses is then exactly
buildable at SPICE level, enabling apples-to-apples cross-validation of
:mod:`repro.odesim` against :mod:`repro.spice.transient`.
"""

from __future__ import annotations

import numpy as np

from repro.nonlin.base import Nonlinearity
from repro.spice.elements.base import TwoTerminal

__all__ = ["BehavioralCurrentSource"]


class BehavioralCurrentSource(TwoTerminal):
    """Two-terminal device with ``i(a -> b) = f(v_a - v_b)``."""

    is_nonlinear = True

    def __init__(self, name: str, node_a: str, node_b: str, law: Nonlinearity):
        super().__init__(name, node_a, node_b)
        if not isinstance(law, Nonlinearity):
            raise TypeError(
                f"{name}: law must be a repro.nonlin.Nonlinearity, got {type(law).__name__}"
            )
        self.law = law

    def stamp_nonlinear(self, x: np.ndarray, j_matrix: np.ndarray, i_vector: np.ndarray) -> None:
        v = self.voltage_across(x)
        i = float(self.law(np.asarray(v)))
        g = float(self.law.derivative(np.asarray(v)))
        self.stamp_current_pair(i_vector, i)
        self.stamp_pair(j_matrix, g)
