"""Tunnel diode circuit element (paper Appendix VI-C model)."""

from __future__ import annotations

import numpy as np

from repro.nonlin.tunnel_diode import TunnelDiode
from repro.spice.elements.base import TwoTerminal

__all__ = ["TunnelDiodeElement"]


class TunnelDiodeElement(TwoTerminal):
    """Two-terminal tunnel diode; anode is terminal a.

    Wraps the :class:`repro.nonlin.tunnel_diode.TunnelDiode` device law so
    the SPICE-level netlist and the describing-function analysis share one
    model implementation (any discrepancy between "what we analysed" and
    "what we simulated" would silently bias the validation).
    """

    is_nonlinear = True

    def __init__(
        self,
        name: str,
        anode: str,
        cathode: str,
        model: TunnelDiode | None = None,
    ):
        super().__init__(name, anode, cathode)
        self.model = model if model is not None else TunnelDiode()

    def stamp_nonlinear(self, x: np.ndarray, j_matrix: np.ndarray, i_vector: np.ndarray) -> None:
        v = self.voltage_across(x)
        i = float(self.model(np.asarray(v)))
        g = float(self.model.derivative(np.asarray(v)))
        self.stamp_current_pair(i_vector, i)
        self.stamp_pair(j_matrix, g)
