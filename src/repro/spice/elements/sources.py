"""Independent sources (DC / SIN / PULSE waveforms) and the VCCS.

Waveforms are plain callables ``t -> value``; the factories :func:`dc`,
:func:`sine` and :func:`pulse` build the SPICE-standard shapes.  Passing a
bare number to a source is shorthand for ``dc(number)``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.spice.elements.base import Element, TwoTerminal
from repro.utils.validation import check_positive

__all__ = ["dc", "sine", "pulse", "VoltageSource", "CurrentSource", "Vccs"]

Waveform = Callable[[float], float]


def dc(value: float) -> Waveform:
    """Constant waveform."""
    value = float(value)

    def wave(t: float) -> float:
        return value

    wave.is_dc = True  # type: ignore[attr-defined]
    return wave


def sine(
    offset: float,
    amplitude: float,
    frequency_hz: float,
    *,
    delay: float = 0.0,
    phase_deg: float = 0.0,
) -> Waveform:
    """SPICE ``SIN(VO VA FREQ TD 0 PHASE)`` waveform (no damping term)."""
    check_positive("frequency_hz", frequency_hz)
    w = 2.0 * np.pi * frequency_hz
    phase = np.deg2rad(phase_deg)

    def wave(t: float) -> float:
        if t < delay:
            return offset + amplitude * np.sin(phase)
        return offset + amplitude * np.sin(w * (t - delay) + phase)

    return wave


def pulse(
    v1: float,
    v2: float,
    *,
    delay: float = 0.0,
    rise: float = 0.0,
    fall: float = 0.0,
    width: float,
    period: float | None = None,
) -> Waveform:
    """SPICE ``PULSE(V1 V2 TD TR TF PW PER)`` waveform.

    ``rise``/``fall`` of 0 are replaced by a very short ramp (1e-15 s) so
    the waveform stays single-valued for the integrator's Newton solver.
    """
    check_positive("width", width)
    rise = max(float(rise), 1e-15)
    fall = max(float(fall), 1e-15)

    def wave(t: float) -> float:
        if period is not None and t >= delay:
            t = delay + (t - delay) % period
        if t < delay:
            return v1
        t = t - delay
        if t < rise:
            return v1 + (v2 - v1) * t / rise
        t -= rise
        if t < width:
            return v2
        t -= width
        if t < fall:
            return v2 + (v1 - v2) * t / fall
        return v1

    return wave


def _as_waveform(value) -> Waveform:
    if callable(value):
        return value
    return dc(float(value))


class VoltageSource(TwoTerminal):
    """Independent voltage source with a branch-current unknown.

    The branch current is the current flowing from the + terminal through
    the source to the - terminal — SPICE's convention, so a source
    delivering power into the circuit reports a negative current.
    """

    n_branches = 1
    is_time_varying = True

    def __init__(self, name: str, node_plus: str, node_minus: str, waveform):
        super().__init__(name, node_plus, node_minus)
        self.waveform = _as_waveform(waveform)

    def value(self, t: float) -> float:
        """Source voltage at time ``t``."""
        return float(self.waveform(t))

    def stamp_conductance(self, g_matrix: np.ndarray) -> None:
        k = self.branch_indices[0]
        self._add(g_matrix, self.a, k, 1.0)
        self._add(g_matrix, self.b, k, -1.0)
        self._add(g_matrix, k, self.a, 1.0)
        self._add(g_matrix, k, self.b, -1.0)

    def stamp_sources(self, s_vector: np.ndarray, t: float) -> None:
        # Branch equation residual: v_a - v_b - V(t) = 0.
        self._addv(s_vector, self.branch_indices[0], -self.value(t))


class CurrentSource(TwoTerminal):
    """Independent current source; positive current flows a -> b through it.

    Equivalently: it *extracts* the programmed current from node ``a`` and
    delivers it into node ``b``.  To inject current INTO a node, make that
    node the second terminal (or program a negative value).
    """

    is_time_varying = True

    def __init__(self, name: str, node_a: str, node_b: str, waveform):
        super().__init__(name, node_a, node_b)
        self.waveform = _as_waveform(waveform)

    def value(self, t: float) -> float:
        """Source current at time ``t``."""
        return float(self.waveform(t))

    def stamp_sources(self, s_vector: np.ndarray, t: float) -> None:
        i = self.value(t)
        self._addv(s_vector, self.a, i)
        self._addv(s_vector, self.b, -i)


class Vccs(Element):
    """Voltage-controlled current source ``i(a->b) = gm * (v_c - v_d)``."""

    def __init__(
        self,
        name: str,
        node_a: str,
        node_b: str,
        ctrl_plus: str,
        ctrl_minus: str,
        gm: float,
    ):
        super().__init__(name, (node_a, node_b, ctrl_plus, ctrl_minus))
        self.gm = float(gm)

    def stamp_conductance(self, g_matrix: np.ndarray) -> None:
        a, b, c, d = self.node_indices
        self._add(g_matrix, a, c, self.gm)
        self._add(g_matrix, a, d, -self.gm)
        self._add(g_matrix, b, c, -self.gm)
        self._add(g_matrix, b, d, self.gm)
