"""Element interface and MNA stamping conventions.

The simulator assembles the system residual::

    F(x, dx/dt, t) = G x + C dx/dt + i_nl(x) + s(t) = 0

where ``x`` stacks the non-ground node voltages followed by the branch
currents (one per voltage source / inductor).  Conventions:

* KCL rows are written as "sum of currents *leaving* the node = 0";
* a two-terminal element conducting current ``i`` from its first node to
  its second contributes ``+i`` to the first node's row and ``-i`` to the
  second's;
* branch rows hold the element's constitutive equation (e.g.
  ``v_a - v_b - V(t) = 0`` for a voltage source), so the reported branch
  current of a voltage source is the current flowing *into its + terminal
  and out of its - terminal through the source* — matching SPICE's sign
  (a battery delivering power reports negative current).

Elements are created with node *names*; the circuit builder assigns the
integer indices (``assign``) before any stamping happens.  Ground maps to
index ``-1`` and stamps touching it are skipped.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["Element", "TwoTerminal", "GROUND"]

#: Index value the builder assigns to the ground node.
GROUND: int = -1


class Element(abc.ABC):
    """Base class for all circuit elements.

    Attributes
    ----------
    name:
        Unique instance name (``"R1"``, ``"Q2"`` ...).
    nodes:
        Node names in the element's terminal order.
    n_branches:
        Number of extra branch-current unknowns this element introduces.
    is_nonlinear:
        Whether :meth:`stamp_nonlinear` contributes.
    is_time_varying:
        Whether :meth:`stamp_sources` depends on ``t``.
    """

    n_branches: int = 0
    is_nonlinear: bool = False
    is_time_varying: bool = False

    def __init__(self, name: str, nodes: tuple[str, ...]):
        if not name:
            raise ValueError("element name must be non-empty")
        self.name = name
        self.nodes = tuple(str(n) for n in nodes)
        self._idx: tuple[int, ...] = ()
        self._branches: tuple[int, ...] = ()

    # -- wiring ---------------------------------------------------------------

    def assign(self, node_indices: tuple[int, ...], branch_indices: tuple[int, ...]) -> None:
        """Receive integer unknown indices from the circuit builder."""
        if len(node_indices) != len(self.nodes):
            raise ValueError(
                f"{self.name}: expected {len(self.nodes)} node indices, "
                f"got {len(node_indices)}"
            )
        if len(branch_indices) != self.n_branches:
            raise ValueError(
                f"{self.name}: expected {self.n_branches} branch indices, "
                f"got {len(branch_indices)}"
            )
        self._idx = tuple(node_indices)
        self._branches = tuple(branch_indices)

    @property
    def node_indices(self) -> tuple[int, ...]:
        """Assigned unknown indices of the terminals (-1 for ground)."""
        return self._idx

    @property
    def branch_indices(self) -> tuple[int, ...]:
        """Assigned indices of this element's branch-current unknowns."""
        return self._branches

    # -- stamps ---------------------------------------------------------------

    def stamp_conductance(self, g_matrix: np.ndarray) -> None:
        """Add the element's constant conductance entries to ``G``."""

    def stamp_reactance(self, c_matrix: np.ndarray) -> None:
        """Add the element's constant ``dx/dt``-multiplier entries to ``C``."""

    def stamp_sources(self, s_vector: np.ndarray, t: float) -> None:
        """Add the element's independent-source terms to ``s(t)``."""

    def stamp_nonlinear(self, x: np.ndarray, j_matrix: np.ndarray, i_vector: np.ndarray) -> None:
        """Add nonlinear currents to ``i_vector`` and their Jacobian to ``j_matrix``."""

    # -- helpers --------------------------------------------------------------

    @staticmethod
    def _add(matrix: np.ndarray, row: int, col: int, value: float) -> None:
        """Stamp helper skipping ground rows/columns."""
        if row != GROUND and col != GROUND:
            matrix[row, col] += value

    @staticmethod
    def _addv(vector: np.ndarray, row: int, value: float) -> None:
        """Vector stamp helper skipping the ground row."""
        if row != GROUND:
            vector[row] += value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name}, nodes={self.nodes})"


class TwoTerminal(Element):
    """Convenience base for two-terminal elements (a -> b current positive)."""

    def __init__(self, name: str, node_a: str, node_b: str):
        super().__init__(name, (node_a, node_b))

    @property
    def a(self) -> int:
        """Unknown index of the first terminal."""
        return self._idx[0]

    @property
    def b(self) -> int:
        """Unknown index of the second terminal."""
        return self._idx[1]

    def voltage_across(self, x: np.ndarray) -> float:
        """``v_a - v_b`` given the unknown vector."""
        va = x[self.a] if self.a != GROUND else 0.0
        vb = x[self.b] if self.b != GROUND else 0.0
        return float(va - vb)

    def stamp_pair(self, matrix: np.ndarray, g: float) -> None:
        """Standard conductance four-point stamp."""
        self._add(matrix, self.a, self.a, g)
        self._add(matrix, self.a, self.b, -g)
        self._add(matrix, self.b, self.a, -g)
        self._add(matrix, self.b, self.b, g)

    def stamp_current_pair(self, vector: np.ndarray, i: float) -> None:
        """Current ``i`` flowing a -> b through the element (KCL-leaving signs)."""
        self._addv(vector, self.a, i)
        self._addv(vector, self.b, -i)
