"""Ebers-Moll bipolar junction transistor.

This is the DC transport model NGSPICE falls back to when a ``.model``
card specifies only ``Is`` — exactly the situation in the paper's
diff-pair example ("the default NPN model in NGSPICE (with Is = 1e-12 A)
is used").  Capacitances are omitted (the paper's oscillators are fully
tank-dominated at ~0.5 MHz / 0.5 GHz with ideal transistors).

Transport formulation (NPN; PNP by polarity flip)::

    I_F  = Is (exp(v_BE / Vt) - 1)
    I_R  = Is (exp(v_BC / Vt) - 1)
    I_C  =  I_F - I_R - I_R / beta_R
    I_B  =  I_F / beta_F + I_R / beta_R
    I_E  = -(I_C + I_B)

Each junction exponential is limited (see
:func:`repro.spice.elements.diode.limited_exponential`) so Newton stays
finite from any starting point.
"""

from __future__ import annotations

import numpy as np

from repro.spice.elements.base import Element
from repro.spice.elements.diode import limited_exponential
from repro.utils.validation import check_positive

__all__ = ["Bjt"]


class Bjt(Element):
    """Ebers-Moll BJT; terminals ``(collector, base, emitter)``.

    Parameters
    ----------
    i_s:
        Transport saturation current.
    beta_f, beta_r:
        Forward / reverse current gains (NGSPICE defaults 100 / 1).
    v_t:
        Thermal voltage.
    polarity:
        ``"npn"`` or ``"pnp"``.
    """

    is_nonlinear = True

    def __init__(
        self,
        name: str,
        collector: str,
        base: str,
        emitter: str,
        i_s: float = 1e-12,
        beta_f: float = 100.0,
        beta_r: float = 1.0,
        v_t: float = 0.025,
        polarity: str = "npn",
    ):
        super().__init__(name, (collector, base, emitter))
        self.i_s = check_positive(f"{name}.i_s", i_s)
        self.beta_f = check_positive(f"{name}.beta_f", beta_f)
        self.beta_r = check_positive(f"{name}.beta_r", beta_r)
        self.v_t = check_positive(f"{name}.v_t", v_t)
        if polarity not in ("npn", "pnp"):
            raise ValueError(f"polarity must be 'npn' or 'pnp', got {polarity!r}")
        self.sign = 1.0 if polarity == "npn" else -1.0

    def _terminal_voltage(self, x: np.ndarray, idx: int) -> float:
        return float(x[idx]) if idx >= 0 else 0.0

    def currents(self, v_be: float, v_bc: float):
        """Terminal currents and the 2x2 Jacobian w.r.t. (v_be, v_bc).

        Returns ``(i_c, i_b, partials)`` with
        ``partials = (dIc/dVbe, dIc/dVbc, dIb/dVbe, dIb/dVbc)``.
        """
        s = self.sign
        ef, def_ = limited_exponential(s * v_be, self.v_t)
        er, der = limited_exponential(s * v_bc, self.v_t)
        i_f = self.i_s * (ef - 1.0)
        i_r = self.i_s * (er - 1.0)
        di_f = self.i_s * def_ * s
        di_r = self.i_s * der * s
        i_c = s * (i_f - i_r - i_r / self.beta_r)
        i_b = s * (i_f / self.beta_f + i_r / self.beta_r)
        d_ic_dbe = s * di_f
        d_ic_dbc = s * (-di_r - di_r / self.beta_r)
        d_ib_dbe = s * di_f / self.beta_f
        d_ib_dbc = s * di_r / self.beta_r
        return i_c, i_b, (d_ic_dbe, d_ic_dbc, d_ib_dbe, d_ib_dbc)

    def stamp_nonlinear(self, x: np.ndarray, j_matrix: np.ndarray, i_vector: np.ndarray) -> None:
        c, b, e = self.node_indices
        v_c = self._terminal_voltage(x, c)
        v_b = self._terminal_voltage(x, b)
        v_e = self._terminal_voltage(x, e)
        i_c, i_b, (dc_be, dc_bc, db_be, db_bc) = self.currents(v_b - v_e, v_b - v_c)
        i_e = -(i_c + i_b)
        # KCL: positive currents flow INTO the device at C and B, out at E;
        # "leaving the node" means +i_c at the collector node, etc.
        self._addv(i_vector, c, i_c)
        self._addv(i_vector, b, i_b)
        self._addv(i_vector, e, i_e)
        # Jacobian: derivative of each terminal current w.r.t. each node
        # voltage, via v_be = v_b - v_e, v_bc = v_b - v_c.
        de_be = -(dc_be + db_be)
        de_bc = -(dc_bc + db_bc)
        for row, d_be, d_bc in ((c, dc_be, dc_bc), (b, db_be, db_bc), (e, de_be, de_bc)):
            self._add(j_matrix, row, b, d_be + d_bc)
            self._add(j_matrix, row, e, -d_be)
            self._add(j_matrix, row, c, -d_bc)
