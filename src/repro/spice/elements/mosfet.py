"""Square-law (SPICE level-1) MOSFET.

Enough transistor to build the modern RFIC incarnation of the paper's
cross-coupled oscillator — an NMOS negative-gm pair — and extract its
``i = f(v)`` the same way as the BJT cell.  Channel regions::

    cutoff:      v_gs <= v_th                 i_d = 0
    triode:      v_ds <  v_gs - v_th          i_d = k [(v_gs-v_th) v_ds - v_ds^2/2] (1 + lambda v_ds)
    saturation:  v_ds >= v_gs - v_th          i_d = (k/2)(v_gs-v_th)^2 (1 + lambda v_ds)

Negative ``v_ds`` is handled by the usual source/drain swap symmetry.
The piecewise law is C1 at both boundaries (the triode/saturation join is
exact; cutoff joins with zero current and zero slope), which keeps Newton
happy without junction-style limiting.
"""

from __future__ import annotations

import numpy as np

from repro.spice.elements.base import Element
from repro.utils.validation import check_positive

__all__ = ["Mosfet"]


class Mosfet(Element):
    """Level-1 MOSFET; terminals ``(drain, gate, source)``.

    Parameters
    ----------
    k:
        Transconductance factor ``KP * W/L`` in A/V^2.
    v_th:
        Threshold voltage (positive number for both polarities; the sign
        is applied internally for PMOS).
    lam:
        Channel-length modulation, 1/V.
    polarity:
        ``"nmos"`` or ``"pmos"``.
    """

    is_nonlinear = True

    def __init__(
        self,
        name: str,
        drain: str,
        gate: str,
        source: str,
        k: float = 2e-4,
        v_th: float = 0.5,
        lam: float = 0.0,
        polarity: str = "nmos",
    ):
        super().__init__(name, (drain, gate, source))
        self.k = check_positive(f"{name}.k", k)
        self.v_th = float(v_th)
        self.lam = check_positive(f"{name}.lambda", lam, strict=False)
        if polarity not in ("nmos", "pmos"):
            raise ValueError(f"polarity must be 'nmos' or 'pmos', got {polarity!r}")
        self.sign = 1.0 if polarity == "nmos" else -1.0

    def drain_current(self, v_gs: float, v_ds: float) -> tuple[float, float, float]:
        """``(i_d, gm, gds)`` at the given terminal voltages.

        ``i_d`` flows drain -> source for positive NMOS operation.
        """
        def forward(v_gs_n: float, v_ds_n: float) -> tuple[float, float, float]:
            """Normal-mode (v_ds >= 0) square law with derivatives."""
            v_ov = v_gs_n - self.v_th
            if v_ov <= 0.0:
                return 0.0, 0.0, 0.0
            if v_ds_n < v_ov:
                clm = 1.0 + self.lam * v_ds_n
                core = v_ov * v_ds_n - 0.5 * v_ds_n * v_ds_n
                i = self.k * core * clm
                gm_f = self.k * v_ds_n * clm
                gds_f = self.k * (v_ov - v_ds_n) * clm + self.k * core * self.lam
                return i, gm_f, gds_f
            clm = 1.0 + self.lam * v_ds_n
            i = 0.5 * self.k * v_ov * v_ov * clm
            gm_f = self.k * v_ov * clm
            gds_f = 0.5 * self.k * v_ov * v_ov * self.lam
            return i, gm_f, gds_f

        s = self.sign
        v_gs_n, v_ds_n = s * v_gs, s * v_ds
        if v_ds_n >= 0.0:
            i_n, gm, gds = forward(v_gs_n, v_ds_n)
        else:
            # Source/drain swap: i(v_gs, v_ds) = -i_fwd(v_gs - v_ds, -v_ds);
            # chain rule gives gm = -gm_f, gds = gm_f + gds_f.
            i_f, gm_f, gds_f = forward(v_gs_n - v_ds_n, -v_ds_n)
            i_n = -i_f
            gm = -gm_f
            gds = gm_f + gds_f
        # Polarity: i(v) = s * i_n(s v) leaves the conductances unsigned.
        return s * i_n, gm, gds

    def stamp_nonlinear(self, x: np.ndarray, j_matrix: np.ndarray, i_vector: np.ndarray) -> None:
        d, g, s = self.node_indices
        v_d = float(x[d]) if d >= 0 else 0.0
        v_g = float(x[g]) if g >= 0 else 0.0
        v_s = float(x[s]) if s >= 0 else 0.0
        i_d, gm, gds = self.drain_current(v_g - v_s, v_d - v_s)
        # Current enters the drain, leaves the source; the gate draws none.
        self._addv(i_vector, d, i_d)
        self._addv(i_vector, s, -i_d)
        # d i_d / d v_d = gds ; / d v_g = gm ; / d v_s = -(gm + gds).
        for row, sign_row in ((d, 1.0), (s, -1.0)):
            self._add(j_matrix, row, d, sign_row * gds)
            self._add(j_matrix, row, g, sign_row * gm)
            self._add(j_matrix, row, s, sign_row * -(gm + gds))
