"""Circuit element models and their MNA stamps."""

from repro.spice.elements.base import Element, TwoTerminal
from repro.spice.elements.passives import (
    Capacitor,
    Inductor,
    MutualInductance,
    Resistor,
)
from repro.spice.elements.sources import (
    CurrentSource,
    VoltageSource,
    Vccs,
    dc,
    pulse,
    sine,
)
from repro.spice.elements.diode import Diode
from repro.spice.elements.bjt import Bjt
from repro.spice.elements.mosfet import Mosfet
from repro.spice.elements.tunnel import TunnelDiodeElement
from repro.spice.elements.behavioral import BehavioralCurrentSource

__all__ = [
    "Element",
    "TwoTerminal",
    "Resistor",
    "Capacitor",
    "Inductor",
    "MutualInductance",
    "VoltageSource",
    "CurrentSource",
    "Vccs",
    "dc",
    "sine",
    "pulse",
    "Diode",
    "Bjt",
    "Mosfet",
    "TunnelDiodeElement",
    "BehavioralCurrentSource",
]
