"""Modified nodal analysis system assembly.

The assembled system is the residual form every analysis consumes::

    F(x, dx/dt, t) = G x + C dx/dt + i_nl(x) + s(t) = 0

* ``G``  — constant conductance/incidence matrix,
* ``C``  — constant ``dx/dt`` multiplier (capacitances, -L on inductor
  branch rows),
* ``i_nl(x)`` — nonlinear device currents, with Jacobian ``J_nl(x)``,
* ``s(t)``    — independent-source terms.

Unknown ordering: non-ground node voltages (circuit appearance order),
then branch currents.  Dense numpy matrices — the paper's circuits have a
handful of nodes; factorisation cost is irrelevant next to Newton's device
evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MnaSystem"]


@dataclass
class MnaSystem:
    """Assembled MNA matrices and index maps for one circuit.

    Attributes
    ----------
    circuit:
        The source :class:`repro.spice.circuit.Circuit` (elements hold
        their assigned indices).
    node_index:
        Node name -> unknown index.
    branch_index:
        Element name -> branch-current unknown index (voltage sources and
        inductors).
    size:
        Total unknown count.
    """

    circuit: "object"
    node_index: dict[str, int]
    branch_index: dict[str, int]
    size: int

    def __post_init__(self) -> None:
        n = self.size
        self.g_matrix = np.zeros((n, n))
        self.c_matrix = np.zeros((n, n))
        self._nonlinear = [el for el in self.circuit.elements if el.is_nonlinear]
        self._sources = [el for el in self.circuit.elements if el.is_time_varying]
        for el in self.circuit.elements:
            el.stamp_conductance(self.g_matrix)
            el.stamp_reactance(self.c_matrix)

    # -- evaluation -----------------------------------------------------------

    def source_vector(self, t: float) -> np.ndarray:
        """``s(t)`` — independent-source contributions at time ``t``."""
        s = np.zeros(self.size)
        for el in self._sources:
            el.stamp_sources(s, t)
        return s

    def nonlinear(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(i_nl(x), J_nl(x))`` over all nonlinear devices."""
        i = np.zeros(self.size)
        j = np.zeros((self.size, self.size))
        for el in self._nonlinear:
            el.stamp_nonlinear(x, j, i)
        return i, j

    def residual(self, x: np.ndarray, xdot: np.ndarray, t: float) -> np.ndarray:
        """Full residual ``F(x, dx/dt, t)``."""
        i_nl, _ = self.nonlinear(x)
        return self.g_matrix @ x + self.c_matrix @ xdot + i_nl + self.source_vector(t)

    def resistive_jacobian(self, x: np.ndarray) -> np.ndarray:
        """``G + J_nl(x)`` — the Jacobian of the memoryless part."""
        _, j_nl = self.nonlinear(x)
        return self.g_matrix + j_nl

    # -- accessors ------------------------------------------------------------

    def voltage(self, x: np.ndarray, node: str) -> float:
        """Node voltage from an unknown vector (ground reads 0)."""
        from repro.spice.circuit import GROUND_NAMES

        if node in GROUND_NAMES:
            return 0.0
        return float(x[self.node_index[node]])

    def branch_current(self, x: np.ndarray, element_name: str) -> float:
        """Branch current of a voltage source or inductor."""
        return float(x[self.branch_index[element_name]])

    @property
    def n_nodes(self) -> int:
        """Number of non-ground nodes."""
        return len(self.node_index)
