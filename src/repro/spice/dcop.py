"""DC operating point: Newton with gmin and source stepping fallbacks.

At DC all ``dx/dt`` terms vanish, so the system is
``G x + i_nl(x) + s(0) = 0``.  Plain Newton from ``x = 0`` handles most
circuits; the two classic continuation strategies cover the rest:

* **gmin stepping** — add a shunt conductance ``gmin`` from every node to
  ground, solve, and relax ``gmin`` geometrically towards zero reusing
  each solution as the next start;
* **source stepping** — scale all independent sources by ``alpha``, ramp
  ``alpha`` from ~0 to 1.

Both are standard SPICE practice; the negative-resistance bias points in
this library's circuits exercise them for real (a tunnel diode's NDR
region makes the plain iteration oscillate from a cold start).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.spice.circuit import Circuit
from repro.spice.mna import MnaSystem
from repro.spice.solver import (
    ConvergenceError,
    NewtonResult,
    SingularCircuitError,
    newton_solve,
)

#: Failures that continuation (gmin / source stepping) can rescue: plain
#: divergence, and structural singularity from devices that are all "off"
#: at the cold start (e.g. cut-off MOSFET stacks floating a node).
_RECOVERABLE = (ConvergenceError, SingularCircuitError)

__all__ = ["OperatingPoint", "dc_operating_point"]


@dataclass
class OperatingPoint:
    """Solved DC state of a circuit."""

    system: MnaSystem
    x: np.ndarray
    strategy: str
    iterations: int

    def voltage(self, node: str) -> float:
        """DC voltage of a node."""
        return self.system.voltage(self.x, node)

    def branch_current(self, element_name: str) -> float:
        """DC branch current of a voltage source or inductor."""
        return self.system.branch_current(self.x, element_name)


def _newton_dc(system: MnaSystem, x0: np.ndarray, gmin: float, alpha: float, **kw) -> NewtonResult:
    n_nodes = system.n_nodes
    s0 = system.source_vector(0.0) * alpha
    gmin_diag = np.zeros((system.size, system.size))
    if gmin > 0.0:
        gmin_diag[:n_nodes, :n_nodes] = np.eye(n_nodes) * gmin

    def residual(x):
        i_nl, _ = system.nonlinear(x)
        return (system.g_matrix + gmin_diag) @ x + i_nl + s0

    def jacobian(x):
        return system.resistive_jacobian(x) + gmin_diag

    return newton_solve(residual, jacobian, x0, **kw)


def dc_operating_point(
    circuit: Circuit | MnaSystem,
    *,
    x0: np.ndarray | None = None,
    max_iter: int = 120,
) -> OperatingPoint:
    """Solve the DC operating point, escalating through continuation.

    Parameters
    ----------
    circuit:
        A circuit (built automatically) or a pre-built MNA system.
    x0:
        Optional warm start (DC sweeps pass the previous point).
    max_iter:
        Newton budget per continuation stage.
    """
    system = circuit if isinstance(circuit, MnaSystem) else circuit.build()
    start = np.zeros(system.size) if x0 is None else np.asarray(x0, dtype=float)

    # Stage 1: plain Newton.
    try:
        result = _newton_dc(system, start, gmin=0.0, alpha=1.0, max_iter=max_iter)
        return OperatingPoint(system, result.x, "newton", result.iterations)
    except _RECOVERABLE:
        pass

    # Stage 2: gmin stepping.
    x = start
    total = 0
    try:
        for gmin in (1e-2, 1e-3, 1e-4, 1e-6, 1e-8, 1e-10, 0.0):
            result = _newton_dc(system, x, gmin=gmin, alpha=1.0, max_iter=max_iter)
            x = result.x
            total += result.iterations
        return OperatingPoint(system, x, "gmin-stepping", total)
    except _RECOVERABLE:
        pass

    # Stage 3: source stepping (with a whisper of gmin so all-off device
    # stacks cannot float nodes mid-ramp), then a clean final solve.
    x = np.zeros(system.size)
    total = 0
    for alpha in np.linspace(0.05, 1.0, 20):
        result = _newton_dc(
            system, x, gmin=1e-9, alpha=float(alpha), max_iter=max_iter
        )
        x = result.x
        total += result.iterations
    result = _newton_dc(system, x, gmin=0.0, alpha=1.0, max_iter=max_iter)
    total += result.iterations
    return OperatingPoint(system, result.x, "source-stepping", total)
