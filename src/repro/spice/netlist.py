"""SPICE-ish netlist parser.

Supports the subset needed to express the paper's circuits as decks::

    * diff-pair oscillator
    VCC vcc 0 DC 12
    RL  vcc ncl 4k
    Q1  ncl ncr e  npn1
    Q2  ncr ncl e  npn1
    IEE e   0   DC 100u
    L1  ncl ncr 100u
    C1  ncl ncr 1n
    .model npn1 NPN(is=1e-12 bf=100 br=1)
    .tran 30n 2m
    .end

Grammar notes (all case-insensitive):

* first line is the title; ``*`` starts a comment; ``+`` continues the
  previous line; everything after ``.end`` is ignored;
* element letter selects the device: R, C, L, V, I, D, Q, M, G (VCCS),
  K (mutual inductance), X (subcircuit instance);
* V/I sources accept ``DC <v>``, ``SIN(vo va freq [td phase])``,
  ``PULSE(v1 v2 td tr tf pw [per])``, or a bare number;
* ``.model <name> NPN|PNP|NMOS|PMOS|D|TUNNEL(key=value ...)``;
* ``.subckt <name> <ports...> ... .ends`` definitions expand at parse
  time (internal nodes private per instance, nesting to depth 8);
* ``.ic v(node)=value`` entries land in
  :attr:`ParsedNetlist.initial_conditions`;
* analysis cards ``.tran``, ``.dc``, ``.ac`` are collected as directives
  for the caller to run — the parser never runs analyses itself.

See ``docs/NETLIST.md`` for the full dialect reference.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.nonlin.tunnel_diode import TunnelDiode
from repro.spice.circuit import Circuit
from repro.spice.elements.sources import dc, pulse, sine
from repro.utils.units import parse_value

__all__ = ["ParsedNetlist", "NetlistError", "parse_netlist"]


class NetlistError(ValueError):
    """Malformed netlist; message carries the line number and content."""


@dataclass
class AnalysisDirective:
    """One ``.tran`` / ``.dc`` / ``.ac`` card, parsed into fields."""

    kind: str
    params: dict = field(default_factory=dict)


@dataclass
class ParsedNetlist:
    """Parse result: the circuit plus any analysis directives.

    Attributes
    ----------
    initial_conditions:
        Node -> voltage from ``.ic`` cards; pass to
        :func:`repro.spice.transient.transient` via its ``ic`` argument.
    """

    circuit: Circuit
    analyses: list[AnalysisDirective] = field(default_factory=list)
    models: dict = field(default_factory=dict)
    initial_conditions: dict = field(default_factory=dict)


_FUNC_RE = re.compile(r"^(sin|pulse)\((.*)\)$", re.IGNORECASE)
_IC_RE = re.compile(r"^v\(([^)]+)\)=(\S+)$", re.IGNORECASE)
_MODEL_RE = re.compile(
    r"^\.model\s+(\S+)\s+(npn|pnp|nmos|pmos|d|tunnel)\s*\((.*)\)\s*$", re.IGNORECASE
)


def _logical_lines(text: str, *, skip_first: int = 0):
    """Join '+' continuations, strip comments, yield (lineno, line)."""
    merged: list[tuple[int, str]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        if lineno <= skip_first:
            continue
        line = raw.split(";")[0].rstrip()
        if not line.strip():
            continue
        if line.lstrip().startswith("*"):
            continue
        if line.lstrip().startswith("+"):
            if not merged:
                raise NetlistError(f"line {lineno}: continuation with no previous line")
            prev_no, prev = merged[-1]
            merged[-1] = (prev_no, prev + " " + line.lstrip()[1:].strip())
        else:
            merged.append((lineno, line.strip()))
    return merged


def _split_params(body: str) -> dict:
    """Parse ``key=value key=value`` model parameter bodies."""
    params = {}
    for token in re.split(r"[\s,]+", body.strip()):
        if not token:
            continue
        if "=" not in token:
            raise NetlistError(f"model parameter {token!r} is not key=value")
        key, value = token.split("=", 1)
        params[key.lower()] = parse_value(value)
    return params


def _parse_waveform(tokens: list[str], lineno: int):
    """Parse the source-value part of a V/I line."""
    if not tokens:
        raise NetlistError(f"line {lineno}: source needs a value")
    joined = " ".join(tokens)
    func = _FUNC_RE.match(joined.strip())
    if func:
        name = func.group(1).lower()
        args = [parse_value(tok) for tok in re.split(r"[\s,]+", func.group(2).strip()) if tok]
        if name == "sin":
            if len(args) < 3:
                raise NetlistError(f"line {lineno}: SIN needs (VO VA FREQ ...)")
            vo, va, freq = args[0], args[1], args[2]
            td = args[3] if len(args) > 3 else 0.0
            ph = args[5] if len(args) > 5 else 0.0
            return sine(vo, va, freq, delay=td, phase_deg=ph)
        if len(args) < 6:
            raise NetlistError(f"line {lineno}: PULSE needs (V1 V2 TD TR TF PW [PER])")
        per = args[6] if len(args) > 6 else None
        return pulse(
            args[0], args[1], delay=args[2], rise=args[3], fall=args[4],
            width=args[5], period=per,
        )
    if tokens[0].lower() == "dc":
        if len(tokens) < 2:
            raise NetlistError(f"line {lineno}: DC needs a value")
        return dc(parse_value(tokens[1]))
    return dc(parse_value(tokens[0]))


def _tunnel_model(params: dict) -> TunnelDiode:
    return TunnelDiode(
        i_s=params.get("is", 1e-12),
        eta=params.get("eta", 1.0),
        v_th=params.get("vth", 0.025),
        m=params.get("m", 2.0),
        v0=params.get("v0", 0.2),
        r0=params.get("r0", 1000.0),
    )


#: How many source tokens each element letter consumes as *node names*
#: (the rest are values/models and pass through expansion untouched).
_NODE_COUNT = {
    "R": 2, "C": 2, "L": 2, "V": 2, "I": 2, "D": 2,
    "Q": 3, "M": 3, "G": 4,
}


def _expand_instance(lineno, tokens, subckts, depth):
    """Expand one ``X`` line into concrete element lines.

    Internal nodes become ``<node>.<instance>``, element names become
    ``<name>_<instance>`` (keeping the element letter first so dispatch
    still works), ports map to the instance's connection nodes, and
    nested instances recurse with a depth cap.
    """
    if depth > 8:
        raise NetlistError(f"line {lineno}: subcircuit nesting deeper than 8")
    inst = tokens[0]
    if len(tokens) < 3:
        raise NetlistError(f"line {lineno}: X line needs nodes and a subckt name")
    sub_name = tokens[-1].lower()
    conn = tokens[1:-1]
    if sub_name not in subckts:
        raise NetlistError(f"line {lineno}: unknown subcircuit {sub_name!r}")
    ports, body = subckts[sub_name]
    if len(conn) != len(ports):
        raise NetlistError(
            f"line {lineno}: {inst} connects {len(conn)} nodes but "
            f".subckt {sub_name} declares {len(ports)} ports"
        )
    node_map = {port.lower(): node for port, node in zip(ports, conn)}

    def map_node(node: str) -> str:
        lower = node.lower()
        if lower in ("0", "gnd"):
            return node
        if lower in node_map:
            return node_map[lower]
        return f"{node}.{inst}"

    out: list[tuple[int, list[str]]] = []
    for sub_lineno, sub_tokens in body:
        letter = sub_tokens[0][0].upper()
        renamed = [f"{sub_tokens[0]}_{inst}"]
        if letter == "X":
            renamed += [map_node(n) for n in sub_tokens[1:-1]] + [sub_tokens[-1]]
            out.extend(_expand_instance(sub_lineno, renamed, subckts, depth + 1))
            continue
        if letter == "K":
            # K references element names, not nodes.
            renamed += [f"{t}_{inst}" for t in sub_tokens[1:3]] + sub_tokens[3:]
        else:
            n_nodes = _NODE_COUNT.get(letter)
            if n_nodes is None:
                raise NetlistError(
                    f"line {sub_lineno}: unsupported element {sub_tokens[0]!r} "
                    "inside .subckt"
                )
            # MOSFETs may carry an optional 4th (bulk) node.
            if letter == "M" and len(sub_tokens) > 5:
                n_nodes = 4
            renamed += [map_node(n) for n in sub_tokens[1 : 1 + n_nodes]]
            renamed += sub_tokens[1 + n_nodes :]
        out.append((sub_lineno, renamed))
    return out


def parse_netlist(text: str) -> ParsedNetlist:
    """Parse a netlist deck into a :class:`ParsedNetlist`.

    Raises
    ------
    NetlistError
        On any malformed line, with the line number in the message.
    """
    raw_lines = text.splitlines()
    if not raw_lines or not any(line.strip() for line in raw_lines):
        raise NetlistError("empty netlist")
    # SPICE convention: the first RAW line is always the title — even when
    # it looks like a comment or an element line.
    title = raw_lines[0].strip().lstrip("*").strip()
    body = _logical_lines(text, skip_first=1)

    circuit = Circuit(title)
    models: dict[str, tuple[str, dict]] = {}
    analyses: list[AnalysisDirective] = []
    initial_conditions: dict[str, float] = {}
    # Device lines referencing models are deferred until models are known.
    deferred: list[tuple[int, list[str]]] = []
    # Subcircuit definitions: name -> (ports, [(lineno, tokens), ...]).
    subckts: dict[str, tuple[list[str], list[tuple[int, list[str]]]]] = {}
    current_subckt: str | None = None

    for lineno, line in body:
        lower = line.lower()
        if lower == ".end":
            break
        if lower.startswith(".subckt"):
            if current_subckt is not None:
                raise NetlistError(f"line {lineno}: nested .subckt not supported")
            tokens = line.split()
            if len(tokens) < 3:
                raise NetlistError(f"line {lineno}: .subckt needs a name and ports")
            current_subckt = tokens[1].lower()
            subckts[current_subckt] = (tokens[2:], [])
            continue
        if lower.startswith(".ends"):
            if current_subckt is None:
                raise NetlistError(f"line {lineno}: .ends without .subckt")
            current_subckt = None
            continue
        if current_subckt is not None:
            if lower.startswith("."):
                raise NetlistError(
                    f"line {lineno}: cards are not allowed inside .subckt"
                )
            subckts[current_subckt][1].append((lineno, line.split()))
            continue
        if lower.startswith(".ic"):
            for token in line.split()[1:]:
                match = _IC_RE.match(token)
                if not match:
                    raise NetlistError(
                        f"line {lineno}: .ic entries look like v(node)=value, "
                        f"got {token!r}"
                    )
                initial_conditions[match.group(1)] = parse_value(match.group(2))
            continue
        if lower.startswith(".model"):
            match = _MODEL_RE.match(line)
            if not match:
                raise NetlistError(f"line {lineno}: bad .model card: {line!r}")
            name, kind, params_body = match.groups()
            models[name.lower()] = (kind.lower(), _split_params(params_body))
            continue
        if lower.startswith(".tran"):
            tokens = line.split()
            if len(tokens) < 3:
                raise NetlistError(f"line {lineno}: .tran needs tstep tstop")
            analyses.append(
                AnalysisDirective(
                    "tran",
                    {"tstep": parse_value(tokens[1]), "tstop": parse_value(tokens[2])},
                )
            )
            continue
        if lower.startswith(".dc"):
            tokens = line.split()
            if len(tokens) < 5:
                raise NetlistError(f"line {lineno}: .dc needs source start stop step")
            analyses.append(
                AnalysisDirective(
                    "dc",
                    {
                        "source": tokens[1],
                        "start": parse_value(tokens[2]),
                        "stop": parse_value(tokens[3]),
                        "step": parse_value(tokens[4]),
                    },
                )
            )
            continue
        if lower.startswith(".ac"):
            tokens = line.split()
            if len(tokens) < 5:
                raise NetlistError(f"line {lineno}: .ac needs type npoints fstart fstop")
            analyses.append(
                AnalysisDirective(
                    "ac",
                    {
                        "sweep": tokens[1].lower(),
                        "n": int(parse_value(tokens[2])),
                        "fstart": parse_value(tokens[3]),
                        "fstop": parse_value(tokens[4]),
                    },
                )
            )
            continue
        if lower.startswith("."):
            raise NetlistError(f"line {lineno}: unsupported card {line.split()[0]!r}")
        deferred.append((lineno, line.split()))

    if current_subckt is not None:
        raise NetlistError(f".subckt {current_subckt!r} is missing its .ends")

    # Expand subcircuit instances (X lines) into concrete element lines.
    expanded: list[tuple[int, list[str]]] = []
    for lineno, tokens in deferred:
        if tokens[0][0].upper() == "X":
            expanded.extend(_expand_instance(lineno, tokens, subckts, depth=0))
        else:
            expanded.append((lineno, tokens))
    deferred = expanded

    # K (mutual inductance) lines reference inductors by name, so they are
    # handled after every element line.
    coupling_lines = [(n, t) for n, t in deferred if t[0][0].upper() == "K"]
    deferred = [(n, t) for n, t in deferred if t[0][0].upper() != "K"]

    for lineno, tokens in deferred:
        name = tokens[0]
        letter = name[0].upper()
        try:
            if letter == "R":
                circuit.add_resistor(name, tokens[1], tokens[2], parse_value(tokens[3]))
            elif letter == "C":
                circuit.add_capacitor(name, tokens[1], tokens[2], parse_value(tokens[3]))
            elif letter == "L":
                circuit.add_inductor(name, tokens[1], tokens[2], parse_value(tokens[3]))
            elif letter == "V":
                circuit.add_voltage_source(
                    name, tokens[1], tokens[2], _parse_waveform(tokens[3:], lineno)
                )
            elif letter == "I":
                circuit.add_current_source(
                    name, tokens[1], tokens[2], _parse_waveform(tokens[3:], lineno)
                )
            elif letter == "G":
                circuit.add_vccs(
                    name, tokens[1], tokens[2], tokens[3], tokens[4],
                    parse_value(tokens[5]),
                )
            elif letter == "D":
                model_name = tokens[3].lower() if len(tokens) > 3 else None
                kind, params = models.get(model_name, ("d", {})) if model_name else ("d", {})
                if kind == "tunnel":
                    circuit.add_tunnel_diode(
                        name, tokens[1], tokens[2], _tunnel_model(params)
                    )
                else:
                    circuit.add_diode(
                        name, tokens[1], tokens[2],
                        i_s=params.get("is", 1e-12),
                        eta=params.get("n", params.get("eta", 1.0)),
                    )
            elif letter == "M":
                # M<name> d g s [b] [model] — the bulk node, when present,
                # is accepted and ignored (no body effect in level 1).
                model_token = None
                if len(tokens) == 5:
                    model_token = tokens[4]
                elif len(tokens) >= 6:
                    model_token = tokens[5]
                kind, params = (
                    models.get(model_token.lower(), ("nmos", {}))
                    if model_token
                    else ("nmos", {})
                )
                if kind not in ("nmos", "pmos"):
                    raise NetlistError(
                        f"line {lineno}: model {model_token!r} is not a MOSFET model"
                    )
                circuit.add_mosfet(
                    name, tokens[1], tokens[2], tokens[3],
                    k=params.get("kp", 2e-4),
                    v_th=params.get("vto", 0.5),
                    lam=params.get("lambda", 0.0),
                    polarity=kind,
                )
            elif letter == "Q":
                model_name = tokens[4].lower() if len(tokens) > 4 else None
                kind, params = (
                    models.get(model_name, ("npn", {})) if model_name else ("npn", {})
                )
                if kind not in ("npn", "pnp"):
                    raise NetlistError(
                        f"line {lineno}: model {model_name!r} is not a BJT model"
                    )
                circuit.add_bjt(
                    name, tokens[1], tokens[2], tokens[3],
                    i_s=params.get("is", 1e-12),
                    beta_f=params.get("bf", 100.0),
                    beta_r=params.get("br", 1.0),
                    polarity=kind,
                )
            else:
                raise NetlistError(
                    f"line {lineno}: unsupported element letter {letter!r}"
                )
        except NetlistError:
            raise
        except (IndexError, ValueError) as exc:
            raise NetlistError(
                f"line {lineno}: cannot parse {' '.join(tokens)!r}: {exc}"
            ) from exc

    for lineno, tokens in coupling_lines:
        try:
            circuit.add_mutual(
                tokens[0], tokens[1], tokens[2], parse_value(tokens[3])
            )
        except (IndexError, ValueError, KeyError, TypeError) as exc:
            raise NetlistError(
                f"line {lineno}: cannot parse coupling {' '.join(tokens)!r}: {exc}"
            ) from exc

    return ParsedNetlist(
        circuit=circuit,
        analyses=analyses,
        models=models,
        initial_conditions=initial_conditions,
    )
