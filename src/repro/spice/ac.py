"""Small-signal AC analysis.

Linearises the circuit at its DC operating point and solves the phasor
system ``(G + J_nl(x_op) + j w C) X = -S_ac`` at each requested frequency,
where ``S_ac`` holds unit-amplitude stamps of the sources marked as AC
drives.

Primary use here: pre-characterising the transfer function ``H(jw)`` of an
arbitrary passive tank topology for :class:`repro.tank.general.GeneralTank`
— drive the tank port with a 1 A AC current source and the port voltage
phasor *is* the transimpedance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.spice.circuit import Circuit
from repro.spice.dcop import dc_operating_point
from repro.spice.elements.sources import CurrentSource, VoltageSource
from repro.utils.validation import check_positive

__all__ = ["AcResult", "ac_analysis"]


@dataclass
class AcResult:
    """Phasor solutions over a frequency sweep.

    Attributes
    ----------
    w:
        Angular frequencies, rad/s.
    solutions:
        Complex unknown vectors, shape ``(n_freq, size)``.
    """

    system: "object"
    w: np.ndarray
    solutions: np.ndarray

    def voltage(self, node: str) -> np.ndarray:
        """Complex node-voltage phasor across the sweep."""
        from repro.spice.circuit import GROUND_NAMES

        if node in GROUND_NAMES:
            return np.zeros(self.w.size, dtype=complex)
        idx = self.system.node_index[node]
        return self.solutions[:, idx]

    def transimpedance(self, node: str) -> np.ndarray:
        """Alias for :meth:`voltage` when the AC drive is a 1 A source."""
        return self.voltage(node)


def ac_analysis(
    circuit: Circuit,
    ac_source: str,
    w: np.ndarray,
    *,
    magnitude: float = 1.0,
) -> AcResult:
    """Run a small-signal frequency sweep.

    Parameters
    ----------
    circuit:
        The circuit; its DC operating point is solved first.
    ac_source:
        Name of the independent source treated as the (only) AC drive
        with the given ``magnitude`` and zero phase.
    w:
        Angular frequencies.
    magnitude:
        AC drive amplitude.
    """
    check_positive("magnitude", magnitude)
    w = np.atleast_1d(np.asarray(w, dtype=float))
    system = circuit.build()
    op = dc_operating_point(system)
    jac = system.resistive_jacobian(op.x)

    source = circuit.element(ac_source)
    rhs = np.zeros(system.size, dtype=complex)
    if isinstance(source, VoltageSource):
        rhs[system.branch_index[ac_source]] = magnitude
    elif isinstance(source, CurrentSource):
        a, b = source.node_indices
        if a >= 0:
            rhs[a] -= magnitude
        if b >= 0:
            rhs[b] += magnitude
    else:
        raise TypeError(
            f"{ac_source!r} is a {type(source).__name__}; "
            "the AC drive must be a V or I source"
        )

    solutions = np.empty((w.size, system.size), dtype=complex)
    for k, wk in enumerate(w):
        matrix = jac + 1j * wk * system.c_matrix
        solutions[k] = np.linalg.solve(matrix, rhs)
    return AcResult(system=system, w=w, solutions=solutions)
