"""Circuit container and builder API.

A :class:`Circuit` is an ordered collection of elements over named nodes.
Ground is the node named ``"0"`` (aliases ``"gnd"``, ``"GND"``).  The
builder assigns unknown indices — node voltages first, then one branch
current per voltage source / inductor — and hands a frozen
:class:`repro.spice.mna.MnaSystem` to the analyses.

Convenience ``add_*`` methods cover the common elements so test and
experiment code reads like a netlist::

    ckt = Circuit("diff pair cell")
    ckt.add_voltage_source("VCC", "vcc", "0", 12.0)
    ckt.add_resistor("RL", "vcc", "ncl", 1e3)
    ckt.add_bjt("Q1", "ncl", "ncr", "tail")
    ...
"""

from __future__ import annotations

import numpy as np

from repro.spice.elements.base import Element, GROUND
from repro.spice.elements.behavioral import BehavioralCurrentSource
from repro.spice.elements.bjt import Bjt
from repro.spice.elements.diode import Diode
from repro.spice.elements.mosfet import Mosfet
from repro.spice.elements.passives import (
    Capacitor,
    Inductor,
    MutualInductance,
    Resistor,
)
from repro.spice.elements.sources import CurrentSource, Vccs, VoltageSource
from repro.spice.elements.tunnel import TunnelDiodeElement

__all__ = ["Circuit", "GROUND_NAMES"]

#: Node names treated as ground.
GROUND_NAMES = ("0", "gnd", "GND")


class Circuit:
    """Mutable circuit description.

    Parameters
    ----------
    title:
        Free-text title (netlists carry one on their first line).
    """

    def __init__(self, title: str = ""):
        self.title = title
        self.elements: list[Element] = []
        self._names: set[str] = set()

    # -- construction ---------------------------------------------------------

    def add(self, element: Element) -> Element:
        """Add any element; names must be unique within the circuit."""
        if element.name in self._names:
            raise ValueError(f"duplicate element name {element.name!r}")
        self._names.add(element.name)
        self.elements.append(element)
        return element

    def add_resistor(self, name, a, b, resistance) -> Resistor:
        """Add a resistor between nodes ``a`` and ``b``."""
        return self.add(Resistor(name, a, b, resistance))

    def add_capacitor(self, name, a, b, capacitance) -> Capacitor:
        """Add a capacitor between nodes ``a`` and ``b``."""
        return self.add(Capacitor(name, a, b, capacitance))

    def add_inductor(self, name, a, b, inductance) -> Inductor:
        """Add an inductor between nodes ``a`` and ``b``."""
        return self.add(Inductor(name, a, b, inductance))

    def add_mutual(self, name, inductor_a_name, inductor_b_name, coupling) -> MutualInductance:
        """Magnetically couple two inductors already in the circuit."""
        la = self.element(inductor_a_name)
        lb = self.element(inductor_b_name)
        return self.add(MutualInductance(name, la, lb, coupling))

    def add_voltage_source(self, name, plus, minus, waveform) -> VoltageSource:
        """Add an independent voltage source (+ terminal first)."""
        return self.add(VoltageSource(name, plus, minus, waveform))

    def add_current_source(self, name, a, b, waveform) -> CurrentSource:
        """Add an independent current source (positive current a -> b)."""
        return self.add(CurrentSource(name, a, b, waveform))

    def add_diode(self, name, anode, cathode, **params) -> Diode:
        """Add a junction diode."""
        return self.add(Diode(name, anode, cathode, **params))

    def add_bjt(self, name, collector, base, emitter, **params) -> Bjt:
        """Add an Ebers-Moll BJT."""
        return self.add(Bjt(name, collector, base, emitter, **params))

    def add_mosfet(self, name, drain, gate, source, **params) -> Mosfet:
        """Add a square-law (level-1) MOSFET."""
        return self.add(Mosfet(name, drain, gate, source, **params))

    def add_tunnel_diode(self, name, anode, cathode, model=None) -> TunnelDiodeElement:
        """Add the paper's tunnel diode."""
        return self.add(TunnelDiodeElement(name, anode, cathode, model))

    def add_behavioral(self, name, a, b, law) -> BehavioralCurrentSource:
        """Add an ``i = f(v)`` behavioural current source."""
        return self.add(BehavioralCurrentSource(name, a, b, law))

    def add_vccs(self, name, a, b, cplus, cminus, gm) -> Vccs:
        """Add a voltage-controlled current source."""
        return self.add(Vccs(name, a, b, cplus, cminus, gm))

    def element(self, name: str) -> Element:
        """Look an element up by name."""
        for el in self.elements:
            if el.name == name:
                return el
        raise KeyError(f"no element named {name!r}")

    # -- assembly -------------------------------------------------------------

    def node_names(self) -> list[str]:
        """All non-ground node names, in first-appearance order."""
        seen: list[str] = []
        for el in self.elements:
            for node in el.nodes:
                if node in GROUND_NAMES or node in seen:
                    continue
                seen.append(node)
        return seen

    def build(self) -> "MnaSystem":
        """Assign unknown indices and assemble the MNA system."""
        from repro.spice.mna import MnaSystem

        if not self.elements:
            raise ValueError("cannot build an empty circuit")
        nodes = self.node_names()
        if not nodes:
            raise ValueError("circuit has no non-ground nodes")
        index = {name: k for k, name in enumerate(nodes)}
        for g in GROUND_NAMES:
            index[g] = GROUND
        n_nodes = len(nodes)
        next_branch = n_nodes
        branch_of: dict[str, int] = {}
        for el in self.elements:
            node_idx = tuple(index[n] for n in el.nodes)
            branches = tuple(range(next_branch, next_branch + el.n_branches))
            for k, br in enumerate(branches):
                branch_of[el.name if el.n_branches == 1 else f"{el.name}#{k}"] = br
            next_branch += el.n_branches
            el.assign(node_idx, branches)
        return MnaSystem(
            circuit=self,
            node_index={name: index[name] for name in nodes},
            branch_index=branch_of,
            size=next_branch,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Circuit({self.title!r}, {len(self.elements)} elements)"
