"""DC sweep analysis — the Fig. 11b ``i = f(v)`` extraction workhorse.

Sweeps the DC value of one independent source across a value list, solving
the operating point at each step with the previous solution as the warm
start (continuation).  Warm starting is what makes sweeping *through* a
tunnel diode's negative-resistance region reliable: each point is a small
perturbation of the last, so Newton never has to find the NDR branch from
a cold start.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.spice.circuit import Circuit
from repro.spice.dcop import dc_operating_point
from repro.spice.elements.sources import CurrentSource, VoltageSource, dc

__all__ = ["DcSweepResult", "dc_sweep"]


@dataclass
class DcSweepResult:
    """Solutions of a DC sweep.

    Attributes
    ----------
    values:
        Swept source values.
    solutions:
        Unknown vector per sweep point, shape ``(n_points, size)``.
    """

    system: "object"
    source_name: str
    values: np.ndarray
    solutions: np.ndarray
    strategies: list[str] = field(default_factory=list)

    def voltage(self, node: str) -> np.ndarray:
        """Node voltage across the sweep."""
        return np.array(
            [self.system.voltage(x, node) for x in self.solutions]
        )

    def source_current(self, source_name: str | None = None) -> np.ndarray:
        """Branch current of a voltage source across the sweep.

        SPICE sign convention: current flowing from + through the source
        to - is positive, so a source *driving* a load reports negative
        current.  The current delivered into the circuit's + node is the
        negative of this (see :func:`repro.nonlin.extraction.extract_iv_curve`).
        """
        name = source_name or self.source_name
        return np.array(
            [self.system.branch_current(x, name) for x in self.solutions]
        )


def dc_sweep(
    circuit: Circuit,
    source_name: str,
    values: np.ndarray,
) -> DcSweepResult:
    """Sweep a V or I source's DC value and solve each operating point.

    The source's waveform is temporarily replaced by each DC value and
    restored afterwards.

    Parameters
    ----------
    circuit:
        The circuit containing the source.
    source_name:
        Name of the :class:`VoltageSource` or :class:`CurrentSource` to
        sweep.
    values:
        Sweep values, any order (monotone sweeps benefit most from
        continuation).
    """
    source = circuit.element(source_name)
    if not isinstance(source, (VoltageSource, CurrentSource)):
        raise TypeError(
            f"{source_name!r} is a {type(source).__name__}; "
            "DC sweep needs an independent V or I source"
        )
    values = np.atleast_1d(np.asarray(values, dtype=float))
    system = circuit.build()
    original = source.waveform
    solutions = np.empty((values.size, system.size))
    strategies: list[str] = []
    x_prev = None
    try:
        for k, value in enumerate(values):
            source.waveform = dc(float(value))
            op = dc_operating_point(system, x0=x_prev)
            solutions[k] = op.x
            strategies.append(op.strategy)
            x_prev = op.x
    finally:
        source.waveform = original
    return DcSweepResult(
        system=system,
        source_name=source_name,
        values=values,
        solutions=solutions,
        strategies=strategies,
    )
