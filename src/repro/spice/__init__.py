"""A from-scratch SPICE-like circuit simulator (MNA).

The paper validates its predictions against NGSPICE; with no NGSPICE
available here, this package provides the equivalent substrate in pure
Python + numpy:

* modified nodal analysis with branch currents for voltage sources and
  inductors (:mod:`repro.spice.mna`),
* Newton-Raphson DC operating point with gmin and source stepping
  (:mod:`repro.spice.dcop`),
* DC sweeps with solution continuation (:mod:`repro.spice.dcsweep`) —
  the Fig. 11b ``i = f(v)`` extraction flow,
* small-signal AC analysis (:mod:`repro.spice.ac`) — pre-characterising
  ``H(jw)`` of arbitrary passive tank topologies,
* transient analysis with trapezoidal/backward-Euler integration and
  optional LTE-controlled adaptive stepping (:mod:`repro.spice.transient`),
* a SPICE-ish netlist parser (:mod:`repro.spice.netlist`).

Device models: R, L, C, independent V/I sources (DC/SIN/PULSE),
VCCS, junction diode, Ebers-Moll BJT, the paper's tunnel diode, and a
behavioural current source wrapping any :class:`repro.nonlin.Nonlinearity`.
"""

from repro.spice.circuit import Circuit
from repro.spice.dcop import dc_operating_point
from repro.spice.dcsweep import dc_sweep
from repro.spice.ac import ac_analysis
from repro.spice.transient import transient
from repro.spice.netlist import parse_netlist

__all__ = [
    "Circuit",
    "dc_operating_point",
    "dc_sweep",
    "ac_analysis",
    "transient",
    "parse_netlist",
]
