"""Numerical guards: detect faults early, raise them typed.

A NaN that leaks out of a device law surfaces, ten frames later, as a
singular-matrix error inside a Newton iteration — with a stack trace that
points at linear algebra instead of the broken nonlinearity.  These guards
sit at the few choke points the data flows through (describing-function
quadratures, Newton Jacobians, the tank/nonlinearity setup) and convert
such conditions into :class:`~repro.robust.faults.NumericalFaultError`
with a precise :class:`~repro.robust.faults.SolveFault` record.

This module imports nothing from :mod:`repro.core`, so the core solvers
can call the guards without an import cycle.
"""

from __future__ import annotations

import numpy as np

from repro.robust.faults import NumericalFaultError, SolveFault

__all__ = [
    "guard_finite",
    "guard_jacobian",
    "guard_tank",
    "guard_nonlinearity",
]

#: Condition numbers above this make a Newton step numerically meaningless
#: at double precision.
_MAX_CONDITION = 1e13


def guard_finite(
    name: str,
    array,
    *,
    stage: str,
    recoverable: bool = False,
    context: dict | None = None,
):
    """Validate that every entry of ``array`` is finite.

    Raises :class:`NumericalFaultError` (kind ``non-finite-samples``)
    naming the array and counting the offending entries.  Non-finite
    device samples are deterministic — re-sampling the same law on a
    finer grid reproduces them — so the fault defaults to
    ``recoverable=False`` and stops an escalation ladder immediately.
    """
    array = np.asarray(array)
    finite = np.isfinite(array)
    if bool(np.all(finite)):
        return array
    bad = int(array.size - np.count_nonzero(finite))
    fault = SolveFault(
        "non-finite-samples",
        stage,
        f"{name} contains {bad} non-finite of {array.size} entries",
        recoverable=recoverable,
        context={"name": name, "bad": bad, "size": int(array.size), **(context or {})},
    )
    raise NumericalFaultError(fault)


def guard_jacobian(
    jac: np.ndarray,
    *,
    stage: str,
    max_condition: float = _MAX_CONDITION,
) -> np.ndarray:
    """Validate a Newton Jacobian before solving with it.

    Non-finite entries raise a ``non-finite-samples`` fault; a finite but
    singular/ill-conditioned matrix raises ``singular-jacobian`` /
    ``ill-conditioned-jacobian`` (both recoverable — a different seed,
    damping, or continuation often clears them).
    """
    jac = np.asarray(jac, dtype=float)
    if not np.all(np.isfinite(jac)):
        guard_finite("jacobian", jac, stage=stage)
    cond = float(np.linalg.cond(jac))
    if not np.isfinite(cond):
        raise NumericalFaultError(
            SolveFault("singular-jacobian", stage, "exactly singular Jacobian")
        )
    if cond > max_condition:
        raise NumericalFaultError(
            SolveFault(
                "ill-conditioned-jacobian",
                stage,
                f"Jacobian condition number {cond:.3g} exceeds {max_condition:g}",
                context={"condition": cond},
            )
        )
    return jac


def guard_tank(tank, *, stage: str = "setup"):
    """Reject degenerate tanks before any solver touches them.

    Checks that the centre frequency and peak resistance are finite and
    strictly positive, and — when the tank exposes a ``quality_factor`` —
    that Q is finite and positive.  Raises a ``degenerate-tank``
    :class:`NumericalFaultError` (non-recoverable: no escalation rung can
    repair the hardware description).
    """

    def reject(message: str):
        raise NumericalFaultError(
            SolveFault("degenerate-tank", stage, message, recoverable=False)
        )

    try:
        w_c = float(tank.center_frequency)
        r = float(tank.peak_resistance)
    except Exception as exc:  # a tank that cannot even report itself
        reject(f"tank failed to report centre frequency / resistance: {exc}")
        raise AssertionError  # pragma: no cover - reject always raises
    if not (np.isfinite(w_c) and w_c > 0.0):
        reject(f"tank centre frequency must be finite and > 0, got {w_c!r}")
    if not (np.isfinite(r) and r > 0.0):
        reject(f"tank peak resistance must be finite and > 0, got {r!r}")
    q = getattr(tank, "quality_factor", None)
    if q is not None:
        q = float(q)
        if not (np.isfinite(q) and q > 0.0):
            reject(f"tank quality factor must be finite and > 0, got {q!r}")
    return tank


def guard_nonlinearity(nonlinearity, v_max: float, *, stage: str = "setup"):
    """Probe a device law over the analysis window before trusting it.

    Samples ``f(v)`` over ``[-v_max, v_max]``; non-finite samples raise
    ``non-finite-samples`` and an identically-zero response raises
    ``dead-nonlinearity`` (both non-recoverable — the law itself is
    broken, not the numerics).  The probe is coarse (64 samples) and
    costs one vectorised call.
    """
    v_max = float(v_max)
    if not (np.isfinite(v_max) and v_max > 0.0):
        raise NumericalFaultError(
            SolveFault(
                "non-finite-samples",
                stage,
                f"probe window v_max must be finite and > 0, got {v_max!r}",
                recoverable=False,
            )
        )
    v = np.linspace(-v_max, v_max, 64)
    current = np.asarray(nonlinearity(v), dtype=float)
    guard_finite(
        f"nonlinearity samples over [{-v_max:g}, {v_max:g}] V",
        current,
        stage=stage,
    )
    if bool(np.all(current == 0.0)):
        raise NumericalFaultError(
            SolveFault(
                "dead-nonlinearity",
                stage,
                f"nonlinearity is identically zero over [{-v_max:g}, {v_max:g}] V",
                recoverable=False,
            )
        )
    return nonlinearity
