"""Deterministic fault-injection harness for the robust solve pipeline.

Each :class:`FaultScenario` plants one specific failure — a singular
harmonic-balance Jacobian, a device law that goes NaN above the operating
swing, a truncated surface-cache record, a tank whose phase map cannot be
inverted anywhere — and then runs the *production* robust wrappers against
it.  The scenario declares what must happen:

* ``"recover"`` — the escalation ladder absorbs the fault and produces a
  finite result, with the recovery rung recorded on the diagnostics; or
* ``"typed-failure"`` — the pipeline stops with the declared typed fault
  kind (never a raw traceback), diagnostics attached to the exception.

Everything is deterministic: injections use call counters, not clocks or
randomness, so every run of ``repro faults`` reproduces bit-identical
verdicts.  The harness runs inside an isolated temporary cache directory
and restores every patched seam on exit, so it can run mid-session (and
inside the verify matrix) without contaminating state.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import tempfile
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.robust.diagnostics import SolveDiagnostics
from repro.robust.faults import NumericalFaultError

__all__ = [
    "FAULTS_SCHEMA_VERSION",
    "patched",
    "failing_first",
    "FaultScenario",
    "FaultOutcome",
    "FaultReport",
    "fault_scenarios",
    "run_fault_matrix",
]

#: FAULTS_REPORT.json schema.  v2 adds the per-outcome ``layer`` field
#: ("solver" for this module's scenarios, "service" for the serve-layer
#: chaos suite) and the top-level ``layers`` tally; every v1 field is
#: unchanged, so v1 consumers keep working.
FAULTS_SCHEMA_VERSION = 2


@contextlib.contextmanager
def patched(obj, name: str, replacement):
    """Temporarily replace ``obj.name`` (module attribute or class method)."""
    original = getattr(obj, name)
    setattr(obj, name, replacement)
    try:
        yield original
    finally:
        setattr(obj, name, original)


def failing_first(fn: Callable, n_failures: int, make_exc: Callable[[], BaseException]):
    """Wrap ``fn`` so its first ``n_failures`` calls raise deterministically.

    The counter lives in the wrapper, so the fault persists across ladder
    rungs exactly ``n_failures`` times and then clears — modelling a
    transient numerical failure the escalation is designed to ride out.
    """
    calls = {"n": 0}

    def wrapper(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] <= n_failures:
            raise make_exc()
        return fn(*args, **kwargs)

    wrapper.calls = calls
    return wrapper


# -- the standard rig ---------------------------------------------------------
#
# The paper's running example, scaled down to grids that keep the whole
# matrix interactive: a saturating tanh negative resistance across a
# Q ~ 31 parallel RLC.  Natural amplitude ~ 1.2 V.


def _rig():
    from repro.nonlin.analytic import NegativeTanh
    from repro.tank.rlc import ParallelRLC

    nonlinearity = NegativeTanh(gm=2.5e-3, i_sat=1e-3)
    tank = ParallelRLC(r=1000.0, l=100e-6, c=10e-9)
    return nonlinearity, tank


_SMALL = {"n_a": 61, "n_phi": 121, "n_samples": 256}


@dataclass(frozen=True)
class FaultScenario:
    """One injected fault plus its declared contract."""

    scenario_id: str
    description: str
    expectation: str  # "recover" | "typed-failure"
    expected_fault: str  # the SolveFault kind that must be observed
    run: Callable[[], "FaultOutcome"] = field(compare=False)


@dataclass
class FaultOutcome:
    """What actually happened when a scenario ran."""

    scenario: str
    expectation: str
    expected_fault: str
    ok: bool
    detail: str
    fault_kinds: list[str] = field(default_factory=list)
    recovered_via: str | None = None
    diagnostics: dict | None = None
    layer: str = "solver"

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "expectation": self.expectation,
            "expected_fault": self.expected_fault,
            "ok": self.ok,
            "detail": self.detail,
            "fault_kinds": list(self.fault_kinds),
            "recovered_via": self.recovered_via,
            "diagnostics": self.diagnostics,
            "layer": self.layer,
        }


def _diag_of(source) -> SolveDiagnostics | None:
    return getattr(source, "diagnostics", None)


def _outcome_from_recovery(
    scenario: "FaultScenario", value_ok: bool, detail: str, diagnostics
) -> FaultOutcome:
    """Grade a scenario that expected the ladder to recover."""
    kinds = [f.kind for f in diagnostics.faults] if diagnostics else []
    ok = (
        value_ok
        and diagnostics is not None
        and diagnostics.ok
        and scenario.expected_fault in kinds
    )
    return FaultOutcome(
        scenario=scenario.scenario_id,
        expectation=scenario.expectation,
        expected_fault=scenario.expected_fault,
        ok=ok,
        detail=detail,
        fault_kinds=kinds,
        recovered_via=diagnostics.recovered_via if diagnostics else None,
        diagnostics=diagnostics.to_dict() if diagnostics else None,
    )


def _outcome_from_typed_failure(
    scenario: "FaultScenario", exc: BaseException, fault_kind: str | None
) -> FaultOutcome:
    """Grade a scenario that expected a typed failure (no raw traceback)."""
    diagnostics = _diag_of(exc)
    kinds = [f.kind for f in diagnostics.faults] if diagnostics else []
    if fault_kind is not None and fault_kind not in kinds:
        kinds.append(fault_kind)
    ok = scenario.expected_fault in kinds
    return FaultOutcome(
        scenario=scenario.scenario_id,
        expectation=scenario.expectation,
        expected_fault=scenario.expected_fault,
        ok=ok,
        detail=f"raised {type(exc).__name__}: {exc}",
        fault_kinds=kinds,
        recovered_via=None,
        diagnostics=diagnostics.to_dict() if diagnostics else None,
    )


def _unexpected(scenario: "FaultScenario", exc: BaseException) -> FaultOutcome:
    return FaultOutcome(
        scenario=scenario.scenario_id,
        expectation=scenario.expectation,
        expected_fault=scenario.expected_fault,
        ok=False,
        detail=f"unexpected {type(exc).__name__}: {exc}",
    )


# -- scenarios ----------------------------------------------------------------


def _run_hb_singular_jacobian(scenario: FaultScenario) -> FaultOutcome:
    """First HB linear solve raises LinAlgError -> damped rung recovers."""
    from repro.core import harmonic_balance as hb
    from repro.robust.ladder import robust_hb_natural

    nonlinearity, tank = _rig()
    injected = failing_first(
        np.linalg.solve, 1, lambda: np.linalg.LinAlgError("injected singular matrix")
    )
    try:
        with patched(hb, "_solve_linear", injected):
            result = robust_hb_natural(
                nonlinearity, tank, k_max=5, n_samples=256, tol=1e-10
            )
    except Exception as exc:  # noqa: BLE001 - graded, not swallowed
        return _unexpected(scenario, exc)
    value_ok = bool(np.isfinite(result.value.amplitude)) and result.value.amplitude > 0
    return _outcome_from_recovery(
        scenario,
        value_ok,
        f"recovered A={result.value.amplitude:.4g} V after injected "
        f"LinAlgError ({injected.calls['n']} solver calls)",
        result.diagnostics,
    )


def _run_hb_nonfinite_residual(scenario: FaultScenario) -> FaultOutcome:
    """First device-harmonics evaluation returns NaN -> guard + recovery."""
    from repro.core import harmonic_balance as hb
    from repro.robust.ladder import robust_hb_natural

    nonlinearity, tank = _rig()
    original = hb._device_harmonics
    calls = {"n": 0}

    def poisoned(*args, **kwargs):
        calls["n"] += 1
        out = original(*args, **kwargs)
        if calls["n"] == 1:
            out = np.full_like(out, np.nan)
        return out

    try:
        with patched(hb, "_device_harmonics", poisoned):
            result = robust_hb_natural(
                nonlinearity, tank, k_max=5, n_samples=256, tol=1e-10
            )
    except Exception as exc:  # noqa: BLE001
        return _unexpected(scenario, exc)
    value_ok = bool(np.isfinite(result.value.amplitude)) and result.value.amplitude > 0
    return _outcome_from_recovery(
        scenario,
        value_ok,
        f"recovered A={result.value.amplitude:.4g} V after injected NaN residual",
        result.diagnostics,
    )


def _run_nonfinite_nonlinearity(scenario: FaultScenario) -> FaultOutcome:
    """Device law NaN above 1 V (< natural swing) -> typed non-recoverable."""
    from repro.nonlin.base import FunctionNonlinearity
    from repro.robust.ladder import robust_natural

    base, tank = _rig()

    def law(v):
        v = np.asarray(v, dtype=float)
        return np.where(np.abs(v) > 1.0, np.nan, base(v))

    broken = FunctionNonlinearity(
        law, dfunc=lambda v: base.derivative(v), name="nan-above-1V"
    )
    try:
        robust_natural(broken, tank, n_samples=256)
    except NumericalFaultError as exc:
        return _outcome_from_typed_failure(scenario, exc, exc.fault.kind)
    except Exception as exc:  # noqa: BLE001
        return _unexpected(scenario, exc)
    return FaultOutcome(
        scenario=scenario.scenario_id,
        expectation=scenario.expectation,
        expected_fault=scenario.expected_fault,
        ok=False,
        detail="solve succeeded despite a NaN device law inside the swing",
    )


def _run_corrupt_surface_cache(scenario: FaultScenario) -> FaultOutcome:
    """Truncate a warm cache record mid-file -> quarantine + recompute."""
    from repro.core.two_tone import TwoToneDF
    from repro.perf.surface_cache import default_cache

    nonlinearity, _ = _rig()
    amplitudes = np.linspace(0.4, 1.6, 41)
    warm = TwoToneDF(nonlinearity, 0.03, 3, n_samples=256)
    warm.surface(amplitudes)  # populate the (isolated) disk cache

    cache = default_cache()
    records = sorted(cache.root.glob("??/*.npz"))
    if not records:
        return FaultOutcome(
            scenario=scenario.scenario_id,
            expectation=scenario.expectation,
            expected_fault=scenario.expected_fault,
            ok=False,
            detail="warm-up produced no cache record to corrupt",
        )
    target = records[0]
    payload = target.read_bytes()
    target.write_bytes(payload[: max(16, len(payload) // 3)])  # mid-record cut

    before = cache.stats["corrupt"]
    fresh = TwoToneDF(nonlinearity, 0.03, 3, n_samples=256)  # empty memo
    surface = fresh.surface(amplitudes)
    quarantined = list(cache.root.glob("??/*.npz.corrupt"))
    ok = (
        cache.stats["corrupt"] == before + 1
        and len(quarantined) == 1
        and bool(np.all(np.isfinite(surface.coefficients)))
    )
    return FaultOutcome(
        scenario=scenario.scenario_id,
        expectation=scenario.expectation,
        expected_fault=scenario.expected_fault,
        ok=ok,
        detail=(
            f"truncated {target.name}: quarantined={len(quarantined)}, "
            f"corrupt-count={cache.stats['corrupt'] - before}, surface recomputed"
        ),
        fault_kinds=["cache-corruption"] if ok else [],
        recovered_via="recompute",
    )


def _run_unreachable_phi_d(scenario: FaultScenario) -> FaultOutcome:
    """Every phase inversion fails -> typed NoLockError, faults recorded."""
    from repro.core.lockrange import NoLockError
    from repro.robust.ladder import robust_predict_lock_range
    from repro.tank.base import PhaseInversionError
    from repro.tank.rlc import ParallelRLC

    nonlinearity, tank = _rig()

    def refuse(self, phi_d):
        raise PhaseInversionError(
            f"phi_d={float(phi_d):g} injected as uninvertible"
        )

    try:
        with patched(ParallelRLC, "frequency_for_phase", refuse):
            robust_predict_lock_range(nonlinearity, tank, v_i=0.03, n=3, **_SMALL)
    except NoLockError as exc:
        outcome = _outcome_from_typed_failure(scenario, exc, "no-lock")
        # The *cause* must be on the record too: every dropped point left a
        # phase-inversion fault on the diagnostics.
        outcome.ok = outcome.ok and "phase-inversion-out-of-range" in outcome.fault_kinds
        return outcome
    except Exception as exc:  # noqa: BLE001
        return _unexpected(scenario, exc)
    return FaultOutcome(
        scenario=scenario.scenario_id,
        expectation=scenario.expectation,
        expected_fault=scenario.expected_fault,
        ok=False,
        detail="lock range solved despite an uninvertible phase map",
    )


def _run_dead_nonlinearity(scenario: FaultScenario) -> FaultOutcome:
    """All-zero device law -> guard_nonlinearity raises the typed fault."""
    from repro.nonlin.base import FunctionNonlinearity
    from repro.robust.guards import guard_nonlinearity

    dead = FunctionNonlinearity(lambda v: np.zeros_like(np.asarray(v, float)), name="dead")
    try:
        guard_nonlinearity(dead, 2.0, stage="setup")
    except NumericalFaultError as exc:
        return _outcome_from_typed_failure(scenario, exc, exc.fault.kind)
    except Exception as exc:  # noqa: BLE001
        return _unexpected(scenario, exc)
    return FaultOutcome(
        scenario=scenario.scenario_id,
        expectation=scenario.expectation,
        expected_fault=scenario.expected_fault,
        ok=False,
        detail="guard accepted an identically-zero nonlinearity",
    )


def _run_degenerate_tank(scenario: FaultScenario) -> FaultOutcome:
    """NaN centre frequency -> guard_tank rejects before any solve."""
    from repro.robust.ladder import robust_natural

    class BrokenTank:
        center_frequency = float("nan")
        peak_resistance = 1000.0

    nonlinearity, _ = _rig()
    try:
        robust_natural(nonlinearity, BrokenTank())
    except NumericalFaultError as exc:
        return _outcome_from_typed_failure(scenario, exc, exc.fault.kind)
    except Exception as exc:  # noqa: BLE001
        return _unexpected(scenario, exc)
    return FaultOutcome(
        scenario=scenario.scenario_id,
        expectation=scenario.expectation,
        expected_fault=scenario.expected_fault,
        ok=False,
        detail="solve ran against a NaN-centre-frequency tank",
    )


def _run_hb_lock_continuation(scenario: FaultScenario) -> FaultOutcome:
    """Cold HB lock Newton fails twice -> continuation rung carries it."""
    from repro.core import harmonic_balance as hb
    from repro.core.harmonic_balance import HbConvergenceError
    from repro.robust.ladder import Rung, hb_lock_policy, robust_hb_lock_state

    nonlinearity, tank = _rig()
    w_injection = 3.0 * tank.center_frequency
    original = hb.hb_lock_state
    calls = {"n": 0}

    def flaky(*args, **kwargs):
        # The first two *direct* (non-continuation) attempts diverge; the
        # continuation rung's ramped calls pass `initial` and always run.
        if kwargs.get("initial") is None:
            calls["n"] += 1
            if calls["n"] <= 2:
                raise HbConvergenceError("injected divergence of the cold Newton")
        return original(*args, **kwargs)

    try:
        with patched(hb, "hb_lock_state", flaky):
            result = robust_hb_lock_state(
                nonlinearity,
                tank,
                v_i=0.03,
                w_injection=w_injection,
                n=3,
                k_max=5,
                n_samples=256,
                tol=1e-10,
            )
    except Exception as exc:  # noqa: BLE001
        return _unexpected(scenario, exc)
    value_ok = (
        bool(np.isfinite(result.value.amplitude))
        and result.value.amplitude > 0
        and result.diagnostics.recovered_via == "continuation"
    )
    return _outcome_from_recovery(
        scenario,
        value_ok,
        f"continuation recovered A={result.value.amplitude:.4g} V after two "
        "injected cold-Newton divergences",
        result.diagnostics,
    )


def fault_scenarios(quick: bool = True) -> list[FaultScenario]:
    """The scenario matrix.  ``quick=False`` adds the slower HB lock case."""
    scenarios = [
        FaultScenario(
            "hb-singular-jacobian",
            "first harmonic-balance linear solve raises LinAlgError",
            "recover",
            "singular-jacobian",
            _run_hb_singular_jacobian,
        ),
        FaultScenario(
            "hb-nonfinite-residual",
            "first device-harmonics evaluation returns NaN",
            "recover",
            "non-finite-samples",
            _run_hb_nonfinite_residual,
        ),
        FaultScenario(
            "nonfinite-nonlinearity",
            "device law returns NaN inside the oscillation swing",
            "typed-failure",
            "non-finite-samples",
            _run_nonfinite_nonlinearity,
        ),
        FaultScenario(
            "corrupt-surface-cache",
            "persistent surface-cache record truncated mid-file",
            "recover",
            "cache-corruption",
            _run_corrupt_surface_cache,
        ),
        FaultScenario(
            "unreachable-phi-d",
            "tank phase inversion fails at every lock-range point",
            "typed-failure",
            "no-lock",
            _run_unreachable_phi_d,
        ),
        FaultScenario(
            "dead-nonlinearity",
            "identically-zero device law rejected by the setup guard",
            "typed-failure",
            "dead-nonlinearity",
            _run_dead_nonlinearity,
        ),
        FaultScenario(
            "degenerate-tank",
            "NaN centre frequency rejected before any solve",
            "typed-failure",
            "degenerate-tank",
            _run_degenerate_tank,
        ),
    ]
    if not quick:
        scenarios.append(
            FaultScenario(
                "hb-lock-continuation",
                "cold locked-HB Newton diverges; V_i continuation recovers",
                "recover",
                "hb-divergence",
                _run_hb_lock_continuation,
            )
        )
    return scenarios


# -- the matrix runner --------------------------------------------------------


@dataclass
class FaultReport:
    """Machine- and human-readable verdict of one fault matrix run."""

    mode: str
    outcomes: list[FaultOutcome]

    @property
    def passed(self) -> bool:
        return all(o.ok for o in self.outcomes)

    def to_dict(self) -> dict:
        layers: dict[str, dict[str, int]] = {}
        for o in self.outcomes:
            tally = layers.setdefault(o.layer, {"total": 0, "ok": 0})
            tally["total"] += 1
            tally["ok"] += int(o.ok)
        return {
            "mode": self.mode,
            "schema": FAULTS_SCHEMA_VERSION,
            "passed": self.passed,
            "layers": layers,
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    def format(self) -> str:
        lines = [f"fault-injection matrix ({self.mode}): "
                 f"{sum(o.ok for o in self.outcomes)}/{len(self.outcomes)} ok"]
        for o in self.outcomes:
            mark = "ok  " if o.ok else "FAIL"
            via = f" via {o.recovered_via}" if o.recovered_via else ""
            layer = f" [{o.layer}]" if o.layer != "solver" else ""
            lines.append(
                f"  [{mark}] {o.scenario}{layer} ({o.expectation}{via}): {o.detail}"
            )
        return "\n".join(lines)

    def write(self, path: str | os.PathLike) -> pathlib.Path:
        path = pathlib.Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path


def run_fault_matrix(quick: bool = True, progress=None) -> FaultReport:
    """Run every scenario inside an isolated temporary cache directory.

    The isolation matters twice over: the corruption scenario mutates
    cache files on disk, and recovery scenarios must not be short-circuited
    by warm records from the user's real cache.
    """
    outcomes: list[FaultOutcome] = []
    scenarios = fault_scenarios(quick=quick)
    with tempfile.TemporaryDirectory(prefix="repro-faults-") as tmp:
        saved = os.environ.get("REPRO_CACHE_DIR")
        os.environ["REPRO_CACHE_DIR"] = tmp
        try:
            for scenario in scenarios:
                if progress is not None:
                    progress(scenario.scenario_id)
                try:
                    outcomes.append(scenario.run(scenario))
                except Exception as exc:  # noqa: BLE001 - harness must not die
                    outcomes.append(_unexpected(scenario, exc))
        finally:
            if saved is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = saved
    return FaultReport(mode="quick" if quick else "full", outcomes=outcomes)
