"""Fault-tolerant solve pipeline: guards, escalation ladders, diagnostics.

Three pillars (see DESIGN.md, "Failure modes and recovery"):

* :mod:`repro.robust.faults` / :mod:`repro.robust.guards` — typed
  :class:`SolveFault` records and the early-detection guards that raise
  them (``guard_finite``, ``guard_jacobian``, ``guard_tank``,
  ``guard_nonlinearity``);
* :mod:`repro.robust.ladder` — declarative escalation policies and the
  ``robust_*`` wrappers around every prediction path;
* :mod:`repro.robust.injection` — the deterministic fault-injection
  harness behind ``repro faults`` and the verify matrix's fault-recovery
  check family.

Import structure: ``faults``, ``guards`` and ``diagnostics`` import
nothing from :mod:`repro.core` (so the core solvers can use them without
cycles); ``ladder`` and ``injection`` *do* reach into the core and are
therefore loaded lazily here (PEP 562).
"""

from __future__ import annotations

from repro.robust.diagnostics import (
    RungAttempt,
    SolveDiagnostics,
    active_diagnostics,
    collecting,
    record_fault,
)
from repro.robust.faults import (
    FAULT_KINDS,
    NumericalFaultError,
    SolveFault,
    fault_from_exception,
)
from repro.robust.guards import (
    guard_finite,
    guard_jacobian,
    guard_nonlinearity,
    guard_tank,
)

_LAZY = {
    "Rung": "repro.robust.ladder",
    "EscalationPolicy": "repro.robust.ladder",
    "RobustResult": "repro.robust.ladder",
    "run_ladder": "repro.robust.ladder",
    "natural_policy": "repro.robust.ladder",
    "lock_state_policy": "repro.robust.ladder",
    "lock_range_policy": "repro.robust.ladder",
    "hb_natural_policy": "repro.robust.ladder",
    "hb_lock_policy": "repro.robust.ladder",
    "robust_natural": "repro.robust.ladder",
    "robust_solve_lock_states": "repro.robust.ladder",
    "robust_predict_lock_range": "repro.robust.ladder",
    "robust_hb_natural": "repro.robust.ladder",
    "robust_hb_lock_state": "repro.robust.ladder",
    "FaultScenario": "repro.robust.injection",
    "FaultOutcome": "repro.robust.injection",
    "FaultReport": "repro.robust.injection",
    "fault_scenarios": "repro.robust.injection",
    "run_fault_matrix": "repro.robust.injection",
}

__all__ = [
    "FAULT_KINDS",
    "SolveFault",
    "NumericalFaultError",
    "fault_from_exception",
    "RungAttempt",
    "SolveDiagnostics",
    "collecting",
    "record_fault",
    "active_diagnostics",
    "guard_finite",
    "guard_jacobian",
    "guard_tank",
    "guard_nonlinearity",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
