"""Structured diagnostics attached to every robust solve result.

A :class:`SolveDiagnostics` records the full escalation story of one
solve: every ladder rung attempted (with its parameter overrides, outcome
and wall time), every :class:`~repro.robust.faults.SolveFault` observed on
the way, and which rung — if any — finally recovered.  The CLI renders it
(:meth:`SolveDiagnostics.format`), the fault-injection harness asserts on
it, and :meth:`SolveDiagnostics.to_dict` feeds the machine-readable
reports.

Deep solver layers (a dropped lock-range point, an isoline whose tank
phase is uninvertible) report faults through the module-level collector
:func:`record_fault`, backed by a :mod:`contextvars` variable the ladder
engine sets while a rung runs.  Outside any collection context the call is
a no-op, so the core solvers stay usable — and silent — standalone.
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from dataclasses import dataclass, field

from repro.obs import convergence_event, events_active, get_logger, metrics
from repro.robust.faults import SolveFault

_log = get_logger(__name__)

__all__ = [
    "RungAttempt",
    "SolveDiagnostics",
    "collecting",
    "record_fault",
    "active_diagnostics",
]


@dataclass
class RungAttempt:
    """One ladder rung execution.

    ``outcome`` is ``"ok"`` (the rung produced a result), ``"fault"`` (a
    recoverable exception was converted to a fault) or ``"retry"`` (the
    rung produced a structurally suspicious result and the ladder chose
    to escalate anyway).
    """

    rung: str
    params: dict
    outcome: str
    fault: SolveFault | None = None
    wall_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "rung": self.rung,
            "params": {k: repr(v) for k, v in self.params.items()},
            "outcome": self.outcome,
            "fault": self.fault.to_dict() if self.fault is not None else None,
            "wall_s": round(self.wall_s, 4),
        }


@dataclass
class SolveDiagnostics:
    """The escalation record of one robust solve."""

    stage: str
    attempts: list[RungAttempt] = field(default_factory=list)
    faults: list[SolveFault] = field(default_factory=list)
    recovered_via: str | None = None
    exhausted: bool = False
    wall_s: float = 0.0

    @property
    def escalated(self) -> bool:
        """True when the baseline rung alone did not produce the result."""
        return len(self.attempts) > 1

    @property
    def ok(self) -> bool:
        """True when some rung produced a result."""
        return any(a.outcome == "ok" for a in self.attempts)

    def record_fault(self, fault: SolveFault) -> SolveFault:
        """Add a fault, coalescing repeats of the same (kind, stage).

        Batched solvers can drop hundreds of points for the same reason in
        one sweep; one counted record keeps the diagnostics readable and
        bounded.  Returns the stored (possibly pre-existing) record.
        """
        for existing in self.faults:
            if existing.kind == fault.kind and existing.stage == fault.stage:
                existing.count += fault.count
                return existing
        self.faults.append(fault)
        return fault

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "attempts": [a.to_dict() for a in self.attempts],
            "faults": [f.to_dict() for f in self.faults],
            "recovered_via": self.recovered_via,
            "exhausted": self.exhausted,
            "escalated": self.escalated,
            "ok": self.ok,
            "wall_s": round(self.wall_s, 4),
        }

    def summary(self) -> str:
        """One-line summary for the CLI footer."""
        rungs = " -> ".join(a.rung for a in self.attempts) or "(none)"
        if self.ok:
            head = (
                f"recovered via '{self.recovered_via}'"
                if self.recovered_via
                else "clean first-attempt solve"
            )
        else:
            head = "all rungs exhausted" if self.exhausted else "stopped early"
        n_faults = sum(f.count for f in self.faults)
        tail = f", {n_faults} fault(s) observed" if n_faults else ""
        return f"{self.stage}: {head} [{rungs}]{tail} in {self.wall_s:.2f} s"

    def format(self) -> str:
        """Multi-line rendering for the CLI's diagnostics block."""
        lines = [self.summary()]
        for attempt in self.attempts:
            detail = f" — {attempt.fault.describe()}" if attempt.fault else ""
            lines.append(
                f"  rung {attempt.rung}: {attempt.outcome}"
                f" ({attempt.wall_s:.2f} s){detail}"
            )
        for fault in self.faults:
            lines.append(f"  fault {fault.describe()}")
        return "\n".join(lines)


_ACTIVE: contextvars.ContextVar[SolveDiagnostics | None] = contextvars.ContextVar(
    "repro_active_diagnostics", default=None
)


def active_diagnostics() -> SolveDiagnostics | None:
    """The diagnostics record currently collecting, if any."""
    return _ACTIVE.get()


@contextlib.contextmanager
def collecting(diagnostics: SolveDiagnostics):
    """Route :func:`record_fault` calls to ``diagnostics`` inside the block."""
    token = _ACTIVE.set(diagnostics)
    start = time.perf_counter()
    try:
        yield diagnostics
    finally:
        diagnostics.wall_s += time.perf_counter() - start
        _ACTIVE.reset(token)


def record_fault(fault: SolveFault) -> None:
    """Report a fault from deep inside a solver.

    Each observation bumps the ``faults.recorded{kind=,stage=}`` counter
    and lands in the trace's event stream when one is recording.  When a
    diagnostics record is collecting, the fault is coalesced onto it and
    the *first* occurrence of each ``(kind, stage)`` pair is logged as a
    structured warning (repeats stay silent — batched solvers can drop
    hundreds of points for one reason).  Standalone, the solvers stay
    quiet: the observation logs at debug only.
    """
    metrics.inc("faults.recorded", kind=fault.kind, stage=fault.stage)
    if events_active():
        convergence_event(
            "fault", kind=fault.kind, stage=fault.stage, count=fault.count
        )
    diagnostics = _ACTIVE.get()
    if diagnostics is None:
        _log.debug(
            "solve.fault",
            fault=fault.kind,
            stage=fault.stage,
            count=fault.count,
            detail=fault.message,
        )
        return
    stored = diagnostics.record_fault(fault)
    if stored is fault:
        _log.warning(
            "solve.fault",
            fault=fault.kind,
            stage=fault.stage,
            scenario=diagnostics.stage,
            detail=fault.message,
            recoverable=fault.recoverable,
        )
