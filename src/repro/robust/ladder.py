"""Escalation policy engine: declarative retry ladders per solve stage.

The graphical technique only yields answers when several numerical stages
all succeed; a transient failure in any one of them should degrade to a
slower-but-correct path, not surface as a hard exception.  This module
implements that degradation as *escalation ladders*: an ordered tuple of
:class:`Rung` records, each naming a strategy and the keyword overrides
that realise it, executed by :func:`run_ladder` under an explicit attempt
budget.

Stage ladders (in the spirit of robust harmonic-balance continuation
practice — Kundert's steady-state methodology):

* **natural oscillation** — baseline scan, then a refined ``T_f(A)`` grid,
  then a higher-resolution quadrature;
* **lock states / lock range** — baseline FFT grid, then a refined DF
  grid, then a widened amplitude window, then the dense-quadrature
  referee method;
* **harmonic balance** — damped Newton, then a heavily damped retry at
  higher resolution, then source-stepping continuation from the
  ``V_i -> 0`` single-tone solution.

Every wrapper returns a :class:`RobustResult` — the underlying result
object plus the :class:`~repro.robust.diagnostics.SolveDiagnostics`
telling the full escalation story.  When the ladder exhausts (or hits a
non-recoverable fault) the *typed* final exception is re-raised with the
diagnostics attached as ``exc.diagnostics``, so even failures carry their
history to the CLI.
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from repro.obs import convergence_event, events_active, metrics, trace
from repro.robust.diagnostics import RungAttempt, SolveDiagnostics, collecting
from repro.robust.faults import NumericalFaultError, SolveFault, fault_from_exception

__all__ = [
    "Rung",
    "EscalationPolicy",
    "RobustResult",
    "run_ladder",
    "ladder_progress",
    "natural_policy",
    "lock_state_policy",
    "lock_range_policy",
    "hb_natural_policy",
    "hb_lock_policy",
    "robust_natural",
    "robust_solve_lock_states",
    "robust_predict_lock_range",
    "robust_hb_natural",
    "robust_hb_lock_state",
]


@dataclass(frozen=True)
class Rung:
    """One strategy of an escalation ladder.

    ``overrides`` are keyword arguments merged *over* the caller's own
    when the rung runs; keys starting with ``_`` are ladder directives
    interpreted by the stage wrapper (e.g. ``_widen_window``,
    ``_continuation``) rather than passed to the solver.
    """

    name: str
    description: str
    overrides: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class EscalationPolicy:
    """A stage's declarative retry ladder with an explicit attempt budget."""

    stage: str
    rungs: tuple[Rung, ...]
    max_attempts: int | None = None

    def budget(self) -> int:
        if self.max_attempts is None:
            return len(self.rungs)
        return max(1, min(self.max_attempts, len(self.rungs)))

    def describe(self) -> str:
        steps = " -> ".join(r.name for r in self.rungs[: self.budget()])
        return f"{self.stage}: {steps}"


class RobustResult:
    """A solver result bundled with its escalation diagnostics.

    Attribute access falls through to the wrapped value, so
    ``robust_predict_lock_range(...).width_hz`` works exactly like the
    plain result; use ``.value`` for the bare object and ``.diagnostics``
    for the escalation record.
    """

    __slots__ = ("value", "diagnostics")

    def __init__(self, value, diagnostics: SolveDiagnostics):
        self.value = value
        self.diagnostics = diagnostics

    def __getattr__(self, name):
        return getattr(self.value, name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RobustResult({self.value!r}, {self.diagnostics.summary()!r})"


#: Ambient per-job progress callback (see :func:`ladder_progress`).  A
#: contextvar rather than a parameter so the serve worker can observe rung
#: transitions without threading a callback through every stage wrapper's
#: signature — and without perturbing any in-process caller.
_progress_cb: contextvars.ContextVar[Callable[[dict], None] | None] = (
    contextvars.ContextVar("repro_ladder_progress", default=None)
)


@contextlib.contextmanager
def ladder_progress(callback: Callable[[dict], None] | None):
    """Subscribe ``callback`` to rung transitions inside the block.

    The callback receives one dict per event — ``{"event": "rung-start" |
    "rung-done", "stage": ..., "rung": ...}`` plus ``outcome`` on done
    events — and must never raise (exceptions are swallowed so a broken
    progress channel cannot fail a solve).  The serve worker uses this to
    stream live escalation progress back to the parent process.
    """
    token = _progress_cb.set(callback)
    try:
        yield
    finally:
        _progress_cb.reset(token)


def _emit_progress(event: str, stage: str, rung: str, **fields) -> None:
    callback = _progress_cb.get()
    if callback is None:
        return
    record = {"event": event, "stage": stage, "rung": rung}
    record.update(fields)
    try:
        callback(record)
    except Exception:
        pass


def _recoverable_exceptions() -> tuple:
    """The exception types a ladder converts to faults (lazy core imports)."""
    from repro.core.harmonic_balance import HbConvergenceError
    from repro.core.lockrange import NoLockError
    from repro.core.natural import NoOscillationError

    return (
        NoLockError,
        HbConvergenceError,
        NoOscillationError,
        NumericalFaultError,
        np.linalg.LinAlgError,
    )


def run_ladder(
    policy: EscalationPolicy,
    attempt: Callable[[dict], Any],
    *,
    retry_on_result: Callable[[Any], bool] | None = None,
    deadline: float | None = None,
) -> RobustResult:
    """Execute an escalation ladder.

    Parameters
    ----------
    policy:
        The ladder to walk; at most ``policy.budget()`` rungs run.
    attempt:
        Callable receiving the rung's override dict and performing one
        solve.  Recoverable exceptions become faults and escalate;
        anything else propagates immediately (a bug is not a fault).
    retry_on_result:
        Optional predicate marking a *successful* result as structurally
        suspicious (e.g. zero lock states at the tank centre); the ladder
        then escalates, keeping the suspicious result as the fallback
        answer should every later rung fail too.
    deadline:
        Optional wall-clock deadline as a ``time.monotonic()`` timestamp.
        Every rung checks the remaining budget *before* starting: once the
        deadline has passed, the ladder stops climbing and records a
        ``budget-exhausted`` fault instead of overrunning — a slow
        dense-referee rung can no longer run arbitrarily long past the
        caller's budget.  A fallback result (or the typed exception of the
        last attempted rung) still carries the full diagnostics.

    Raises
    ------
    The final rung's typed exception, with ``.diagnostics`` attached, when
    every attempted rung faulted (or a non-recoverable fault stopped the
    climb early).  When the deadline expires before any rung produced a
    result or typed failure, a :class:`NumericalFaultError` carrying the
    ``budget-exhausted`` fault is raised instead.
    """
    diagnostics = SolveDiagnostics(stage=policy.stage)
    recoverable = _recoverable_exceptions()
    budget = policy.budget()
    last_exc: BaseException | None = None
    fallback: Any = None
    have_fallback = False
    with trace(
        "ladder", attrs={"stage": policy.stage, "budget": budget}
    ) as ladder_sp:
        for index, rung in enumerate(policy.rungs[:budget]):
            if deadline is not None and time.monotonic() >= deadline:
                diagnostics.record_fault(
                    SolveFault(
                        "budget-exhausted",
                        policy.stage,
                        f"wall-clock deadline reached before rung "
                        f"'{rung.name}' ({index}/{budget} attempted)",
                        recoverable=False,
                    )
                )
                metrics.inc("ladder.budget_exhausted", stage=policy.stage)
                ladder_sp.set(budget_exhausted=True)
                break
            params = dict(rung.overrides)
            start = time.perf_counter()
            _emit_progress("rung-start", policy.stage, rung.name)
            with trace(
                "rung", attrs={"stage": policy.stage, "rung": rung.name}
            ) as rung_sp:
                try:
                    with collecting(diagnostics):
                        result = attempt(dict(params))
                except recoverable as exc:
                    wall = time.perf_counter() - start
                    fault = diagnostics.record_fault(
                        fault_from_exception(exc, stage=policy.stage)
                    )
                    diagnostics.attempts.append(
                        RungAttempt(rung.name, params, "fault", fault, wall)
                    )
                    last_exc = exc
                    _emit_progress(
                        "rung-done",
                        policy.stage,
                        rung.name,
                        outcome="fault",
                        fault=fault.kind,
                    )
                    rung_sp.set(outcome="fault", fault=fault.kind)
                    metrics.inc(
                        "ladder.attempts",
                        stage=policy.stage,
                        rung=rung.name,
                        outcome="fault",
                    )
                    if not fault.recoverable:
                        break
                    if events_active():
                        convergence_event(
                            "ladder-escalate",
                            stage=policy.stage,
                            rung=rung.name,
                            fault=fault.kind,
                        )
                    continue
                wall = time.perf_counter() - start
                is_last = index == budget - 1
                if (
                    retry_on_result is not None
                    and not is_last
                    and retry_on_result(result)
                ):
                    fault = diagnostics.record_fault(
                        SolveFault(
                            "suspicious-result",
                            policy.stage,
                            f"rung '{rung.name}' produced a structurally "
                            "suspicious result; escalating",
                        )
                    )
                    diagnostics.attempts.append(
                        RungAttempt(rung.name, params, "retry", fault, wall)
                    )
                    _emit_progress(
                        "rung-done", policy.stage, rung.name, outcome="retry"
                    )
                    rung_sp.set(outcome="retry")
                    metrics.inc(
                        "ladder.attempts",
                        stage=policy.stage,
                        rung=rung.name,
                        outcome="retry",
                    )
                    fallback, have_fallback = result, True
                    continue
                diagnostics.attempts.append(
                    RungAttempt(rung.name, params, "ok", None, wall)
                )
                _emit_progress("rung-done", policy.stage, rung.name, outcome="ok")
                rung_sp.set(outcome="ok")
                metrics.inc(
                    "ladder.attempts",
                    stage=policy.stage,
                    rung=rung.name,
                    outcome="ok",
                )
                if index > 0:
                    diagnostics.recovered_via = rung.name
                    metrics.inc(
                        "ladder.recoveries", stage=policy.stage, rung=rung.name
                    )
                ladder_sp.set(outcome="ok", rung=rung.name)
                return RobustResult(result, diagnostics)
        diagnostics.exhausted = True
        if have_fallback:
            # Every escalation of a suspicious result failed outright; the
            # suspicious answer is still the best (and a correct) one we have.
            ladder_sp.set(outcome="fallback")
            return RobustResult(fallback, diagnostics)
        if last_exc is None:
            # The deadline expired before the first rung could even start:
            # there is no typed solver exception to re-raise, so surface
            # the budget fault itself as the typed failure.
            budget_fault = diagnostics.faults[-1]
            last_exc = NumericalFaultError(budget_fault)
        ladder_sp.set(outcome="exhausted")
        metrics.inc("ladder.exhausted", stage=policy.stage)
        last_exc.diagnostics = diagnostics
        raise last_exc


# -- stage policies -----------------------------------------------------------


def natural_policy() -> EscalationPolicy:
    """Free-running oscillation: refine the ``T_f(A)`` scan, then quadrature."""
    return EscalationPolicy(
        "natural",
        (
            Rung("baseline", "default T_f(A) scan", {}),
            Rung("refined-scan", "4x finer amplitude scan", {"n_grid": 1600}),
            Rung(
                "high-resolution",
                "finer scan plus doubled Fourier quadrature",
                {"n_grid": 3200, "n_samples": 1024},
            ),
        ),
    )


def lock_state_policy() -> EscalationPolicy:
    """Lock states: refine the DF grid, widen the window, go dense."""
    return EscalationPolicy(
        "lock-states",
        (
            Rung("baseline", "default FFT pre-characterisation grid", {}),
            Rung(
                "refined-grid",
                "finer (A, phi) candidate grid",
                {"n_a": 201, "n_phi": 281},
            ),
            Rung(
                "widened-window",
                "1.6x wider amplitude search window",
                {"_widen_window": 1.6, "n_a": 201, "n_phi": 281},
            ),
            Rung(
                "dense-referee",
                "direct-quadrature referee method",
                {"method": "dense", "n_a": 201, "n_phi": 281},
            ),
        ),
    )


def lock_range_policy() -> EscalationPolicy:
    """Lock range: same ladder shape as the lock-state solver."""
    return EscalationPolicy(
        "lock-range",
        (
            Rung("baseline", "default FFT pre-characterisation grid", {}),
            Rung(
                "refined-grid",
                "finer invariant-curve grid",
                {"n_a": 181, "n_phi": 361},
            ),
            Rung(
                "widened-window",
                "1.6x wider amplitude search window",
                {"_widen_window": 1.6, "n_a": 181, "n_phi": 361},
            ),
            Rung(
                "dense-referee",
                "direct-quadrature referee method",
                {"method": "dense", "n_a": 181, "n_phi": 361},
            ),
        ),
    )


def hb_natural_policy() -> EscalationPolicy:
    """Free-running harmonic balance: damp, then refine."""
    return EscalationPolicy(
        "harmonic-balance",
        (
            Rung("baseline", "full Newton from the DF seed", {}),
            Rung(
                "damped-newton",
                "step-capped Newton at doubled resolution",
                {"max_step_rel": 0.25, "n_samples": 1024, "max_iter": 120},
            ),
        ),
    )


def hb_lock_policy() -> EscalationPolicy:
    """Locked harmonic balance: damp, then V_i source-stepping continuation."""
    return EscalationPolicy(
        "harmonic-balance",
        (
            Rung("baseline", "damped Newton from the DF lock seed", {}),
            Rung(
                "damped-newton",
                "tighter step cap, doubled iteration budget",
                {"max_step_rel": 0.1, "max_iter": 120},
            ),
            Rung(
                "continuation",
                "source-step V_i up from the single-tone solution",
                {"_continuation": True},
            ),
        ),
    )


# -- stage wrappers -----------------------------------------------------------


def _widened_window(nonlinearity, tank, scale: float, n_samples: int):
    """The default amplitude window, stretched by ``scale`` on both sides."""
    from repro.core.natural import predict_natural_oscillation

    natural = predict_natural_oscillation(nonlinearity, tank, n_samples=n_samples)
    return (0.3 * natural.amplitude / scale, 1.4 * natural.amplitude * scale)


def robust_natural(
    nonlinearity, tank, *, policy=None, deadline=None, **kwargs
) -> RobustResult:
    """Fault-tolerant :func:`repro.core.natural.predict_natural_oscillation`."""
    from repro.core.natural import predict_natural_oscillation
    from repro.robust.guards import guard_tank

    guard_tank(tank, stage="natural")
    policy = policy or natural_policy()

    def attempt(overrides: dict):
        return predict_natural_oscillation(nonlinearity, tank, **{**kwargs, **overrides})

    return run_ladder(policy, attempt, deadline=deadline)


def robust_solve_lock_states(
    nonlinearity, tank, *, v_i, w_injection, n, policy=None, deadline=None, **kwargs
) -> RobustResult:
    """Fault-tolerant :func:`repro.core.shil.solve_lock_states`.

    Besides converting exceptions into ladder climbs, a structurally
    suspicious outcome — *zero* lock states while the tank phase is
    essentially centred, where theory guarantees a lock whenever the
    oscillator runs at all — triggers escalation too, falling back to the
    suspicious (empty) answer only if every refinement agrees with it.
    """
    from repro.core.shil import solve_lock_states
    from repro.robust.guards import guard_tank

    guard_tank(tank, stage="lock-states")
    policy = policy or lock_state_policy()
    n_samples = int(kwargs.get("n_samples", 0)) or None

    def attempt(overrides: dict):
        merged = {**kwargs, **overrides}
        scale = merged.pop("_widen_window", None)
        if scale is not None and "amplitude_window" not in kwargs:
            merged["amplitude_window"] = _widened_window(
                nonlinearity, tank, scale, n_samples or 256
            )
        else:
            merged.pop("_widen_window", None)
        return solve_lock_states(
            nonlinearity, tank, v_i=v_i, w_injection=w_injection, n=n, **merged
        )

    def suspicious(solution) -> bool:
        return not solution.locks and abs(solution.phi_d) < 0.02

    return run_ladder(
        policy, attempt, retry_on_result=suspicious, deadline=deadline
    )


def robust_predict_lock_range(
    nonlinearity, tank, *, v_i, n, policy=None, deadline=None, **kwargs
) -> RobustResult:
    """Fault-tolerant :func:`repro.core.lockrange.predict_lock_range`."""
    from repro.core.lockrange import predict_lock_range
    from repro.robust.guards import guard_tank

    guard_tank(tank, stage="lock-range")
    policy = policy or lock_range_policy()
    n_samples = int(kwargs.get("n_samples", 0)) or None

    def attempt(overrides: dict):
        merged = {**kwargs, **overrides}
        scale = merged.pop("_widen_window", None)
        if scale is not None and "amplitude_window" not in kwargs:
            merged["amplitude_window"] = _widened_window(
                nonlinearity, tank, scale, n_samples or 256
            )
        else:
            merged.pop("_widen_window", None)
        return predict_lock_range(nonlinearity, tank, v_i=v_i, n=n, **merged)

    return run_ladder(policy, attempt, deadline=deadline)


def robust_hb_natural(
    nonlinearity, tank, *, policy=None, deadline=None, **kwargs
) -> RobustResult:
    """Fault-tolerant :func:`repro.core.harmonic_balance.hb_natural_oscillation`."""
    from repro.core.harmonic_balance import hb_natural_oscillation
    from repro.robust.guards import guard_tank

    guard_tank(tank, stage="harmonic-balance")
    policy = policy or hb_natural_policy()

    def attempt(overrides: dict):
        return hb_natural_oscillation(nonlinearity, tank, **{**kwargs, **overrides})

    return run_ladder(policy, attempt, deadline=deadline)


#: V_i fractions walked by the harmonic-balance continuation rung.  The
#: ramp starts at a quarter of the injection, not lower: the phase
#: stiffness of the locked Newton scales with ``V_i``, so very small
#: fractions leave a near-null phase direction where finite-difference
#: Jacobian noise makes Newton limit-cycle instead of converge.
_CONTINUATION_STEPS = (0.25, 0.5, 1.0)


def _hb_lock_continuation(nonlinearity, tank, *, v_i, w_injection, n, **kwargs):
    """Source-stepping homotopy: ramp ``V_i`` from the single-tone solution.

    The ``V_i -> 0`` limit of the locked problem is the free-running
    oscillation, whose harmonic-balance solution is easy (the DF seed is
    excellent there).  Walking ``V_i`` up in steps, seeding each Newton
    with the previous converged harmonics, tracks the lock branch into
    regions where a cold Newton from the DF seed walks away.  Every step
    runs damped, with at least a 120-iteration budget.
    """
    from repro.core.harmonic_balance import hb_lock_state, hb_natural_oscillation

    k_max = int(kwargs.get("k_max", 7))
    n_samples = int(kwargs.get("n_samples", 512))
    kwargs.setdefault("max_step_rel", 0.25)
    kwargs["max_iter"] = max(int(kwargs.get("max_iter", 60)), 120)
    free = hb_natural_oscillation(
        nonlinearity, tank, k_max=k_max, n_samples=n_samples
    )
    harmonics = free.harmonics
    solution = None
    for fraction in _CONTINUATION_STEPS:
        solution = hb_lock_state(
            nonlinearity,
            tank,
            v_i=fraction * v_i,
            w_injection=w_injection,
            n=n,
            initial=harmonics,
            **kwargs,
        )
        harmonics = solution.harmonics
    return solution


def robust_hb_lock_state(
    nonlinearity, tank, *, v_i, w_injection, n, policy=None, deadline=None, **kwargs
) -> RobustResult:
    """Fault-tolerant :func:`repro.core.harmonic_balance.hb_lock_state`."""
    from repro.core.harmonic_balance import hb_lock_state
    from repro.robust.guards import guard_tank

    guard_tank(tank, stage="harmonic-balance")
    policy = policy or hb_lock_policy()

    def attempt(overrides: dict):
        merged = {**kwargs, **overrides}
        if merged.pop("_continuation", False):
            return _hb_lock_continuation(
                nonlinearity, tank, v_i=v_i, w_injection=w_injection, n=n, **merged
            )
        return hb_lock_state(
            nonlinearity, tank, v_i=v_i, w_injection=w_injection, n=n, **merged
        )

    return run_ladder(policy, attempt, deadline=deadline)
