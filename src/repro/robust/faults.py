"""Typed fault records for the fault-tolerant solve pipeline.

Every numerical misbehaviour the solvers can encounter — NaN samples from
a device law, a singular harmonic-balance Jacobian, a tank phase outside
the invertible window, a corrupt cache record — is described by a
:class:`SolveFault`: a small, serialisable record naming *what* went wrong
(``kind``), *where* (``stage``), and whether an escalation ladder has any
business retrying (``recoverable``).

Guards (:mod:`repro.robust.guards`) raise :class:`NumericalFaultError`
carrying one of these records instead of letting a NaN surface ten frames
later as a cryptic ``LinAlgError``; the ladder engine
(:mod:`repro.robust.ladder`) converts every caught exception into a fault
via :func:`fault_from_exception` and accumulates them on the
:class:`~repro.robust.diagnostics.SolveDiagnostics` attached to each
result.

This module deliberately imports nothing from :mod:`repro.core` so the
core solvers can depend on it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "FAULT_KINDS",
    "SolveFault",
    "NumericalFaultError",
    "fault_from_exception",
]

#: The closed vocabulary of fault kinds.  Keeping it enumerable makes the
#: fault-injection harness's assertions exact ("this scenario must produce
#: *this* fault") and the CLI/report rendering stable.
FAULT_KINDS: frozenset[str] = frozenset(
    {
        "non-finite-samples",  # NaN/Inf from a device law or derived surface
        "singular-jacobian",  # LinAlgError / rank-deficient Newton system
        "ill-conditioned-jacobian",  # finite but numerically useless Jacobian
        "degenerate-tank",  # zero/NaN R, Q, or centre frequency
        "dead-nonlinearity",  # identically-zero law over the window
        "phase-inversion-out-of-range",  # phi_d outside the tank's window
        "curve-missing",  # a required level curve does not exist on the grid
        "no-lock",  # NoLockError from the lock-range machinery
        "hb-divergence",  # harmonic balance failed to converge
        "no-oscillation",  # start-up criterion / no stable T_f = 1 crossing
        "cache-corruption",  # quarantined persistent-cache record
        "suspicious-result",  # structurally implausible result worth a retry
        "budget-exhausted",  # wall-clock deadline hit before/while escalating
        "worker-crash",  # a serving worker subprocess died mid-solve
        "worker-stall",  # a serving worker overran its deadline and was killed
        "queue-saturated",  # admission rejected the job: queue/rate limits
        "malformed-spec",  # a job specification failed validation
        "unexpected-error",  # anything not in this vocabulary
    }
)


@dataclass
class SolveFault:
    """One observed numerical fault.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    stage:
        The pipeline stage that observed it (``"natural"``,
        ``"lock-states"``, ``"lock-range"``, ``"harmonic-balance"``,
        ``"pre-characterisation"``, ``"cache"`` ...).
    message:
        Human-readable description (usually the originating exception's
        message).
    recoverable:
        Whether an escalation rung could plausibly clear it.  Determinstic
        faults (a law that returns NaN, a failed start-up criterion) are
        not — the ladder stops escalating immediately on seeing one.
    count:
        How many times this (kind, stage) fault was observed; batched
        solvers coalesce per-point repeats instead of recording hundreds
        of identical entries.
    context:
        Optional structured detail (offending value, grid size, path ...).
    """

    kind: str
    stage: str
    message: str
    recoverable: bool = True
    count: int = 1
    context: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {sorted(FAULT_KINDS)}"
            )

    def describe(self) -> str:
        """One-line rendering for logs and the CLI."""
        times = f" x{self.count}" if self.count > 1 else ""
        return f"[{self.stage}] {self.kind}{times}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "stage": self.stage,
            "message": self.message,
            "recoverable": self.recoverable,
            "count": self.count,
            "context": dict(self.context),
        }


class NumericalFaultError(RuntimeError):
    """A guard detected a numerical fault early and converted it to a type.

    Carries the :class:`SolveFault` as ``.fault`` so catchers (the ladder,
    the CLI) get structured information instead of parsing a message.
    """

    def __init__(self, fault: SolveFault):
        super().__init__(fault.describe())
        self.fault = fault


def fault_from_exception(exc: BaseException, stage: str) -> SolveFault:
    """Classify a caught exception into a :class:`SolveFault`.

    The mapping is by exception type (and, for :class:`NumericalFaultError`,
    simply the carried fault) so the ladder never has to parse messages.
    Imports of the solver exception types happen lazily to keep this
    module cycle-free.
    """
    if isinstance(exc, NumericalFaultError):
        return exc.fault

    import numpy as np

    if isinstance(exc, np.linalg.LinAlgError):
        return SolveFault("singular-jacobian", stage, str(exc))

    name = type(exc).__name__
    message = str(exc) or name
    if name == "NoLockError":
        return SolveFault("no-lock", stage, message)
    if name == "HbConvergenceError":
        return SolveFault("hb-divergence", stage, message)
    if name == "NoOscillationError":
        # A failed start-up criterion is a property of the oscillator, not
        # of the numerics; no grid refinement will change it.
        recoverable = "start-up" not in message
        return SolveFault("no-oscillation", stage, message, recoverable=recoverable)
    if name == "PhaseInversionError":
        return SolveFault("phase-inversion-out-of-range", stage, message)
    return SolveFault("unexpected-error", stage, f"{name}: {message}")
