"""Rendering and artifacts for sweep results.

Three consumers, three shapes:

* :func:`render_table` — the tidy per-point results table for the
  terminal;
* :func:`render_tongue` — the ASCII Arnol'd-tongue map (rows: ``V_i``
  descending, columns: injection frequency ascending; ``#`` locked,
  ``.`` unlocked, ``!`` fault) — the paper-adjacent lock/no-lock picture
  over the ``(V_i, w_i)`` plane;
* :func:`write_report` — the machine-readable ``SWEEP_REPORT.json``
  artifact.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.sweep.engine import SweepResult

__all__ = ["render_table", "render_tongue", "write_report"]

#: Report format version (bump on breaking key changes).
REPORT_SCHEMA = 1


def render_table(result: SweepResult) -> str:
    """The per-point results table."""
    header = (
        f"{'#':>4}  {'family':<9}{'n':>2}  {'V_i [V]':>9}  {'Qx':>5}  "
        f"{'status':<8}{'lock width [Hz]':>16}  {'locked':>7}  via"
    )
    lines = [header, "-" * len(header)]
    for outcome in result.outcomes:
        point = outcome.point
        width = (
            f"{outcome.lock.width_hz:.6g}" if outcome.lock is not None else "-"
        )
        locked = "-" if outcome.locked is None else ("yes" if outcome.locked else "no")
        via = outcome.recovered_via or ""
        lines.append(
            f"{outcome.index:>4}  {point.family:<9}{point.n:>2}  "
            f"{point.v_i:>9.4g}  {point.q_scale:>5g}  "
            f"{outcome.status:<8}{width:>16}  {locked:>7}  {via}"
        )
    tally = result.counts()
    lines.append(
        f"{result.n_points} points in {result.wall_s:.2f} s "
        f"({result.mode}; {tally['ok']} ok, {tally['no-lock']} no-lock, "
        f"{tally['fault']} fault)"
    )
    return "\n".join(lines)


def render_tongue(result: SweepResult) -> str:
    """The ASCII Arnol'd-tongue lock map.

    Only tongue points (``w_injection`` set) participate; lock-range-only
    points are skipped.  Returns an empty string when the sweep carried
    no tongue points.
    """
    tongue = [o for o in result.outcomes if o.point.w_injection is not None]
    if not tongue:
        return ""
    v_is = sorted({o.point.v_i for o in tongue}, reverse=True)
    freqs = sorted({o.point.w_injection for o in tongue})
    cell = {}
    for o in tongue:
        if o.status == "fault":
            mark = "!"
        elif o.locked:
            mark = "#"
        else:
            mark = "."
        cell[(o.point.v_i, o.point.w_injection)] = mark
    f_lo = freqs[0] / (2.0 * np.pi)
    f_hi = freqs[-1] / (2.0 * np.pi)
    lines = [
        "Arnol'd tongue map ('#' locked, '.' unlocked, '!' fault)",
        f"injection frequency: {f_lo:.6g} .. {f_hi:.6g} Hz ->",
    ]
    for v_i in v_is:
        row = "".join(cell.get((v_i, w), " ") for w in freqs)
        lines.append(f"V_i={v_i:>8.4g} V |{row}|")
    return "\n".join(lines)


def result_payload(result: SweepResult) -> dict:
    """The JSON-able form of a sweep result."""
    rows = []
    for outcome in result.outcomes:
        point = outcome.point
        row = {
            "index": outcome.index,
            "family": point.family,
            "n": point.n,
            "v_i": point.v_i,
            "q_scale": point.q_scale,
            "w_injection": point.w_injection,
            "label": point.label,
            "status": outcome.status,
            "locked": outcome.locked,
            "recovered_via": outcome.recovered_via,
            "detail": outcome.detail,
            "referee_width_hz": outcome.referee_width_hz,
        }
        if outcome.lock is not None:
            row.update(
                injection_lower_hz=outcome.lock.injection_lower_hz,
                injection_upper_hz=outcome.lock.injection_upper_hz,
                width_hz=outcome.lock.width_hz,
            )
        rows.append(row)
    return {
        "report": "SWEEP",
        "schema": REPORT_SCHEMA,
        "spec": result.spec_name,
        "mode": result.mode,
        "wall_s": result.wall_s,
        "groups": result.n_groups,
        "lock_solves": result.lock_solves,
        "counts": result.counts(),
        "points": rows,
    }


def write_report(result: SweepResult, path: str | pathlib.Path) -> pathlib.Path:
    """Write ``SWEEP_REPORT.json`` (or a caller-chosen path)."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(result_payload(result), indent=2) + "\n")
    return path
