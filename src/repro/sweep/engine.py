"""The batched sweep evaluator.

Execution model (one pass per :class:`~repro.sweep.plan.SweepGroup`):

1. materialise the oscillator once and solve its natural oscillation —
   every member point shares the amplitude window;
2. pre-characterise the group's whole ``V_i`` grid in **one** stacked FFT
   pass (:func:`~repro.core.two_tone.two_tone_surfaces_stacked`), routed
   through the sharded cache tier so concurrent sweeps single-flight the
   build and warm records are handed back without recompute;
3. run **one** lock-range solve per distinct ``V_i`` — the lock range
   does not depend on the injection frequency, so an entire tongue-map
   frequency row classifies by interval containment against its ``V_i``'s
   solve;
4. mask faults per point: a failed solve degrades to the PR 3 escalation
   ladder for that point alone (``spec.escalate``) and, if it still
   fails, is reported as a ``no-lock`` / ``fault`` outcome — a batch is
   never aborted by one bad operating point.

Every per-``V_i`` solve goes through the *unmodified*
:func:`~repro.core.lockrange.predict_lock_range` with the group's shared
window and an adopted surface, which makes batched results **bitwise
identical** to the scalar path (asserted by the equivalence tests and the
bench's deviation gate).

:func:`run_sweep_pointwise` is the honest scalar baseline: the naive
point loop that re-enters ``predict_lock_range`` from scratch — natural
solve, pre-characterisation and all — for every grid point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.lockrange import LockRange, NoLockError, predict_lock_range
from repro.core.natural import predict_natural_oscillation
from repro.core.two_tone import (
    TwoToneDF,
    TwoToneSurface,
    surface_disk_key,
    two_tone_surfaces_stacked,
)
from repro.obs import metrics, trace
from repro.perf.sharded_cache import ShardedSurfaceCache
from repro.robust.ladder import _recoverable_exceptions, robust_predict_lock_range
from repro.sweep.plan import SweepGroup, build_plan
from repro.sweep.spec import SweepPoint, SweepSpec
from repro.verify.scenarios import FAMILIES
from repro.tank import ParallelRLC

__all__ = ["SweepOutcome", "SweepResult", "run_sweep", "run_sweep_pointwise"]


@dataclass(frozen=True)
class SweepOutcome:
    """The result of one sweep point.

    ``status`` is ``"ok"`` (lock range solved), ``"no-lock"`` (the solver
    proved no stable lock exists — that is data, not an error) or
    ``"fault"`` (the point failed even after escalation; ``detail`` holds
    the typed fault).  ``locked`` classifies tongue points (``None`` for
    lock-range-only points and faults).
    """

    index: int
    point: SweepPoint
    status: str
    lock: LockRange | None = None
    locked: bool | None = None
    recovered_via: str | None = None
    detail: str = ""
    referee_width_hz: float | None = None


@dataclass
class SweepResult:
    """All outcomes of one sweep run plus its execution telemetry."""

    spec_name: str
    outcomes: list[SweepOutcome]
    wall_s: float
    n_groups: int = 0
    lock_solves: int = 0
    surface_builds: int = 0
    mode: str = "batched"
    trailer: dict = field(default_factory=dict)

    @property
    def n_points(self) -> int:
        return len(self.outcomes)

    def counts(self) -> dict[str, int]:
        """Outcome tally by status."""
        tally = {"ok": 0, "no-lock": 0, "fault": 0}
        for outcome in self.outcomes:
            tally[outcome.status] = tally.get(outcome.status, 0) + 1
        return tally


def _materialise(group: SweepGroup):
    """The group's oscillator (nonlinearity, tank) with its Q-scale applied."""
    nonlinearity, tank = FAMILIES[group.family]()
    if group.q_scale != 1.0:
        tank = ParallelRLC(r=tank.r * group.q_scale, l=tank.l, c=tank.c)
    return nonlinearity, tank


def _solve_point(
    nonlinearity,
    tank,
    point: SweepPoint,
    spec: SweepSpec,
    *,
    amplitude_window=None,
    df: TwoToneDF | None = None,
) -> tuple[LockRange | None, str, str | None, str]:
    """One fault-masked lock-range solve.

    Returns ``(lock, status, recovered_via, detail)``.  The fast path is
    the plain solver (bitwise-identical to scalar calls); recoverable
    failures degrade to the escalation ladder for this point alone when
    ``spec.escalate`` — without the injected window/df, so the ladder's
    rungs (refined grid, widened window, dense referee) behave exactly as
    they do for a scalar caller.
    """
    recoverable = _recoverable_exceptions()
    kwargs = dict(
        v_i=point.v_i,
        n=point.n,
        n_a=spec.n_a,
        n_phi=spec.n_phi,
        n_samples=spec.n_samples,
        method=spec.method,
    )
    try:
        lock = predict_lock_range(
            nonlinearity,
            tank,
            amplitude_window=amplitude_window,
            df=df,
            **kwargs,
        )
        return lock, "ok", None, ""
    except recoverable as exc:
        first_fault = exc
    if spec.escalate:
        metrics.inc("sweep.escalations")
        try:
            robust = robust_predict_lock_range(nonlinearity, tank, **kwargs)
            return (
                robust.value,
                "ok",
                robust.diagnostics.recovered_via,
                "",
            )
        except recoverable as exc:
            first_fault = exc
    metrics.inc("sweep.faults")
    if isinstance(first_fault, NoLockError):
        return None, "no-lock", None, str(first_fault)
    return None, "fault", None, f"{type(first_fault).__name__}: {first_fault}"


def _classify(point: SweepPoint, lock: LockRange | None, status: str):
    """The tongue-map verdict of one outcome (None when not applicable)."""
    if point.w_injection is None:
        return None
    if status == "ok" and lock is not None:
        return bool(lock.contains(point.w_injection))
    if status == "no-lock":
        return False
    return None


def _group_surfaces(
    cache: ShardedSurfaceCache,
    group: SweepGroup,
    nonlinearity,
    amplitudes: np.ndarray,
    spec: SweepSpec,
) -> dict[float, TwoToneSurface]:
    """All the group's per-``V_i`` surfaces, stacked-building the misses.

    Warm records come from the sharded cache (in-process LRU, then the
    group's shard on disk); everything still missing is characterised in
    one :func:`two_tone_surfaces_stacked` call under single-flight locks,
    so concurrent sweeps of the same group build each surface exactly
    once.
    """
    key_of = {
        v_i: surface_disk_key(
            nonlinearity, amplitudes, v_i, group.n, spec.n_samples
        )
        for v_i in group.v_is
    }
    items = {key: v_i for v_i, key in key_of.items()}

    def builder_many(missing_vis):
        missing_vis = sorted(missing_vis)
        metrics.inc("sweep.surface_builds", len(missing_vis))
        surfaces = two_tone_surfaces_stacked(
            nonlinearity, amplitudes, missing_vis, group.n, spec.n_samples
        )
        return {
            key_of[v_i]: surface.to_arrays()
            for v_i, surface in zip(missing_vis, surfaces)
        }

    records = cache.get_or_build_many(group.shard, items, builder_many)
    out: dict[float, TwoToneSurface] = {}
    for v_i, key in key_of.items():
        arrays, meta = records[key]
        out[v_i] = TwoToneSurface.from_arrays(arrays, meta)
    return out


def run_sweep(
    spec: SweepSpec,
    *,
    cache: ShardedSurfaceCache | None = None,
    progress=None,
) -> SweepResult:
    """Execute a sweep through the batched engine.

    Parameters
    ----------
    spec:
        The sweep description.
    cache:
        Sharded surface cache to amortise pre-characterisation through;
        a default-rooted one is created when omitted.
    progress:
        Optional callable ``(done_points, total_points)`` invoked after
        every finished point, so long sweeps can stream live progress
        (the serve layer relays these to ``GET /v1/jobs/<id>/events``).
        Exceptions from the callback are swallowed: a broken progress
        channel must not fail the sweep.
    """
    plan = build_plan(spec)
    if cache is None:
        cache = ShardedSurfaceCache()
    outcomes: dict[int, SweepOutcome] = {}
    started = time.perf_counter()
    surface_builds_before = metrics.counter("sweep.surface_builds")
    with trace(
        "sweep",
        attrs={
            "spec": spec.name,
            "points": plan.n_points,
            "groups": len(plan.groups),
            "method": spec.method,
        },
    ) as sweep_sp:
        done = 0
        for group in plan.groups:
            with trace(
                "sweep.group",
                attrs={
                    "family": group.family,
                    "n": group.n,
                    "q_scale": group.q_scale,
                    "v_is": len(group.v_is),
                    "points": len(group.points),
                    "shard": group.shard,
                },
            ) as group_sp:
                nonlinearity, tank = _materialise(group)
                natural = predict_natural_oscillation(
                    nonlinearity, tank, n_samples=spec.n_samples
                )
                window = (0.3 * natural.amplitude, 1.4 * natural.amplitude)
                amplitudes = np.linspace(window[0], window[1], spec.n_a)

                surfaces: dict[float, TwoToneSurface] = {}
                if spec.method == "fft":
                    surfaces = _group_surfaces(
                        cache, group, nonlinearity, amplitudes, spec
                    )

                solves: dict[float, tuple] = {}
                for v_i in group.v_is:
                    df = TwoToneDF(
                        nonlinearity,
                        v_i,
                        group.n,
                        n_samples=spec.n_samples,
                        method=spec.method,
                    )
                    surface = surfaces.get(v_i)
                    if surface is not None:
                        df.adopt_surface(surface, amplitudes)
                    probe = SweepPoint(
                        family=group.family,
                        n=group.n,
                        v_i=v_i,
                        q_scale=group.q_scale,
                    )
                    solves[v_i] = _solve_point(
                        nonlinearity,
                        tank,
                        probe,
                        spec,
                        amplitude_window=window,
                        df=df,
                    )
                    metrics.inc("sweep.lock_solves")

                # Frequency-axis points share their V_i's solve.
                shared = len(group.points) - len(group.v_is)
                if shared > 0:
                    metrics.inc("sweep.surface_shared", shared)
                referee_budget = spec.check_transient
                for index in group.points:
                    point = spec.points[index]
                    lock, status, recovered_via, detail = solves[point.v_i]
                    referee_width = None
                    if status == "ok" and referee_budget > 0:
                        referee_budget -= 1
                        referee_width = _transient_referee(
                            nonlinearity, tank, point, spec
                        )
                    outcomes[index] = SweepOutcome(
                        index=index,
                        point=point,
                        status=status,
                        lock=lock,
                        locked=_classify(point, lock, status),
                        recovered_via=recovered_via,
                        detail=detail,
                        referee_width_hz=referee_width,
                    )
                    metrics.inc("sweep.points", status=status)
                    done += 1
                    if progress is not None:
                        try:
                            progress(done, plan.n_points)
                        except Exception:
                            pass
                group_sp.set(
                    solves=len(group.v_is),
                    faults=sum(
                        1
                        for i in group.points
                        if outcomes[i].status != "ok"
                    ),
                )
        wall = time.perf_counter() - started
        result = SweepResult(
            spec_name=spec.name,
            outcomes=[outcomes[i] for i in sorted(outcomes)],
            wall_s=wall,
            n_groups=len(plan.groups),
            lock_solves=plan.n_lock_solves,
            surface_builds=int(
                metrics.counter("sweep.surface_builds") - surface_builds_before
            ),
            mode="batched",
        )
        tally = result.counts()
        sweep_sp.set(wall_s=wall, **{f"points_{k}": v for k, v in tally.items()})
    return result


def _transient_referee(
    nonlinearity, tank, point: SweepPoint, spec: SweepSpec
) -> float | None:
    """Quick simulation spot check of one solved point's lock width (Hz).

    Honors the sweep's ``engine`` selection end to end — the global CLI
    ``--engine`` flag lands here via ``spec.engine``, so
    ``repro sweep --engine reference`` referees with the pure-python
    integrator exactly as the direct odesim drivers would.
    """
    from repro.measure.lockrange_sim import LockScanError, simulate_lock_range

    try:
        measured = simulate_lock_range(
            nonlinearity,
            tank,
            v_i=point.v_i,
            n=point.n,
            rounds=2,
            batch=8,
            engine=spec.engine,
        )
    except LockScanError:
        return None
    metrics.inc("sweep.referee_checks")
    return float(measured.width_hz)


def run_sweep_pointwise(spec: SweepSpec) -> SweepResult:
    """The naive scalar baseline: one full solve per grid point.

    Every point re-enters :func:`predict_lock_range` from scratch —
    fresh oscillator, fresh natural solve (via the default window), fresh
    pre-characterisation — exactly the cost profile the batched engine
    amortises away.  Kept honest and simple for the ablation benchmark
    and the equivalence tests.
    """
    outcomes: list[SweepOutcome] = []
    started = time.perf_counter()
    with trace(
        "sweep", attrs={"spec": spec.name, "points": len(spec.points), "mode": "pointwise"}
    ):
        for index, point in enumerate(spec.points):
            nonlinearity, tank = FAMILIES[point.family]()
            if point.q_scale != 1.0:
                tank = ParallelRLC(
                    r=tank.r * point.q_scale, l=tank.l, c=tank.c
                )
            lock, status, recovered_via, detail = _solve_point(
                nonlinearity, tank, point, spec
            )
            outcomes.append(
                SweepOutcome(
                    index=index,
                    point=point,
                    status=status,
                    lock=lock,
                    locked=_classify(point, lock, status),
                    recovered_via=recovered_via,
                    detail=detail,
                )
            )
            metrics.inc("sweep.points", status=status)
    return SweepResult(
        spec_name=spec.name,
        outcomes=outcomes,
        wall_s=time.perf_counter() - started,
        n_groups=0,
        lock_solves=len(spec.points),
        mode="pointwise",
    )
