"""Declarative sweep descriptions.

A sweep is a list of :class:`SweepPoint` operating points plus shared
solver settings (:class:`SweepSpec`).  Points name their oscillator by
verify-matrix family (:data:`repro.verify.scenarios.FAMILIES`) so a spec
is plain data — JSON/YAML loadable via :func:`load_spec` — and the engine
materialises the circuits.

Two constructors cover the common workloads: :meth:`SweepSpec.tongue`
builds the dense ``(V_i, w_i)`` grid of an Arnol'd-tongue map, and
:meth:`SweepSpec.from_verify_matrix` lifts the verification scenarios
into a batch (the first batch workload of the engine).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, replace

import numpy as np

from repro.core.describing_function import DEFAULT_SAMPLES
from repro.utils.validation import check_positive
from repro.verify.scenarios import FAMILIES, scenario_matrix

__all__ = ["SweepPoint", "SweepSpec", "load_spec"]


@dataclass(frozen=True)
class SweepPoint:
    """One operating point of a sweep.

    Attributes
    ----------
    family:
        Oscillator family key in :data:`repro.verify.scenarios.FAMILIES`.
    n:
        Sub-harmonic order.
    v_i:
        Injection phasor magnitude, volts (must be > 0 — the solvers
        require an actual injection).
    w_injection:
        Absolute injection frequency in rad/s to classify as locked /
        unlocked, or ``None`` for a lock-range-only point (the verify
        workload).
    q_scale:
        Tank-R multiplier, as in the verify scenarios.
    label:
        Optional caller tag carried through to the outcome row.
    """

    family: str
    n: int
    v_i: float
    w_injection: float | None = None
    q_scale: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise KeyError(
                f"unknown oscillator family {self.family!r}; "
                f"known: {', '.join(sorted(FAMILIES))}"
            )
        if int(self.n) != self.n or self.n < 1:
            raise ValueError(f"n must be a positive integer, got {self.n}")
        check_positive("v_i", self.v_i)
        check_positive("q_scale", self.q_scale)
        if self.w_injection is not None:
            check_positive("w_injection", self.w_injection)


@dataclass(frozen=True)
class SweepSpec:
    """A full sweep: points plus the shared solver settings.

    ``engine`` selects the transient integrator for the optional
    simulation referee spot checks (``check_transient`` > 0 picks that
    many locked points per group to referee); it is threaded end to end
    from the CLI's global ``--engine`` flag.
    """

    name: str
    points: tuple[SweepPoint, ...]
    method: str = "fft"
    n_a: int = 121
    n_phi: int = 241
    n_samples: int = DEFAULT_SAMPLES
    escalate: bool = True
    engine: str | None = None
    check_transient: int = 0

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("a sweep needs at least one point")
        if self.method not in ("fft", "dense"):
            raise ValueError(f"method must be 'fft' or 'dense', got {self.method!r}")
        if self.check_transient < 0:
            raise ValueError("check_transient must be >= 0")

    def with_engine(self, engine: str | None) -> "SweepSpec":
        """A copy of the spec with the transient engine pinned."""
        return replace(self, engine=engine)

    @classmethod
    def tongue(
        cls,
        family: str,
        n: int,
        v_is,
        *,
        freq_rel_span: float = 0.005,
        freq_count: int = 32,
        q_scale: float = 1.0,
        name: str | None = None,
        **settings,
    ) -> "SweepSpec":
        """The dense ``(V_i, w_i)`` grid of an Arnol'd-tongue map.

        Frequencies span ``n * w_c * (1 +- freq_rel_span)`` around the
        n-th harmonic of the tank centre — the injection frequencies a
        divide-by-n experiment would scan.
        """
        if family not in FAMILIES:
            raise KeyError(
                f"unknown oscillator family {family!r}; "
                f"known: {', '.join(sorted(FAMILIES))}"
            )
        check_positive("freq_rel_span", freq_rel_span)
        if freq_count < 2:
            raise ValueError("freq_count must be >= 2")
        _, tank = FAMILIES[family]()
        w_c = tank.center_frequency
        w_grid = n * w_c * (1.0 + freq_rel_span * np.linspace(-1.0, 1.0, freq_count))
        points = tuple(
            SweepPoint(
                family=family,
                n=int(n),
                v_i=float(v_i),
                w_injection=float(w),
                q_scale=float(q_scale),
            )
            for v_i in np.atleast_1d(np.asarray(v_is, dtype=float))
            for w in w_grid
        )
        return cls(
            name=name or f"tongue-{family}-n{n}", points=points, **settings
        )

    @classmethod
    def from_verify_matrix(cls, mode: str = "quick", **settings) -> "SweepSpec":
        """One lock-range point per verification scenario."""
        points = tuple(
            SweepPoint(
                family=s.family,
                n=s.n,
                v_i=s.v_i,
                q_scale=s.q_scale,
                label=s.scenario_id,
            )
            for s in scenario_matrix(mode)
        )
        return cls(name=f"verify-{mode}", points=points, **settings)


def _grid(value, what: str) -> list[float]:
    """A list-or-{start,stop,count} spec field as a list of floats."""
    if isinstance(value, dict):
        missing = {"start", "stop", "count"} - set(value)
        if missing:
            raise ValueError(f"{what} grid is missing {sorted(missing)}")
        return [
            float(v)
            for v in np.linspace(
                float(value["start"]), float(value["stop"]), int(value["count"])
            )
        ]
    return [float(v) for v in np.atleast_1d(np.asarray(value, dtype=float))]


def load_spec(path: str | pathlib.Path) -> SweepSpec:
    """Load a sweep spec from a JSON or YAML file.

    Two document shapes are accepted:

    * explicit points::

          name: my-sweep
          points:
            - {family: tanh, n: 3, v_i: 0.03}
            - {family: tanh, n: 3, v_i: 0.03, w_injection: 1.885e7}

    * a tongue-map grid (``v_i`` may be a list or a
      ``{start, stop, count}`` range; frequencies are relative to the
      n-th harmonic of the tank centre)::

          name: tanh-tongue
          tongue:
            family: tanh
            n: 3
            v_i: {start: 0.005, stop: 0.06, count: 32}
            freq: {rel_span: 0.005, count: 32}

    Top-level ``method`` / ``n_a`` / ``n_phi`` / ``n_samples`` /
    ``escalate`` / ``check_transient`` override the solver defaults.
    """
    path = pathlib.Path(path)
    text = path.read_text()
    if path.suffix.lower() in (".yaml", ".yml"):
        import yaml

        doc = yaml.safe_load(text)
    else:
        doc = json.loads(text)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: sweep spec must be a mapping")
    settings = {
        key: doc[key]
        for key in ("method", "n_a", "n_phi", "n_samples", "escalate", "check_transient")
        if key in doc
    }
    name = str(doc.get("name") or path.stem)

    if "tongue" in doc:
        tongue = doc["tongue"]
        if not isinstance(tongue, dict):
            raise ValueError(f"{path}: 'tongue' must be a mapping")
        freq = tongue.get("freq", {})
        return SweepSpec.tongue(
            str(tongue["family"]),
            int(tongue["n"]),
            _grid(tongue["v_i"], "v_i"),
            freq_rel_span=float(freq.get("rel_span", 0.005)),
            freq_count=int(freq.get("count", 32)),
            q_scale=float(tongue.get("q_scale", 1.0)),
            name=name,
            **settings,
        )

    raw_points = doc.get("points")
    if not isinstance(raw_points, list) or not raw_points:
        raise ValueError(f"{path}: spec needs a non-empty 'points' list or a 'tongue'")
    points = []
    for row in raw_points:
        if not isinstance(row, dict):
            raise ValueError(f"{path}: each point must be a mapping, got {row!r}")
        points.append(
            SweepPoint(
                family=str(row["family"]),
                n=int(row["n"]),
                v_i=float(row["v_i"]),
                w_injection=(
                    float(row["w_injection"]) if row.get("w_injection") else None
                ),
                q_scale=float(row.get("q_scale", 1.0)),
                label=str(row.get("label", "")),
            )
        )
    return SweepSpec(name=name, points=tuple(points), **settings)
