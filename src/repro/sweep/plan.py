"""Grouping of sweep points into amortisation units.

All points sharing ``(family, n, q_scale)`` describe the *same
oscillator* under the same sub-harmonic order — they share the natural
oscillation (hence the amplitude window), the invariant-curve grid, and,
point for point in ``V_i``, the two-tone pre-characterisation.  The plan
makes that sharing explicit: one :class:`SweepGroup` per key, carrying
the sorted unique ``V_i`` grid the stacked FFT pass characterises in one
call, plus the indices of the member points (frequency-axis points of a
tongue map collapse onto their ``V_i``'s single lock-range solve — the
lock range does not depend on ``w_i``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sweep.spec import SweepSpec

__all__ = ["SweepGroup", "SweepPlan", "build_plan"]


@dataclass(frozen=True)
class SweepGroup:
    """One (oscillator, n, Q-scale) amortisation unit of a sweep.

    Attributes
    ----------
    family, n, q_scale:
        The shared oscillator key.
    v_is:
        Sorted unique injection magnitudes of the member points — the
        stacked pre-characterisation axis.
    points:
        Indices into ``spec.points`` belonging to this group.
    """

    family: str
    n: int
    q_scale: float
    v_is: tuple[float, ...]
    points: tuple[int, ...]

    @property
    def shard(self) -> str:
        """Cache-shard slug of this group."""
        q = f"{self.q_scale:g}".replace(".", "p").replace("-", "m")
        return f"{self.family}-n{self.n}-q{q}"


@dataclass(frozen=True)
class SweepPlan:
    """The grouped execution order of one sweep."""

    groups: tuple[SweepGroup, ...]

    @property
    def n_points(self) -> int:
        return sum(len(g.points) for g in self.groups)

    @property
    def n_lock_solves(self) -> int:
        """Lock-range solves the batched engine will actually run."""
        return sum(len(g.v_is) for g in self.groups)


def build_plan(spec: SweepSpec) -> SweepPlan:
    """Group a spec's points by ``(family, n, q_scale)``.

    Groups come out in first-appearance order; ``v_is`` sorted ascending
    (deterministic stacking order regardless of point order in the spec).
    """
    order: list[tuple[str, int, float]] = []
    members: dict[tuple[str, int, float], list[int]] = {}
    for index, point in enumerate(spec.points):
        key = (point.family, point.n, point.q_scale)
        if key not in members:
            members[key] = []
            order.append(key)
        members[key].append(index)
    groups = []
    for key in order:
        family, n, q_scale = key
        indices = members[key]
        v_is = tuple(sorted({spec.points[i].v_i for i in indices}))
        groups.append(
            SweepGroup(
                family=family,
                n=n,
                q_scale=q_scale,
                v_is=v_is,
                points=tuple(indices),
            )
        )
    return SweepPlan(groups=tuple(groups))
