"""Batch-first sweep engine over the graphical lock-range procedure.

The paper's technique is a per-operating-point procedure, but every real
use of it — table regeneration, the verify matrix, and Arnol'd-tongue maps
over the ``(V_i, w_i)`` plane — is a *sweep*.  This package makes the
batch axis first-class:

* :mod:`repro.sweep.spec` — declarative sweep descriptions
  (:class:`SweepSpec` / :class:`SweepPoint`), loadable from JSON/YAML or
  derived from the verify-matrix scenarios and tongue-map shortcuts;
* :mod:`repro.sweep.plan` — grouping of grid points by
  ``(family, n, q_scale)`` so each group shares one natural-oscillation
  solve and one stacked FFT pre-characterisation
  (:class:`SweepPlan` / :class:`SweepGroup`);
* :mod:`repro.sweep.engine` — the batched evaluator: per-group sharded
  surface caching (:class:`~repro.perf.sharded_cache.ShardedSurfaceCache`),
  per-``V_i`` lock-range solves that are **bitwise identical** to the
  scalar :func:`~repro.core.lockrange.predict_lock_range` path, per-point
  fault masking through the PR 3 escalation ladder, and ``sweep.*``
  spans/counters;
* :mod:`repro.sweep.report` — tidy results tables, the ASCII
  Arnol'd-tongue map, and the ``SWEEP_REPORT.json`` artifact.
"""

from repro.sweep.engine import SweepOutcome, SweepResult, run_sweep, run_sweep_pointwise
from repro.sweep.plan import SweepGroup, SweepPlan, build_plan
from repro.sweep.report import render_table, render_tongue, write_report
from repro.sweep.spec import SweepPoint, SweepSpec, load_spec

__all__ = [
    "SweepPoint",
    "SweepSpec",
    "load_spec",
    "SweepGroup",
    "SweepPlan",
    "build_plan",
    "SweepOutcome",
    "SweepResult",
    "run_sweep",
    "run_sweep_pointwise",
    "render_table",
    "render_tongue",
    "write_report",
]
