"""Command-line interface: ``python -m repro <command> ...``.

Gives designers the paper's analyses without writing Python:

* ``natural``    — free-running amplitude/frequency (Fig. 3 flow),
* ``locks``      — lock states at one injection frequency (Fig. 7 flow),
* ``lockrange``  — the one-pass lock range (Fig. 10 flow),
* ``experiment`` — run a DESIGN.md experiment by id (FIG3..TAB2, ...),
* ``verify``     — the cross-method verification matrix (DESIGN.md §7):
  every prediction path on every scenario, cross-checked within declared
  tolerance bands; writes ``VERIFY_REPORT.json``,
* ``faults``     — the deterministic fault-injection matrix (DESIGN.md
  §8): break the pipeline on purpose, assert every scenario recovers via
  a documented escalation rung or fails typed; writes
  ``FAULTS_REPORT.json`` (``--serve`` runs the service-layer chaos suite
  of DESIGN.md §13 against a live job service instead),
* ``serve``      — the resilient HTTP job service (DESIGN.md §13):
  lockrange/natural/tongue jobs with per-tenant admission control,
  wall-clock deadlines, transient-fault retries, crash-isolated worker
  subprocesses, and graceful degradation; writes ``SERVE_REPORT.json``
  on shutdown,
* ``obs``        — render a ``--trace`` file as a span tree with
  per-phase totals (or validate its schema with ``--validate``),
* ``cache``      — inspect or clear the persistent surface cache.

The solve commands run through the escalation ladders of
:mod:`repro.robust` by default (disable with ``--no-escalate``) and
print a one-line solve-diagnostics summary.  Typed solve failures map to
documented exit codes (3 no-lock, 4 HB divergence, 5 no-oscillation,
6 numerical fault) with a one-line message on stderr instead of a
traceback.

The oscillator can be one of the built-in calibrated setups
(``--oscillator tanh|diffpair|tunnel``) or a custom tanh cell described by
``--gm/--isat`` with an explicit ``--r/--l/--c`` tank.

Examples
--------
::

    python -m repro natural --oscillator tunnel
    python -m repro lockrange --oscillator diffpair --vi 0.03 --n 3
    python -m repro locks --gm 2.5m --isat 1m --r 1k --l 100u --c 10n \\
        --vi 0.03 --n 3 --finj 477.5k
    python -m repro experiment FIG10
    python -m repro --profile experiment FIG14   # writes BENCH_FIG14.json
    python -m repro verify --quick               # the 14-scenario CI matrix
    python -m repro verify --scenario tunnel-n3-vi030m

``--profile`` (before the subcommand) enables the phase timers and dumps
a machine-readable ``BENCH_<ID>.json`` next to the working directory,
including describing-function cache hit/miss counts.  ``locks`` and
``lockrange`` additionally accept ``--method dense`` to force the
direct-quadrature referee instead of the FFT-factorised fast path.

``--trace [PATH]`` (also before the subcommand) records every span the
solve stack opens — with per-iteration Newton convergence events — into a
JSON-lines trace file (default ``TRACE.jsonl``) and snapshots the metrics
registry into ``OBS_REPORT.json``; render the trace afterwards with
``python -m repro obs TRACE.jsonl``.  ``--log-json`` switches the
structured log records to one JSON object per line on stderr.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.utils.units import format_si, parse_value

__all__ = ["main", "build_parser"]

# Typed failure exit codes (documented in the README):
#   0 success, 1 generic/no-lock-states-at-this-frequency, 2 argparse usage,
#   3..6 the typed solve failures below, so scripts can branch on *why*.
EXIT_NO_LOCK = 3
EXIT_HB_DIVERGENCE = 4
EXIT_NO_OSCILLATION = 5
EXIT_NUMERICAL_FAULT = 6


def _resolve_setup(args):
    """Build (nonlinearity, tank, name) from CLI arguments."""
    from repro.experiments.circuits import (
        diffpair_oscillator,
        tanh_oscillator,
        tunnel_oscillator,
    )

    if args.oscillator:
        setup = {
            "tanh": tanh_oscillator,
            "diffpair": diffpair_oscillator,
            "tunnel": tunnel_oscillator,
        }[args.oscillator]()
        return setup.nonlinearity, setup.tank, setup.name
    if args.r is None or args.l is None or args.c is None:
        raise SystemExit(
            "either --oscillator or a full custom tank (--r --l --c) is required"
        )
    from repro.nonlin import NegativeTanh
    from repro.tank import ParallelRLC

    nonlinearity = NegativeTanh(
        gm=parse_value(args.gm), i_sat=parse_value(args.isat)
    )
    tank = ParallelRLC(
        r=parse_value(args.r), l=parse_value(args.l), c=parse_value(args.c)
    )
    return nonlinearity, tank, "custom-tanh"


def _print_diagnostics(diagnostics) -> None:
    """Render a solve's escalation record (one line, more when it escalated)."""
    if diagnostics is None:
        return
    print(f"solve diagnostics: {diagnostics.summary()}")
    if diagnostics.escalated or diagnostics.faults:
        for line in diagnostics.format().splitlines()[1:]:
            print(line)


def _cmd_natural(args) -> int:
    nonlinearity, tank, name = _resolve_setup(args)
    if args.no_escalate:
        from repro.core import predict_natural_oscillation

        natural, diagnostics = predict_natural_oscillation(nonlinearity, tank), None
    else:
        from repro.robust import robust_natural

        result = robust_natural(nonlinearity, tank)
        natural, diagnostics = result.value, result.diagnostics
    print(f"oscillator: {name}")
    print(f"tank: f_c = {format_si(tank.center_frequency / (2 * np.pi), 'Hz')}, "
          f"R = {format_si(tank.peak_resistance, 'Ohm')}")
    print(f"small-signal loop gain T_f(0) = {natural.loop_gain_small_signal:.4g}")
    print(f"natural oscillation: A = {natural.amplitude:.6g} V at "
          f"{format_si(natural.frequency_hz, 'Hz')} "
          f"({'stable' if natural.stable else 'unstable'})")
    _print_diagnostics(diagnostics)
    return 0


def _cmd_locks(args) -> int:
    nonlinearity, tank, name = _resolve_setup(args)
    if args.finj is not None:
        w_injection = 2.0 * np.pi * parse_value(args.finj)
    else:
        w_injection = args.n * tank.center_frequency
    if args.no_escalate:
        from repro.core import solve_lock_states

        solution = solve_lock_states(
            nonlinearity, tank, v_i=parse_value(args.vi),
            w_injection=w_injection, n=args.n, method=args.method,
        )
        diagnostics = None
    else:
        from repro.robust import robust_solve_lock_states

        result = robust_solve_lock_states(
            nonlinearity, tank, v_i=parse_value(args.vi),
            w_injection=w_injection, n=args.n, method=args.method,
        )
        solution, diagnostics = result.value, result.diagnostics
    print(f"oscillator: {name}; injection "
          f"{format_si(w_injection / (2 * np.pi), 'Hz')} at n = {args.n}, "
          f"V_i = {parse_value(args.vi):g} V")
    print(f"tank phase phi_d = {solution.phi_d:+.5f} rad")
    if not solution.locks:
        print("no lock states: injection frequency is outside the lock range")
        _print_diagnostics(diagnostics)
        return 1
    for k, lock in enumerate(solution.locks):
        tag = "stable" if lock.stable else "unstable"
        states = ", ".join(f"{psi:.4f}" for psi in lock.oscillator_phases)
        print(f"lock {k}: phi = {lock.phi:.5f} rad, A = {lock.amplitude:.6g} V "
              f"({tag}); oscillator states: [{states}] rad")
    print(f"total physical states: {solution.total_states} "
          f"(a multiple of n = {solution.n})")
    _print_diagnostics(diagnostics)
    return 0


def _cmd_lockrange(args) -> int:
    nonlinearity, tank, name = _resolve_setup(args)
    if args.no_escalate:
        from repro.core import predict_lock_range

        lock_range = predict_lock_range(
            nonlinearity, tank, v_i=parse_value(args.vi), n=args.n,
            method=args.method,
        )
        diagnostics = None
    else:
        from repro.robust import robust_predict_lock_range

        result = robust_predict_lock_range(
            nonlinearity, tank, v_i=parse_value(args.vi), n=args.n,
            method=args.method,
        )
        lock_range, diagnostics = result.value, result.diagnostics
    print(f"oscillator: {name}; n = {args.n}, V_i = {parse_value(args.vi):g} V")
    print(f"lower lock limit: {format_si(lock_range.injection_lower_hz, 'Hz')}")
    print(f"upper lock limit: {format_si(lock_range.injection_upper_hz, 'Hz')}")
    print(f"lock range width: {format_si(lock_range.width_hz, 'Hz')}")
    print(f"boundary tank phase: {lock_range.phi_d_at_lower:+.5f} rad "
          f"(symmetric: {lock_range.phi_d_at_upper:+.5f})")
    print(f"amplitude at the edges: {lock_range.amplitude_at_lower:.6g} V")
    _print_diagnostics(diagnostics)
    return 0


def _cmd_faults(args) -> int:
    from repro.robust.injection import fault_scenarios, run_fault_matrix

    if args.list:
        for scenario in fault_scenarios(quick=False):
            print(f"{scenario.scenario_id}: {scenario.description} "
                  f"[expect {scenario.expectation}: {scenario.expected_fault}]")
        if args.serve:
            from repro.serve.chaos import serve_scenarios

            for scenario in serve_scenarios():
                print(f"{scenario.scenario_id}: {scenario.description} "
                      f"[expect {scenario.expectation}: {scenario.expected_fault}]"
                      " [service]")
        return 0
    if args.serve:
        from repro.serve.chaos import run_serve_fault_matrix

        report = run_serve_fault_matrix(
            progress=lambda line: print(f".. {line}", flush=True)
        )
    else:
        quick = not args.full
        report = run_fault_matrix(
            quick=quick, progress=lambda line: print(f".. {line}", flush=True)
        )
    print(report.format())
    path = report.write(args.report)
    print(f"report written to {path}")
    return 0 if report.passed else 1


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.serve import JobService, ServeConfig, write_serve_report
    from repro.serve.admission import load_tenant_config
    from repro.serve.httpd import start_http_server
    from repro.serve.retry import RetryPolicy

    tenants = (
        load_tenant_config(args.tenant_config) if args.tenant_config else {}
    )
    config = ServeConfig(
        workers=args.workers,
        queue_limit=args.queue_limit,
        tenants=tenants,
        retry=RetryPolicy(max_attempts=args.max_attempts),
        default_deadline_s=parse_value(args.deadline),
        allow_chaos=args.allow_chaos,
    )

    async def _serve_forever() -> int:
        service = JobService(config)
        await service.start()
        server = await start_http_server(
            service, host=args.host, port=args.port
        )
        port = server.sockets[0].getsockname()[1]
        print(
            f"repro serve listening on http://{args.host}:{port} "
            f"({config.workers} workers, queue limit {config.queue_limit}"
            f"{', chaos enabled' if config.allow_chaos else ''})",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)
        try:
            await stop.wait()
            print("shutting down ...", flush=True)
        finally:
            server.close()
            await server.wait_closed()
            await service.stop()
            path = write_serve_report(service, args.report)
            print(f"serve report written to {path}", flush=True)
        return 1 if service.unhandled_errors else 0

    return asyncio.run(_serve_forever())


def _cmd_experiment(args) -> int:
    from repro.experiments import run_experiment

    kwargs = {"quick": True} if args.quick else {}
    try:
        result = run_experiment(args.id, **kwargs)
    except TypeError:
        # Driver without a quick switch.
        result = run_experiment(args.id)
    print(result.format())
    return 0


def _cmd_verify(args) -> int:
    from repro.verify import (
        DEFAULT_GOLDEN_PATH,
        diff_against_golden,
        run_matrix,
        scenario_matrix,
        write_golden,
    )

    if args.list:
        for scenario in scenario_matrix("full"):
            print(scenario.describe())
        return 0
    mode = "full" if args.full else "quick"
    report = run_matrix(
        mode,
        scenario_ids=args.scenario or None,
        progress=lambda line: print(f".. {line}", flush=True),
    )
    print(report.format())
    path = report.write(args.report)
    print(f"report written to {path}")
    code = 0 if report.ok else 1
    if args.update_golden:
        print(f"golden updated: {write_golden(report)}")
        return code
    import pathlib

    if pathlib.Path(DEFAULT_GOLDEN_PATH).exists():
        regressions = diff_against_golden(report)
        for line in regressions:
            print(f"golden regression: {line}")
        if regressions:
            code = 1
    return code


def _cmd_obs(args) -> int:
    from repro.obs import (
        analyze_serve_trace,
        summarise_trace,
        validate_obs_report,
        validate_trace,
    )

    if args.validate:
        problems = validate_trace(args.trace_file)
        if args.obs_report is not None:
            problems += validate_obs_report(args.obs_report)
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        if problems:
            return 1
        checked = "trace and report schemas" if args.obs_report else "trace schema"
        print(f"{checked} valid")
        return 0
    try:
        if args.serve:
            print(analyze_serve_trace(args.trace_file, top=args.top))
        else:
            print(summarise_trace(args.trace_file))
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_regress(args) -> int:
    if args.gate == "surfaces":
        from repro.regress import (
            check_surfaces,
            compute_manifest,
            load_manifest,
            write_manifest,
        )

        if args.update:
            path = write_manifest(compute_manifest(), args.manifest)
            print(f"golden surface manifest written to {path}")
            print(
                "commit this file; reviewers should treat fingerprint "
                "changes as algorithm/environment changes"
            )
            return 0
        problems = check_surfaces(args.manifest)
        if problems:
            for problem in problems:
                print(f"surface drift: {problem}", file=sys.stderr)
            return 1
        pinned = len(load_manifest(args.manifest).get("entries", {}))
        print(f"surfaces: {pinned} pinned case(s) match the golden manifest")
        return 0

    if args.gate == "bench":
        from repro.regress import (
            DEFAULT_BENCH_FILES,
            append_history,
            check_bench_file,
        )

        files = args.files or list(DEFAULT_BENCH_FILES)
        problems: list[str] = []
        for bench_file in files:
            import pathlib

            if not pathlib.Path(bench_file).is_file():
                print(f"bench: {bench_file} not found (skipped)")
                continue
            problems += check_bench_file(bench_file, history_dir=args.history)
            if args.record:
                target = append_history(bench_file, history_dir=args.history)
                if target is not None:
                    print(f"bench: {bench_file} appended to {target}")
        for problem in problems:
            print(f"bench regression: {problem}", file=sys.stderr)
        if problems:
            return 1
        print(f"bench: {len(files)} snapshot(s) inside every tolerance band")
        return 0

    # args.gate == "spans"
    from repro.regress import run_serve_span_gate, run_span_gate

    if args.serve:
        result = run_serve_span_gate(trace_out=args.trace_out)
    else:
        result = run_span_gate(
            scenario_ids=tuple(args.scenario) if args.scenario else None,
            trace_out=args.trace_out,
        )
    print(result.format())
    if result.trace_path:
        print(f"trace written to {result.trace_path}")
    if not result.ok:
        print("span budgets violated", file=sys.stderr)
        return 1
    return 0


def _cmd_cache(args) -> int:
    from repro.obs import metrics
    from repro.perf import default_cache

    cache = default_cache()
    if args.clear:
        removed = cache.clear()
        print(f"cache cleared: {removed} record(s) removed from {cache.root}")
        return 0
    print(f"cache root: {cache.root}")
    print(f"records on disk: {len(cache)} (max {cache.max_entries})")
    coverage = cache.fingerprint_coverage()
    current = coverage["records"] - coverage["legacy"]
    print(
        f"records with output fingerprint: "
        f"{coverage['fingerprinted']}/{current} "
        f"(verified {coverage['verified']}, mismatched {coverage['mismatched']}, "
        f"legacy pre-fingerprint {coverage['legacy']})"
    )
    for stat in sorted(cache.stats):
        count = metrics.counter(f"cache.{stat}")
        print(f"this process {stat}: {count}")
    return 0


def _cmd_sweep(args) -> int:
    from dataclasses import replace

    from repro.sweep import (
        SweepSpec,
        build_plan,
        load_spec,
        render_table,
        render_tongue,
        run_sweep,
        run_sweep_pointwise,
        write_report,
    )

    if args.spec:
        spec = load_spec(args.spec)
    elif args.matrix:
        spec = SweepSpec.from_verify_matrix(args.matrix)
    elif args.oscillator:
        spec = SweepSpec.tongue(
            args.oscillator,
            args.n,
            np.linspace(
                parse_value(args.vi_start), parse_value(args.vi_stop), args.vi_count
            ),
            freq_rel_span=args.freq_span,
            freq_count=args.freq_count,
            q_scale=args.q_scale,
        )
    else:
        raise SystemExit(
            "one of --spec, --matrix or --oscillator (tongue shortcut) is required"
        )
    overrides = {"engine": args.engine}
    if args.method is not None:
        overrides["method"] = args.method
    if args.no_escalate:
        overrides["escalate"] = False
    if args.check_transient:
        overrides["check_transient"] = args.check_transient
    spec = replace(spec, **overrides)

    plan = build_plan(spec)
    print(
        f"sweep '{spec.name}': {len(spec.points)} point(s) in "
        f"{len(plan.groups)} group(s), {plan.n_lock_solves} lock solve(s) "
        f"({'pointwise' if args.no_batch else 'batched'}, method={spec.method})"
    )
    if args.no_batch:
        result = run_sweep_pointwise(spec)
    else:
        # Progress ticks are per point now; throttle to ~10 lines per sweep.
        def _tick(done, total, _last=[0]):
            stride = max(1, total // 10)
            if done == total or done - _last[0] >= stride:
                _last[0] = done
                print(f".. {done}/{total} points", flush=True)

        result = run_sweep(spec, progress=_tick)
    print(render_table(result))
    tongue = render_tongue(result)
    if tongue:
        print()
        print(tongue)
        if args.tongue:
            import pathlib

            pathlib.Path(args.tongue).write_text(tongue + "\n")
            print(f"tongue map written to {args.tongue}")
    path = write_report(result, args.report)
    print(f"report written to {path}")
    # no-lock and fault points are sweep *data*, not command failures.
    return 0


def _add_oscillator_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("oscillator")
    group.add_argument(
        "--oscillator",
        choices=("tanh", "diffpair", "tunnel"),
        help="one of the calibrated paper oscillators",
    )
    group.add_argument("--gm", default="2.5m", help="custom tanh gm (S)")
    group.add_argument("--isat", default="1m", help="custom tanh saturation (A)")
    group.add_argument("--r", help="tank resistance (Ohm), e.g. 1k")
    group.add_argument("--l", help="tank inductance (H), e.g. 100u")
    group.add_argument("--c", help="tank capacitance (F), e.g. 10n")


def _add_method_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--method",
        choices=("fft", "dense"),
        default="fft",
        help="pre-characterisation path: FFT-factorised fast path "
        "(default) or the direct-quadrature dense referee",
    )


def _add_escalation_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-escalate",
        action="store_true",
        help="disable the escalation ladder: fail on the first attempt "
        "instead of retrying with refined grids / widened windows / the "
        "dense referee",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SHIL analysis of LC oscillators (Bhushan, DAC 2014)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="time the analysis phases and write BENCH_<ID>.json "
        "(place before the subcommand)",
    )
    parser.add_argument(
        "--trace",
        nargs="?",
        const="TRACE.jsonl",
        default=None,
        metavar="PATH",
        help="record a span trace of the run (JSON lines; default "
        "TRACE.jsonl) and write OBS_REPORT.json with the metrics "
        "snapshot (place before the subcommand)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured log records as JSON lines on stderr",
    )
    parser.add_argument(
        "--engine",
        choices=("auto", "compiled", "reference"),
        default=None,
        help="transient integration engine for any simulation the command "
        "runs: 'compiled' insists on a native kernel, 'reference' forces "
        "the pure-Python referee loop (place before the subcommand; "
        "default auto, also settable via $REPRO_ENGINE)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_nat = sub.add_parser("natural", help="free-running oscillation prediction")
    _add_oscillator_options(p_nat)
    _add_escalation_option(p_nat)
    p_nat.set_defaults(func=_cmd_natural)

    p_locks = sub.add_parser("locks", help="lock states at one injection frequency")
    _add_oscillator_options(p_locks)
    p_locks.add_argument("--vi", default="0.03", help="injection phasor magnitude (V)")
    p_locks.add_argument("--n", type=int, default=3, help="sub-harmonic order")
    p_locks.add_argument(
        "--finj", help="injection frequency (Hz, SPICE suffixes ok); "
        "defaults to n times the tank centre"
    )
    _add_method_option(p_locks)
    _add_escalation_option(p_locks)
    p_locks.set_defaults(func=_cmd_locks)

    p_range = sub.add_parser("lockrange", help="one-pass lock-range prediction")
    _add_oscillator_options(p_range)
    p_range.add_argument("--vi", default="0.03", help="injection phasor magnitude (V)")
    p_range.add_argument("--n", type=int, default=3, help="sub-harmonic order")
    _add_method_option(p_range)
    _add_escalation_option(p_range)
    p_range.set_defaults(func=_cmd_lockrange)

    p_faults = sub.add_parser(
        "faults",
        help="deterministic fault-injection matrix (writes FAULTS_REPORT.json)",
        description="Inject known failures (singular HB Jacobians, non-finite "
        "nonlinearity samples, truncated cache records, unreachable tank "
        "phase inversions, degenerate circuits) and verify each one either "
        "recovers via a documented escalation rung or fails with its "
        "declared typed fault. Exits non-zero if any scenario misbehaves.",
    )
    group = p_faults.add_mutually_exclusive_group()
    group.add_argument(
        "--quick", action="store_true",
        help="skip the slowest scenarios (default; used by CI)",
    )
    group.add_argument(
        "--full", action="store_true",
        help="all scenarios, including the HB continuation ramp",
    )
    p_faults.add_argument(
        "--list", action="store_true", help="list scenario ids and exit"
    )
    p_faults.add_argument(
        "--report",
        default="FAULTS_REPORT.json",
        help="output path for the machine-readable report",
    )
    p_faults.add_argument(
        "--serve",
        action="store_true",
        help="run the service-layer chaos suite instead (worker kills, "
        "stalls, queue floods, corrupt shards, malformed specs) against a "
        "live repro-serve instance",
    )
    p_faults.set_defaults(func=_cmd_faults)

    p_serve = sub.add_parser(
        "serve",
        help="HTTP job service over the sweep engine (admission control, "
        "deadlines, retries, graceful degradation)",
        description="Serve lockrange/natural/tongue jobs over HTTP with "
        "per-tenant rate limits and quotas, a bounded queue (typed 429/503 "
        "with Retry-After), wall-clock deadlines enforced down into the "
        "escalation ladder, crash-isolated worker subprocesses, and a "
        "stale-cache / coarse-estimate degradation chain. Writes "
        "SERVE_REPORT.json on shutdown.",
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument(
        "--port", type=int, default=8321, help="bind port (0 picks a free one)"
    )
    p_serve.add_argument(
        "--workers", type=int, default=2, help="solver worker subprocesses"
    )
    p_serve.add_argument(
        "--queue-limit", type=int, default=16,
        help="bounded job-queue size (beyond it submissions get 503)",
    )
    p_serve.add_argument(
        "--tenant-config", default=None,
        help="JSON file of per-tenant rate/quota policies "
        '({"default": {...}, "tenants": {...}})',
    )
    p_serve.add_argument(
        "--max-attempts", type=int, default=3,
        help="attempt cap per job for transient-fault retries",
    )
    p_serve.add_argument(
        "--deadline", default="30",
        help="default per-job wall-clock budget in seconds",
    )
    p_serve.add_argument(
        "--allow-chaos", action="store_true",
        help="honour chaos instrumentation in job specs (testing only)",
    )
    p_serve.add_argument(
        "--report", default="SERVE_REPORT.json",
        help="shutdown report path",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_exp = sub.add_parser("experiment", help="run a DESIGN.md experiment by id")
    p_exp.add_argument("id", help="experiment id, e.g. FIG10 or TAB1")
    p_exp.add_argument("--quick", action="store_true", help="reduced-cost variant")
    p_exp.set_defaults(func=_cmd_experiment)

    p_verify = sub.add_parser(
        "verify",
        help="cross-method verification matrix (writes VERIFY_REPORT.json)",
        description="Run the scenario-matrix oracle: every applicable "
        "prediction path on every scenario, cross-checked pairwise within "
        "declared tolerance bands, plus the paper's structural invariants "
        "(n states spaced 2*pi/n, symmetric lock range, the single-tone "
        "limit, jacobian-vs-slope-rule agreement). Exits non-zero on any "
        "confirmed disagreement or golden-status regression.",
    )
    group = p_verify.add_mutually_exclusive_group()
    group.add_argument(
        "--quick",
        action="store_true",
        help="the 14-scenario CI matrix, DF-side checks only (default)",
    )
    group.add_argument(
        "--full",
        action="store_true",
        help="adds harder scenarios plus transient/PPV ground-truth checks "
        "(minutes, not seconds)",
    )
    p_verify.add_argument(
        "--scenario",
        action="append",
        metavar="ID",
        help="run only this scenario id (repeatable; see --list)",
    )
    p_verify.add_argument(
        "--list", action="store_true", help="list scenario ids and exit"
    )
    p_verify.add_argument(
        "--report",
        default="VERIFY_REPORT.json",
        help="output path for the machine-readable report",
    )
    p_verify.add_argument(
        "--update-golden",
        action="store_true",
        help="rewrite the status-only golden artifact from this run",
    )
    p_verify.set_defaults(func=_cmd_verify)

    p_sweep = sub.add_parser(
        "sweep",
        help="batched lock-range sweep / Arnol'd-tongue map (writes "
        "SWEEP_REPORT.json)",
        description="Run a batch of operating points through the batched "
        "sweep engine: points are grouped by (oscillator, n, Q-scale), "
        "each group shares one natural-oscillation solve and one stacked "
        "FFT pre-characterisation, and every distinct V_i runs exactly one "
        "lock-range solve (bitwise identical to the scalar path). Tongue "
        "points classify locked/unlocked by containment; faulted points "
        "degrade to the escalation ladder individually and never abort "
        "the batch.",
    )
    source = p_sweep.add_mutually_exclusive_group()
    source.add_argument(
        "--spec", metavar="FILE", help="sweep spec file (JSON or YAML)"
    )
    source.add_argument(
        "--matrix",
        choices=("quick", "full"),
        help="sweep the verify-matrix scenarios as the batch workload",
    )
    source.add_argument(
        "--oscillator",
        choices=("tanh", "skewed", "diffpair", "tunnel"),
        help="tongue-map shortcut: dense (V_i, f_inj) grid on this family",
    )
    p_sweep.add_argument("--n", type=int, default=3, help="sub-harmonic order")
    p_sweep.add_argument(
        "--vi-start", default="0.005", help="tongue V_i grid start (V)"
    )
    p_sweep.add_argument(
        "--vi-stop", default="0.06", help="tongue V_i grid stop (V)"
    )
    p_sweep.add_argument(
        "--vi-count", type=int, default=16, help="tongue V_i grid points"
    )
    p_sweep.add_argument(
        "--freq-span",
        type=float,
        default=0.005,
        help="tongue frequency half-span relative to n*f_c",
    )
    p_sweep.add_argument(
        "--freq-count", type=int, default=16, help="tongue frequency grid points"
    )
    p_sweep.add_argument(
        "--q-scale", type=float, default=1.0, help="tank-Q scale factor"
    )
    p_sweep.add_argument(
        "--method",
        choices=("fft", "dense"),
        default=None,
        help="override the spec's pre-characterisation path",
    )
    p_sweep.add_argument(
        "--check-transient",
        type=int,
        default=0,
        metavar="K",
        help="referee up to K solved points per group against a quick "
        "transient simulation (honors the global --engine selection)",
    )
    p_sweep.add_argument(
        "--no-batch",
        action="store_true",
        help="run the naive scalar point loop instead (ablation baseline)",
    )
    p_sweep.add_argument(
        "--report",
        default="SWEEP_REPORT.json",
        help="output path for the machine-readable report",
    )
    p_sweep.add_argument(
        "--tongue",
        metavar="PATH",
        help="also write the ASCII tongue map to this file",
    )
    _add_escalation_option(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_obs = sub.add_parser(
        "obs",
        help="render or validate a --trace file (span tree + phase totals)",
        description="Render a JSON-lines trace recorded with --trace as an "
        "indented span tree (durations, iteration counts, residual norms, "
        "convergence-event counts) followed by per-span wall-time totals. "
        "With --validate, structurally check the trace (and optionally an "
        "OBS_REPORT.json) instead, exiting non-zero on any problem.",
    )
    # dest must not collide with the global --trace flag (same namespace).
    p_obs.add_argument(
        "trace_file",
        metavar="TRACE",
        help="path to a trace file written by --trace",
    )
    p_obs.add_argument(
        "--validate",
        action="store_true",
        help="schema-check instead of rendering (CI smoke mode)",
    )
    p_obs.add_argument(
        "--obs-report",
        metavar="PATH",
        help="with --validate, also check this OBS_REPORT.json",
    )
    p_obs.add_argument(
        "--serve",
        action="store_true",
        help="analyze a stitched serve trace instead: per-job span trees "
        "with queue-wait vs solve-time breakdowns and the slowest ladder "
        "rungs across the fleet",
    )
    p_obs.add_argument(
        "--top",
        type=int,
        default=5,
        metavar="N",
        help="with --serve, how many slowest rungs to list (default 5)",
    )
    p_obs.set_defaults(func=_cmd_obs)

    p_regress = sub.add_parser(
        "regress",
        help="fleet-scale regression gates (surfaces, bench bands, span budgets)",
        description="Run one of the three CI regression gates: 'surfaces' "
        "diffs freshly computed surface fingerprints against the committed "
        "golden manifest, 'bench' enforces tolerance bands on the BENCH_*.json "
        "snapshots against their recorded history, and 'spans' replays a "
        "canonical verify-matrix slice under tracing and asserts the recorded "
        "work telemetry against declared budgets. All exit non-zero on drift.",
    )
    regress_sub = p_regress.add_subparsers(dest="gate", required=True)

    p_surfaces = regress_sub.add_parser(
        "surfaces",
        help="diff computed surface fingerprints against the golden manifest",
        description="Recompute the pinned pre-characterisation surfaces and "
        "compare their payload fingerprints and cache disk keys against "
        "tests/regress/golden/manifest.json. Payload drift (numerics moved) "
        "and key drift (cache recipe changed) are reported separately; both "
        "require an explicit, reviewed --update to accept.",
    )
    p_surfaces.add_argument(
        "--manifest",
        default="tests/regress/golden/manifest.json",
        help="golden manifest path (default: the committed one)",
    )
    p_surfaces.add_argument(
        "--update",
        action="store_true",
        help="rewrite the golden manifest from the current computation "
        "(an intentional, reviewed regen — never run this to quiet CI)",
    )
    p_surfaces.set_defaults(func=_cmd_regress)

    p_bench = regress_sub.add_parser(
        "bench",
        help="enforce tolerance bands on BENCH_*.json against their history",
        description="Check each BENCH snapshot's metrics against the declared "
        "bands: absolute exactness bounds (width deviations stay 0) against "
        "the snapshot itself, ratio bounds (speedup_x >= 0.8x trailing "
        "median) against benchmarks/results/history/<BENCH>.jsonl. With "
        "--record, also append the snapshot to the history (bench jobs only).",
    )
    p_bench.add_argument(
        "files",
        nargs="*",
        metavar="BENCH_FILE",
        help="snapshot files to gate (default: BENCH_SPEED/TRANSIENT/SWEEP"
        ".json in the working directory; missing files are skipped)",
    )
    p_bench.add_argument(
        "--history",
        default="benchmarks/results/history",
        help="history directory of <BENCH>.jsonl files",
    )
    p_bench.add_argument(
        "--record",
        action="store_true",
        help="append each checked snapshot to its history file",
    )
    p_bench.set_defaults(func=_cmd_regress)

    p_spans = regress_sub.add_parser(
        "spans",
        help="replay verify scenarios under tracing and assert work budgets",
        description="Replay the canonical budget scenarios through the quick "
        "verify matrix with tracing enabled (against a fresh temporary "
        "surface cache, so cache telemetry is the deterministic cold-run "
        "profile) and assert hb.iterations, df.evaluations, ladder "
        "escalations, cache hit rates and span counts against the budgets "
        "declared in repro.regress.budgets.",
    )
    p_spans.add_argument(
        "--scenario",
        action="append",
        metavar="ID",
        help="replay only this scenario id (repeatable; default: the "
        "declared budget scenarios)",
    )
    p_spans.add_argument(
        "--trace-out",
        metavar="PATH",
        help="also write the replay's span trace to this file",
    )
    p_spans.add_argument(
        "--serve",
        action="store_true",
        help="run the serve-layer gate instead: a traced replay through a "
        "live service whose stitched cross-process trace must validate and "
        "stay inside the serve span budgets",
    )
    p_spans.set_defaults(func=_cmd_regress)

    p_cache = sub.add_parser(
        "cache",
        help="inspect or clear the persistent surface cache",
        description="Show the on-disk surface-cache location and size plus "
        "this process's hit/miss/corrupt counters from the metrics "
        "registry, or wipe the store with --clear.",
    )
    p_cache.add_argument(
        "--stats",
        action="store_true",
        help="print cache statistics (the default action)",
    )
    p_cache.add_argument(
        "--clear", action="store_true", help="remove every cached record"
    )
    p_cache.set_defaults(func=_cmd_cache)

    return parser


def _bench_id(args) -> str:
    """Record id for the ``--profile`` dump (experiment id or command)."""
    if args.command == "experiment":
        return str(args.id).upper()
    return str(args.command).upper()


def _typed_exit_codes() -> list[tuple[type, str, int]]:
    """(exception type, human label, exit code), most specific first."""
    from repro.core.natural import NoOscillationError
    from repro.core.harmonic_balance import HbConvergenceError
    from repro.core.lockrange import NoLockError
    from repro.robust import NumericalFaultError

    return [
        (NoLockError, "no lock", EXIT_NO_LOCK),
        (HbConvergenceError, "HB divergence", EXIT_HB_DIVERGENCE),
        (NoOscillationError, "no oscillation", EXIT_NO_OSCILLATION),
        (NumericalFaultError, "numerical fault", EXIT_NUMERICAL_FAULT),
    ]


def _run_command(args) -> int:
    """Dispatch to the subcommand, mapping typed failures to exit codes.

    Solve failures are expected outcomes (the injection is too weak, the
    circuit does not oscillate, Newton diverged); scripts get a one-line
    message plus the escalation diagnostics on stderr and a documented
    exit code instead of a traceback.
    """
    from repro.obs import trace

    with trace(f"cli.{args.command}") as span:
        try:
            code = args.func(args)
        except tuple(t for t, _, _ in _typed_exit_codes()) as exc:
            for exc_type, label, code in _typed_exit_codes():
                if isinstance(exc, exc_type):
                    break
            print(f"error ({label}): {exc}", file=sys.stderr)
            diagnostics = getattr(exc, "diagnostics", None)
            if diagnostics is not None:
                print(diagnostics.format(), file=sys.stderr)
            span.set(error=label, exit_code=code)
            return code
        span.set(exit_code=code)
        return code


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    raw_argv = list(argv) if argv is not None else sys.argv[1:]
    if args.log_json:
        from repro.obs import enable_json_logs

        enable_json_logs()
    if args.engine is not None:
        from repro.odesim import set_default_engine

        set_default_engine(args.engine)
    tracing = args.trace is not None
    if tracing:
        from repro.obs import tracer

        tracer.enable()
    if not (args.profile or tracing):
        return _run_command(args)

    from repro.perf import default_cache, profiler, write_bench_json

    cache = default_cache()
    if args.profile:
        profiler.enable()
    try:
        code = _run_command(args)
    finally:
        if args.profile:
            profiler.disable()
    if args.profile:
        record = profiler.as_dict()
        record["exit_code"] = int(code)
        record["argv"] = raw_argv
        record["cache"] = dict(cache.stats)
        path = write_bench_json(_bench_id(args), record)
        print(f"profile written to {path}")
    if tracing:
        from repro.obs import tracer, write_obs_report

        trace_path = tracer.write(args.trace)
        tracer.disable()
        report_path = write_obs_report(
            argv=raw_argv, exit_code=code, trace_file=str(trace_path)
        )
        print(f"trace written to {trace_path}")
        print(f"observability report written to {report_path}")
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
