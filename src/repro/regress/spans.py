"""Span-budget gate: the PR 4 telemetry turned into an enforced bound.

The observability layer records how much work every solve does —
``hb.iterations`` per Newton solve, ``df.evaluations`` per method,
ladder escalations, cache hits and misses — but until now nothing *read*
those numbers in CI: a change that doubled the Newton iteration count
while still converging would land silently.  This gate replays a small,
canonical slice of the quick verify matrix
(:data:`~repro.regress.budgets.BUDGET_SCENARIOS`) with tracing enabled
and asserts the recorded telemetry against the declared
:data:`~repro.regress.budgets.SPAN_BUDGETS`.

Determinism: the replay runs against a **fresh temporary surface cache**
with ``REPRO_NO_CACHE`` cleared, so the cache hit/miss telemetry is the
cold-run profile every time — budgets never depend on what a previous
command happened to leave on disk.  Work counters (DF evaluations, HB
iterations) are grid-driven and identical run to run; the ~1.4x headroom
in the budgets absorbs legitimate drift from tolerance retuning while
still catching the 2x blow-ups the gate exists for.
"""

from __future__ import annotations

import os
import pathlib
import tempfile
import time
from collections import Counter
from dataclasses import dataclass, field

from repro.obs import metrics, tracer
from repro.regress.budgets import BUDGET_SCENARIOS, SPAN_BUDGETS, SpanBudget
from repro.verify.harness import counter_deltas

__all__ = [
    "BudgetVerdict",
    "SpanGateResult",
    "evaluate_budgets",
    "run_span_gate",
]


@dataclass(frozen=True)
class BudgetVerdict:
    """One budget's measured value and pass/fail verdict."""

    name: str
    value: float | None
    ok: bool
    detail: str


@dataclass
class SpanGateResult:
    """The whole gate run: replay context plus per-budget verdicts."""

    scenario_ids: tuple[str, ...]
    verdicts: list[BudgetVerdict] = field(default_factory=list)
    replay_ok: bool = True
    trace_spans: int = 0
    wall_s: float = 0.0
    trace_path: str | None = None

    @property
    def ok(self) -> bool:
        return self.replay_ok and all(v.ok for v in self.verdicts)

    def format(self) -> str:
        lines = [
            f"span-budget replay: {len(self.scenario_ids)} scenario(s), "
            f"{self.trace_spans} spans, {self.wall_s:.1f} s "
            f"({'clean' if self.replay_ok else 'REPLAY FAILED'})"
        ]
        for verdict in self.verdicts:
            flag = "ok " if verdict.ok else "XX "
            shown = "n/a" if verdict.value is None else f"{verdict.value:g}"
            lines.append(f"{flag}{verdict.name:<22} {shown:>12}  {verdict.detail}")
        return "\n".join(lines)


def _prefix_total(deltas: dict, prefix: str) -> float:
    """Sum of every delta whose key starts with ``prefix``.

    Covers labelled variants (``df.evaluations{method=fft}``) and whole
    families (``ladder.`` matches attempts/recoveries/exhausted alike).
    """
    return sum(value for key, value in deltas.items() if key.startswith(prefix))


def _histogram_sum_deltas(before: dict, after: dict) -> dict:
    """Per-histogram delta of the value sums (keys that moved only)."""
    out = {}
    for key, entry in after.items():
        prior = before.get(key, {"sum": 0})
        delta = entry["sum"] - prior.get("sum", 0)
        if delta:
            out[key] = delta
    return out


def evaluate_budgets(
    counters: dict,
    histogram_sums: dict,
    span_counts: dict,
    budgets: tuple[SpanBudget, ...] = SPAN_BUDGETS,
) -> list[BudgetVerdict]:
    """Check one replay's telemetry deltas against the declared budgets.

    Pure over its inputs so tests can feed synthetic deltas — the gate's
    verdict logic is exercised without a 7-second replay.
    """
    verdicts: list[BudgetVerdict] = []
    for budget in budgets:
        if budget.kind == "counter":
            value = float(_prefix_total(counters, budget.selector))
        elif budget.kind == "histogram_sum":
            value = float(_prefix_total(histogram_sums, budget.selector))
        elif budget.kind == "hit_rate":
            hits = _prefix_total(counters, f"{budget.selector}.hits")
            misses = _prefix_total(counters, f"{budget.selector}.misses")
            lookups = hits + misses
            if lookups <= 0:
                verdicts.append(
                    BudgetVerdict(
                        budget.name, None, True, "no lookups in replay (skipped)"
                    )
                )
                continue
            value = hits / lookups
        elif budget.kind == "span_count":
            value = float(span_counts.get(budget.selector, 0))
        else:
            verdicts.append(
                BudgetVerdict(
                    budget.name, None, False, f"unknown budget kind {budget.kind!r}"
                )
            )
            continue
        problems = []
        if budget.max is not None and value > budget.max:
            problems.append(f"exceeds budget max {budget.max:g}")
        if budget.min is not None and value < budget.min:
            problems.append(f"below budget min {budget.min:g}")
        bounds = []
        if budget.max is not None:
            bounds.append(f"<= {budget.max:g}")
        if budget.min is not None:
            bounds.append(f">= {budget.min:g}")
        verdicts.append(
            BudgetVerdict(
                budget.name,
                value,
                not problems,
                "; ".join(problems) if problems else f"within {' and '.join(bounds)}",
            )
        )
    return verdicts


def run_span_gate(
    scenario_ids: tuple[str, ...] | None = None,
    budgets: tuple[SpanBudget, ...] | None = None,
    trace_out: str | pathlib.Path | None = None,
) -> SpanGateResult:
    """Replay the budget scenarios under tracing and evaluate the budgets.

    When the process-wide tracer is already recording (the CLI's global
    ``--trace``), its buffer is left alone and the replay's spans are
    identified by position; otherwise tracing is enabled for the replay
    and disabled afterwards.
    """
    from repro.verify.harness import run_matrix

    ids = tuple(scenario_ids) if scenario_ids else BUDGET_SCENARIOS
    owned_tracer = not tracer.recording
    if owned_tracer:
        tracer.enable()
    spans_before = len(tracer.records())
    snap_before = metrics.snapshot()
    started = time.perf_counter()

    # A fresh cache root makes the cache.* telemetry the deterministic
    # cold-run profile regardless of ambient state.
    saved = {
        key: os.environ.pop(key, None)
        for key in ("REPRO_CACHE_DIR", "REPRO_NO_CACHE")
    }
    try:
        with tempfile.TemporaryDirectory(prefix="repro-span-gate-") as tmp:
            os.environ["REPRO_CACHE_DIR"] = tmp
            # Detach from any ambient CLI span so the replay's spans form
            # self-contained trees (the written trace must validate on its
            # own, without the caller's unfinished parents).
            with tracer.detached():
                report = run_matrix("quick", scenario_ids=ids)
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value

    wall = time.perf_counter() - started
    snap_after = metrics.snapshot()
    replay_spans = tracer.records()[spans_before:]
    result = SpanGateResult(
        scenario_ids=ids,
        replay_ok=report.ok,
        trace_spans=len(replay_spans),
        wall_s=wall,
    )
    if trace_out is not None:
        result.trace_path = str(tracer.write(trace_out))
    if owned_tracer:
        tracer.disable()

    counters = counter_deltas(snap_before["counters"], snap_after["counters"])
    histogram_sums = _histogram_sum_deltas(
        snap_before["histograms"], snap_after["histograms"]
    )
    span_counts = dict(Counter(span["name"] for span in replay_spans))
    result.verdicts = evaluate_budgets(
        counters, histogram_sums, span_counts, budgets or SPAN_BUDGETS
    )
    return result
