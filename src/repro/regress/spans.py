"""Span-budget gate: the PR 4 telemetry turned into an enforced bound.

The observability layer records how much work every solve does —
``hb.iterations`` per Newton solve, ``df.evaluations`` per method,
ladder escalations, cache hits and misses — but until now nothing *read*
those numbers in CI: a change that doubled the Newton iteration count
while still converging would land silently.  This gate replays a small,
canonical slice of the quick verify matrix
(:data:`~repro.regress.budgets.BUDGET_SCENARIOS`) with tracing enabled
and asserts the recorded telemetry against the declared
:data:`~repro.regress.budgets.SPAN_BUDGETS`.

Determinism: the replay runs against a **fresh temporary surface cache**
with ``REPRO_NO_CACHE`` cleared, so the cache hit/miss telemetry is the
cold-run profile every time — budgets never depend on what a previous
command happened to leave on disk.  Work counters (DF evaluations, HB
iterations) are grid-driven and identical run to run; the ~1.4x headroom
in the budgets absorbs legitimate drift from tolerance retuning while
still catching the 2x blow-ups the gate exists for.
"""

from __future__ import annotations

import os
import pathlib
import tempfile
import time
from collections import Counter
from dataclasses import dataclass, field

from repro.obs import metrics, tracer
from repro.regress.budgets import (
    BUDGET_SCENARIOS,
    SERVE_SPAN_BUDGETS,
    SPAN_BUDGETS,
    SpanBudget,
)
from repro.verify.harness import counter_deltas

__all__ = [
    "BudgetVerdict",
    "SpanGateResult",
    "evaluate_budgets",
    "run_serve_span_gate",
    "run_span_gate",
]


@dataclass(frozen=True)
class BudgetVerdict:
    """One budget's measured value and pass/fail verdict."""

    name: str
    value: float | None
    ok: bool
    detail: str


@dataclass
class SpanGateResult:
    """The whole gate run: replay context plus per-budget verdicts."""

    scenario_ids: tuple[str, ...]
    verdicts: list[BudgetVerdict] = field(default_factory=list)
    replay_ok: bool = True
    trace_spans: int = 0
    wall_s: float = 0.0
    trace_path: str | None = None

    @property
    def ok(self) -> bool:
        return self.replay_ok and all(v.ok for v in self.verdicts)

    def format(self) -> str:
        lines = [
            f"span-budget replay: {len(self.scenario_ids)} scenario(s), "
            f"{self.trace_spans} spans, {self.wall_s:.1f} s "
            f"({'clean' if self.replay_ok else 'REPLAY FAILED'})"
        ]
        for verdict in self.verdicts:
            flag = "ok " if verdict.ok else "XX "
            shown = "n/a" if verdict.value is None else f"{verdict.value:g}"
            lines.append(f"{flag}{verdict.name:<22} {shown:>12}  {verdict.detail}")
        return "\n".join(lines)


def _prefix_total(deltas: dict, prefix: str) -> float:
    """Sum of every delta whose key starts with ``prefix``.

    Covers labelled variants (``df.evaluations{method=fft}``) and whole
    families (``ladder.`` matches attempts/recoveries/exhausted alike).
    """
    return sum(value for key, value in deltas.items() if key.startswith(prefix))


def _histogram_sum_deltas(before: dict, after: dict) -> dict:
    """Per-histogram delta of the value sums (keys that moved only)."""
    out = {}
    for key, entry in after.items():
        prior = before.get(key, {"sum": 0})
        delta = entry["sum"] - prior.get("sum", 0)
        if delta:
            out[key] = delta
    return out


def evaluate_budgets(
    counters: dict,
    histogram_sums: dict,
    span_counts: dict,
    budgets: tuple[SpanBudget, ...] = SPAN_BUDGETS,
) -> list[BudgetVerdict]:
    """Check one replay's telemetry deltas against the declared budgets.

    Pure over its inputs so tests can feed synthetic deltas — the gate's
    verdict logic is exercised without a 7-second replay.
    """
    verdicts: list[BudgetVerdict] = []
    for budget in budgets:
        if budget.kind == "counter":
            value = float(_prefix_total(counters, budget.selector))
        elif budget.kind == "histogram_sum":
            value = float(_prefix_total(histogram_sums, budget.selector))
        elif budget.kind == "hit_rate":
            hits = _prefix_total(counters, f"{budget.selector}.hits")
            misses = _prefix_total(counters, f"{budget.selector}.misses")
            lookups = hits + misses
            if lookups <= 0:
                verdicts.append(
                    BudgetVerdict(
                        budget.name, None, True, "no lookups in replay (skipped)"
                    )
                )
                continue
            value = hits / lookups
        elif budget.kind == "span_count":
            value = float(span_counts.get(budget.selector, 0))
        else:
            verdicts.append(
                BudgetVerdict(
                    budget.name, None, False, f"unknown budget kind {budget.kind!r}"
                )
            )
            continue
        problems = []
        if budget.max is not None and value > budget.max:
            problems.append(f"exceeds budget max {budget.max:g}")
        if budget.min is not None and value < budget.min:
            problems.append(f"below budget min {budget.min:g}")
        bounds = []
        if budget.max is not None:
            bounds.append(f"<= {budget.max:g}")
        if budget.min is not None:
            bounds.append(f">= {budget.min:g}")
        verdicts.append(
            BudgetVerdict(
                budget.name,
                value,
                not problems,
                "; ".join(problems) if problems else f"within {' and '.join(bounds)}",
            )
        )
    return verdicts


def run_span_gate(
    scenario_ids: tuple[str, ...] | None = None,
    budgets: tuple[SpanBudget, ...] | None = None,
    trace_out: str | pathlib.Path | None = None,
) -> SpanGateResult:
    """Replay the budget scenarios under tracing and evaluate the budgets.

    When the process-wide tracer is already recording (the CLI's global
    ``--trace``), its buffer is left alone and the replay's spans are
    identified by position; otherwise tracing is enabled for the replay
    and disabled afterwards.
    """
    from repro.verify.harness import run_matrix

    ids = tuple(scenario_ids) if scenario_ids else BUDGET_SCENARIOS
    owned_tracer = not tracer.recording
    if owned_tracer:
        tracer.enable()
    spans_before = len(tracer.records())
    snap_before = metrics.snapshot()
    started = time.perf_counter()

    # A fresh cache root makes the cache.* telemetry the deterministic
    # cold-run profile regardless of ambient state.
    saved = {
        key: os.environ.pop(key, None)
        for key in ("REPRO_CACHE_DIR", "REPRO_NO_CACHE")
    }
    try:
        with tempfile.TemporaryDirectory(prefix="repro-span-gate-") as tmp:
            os.environ["REPRO_CACHE_DIR"] = tmp
            # Detach from any ambient CLI span so the replay's spans form
            # self-contained trees (the written trace must validate on its
            # own, without the caller's unfinished parents).
            with tracer.detached():
                report = run_matrix("quick", scenario_ids=ids)
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value

    wall = time.perf_counter() - started
    snap_after = metrics.snapshot()
    replay_spans = tracer.records()[spans_before:]
    result = SpanGateResult(
        scenario_ids=ids,
        replay_ok=report.ok,
        trace_spans=len(replay_spans),
        wall_s=wall,
    )
    if trace_out is not None:
        result.trace_path = str(tracer.write(trace_out))
    if owned_tracer:
        tracer.disable()

    counters = counter_deltas(snap_before["counters"], snap_after["counters"])
    histogram_sums = _histogram_sum_deltas(
        snap_before["histograms"], snap_after["histograms"]
    )
    span_counts = dict(Counter(span["name"] for span in replay_spans))
    result.verdicts = evaluate_budgets(
        counters, histogram_sums, span_counts, budgets or SPAN_BUDGETS
    )
    return result


def _stitching_verdicts(replay_spans: list[dict]) -> list[BudgetVerdict]:
    """Structural checks on a stitched serve trace.

    Beyond the generic :func:`~repro.obs.report.validate_trace`
    invariants, the serve gate asserts the *stitching-specific* shape:
    worker-process spans exist, every one of them hangs off a
    ``serve.attempt`` ancestor, and its ``trace_id`` matches that
    ancestor's — one trace per job, no orphaned worker telemetry.
    """
    by_id = {span["span_id"]: span for span in replay_spans}
    worker_spans = [s for s in replay_spans if s.get("process") == "worker"]
    verdicts = [
        BudgetVerdict(
            "stitch.worker-spans",
            float(len(worker_spans)),
            bool(worker_spans),
            "worker-side spans grafted into the parent trace"
            if worker_spans
            else "no worker-process spans were stitched in",
        )
    ]
    orphans = 0
    mismatched = 0
    for span in worker_spans:
        node = span
        while node is not None and node["name"] != "serve.attempt":
            node = by_id.get(node.get("parent_id"))
        if node is None:
            orphans += 1
        elif span.get("trace_id") != node.get("trace_id"):
            mismatched += 1
    verdicts.append(
        BudgetVerdict(
            "stitch.rooted",
            float(orphans),
            orphans == 0,
            "every worker span reaches a serve.attempt ancestor"
            if orphans == 0
            else f"{orphans} worker span(s) not under any serve.attempt",
        )
    )
    verdicts.append(
        BudgetVerdict(
            "stitch.trace-id",
            float(mismatched),
            mismatched == 0,
            "worker trace_ids agree with their attempt"
            if mismatched == 0
            else f"{mismatched} worker span(s) carry a foreign trace_id",
        )
    )
    return verdicts


def run_serve_span_gate(
    trace_out: str | pathlib.Path | None = None,
    budgets: tuple[SpanBudget, ...] | None = None,
) -> SpanGateResult:
    """The serve-layer span gate: a traced replay through a live service.

    Boots a real :class:`~repro.serve.service.ServiceThread` (worker
    subprocess, HTTP front) in an isolated cache sandbox, submits one
    quick lock-range job and one small tongue sweep, and live-polls the
    tongue job's ``/events`` ring while it runs.  The resulting stitched
    trace — parent ``serve.*`` spans plus grafted worker solver spans
    under one ``trace_id`` per job — is checked three ways: the generic
    trace invariants, the stitching structure (:func:`_stitching_verdicts`),
    and the declared :data:`~repro.regress.budgets.SERVE_SPAN_BUDGETS`.
    """
    from repro.obs.report import validate_trace
    from repro.serve.admission import TenantPolicy
    from repro.serve.client import ServeClient
    from repro.serve.service import ServeConfig, ServiceThread

    lock_job = {
        "kind": "lockrange",
        "family": "tanh",
        "n": 3,
        "v_i": 0.03,
        "n_a": 61,
        "n_phi": 121,
        "n_samples": 256,
        "deadline_s": 120.0,
    }
    tongue_job = {
        "kind": "tongue",
        "family": "tanh",
        "n": 3,
        "v_i": 0.03,
        "vi_count": 2,
        "freq_count": 3,
        "n_a": 41,
        "n_phi": 81,
        "n_samples": 256,
        "deadline_s": 120.0,
    }
    config = ServeConfig(
        workers=1,
        queue_limit=8,
        tenants={
            "default": TenantPolicy(rate_per_s=100.0, burst=50, max_in_flight=16)
        },
    )

    owned_tracer = not tracer.recording
    if owned_tracer:
        tracer.enable()
    spans_before = len(tracer.records())
    snap_before = metrics.snapshot()
    started = time.perf_counter()

    saved = {
        key: os.environ.pop(key, None)
        for key in ("REPRO_CACHE_DIR", "REPRO_NO_CACHE")
    }
    replay_problems: list[str] = []
    progress_seen = 0
    try:
        with tempfile.TemporaryDirectory(prefix="repro-serve-gate-") as tmp:
            os.environ["REPRO_CACHE_DIR"] = tmp
            with tracer.detached(), ServiceThread(config) as host:
                client = ServeClient(port=host.port, timeout_s=180.0)
                status, lock = client.submit(lock_job, wait=True)
                if status != 200 or lock.get("status") != "completed":
                    replay_problems.append(
                        f"lockrange job did not complete: {status} {lock}"
                    )
                status, admitted = client.submit(tongue_job)
                if status != 202:
                    replay_problems.append(
                        f"tongue job not admitted: {status} {admitted}"
                    )
                else:
                    job_id = admitted["job_id"]
                    cursor = 0
                    deadline = time.monotonic() + 150.0
                    while time.monotonic() < deadline:
                        status, batch = client.job_events(
                            job_id, since=cursor, wait=True, timeout_s=5.0
                        )
                        if status != 200:
                            replay_problems.append(
                                f"events poll failed: {status} {batch}"
                            )
                            break
                        cursor = batch.get("next_since", cursor)
                        progress_seen += sum(
                            1
                            for event in batch.get("events", [])
                            if event.get("type")
                            in ("point", "rung-start", "rung-done")
                        )
                        if batch.get("terminal"):
                            break
                    else:
                        replay_problems.append("tongue job never went terminal")
                    _, final = client.status(job_id)
                    if final.get("status") != "completed":
                        replay_problems.append(
                            f"tongue job ended {final.get('status')!r}"
                        )
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value

    wall = time.perf_counter() - started
    snap_after = metrics.snapshot()
    replay_spans = tracer.records()[spans_before:]
    result = SpanGateResult(
        scenario_ids=("serve-lockrange", "serve-tongue-2x3"),
        replay_ok=not replay_problems,
        trace_spans=len(replay_spans),
        wall_s=wall,
    )
    if trace_out is not None:
        result.trace_path = str(tracer.write(trace_out))
    if owned_tracer:
        tracer.disable()

    counters = counter_deltas(snap_before["counters"], snap_after["counters"])
    histogram_sums = _histogram_sum_deltas(
        snap_before["histograms"], snap_after["histograms"]
    )
    span_counts = dict(Counter(span["name"] for span in replay_spans))
    result.verdicts = evaluate_budgets(
        counters, histogram_sums, span_counts, budgets or SERVE_SPAN_BUDGETS
    )
    result.verdicts.append(
        BudgetVerdict(
            "events.progress",
            float(progress_seen),
            progress_seen >= 1,
            "live progress events observed over /events"
            if progress_seen
            else "no progress events arrived before the job finished",
        )
    )
    result.verdicts.extend(_stitching_verdicts(replay_spans))
    if result.trace_path is not None:
        trace_problems = validate_trace(result.trace_path)
        result.verdicts.append(
            BudgetVerdict(
                "trace.validates",
                float(len(trace_problems)),
                not trace_problems,
                "stitched trace passes validate_trace"
                if not trace_problems
                else "; ".join(trace_problems[:3]),
            )
        )
    for problem in replay_problems:
        result.verdicts.append(BudgetVerdict("replay", None, False, problem))
    return result
