"""Golden surface manifest: pinned content hashes of the cached surfaces.

The verify matrix already round-trips output fingerprints through a
temporary cache (``surface-fingerprint/*``), which proves the *pipeline*
preserves bytes.  What nothing pinned until now is the bytes themselves:
a refactor of the FFT factorisation could shift every coefficient by
1e-16 and the matrix would stay green because each method moved together.
The manifest closes that hole by committing, for a declared set of
(family, n, V_i, grid) cases, the
:func:`~repro.perf.fingerprint.payload_fingerprint` of the surface the
current code computes — plus its :func:`~repro.core.two_tone.surface_disk_key`,
so a silent cache-key recipe change (which would cold-start every fleet
cache) is caught by the same diff.

``repro regress surfaces`` recomputes the cases and diffs against the
committed golden (``tests/regress/golden/manifest.json``).  The two
failure classes are reported distinctly:

* **payload drift** — same key, different fingerprint: the numerics
  changed.  Either a bug, or an intentional algorithm change that must be
  re-golded with an explicit, reviewed ``repro regress surfaces --update``;
* **key drift** — the disk-key recipe changed: every deployed cache
  misses cold.  Also an ``--update``-reviewed event, never an accident.

Fingerprints are bitwise content hashes, so the golden is pinned to the
numeric environment that generated it (recorded in ``generated_with``).
Upgrading numpy/BLAS in CI is an *intentional regen*, handled exactly
like an algorithm change: rerun with ``--update`` and review the diff.
"""

from __future__ import annotations

import json
import pathlib
import platform
from dataclasses import dataclass

import numpy as np

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "DEFAULT_MANIFEST_PATH",
    "SurfaceCase",
    "MANIFEST_CASES",
    "compute_manifest",
    "load_manifest",
    "write_manifest",
    "diff_manifest",
    "check_surfaces",
]

#: Bump when the manifest file layout changes.
MANIFEST_SCHEMA_VERSION = 1

DEFAULT_MANIFEST_PATH = pathlib.Path("tests/regress/golden/manifest.json")


@dataclass(frozen=True)
class SurfaceCase:
    """One pinned pre-characterisation: oscillator, order, injection, grid."""

    case_id: str
    family: str
    n: int
    v_i: float
    a_lo: float
    a_hi: float
    n_a: int

    def amplitudes(self) -> np.ndarray:
        return np.linspace(self.a_lo, self.a_hi, self.n_a)


def _case(family: str, n: int, v_i: float) -> SurfaceCase:
    return SurfaceCase(
        case_id=f"{family}-n{n}-vi{round(v_i * 1000):03d}m",
        family=family,
        n=n,
        v_i=v_i,
        a_lo=0.1,
        a_hi=1.0,
        n_a=31,
    )


#: The pinned case set: every oscillator family at the paper's n = 3
#: operating point, plus the even-order (skewed) and FHIL (n = 1) ends of
#: the order axis so all three DF coupling regimes are covered.  Grids are
#: deliberately small — the gate pins *bytes*, not physics, and must stay
#: cheap enough to run on every push.
MANIFEST_CASES: tuple[SurfaceCase, ...] = (
    _case("tanh", 3, 0.03),
    _case("tanh", 1, 0.03),
    _case("skewed", 2, 0.03),
    _case("skewed", 3, 0.03),
    _case("diffpair", 3, 0.03),
    _case("tunnel", 3, 0.03),
)


def _compute_entry(case: SurfaceCase) -> dict:
    from repro.core.two_tone import surface_disk_key, two_tone_surface
    from repro.perf import payload_fingerprint
    from repro.verify.scenarios import FAMILIES

    nonlinearity, _tank = FAMILIES[case.family]()
    amplitudes = case.amplitudes()
    surface = two_tone_surface(nonlinearity, amplitudes, case.v_i, case.n)
    arrays, _meta = surface.to_arrays()
    return {
        "family": case.family,
        "n": case.n,
        "v_i": case.v_i,
        "grid": [case.a_lo, case.a_hi, case.n_a],
        "disk_key": surface_disk_key(nonlinearity, amplitudes, case.v_i, case.n),
        "fingerprint": payload_fingerprint(arrays),
    }


def compute_manifest(cases: tuple[SurfaceCase, ...] = MANIFEST_CASES) -> dict:
    """Build the manifest payload from the current code's surfaces.

    Surfaces are characterised directly (never through the ambient cache),
    so the manifest reflects what the code *computes*, not what a possibly
    stale cache record holds.
    """
    return {
        "manifest": "SURFACES",
        "schema": MANIFEST_SCHEMA_VERSION,
        "generated_with": {
            "numpy": np.__version__,
            "python": platform.python_version(),
        },
        "entries": {case.case_id: _compute_entry(case) for case in cases},
    }


def load_manifest(path: str | pathlib.Path = DEFAULT_MANIFEST_PATH) -> dict:
    path = pathlib.Path(path)
    payload = json.loads(path.read_text())
    if not isinstance(payload, dict) or payload.get("manifest") != "SURFACES":
        raise ValueError(f"{path} is not a golden surface manifest")
    return payload


def write_manifest(
    manifest: dict, path: str | pathlib.Path = DEFAULT_MANIFEST_PATH
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


def diff_manifest(current: dict, golden: dict) -> list[str]:
    """Drift of the current computation against the committed golden.

    Returns human-readable problem lines (empty = clean).  Key drift and
    payload drift are reported separately so the reviewer of a failing
    gate immediately knows whether caches alias (key) or numerics moved
    (payload); both demand an explicit ``--update``.
    """
    problems: list[str] = []
    if golden.get("schema") != MANIFEST_SCHEMA_VERSION:
        problems.append(
            f"golden manifest schema {golden.get('schema')!r} != "
            f"{MANIFEST_SCHEMA_VERSION} (regenerate with --update)"
        )
        return problems
    golden_entries = golden.get("entries", {})
    current_entries = current.get("entries", {})
    for case_id, pinned in sorted(golden_entries.items()):
        now = current_entries.get(case_id)
        if now is None:
            problems.append(
                f"{case_id}: pinned case no longer computed — removing a "
                "case requires an explicit --update"
            )
            continue
        if now.get("disk_key") != pinned.get("disk_key"):
            problems.append(
                f"{case_id}: cache KEY drift "
                f"({pinned.get('disk_key', '')[:12]}... -> "
                f"{now.get('disk_key', '')[:12]}...): the disk-key recipe "
                "changed; every deployed surface cache will cold-start. "
                "If intentional, regen with --update."
            )
        if now.get("fingerprint") != pinned.get("fingerprint"):
            problems.append(
                f"{case_id}: surface PAYLOAD drift "
                f"({pinned.get('fingerprint', '')[:12]}... -> "
                f"{now.get('fingerprint', '')[:12]}...): the computed "
                "surface bytes changed. If this is an intentional "
                "algorithm/environment change, regen with --update."
            )
    for case_id in sorted(set(current_entries) - set(golden_entries)):
        problems.append(
            f"{case_id}: case is computed but not pinned in the golden "
            "manifest — pin it with --update"
        )
    return problems


def check_surfaces(
    manifest_path: str | pathlib.Path = DEFAULT_MANIFEST_PATH,
) -> list[str]:
    """The full gate: recompute, load the golden, diff."""
    path = pathlib.Path(manifest_path)
    if not path.exists():
        return [
            f"golden manifest missing at {path} — bootstrap it with "
            "'repro regress surfaces --update'"
        ]
    return diff_manifest(compute_manifest(), load_manifest(path))
