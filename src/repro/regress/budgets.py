"""Declared tolerance bands and span budgets for the regression gates.

Every number a gate enforces lives in this module, so loosening or
tightening a gate is a one-line reviewed diff rather than an edit buried
in harness code.  Three families:

* :data:`BENCH_BANDS` — per-metric tolerance bands on the committed
  ``BENCH_*.json`` snapshots, checked against the trailing history in
  ``benchmarks/results/history/*.jsonl`` (:mod:`repro.regress.bench`);
* :data:`SPAN_BUDGETS` — work-count budgets on the telemetry a quick
  verify-matrix replay records (:mod:`repro.regress.spans`);
* :data:`BUDGET_SCENARIOS` — the canonical replay the span budgets are
  calibrated against (one scenario per oscillator-family tier, cheap
  enough for every push).

Calibration note: the span budgets carry ~1.4x headroom over the values
measured at declaration time, so ordinary numerical jitter never fires
them while a 2x blow-up in Newton iterations or DF evaluations — the
regression class ROADMAP item 5 names — always does.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Band",
    "SpanBudget",
    "BENCH_BANDS",
    "BENCH_GROUP_KEYS",
    "SERVE_SPAN_BUDGETS",
    "SPAN_BUDGETS",
    "BUDGET_SCENARIOS",
    "TRAILING_WINDOW",
]

#: How many trailing history entries feed the rolling median.
TRAILING_WINDOW = 20


@dataclass(frozen=True)
class Band:
    """Tolerance band for one metric of a BENCH snapshot.

    Absolute bounds (``max_abs`` / ``min_abs``) pin exactness contracts —
    a width deviation that "must stay 0" stays 0.  Ratio bounds compare
    the current value against the trailing median of the metric's history
    (per bench group), which is what catches a *gradual* slide no single
    snapshot diff would flag.
    """

    metric: str
    max_abs: float | None = None
    min_abs: float | None = None
    #: value must be >= this fraction of the trailing median.
    min_ratio_to_median: float | None = None
    #: value must be <= this multiple of the trailing median.
    max_ratio_to_median: float | None = None


#: Which top-level key of each BENCH payload holds its per-group records.
BENCH_GROUP_KEYS = {
    "SPEED": "methods",
    "TRANSIENT": "oscillators",
    "SWEEP": "grids",
}

#: The enforced bands, per bench id.  Speedups are relative measurements
#: (fast path vs referee on the same machine), so ratio-to-median bands
#: are meaningful even across heterogeneous CI runners; deviation metrics
#: are exactness contracts and get absolute bounds.
BENCH_BANDS: dict[str, tuple[Band, ...]] = {
    "SPEED": (
        Band("speedup_x", min_ratio_to_median=0.8),
        Band("max_i1_deviation_A", max_abs=1e-12),
        Band("edge_deviation_rel_width", max_abs=1e-4),
        Band("t_warm_characterize_s", max_ratio_to_median=5.0),
    ),
    "TRANSIENT": (
        Band("speedup_x", min_ratio_to_median=0.8),
        Band("max_lock_edge_deviation_rad_s", max_abs=0.0),
    ),
    "SWEEP": (
        Band("speedup_x", min_ratio_to_median=0.8),
        Band("max_width_deviation_rel", max_abs=0.0),
        Band("status_mismatches", max_abs=0.0),
    ),
}


@dataclass(frozen=True)
class SpanBudget:
    """One enforced bound on the replay's recorded telemetry.

    ``kind`` selects how ``selector`` is evaluated over the replay:

    * ``"counter"`` — sum of every counter delta whose key starts with
      ``selector`` (labelled variants included, e.g. both
      ``df.evaluations{method=fft}`` and ``{method=dense}``);
    * ``"histogram_sum"`` — sum of the matching histograms' value sums
      (e.g. total Newton iterations across all ``hb.iterations{kind=*}``);
    * ``"hit_rate"`` — ``<selector>.hits / (hits + misses)``, skipped when
      the replay performed no lookups;
    * ``"span_count"`` — number of trace spans named exactly ``selector``.
    """

    name: str
    kind: str
    selector: str
    max: float | None = None
    min: float | None = None


#: The canonical replay: one cheap scenario per family tier of the quick
#: verify matrix.  Kept small enough (~7 s cold) to gate every push.
BUDGET_SCENARIOS: tuple[str, ...] = (
    "tanh-n3-vi030m",
    "skewed-n2-vi030m",
    "tunnel-n3-vi030m",
)

#: Budgets for the :data:`BUDGET_SCENARIOS` replay on a cold, isolated
#: surface cache.  Measured at declaration: df.evaluations 387 477,
#: hb.iterations 19 over 5 solves, 6 cache misses / 5 hits (0.45 hit
#: rate), zero ladder activity, 17 characterize spans.
SPAN_BUDGETS: tuple[SpanBudget, ...] = (
    SpanBudget("df.evaluations", "counter", "df.evaluations", max=550_000),
    SpanBudget("hb.iterations", "histogram_sum", "hb.iterations", max=40),
    SpanBudget("hb.solves", "counter", "hb.solves", max=10),
    # The replay's scenarios all solve on the plain path; any ladder
    # activity means the fast path started failing and silently
    # escalating — a regression even when the answers stay right.
    SpanBudget("ladder.escalations", "counter", "ladder.", max=0),
    SpanBudget("cache.hit_rate", "hit_rate", "cache", min=0.30),
    SpanBudget("cache.misses", "counter", "cache.misses", max=10),
    SpanBudget("spans.characterize", "span_count", "characterize", max=26),
    SpanBudget("spans.lockrange", "span_count", "lockrange", max=9),
    SpanBudget("spans.hb.natural", "span_count", "hb.natural", max=5),
    SpanBudget("spans.surface-build", "span_count", "surface-build", max=9),
)

#: Budgets for the **serve-layer** span gate: a live service replays one
#: quick lock-range job plus one 2x3 tongue sweep (cold cache), with
#: tracing on both sides of the worker boundary stitched into one trace.
#: The span counts bound the shape of that stitched trace — exactly the
#: jobs submitted, at most one attempt of headroom each, the worker's
#: solver spans actually grafted in — while the counters pin the health
#: contract: live progress must flow, and a clean replay must not burn
#: worker restarts or dead-letter anything.
SERVE_SPAN_BUDGETS: tuple[SpanBudget, ...] = (
    SpanBudget("spans.serve.job", "span_count", "serve.job", min=2, max=4),
    SpanBudget("spans.serve.attempt", "span_count", "serve.attempt", min=2, max=8),
    SpanBudget("spans.worker.lockrange", "span_count", "lockrange", min=1, max=24),
    SpanBudget("spans.worker.sweep", "span_count", "sweep", min=1, max=3),
    SpanBudget("serve.progress_events", "counter", "serve.progress_events", min=1),
    SpanBudget("serve.worker_restarts", "counter", "serve.worker_restarts", max=0),
    SpanBudget("serve.dead_lettered", "counter", "serve.dead_lettered", max=0),
)
