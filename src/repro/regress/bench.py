"""BENCH history store and tolerance-band enforcement.

``BENCH_SPEED.json`` / ``BENCH_TRANSIENT.json`` / ``BENCH_SWEEP.json`` are
single snapshots: each records the *last* measured speedups and
deviations, so a slow slide across several PRs — 21x, 17x, 13x, each step
individually plausible — never trips a diff.  This module gives every
snapshot a history:

* :func:`append_history` appends the snapshot's numeric per-group metrics
  as one JSON line to ``benchmarks/results/history/<BENCH>.jsonl``
  (append-only; each line is independent, so the files merge trivially);
* :func:`check_bench_file` enforces the declared
  :data:`~repro.regress.budgets.BENCH_BANDS` — absolute exactness bounds
  against the snapshot itself, ratio bounds against the trailing median
  of the history — and returns the violations.

``repro regress bench`` is the CLI face; CI runs it on the committed
snapshots on every push and appends with ``--record`` when a bench job
regenerates them.  Structural schema validation stays with
``scripts/check_bench_schemas.py`` — this module assumes a well-formed
record and enforces the *performance contract* over time.
"""

from __future__ import annotations

import json
import pathlib
import statistics
import time

from repro.regress.budgets import (
    BENCH_BANDS,
    BENCH_GROUP_KEYS,
    TRAILING_WINDOW,
    Band,
)

__all__ = [
    "DEFAULT_HISTORY_DIR",
    "DEFAULT_BENCH_FILES",
    "history_path",
    "load_history",
    "append_history",
    "check_bench_file",
]

DEFAULT_HISTORY_DIR = pathlib.Path("benchmarks/results/history")

#: The snapshots CI gates when no explicit files are given.
DEFAULT_BENCH_FILES = (
    "BENCH_SPEED.json",
    "BENCH_TRANSIENT.json",
    "BENCH_SWEEP.json",
)


def _load_payload(path: pathlib.Path) -> tuple[str | None, dict, list[str]]:
    """Parse one BENCH file into ``(bench_id, groups, problems)``."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return None, {}, [f"{path}: {exc}"]
    bench = payload.get("bench")
    if not isinstance(bench, str):
        return None, {}, [f"{path}: missing 'bench' id"]
    group_key = BENCH_GROUP_KEYS.get(bench)
    if group_key is None:
        # Unknown bench families pass through ungated (no declared bands).
        return bench, {}, []
    groups = payload.get(group_key)
    if not isinstance(groups, dict) or not groups:
        return bench, {}, [f"{path}: '{group_key}' must be a non-empty object"]
    return bench, groups, []


def _numeric_fields(record: dict) -> dict:
    return {
        key: value
        for key, value in record.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }


def history_path(
    bench: str, history_dir: str | pathlib.Path = DEFAULT_HISTORY_DIR
) -> pathlib.Path:
    return pathlib.Path(history_dir) / f"{bench}.jsonl"


def load_history(
    bench: str, history_dir: str | pathlib.Path = DEFAULT_HISTORY_DIR
) -> list[dict]:
    """All recorded entries for one bench, oldest first.

    Unparseable lines are skipped rather than fatal: a half-appended line
    from a crashed CI job must not wedge every future gate run.
    """
    path = history_path(bench, history_dir)
    if not path.is_file():
        return []
    entries = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            continue
        if isinstance(entry, dict) and isinstance(entry.get("groups"), dict):
            entries.append(entry)
    return entries


def append_history(
    bench_file: str | pathlib.Path,
    history_dir: str | pathlib.Path = DEFAULT_HISTORY_DIR,
    *,
    now: float | None = None,
) -> pathlib.Path | None:
    """Append one snapshot's numeric metrics to its history file.

    Returns the history path, or ``None`` when the file carries no
    gateable groups (unknown bench family).
    """
    path = pathlib.Path(bench_file)
    bench, groups, problems = _load_payload(path)
    if problems:
        raise ValueError("; ".join(problems))
    if not groups:
        return None
    entry = {
        "bench": bench,
        "recorded_unix_s": round(time.time() if now is None else now, 3),
        "source": path.name,
        "groups": {name: _numeric_fields(record) for name, record in groups.items()},
    }
    target = history_path(bench, history_dir)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return target


def _trailing_median(
    history: list[dict], group: str, metric: str
) -> float | None:
    values = [
        entry["groups"][group][metric]
        for entry in history[-TRAILING_WINDOW:]
        if isinstance(entry["groups"].get(group), dict)
        and isinstance(entry["groups"][group].get(metric), (int, float))
    ]
    if not values:
        return None
    return float(statistics.median(values))


def _check_band(
    band: Band, group: str, value: object, history: list[dict]
) -> list[str]:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return [f"{group}.{band.metric}: metric missing or non-numeric ({value!r})"]
    problems = []
    if band.max_abs is not None and value > band.max_abs:
        problems.append(
            f"{group}.{band.metric} = {value:g} exceeds the absolute bound "
            f"{band.max_abs:g}"
        )
    if band.min_abs is not None and value < band.min_abs:
        problems.append(
            f"{group}.{band.metric} = {value:g} is below the absolute bound "
            f"{band.min_abs:g}"
        )
    if band.min_ratio_to_median is None and band.max_ratio_to_median is None:
        return problems
    median = _trailing_median(history, group, band.metric)
    if median is None:
        # No history yet: the absolute bounds still gate; ratio bands
        # arm themselves on the first --record.
        return problems
    if (
        band.min_ratio_to_median is not None
        and value < band.min_ratio_to_median * median
    ):
        problems.append(
            f"{group}.{band.metric} = {value:g} fell below "
            f"{band.min_ratio_to_median:g}x the trailing median {median:g} "
            f"(over {min(len(history), TRAILING_WINDOW)} entries)"
        )
    if (
        band.max_ratio_to_median is not None
        and value > band.max_ratio_to_median * median
    ):
        problems.append(
            f"{group}.{band.metric} = {value:g} rose above "
            f"{band.max_ratio_to_median:g}x the trailing median {median:g} "
            f"(over {min(len(history), TRAILING_WINDOW)} entries)"
        )
    return problems


def check_bench_file(
    bench_file: str | pathlib.Path,
    history_dir: str | pathlib.Path = DEFAULT_HISTORY_DIR,
) -> list[str]:
    """Band violations of one snapshot (empty = inside every band)."""
    path = pathlib.Path(bench_file)
    bench, groups, problems = _load_payload(path)
    if problems or not groups:
        return problems
    history = load_history(bench, history_dir)
    bands = BENCH_BANDS.get(bench, ())
    out: list[str] = []
    for band in bands:
        for group, record in sorted(groups.items()):
            if not isinstance(record, dict):
                continue
            out += [
                f"{path.name}: {problem}"
                for problem in _check_band(
                    band, group, record.get(band.metric), history
                )
            ]
    return out
