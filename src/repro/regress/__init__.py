"""Fleet-scale regression gates (ROADMAP item 5).

Three observability/bench layers that used to be dashboards become one
enforced gate, run by CI on every push via ``repro regress``:

* :mod:`repro.regress.surfaces` — the **golden surface manifest**:
  committed content hashes (payload fingerprint + cache disk key) of a
  declared set of pre-characterised surfaces, so a 1e-16 numerical drift
  or a cache-key recipe change fails loudly and regen is an explicit,
  reviewed ``--update``;
* :mod:`repro.regress.bench` — the **BENCH history store**: every
  BENCH_SPEED/TRANSIENT/SWEEP snapshot appends to
  ``benchmarks/results/history/*.jsonl`` and must stay inside the
  tolerance bands of :mod:`repro.regress.budgets` (speedups may not fall
  below 0.8x the trailing median; width deviations must stay 0);
* :mod:`repro.regress.spans` — the **span-budget gate**: a canonical
  quick verify-matrix replay under tracing whose recorded
  ``hb.iterations`` / ``df.evaluations`` / ``ladder.*`` / ``cache.*``
  telemetry must stay inside declared budgets, plus the **serve span
  gate** (``repro regress spans --serve``): a traced replay through a
  live service whose stitched cross-process trace must validate, carry
  grafted worker spans under ``serve.attempt``, stream live progress
  events, and stay inside the serve-layer budgets.

This is the guardrail that lets the hot paths keep being refactored
aggressively: any silent slowdown, work blow-up, or bitwise surface
drift is caught by the gate rather than by a user.
"""

from repro.regress.bench import (
    DEFAULT_BENCH_FILES,
    DEFAULT_HISTORY_DIR,
    append_history,
    check_bench_file,
    load_history,
)
from repro.regress.budgets import (
    BENCH_BANDS,
    BUDGET_SCENARIOS,
    SERVE_SPAN_BUDGETS,
    SPAN_BUDGETS,
    Band,
    SpanBudget,
)
from repro.regress.spans import (
    BudgetVerdict,
    SpanGateResult,
    evaluate_budgets,
    run_serve_span_gate,
    run_span_gate,
)
from repro.regress.surfaces import (
    DEFAULT_MANIFEST_PATH,
    MANIFEST_CASES,
    SurfaceCase,
    check_surfaces,
    compute_manifest,
    diff_manifest,
    load_manifest,
    write_manifest,
)

__all__ = [
    "Band",
    "SpanBudget",
    "BENCH_BANDS",
    "SPAN_BUDGETS",
    "BUDGET_SCENARIOS",
    "DEFAULT_BENCH_FILES",
    "DEFAULT_HISTORY_DIR",
    "DEFAULT_MANIFEST_PATH",
    "MANIFEST_CASES",
    "SurfaceCase",
    "append_history",
    "check_bench_file",
    "load_history",
    "check_surfaces",
    "compute_manifest",
    "diff_manifest",
    "load_manifest",
    "write_manifest",
    "BudgetVerdict",
    "SERVE_SPAN_BUDGETS",
    "SpanGateResult",
    "evaluate_budgets",
    "run_serve_span_gate",
    "run_span_gate",
]
