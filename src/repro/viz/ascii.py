"""ASCII rendering of curves and waveforms.

A tiny plotting backend that needs nothing but a terminal.  The canvas
maps data coordinates to a character grid; curves are drawn by marching
along polyline segments, so even coarse grids show the qualitative
picture (intersections, folds, isoline fans) the paper's figures convey.
"""

from __future__ import annotations

import numpy as np

from repro.core.curves import LevelCurve

__all__ = ["AsciiCanvas", "render_curves", "render_waveform"]


class AsciiCanvas:
    """Character-grid canvas with data-coordinate plotting.

    Parameters
    ----------
    width, height:
        Canvas size in characters.
    x_range, y_range:
        Data windows mapped onto the canvas.
    """

    def __init__(
        self,
        width: int = 78,
        height: int = 24,
        *,
        x_range: tuple[float, float],
        y_range: tuple[float, float],
    ):
        if width < 16 or height < 8:
            raise ValueError("canvas must be at least 16x8 characters")
        x_lo, x_hi = x_range
        y_lo, y_hi = y_range
        if not (x_hi > x_lo and y_hi > y_lo):
            raise ValueError("ranges must be non-degenerate")
        self.width = width
        self.height = height
        self.x_lo, self.x_hi = float(x_lo), float(x_hi)
        self.y_lo, self.y_hi = float(y_lo), float(y_hi)
        self._grid = [[" "] * width for _ in range(height)]

    def _to_cell(self, x: float, y: float) -> tuple[int, int] | None:
        if not (self.x_lo <= x <= self.x_hi and self.y_lo <= y <= self.y_hi):
            return None
        col = int((x - self.x_lo) / (self.x_hi - self.x_lo) * (self.width - 1))
        row = int((self.y_hi - y) / (self.y_hi - self.y_lo) * (self.height - 1))
        return row, col

    def plot_point(self, x: float, y: float, char: str = "*") -> None:
        """Mark a single data point."""
        cell = self._to_cell(x, y)
        if cell is not None:
            self._grid[cell[0]][cell[1]] = char[0]

    def plot_polyline(self, x: np.ndarray, y: np.ndarray, char: str = ".") -> None:
        """Draw a polyline, interpolating along segments."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        for k in range(x.size - 1):
            seg_len = max(
                abs(x[k + 1] - x[k]) / (self.x_hi - self.x_lo) * self.width,
                abs(y[k + 1] - y[k]) / (self.y_hi - self.y_lo) * self.height,
                1.0,
            )
            steps = int(np.ceil(seg_len)) + 1
            for t in np.linspace(0.0, 1.0, steps):
                self.plot_point(
                    x[k] + t * (x[k + 1] - x[k]),
                    y[k] + t * (y[k + 1] - y[k]),
                    char,
                )

    def render(self, *, title: str = "", x_label: str = "", y_label: str = "") -> str:
        """Assemble the canvas into a printable string with axes."""
        lines = []
        if title:
            lines.append(title.center(self.width + 8))
        top = f"{self.y_hi:.4g}".rjust(8)
        bottom = f"{self.y_lo:.4g}".rjust(8)
        for r, row in enumerate(self._grid):
            prefix = top if r == 0 else (bottom if r == self.height - 1 else " " * 8)
            lines.append(prefix + "|" + "".join(row))
        axis = " " * 8 + "+" + "-" * self.width
        lines.append(axis)
        labels = f"{self.x_lo:.4g}".ljust(self.width // 2) + f"{self.x_hi:.4g}".rjust(
            self.width // 2
        )
        lines.append(" " * 9 + labels)
        if x_label or y_label:
            lines.append(" " * 9 + f"x: {x_label}    y: {y_label}")
        return "\n".join(lines)


def render_curves(
    curve_sets: list[tuple[list[LevelCurve], str]],
    *,
    points: list[tuple[float, float, str]] | None = None,
    width: int = 78,
    height: int = 24,
    title: str = "",
    x_label: str = "phi (rad)",
    y_label: str = "A (V)",
) -> str:
    """Render families of level curves (e.g. Fig. 7 / Fig. 10 pictures).

    Parameters
    ----------
    curve_sets:
        ``(curves, char)`` pairs — each family drawn with its own glyph.
    points:
        Extra ``(x, y, char)`` markers (lock states).
    """
    all_x = np.concatenate(
        [c.x for curves, _ in curve_sets for c in curves] or [np.array([0.0, 1.0])]
    )
    all_y = np.concatenate(
        [c.y for curves, _ in curve_sets for c in curves] or [np.array([0.0, 1.0])]
    )
    pad_x = 0.05 * (np.ptp(all_x) or 1.0)
    pad_y = 0.05 * (np.ptp(all_y) or 1.0)
    canvas = AsciiCanvas(
        width,
        height,
        x_range=(float(all_x.min() - pad_x), float(all_x.max() + pad_x)),
        y_range=(float(all_y.min() - pad_y), float(all_y.max() + pad_y)),
    )
    for curves, char in curve_sets:
        for curve in curves:
            canvas.plot_polyline(curve.x, curve.y, char)
    for x, y, char in points or []:
        canvas.plot_point(x, y, char)
    return canvas.render(title=title, x_label=x_label, y_label=y_label)


def render_waveform(
    t: np.ndarray,
    x: np.ndarray,
    *,
    width: int = 78,
    height: int = 16,
    title: str = "",
    max_points: int = 4000,
) -> str:
    """Render a time-domain waveform (Figs. 13/15/17/19 style)."""
    t = np.asarray(t, dtype=float)
    x = np.asarray(x, dtype=float)
    if t.size > max_points:
        stride = t.size // max_points
        t, x = t[::stride], x[::stride]
    pad = 0.05 * (np.ptp(x) or 1.0)
    canvas = AsciiCanvas(
        width,
        height,
        x_range=(float(t[0]), float(t[-1])),
        y_range=(float(x.min() - pad), float(x.max() + pad)),
    )
    canvas.plot_polyline(t, x, "*")
    return canvas.render(title=title, x_label="t (s)", y_label="v")
