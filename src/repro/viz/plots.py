"""Optional matplotlib figure rendering.

Everything here degrades gracefully: :func:`matplotlib_available` reports
whether the backend exists, and each ``plot_*`` function raises a clear
``RuntimeError`` when it does not — the benchmarks and examples check
first and fall back to the ASCII renderer.
"""

from __future__ import annotations

__all__ = [
    "matplotlib_available",
    "plot_natural",
    "plot_lock_picture",
    "plot_waveform",
]


def matplotlib_available() -> bool:
    """Whether matplotlib can be imported in this environment."""
    try:
        import matplotlib  # noqa: F401
    except ImportError:
        return False
    return True


def _pyplot():
    try:
        import matplotlib.pyplot as plt
    except ImportError as exc:  # pragma: no cover - depends on environment
        raise RuntimeError(
            "matplotlib is not installed; use the ASCII renderer "
            "(repro.viz.ascii) or install the 'plot' extra"
        ) from exc
    return plt


def plot_natural(natural, path: str | None = None):
    """Fig. 3-style plot: ``T_f(A)`` against the unit line.

    Parameters
    ----------
    natural:
        A :class:`repro.core.natural.NaturalOscillation`.
    path:
        Save target; show interactively when omitted.
    """
    plt = _pyplot()
    fig, ax = plt.subplots(figsize=(6, 4))
    ax.plot(natural.amplitude_grid, natural.tf_curve, label="T_f(A)")
    ax.axhline(1.0, color="k", linewidth=0.8, label="y = 1")
    ax.axvline(natural.amplitude, color="r", linestyle="--", label=f"A = {natural.amplitude:.4g} V")
    ax.set_xlabel("A (V)")
    ax.set_ylabel("T_f")
    ax.legend()
    ax.set_title("Natural oscillation prediction")
    if path:
        fig.savefig(path, dpi=150, bbox_inches="tight")
        plt.close(fig)
    return fig


def plot_lock_picture(solution, path: str | None = None):
    """Fig. 7-style plot: the two condition curves and the lock states.

    Parameters
    ----------
    solution:
        A :class:`repro.core.shil.ShilSolution`.
    """
    plt = _pyplot()
    fig, ax = plt.subplots(figsize=(6, 4))
    for curve in solution.tf_curves:
        ax.plot(curve.x, curve.y, "b-", label="T_f = 1")
    for curve in solution.phase_curves:
        ax.plot(curve.x, curve.y, "g--", label="angle(-I_1) = -phi_d")
    for lock in solution.locks:
        marker = "ro" if lock.stable else "kx"
        ax.plot([lock.phi], [lock.amplitude], marker)
    handles, labels = ax.get_legend_handles_labels()
    unique = dict(zip(labels, handles))
    ax.legend(unique.values(), unique.keys())
    ax.set_xlabel("phi (rad)")
    ax.set_ylabel("A (V)")
    ax.set_title(f"SHIL lock states (n={solution.n}, phi_d={solution.phi_d:.3f})")
    if path:
        fig.savefig(path, dpi=150, bbox_inches="tight")
        plt.close(fig)
    return fig


def plot_waveform(t, x, path: str | None = None, title: str = ""):
    """Transient waveform plot (Figs. 13/15/17/19 style)."""
    plt = _pyplot()
    fig, ax = plt.subplots(figsize=(8, 3))
    ax.plot(t, x, linewidth=0.7)
    ax.set_xlabel("t (s)")
    ax.set_ylabel("v (V)")
    if title:
        ax.set_title(title)
    if path:
        fig.savefig(path, dpi=150, bbox_inches="tight")
        plt.close(fig)
    return fig
