"""Rendering of the graphical procedure's artefacts.

Matplotlib is an *optional* dependency (absent in the reference
environment), so every figure in the paper is reproduced at two levels:

* the underlying numeric series (what the experiment drivers return and
  the benchmarks print), and
* an ASCII rendering (:mod:`repro.viz.ascii`) that draws curves,
  isolines and waveforms in the terminal — enough to *see* the Fig. 7
  intersections and the Fig. 10 isoline fan without a display.

When matplotlib is installed, :mod:`repro.viz.plots` produces the actual
figures with one call per paper figure.
"""

from repro.viz.ascii import AsciiCanvas, render_curves, render_waveform
from repro.viz.plots import matplotlib_available

__all__ = [
    "AsciiCanvas",
    "render_curves",
    "render_waveform",
    "matplotlib_available",
]
