"""PPV (perturbation projection vector) phase macromodel — reference [17].

The paper positions its graphical technique against the PPV-based SHIL
theory of Neogy & Roychowdhury.  This module builds that baseline from
first principles for the canonical oscillator ODE:

1. **Periodic steady state** — settle the free-running oscillator
   (:mod:`repro.odesim`) and measure its period precisely.
2. **Monodromy matrix** — integrate the variational equation
   ``dPhi/dt = J(t) Phi`` along one period of the orbit, where ``J`` is
   the Jacobian of the oscillator vector field.
3. **PPV** — the periodic adjoint solution ``v1(t)`` of
   ``dv/dt = -J(t)^T v`` started from the left Floquet eigenvector of the
   multiplier-1 mode, normalised so ``v1(t) . xdot_s(t) = 1`` for all t
   (the constancy of that inner product is itself a correctness check the
   tests assert).
4. **Averaged phase model** — a series injection ``2 V_i cos(w_inj t)``
   perturbs ``dv/dt`` by ``-f'(v_s) v_inj / C``; projecting on the PPV and
   keeping the resonant ``n``-th Fourier term ``Q_n`` of the coupling
   ``q(tau) = v1_v(tau) (-f'(v_s(tau)) / C)`` yields Adler-form dynamics
   with injection-referred lock range::

       w_inj in n*w0 * (1 +- 2 V_i |Q_n|)

The PPV model is exact to first order in the injection but, like Adler,
blind to amplitude dynamics; the paper's claim of "greater accuracy" for
the graphical method is what the ABL2 bench quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.measure.steadystate import measure_steady_state
from repro.measure.waveform import Waveform
from repro.nonlin.base import Nonlinearity
from repro.odesim.oscillator import simulate_oscillator
from repro.tank.rlc import ParallelRLC
from repro.utils.validation import check_positive

__all__ = ["PpvModel", "compute_ppv", "ppv_lock_range"]


@dataclass
class PpvModel:
    """Computed PPV macromodel of a free-running oscillator.

    Attributes
    ----------
    t:
        Sample times over one period, shape ``(n_t,)``.
    x_s:
        Periodic orbit samples, shape ``(n_t, 2)`` (tank voltage,
        inductor current).
    xdot_s:
        Orbit time derivative.
    v1:
        PPV samples, shape ``(n_t, 2)``, normalised to
        ``v1 . xdot_s = 1``.
    period:
        Oscillation period, seconds.
    monodromy:
        The 2x2 monodromy matrix.
    """

    t: np.ndarray
    x_s: np.ndarray
    xdot_s: np.ndarray
    v1: np.ndarray
    period: float
    monodromy: np.ndarray

    @property
    def w0(self) -> float:
        """Free-running angular frequency."""
        return 2.0 * np.pi / self.period

    @property
    def floquet_multipliers(self) -> np.ndarray:
        """Eigenvalues of the monodromy matrix (one should be ~1)."""
        return np.linalg.eigvals(self.monodromy)

    def normalisation_error(self) -> float:
        """Max deviation of ``v1 . xdot_s`` from 1 over the period."""
        inner = np.einsum("ij,ij->i", self.v1, self.xdot_s)
        return float(np.max(np.abs(inner - 1.0)))


def _vector_field(nonlinearity, tank):
    inv_c = 1.0 / tank.c
    inv_l = 1.0 / tank.l
    inv_rc = 1.0 / (tank.r * tank.c)

    def field(x):
        v, i_l = x
        return np.array(
            [
                -v * inv_rc - (i_l + float(nonlinearity(np.asarray(v)))) * inv_c,
                v * inv_l,
            ]
        )

    def jac(x):
        v = x[0]
        g = float(nonlinearity.derivative(np.asarray(v)))
        return np.array(
            [
                [-inv_rc - g * inv_c, -inv_c],
                [inv_l, 0.0],
            ]
        )

    return field, jac


def compute_ppv(
    nonlinearity: Nonlinearity,
    tank: ParallelRLC,
    *,
    settle_cycles: float = 400.0,
    n_t: int = 1024,
    steps_per_sample: int = 8,
    engine: str | None = None,
) -> PpvModel:
    """Compute the PPV of the free-running oscillator.

    Parameters
    ----------
    nonlinearity, tank:
        The oscillator (physical RLC required).
    settle_cycles:
        Free-run settling before the orbit is sampled.
    n_t:
        Samples of the orbit / PPV over one period.
    steps_per_sample:
        RK4 sub-steps between consecutive orbit samples.
    engine:
        Transient engine for the settling run (see
        :func:`repro.odesim.engine.resolve_engine`).
    """
    check_positive("settle_cycles", settle_cycles)
    period_guess = 2.0 * np.pi / tank.center_frequency
    settled = simulate_oscillator(
        nonlinearity,
        tank,
        t_end=settle_cycles * period_guess,
        steps_per_cycle=128,
        record_start=(settle_cycles - 40.0) * period_guess,
        engine=engine,
    )
    state = measure_steady_state(Waveform(settled.t, settled.v[:, 0]))
    period = 2.0 * np.pi / state.frequency

    field, jac = _vector_field(nonlinearity, tank)
    x = np.array([settled.v[-1, 0], settled.i_l[-1, 0]])

    # March x and the fundamental matrix Phi together over one period,
    # recording n_t samples.
    h = period / (n_t * steps_per_sample)
    phi = np.eye(2)
    t_samples = np.linspace(0.0, period, n_t, endpoint=False)
    x_samples = np.empty((n_t, 2))
    phi_samples = np.empty((n_t, 2, 2))
    for k in range(n_t):
        x_samples[k] = x
        phi_samples[k] = phi
        for _ in range(steps_per_sample):
            # RK4 on the augmented (x, Phi) system.
            def rhs(state_x, state_phi):
                return field(state_x), jac(state_x) @ state_phi

            k1x, k1p = rhs(x, phi)
            k2x, k2p = rhs(x + 0.5 * h * k1x, phi + 0.5 * h * k1p)
            k3x, k3p = rhs(x + 0.5 * h * k2x, phi + 0.5 * h * k2p)
            k4x, k4p = rhs(x + h * k3x, phi + h * k3p)
            x = x + h / 6.0 * (k1x + 2 * k2x + 2 * k3x + k4x)
            phi = phi + h / 6.0 * (k1p + 2 * k2p + 2 * k3p + k4p)
    monodromy = phi

    # Left eigenvector of the multiplier-1 mode: w^T M = w^T.
    eigvals, left = np.linalg.eig(monodromy.T)
    idx = int(np.argmin(np.abs(eigvals - 1.0)))
    w = np.real(left[:, idx])

    # The periodic adjoint: v1(t)^T = w^T Phi(T,0) Phi(t,0)^{-1}
    #                              = w^T Phi(t,0)^{-1} (since w^T M = w^T).
    xdot_samples = np.array([field(xs) for xs in x_samples])
    v1 = np.empty((n_t, 2))
    for k in range(n_t):
        v1[k] = np.linalg.solve(phi_samples[k].T, w)
    # Normalise v1 . xdot = 1 using the (theoretically constant) product.
    inner = np.einsum("ij,ij->i", v1, xdot_samples)
    v1 = v1 / np.mean(inner)

    return PpvModel(
        t=t_samples,
        x_s=x_samples,
        xdot_s=xdot_samples,
        v1=v1,
        period=period,
        monodromy=monodromy,
    )


def ppv_lock_range(
    nonlinearity: Nonlinearity,
    tank: ParallelRLC,
    *,
    v_i: float,
    n: int,
    model: PpvModel | None = None,
) -> tuple[float, float]:
    """PPV-predicted injection lock limits ``(w_lower, w_upper)`` in rad/s.

    Parameters
    ----------
    nonlinearity, tank:
        The oscillator.
    v_i:
        Injection phasor magnitude (injected peak ``2 v_i``).
    n:
        Sub-harmonic order.
    model:
        Re-usable precomputed PPV (saves the settling run).
    """
    check_positive("v_i", v_i)
    n = int(n)
    if model is None:
        model = compute_ppv(nonlinearity, tank)
    # Coupling q(tau) = v1_v(tau) * (-f'(v_s(tau)) / C).
    fprime = nonlinearity.derivative(model.x_s[:, 0])
    q = model.v1[:, 0] * (-fprime / tank.c)
    w0 = model.w0
    # n-th Fourier coefficient of q over the period.
    phase = np.exp(-1j * n * w0 * model.t)
    q_n = np.mean(q * phase)
    half = 2.0 * n * w0 * v_i * abs(q_n)
    center = n * w0
    return center - half, center + half
