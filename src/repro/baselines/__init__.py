"""Baseline lock-range predictors the paper's technique is compared against.

* :mod:`repro.baselines.adler` — Adler's classic FHIL formula and its
  fixed-amplitude generalisation to SHIL.  Cheap, but blind to the
  amplitude dynamics the graphical method captures.
* :mod:`repro.baselines.ppv` — the PPV / phase-macromodel approach of the
  paper's reference [17] (Neogy & Roychowdhury), built from first
  principles: periodic steady state, monodromy matrix, adjoint (Floquet)
  decomposition, and the averaged phase coupling function.

The ablation benchmark (ABL2 in DESIGN.md) quantifies how each baseline's
lock-range prediction compares with the graphical technique and with
transient simulation.
"""

from repro.baselines.adler import adler_fhil_lock_range, adler_shil_lock_range
from repro.baselines.ppv import compute_ppv, ppv_lock_range, PpvModel

__all__ = [
    "adler_fhil_lock_range",
    "adler_shil_lock_range",
    "compute_ppv",
    "ppv_lock_range",
    "PpvModel",
]
