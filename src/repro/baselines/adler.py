"""Adler-style lock-range estimates.

Adler's 1946 result for fundamental injection locking: an oscillator with
quality factor ``Q`` injected with a tone of amplitude ``V_inj`` locks over
a (one-sided) range::

    |w - w_c|  <=  (w_c / (2 Q)) * (V_inj / V_osc)

valid for weak injection and a phase-only (fixed-amplitude) model.

The SHIL generalisation used here keeps the same fixed-amplitude spirit:
freeze the amplitude at the natural value ``A_0`` and keep only the phase
line of the slow flow (:mod:`repro.core.averaging`)::

    dphi/dt = (n / (2 C)) * (2 I_1y(A_0, phi) / A_0 - tan(phi_d) / R)

Lock requires a zero, i.e. ``tan(phi_d)`` inside the range of
``2 R I_1y(A_0, phi) / A_0`` over ``phi``.  Mapping the extremal phases
through the tank gives the lock limits.  Compared with the full graphical
method this ignores the amplitude drop toward the lock edge — the ablation
bench measures what that costs.
"""

from __future__ import annotations

import numpy as np

from repro.core.describing_function import DEFAULT_SAMPLES
from repro.core.lockrange import LockRange
from repro.core.natural import predict_natural_oscillation
from repro.core.two_tone import TwoToneDF
from repro.nonlin.base import Nonlinearity
from repro.tank.base import Tank
from repro.utils.validation import check_positive

__all__ = ["adler_fhil_lock_range", "adler_shil_lock_range"]


def adler_fhil_lock_range(
    tank: Tank,
    v_osc: float,
    v_inj: float,
) -> tuple[float, float]:
    """Classic Adler FHIL lock limits ``(w_lower, w_upper)`` in rad/s.

    Parameters
    ----------
    tank:
        Supplies ``w_c`` and ``Q`` (via the phase slope at resonance).
    v_osc:
        Free-running oscillation amplitude.
    v_inj:
        Injected tone amplitude (peak).  Note the paper's ``V_i`` is a
        phasor magnitude: the injected peak is ``2 V_i``.
    """
    check_positive("v_osc", v_osc)
    check_positive("v_inj", v_inj)
    w_c = tank.center_frequency
    # Q from the phase slope: dphi_d/dw at w_c equals -2Q/w_c.
    h = 1e-6 * w_c
    slope = (float(tank.phase(np.asarray(w_c + h))) - float(tank.phase(np.asarray(w_c - h)))) / (
        2.0 * h
    )
    q = -slope * w_c / 2.0
    half_range = w_c / (2.0 * q) * (v_inj / v_osc)
    return w_c - half_range, w_c + half_range


def adler_shil_lock_range(
    nonlinearity: Nonlinearity,
    tank: Tank,
    *,
    v_i: float,
    n: int,
    n_phi: int = 361,
    n_samples: int = DEFAULT_SAMPLES,
) -> LockRange:
    """Fixed-amplitude (generalised-Adler) SHIL lock range.

    Returns a :class:`repro.core.lockrange.LockRange` for interface parity
    with the graphical predictor; the ``amplitude_at_*`` fields carry the
    frozen natural amplitude.
    """
    check_positive("v_i", v_i)
    n = int(n)
    natural = predict_natural_oscillation(nonlinearity, tank, n_samples=n_samples)
    a0 = natural.amplitude
    r = tank.peak_resistance
    df = TwoToneDF(nonlinearity, v_i, n, n_samples=n_samples)
    phis = np.linspace(0.0, 2.0 * np.pi, n_phi)
    i1y = df.i1y(a0, phis)
    coupling = 2.0 * r * i1y / a0  # the reachable tan(phi_d) values
    tan_max = float(np.max(coupling))
    tan_min = float(np.min(coupling))
    phi_d_max = float(np.arctan(tan_max))  # positive phase -> low frequency
    phi_d_min = float(np.arctan(tan_min))
    w_low = tank.frequency_for_phase(phi_d_max)
    w_high = tank.frequency_for_phase(phi_d_min)
    return LockRange(
        n=n,
        v_i=v_i,
        injection_lower=n * w_low,
        injection_upper=n * w_high,
        phi_d_at_lower=phi_d_max,
        phi_d_at_upper=phi_d_min,
        amplitude_at_lower=a0,
        amplitude_at_upper=a0,
    )
