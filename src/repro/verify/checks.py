"""Cross-method and structural checks for one verification scenario.

Each check compares two independent prediction paths (or one path against
a paper-structural invariant) within a *declared tolerance band* and
returns a :class:`CheckResult`.  Statuses:

* ``PASS``  — deviation within the band;
* ``FAIL``  — a confirmed disagreement (deviation outside the band);
* ``ERROR`` — a path raised unexpectedly (counts as a disagreement);
* ``SKIP``  — the check does not apply to this scenario.

The philosophy mirrors the paper's own validation (Figs. 10/14/18):
methods that share physics but not code — FFT-factorised vs dense
quadrature describing functions, averaged-Jacobian vs graphical slope
rule, describing function vs harmonic balance vs transient simulation —
must agree to stated accuracy, and structural facts from the theory
(n states spaced ``2 pi / n``, symmetric lock range, the single-tone
limit) must hold exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.describing_function import fundamental_coefficient
from repro.core.lockrange import predict_lock_range
from repro.core.natural import NaturalOscillation, predict_natural_oscillation
from repro.core.shil import ShilSolution, solve_lock_states
from repro.core.stability import slope_rule_at
from repro.core.two_tone import TwoToneDF
from repro.verify.scenarios import Scenario

__all__ = [
    "CheckResult",
    "ScenarioArtifacts",
    "DEFAULT_TOLERANCES",
    "build_artifacts",
    "QUICK_CHECKS",
    "FULL_ONLY_CHECKS",
]

#: Declared tolerance bands (see DESIGN.md section 7).  Scenario
#: definitions may override any key.
DEFAULT_TOLERANCES: dict[str, float] = {
    # fft vs dense lock states: both Newton-polish on the exact
    # quadrature, so they must agree to solver accuracy.
    "lockstates_phi_rad": 1e-5,
    "lockstates_amp_rel": 1e-5,
    # enumerate_states arithmetic is exact; allow only fp round-off.
    "states_spacing_rad": 1e-9,
    # fft vs dense lock-range edges, relative to the range width (the
    # SPEED bench has measured <= ~1e-6 across the paper oscillators).
    "lockrange_edges_rel_width": 1e-3,
    # Arnold-tongue symmetry about w_c: edge tank phases are mirror
    # images and edge amplitudes match (grid + golden-section jitter,
    # plus genuine higher-order asymmetry for non-odd laws).
    "symmetry_phi_d_rel": 0.05,
    "symmetry_amp_rel": 0.05,
    "symmetry_center_rel_width": 0.05,
    # harmonic balance vs describing function: the filtering assumption
    # costs O(1/Q^2) corrections; bands sized for the lowest-Q scenario.
    "hb_natural_amp_rel": 0.1,
    "hb_natural_freq_rel": 5e-3,
    "hb_lock_amp_rel": 0.1,
    "hb_lock_phase_rad": 0.2,
    "hb_residual_norm": 1e-8,
    # V_i -> 0 reduction to the classical single-tone DF is exact.
    "single_tone_limit_rel": 1e-12,
    # FHIL phasor-triangle closure is a quadrature-accuracy identity.
    "fhil_triangle_rel": 1e-6,
    # Baseline bands: Adler/PPV freeze the amplitude, so only order-of-
    # magnitude agreement is promised ("greater accuracy" is the paper's
    # pitch for the graphical method).
    "adler_width_ratio_lo": 0.3,
    "adler_width_ratio_hi": 3.0,
    "ppv_width_ratio_lo": 0.2,
    "ppv_width_ratio_hi": 3.0,
    # Transient-measured lock range (full mode): finite observation
    # windows bias edges outward, so the band is the loosest of all.
    "transient_edges_rel_width": 0.2,
}


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one check on one scenario."""

    name: str
    status: str
    deviation: float | None = None
    tolerance: float | None = None
    detail: str = ""

    @property
    def ok(self) -> bool:
        """True unless the check is a confirmed disagreement or an error."""
        return self.status in ("PASS", "SKIP")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "status": self.status,
            "deviation": self.deviation,
            "tolerance": self.tolerance,
            "detail": self.detail,
        }


def _passfail(name, deviation, tolerance, detail="") -> CheckResult:
    status = "PASS" if deviation <= tolerance else "FAIL"
    return CheckResult(name, status, float(deviation), float(tolerance), detail)


def _error(name, exc) -> CheckResult:
    return CheckResult(name, "ERROR", detail=f"{type(exc).__name__}: {exc}")


@dataclass
class ScenarioArtifacts:
    """Shared per-scenario computations the individual checks consume.

    Built once by :func:`build_artifacts`; the expensive members
    (lock ranges per method, lock-state solutions at the centre and a
    detuned frequency) are computed eagerly so a failure in one path
    surfaces as that path's ``ERROR`` rather than aborting the scenario.
    """

    scenario: Scenario
    nonlinearity: object
    tank: object
    natural: NaturalOscillation | None = None
    lockrange: dict = field(default_factory=dict)  # method -> LockRange
    locks_center: dict = field(default_factory=dict)  # method -> ShilSolution
    locks_detuned: ShilSolution | None = None
    errors: dict = field(default_factory=dict)  # stage -> exception
    _hb_natural: object = field(default=None, repr=False)

    @property
    def w_c(self) -> float:
        return self.tank.center_frequency

    def hb_natural(self):
        """The (cached) harmonic-balance free-running solution."""
        if self._hb_natural is None:
            from repro.core.harmonic_balance import hb_natural_oscillation

            self._hb_natural = hb_natural_oscillation(self.nonlinearity, self.tank)
        return self._hb_natural

    def df(self, method: str = "fft") -> TwoToneDF:
        return TwoToneDF(
            self.nonlinearity, self.scenario.v_i, self.scenario.n, method=method
        )

    def tolerance(self, key: str) -> float:
        return float(self.scenario.tolerances.get(key, DEFAULT_TOLERANCES[key]))


def build_artifacts(scenario: Scenario) -> ScenarioArtifacts:
    """Run the prediction paths a scenario's checks share."""
    nonlinearity, tank = scenario.build()
    art = ScenarioArtifacts(scenario=scenario, nonlinearity=nonlinearity, tank=tank)
    try:
        art.natural = predict_natural_oscillation(nonlinearity, tank)
    except Exception as exc:  # pragma: no cover - startup failure is fatal
        art.errors["natural"] = exc
        return art
    for method in ("fft", "dense"):
        try:
            art.lockrange[method] = predict_lock_range(
                nonlinearity, tank, v_i=scenario.v_i, n=scenario.n, method=method
            )
        except Exception as exc:  # NoLockError included
            art.errors[f"lockrange-{method}"] = exc
    for method in ("fft", "dense"):
        try:
            art.locks_center[method] = solve_lock_states(
                nonlinearity,
                tank,
                v_i=scenario.v_i,
                w_injection=scenario.n * tank.center_frequency,
                n=scenario.n,
                method=method,
            )
        except Exception as exc:
            art.errors[f"locks-center-{method}"] = exc
    # A detuned operating point (75% of the way to the upper edge) probes
    # the non-canonical slope-rule sign patterns near the fold.
    lr = art.lockrange.get("fft")
    if lr is not None:
        w_det = lr.injection_lower + 0.75 * (lr.injection_upper - lr.injection_lower)
        try:
            art.locks_detuned = solve_lock_states(
                nonlinearity,
                tank,
                v_i=scenario.v_i,
                w_injection=w_det,
                n=scenario.n,
            )
        except Exception as exc:
            art.errors["locks-detuned"] = exc
    return art


# -- individual checks ---------------------------------------------------------


def check_lock_states_fft_vs_dense(art: ScenarioArtifacts) -> CheckResult:
    """The FFT fast path and the dense referee find the same lock states."""
    name = "lock-states-fft-vs-dense"
    for method in ("fft", "dense"):
        exc = art.errors.get(f"locks-center-{method}")
        if exc is not None:
            return _error(name, exc)
    fft = art.locks_center["fft"].locks
    dense = art.locks_center["dense"].locks
    if len(fft) != len(dense):
        return CheckResult(
            name,
            "FAIL",
            deviation=float(abs(len(fft) - len(dense))),
            tolerance=0.0,
            detail=f"lock count differs: fft={len(fft)}, dense={len(dense)}",
        )
    if not fft:
        return CheckResult(
            name, "FAIL", detail="no lock states at the tank centre frequency"
        )
    # Pair circularly: the solvers may report the same state as phi = 0
    # vs phi = 2 pi, so nearest-circular-distance matching, not zip order.
    remaining = list(dense)
    pairs = []
    for lf in fft:
        ld = min(
            remaining,
            key=lambda d: abs(float(np.angle(np.exp(1j * (lf.phi - d.phi))))),
        )
        remaining.remove(ld)
        pairs.append((lf, ld))
    dev_phi = 0.0
    dev_amp = 0.0
    for lf, ld in pairs:
        dev_phi = max(dev_phi, abs(float(np.angle(np.exp(1j * (lf.phi - ld.phi))))))
        dev_amp = max(dev_amp, abs(lf.amplitude - ld.amplitude) / ld.amplitude)
        if lf.stable != ld.stable:
            return CheckResult(
                name,
                "FAIL",
                detail=f"stability differs at phi={lf.phi:.4f}: "
                f"fft={lf.stable}, dense={ld.stable}",
            )
    tol_phi = art.tolerance("lockstates_phi_rad")
    tol_amp = art.tolerance("lockstates_amp_rel")
    deviation = max(dev_phi / tol_phi, dev_amp / tol_amp)
    return _passfail(
        name,
        deviation,
        1.0,
        detail=f"max |dphi|={dev_phi:.3g} rad, max |dA|/A={dev_amp:.3g} "
        f"over {len(fft)} locks",
    )


def check_state_multiplicity(art: ScenarioArtifacts) -> CheckResult:
    """Each lock unfolds into exactly n states spaced ``2 pi / n``."""
    name = "n-states-spaced-2pi-over-n"
    solution = art.locks_center.get("fft")
    if solution is None:
        return _error(name, art.errors.get("locks-center-fft", RuntimeError("no solve")))
    n = solution.n
    if solution.total_states != n * len(solution.locks):
        return CheckResult(
            name,
            "FAIL",
            detail=f"total_states={solution.total_states} is not "
            f"n*len(locks)={n * len(solution.locks)}",
        )
    tol = art.tolerance("states_spacing_rad")
    worst = 0.0
    for lock in solution.locks:
        phases = np.asarray(lock.oscillator_phases)
        if phases.size != n:
            return CheckResult(
                name, "FAIL", detail=f"lock at phi={lock.phi:.4f} has "
                f"{phases.size} states, expected {n}"
            )
        spacing = np.diff(np.concatenate([phases, [phases[0] + 2.0 * np.pi]]))
        worst = max(worst, float(np.max(np.abs(spacing - 2.0 * np.pi / n))))
    return _passfail(
        name, worst, tol, detail=f"max spacing error over {len(solution.locks)} locks"
    )


def check_jacobian_vs_slope_rule(art: ScenarioArtifacts) -> CheckResult:
    """`classify_by_jacobian` and the paper's slope rule agree everywhere."""
    name = "jacobian-vs-slope-rule"
    solutions = [s for s in (art.locks_center.get("fft"), art.locks_detuned) if s]
    if not solutions:
        return _error(name, art.errors.get("locks-center-fft", RuntimeError("no solve")))
    df = art.df()
    tank_r = art.tank.peak_resistance
    checked = 0
    for solution in solutions:
        for lock in solution.locks:
            verdict = slope_rule_at(
                df, tank_r, solution.phi_d, lock.amplitude, lock.phi
            )
            checked += 1
            if verdict.stable != lock.stable:
                return CheckResult(
                    name,
                    "FAIL",
                    deviation=1.0,
                    tolerance=0.0,
                    detail=f"disagreement at phi={lock.phi:.4f}, "
                    f"A={lock.amplitude:.5g}: jacobian={lock.stable}, "
                    f"slope-rule={verdict.stable}",
                )
    return CheckResult(
        name, "PASS", deviation=0.0, tolerance=0.0,
        detail=f"agreement on {checked} intersections",
    )


def check_lockrange_fft_vs_dense(art: ScenarioArtifacts) -> CheckResult:
    """One-pass lock range: FFT fast path vs dense-quadrature referee."""
    name = "lock-range-fft-vs-dense"
    for method in ("fft", "dense"):
        exc = art.errors.get(f"lockrange-{method}")
        if exc is not None:
            return _error(name, exc)
    fft, dense = art.lockrange["fft"], art.lockrange["dense"]
    width = max(dense.width, 1e-300)
    deviation = max(
        abs(fft.injection_lower - dense.injection_lower),
        abs(fft.injection_upper - dense.injection_upper),
    ) / width
    return _passfail(
        name,
        deviation,
        art.tolerance("lockrange_edges_rel_width"),
        detail=f"width fft={fft.width_hz:.6g} Hz, dense={dense.width_hz:.6g} Hz",
    )


def check_lockrange_symmetry(art: ScenarioArtifacts) -> CheckResult:
    """Lock range symmetric in tank phase about w_c (paper Figs. 10/14/18)."""
    name = "lock-range-symmetry"
    lr = art.lockrange.get("fft")
    if lr is None:
        return _error(name, art.errors.get("lockrange-fft", RuntimeError("no range")))
    phi_scale = max(abs(lr.phi_d_at_lower), abs(lr.phi_d_at_upper), 1e-300)
    dev_phi = abs(lr.phi_d_at_lower + lr.phi_d_at_upper) / phi_scale
    amp_scale = max(lr.amplitude_at_lower, lr.amplitude_at_upper, 1e-300)
    dev_amp = abs(lr.amplitude_at_lower - lr.amplitude_at_upper) / amp_scale
    center = 0.5 * (lr.injection_lower + lr.injection_upper)
    dev_center = abs(center - art.scenario.n * art.w_c) / max(lr.width, 1e-300)
    deviation = max(
        dev_phi / art.tolerance("symmetry_phi_d_rel"),
        dev_amp / art.tolerance("symmetry_amp_rel"),
        dev_center / art.tolerance("symmetry_center_rel_width"),
    )
    return _passfail(
        name,
        deviation,
        1.0,
        detail=f"phi_d edges {lr.phi_d_at_lower:+.4f}/{lr.phi_d_at_upper:+.4f} rad, "
        f"edge amplitudes {lr.amplitude_at_lower:.5g}/{lr.amplitude_at_upper:.5g} V, "
        f"centre offset {dev_center:.3g} widths",
    )


def check_hb_natural(art: ScenarioArtifacts) -> CheckResult:
    """Harmonic balance confirms the free-running DF prediction."""
    name = "hb-vs-df-natural"
    if art.natural is None:
        return _error(name, art.errors.get("natural", RuntimeError("no natural")))
    try:
        hb = art.hb_natural()
    except Exception as exc:
        return _error(name, exc)
    dev_amp = abs(hb.amplitude - art.natural.amplitude) / art.natural.amplitude
    dev_freq = abs(hb.w - art.natural.frequency) / art.natural.frequency
    deviation = max(
        dev_amp / art.tolerance("hb_natural_amp_rel"),
        dev_freq / art.tolerance("hb_natural_freq_rel"),
    )
    return _passfail(
        name,
        deviation,
        1.0,
        detail=f"|dA|/A={dev_amp:.3g}, |dw|/w={dev_freq:.3g}, THD={hb.thd():.3g}",
    )


def check_hb_lock(art: ScenarioArtifacts) -> CheckResult:
    """Harmonic balance refines — and thereby confirms — the DF lock state.

    Both models are driven at ``w_injection = n w_c`` (the DF centre), but
    harmonics shift the HB oscillator's *own* natural frequency off
    ``w_c``, so the same injection sits off-centre in the HB lock range
    and its equilibrium phase rotates by the Adler offset
    ``asin(shift / half-width)``.  That rotation is a real model
    difference, not an implementation bug, so the phase band widens by
    exactly that allowance; when the shift eats most of the half-width
    (ratio > 0.8 — the HB oscillator near its own lock edge, where phase
    and amplitude both diverge from the centred DF picture) the
    comparison is meaningless and the check SKIPs, stating why.
    """
    name = "hb-vs-df-lock"
    from repro.core.harmonic_balance import hb_lock_state

    solution = art.locks_center.get("fft")
    if solution is None or not solution.locked:
        return CheckResult(name, "SKIP", detail="no stable DF lock to refine")
    lock = solution.stable_locks[0]
    n = art.scenario.n
    shift_ratio = 0.0
    lr = art.lockrange.get("fft")
    if art.natural is not None and lr is not None and lr.width > 0.0:
        try:
            w_hb = art.hb_natural().w
        except Exception as exc:
            return _error(name, exc)
        shift_ratio = n * abs(w_hb - art.natural.frequency) / (0.5 * lr.width)
    if shift_ratio > 0.8:
        return CheckResult(
            name,
            "SKIP",
            detail=f"harmonic-induced natural-frequency shift is "
            f"{shift_ratio:.2f} of the half lock range: the w_c-centred "
            f"injection sits at the HB oscillator's own lock edge",
        )
    try:
        hb = hb_lock_state(
            art.nonlinearity,
            art.tank,
            v_i=art.scenario.v_i,
            w_injection=n * art.w_c,
            n=n,
        )
    except Exception as exc:
        return _error(name, exc)
    dev_amp = abs(hb.amplitude - lock.amplitude) / lock.amplitude
    states = np.asarray(lock.oscillator_phases)
    dev_phase = float(
        np.min(np.abs(np.angle(np.exp(1j * (hb.fundamental_phase - states)))))
    )
    phase_band = (
        art.tolerance("hb_lock_phase_rad")
        + float(np.arcsin(min(shift_ratio, 1.0))) / n
    )
    deviation = max(
        dev_amp / art.tolerance("hb_lock_amp_rel"),
        dev_phase / phase_band,
        hb.residual_norm / art.tolerance("hb_residual_norm"),
    )
    return _passfail(
        name,
        deviation,
        1.0,
        detail=f"|dA|/A={dev_amp:.3g}, phase-to-nearest-state={dev_phase:.3g} rad "
        f"(band {phase_band:.3g} incl. {shift_ratio:.2f}-half-width shift), "
        f"residual={hb.residual_norm:.3g} A in {hb.iterations} iters",
    )


def check_single_tone_limit(art: ScenarioArtifacts) -> CheckResult:
    """``V_i -> 0`` collapses the two-tone DF onto the single-tone DF."""
    name = "single-tone-limit"
    if art.natural is None:
        return _error(name, art.errors.get("natural", RuntimeError("no natural")))
    a0 = art.natural.amplitude
    amplitudes = np.linspace(0.5 * a0, 1.3 * a0, 7)
    df0 = TwoToneDF(art.nonlinearity, 0.0, art.scenario.n)
    single = fundamental_coefficient(art.nonlinearity, amplitudes)
    scale = float(np.max(np.abs(single)))
    deviation = 0.0
    for phi in (0.3, 1.7, 4.1):
        two = df0.i1(amplitudes, phi)
        deviation = max(deviation, float(np.max(np.abs(two - single))) / scale)
    return _passfail(
        name,
        deviation,
        art.tolerance("single_tone_limit_rel"),
        detail="max |I1(A, Vi=0, phi) - I1_single(A)| / max|I1_single|",
    )


def check_fhil_reduction(art: ScenarioArtifacts) -> CheckResult:
    """At n = 1 the SHIL machinery reproduces the classic FHIL construction."""
    name = "fhil-phasor-triangle"
    if art.scenario.n != 1:
        return CheckResult(name, "SKIP", detail="n > 1 scenario")
    from repro.core.fhil import phasor_triangle, solve_fhil

    try:
        locks = solve_fhil(
            art.nonlinearity,
            art.tank,
            v_i=art.scenario.v_i,
            w_injection=art.w_c,
        )
    except Exception as exc:
        return _error(name, exc)
    if not locks:
        return CheckResult(name, "FAIL", detail="no FHIL lock at w_c")
    deviation = 0.0
    for lock in locks:
        triangle = phasor_triangle(art.nonlinearity, art.tank, lock, art.w_c)
        deviation = max(
            deviation,
            abs(abs(triangle["injection"]) - art.scenario.v_i) / art.scenario.v_i,
        )
    return _passfail(
        name,
        deviation,
        art.tolerance("fhil_triangle_rel"),
        detail=f"max triangle-closure error over {len(locks)} locks",
    )


def check_adler_band(art: ScenarioArtifacts) -> CheckResult:
    """The fixed-amplitude Adler generalisation lands in the declared band."""
    name = "adler-width-band"
    from repro.baselines.adler import adler_shil_lock_range

    lr = art.lockrange.get("fft")
    if lr is None:
        return _error(name, art.errors.get("lockrange-fft", RuntimeError("no range")))
    try:
        adler = adler_shil_lock_range(
            art.nonlinearity, art.tank, v_i=art.scenario.v_i, n=art.scenario.n
        )
    except Exception as exc:
        return _error(name, exc)
    ratio = adler.width / max(lr.width, 1e-300)
    lo = art.tolerance("adler_width_ratio_lo")
    hi = art.tolerance("adler_width_ratio_hi")
    status = "PASS" if lo <= ratio <= hi else "FAIL"
    return CheckResult(
        name,
        status,
        deviation=float(ratio),
        tolerance=hi,
        detail=f"adler/graphical width ratio, declared band [{lo:g}, {hi:g}]",
    )


# -- full-mode checks (transient / PPV ground truth) ---------------------------


def check_transient_lock_range(art: ScenarioArtifacts) -> CheckResult:
    """Transient-simulated lock range brackets the graphical prediction."""
    name = "transient-lock-range"
    from repro.measure.lockrange_sim import simulate_lock_range

    lr = art.lockrange.get("fft")
    if lr is None:
        return _error(name, art.errors.get("lockrange-fft", RuntimeError("no range")))
    # Scan window sized from the prediction itself (2.5 widths each side).
    rel_span = max(2.5 * lr.width / (art.scenario.n * art.w_c), 1e-4)
    try:
        sim = simulate_lock_range(
            art.nonlinearity,
            art.tank,
            v_i=art.scenario.v_i,
            n=art.scenario.n,
            scan_rel_span=rel_span,
            rounds=2,
        )
    except Exception as exc:  # LockScanError included
        return _error(name, exc)
    width = max(lr.width, 1e-300)
    deviation = max(
        abs(sim.injection_lower - lr.injection_lower),
        abs(sim.injection_upper - lr.injection_upper),
    ) / width
    return _passfail(
        name,
        deviation,
        art.tolerance("transient_edges_rel_width"),
        detail=f"simulated width {sim.width_hz:.6g} Hz vs predicted "
        f"{lr.width_hz:.6g} Hz",
    )


def check_ppv_band(art: ScenarioArtifacts) -> CheckResult:
    """The PPV phase macromodel lands in the declared band."""
    name = "ppv-width-band"
    from repro.baselines.ppv import ppv_lock_range

    lr = art.lockrange.get("fft")
    if lr is None:
        return _error(name, art.errors.get("lockrange-fft", RuntimeError("no range")))
    try:
        w_lo, w_hi = ppv_lock_range(
            art.nonlinearity, art.tank, v_i=art.scenario.v_i, n=art.scenario.n
        )
    except Exception as exc:
        return _error(name, exc)
    ratio = (w_hi - w_lo) / max(lr.width, 1e-300)
    lo = art.tolerance("ppv_width_ratio_lo")
    hi = art.tolerance("ppv_width_ratio_hi")
    status = "PASS" if lo <= ratio <= hi else "FAIL"
    return CheckResult(
        name,
        status,
        deviation=float(ratio),
        tolerance=hi,
        detail=f"ppv/graphical width ratio, declared band [{lo:g}, {hi:g}]",
    )


#: Check battery for the quick matrix, in execution order.
QUICK_CHECKS = (
    check_lock_states_fft_vs_dense,
    check_state_multiplicity,
    check_jacobian_vs_slope_rule,
    check_lockrange_fft_vs_dense,
    check_lockrange_symmetry,
    check_hb_natural,
    check_hb_lock,
    check_single_tone_limit,
    check_fhil_reduction,
    check_adler_band,
)

#: Additional checks the --full mode runs (transient/PPV ground truth).
FULL_ONLY_CHECKS = (
    check_transient_lock_range,
    check_ppv_band,
)
