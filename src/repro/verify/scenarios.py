"""Scenario matrix for the cross-method verification harness.

A *scenario* pins one concrete injection-locking setup — oscillator
family, sub-harmonic order ``n``, injection magnitude ``V_i`` and a tank-Q
scale factor — on which every applicable prediction/measurement path is
run and cross-checked (:mod:`repro.verify.checks`).

The matrix enumerates four oscillator families:

* ``tanh``     — the Section III demo (odd saturating law, Q = 10);
* ``skewed``   — tanh plus an even (quadratic-in-tanh) component.  Odd
  laws couple only weakly to even sub-harmonics (the first phi-dependent
  term in ``I_1`` is 5th order), so this family is what makes ``n = 2``
  scenarios meaningful;
* ``diffpair`` — the paper's Section IV-A BJT cross-coupled pair with the
  DC-sweep-extracted ``f(v)`` (Q = 78);
* ``tunnel``   — the paper's Section IV-B tunnel-diode oscillator
  (asymmetric law, Q = 316).

``q_scale`` multiplies the tank resistance, scaling Q and the small-signal
loop gain together while keeping the centre frequency — the cheap way to
probe the low-Q end where the filtering assumption is under the most
stress.

Tolerance bands are declared *per scenario* as overrides over the
defaults in :mod:`repro.verify.checks`; see DESIGN.md section 7 for the
rationale behind each band.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nonlin import FunctionNonlinearity, NegativeTanh
from repro.nonlin.base import Nonlinearity
from repro.tank import ParallelRLC

__all__ = [
    "Scenario",
    "QUICK_SCENARIOS",
    "FULL_EXTRA_SCENARIOS",
    "scenario_matrix",
    "get_scenario",
]


def _tanh_family() -> tuple[Nonlinearity, ParallelRLC]:
    return (
        NegativeTanh(gm=2.5e-3, i_sat=1e-3),
        ParallelRLC(r=1000.0, l=100e-6, c=10e-9),
    )


def _skewed_family() -> tuple[Nonlinearity, ParallelRLC]:
    """Tanh law with an even component (enables even-n sub-harmonics).

    ``f(v) = -i_sat tanh(g v) + 0.3 i_sat tanh(g v)^2`` keeps the small-
    signal negative resistance and the saturation limit of the tanh demo
    while breaking odd symmetry, so ``I_1`` picks up a first-order
    ``e^{j phi}`` dependence at even ``n``.
    """
    gm, i_sat = 2.5e-3, 1e-3
    g = gm / i_sat

    def law(v):
        t = np.tanh(g * np.asarray(v, dtype=float))
        return -i_sat * t + 0.3 * i_sat * t * t

    return (
        FunctionNonlinearity(law, name="skewed-tanh(0.3)"),
        ParallelRLC(r=1000.0, l=100e-6, c=10e-9),
    )


def _diffpair_family() -> tuple[Nonlinearity, ParallelRLC]:
    from repro.experiments.circuits import diffpair_oscillator

    setup = diffpair_oscillator()
    return setup.nonlinearity, setup.tank


def _tunnel_family() -> tuple[Nonlinearity, ParallelRLC]:
    from repro.experiments.circuits import tunnel_oscillator

    setup = tunnel_oscillator()
    return setup.nonlinearity, setup.tank


#: Family name -> builder; extend here to add an oscillator family.
FAMILIES = {
    "tanh": _tanh_family,
    "skewed": _skewed_family,
    "diffpair": _diffpair_family,
    "tunnel": _tunnel_family,
}


@dataclass(frozen=True)
class Scenario:
    """One point of the verification matrix.

    Attributes
    ----------
    scenario_id:
        Stable identifier (report key, ``--scenario`` argument).
    family:
        Oscillator family key in :data:`FAMILIES`.
    n:
        Sub-harmonic order.
    v_i:
        Injection phasor magnitude, volts.
    q_scale:
        Tank-R multiplier (scales Q at a fixed centre frequency).
    tolerances:
        Per-scenario overrides over ``checks.DEFAULT_TOLERANCES``.
    tags:
        Free-form labels (``"paper"``, ``"low-q"`` ...) for filtering.
    """

    scenario_id: str
    family: str
    n: int
    v_i: float
    q_scale: float = 1.0
    tolerances: dict = field(default_factory=dict)
    tags: tuple = ()

    def build(self) -> tuple[Nonlinearity, ParallelRLC]:
        """Materialise the oscillator (nonlinearity, tank) pair."""
        if self.family not in FAMILIES:
            raise KeyError(
                f"unknown oscillator family {self.family!r}; "
                f"known: {', '.join(sorted(FAMILIES))}"
            )
        nonlinearity, tank = FAMILIES[self.family]()
        if self.q_scale != 1.0:
            tank = ParallelRLC(r=tank.r * self.q_scale, l=tank.l, c=tank.c)
        return nonlinearity, tank

    def describe(self) -> str:
        """One-line human-readable summary."""
        extra = f", Qx{self.q_scale:g}" if self.q_scale != 1.0 else ""
        return (
            f"{self.scenario_id}: {self.family}, n={self.n}, "
            f"V_i={self.v_i:g} V{extra}"
        )


def _s(family, n, v_i, q_scale=1.0, tags=(), **tolerances) -> Scenario:
    parts = [family, f"n{n}", f"vi{round(v_i * 1000):03d}m"]
    if q_scale != 1.0:
        parts.append(f"q{q_scale:g}".replace(".", "p"))
    return Scenario(
        scenario_id="-".join(parts),
        family=family,
        n=n,
        v_i=v_i,
        q_scale=q_scale,
        tolerances=dict(tolerances),
        tags=tuple(tags),
    )


#: The quick matrix: every CI run executes all of these (~a minute).
#: Coverage contract (asserted by the tests): >= 12 scenarios, both paper
#: oscillators present, n in {1, 2, 3} all present.
QUICK_SCENARIOS: tuple[Scenario, ...] = (
    # tanh family — V_i sweep at the paper's n = 3 ...
    _s("tanh", 3, 0.01),
    _s("tanh", 3, 0.03, tags=("vi-sweep",)),
    _s("tanh", 3, 0.06),
    # ... FHIL end of the order axis ...
    _s("tanh", 1, 0.03, tags=("fhil",)),
    # ... and the Q axis (loop gain scales with Q here).
    _s("tanh", 3, 0.03, q_scale=0.5, tags=("low-q",)),
    _s("tanh", 3, 0.03, q_scale=2.0, tags=("high-q",)),
    # skewed family: even-order coupling makes n = 2 well-posed.
    _s("skewed", 2, 0.03, tags=("even-n",)),
    _s("skewed", 3, 0.03),
    # diff-pair (paper Section IV-A; FIG14/TAB1 point is n=3, Vi=0.03).
    # At n = 1 the series injection reshapes the amplitude itself, which
    # the frozen-amplitude Adler baseline cannot see: it overestimates
    # the width ~6x here (the very inaccuracy the paper's method fixes),
    # so this scenario declares a wider Adler band.
    _s("diffpair", 1, 0.03, tags=("fhil",), adler_width_ratio_hi=8.0),
    _s("diffpair", 3, 0.015),
    _s("diffpair", 3, 0.03, tags=("paper",)),
    # tunnel diode (paper Section IV-B; FIG18/TAB2 point is n=3, Vi=0.03).
    _s("tunnel", 1, 0.02, tags=("fhil",)),
    # Even-n coupling on the tunnel diode's asymmetric law is amplitude-
    # mediated, so the frozen-amplitude Adler width runs ~5x wide.
    _s("tunnel", 2, 0.02, tags=("even-n",), adler_width_ratio_hi=6.5),
    _s("tunnel", 3, 0.03, tags=("paper",)),
)

#: Extra scenarios for ``--full`` (adds transient/PPV cross-checks too).
FULL_EXTRA_SCENARIOS: tuple[Scenario, ...] = (
    _s("tanh", 5, 0.03, tags=("high-order",)),
    _s("tanh", 3, 0.09, tags=("strong",)),
    _s("skewed", 2, 0.06),
    _s("diffpair", 3, 0.06),
    _s("tunnel", 3, 0.01),
)


def scenario_matrix(mode: str = "quick") -> tuple[Scenario, ...]:
    """The scenario tuple for a mode (``"quick"`` or ``"full"``)."""
    if mode == "quick":
        return QUICK_SCENARIOS
    if mode == "full":
        return QUICK_SCENARIOS + FULL_EXTRA_SCENARIOS
    raise ValueError(f"mode must be 'quick' or 'full', got {mode!r}")


def get_scenario(scenario_id: str) -> Scenario:
    """Look a scenario up by id across the full matrix."""
    for scenario in scenario_matrix("full"):
        if scenario.scenario_id == scenario_id:
            return scenario
    known = ", ".join(s.scenario_id for s in scenario_matrix("full"))
    raise KeyError(f"unknown scenario {scenario_id!r}; known: {known}")
