"""Cross-method verification harness (the repo's correctness oracle).

The repo predicts sub-harmonic injection locking through five independent
paths — the FFT-factorised two-tone describing function, a dense
quadrature referee, harmonic balance, transient ODE simulation with lock
detection, and the Adler/PPV baselines.  This package pits them against
each other over a scenario matrix (oscillator family x sub-harmonic order
x injection strength x tank Q) and checks the paper's structural
invariants on every point:

* exactly ``n`` equivalent lock states spaced ``2 pi / n``;
* lock range symmetric in tank phase about ``w_c``;
* the ``n = 1`` machinery reducing to classical single-tone FHIL;
* the averaged-Jacobian classifier agreeing with the paper's graphical
  slope rule at every curve intersection.

Entry points: ``repro verify`` on the command line,
:func:`~repro.verify.harness.run_matrix` from Python, and the tier-2
pytest marker (``pytest -m tier2``) in CI.  Results serialise to
``VERIFY_REPORT.json``; status-only golden artifacts under
``tests/verify/golden/`` support regression diffing across PRs.
"""

from repro.verify.checks import (
    DEFAULT_TOLERANCES,
    CheckResult,
    ScenarioArtifacts,
    build_artifacts,
)
from repro.verify.harness import counter_deltas, run_matrix, run_scenario
from repro.verify.report import (
    DEFAULT_GOLDEN_PATH,
    DEFAULT_REPORT_PATH,
    ScenarioVerdict,
    VerifyReport,
    diff_against_golden,
    golden_payload,
    write_golden,
)
from repro.verify.scenarios import (
    FULL_EXTRA_SCENARIOS,
    QUICK_SCENARIOS,
    Scenario,
    get_scenario,
    scenario_matrix,
)

__all__ = [
    "CheckResult",
    "ScenarioArtifacts",
    "DEFAULT_TOLERANCES",
    "build_artifacts",
    "counter_deltas",
    "run_matrix",
    "run_scenario",
    "Scenario",
    "QUICK_SCENARIOS",
    "FULL_EXTRA_SCENARIOS",
    "scenario_matrix",
    "get_scenario",
    "ScenarioVerdict",
    "VerifyReport",
    "diff_against_golden",
    "golden_payload",
    "write_golden",
    "DEFAULT_REPORT_PATH",
    "DEFAULT_GOLDEN_PATH",
]
