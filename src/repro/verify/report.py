"""Machine-readable verification report and golden-artifact diffing.

The harness (:mod:`repro.verify.harness`) produces a :class:`VerifyReport`
that serialises to ``VERIFY_REPORT.json``::

    {
      "report": "VERIFY",
      "schema": 1,
      "mode": "quick",
      "summary": {"scenarios": 14, "passed": 14, "failed": 0, ...},
      "scenarios": [{"scenario_id": ..., "checks": [...], ...}, ...],
      "matrix_checks": [...],
      "timing": {...}
    }

CI fails when ``summary.disagreements > 0`` — a *disagreement* is any
``FAIL`` or ``ERROR`` check, i.e. two prediction paths outside their
declared tolerance band or a path that refused to run.

For regression diffing across PRs a reduced *golden* form (statuses only,
no floats or timings, so it is byte-stable across machines) is kept under
``tests/verify/golden/``; :func:`diff_against_golden` reports any check
that regressed from its recorded status.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

from repro.verify.checks import CheckResult

__all__ = [
    "ScenarioVerdict",
    "VerifyReport",
    "diff_against_golden",
    "golden_payload",
    "write_golden",
    "DEFAULT_REPORT_PATH",
    "DEFAULT_GOLDEN_PATH",
]

#: Bump when the VERIFY_REPORT.json layout changes.
VERIFY_SCHEMA_VERSION = 1

DEFAULT_REPORT_PATH = pathlib.Path("VERIFY_REPORT.json")
DEFAULT_GOLDEN_PATH = pathlib.Path("tests/verify/golden/verify_quick_golden.json")


@dataclass
class ScenarioVerdict:
    """All check outcomes for one scenario."""

    scenario_id: str
    description: str
    checks: list[CheckResult] = field(default_factory=list)
    wall_s: float = 0.0
    #: Scalar observables other layers may want (lock-range width etc.).
    metrics: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def disagreements(self) -> list[CheckResult]:
        return [check for check in self.checks if not check.ok]

    def to_dict(self) -> dict:
        return {
            "scenario_id": self.scenario_id,
            "description": self.description,
            "ok": self.ok,
            "wall_s": round(self.wall_s, 3),
            "metrics": self.metrics,
            "checks": [check.to_dict() for check in self.checks],
        }


@dataclass
class VerifyReport:
    """The full matrix run: per-scenario verdicts plus matrix-level checks."""

    mode: str
    scenarios: list[ScenarioVerdict] = field(default_factory=list)
    #: Checks spanning several scenarios (e.g. V_i-monotonicity of widths).
    matrix_checks: list[CheckResult] = field(default_factory=list)
    timing: dict = field(default_factory=dict)

    @property
    def disagreements(self) -> list[tuple[str, CheckResult]]:
        """Every confirmed disagreement, tagged with its scenario id."""
        found = [
            (verdict.scenario_id, check)
            for verdict in self.scenarios
            for check in verdict.disagreements
        ]
        found.extend(("matrix", check) for check in self.matrix_checks if not check.ok)
        return found

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def summary(self) -> dict:
        statuses = [
            check.status for verdict in self.scenarios for check in verdict.checks
        ] + [check.status for check in self.matrix_checks]
        return {
            "scenarios": len(self.scenarios),
            "scenarios_passed": sum(1 for v in self.scenarios if v.ok),
            "checks": len(statuses),
            "passed": statuses.count("PASS"),
            "failed": statuses.count("FAIL"),
            "errors": statuses.count("ERROR"),
            "skipped": statuses.count("SKIP"),
            "disagreements": len(self.disagreements),
        }

    def to_dict(self) -> dict:
        return {
            "report": "VERIFY",
            "schema": VERIFY_SCHEMA_VERSION,
            "mode": self.mode,
            "summary": self.summary(),
            "scenarios": [verdict.to_dict() for verdict in self.scenarios],
            "matrix_checks": [check.to_dict() for check in self.matrix_checks],
            "timing": self.timing,
        }

    def write(self, path: str | pathlib.Path = DEFAULT_REPORT_PATH) -> pathlib.Path:
        """Serialise to ``VERIFY_REPORT.json`` (parents created)."""
        path = pathlib.Path(path)
        if path.parent != pathlib.Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    def format(self) -> str:
        """Human-readable console rendering."""
        lines = []
        for verdict in self.scenarios:
            flag = "ok " if verdict.ok else "XX "
            lines.append(f"{flag}{verdict.description}  [{verdict.wall_s:.1f} s]")
            for check in verdict.checks:
                if check.status == "PASS":
                    continue
                lines.append(f"      {check.status:<5} {check.name}: {check.detail}")
        for check in self.matrix_checks:
            flag = "ok " if check.ok else "XX "
            lines.append(f"{flag}matrix/{check.name}: {check.detail}")
        s = self.summary()
        lines.append(
            f"{s['scenarios_passed']}/{s['scenarios']} scenarios clean; "
            f"{s['checks']} checks: {s['passed']} pass, {s['failed']} fail, "
            f"{s['errors']} error, {s['skipped']} skip"
        )
        return "\n".join(lines)


def golden_payload(report: VerifyReport) -> dict:
    """Reduce a report to its byte-stable golden form (statuses only)."""
    scenarios = {
        verdict.scenario_id: {check.name: check.status for check in verdict.checks}
        for verdict in report.scenarios
    }
    return {
        "golden": "VERIFY",
        "schema": VERIFY_SCHEMA_VERSION,
        "mode": report.mode,
        "scenarios": scenarios,
        "matrix_checks": {check.name: check.status for check in report.matrix_checks},
    }


def write_golden(
    report: VerifyReport, path: str | pathlib.Path = DEFAULT_GOLDEN_PATH
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(golden_payload(report), indent=2, sort_keys=True) + "\n")
    return path


def diff_against_golden(
    report: VerifyReport, path: str | pathlib.Path = DEFAULT_GOLDEN_PATH
) -> list[str]:
    """Regressions of this report against the recorded golden statuses.

    A regression is a golden-``PASS`` check now failing/erroring or gone
    entirely, or a whole golden scenario missing from the run.  New
    scenarios/checks and ``SKIP``/``FAIL`` -> ``PASS`` improvements are
    not regressions.  Returns human-readable descriptions (empty = clean).
    """
    path = pathlib.Path(path)
    golden = json.loads(path.read_text())
    current = golden_payload(report)
    regressions: list[str] = []
    ran_ids = set(current["scenarios"])
    for scenario_id, golden_checks in sorted(golden.get("scenarios", {}).items()):
        if scenario_id not in ran_ids:
            # --scenario runs a sub-matrix on purpose; only flag when the
            # report claims the same mode as the golden.
            if report.mode == golden.get("mode"):
                regressions.append(f"{scenario_id}: scenario missing from run")
            continue
        now = current["scenarios"][scenario_id]
        for name, status in sorted(golden_checks.items()):
            if status != "PASS":
                continue
            got = now.get(name, "MISSING")
            if got != "PASS":
                regressions.append(f"{scenario_id}/{name}: PASS -> {got}")
    for name, status in sorted(golden.get("matrix_checks", {}).items()):
        if status != "PASS" or not report.matrix_checks:
            continue
        # Matrix-level checks are computed over the whole scenario set, so
        # a sub-matrix run (mode tagged "<mode>-subset") can legitimately
        # change their status; only same-mode runs can regress them.
        if report.mode != golden.get("mode"):
            continue
        got = current["matrix_checks"].get(name, "MISSING")
        if got != "PASS":
            regressions.append(f"matrix/{name}: PASS -> {got}")
    return regressions
